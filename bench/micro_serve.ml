(* Microbenchmark of the warm-RIB query daemon:

     dune exec bench/micro_serve.exe -- [--out FILE] [--history FILE]
       [--gate-trend] [queries]

   Drives a seed-built server through a round-robin CATCHMENT / RTT /
   EGRESS / STATS request mix via the real request loop (parsing,
   framing, counters, batch advances) and reports throughput and tail
   latency, once on a quiet timeline and once with the churn timeline
   applying link flaps and congestion bursts between request batches.
   Writes BENCH_serve.json and appends to the bench history for
   median-of-last-5 trend gating. *)

module Server = Netsim_serve.Server
module Jsonx = Netsim_obs.Jsonx

let mix server =
  let prefixes = Array.length (Server.prefixes server) in
  let pop = List.hd (Server.pops server) in
  fun i ->
    match i mod 4 with
    | 0 -> Printf.sprintf "CATCHMENT %d" (i mod prefixes)
    | 1 -> Printf.sprintf "RTT %d anycast" (i mod prefixes)
    | 2 -> Printf.sprintf "EGRESS %d" pop
    | _ -> "STATS"

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Throughput and p99 over [queries] requests against a fresh server.
   The first round of the mix is warm-up (it faults states into the
   RIB cache), then every request is timed individually. *)
let drive ~churn ~queries =
  let cfg = { Server.default_config with Server.churn } in
  let server = Server.build cfg in
  let query = mix server in
  for i = 0 to 3 do
    ignore (Server.handle_line server (query i))
  done;
  let lat_us = Array.make queries 0. in
  let t0 = Unix.gettimeofday () in
  for i = 0 to queries - 1 do
    let q0 = Unix.gettimeofday () in
    ignore (Server.handle_line server (query i));
    lat_us.(i) <- (Unix.gettimeofday () -. q0) *. 1e6
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.sort compare lat_us;
  (float_of_int queries /. elapsed, percentile lat_us 0.99)

let bench ~out ~history ~gate_trend ~queries =
  let qps, p99_us = drive ~churn:false ~queries in
  let churn_qps, churn_p99_us = drive ~churn:true ~queries in
  Printf.printf
    "serve: quiet %.0f q/s (p99 %.0f us)  churn %.0f q/s (p99 %.0f us)\n" qps
    p99_us churn_qps churn_p99_us;
  Bench_support.Bench_out.write ~out ~bench:"serve"
    [
      ("queries", Jsonx.Int queries);
      ("qps", Jsonx.Float qps);
      ("p99_us", Jsonx.Float p99_us);
      ("churn_qps", Jsonx.Float churn_qps);
      ("churn_p99_us", Jsonx.Float churn_p99_us);
    ];
  let metrics =
    Bench_support.Trend.
      [
        metric ~lower_better:false "qps" qps;
        metric "p99_us" p99_us;
        metric ~lower_better:false "churn_qps" churn_qps;
      ]
  in
  let trend_ok =
    (not gate_trend)
    || Bench_support.Trend.gate ~history ~bench:"serve" ~label:"gate-trend"
         metrics
  in
  Bench_support.Trend.append ~history ~bench:"serve" metrics;
  if not trend_ok then exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let history = ref Bench_support.Trend.default_history in
  let gate_trend = ref false in
  let rec parse ~out ~queries = function
    | [] -> (out, queries)
    | "--out" :: file :: rest -> parse ~out:file ~queries rest
    | "--history" :: file :: rest ->
        history := file;
        parse ~out ~queries rest
    | "--gate-trend" :: rest ->
        gate_trend := true;
        parse ~out ~queries rest
    | n :: rest -> parse ~out ~queries:(int_of_string n) rest
  in
  let out, queries = parse ~out:"BENCH_serve.json" ~queries:2000 args in
  bench ~out ~history:!history ~gate_trend:!gate_trend ~queries
