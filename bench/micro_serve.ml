(* Microbenchmark of the warm-RIB query daemon:

     dune exec bench/micro_serve.exe -- [--out FILE] [--history FILE]
       [--gate-trend] [--clients N] [--gate-parallel]
       [--load] [--gate-load X] [queries]

   Sequential mode drives a seed-built server through a round-robin
   CATCHMENT / RTT / EGRESS / STATS request mix via the real request
   loop (parsing, framing, counters, batch advances) and reports
   throughput and tail latency, once on a quiet timeline and once with
   the churn timeline applying link flaps and congestion bursts
   between request batches.  Parallel mode interleaves the same mix
   across [--clients] concurrent sessions through the round executor
   (read-only verbs fanned over the domain pool) and reports aggregate
   throughput, the worst per-client p99 and peak RSS.  Results go to
   BENCH_serve.json and the bench history: the sequential numbers
   under bench "serve" (no variant), the parallel numbers under
   variant "parallel_c<clients>_d<domains>", so differently-shaped
   runs never gate against each other.

   --gate-parallel enforces the concurrency acceptance bound: quiet
   parallel throughput >= 2x quiet sequential throughput (CI runs it
   at NETSIM_DOMAINS=4).  --load benchmarks snapshot loading at the
   internet scale of bench/micro_scale (v1 heap decode vs v2 mmap
   arena, identity-checked first) under variant "load_n<ases>";
   --gate-load X enforces v2 >= Xx faster than v1. *)

module Server = Netsim_serve.Server
module Snapshot = Netsim_serve.Snapshot
module Pool = Netsim_par.Pool
module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Jsonx = Netsim_obs.Jsonx

let mix server =
  let prefixes = Array.length (Server.prefixes server) in
  let pop = List.hd (Server.pops server) in
  fun i ->
    match i mod 4 with
    | 0 -> Printf.sprintf "CATCHMENT %d" (i mod prefixes)
    | 1 -> Printf.sprintf "RTT %d anycast" (i mod prefixes)
    | 2 -> Printf.sprintf "EGRESS %d" pop
    | _ -> "STATS"

let percentile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* Peak resident set size in kB, from the kernel's high-water mark. *)
let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          match String.index_opt line ':' with
          | Some i when String.sub line 0 i = "VmHWM" ->
              String.sub line (i + 1) (String.length line - i - 1)
              |> String.trim
              |> (fun s ->
                   match String.index_opt s ' ' with
                   | Some j -> String.sub s 0 j
                   | None -> s)
              |> int_of_string
          | _ -> scan ()
        in
        scan ())
  with _ -> 0

(* Throughput and p99 over [queries] requests against a fresh server.
   The first round of the mix is warm-up (it faults states into the
   RIB cache), then every request is timed individually. *)
let drive ~churn ~queries =
  let cfg = { Server.default_config with Server.churn } in
  let server = Server.build cfg in
  let query = mix server in
  for i = 0 to 3 do
    ignore (Server.handle_line server (query i))
  done;
  let lat_us = Array.make queries 0. in
  let t0 = Unix.gettimeofday () in
  for i = 0 to queries - 1 do
    let q0 = Unix.gettimeofday () in
    ignore (Server.handle_line server (query i));
    lat_us.(i) <- (Unix.gettimeofday () -. q0) *. 1e6
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.sort compare lat_us;
  (float_of_int queries /. elapsed, percentile lat_us 0.99)

(* The same total workload split round-robin across [clients]
   concurrent sessions: client c receives queries c, c+clients,
   c+2*clients, ... so every client runs the full verb mix.  Reports
   aggregate throughput and the worst per-client p99 (from the
   executor's per-request wall clock). *)
let drive_parallel ~churn ~clients ~queries =
  let cfg = { Server.default_config with Server.churn } in
  let server = Server.build cfg in
  let query = mix server in
  for i = 0 to 3 do
    ignore (Server.handle_line server (query i))
  done;
  let per_client = queries / clients in
  let streams =
    Array.init clients (fun c ->
        List.init per_client (fun i -> query ((i * clients) + c)))
  in
  let lats = Array.init clients (fun _ -> ref []) in
  let on_latency c us = lats.(c) := us :: !(lats.(c)) in
  let t0 = Unix.gettimeofday () in
  let responses = Server.serve_streams ~on_latency server streams in
  let elapsed = Unix.gettimeofday () -. t0 in
  Array.iteri
    (fun c resp ->
      if List.length resp <> per_client then begin
        Printf.printf "FAIL: client %d got %d responses, expected %d\n" c
          (List.length resp) per_client;
        exit 1
      end)
    responses;
  let worst_p99 =
    Array.fold_left
      (fun acc l ->
        let a = Array.of_list !l in
        Array.sort compare a;
        Float.max acc (percentile a 0.99))
      0. lats
  in
  (float_of_int (clients * per_client) /. elapsed, worst_p99)

(* ---- snapshot load: v1 heap decode vs v2 mmap arena ------------------- *)

let time_best_of_3 f =
  let best = ref infinity in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    f ();
    best := Float.min !best (Unix.gettimeofday () -. t0)
  done;
  !best

(* A warm snapshot at the micro_scale topology size: the full ~75k-AS
   graph with [origins] converged tracked RIBs — the state a
   production-shaped daemon would checkpoint. *)
let scale_snapshot ~origins =
  let topo =
    match Generator.generate_scale Generator.scale_params with
    | Ok t -> t
    | Error e ->
        Printf.printf "FAIL: generate_scale: %s\n" e;
        exit 1
  in
  let stubs = Array.of_list (Topology.by_klass topo Netsim_topo.Asn.Stub) in
  let k = Stdlib.min origins (Array.length stubs) in
  let configs =
    Array.init k (fun i ->
        Announce.default ~origin:stubs.(i * Array.length stubs / k))
  in
  let states = Propagate.run_batch topo configs in
  {
    Snapshot.git_sha = Netsim_serve.Version.git_sha ();
    created_gen = Topology.generation topo;
    seed = 42;
    now_min = 0.;
    base = topo;
    down_links = [];
    asid = stubs.(0);
    pops = [];
    prefixes = [||];
    ribs =
      Array.to_list
        (Array.mapi
           (fun i st ->
             let cust, peer, prov = Propagate.rib_arrays st in
             {
               Snapshot.rib_origin = configs.(i).Announce.origin;
               rib_active = true;
               rib_cust = cust;
               rib_peer = peer;
               rib_prov = prov;
             })
           states);
    pending = [];
    overlays = [];
  }

let bench_load ~out ~history ~gate_load ~origins =
  let snap = scale_snapshot ~origins in
  let n = Topology.as_count snap.Snapshot.base in
  let path_v1 = Filename.temp_file "beatbgp_snap_v1" ".bin" in
  let path_v2 = Filename.temp_file "beatbgp_snap_v2" ".bin" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path_v1 with Sys_error _ -> ());
      try Sys.remove path_v2 with Sys_error _ -> ())
    (fun () ->
      Snapshot.save ~version:Snapshot.schema_version snap ~path:path_v1;
      Snapshot.save ~version:Snapshot.schema_version_v2 snap ~path:path_v2;
      let load path =
        match Snapshot.load ~path with
        | Ok s -> s
        | Error e ->
            Printf.printf "FAIL: load %s: %s\n" path e;
            exit 1
      in
      (* Correctness before speed: both load paths must produce the
         same snapshot, byte-for-byte under re-encoding. *)
      let s1 = load path_v1 and s2 = load path_v2 in
      if Snapshot.to_bytes_v2 s1 <> Snapshot.to_bytes_v2 s2 then begin
        Printf.printf "FAIL: v1 and v2 loads of the same state differ\n";
        exit 1
      end;
      let v1_s = time_best_of_3 (fun () -> ignore (load path_v1)) in
      let v2_s = time_best_of_3 (fun () -> ignore (load path_v2)) in
      let speedup = v1_s /. v2_s in
      let size_v1 = (Unix.stat path_v1).Unix.st_size in
      let size_v2 = (Unix.stat path_v2).Unix.st_size in
      Printf.printf
        "serve-load: %d ASes  %d ribs  v1 %.3f s (%d bytes)  v2 %.3f s (%d \
         bytes)  speedup %.2fx\n"
        n
        (List.length snap.Snapshot.ribs)
        v1_s size_v1 v2_s size_v2 speedup;
      Bench_support.Bench_out.write ~out ~bench:"serve_load"
        [
          ("as_count", Jsonx.Int n);
          ("ribs", Jsonx.Int (List.length snap.Snapshot.ribs));
          ("load_v1_s", Jsonx.Float v1_s);
          ("load_v2_s", Jsonx.Float v2_s);
          ("load_speedup", Jsonx.Float speedup);
          ("size_v1_bytes", Jsonx.Int size_v1);
          ("size_v2_bytes", Jsonx.Int size_v2);
          ("peak_rss_kb", Jsonx.Int (peak_rss_kb ()));
        ];
      let variant = Printf.sprintf "load_n%d" n in
      Bench_support.Trend.append ~history ~bench:"serve" ~variant
        Bench_support.Trend.
          [
            metric "load_v1_s" v1_s;
            metric "load_v2_s" v2_s;
            metric ~lower_better:false "load_speedup" speedup;
          ];
      match gate_load with
      | Some x when speedup < x ->
          Printf.printf
            "FAIL: v2 mmap load under %.1fx faster than v1 decode (%.2fx)\n" x
            speedup;
          exit 1
      | Some x ->
          Printf.printf "gate-load: OK (%.2fx >= %.1fx)\n" speedup x
      | None -> ())

let bench ~out ~history ~gate_trend ~gate_parallel ~clients ~queries =
  let qps, p99_us = drive ~churn:false ~queries in
  let churn_qps, churn_p99_us = drive ~churn:true ~queries in
  Printf.printf
    "serve: quiet %.0f q/s (p99 %.0f us)  churn %.0f q/s (p99 %.0f us)\n" qps
    p99_us churn_qps churn_p99_us;
  let par_qps, par_p99_us = drive_parallel ~churn:false ~clients ~queries in
  let par_churn_qps, par_churn_p99_us =
    drive_parallel ~churn:true ~clients ~queries
  in
  let domains = Pool.domain_count () in
  let rss_kb = peak_rss_kb () in
  Printf.printf
    "serve-parallel: %d clients x %d domains  quiet %.0f q/s (worst p99 %.0f \
     us)  churn %.0f q/s (worst p99 %.0f us)  peak RSS %d kB\n"
    clients domains par_qps par_p99_us par_churn_qps par_churn_p99_us rss_kb;
  Bench_support.Bench_out.write ~out ~bench:"serve"
    [
      ("queries", Jsonx.Int queries);
      ("qps", Jsonx.Float qps);
      ("p99_us", Jsonx.Float p99_us);
      ("churn_qps", Jsonx.Float churn_qps);
      ("churn_p99_us", Jsonx.Float churn_p99_us);
      ("clients", Jsonx.Int clients);
      ("domains", Jsonx.Int domains);
      ("parallel_qps", Jsonx.Float par_qps);
      ("parallel_p99_us", Jsonx.Float par_p99_us);
      ("parallel_churn_qps", Jsonx.Float par_churn_qps);
      ("parallel_churn_p99_us", Jsonx.Float par_churn_p99_us);
      ("peak_rss_kb", Jsonx.Int rss_kb);
    ];
  let metrics =
    Bench_support.Trend.
      [
        metric ~lower_better:false "qps" qps;
        metric "p99_us" p99_us;
        metric ~lower_better:false "churn_qps" churn_qps;
      ]
  in
  let trend_ok =
    (not gate_trend)
    || Bench_support.Trend.gate ~history ~bench:"serve" ~label:"gate-trend"
         metrics
  in
  Bench_support.Trend.append ~history ~bench:"serve" metrics;
  (* Parallel numbers live under their own variant: a 8-client 4-domain
     run must never gate against a sequential or 1-domain record. *)
  let variant = Printf.sprintf "parallel_c%d_d%d" clients domains in
  let par_metrics =
    Bench_support.Trend.
      [
        metric ~lower_better:false "parallel_qps" par_qps;
        metric "parallel_p99_us" par_p99_us;
        metric ~lower_better:false "parallel_churn_qps" par_churn_qps;
        metric "peak_rss_kb" (float_of_int rss_kb);
      ]
  in
  let par_trend_ok =
    (not gate_trend)
    || Bench_support.Trend.gate ~history ~bench:"serve" ~variant
         ~label:"gate-trend" par_metrics
  in
  Bench_support.Trend.append ~history ~bench:"serve" ~variant par_metrics;
  if gate_parallel then begin
    if par_qps < 2. *. qps then begin
      Printf.printf
        "FAIL: parallel throughput under 2x sequential (%.0f vs %.0f q/s at \
         %d domains)\n"
        par_qps qps domains;
      exit 1
    end;
    Printf.printf "gate-parallel: OK (%.2fx at %d domains)\n" (par_qps /. qps)
      domains
  end;
  if not (trend_ok && par_trend_ok) then exit 1

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let history = ref Bench_support.Trend.default_history in
  let gate_trend = ref false in
  let gate_parallel = ref false in
  let clients = ref 8 in
  let load = ref false in
  let gate_load = ref None in
  let origins = ref 8 in
  let rec parse ~out ~queries = function
    | [] -> (out, queries)
    | "--out" :: file :: rest -> parse ~out:file ~queries rest
    | "--history" :: file :: rest ->
        history := file;
        parse ~out ~queries rest
    | "--gate-trend" :: rest ->
        gate_trend := true;
        parse ~out ~queries rest
    | "--gate-parallel" :: rest ->
        gate_parallel := true;
        parse ~out ~queries rest
    | "--clients" :: n :: rest ->
        clients := int_of_string n;
        parse ~out ~queries rest
    | "--load" :: rest ->
        load := true;
        parse ~out ~queries rest
    | "--gate-load" :: x :: rest ->
        load := true;
        gate_load := Some (float_of_string x);
        parse ~out ~queries rest
    | "--origins" :: n :: rest ->
        origins := int_of_string n;
        parse ~out ~queries rest
    | n :: rest -> parse ~out ~queries:(int_of_string n) rest
  in
  let out, queries = parse ~out:"BENCH_serve.json" ~queries:2000 args in
  if !load then
    bench_load ~out:"BENCH_serve_load.json" ~history:!history
      ~gate_load:!gate_load ~origins:!origins
  else
    bench ~out ~history:!history ~gate_trend:!gate_trend
      ~gate_parallel:!gate_parallel ~clients:!clients ~queries
