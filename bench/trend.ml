(* Bench-history regression tracking.

   Every micro_* run appends one schema-versioned JSONL record (git
   sha, timestamp, named metrics with their improvement direction) to
   BENCH_history.jsonl; [gate] compares the current run against the
   median of the last 5 records for the same bench and fails when any
   metric regresses by more than the tolerance.  Gating happens
   against the records that existed BEFORE the current run, so callers
   gate first and append after. *)

module Jsonx = Netsim_obs.Jsonx

let schema_version = 1
let default_history = "BENCH_history.jsonl"
let window = 5
let min_records = 3

type metric = {
  m_name : string;
  m_value : float;
  m_lower_better : bool;
}

let metric ?(lower_better = true) name value =
  { m_name = name; m_value = value; m_lower_better = lower_better }

(* ---- a tiny JSON parser (history records only) ----------------------- *)

(* The emitter side is Jsonx; history lines only ever contain objects
   of strings / numbers / booleans / one nested metrics object, so a
   small recursive-descent parser is enough — no external dependency,
   and bench binaries stay self-contained. *)

exception Bad_record

let parse (s : string) : Jsonx.t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise Bad_record
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise Bad_record
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then raise Bad_record;
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_string buf ("\\u" ^ hex)
              | None -> raise Bad_record);
              go ()
          | _ -> raise Bad_record)
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let raw = String.sub s start (!pos - start) in
    match int_of_string_opt raw with
    | Some i -> Jsonx.Int i
    | None -> (
        match float_of_string_opt raw with
        | Some f -> Jsonx.Float f
        | None -> raise Bad_record)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Jsonx.Null
    | Some 't' -> literal "true" (Jsonx.Bool true)
    | Some 'f' -> literal "false" (Jsonx.Bool false)
    | Some '"' -> Jsonx.String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jsonx.Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> raise Bad_record
          in
          Jsonx.Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jsonx.Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (kv :: acc)
            | Some '}' -> advance (); List.rev (kv :: acc)
            | _ -> raise Bad_record
          in
          Jsonx.Obj (fields [])
        end
    | _ -> raise Bad_record
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise Bad_record;
  v

(* ---- history I/O ------------------------------------------------------ *)

let num = function
  | Jsonx.Int i -> Some (float_of_int i)
  | Jsonx.Float f -> Some f
  | _ -> None

(* Records for [bench] (and, when given, [variant]), oldest first.
   Several benches share one history file and one bench may gate
   several workload variants, so a record is selected only when BOTH
   discriminators match: the "bench" member must equal [bench], and
   the "variant" member must equal [variant] — absent matching absent.
   Without the variant check, a bench writing two workloads under one
   name would gate each against the other's medians (the cross-gate
   bug pinned down in test/test_trend.ml).  Unreadable or foreign
   lines are skipped with a warning on stderr: the history file
   survives schema evolution, manual edits and a truncated last line
   (a run killed mid-append), and never takes the gate down with it. *)
let records ?variant ~history ~bench () =
  if not (Sys.file_exists history) then []
  else begin
    let ic = open_in history in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let variant_matches doc =
          match (variant, Jsonx.member "variant" doc) with
          | None, None -> true
          | Some v, Some (Jsonx.String v') -> v = v'
          | _ -> false
        in
        let out = ref [] and corrupt = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match parse line with
               | exception Bad_record -> incr corrupt
               | doc ->
                   if
                     Jsonx.member "bench" doc = Some (Jsonx.String bench)
                     && variant_matches doc
                   then out := doc :: !out
           done
         with End_of_file -> ());
        if !corrupt > 0 then
          Printf.eprintf
            "trend: warning: skipped %d corrupt line(s) in %s\n%!" !corrupt
            history;
        List.rev !out)
  end

let metric_values ?variant ~history ~bench name =
  List.filter_map
    (fun doc ->
      match Jsonx.member "metrics" doc with
      | Some m -> Option.bind (Jsonx.member name m) num
      | None -> None)
    (records ?variant ~history ~bench ())

let median l =
  match List.sort compare l with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let a = List.nth sorted ((n - 1) / 2) and b = List.nth sorted (n / 2) in
      (a +. b) /. 2.

let last k l =
  let n = List.length l in
  if n <= k then l else List.filteri (fun i _ -> i >= n - k) l

let append ?(history = default_history) ?variant ~bench metrics =
  let doc =
    Jsonx.Obj
      ([
         ("schema_version", Jsonx.Int schema_version);
         ("bench", Jsonx.String bench);
       ]
      @ (match variant with
        | Some v -> [ ("variant", Jsonx.String v) ]
        | None -> [])
      @ [
        ("git_sha", Jsonx.String (Bench_out.git_sha ()));
        ("unix_time", Jsonx.Int (int_of_float (Unix.time ())));
        ( "metrics",
          Jsonx.Obj
            (List.map (fun m -> (m.m_name, Jsonx.Float m.m_value)) metrics) );
        ( "lower_better",
          Jsonx.Obj
            (List.map (fun m -> (m.m_name, Jsonx.Bool m.m_lower_better)) metrics)
        );
      ])
  in
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 history
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Jsonx.to_string doc);
      output_char oc '\n')

(* [gate] returns true when every metric is within [tolerance] of the
   median of its last [window] history values.  Metrics with fewer
   than [min_records] prior values are reported as skipped rather than
   failed, so fresh checkouts don't trip the gate. *)
let gate ?(history = default_history) ?(tolerance = 0.15) ?variant ~bench
    ~label metrics =
  let ok = ref true in
  List.iter
    (fun m ->
      let values =
        last window (metric_values ?variant ~history ~bench m.m_name)
      in
      if List.length values < min_records then
        Printf.printf
          "%s: %s/%s skipped (%d history record(s), need %d)\n" label bench
          m.m_name (List.length values) min_records
      else begin
        let med = median values in
        let change =
          if m.m_lower_better then (m.m_value -. med) /. med
          else (med -. m.m_value) /. med
        in
        if change > tolerance then begin
          ok := false;
          Printf.printf
            "%s: FAIL %s/%s regressed %.1f%% (current %.4g vs median-of-%d \
             %.4g, tolerance %.0f%%)\n"
            label bench m.m_name (100. *. change) m.m_value
            (List.length values) med (100. *. tolerance)
        end
        else
          Printf.printf
            "%s: %s/%s OK (%+.1f%% vs median-of-%d %.4g)\n" label bench
            m.m_name (100. *. change) (List.length values) med
      end)
    metrics;
  !ok
