(* Benchmark harness: one Bechamel test per paper figure/analysis
   (each run regenerates the artifact end-to-end at reduced scale) plus
   micro-benchmarks of the hot algorithms.  After timing, the harness
   regenerates every figure once at full scale and prints it, so
   `dune exec bench/main.exe` reproduces the paper's evaluation in one
   command. *)

open Bechamel
open Toolkit

module S = Beatbgp.Scenario

(* Benchmark scale is overridable from the environment so CI can run a
   cheap smoke pass (e.g. NETSIM_BENCH_PREFIXES=10 NETSIM_BENCH_DAYS=0.25)
   without editing this file.  The same overrides scale the full-size
   figure regeneration below. *)

let env_int name =
  match Sys.getenv_opt name with
  | Some s when s <> "" -> int_of_string_opt s
  | _ -> None

let env_float name =
  match Sys.getenv_opt name with
  | Some s when s <> "" -> float_of_string_opt s
  | _ -> None

let bench_prefixes = Option.value (env_int "NETSIM_BENCH_PREFIXES") ~default:80

let bench_days = Option.value (env_float "NETSIM_BENCH_DAYS") ~default:1.

(* Shared inputs are built once, outside the timed closures. *)

let bench_sizes =
  { S.test_sizes with S.n_prefixes = bench_prefixes; days = bench_days }
let fb = lazy (S.facebook ~sizes:bench_sizes ())
let ms = lazy (S.microsoft ~sizes:bench_sizes ())
let gc = lazy (S.google ~sizes:bench_sizes ~n_vantage:300 ())
let fig1_result = lazy (Beatbgp.Fig1_pop_egress.run (Lazy.force fb))

let base_topo = lazy (Netsim_topo.Generator.generate Netsim_topo.Generator.default_params)

let micro_state =
  lazy
    (let topo = Lazy.force base_topo in
     let dest = List.hd (Netsim_topo.Topology.by_klass topo Netsim_topo.Asn.Eyeball) in
     let state =
       Netsim_bgp.Propagate.run topo (Netsim_bgp.Announce.default ~origin:dest)
     in
     let src = List.hd (Netsim_topo.Topology.by_klass topo Netsim_topo.Asn.Stub) in
     let walk =
       match Netsim_bgp.Walk.of_source state ~src with
       | Some w -> w
       | None -> failwith "bench: no walk"
     in
     let congestion =
       Netsim_latency.Congestion.create Netsim_latency.Params.default topo ~seed:1
     in
     let flow =
       Netsim_latency.Rtt.make_flow
         ~access:(Netsim_latency.Congestion.Access 0)
         ~terminal:Netsim_latency.Propagation.At_entry walk
     in
     (topo, dest, state, src, congestion, flow))

(* ---- figure benches: regenerate each paper artifact ---- *)

let figure_tests =
  [
    Test.make ~name:"fig1/pop-egress"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Fig1_pop_egress.run (Lazy.force fb))));
    Test.make ~name:"fig2/route-classes"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Fig2_route_classes.run (Lazy.force fb))));
    Test.make ~name:"fig3/anycast-gap"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Fig3_anycast_gap.run (Lazy.force ms))));
    Test.make ~name:"fig4/dns-redirection"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Fig4_dns_redirection.run (Lazy.force ms))));
    Test.make ~name:"fig5/cloud-tiers"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Fig5_cloud_tiers.run (Lazy.force gc))));
    Test.make ~name:"degrade/3.1.1"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Degrade_together.analyze (Lazy.force fig1_result))));
    Test.make ~name:"grooming/3.2.2"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Grooming.run ~rounds:2 (Lazy.force ms))));
    Test.make ~name:"wanfrac/3.3.2"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Wan_fraction.run (Lazy.force gc))));
    Test.make ~name:"peering/3.1.3"
      (Staged.stage (fun () ->
           ignore
             (Beatbgp.Peering_ablation.run ~fractions:[ 1.0; 0.25 ]
                ~sizes:bench_sizes ())));
    Test.make ~name:"goodput/footnote-3"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Goodput_egress.run (Lazy.force fb))));
    Test.make ~name:"availability/4"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Availability.run (Lazy.force ms))));
    Test.make ~name:"hybrid/4"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Hybrid.run ~margins:[ 0.; 25. ] (Lazy.force ms))));
    Test.make ~name:"splittcp/4"
      (Staged.stage (fun () ->
           ignore (Beatbgp.Split_tcp.run (Lazy.force gc))));
    Test.make ~name:"sites/3.2.2"
      (Staged.stage (fun () ->
           ignore
             (Beatbgp.Site_density.run ~sizes:bench_sizes
                ~site_counts:[ 6; 24 ] ())));
    Test.make ~name:"ecs/3.2.1"
      (Staged.stage (fun () ->
           ignore
             (Beatbgp.Ecs_ablation.run ~sizes:bench_sizes
                ~adoptions:[ 0.001; 1.0 ] ())));
    Test.make ~name:"compare/scheme-harness"
      (Staged.stage (fun () ->
           let fb = Lazy.force fb in
           let windows =
             Netsim_traffic.Window.windows ~days:0.5 ~length_min:90.
           in
           ignore
             (Beatbgp.Scheme.compare_schemes
                [
                  Beatbgp.Scheme.egress_bgp fb;
                  Beatbgp.Scheme.egress_oracle fb;
                ]
                ~prefixes:fb.S.fb_prefixes
                ~rng:(Netsim_prng.Splitmix.create 9) ~windows)));
  ]

(* ---- micro benches: the hot algorithms ---- *)

let micro_tests =
  [
    Test.make ~name:"micro/topology-generate"
      (Staged.stage (fun () ->
           ignore
             (Netsim_topo.Generator.generate Netsim_topo.Generator.small_params)));
    Test.make ~name:"micro/bgp-propagate"
      (Staged.stage (fun () ->
           let topo, dest, _, _, _, _ = Lazy.force micro_state in
           ignore
             (Netsim_bgp.Propagate.run topo
                (Netsim_bgp.Announce.default ~origin:dest))));
    Test.make ~name:"micro/catchment"
      (Staged.stage (fun () ->
           let _, _, state, _, _, _ = Lazy.force micro_state in
           ignore (Netsim_bgp.Catchment.compute state)));
    Test.make ~name:"micro/walk"
      (Staged.stage (fun () ->
           let _, _, state, src, _, _ = Lazy.force micro_state in
           ignore (Netsim_bgp.Walk.of_source state ~src)));
    Test.make ~name:"micro/rtt-sample"
      (Staged.stage
         (let rng = Netsim_prng.Splitmix.create 3 in
          fun () ->
            let _, _, _, _, congestion, flow = Lazy.force micro_state in
            ignore
              (Netsim_latency.Rtt.sample_ms congestion ~rng ~time_min:300. flow)));
    Test.make ~name:"micro/received-ribin"
      (Staged.stage (fun () ->
           let _, _, state, src, _, _ = Lazy.force micro_state in
           ignore (Netsim_bgp.Propagate.received state src)));
  ]

let run_benchmarks () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 2.) ~kde:None ~stabilize:false ()
  in
  let all_tests =
    Test.make_grouped ~name:"beatbgp" (figure_tests @ micro_tests)
  in
  let raw = Benchmark.all cfg instances all_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) results []
    |> List.sort compare
  in
  Printf.printf "%-36s %16s %10s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun (name, est) ->
      let time_ns =
        match Analyze.OLS.estimates est with
        | Some (t :: _) -> t
        | Some [] | None -> nan
      in
      let r2 = match Analyze.OLS.r_square est with Some r -> r | None -> nan in
      let pretty =
        if Float.is_nan time_ns then "n/a"
        else if time_ns > 1e9 then Printf.sprintf "%.2f s" (time_ns /. 1e9)
        else if time_ns > 1e6 then Printf.sprintf "%.2f ms" (time_ns /. 1e6)
        else if time_ns > 1e3 then Printf.sprintf "%.2f us" (time_ns /. 1e3)
        else Printf.sprintf "%.0f ns" time_ns
      in
      Printf.printf "%-36s %16s %10.4f\n" name pretty r2)
    rows

(* ---- full-scale regeneration of every figure ---- *)

let regenerate_figures () =
  print_endline "";
  print_endline "=== full-scale figure regeneration (paper artifacts) ===";
  let sizes =
    {
      S.default_sizes with
      S.n_prefixes =
        Option.value (env_int "NETSIM_BENCH_PREFIXES")
          ~default:S.default_sizes.S.n_prefixes;
      days =
        Option.value (env_float "NETSIM_BENCH_DAYS")
          ~default:S.default_sizes.S.days;
    }
  in
  let show fig =
    print_endline "";
    print_string (Beatbgp.Figure.render fig);
    let claims = Beatbgp.Claims.of_figure fig in
    if claims <> [] then print_string (Beatbgp.Claims.render claims)
  in
  let fb = S.facebook ~sizes () in
  let fig1 = Beatbgp.Fig1_pop_egress.run fb in
  show fig1.Beatbgp.Fig1_pop_egress.figure;
  show (Beatbgp.Fig2_route_classes.run fb).Beatbgp.Fig2_route_classes.figure;
  let ms = S.microsoft ~sizes () in
  show (Beatbgp.Fig3_anycast_gap.run ms).Beatbgp.Fig3_anycast_gap.figure;
  show (Beatbgp.Fig4_dns_redirection.run ms).Beatbgp.Fig4_dns_redirection.figure;
  let gc = S.google ~sizes () in
  let fig5 = Beatbgp.Fig5_cloud_tiers.run gc in
  show fig5.Beatbgp.Fig5_cloud_tiers.figure;
  print_endline "";
  print_string (Beatbgp.Fig5_cloud_tiers.render_map fig5);
  show (Beatbgp.Degrade_together.analyze fig1).Beatbgp.Degrade_together.figure

let () =
  run_benchmarks ();
  (* Timed runs stay uninstrumented (unless NETSIM_TRACE was set);
     regeneration runs with metrics on so the work totals of one full
     pipeline pass are printed alongside the timings. *)
  Netsim_obs.Report.reset ();
  Netsim_obs.Metrics.set_enabled true;
  regenerate_figures ();
  Netsim_obs.Metrics.set_enabled false;
  print_endline "";
  print_endline "=== metrics over the full-scale regeneration ===";
  print_string (Netsim_obs.Report.metrics_table ())
