(* Microbenchmark of the domain pool (Netsim_par.Pool):

     dune exec bench/micro_par.exe -- [--out FILE] [--history FILE]
       [--gate-trend] [--quick]

   Two workloads, each run at domain counts {1, 2, 4, 8} (clamped to
   what the machine offers):

     - propagate-shard: the Egress.compute inner loop — one
       Propagate.run per origin AS, sharded with Pool.map.
     - robustness-sweep: Robustness.run over several seeds at test
       sizes — the per-seed figure pipelines sharded with Pool.map.

   Also measures the observability fan-out cost: the propagate shard
   with tracing enabled (per-worker capture + ordered replay at the
   join) vs untraced, at the highest domain count.

   Writes BENCH_par.json and prints a table.  Exits non-zero if the
   robustness-sweep speedup at 4 domains falls below 2.5x — but only
   when the machine actually has >= 4 cores
   (Domain.recommended_domain_count); on smaller machines the gate is
   reported as skipped so single-core CI boxes don't fail vacuously. *)

module Pool = Netsim_par.Pool
module Topology = Netsim_topo.Topology
module Propagate = Netsim_bgp.Propagate
module Announce = Netsim_bgp.Announce
module Jsonx = Netsim_obs.Jsonx
module Metrics = Netsim_obs.Metrics

let time_s f =
  ignore (f ());  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  let best = ref infinity in
  for _ = 1 to 3 do
    let t = Unix.gettimeofday () in
    ignore (f ());
    let dt = Unix.gettimeofday () -. t in
    if dt < !best then best := dt
  done;
  ignore t0;
  !best

let with_domains n f =
  let saved = Pool.domain_count () in
  Pool.set_domain_count n;
  Fun.protect ~finally:(fun () -> Pool.set_domain_count saved) f

(* Workload 1: one deterministic BGP propagation per origin AS —
   exactly the shard Egress.compute hands to the pool. *)
let propagate_shard ~quick () =
  let topo =
    Netsim_topo.Generator.generate
      (if quick then
         { Netsim_topo.Generator.default_params with n_stub = 60; n_eyeball = 30 }
       else Netsim_topo.Generator.default_params)
  in
  let origins =
    Topology.by_klass topo Netsim_topo.Asn.Eyeball
    |> List.filteri (fun i _ -> i < if quick then 8 else 32)
    |> Array.of_list
  in
  fun () ->
    Pool.map (fun o -> Propagate.run topo (Announce.default ~origin:o)) origins

(* Workload 2: the full per-seed robustness sweep at test sizes. *)
let robustness_sweep ~quick () =
  let sizes = Beatbgp.Scenario.test_sizes in
  let seeds =
    if quick then [ 42; 43; 44; 45 ] else [ 42; 43; 44; 45; 46; 47; 48; 49 ]
  in
  fun () -> Beatbgp.Robustness.run ~seeds ~sizes ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let history = ref Bench_support.Trend.default_history in
  let gate_trend = ref false in
  let rec parse ~out ~quick = function
    | [] -> (out, quick)
    | "--out" :: file :: rest -> parse ~out:file ~quick rest
    | "--history" :: file :: rest ->
        history := file;
        parse ~out ~quick rest
    | "--gate-trend" :: rest ->
        gate_trend := true;
        parse ~out ~quick rest
    | "--quick" :: rest -> parse ~out ~quick:true rest
    | a :: _ -> Printf.eprintf "micro_par: unknown argument %s\n" a; exit 2
  in
  let out, quick = parse ~out:"BENCH_par.json" ~quick:false args in
  let cores = Domain.recommended_domain_count () in
  let counts = [ 1; 2; 4; 8 ] in
  Printf.printf "cores: %d  domain counts: %s\n" cores
    (String.concat " " (List.map string_of_int counts));
  let shard_work = propagate_shard ~quick () in
  let sweep_work = robustness_sweep ~quick () in
  let workloads =
    [ ("propagate_shard", fun () -> ignore (shard_work ()));
      ("robustness_sweep", fun () -> ignore (sweep_work ())) ]
  in
  let results =
    List.map
      (fun (name, work) ->
        let base = ref nan in
        let rows =
          List.map
            (fun d ->
              let t = with_domains d (fun () -> time_s (fun () -> ignore (work ()))) in
              if d = 1 then base := t;
              let speedup = !base /. t in
              Printf.printf "  %-16s domains=%d  %8.1f ms  speedup %.2fx\n%!"
                name d (1e3 *. t) speedup;
              (d, t, speedup))
            counts
        in
        (name, rows))
      workloads
  in
  (* Observability overhead: traced vs untraced propagate shard at the
     widest domain count (capture + ordered replay at the join). *)
  let shard = propagate_shard ~quick () in
  let dmax = List.fold_left max 1 counts in
  let untraced = with_domains dmax (fun () -> time_s (fun () -> ignore (shard ()))) in
  let traced =
    with_domains dmax (fun () ->
        Metrics.set_enabled true;
        Fun.protect
          ~finally:(fun () ->
            Metrics.set_enabled false;
            Metrics.reset ();
            Netsim_obs.Span.reset ())
          (fun () -> time_s (fun () -> ignore (shard ()))))
  in
  let merge_overhead = (traced -. untraced) /. untraced in
  Printf.printf "  obs merge overhead at %d domains: %.1f%% (traced %.1f ms, untraced %.1f ms)\n"
    dmax (100. *. merge_overhead) (1e3 *. traced) (1e3 *. untraced);
  let speedup_at name d =
    match List.assoc_opt name results with
    | None -> None
    | Some rows ->
        List.find_map (fun (d', _, s) -> if d' = d then Some s else None) rows
  in
  let gate_enforced = cores >= 4 in
  Bench_support.Bench_out.write ~out ~bench:"par"
    [
      ("cores", Jsonx.Int cores);
      ("quick", Jsonx.Bool quick);
      ( "workloads",
        Jsonx.Obj
          (List.map
             (fun (name, rows) ->
               ( name,
                 Jsonx.Arr
                   (List.map
                      (fun (d, t, s) ->
                        Jsonx.Obj
                          [
                            ("domains", Jsonx.Int d);
                            ("seconds", Jsonx.Float t);
                            ("speedup", Jsonx.Float s);
                          ])
                      rows) ))
             results) );
      ("obs_merge_overhead", Jsonx.Float merge_overhead);
      ("gate_enforced", Jsonx.Bool gate_enforced);
    ];
  (* Trend history: the serial propagate-shard time (lower is better)
     and the merge overhead.  Multi-domain speedups depend on the
     machine's core count, so they stay out of the gated set. *)
  let shard_1d_s =
    match List.assoc_opt "propagate_shard" results with
    | Some ((1, t, _) :: _) -> t
    | _ -> nan
  in
  let gated = [ Bench_support.Trend.metric "propagate_shard_1d_s" shard_1d_s ] in
  let trend_ok =
    (not !gate_trend)
    || Bench_support.Trend.gate ~history:!history ~bench:"par"
         ~label:"gate-trend" gated
  in
  (* The merge overhead is recorded for the history (it hovers around
     zero, so a relative-change gate on it would be noise). *)
  Bench_support.Trend.append ~history:!history ~bench:"par"
    (gated @ [ Bench_support.Trend.metric "obs_merge_overhead" merge_overhead ]);
  if not trend_ok then exit 1;
  if gate_enforced then begin
    match speedup_at "robustness_sweep" 4 with
    | Some s when s < 2.5 ->
        Printf.printf "FAIL: robustness-sweep speedup at 4 domains is %.2fx (< 2.5x)\n" s;
        exit 1
    | Some s -> Printf.printf "gate: robustness-sweep %.2fx at 4 domains (>= 2.5x) OK\n" s
    | None -> ()
  end
  else
    Printf.printf
      "gate: skipped (machine has %d core(s); need >= 4 to enforce the 2.5x \
       speedup check)\n"
      cores
