(* Microbenchmark of the dynamics engine and incremental reconvergence:

     dune exec bench/micro_dynamics.exe -- [--check] [--out FILE]
       [--history FILE] [--gate-trend] [iters]

   Measures (a) full Propagate.run vs Propagate.reconverge on a single
   link flap, for links drawn from the origin's routing tree (worst
   case: the failure actually reroutes traffic) and (b) raw engine
   throughput in events/second over a scripted flap storm.  Writes the
   numbers as JSON (default BENCH_dynamics.json).

   --check runs the incremental-vs-full equivalence suite instead: 50
   seeded random single-link failures (and the flap back up) must give
   identical routing (best route, AS path, class for every AS); exits
   non-zero on any divergence. *)

module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Propagate = Netsim_bgp.Propagate
module Route = Netsim_bgp.Route
module Announce = Netsim_bgp.Announce
module Sm = Netsim_prng.Splitmix
module Jsonx = Netsim_obs.Jsonx
module Event = Netsim_dynamics.Event
module Engine = Netsim_dynamics.Engine
module Script = Netsim_dynamics.Script

let setup () =
  let topo = Netsim_topo.Generator.generate Netsim_topo.Generator.default_params in
  let origin = List.hd (Topology.by_klass topo Netsim_topo.Asn.Eyeball) in
  let config = Announce.default ~origin in
  (topo, config, Propagate.run topo config)

(* Link ids that carry some AS's selected route — failing one forces
   real rerouting, unlike a random (likely unused) link. *)
let tree_links topo state =
  let used = Hashtbl.create 256 in
  for asid = 0 to Topology.as_count topo - 1 do
    match Propagate.best state asid with
    | Some (r : Route.t) -> Hashtbl.replace used r.Route.via_link.Relation.id ()
    | None -> ()
  done;
  Hashtbl.fold (fun id () acc -> id :: acc) used []
  |> List.sort compare |> Array.of_list

let route_key s asid =
  ( (match Propagate.best s asid with
    | Some r ->
        Some (r.Route.next_hop, r.Route.via_link.Relation.id, r.Route.path_len)
    | None -> None),
    Propagate.as_path s asid,
    Propagate.selected_class s asid )

let states_equal topo a b =
  let ok = ref true in
  for asid = 0 to Topology.as_count topo - 1 do
    if route_key a asid <> route_key b asid then ok := false
  done;
  !ok

let check () =
  let topo, config, state = setup () in
  let rng = Sm.create 20250806 in
  let n_links = Topology.link_count topo in
  let failures = ref 0 in
  for i = 1 to 50 do
    let l = Sm.next_int rng n_links in
    let failed_topo = Topology.remove_links topo [ l ] in
    let full = Propagate.run failed_topo config in
    let incr_down, _ =
      Propagate.reconverge state ~topo:failed_topo (Propagate.Link_removed l)
    in
    if not (states_equal topo full incr_down) then begin
      Printf.printf "MISMATCH after removing link %d (case %d)\n" l i;
      incr failures
    end;
    (* And back up: restoring must reproduce the original state. *)
    let incr_up, _ =
      Propagate.reconverge incr_down ~topo (Propagate.Link_added l)
    in
    if not (states_equal topo state incr_up) then begin
      Printf.printf "MISMATCH after restoring link %d (case %d)\n" l i;
      incr failures
    end
  done;
  Printf.printf "equivalence: 50 single-link failures + restores, %d mismatches\n"
    !failures;
  if !failures > 0 then exit 1

let time_ns f iters =
  f ();  (* warm-up *)
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

(* Time full [run] vs incremental [reconverge] over the same seeded
   rotation of single-link removals drawn from [links]. *)
let flap_pair topo config state links iters =
  let picker () =
    let rng = Sm.create 7 in
    fun () -> links.(Sm.next_int rng (Array.length links))
  in
  let pick = picker () in
  let full_ns =
    time_ns
      (fun () ->
        let l = pick () in
        ignore (Propagate.run (Topology.remove_links topo [ l ]) config))
      iters
  in
  let pick = picker () in
  let incr_ns =
    time_ns
      (fun () ->
        let l = pick () in
        let failed_topo = Topology.remove_links topo [ l ] in
        ignore
          (Propagate.reconverge state ~topo:failed_topo (Propagate.Link_removed l)))
      iters
  in
  (full_ns, incr_ns, full_ns /. incr_ns)

let bench ~out ~history ~gate_trend ~iters =
  let topo, config, state = setup () in
  (* Two flap distributions: uniform over every link (what the engine's
     flap scripts draw — most links carry no selected route, so the
     dirty set is tiny) and the worst case of links on the origin's
     routing tree (every failure actually reroutes traffic). *)
  let all_links =
    Array.init (Topology.link_count topo) (fun i -> i)
  in
  let full_ns, incr_ns, speedup = flap_pair topo config state all_links iters in
  let tree_full_ns, tree_incr_ns, tree_speedup =
    flap_pair topo config state (tree_links topo state) iters
  in
  (* Engine throughput: one tracked prefix under a dense flap storm. *)
  let eng = Engine.create topo in
  Engine.track eng config;
  Script.schedule_all eng
    (Script.flaps (Sm.create 11) ~link_ids:all_links ~mean_interval_min:2.
       ~mean_down_min:10. ~days:2);
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:(2. *. 24. *. 60.);
  let elapsed = Unix.gettimeofday () -. t0 in
  let events = Engine.events_processed eng in
  let events_per_sec = float_of_int events /. elapsed in
  Printf.printf
    "reconverge (uniform links): full %.0f ns  incremental %.0f ns  speedup %.1fx\n\
     reconverge (on-tree links): full %.0f ns  incremental %.0f ns  speedup %.1fx\n\
     engine: %d events in %.3f s  (%.0f events/s)\n"
    full_ns incr_ns speedup tree_full_ns tree_incr_ns tree_speedup events
    elapsed events_per_sec;
  Bench_support.Bench_out.write ~out ~bench:"dynamics"
    [
      ("iters", Jsonx.Int iters);
      ("full_reconverge_ns", Jsonx.Float full_ns);
      ("incremental_reconverge_ns", Jsonx.Float incr_ns);
      ("speedup", Jsonx.Float speedup);
      ("tree_full_reconverge_ns", Jsonx.Float tree_full_ns);
      ("tree_incremental_reconverge_ns", Jsonx.Float tree_incr_ns);
      ("tree_speedup", Jsonx.Float tree_speedup);
      ("engine_events", Jsonx.Int events);
      ("engine_events_per_sec", Jsonx.Float events_per_sec);
    ];
  let metrics =
    Bench_support.Trend.
      [
        metric "incremental_reconverge_ns" incr_ns;
        metric "tree_incremental_reconverge_ns" tree_incr_ns;
        metric ~lower_better:false "engine_events_per_sec" events_per_sec;
      ]
  in
  let trend_ok =
    (not gate_trend)
    || Bench_support.Trend.gate ~history ~bench:"dynamics" ~label:"gate-trend"
         metrics
  in
  Bench_support.Trend.append ~history ~bench:"dynamics" metrics;
  if not trend_ok then exit 1;
  if speedup < 5. then begin
    Printf.printf
      "FAIL: incremental reconvergence under 5x faster than full on \
       uniform single-link flaps\n";
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let history = ref Bench_support.Trend.default_history in
  let gate_trend = ref false in
  let rec parse ~check_mode ~out ~iters = function
    | [] -> (check_mode, out, iters)
    | "--check" :: rest -> parse ~check_mode:true ~out ~iters rest
    | "--out" :: file :: rest -> parse ~check_mode ~out:file ~iters rest
    | "--history" :: file :: rest ->
        history := file;
        parse ~check_mode ~out ~iters rest
    | "--gate-trend" :: rest ->
        gate_trend := true;
        parse ~check_mode ~out ~iters rest
    | n :: rest -> parse ~check_mode ~out ~iters:(int_of_string n) rest
  in
  let check_mode, out, iters =
    parse ~check_mode:false ~out:"BENCH_dynamics.json" ~iters:200 args
  in
  if check_mode then check ()
  else bench ~out ~history:!history ~gate_trend:!gate_trend ~iters
