(* Standalone microbenchmark of the hottest algorithm, Propagate.run,
   with a plain wall-clock loop (no Bechamel) so before/after numbers
   for instrumentation changes are quick to produce:

     dune exec bench/micro_propagate.exe -- [iters]

   Prints ns/run over [iters] propagations (default 2000) after a
   warm-up pass.  NETSIM_TRACE=1 enables instrumentation to measure
   its enabled-mode cost. *)

let () =
  let iters =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2000
  in
  let topo = Netsim_topo.Generator.generate Netsim_topo.Generator.default_params in
  let dest =
    List.hd (Netsim_topo.Topology.by_klass topo Netsim_topo.Asn.Eyeball)
  in
  let config = Netsim_bgp.Announce.default ~origin:dest in
  (* Warm-up. *)
  for _ = 1 to 200 do
    ignore (Netsim_bgp.Propagate.run topo config)
  done;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Netsim_bgp.Propagate.run topo config)
  done;
  let t1 = Unix.gettimeofday () in
  let ns = (t1 -. t0) *. 1e9 /. float_of_int iters in
  Printf.printf "propagate: %d iters, %.0f ns/run (%.3f ms/run)\n" iters ns
    (ns /. 1e6)
