(* Microbenchmark of the propagation core and the RIB cache:

     dune exec bench/micro_propagate.exe -- [--out FILE] [--history FILE]
       [--gate] [--gate-trend] [--gate-overhead] [iters]

   Measures (a) ns/run of the optimized Dial-queue/flat-array core
   ([Propagate.run]) against the retained Set-based
   [Propagate.run_reference] on the default topology scale, verifying
   bit-identical results while at it, and (b) the RIB-cache hit rate
   on a figure-shaped workload (the repeated per-origin runs the
   egress / anycast / availability layers issue).  Writes the numbers
   as JSON (default BENCH_core.json) and appends a history record to
   BENCH_history.jsonl.

   --gate enforces the PR acceptance bound: the optimized core must be
   >= 2x faster than the reference; exits non-zero otherwise (used by
   the CI bench smoke).  --gate-trend fails when a tracked metric
   regresses > 15% against the median of the last 5 history records.
   --gate-overhead is the obs.overhead self-check: the
   disabled-telemetry core ns/run must stay within 2% of its history
   median (the "instrumentation stays free when off" bound).
   NETSIM_TRACE=1 measures enabled-instrumentation cost instead. *)

module Topology = Netsim_topo.Topology
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Jsonx = Netsim_obs.Jsonx

let time_ns f iters =
  f () (* warm-up *);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let history = ref Bench_support.Trend.default_history in
  let gate_trend = ref false in
  let gate_overhead = ref false in
  let rec parse ~out ~gate ~iters = function
    | [] -> (out, gate, iters)
    | "--out" :: file :: rest -> parse ~out:file ~gate ~iters rest
    | "--history" :: file :: rest ->
        history := file;
        parse ~out ~gate ~iters rest
    | "--gate" :: rest -> parse ~out ~gate:true ~iters rest
    | "--gate-trend" :: rest ->
        gate_trend := true;
        parse ~out ~gate ~iters rest
    | "--gate-overhead" :: rest ->
        gate_overhead := true;
        parse ~out ~gate ~iters rest
    | n :: rest -> parse ~out ~gate ~iters:(int_of_string n) rest
  in
  let out, gate, iters = parse ~out:"BENCH_core.json" ~gate:false ~iters:500 args in
  let topo =
    Netsim_topo.Generator.generate Netsim_topo.Generator.default_params
  in
  let dest =
    List.hd (Topology.by_klass topo Netsim_topo.Asn.Eyeball)
  in
  let config = Announce.default ~origin:dest in
  (* The two cores must agree before their timings mean anything, and
     the provenance-instrumented run must select identical routes. *)
  if not (Propagate.equal (Propagate.run topo config) (Propagate.run_reference topo config))
  then begin
    print_string "FAIL: optimized and reference propagation disagree\n";
    exit 1
  end;
  if
    not
      (Propagate.equal
         (Propagate.run ~provenance:true topo config)
         (Propagate.run ~provenance:false topo config))
  then begin
    print_string "FAIL: provenance-instrumented propagation changes routes\n";
    exit 1
  end;
  (* optimized_ns runs with provenance off (the default), so the
     existing --gate-overhead bound doubles as the "provenance is free
     when disabled" check. *)
  let opt_ns =
    time_ns (fun () -> ignore (Propagate.run ~provenance:false topo config)) iters
  in
  let prov_ns =
    time_ns (fun () -> ignore (Propagate.run ~provenance:true topo config)) iters
  in
  let ref_ns =
    time_ns (fun () -> ignore (Propagate.run_reference topo config)) iters
  in
  let speedup = ref_ns /. opt_ns in
  (* Figure-shaped cache workload: the availability sweep recomputes
     the same healthy baseline for every failed site, the egress and
     anycast layers re-run a handful of per-origin configs.  Model it
     as [sites] rounds of (1 baseline + 1 fresh per-site config),
     measured against a cold private shard. *)
  let sites = 20 in
  let eyeballs =
    Array.of_list (Topology.by_klass topo Netsim_topo.Asn.Eyeball)
  in
  let hit_rate, cached_ns =
    Rib_cache.capture (Rib_cache.fresh_shard ()) @@ fun () ->
    Rib_cache.clear ();
    let t0 = Unix.gettimeofday () in
    for s = 0 to sites - 1 do
      ignore (Rib_cache.run topo config);
      ignore
        (Rib_cache.run topo
           (Announce.default ~origin:eyeballs.(s mod Array.length eyeballs)))
    done;
    let elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    let lookups = Rib_cache.hits () + Rib_cache.misses () in
    ( float_of_int (Rib_cache.hits ()) /. float_of_int lookups,
      elapsed_ns /. float_of_int lookups )
  in
  Printf.printf
    "propagate: %d iters  optimized %.0f ns/run  reference %.0f ns/run  \
     speedup %.2fx\n\
     provenance: %.0f ns/run instrumented (%+.1f%% over disabled)\n\
     rib-cache: figure-shaped workload  hit rate %.2f  %.0f ns/lookup\n"
    iters opt_ns ref_ns speedup prov_ns
    (100. *. ((prov_ns /. opt_ns) -. 1.))
    hit_rate cached_ns;
  Bench_support.Bench_out.write ~out ~bench:"core"
    [
      ("iters", Jsonx.Int iters);
      ("as_count", Jsonx.Int (Topology.as_count topo));
      ("link_count", Jsonx.Int (Topology.link_count topo));
      ("optimized_ns", Jsonx.Float opt_ns);
      ("provenance_ns", Jsonx.Float prov_ns);
      ("reference_ns", Jsonx.Float ref_ns);
      ("speedup", Jsonx.Float speedup);
      ("cache_hit_rate", Jsonx.Float hit_rate);
      ("cache_ns_per_lookup", Jsonx.Float cached_ns);
    ];
  let metrics =
    Bench_support.Trend.
      [
        metric "optimized_ns" opt_ns;
        metric "provenance_ns" prov_ns;
        metric "cache_ns_per_lookup" cached_ns;
        metric ~lower_better:false "cache_hit_rate" hit_rate;
      ]
  in
  (* Gates read the records that existed before this run; the current
     run is appended after, so a regression can't dilute its own
     baseline. *)
  let trend_ok =
    (not !gate_trend)
    || Bench_support.Trend.gate ~history:!history ~bench:"core"
         ~label:"gate-trend" metrics
  in
  let overhead_ok =
    (not !gate_overhead)
    || Bench_support.Trend.gate ~history:!history ~tolerance:0.02
         ~bench:"core" ~label:"gate-overhead"
         [ Bench_support.Trend.metric "optimized_ns" opt_ns ]
  in
  Bench_support.Trend.append ~history:!history ~bench:"core" metrics;
  if gate && speedup < 2. then begin
    Printf.printf
      "FAIL: optimized propagation under 2x faster than the Set-based \
       reference\n";
    exit 1
  end;
  if not (trend_ok && overhead_ok) then exit 1
