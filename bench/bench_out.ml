(* Shared writer for the BENCH_*.json result files.  Every micro_*
   bench emits one object through here, so the files carry a uniform
   schema_version / bench / host-context header instead of three
   hand-rolled layouts. *)

module Jsonx = Netsim_obs.Jsonx

let schema_version = 1

let git_sha = Netsim_serve.Version.git_sha

let json ~bench fields =
  Jsonx.Obj
    (("schema_version", Jsonx.Int schema_version)
    :: ("bench", Jsonx.String bench)
    :: fields)

let write ~out ~bench fields =
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Jsonx.to_string (json ~bench fields));
      output_char oc '\n')
