(* Microbenchmark of internet-scale batched multi-origin propagation:

     dune exec bench/micro_scale.exe -- [--out FILE] [--history FILE]
       [--gate] [--gate-trend] [--origins N] [iters]

   Generates the ~75k-AS scale topology, propagates a spread of stub
   origins once through [Propagate.run_batch] and once as independent
   [Propagate.run] calls — verifying entry-for-entry equality before
   any timing — and reports wall time per sweep, throughput in
   AS-states computed per second, the batched-over-sequential speedup
   and the process's peak RSS.  Writes the numbers as JSON (default
   BENCH_scale.json) and appends a history record to
   BENCH_history.jsonl under bench "scale" with a per-workload variant
   tag, so differently-sized runs never gate against each other.

   --gate enforces the PR acceptance bound: >= 50k ASes, >= 64
   origins, and the batched sweep >= 2x faster than the sequential
   loop; exits non-zero otherwise (used by the CI bench smoke).
   --gate-trend fails when a tracked metric regresses > 15% against
   the median of the last 5 history records of the same variant. *)

module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Jsonx = Netsim_obs.Jsonx

let time_s f iters =
  f () (* warm-up *);
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    f ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int iters

(* Peak resident set size in kB, from the kernel's high-water mark. *)
let peak_rss_kb () =
  try
    let ic = open_in "/proc/self/status" in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec scan () =
          let line = input_line ic in
          match String.index_opt line ':' with
          | Some i when String.sub line 0 i = "VmHWM" ->
              String.sub line (i + 1) (String.length line - i - 1)
              |> String.trim
              |> (fun s ->
                   match String.index_opt s ' ' with
                   | Some j -> String.sub s 0 j
                   | None -> s)
              |> int_of_string
          | _ -> scan ()
        in
        scan ())
  with _ -> 0

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let history = ref Bench_support.Trend.default_history in
  let gate_trend = ref false in
  let origins_n = ref 64 in
  let rec parse ~out ~gate ~iters = function
    | [] -> (out, gate, iters)
    | "--out" :: file :: rest -> parse ~out:file ~gate ~iters rest
    | "--history" :: file :: rest ->
        history := file;
        parse ~out ~gate ~iters rest
    | "--gate" :: rest -> parse ~out ~gate:true ~iters rest
    | "--gate-trend" :: rest ->
        gate_trend := true;
        parse ~out ~gate ~iters rest
    | "--origins" :: n :: rest ->
        origins_n := int_of_string n;
        parse ~out ~gate ~iters rest
    | n :: rest -> parse ~out ~gate ~iters:(int_of_string n) rest
  in
  let out, gate, iters =
    parse ~out:"BENCH_scale.json" ~gate:false ~iters:2 args
  in
  let topo =
    match Generator.generate_scale Generator.scale_params with
    | Ok t -> t
    | Error e ->
        Printf.printf "FAIL: generate_scale: %s\n" e;
        exit 1
  in
  let n = Topology.as_count topo in
  let stubs = Array.of_list (Topology.by_klass topo Netsim_topo.Asn.Stub) in
  let k = Stdlib.min !origins_n (Array.length stubs) in
  let configs =
    Array.init k (fun i ->
        Announce.default ~origin:stubs.(i * Array.length stubs / k))
  in
  (* Correctness before speed: every batched state must be
     entry-for-entry equal to an independent run of its config. *)
  let batched = Propagate.run_batch topo configs in
  Array.iteri
    (fun i st ->
      if not (Propagate.equal st (Propagate.run topo configs.(i))) then begin
        Printf.printf "FAIL: batched state %d differs from sequential run\n" i;
        exit 1
      end)
    batched;
  let batch_s =
    time_s (fun () -> ignore (Propagate.run_batch topo configs)) iters
  in
  let seq_s =
    time_s
      (fun () ->
        Array.iter (fun c -> ignore (Propagate.run topo c)) configs)
      iters
  in
  let speedup = seq_s /. batch_s in
  let ases_per_sec = float_of_int (n * k) /. batch_s in
  let rss_kb = peak_rss_kb () in
  Printf.printf
    "scale: %d ASes  %d links  %d origins  %d iters\n\
     batched %.3f s/sweep  sequential %.3f s/sweep  speedup %.2fx\n\
     throughput %.0f AS-states/s  peak RSS %d kB\n"
    n (Topology.link_count topo) k iters batch_s seq_s speedup ases_per_sec
    rss_kb;
  Bench_support.Bench_out.write ~out ~bench:"scale"
    [
      ("iters", Jsonx.Int iters);
      ("as_count", Jsonx.Int n);
      ("link_count", Jsonx.Int (Topology.link_count topo));
      ("origins", Jsonx.Int k);
      ("batch_s", Jsonx.Float batch_s);
      ("sequential_s", Jsonx.Float seq_s);
      ("speedup", Jsonx.Float speedup);
      ("ases_per_sec", Jsonx.Float ases_per_sec);
      ("peak_rss_kb", Jsonx.Int rss_kb);
    ];
  let variant = Printf.sprintf "n%d_o%d" n k in
  let metrics =
    Bench_support.Trend.
      [
        metric "batch_s" batch_s;
        metric ~lower_better:false "speedup" speedup;
        metric ~lower_better:false "ases_per_sec" ases_per_sec;
        metric "peak_rss_kb" (float_of_int rss_kb);
      ]
  in
  (* Gate against the records that existed before this run, then
     append — a regression can't dilute its own baseline. *)
  let trend_ok =
    (not !gate_trend)
    || Bench_support.Trend.gate ~history:!history ~bench:"scale" ~variant
         ~label:"gate-trend" metrics
  in
  Bench_support.Trend.append ~history:!history ~bench:"scale" ~variant metrics;
  if gate then begin
    if n < 50_000 then begin
      Printf.printf "FAIL: topology under 50k ASes (%d)\n" n;
      exit 1
    end;
    if k < 64 then begin
      Printf.printf "FAIL: fewer than 64 origins (%d)\n" k;
      exit 1
    end;
    if speedup < 2. then begin
      Printf.printf
        "FAIL: batched propagation under 2x faster than sequential (%.2fx)\n"
        speedup;
      exit 1
    end
  end;
  if not trend_ok then exit 1
