.PHONY: all build test bench verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full gate: build, run the test suite, then smoke-test the CLI with
# tracing on and assert the span tree actually covers the pipeline.
verify: build test
	dune exec bin/beatbgp_cli.exe -- fig1 --small --trace > /tmp/beatbgp_verify.out
	grep -q "=== trace (wall clock) ===" /tmp/beatbgp_verify.out
	grep -q "scenario.facebook" /tmp/beatbgp_verify.out
	grep -q "bgp.propagate" /tmp/beatbgp_verify.out
	grep -q "latency.rtt.ms" /tmp/beatbgp_verify.out
	dune exec bin/beatbgp_cli.exe -- fig1 --small --metrics-out /tmp/beatbgp_verify.json > /dev/null
	grep -q '"counters"' /tmp/beatbgp_verify.json
	dune exec bin/beatbgp_cli.exe -- dynamics --small > /tmp/beatbgp_dynamics.out
	diff -u test/golden/dynamics_small.txt /tmp/beatbgp_dynamics.out
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- robustness --small > /tmp/beatbgp_robustness_d1.out
	diff -u test/golden/robustness_small.txt /tmp/beatbgp_robustness_d1.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- robustness --small > /tmp/beatbgp_robustness_d4.out
	diff -u test/golden/robustness_small.txt /tmp/beatbgp_robustness_d4.out
	dune exec bench/micro_dynamics.exe -- --check
	# RIB cache transparency: the whole pipeline must be byte-identical
	# with the cache enabled vs disabled, serially and with a 4-domain
	# pool.
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- all --small > /tmp/beatbgp_all_d1.out
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- all --small --no-rib-cache > /tmp/beatbgp_all_d1_nocache.out
	diff -u /tmp/beatbgp_all_d1.out /tmp/beatbgp_all_d1_nocache.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- all --small > /tmp/beatbgp_all_d4.out
	diff -u /tmp/beatbgp_all_d1.out /tmp/beatbgp_all_d4.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- all --small --no-rib-cache > /tmp/beatbgp_all_d4_nocache.out
	diff -u /tmp/beatbgp_all_d1.out /tmp/beatbgp_all_d4_nocache.out
	# Internet-scale batching: the scale sweep (with its differential
	# batched-vs-sequential check on) must match the golden transcript
	# byte-for-byte across cache on/off and 1 vs 4 domains.
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- scale --small --check > /tmp/beatbgp_scale_d1.out
	diff -u test/golden/scale_small.txt /tmp/beatbgp_scale_d1.out
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- scale --small --check --no-rib-cache > /tmp/beatbgp_scale_d1_nocache.out
	diff -u test/golden/scale_small.txt /tmp/beatbgp_scale_d1_nocache.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- scale --small --check > /tmp/beatbgp_scale_d4.out
	diff -u test/golden/scale_small.txt /tmp/beatbgp_scale_d4.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- scale --small --check --no-rib-cache > /tmp/beatbgp_scale_d4_nocache.out
	diff -u test/golden/scale_small.txt /tmp/beatbgp_scale_d4_nocache.out
	# Flight-recorder determinism: the event log must be byte-identical
	# run-to-run and across domain counts.
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- dynamics --small --event-log /tmp/beatbgp_events_a.jsonl > /dev/null
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- dynamics --small --event-log /tmp/beatbgp_events_b.jsonl > /dev/null
	diff -q /tmp/beatbgp_events_a.jsonl /tmp/beatbgp_events_b.jsonl
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- dynamics --small --event-log /tmp/beatbgp_events_d4.jsonl > /dev/null
	diff -q /tmp/beatbgp_events_a.jsonl /tmp/beatbgp_events_d4.jsonl
	head -1 /tmp/beatbgp_events_a.jsonl | grep -q '"schema":"beatbgp.events/1"'
	# Exporter smoke: Prometheus text format and a parseable Perfetto trace.
	dune exec bin/beatbgp_cli.exe -- fig1 --small --metrics-prom /tmp/beatbgp_verify.prom --trace-perfetto /tmp/beatbgp_verify_trace.json > /dev/null
	grep -q '# TYPE netsim_bgp_announcements_exported_total counter' /tmp/beatbgp_verify.prom
	grep -q 'netsim_latency_rtt_ms_bucket{le="+Inf"}' /tmp/beatbgp_verify.prom
	grep -q '"traceEvents"' /tmp/beatbgp_verify_trace.json
	grep -q '"name":"bgp.propagate"' /tmp/beatbgp_verify_trace.json
	# obs.overhead self-check: disabled-telemetry core ns/run within 2% of
	# its history median (skipped until BENCH_history.jsonl has 3 records).
	dune exec bench/micro_propagate.exe -- --gate-overhead 200
	# Serve smoke: one query of each type against the golden transcript,
	# a Prometheus scrape through the wire protocol, and the two load
	# paths — snapshot writing must be deterministic across processes,
	# and a snapshot-loaded daemon must answer the churned query stream
	# byte-identically to the seed-built daemon it was saved from.
	dune exec bin/beatbgp_cli.exe -- serve --small --churn < test/golden/serve_smoke_queries.txt > /tmp/beatbgp_serve_smoke.out
	diff -u test/golden/serve_smoke.txt /tmp/beatbgp_serve_smoke.out
	printf 'PROM\nQUIT\n' | dune exec bin/beatbgp_cli.exe -- serve --small > /tmp/beatbgp_serve_prom.out
	grep -q '# TYPE netsim_serve_requests_total counter' /tmp/beatbgp_serve_prom.out
	dune exec bin/beatbgp_cli.exe -- serve --small --churn --save-snapshot /tmp/beatbgp_serve_a.snap < /dev/null > /dev/null
	dune exec bin/beatbgp_cli.exe -- serve --small --churn --save-snapshot /tmp/beatbgp_serve_b.snap < /dev/null > /dev/null
	cmp /tmp/beatbgp_serve_a.snap /tmp/beatbgp_serve_b.snap
	dune exec bin/beatbgp_cli.exe -- serve --small --churn --snapshot /tmp/beatbgp_serve_a.snap < test/golden/serve_smoke_queries.txt > /tmp/beatbgp_serve_loaded.out
	diff -u /tmp/beatbgp_serve_smoke.out /tmp/beatbgp_serve_loaded.out
	# Snapshot schema skew: a v1-written snapshot (legacy stream format)
	# and a v2-written one (mmap arena format, the default) must both
	# load and answer the churned query stream byte-identically.
	dune exec bin/beatbgp_cli.exe -- serve --small --churn --save-snapshot /tmp/beatbgp_serve_v1.snap --snapshot-version 1 < /dev/null > /dev/null
	dune exec bin/beatbgp_cli.exe -- serve --small --churn --snapshot /tmp/beatbgp_serve_v1.snap < test/golden/serve_smoke_queries.txt > /tmp/beatbgp_serve_v1.out
	diff -u /tmp/beatbgp_serve_smoke.out /tmp/beatbgp_serve_v1.out
	# Concurrent serving: three interleaved client streams must receive
	# byte-identical responses at 1 vs 4 domains, and each client's
	# responses must equal the stream served alone on a fresh daemon.
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- serve --small --streams test/golden/serve_stream_a.txt,test/golden/serve_stream_b.txt,test/golden/serve_stream_c.txt > /tmp/beatbgp_streams_d1.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- serve --small --streams test/golden/serve_stream_a.txt,test/golden/serve_stream_b.txt,test/golden/serve_stream_c.txt > /tmp/beatbgp_streams_d4.out
	diff -u /tmp/beatbgp_streams_d1.out /tmp/beatbgp_streams_d4.out
	dune exec bin/beatbgp_cli.exe -- serve --small --streams test/golden/serve_stream_a.txt > /tmp/beatbgp_streams_alone.out
	dune exec bin/beatbgp_cli.exe -- serve --small --streams test/golden/serve_stream_b.txt >> /tmp/beatbgp_streams_alone.out
	dune exec bin/beatbgp_cli.exe -- serve --small --streams test/golden/serve_stream_c.txt >> /tmp/beatbgp_streams_alone.out
	awk 'BEGIN{n=-1} /^=== client 0 ===$$/{n++; print "=== client " n " ==="; next} {print}' /tmp/beatbgp_streams_alone.out > /tmp/beatbgp_streams_alone_renum.out
	diff -u /tmp/beatbgp_streams_d1.out /tmp/beatbgp_streams_alone_renum.out
	# Provenance smoke: `beatbgp explain` prints the golden decision
	# chain, the JSONL dump is schema-tagged, and an EXPLAIN bumps the
	# provenance counters visible in a wire-protocol PROM scrape.
	dune exec bin/beatbgp_cli.exe -- explain --small --prefix anycast --as 39 --provenance-out /tmp/beatbgp_prov.jsonl > /tmp/beatbgp_explain.out
	diff -u test/golden/explain_small.txt /tmp/beatbgp_explain.out
	head -1 /tmp/beatbgp_prov.jsonl | grep -q '"schema":"beatbgp.provenance/1"'
	printf 'EXPLAIN anycast 39\nPROM\nQUIT\n' | dune exec bin/beatbgp_cli.exe -- serve --small > /tmp/beatbgp_serve_explain_prom.out
	grep -q '# TYPE netsim_provenance_decisions_peer_total counter' /tmp/beatbgp_serve_explain_prom.out
	grep -q 'netsim_provenance_tiebreak_stable_id_total' /tmp/beatbgp_serve_explain_prom.out
	dune exec bin/beatbgp_cli.exe -- --version | grep -q 'snapshot BBGPSNAP/1-2'
	dune exec bin/beatbgp_cli.exe -- --version | grep -q 'beatbgp.provenance/1'
	@echo "verify: OK"

clean:
	dune clean
