.PHONY: all build test bench verify clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Full gate: build, run the test suite, then smoke-test the CLI with
# tracing on and assert the span tree actually covers the pipeline.
verify: build test
	dune exec bin/beatbgp_cli.exe -- fig1 --small --trace > /tmp/beatbgp_verify.out
	grep -q "=== trace (wall clock) ===" /tmp/beatbgp_verify.out
	grep -q "scenario.facebook" /tmp/beatbgp_verify.out
	grep -q "bgp.propagate" /tmp/beatbgp_verify.out
	grep -q "latency.rtt.ms" /tmp/beatbgp_verify.out
	dune exec bin/beatbgp_cli.exe -- fig1 --small --metrics-out /tmp/beatbgp_verify.json > /dev/null
	grep -q '"counters"' /tmp/beatbgp_verify.json
	dune exec bin/beatbgp_cli.exe -- dynamics --small > /tmp/beatbgp_dynamics.out
	diff -u test/golden/dynamics_small.txt /tmp/beatbgp_dynamics.out
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- robustness --small > /tmp/beatbgp_robustness_d1.out
	diff -u test/golden/robustness_small.txt /tmp/beatbgp_robustness_d1.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- robustness --small > /tmp/beatbgp_robustness_d4.out
	diff -u test/golden/robustness_small.txt /tmp/beatbgp_robustness_d4.out
	dune exec bench/micro_dynamics.exe -- --check
	# RIB cache transparency: the whole pipeline must be byte-identical
	# with the cache enabled vs disabled, serially and with a 4-domain
	# pool.
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- all --small > /tmp/beatbgp_all_d1.out
	NETSIM_DOMAINS=1 dune exec bin/beatbgp_cli.exe -- all --small --no-rib-cache > /tmp/beatbgp_all_d1_nocache.out
	diff -u /tmp/beatbgp_all_d1.out /tmp/beatbgp_all_d1_nocache.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- all --small > /tmp/beatbgp_all_d4.out
	diff -u /tmp/beatbgp_all_d1.out /tmp/beatbgp_all_d4.out
	NETSIM_DOMAINS=4 dune exec bin/beatbgp_cli.exe -- all --small --no-rib-cache > /tmp/beatbgp_all_d4_nocache.out
	diff -u /tmp/beatbgp_all_d1.out /tmp/beatbgp_all_d4_nocache.out
	@echo "verify: OK"

clean:
	dune clean
