(* Command-line driver: regenerate every figure and analysis of the
   paper from the simulator, print ASCII plots / CSV, and check the
   tracked prose claims.

   Every runner renders to a string instead of printing directly: this
   is what lets `beatbgp all` shard whole figures across the domain
   pool (Netsim_par.Pool) and still emit byte-identical stdout — the
   fan-in concatenates the per-figure strings in submission order.
   The pool size comes from NETSIM_DOMAINS (default: all cores; 1
   reproduces the serial path exactly). *)

open Cmdliner

let sizes_of ~seed ~prefixes ~days ~small =
  let base =
    if small then Beatbgp.Scenario.test_sizes else Beatbgp.Scenario.default_sizes
  in
  {
    base with
    Beatbgp.Scenario.seed;
    n_prefixes = (match prefixes with Some n -> n | None -> base.Beatbgp.Scenario.n_prefixes);
    days = (match days with Some d -> d | None -> base.Beatbgp.Scenario.days);
  }

let emit ~csv figure =
  if csv then Beatbgp.Figure.to_csv figure
  else begin
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Beatbgp.Figure.render figure);
    let claims = Beatbgp.Claims.of_figure figure in
    if claims <> [] then begin
      Buffer.add_string buf "  paper-claim checks:\n";
      Buffer.add_string buf (Beatbgp.Claims.render claims)
    end;
    Buffer.contents buf
  end

(* ---- common options ---- *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let prefixes_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "prefixes" ] ~doc:"Number of client prefixes.")

let days_t =
  Arg.(
    value
    & opt (some float) None
    & info [ "days" ] ~doc:"Simulated measurement horizon in days.")

let small_t =
  Arg.(value & flag & info [ "small" ] ~doc:"Use the small test topology.")

let csv_t =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a plot.")

let trace_t =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Record spans and metrics while running and print the trace \
           report afterwards (also enabled by \\$(b,NETSIM_TRACE)).")

let metrics_out_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the recorded metrics and trace as JSON to \\$(docv).")

let metrics_prom_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-prom" ] ~docv:"FILE"
        ~doc:
          "Write the recorded metrics in Prometheus text-exposition format \
           (v0.0.4) to \\$(docv).  Implies tracing.")

let trace_perfetto_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-perfetto" ] ~docv:"FILE"
        ~doc:
          "Write the span tree as Chrome trace-event JSON to \\$(docv), \
           openable in Perfetto / chrome://tracing.  Implies tracing.")

let event_log_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "event-log" ] ~docv:"FILE"
        ~doc:
          "Record the structured event stream (flight recorder) and flush \
           it as JSONL to \\$(docv).  Deterministic: byte-identical \
           run-to-run and for any \\$(b,NETSIM_DOMAINS).")

let domains_t =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Size of the parallel domain pool (default: \\$(b,NETSIM_DOMAINS) \
           or all cores; 1 = serial). Output is byte-identical for any \
           value.")

let no_rib_cache_t =
  Arg.(
    value & flag
    & info [ "no-rib-cache" ]
        ~doc:
          "Disable the content-addressed RIB cache and recompute every \
           propagation from scratch (also \\$(b,NETSIM_RIB_CACHE=0)). \
           Output is byte-identical either way.")

let with_sizes f seed prefixes days small csv trace metrics_out metrics_prom
    trace_perfetto event_log domains no_rib_cache =
  let sizes = sizes_of ~seed ~prefixes ~days ~small in
  (match domains with
  | Some n -> Netsim_par.Pool.set_domain_count n
  | None -> ());
  if no_rib_cache then Netsim_bgp.Rib_cache.set_enabled false;
  let tracing =
    trace || metrics_out <> None || metrics_prom <> None
    || trace_perfetto <> None
    || Netsim_obs.Metrics.enabled ()
  in
  if tracing then Netsim_obs.Metrics.set_enabled true;
  if event_log <> None then Netsim_obs.Recorder.set_enabled true;
  (* Telemetry writes fail with an actionable message (bad directory,
     permissions) instead of a raw Sys_error backtrace. *)
  let write_or_die what write =
    try write ()
    with Failure msg | Sys_error msg ->
      Printf.eprintf "beatbgp: cannot write %s: %s\n" what msg;
      exit 1
  in
  print_string (f ~sizes ~csv);
  if tracing then begin
    print_newline ();
    print_string (Netsim_obs.Report.render ())
  end;
  (match metrics_out with
  | Some path ->
      write_or_die "metrics file" (fun () -> Netsim_obs.Report.write_json path)
  | None -> ());
  (match metrics_prom with
  | Some path ->
      write_or_die "Prometheus file" (fun () ->
          Netsim_obs.Export_prom.write path)
  | None -> ());
  (match trace_perfetto with
  | Some path ->
      write_or_die "Perfetto trace" (fun () ->
          Netsim_obs.Export_trace.write path)
  | None -> ());
  match event_log with
  | Some path ->
      write_or_die "event log" (fun () ->
          Netsim_obs.Report.write_text path (Netsim_obs.Recorder.to_jsonl ()))
  | None -> ()

let run_fig1 ~sizes ~csv =
  let fb = Beatbgp.Scenario.facebook ~sizes () in
  emit ~csv (Beatbgp.Fig1_pop_egress.run fb).Beatbgp.Fig1_pop_egress.figure

let run_fig2 ~sizes ~csv =
  let fb = Beatbgp.Scenario.facebook ~sizes () in
  emit ~csv (Beatbgp.Fig2_route_classes.run fb).Beatbgp.Fig2_route_classes.figure

let run_fig3 ~sizes ~csv =
  let ms = Beatbgp.Scenario.microsoft ~sizes () in
  emit ~csv (Beatbgp.Fig3_anycast_gap.run ms).Beatbgp.Fig3_anycast_gap.figure

let run_fig4 ~sizes ~csv =
  let ms = Beatbgp.Scenario.microsoft ~sizes () in
  emit ~csv (Beatbgp.Fig4_dns_redirection.run ms).Beatbgp.Fig4_dns_redirection.figure

let run_fig5 ~sizes ~csv =
  let gc = Beatbgp.Scenario.google ~sizes () in
  let result = Beatbgp.Fig5_cloud_tiers.run gc in
  emit ~csv result.Beatbgp.Fig5_cloud_tiers.figure
  ^
  if not csv then "\n" ^ Beatbgp.Fig5_cloud_tiers.render_map result else ""

let run_degrade ~sizes ~csv =
  let fb = Beatbgp.Scenario.facebook ~sizes () in
  let fig1 = Beatbgp.Fig1_pop_egress.run fb in
  emit ~csv (Beatbgp.Degrade_together.analyze fig1).Beatbgp.Degrade_together.figure

let run_peering ~sizes ~csv =
  emit ~csv (Beatbgp.Peering_ablation.run ~sizes ()).Beatbgp.Peering_ablation.figure

let run_grooming ~sizes ~csv =
  let ms = Beatbgp.Scenario.microsoft ~sizes () in
  emit ~csv (Beatbgp.Grooming.run ms).Beatbgp.Grooming.figure

let run_wanfrac ~sizes ~csv =
  let gc = Beatbgp.Scenario.google ~sizes () in
  emit ~csv (Beatbgp.Wan_fraction.run gc).Beatbgp.Wan_fraction.figure

let run_goodput ~sizes ~csv =
  let fb = Beatbgp.Scenario.facebook ~sizes () in
  emit ~csv (Beatbgp.Goodput_egress.run fb).Beatbgp.Goodput_egress.figure

let run_availability ~sizes ~csv =
  let ms = Beatbgp.Scenario.microsoft ~sizes () in
  let result = Beatbgp.Availability.run ms in
  let out = emit ~csv result.Beatbgp.Availability.figure in
  let asid =
    (Netsim_cdn.Anycast.deployment ms.Beatbgp.Scenario.ms_system)
      .Netsim_cdn.Deployment.asid
  in
  if csv then out
  else
    out
    ^ String.concat ""
        (List.map
           (fun (f : Beatbgp.Availability.site_failure) ->
             Printf.sprintf
               "  %-22s %-14s affected %5.1f%%  anycast +%6.1f ms  DNS-pinned %5.1f%% for %gs\n"
               (Netsim_dynamics.Event.label
                  (Netsim_dynamics.Event.Site_down
                     { asid; metro = f.Beatbgp.Availability.site }))
               (Netsim_geo.World.cities.(f.Beatbgp.Availability.site)).Netsim_geo.City.name
               (100. *. f.Beatbgp.Availability.affected_share)
               f.Beatbgp.Availability.anycast_delta_ms
               (100. *. f.Beatbgp.Availability.dns_outage_share)
               (f.Beatbgp.Availability.dns_outage_client_seconds
               /. Float.max 1e-9 f.Beatbgp.Availability.dns_outage_share))
           result.Beatbgp.Availability.failures)

let run_dynamics ~sizes ~csv =
  let fb = Beatbgp.Scenario.facebook ~sizes () in
  let result = Beatbgp.Dynamics_stale.run fb in
  let out = emit ~csv result.Beatbgp.Dynamics_stale.figure in
  if csv then out
  else
    out
    ^ String.concat ""
        (List.map
           (fun (c : Beatbgp.Dynamics_stale.cell) ->
             Printf.sprintf
               "  %-5s staleness %6.0f min  mean %+7.2f ms  p10 %+7.2f ms  \
                ticks %4d  events %5d  dirty %6d\n"
               c.Beatbgp.Dynamics_stale.churn c.Beatbgp.Dynamics_stale.staleness_min
               c.Beatbgp.Dynamics_stale.mean_advantage_ms
               c.Beatbgp.Dynamics_stale.p10_advantage_ms
               c.Beatbgp.Dynamics_stale.ticks c.Beatbgp.Dynamics_stale.events
               c.Beatbgp.Dynamics_stale.dirty_entries)
           result.Beatbgp.Dynamics_stale.cells)

let run_hybrid ~sizes ~csv =
  let ms = Beatbgp.Scenario.microsoft ~sizes () in
  emit ~csv (Beatbgp.Hybrid.run ms).Beatbgp.Hybrid.figure

let run_splittcp ~sizes ~csv =
  let gc = Beatbgp.Scenario.google ~sizes () in
  emit ~csv (Beatbgp.Split_tcp.run gc).Beatbgp.Split_tcp.figure

let run_sites ~sizes ~csv =
  emit ~csv (Beatbgp.Site_density.run ~sizes ()).Beatbgp.Site_density.figure

let run_ecs ~sizes ~csv =
  emit ~csv (Beatbgp.Ecs_ablation.run ~sizes ()).Beatbgp.Ecs_ablation.figure

let run_robustness ~sizes ~csv =
  let result = Beatbgp.Robustness.run ~sizes () in
  let out = emit ~csv result.Beatbgp.Robustness.figure in
  if csv then out
  else
    out
    ^ String.concat ""
        (List.map
           (fun (c : Beatbgp.Robustness.claim_summary) ->
             Printf.sprintf
               "  %-28s pass %.2f  mean %10.3f  std %8.3f  [%g, %g]\n"
               c.Beatbgp.Robustness.claim_id c.Beatbgp.Robustness.pass_rate
               c.Beatbgp.Robustness.mean c.Beatbgp.Robustness.std
               c.Beatbgp.Robustness.min c.Beatbgp.Robustness.max)
           result.Beatbgp.Robustness.claims)

let run_groompredict ~sizes ~csv =
  let ms = Beatbgp.Scenario.microsoft ~sizes () in
  emit ~csv (Beatbgp.Groom_predict.run ms).Beatbgp.Groom_predict.figure

let run_all ~sizes ~csv =
  (* Per-figure fan-out across the domain pool: every runner is an
     independent pipeline (each re-derives its scenario from the same
     sizes), and the string fan-in keeps stdout in the serial order. *)
  let runners =
    [|
      run_fig1; run_fig2; run_fig3; run_fig4; run_fig5; run_degrade;
      run_grooming; run_wanfrac; run_goodput; run_availability; run_hybrid;
      run_splittcp; run_ecs;
    |]
  in
  Netsim_par.Pool.map (fun run -> run ~sizes ~csv) runners
  |> Array.to_list |> String.concat ""

let run_compare ~sizes ~csv =
  ignore csv;
  let buf = Buffer.create 4096 in
  let module Sch = Beatbgp.Scheme in
  let rng = Netsim_prng.Splitmix.create (sizes.Beatbgp.Scenario.seed + 9) in
  let windows =
    Netsim_traffic.Window.windows ~days:sizes.Beatbgp.Scenario.days
      ~length_min:60.
  in
  let fb = Beatbgp.Scenario.facebook ~sizes () in
  Buffer.add_string buf "=== egress setting (Figure 1's cast) ===\n";
  Buffer.add_string buf
    (Sch.render
       (Sch.compare_schemes
          [ Sch.egress_bgp fb; Sch.egress_static_oracle fb; Sch.egress_oracle fb ]
          ~prefixes:fb.Beatbgp.Scenario.fb_prefixes ~rng ~windows));
  let ms = Beatbgp.Scenario.microsoft ~sizes () in
  Buffer.add_string buf "\n";
  Buffer.add_string buf "=== anycast CDN setting (Figures 3-4's cast) ===\n";
  Buffer.add_string buf
    (Sch.render
       (Sch.compare_schemes
          [
            Sch.anycast ms; Sch.unicast_oracle ms; Sch.dns_redirection ms;
            Sch.dns_redirection ~margin:25. ~name:"hybrid-25ms" ms;
          ]
          ~prefixes:ms.Beatbgp.Scenario.ms_prefixes ~rng ~windows));
  Buffer.contents buf

let run_rib ~sizes ~csv =
  (* Inspect the content provider's Adj-RIB-In toward a few client
     prefixes, at the serving PoP — the `show ip bgp` view of the
     Figure 1 setting. *)
  ignore csv;
  let buf = Buffer.create 4096 in
  let fb = Beatbgp.Scenario.facebook ~sizes () in
  let topo = fb.Beatbgp.Scenario.fb_deployment.Netsim_cdn.Deployment.topo in
  Array.iteri
    (fun i (e : Netsim_cdn.Egress.entry) ->
      if i < 5 then begin
        let p = e.Netsim_cdn.Egress.prefix in
        let state =
          Netsim_bgp.Rib_cache.run topo
            (Netsim_bgp.Announce.default ~origin:p.Netsim_traffic.Prefix.asid)
        in
        Buffer.add_string buf
          (Netsim_bgp.Show.rib_at_metro topo state
             fb.Beatbgp.Scenario.fb_deployment.Netsim_cdn.Deployment.asid
             ~metro:e.Netsim_cdn.Egress.pop);
        (match e.Netsim_cdn.Egress.options with
        | (o : Netsim_cdn.Egress.option_route) :: _ ->
            Buffer.add_string buf "serving flow:\n";
            Buffer.add_string buf
              (Netsim_bgp.Show.walk topo
                 o.Netsim_cdn.Egress.flow.Netsim_latency.Rtt.walk)
        | [] -> ());
        Buffer.add_string buf "\n"
      end)
    fb.Beatbgp.Scenario.fb_entries;
  Buffer.contents buf

let run_topo ~sizes ~csv =
  ignore csv;
  let buf = Buffer.create 2048 in
  let params =
    { sizes.Beatbgp.Scenario.base with Netsim_topo.Generator.seed = sizes.Beatbgp.Scenario.seed }
  in
  let topo = Netsim_topo.Generator.generate params in
  Buffer.add_string buf
    (Printf.sprintf "ASes: %d  links: %d\n" (Netsim_topo.Topology.as_count topo)
       (Netsim_topo.Topology.link_count topo));
  List.iter
    (fun klass ->
      Buffer.add_string buf
        (Printf.sprintf "  %-8s %d\n"
           (Netsim_topo.Asn.klass_to_string klass)
           (List.length (Netsim_topo.Topology.by_klass topo klass))))
    [
      Netsim_topo.Asn.Tier1; Netsim_topo.Asn.Transit; Netsim_topo.Asn.Eyeball;
      Netsim_topo.Asn.Stub;
    ];
  (match Netsim_topo.Invariants.check topo with
  | [] -> Buffer.add_string buf "invariants: OK\n"
  | violations ->
      Buffer.add_string buf
        (Printf.sprintf "invariants: %d violations\n" (List.length violations));
      List.iter
        (fun v -> Buffer.add_string buf (v ^ "\n"))
        violations);
  Buffer.add_string buf
    (Netsim_bgp.Metrics.render
       (Netsim_bgp.Metrics.compute
          ~rng:(Netsim_prng.Splitmix.create sizes.Beatbgp.Scenario.seed)
          topo));
  Buffer.contents buf

(* ---- the query daemon ---- *)

let run_serve small seed prefixes pops track snapshot save_snapshot
    snapshot_version streams listen_port churn churn_days batch batch_min
    event_log =
  let module Server = Netsim_serve.Server in
  let module Snapshot = Netsim_serve.Snapshot in
  (* The daemon always meters itself: PROM answers come from the
     registry.  Responses stay deterministic — wall-clock values only
     ever appear in PROM bodies. *)
  Netsim_obs.Metrics.set_enabled true;
  if event_log <> None then Netsim_obs.Recorder.set_enabled true;
  let base = if small then Server.small_config else Server.default_config in
  let pick v default = match v with Some v -> v | None -> default in
  let cfg =
    {
      base with
      Server.seed = pick seed base.Server.seed;
      n_prefixes = pick prefixes base.Server.n_prefixes;
      pop_count = pick pops base.Server.pop_count;
      track = pick track base.Server.track;
      churn;
      churn_days = pick churn_days base.Server.churn_days;
      batch = pick batch base.Server.batch;
      batch_minutes = pick batch_min base.Server.batch_minutes;
    }
  in
  let die msg =
    Printf.eprintf "beatbgp serve: %s\n" msg;
    exit 1
  in
  let server =
    match snapshot with
    | None -> Server.build cfg
    | Some path -> (
        match Snapshot.load ~path with
        | Error e -> die e
        | Ok snap -> (
            match Server.of_snapshot cfg snap with
            | Error e -> die e
            | Ok s -> s))
  in
  (match save_snapshot with
  | Some path -> (
      try Snapshot.save ?version:snapshot_version (Server.snapshot server) ~path
      with
      | Sys_error e -> die e
      | Invalid_argument e -> die e)
  | None -> ());
  (match (streams, listen_port) with
  | Some spec, _ ->
      (* Concurrent-clients mode: each FILE is one client's request
         stream; all streams are served through the round executor and
         the framed responses are printed per client — the transcript
         `make verify` diffs against the same streams served alone. *)
      let read_lines path =
        let ic = try open_in path with Sys_error e -> die e in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | exception End_of_file -> List.rev acc
              | l -> go (l :: acc)
            in
            go [])
      in
      let stream_files =
        String.split_on_char ',' spec |> List.filter (fun s -> s <> "")
      in
      let responses =
        Server.serve_streams server
          (Array.of_list (List.map read_lines stream_files))
      in
      Array.iteri
        (fun i resp ->
          Printf.printf "=== client %d ===\n" i;
          List.iter print_string resp)
        responses
  | None, Some port -> Server.listen server ~port
  | None, None -> Server.serve_channels server stdin stdout);
  match event_log with
  | Some path -> (
      try Netsim_obs.Report.write_text path (Netsim_obs.Recorder.to_jsonl ())
      with Failure msg | Sys_error msg -> die ("cannot write event log: " ^ msg))
  | None -> ()

let serve_cmd =
  let opt_int names doc =
    Arg.(value & opt (some int) None & info names ~doc)
  in
  let seed_t = opt_int [ "seed" ] "Scenario seed (default: 42, or 7 with $(b,--small))." in
  let prefixes_t = opt_int [ "prefixes" ] "Number of client prefixes." in
  let pops_t = opt_int [ "pops" ] "Number of provider PoP metros." in
  let track_t =
    opt_int [ "track" ]
      "Client-AS prefixes kept continuously converged in the engine."
  in
  let snapshot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:"Load the serving state from a binary snapshot instead of \
                building it from the seed.")
  in
  let save_snapshot_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-snapshot" ] ~docv:"FILE"
          ~doc:"Write a binary snapshot of the serving state at startup, \
                then serve.")
  in
  let snapshot_version_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "snapshot-version" ] ~docv:"N"
          ~doc:"Schema version for $(b,--save-snapshot): 1 (heap-decoded \
                stream) or 2 (mmap-able arena, the default).")
  in
  let streams_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "streams" ] ~docv:"FILE,FILE,..."
          ~doc:"Serve the request streams in the given files as concurrent \
                clients (read-only verbs fan out over the domain pool) and \
                print each client's framed responses under a '=== client N \
                ===' header.  Responses per client are byte-identical to \
                serving that client alone.")
  in
  let listen_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:"Serve the line protocol on localhost:$(docv) instead of \
                stdin/stdout (concurrent connections; read-only queries \
                execute in parallel over the domain pool).")
  in
  let churn_t =
    Arg.(
      value & flag
      & info [ "churn" ]
          ~doc:"Schedule a link-flap and congestion-burst timeline; it is \
                applied incrementally between request batches.")
  in
  let churn_days_t = opt_int [ "churn-days" ] "Horizon of the churn scripts in days." in
  let batch_t =
    opt_int [ "batch" ]
      "Requests per dynamics advance (0 = the clock never moves on its own)."
  in
  let batch_min_t =
    Arg.(
      value
      & opt (some float) None
      & info [ "batch-min" ] ~docv:"MINUTES"
          ~doc:"Simulated minutes the engine advances per batch.")
  in
  let doc = "Warm-RIB query daemon over the simulated Internet" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Answers CATCHMENT, EGRESS, RTT, EXPLAIN, STATS, SNAPSHOT, PROM, \
         ADVANCE and QUIT queries over a length-delimited line protocol (see \
         doc/serving.md) from continuously-converged BGP routing state.  \
         State comes from the seed or from a binary snapshot; with \
         $(b,--churn), a dynamics timeline is applied incrementally between \
         request batches.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const run_serve $ small_t $ seed_t $ prefixes_t $ pops_t $ track_t
      $ snapshot_t $ save_snapshot_t $ snapshot_version_t $ streams_t
      $ listen_t $ churn_t $ churn_days_t $ batch_t $ batch_min_t
      $ event_log_t)

(* ---- internet scale ---- *)

let run_scale small seed origins batch check domains no_rib_cache trace =
  (match domains with
  | Some n -> Netsim_par.Pool.set_domain_count n
  | None -> ());
  if no_rib_cache then Netsim_bgp.Rib_cache.set_enabled false;
  let tracing = trace || Netsim_obs.Metrics.enabled () in
  if tracing then Netsim_obs.Metrics.set_enabled true;
  let base =
    if small then Beatbgp.Scale_sweep.small_params
    else Beatbgp.Scale_sweep.default_params
  in
  let p =
    {
      Beatbgp.Scale_sweep.sp_scale =
        { base.Beatbgp.Scale_sweep.sp_scale with
          Netsim_topo.Generator.sc_seed = seed };
      sp_origins = (match origins with Some n -> n | None ->
        base.Beatbgp.Scale_sweep.sp_origins);
      sp_batch = (match batch with Some n -> n | None ->
        base.Beatbgp.Scale_sweep.sp_batch);
      sp_check = check;
    }
  in
  (match Beatbgp.Scale_sweep.run p with
  | Ok report -> print_string report
  | Error e ->
      Printf.eprintf "beatbgp scale: %s\n" e;
      exit 1);
  if tracing then begin
    print_newline ();
    print_string (Netsim_obs.Report.render ())
  end

let scale_cmd =
  let origins_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "origins" ] ~docv:"N"
          ~doc:"Stub prefixes to propagate (default: 64).")
  in
  let batch_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch" ] ~docv:"N"
          ~doc:"Origins per batched propagation (default: 16).")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Differentially verify every batched state against an \
             independent sequential propagation of the same origin.")
  in
  let doc = "Internet-scale batched multi-origin propagation" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Generates an Internet-scale topology (~75k ASes by default; \
         ~600 with $(b,--small)), propagates a spread of stub prefixes \
         through the batched multi-origin engine, and reports aggregate \
         reachability, path-length and route-class statistics.  Output is \
         byte-identical for any $(b,--domains) value and RIB-cache \
         setting; with $(b,--check) the batched states are proven equal \
         to sequential propagation end to end.";
    ]
  in
  Cmd.v
    (Cmd.info "scale" ~doc ~man)
    Term.(
      const run_scale $ small_t $ seed_t $ origins_t $ batch_t $ check_t
      $ domains_t $ no_rib_cache_t $ trace_t)

(* ---- route provenance ---- *)

let run_explain small seed prefixes pops track prefix asid provenance_out =
  let module Server = Netsim_serve.Server in
  let base = if small then Server.small_config else Server.default_config in
  let pick v default = match v with Some v -> v | None -> default in
  let cfg =
    {
      base with
      Server.seed = pick seed base.Server.seed;
      n_prefixes = pick prefixes base.Server.n_prefixes;
      pop_count = pick pops base.Server.pop_count;
      track = pick track base.Server.track;
    }
  in
  let die msg =
    Printf.eprintf "beatbgp explain: %s\n" msg;
    exit 1
  in
  (* Same scenario construction and the same answering function as the
     serve daemon, so the CLI prints exactly the EXPLAIN body a daemon
     would frame for the same arguments. *)
  let server = Server.build cfg in
  (match Server.explain server prefix asid with
  | Ok body -> print_endline body
  | Error e -> die e);
  match provenance_out with
  | None -> ()
  | Some path -> (
      let origin =
        if String.lowercase_ascii prefix = "anycast" then Server.provider server
        else
          match int_of_string_opt prefix with
          | Some id when id >= 0 && id < Array.length (Server.prefixes server) ->
              (Server.prefixes server).(id).Netsim_traffic.Prefix.asid
          | _ -> die ("not a prefix: " ^ prefix)
      in
      try
        Netsim_obs.Report.write_text path
          (Server.provenance_jsonl server ~origin)
      with Failure msg | Sys_error msg ->
        die ("cannot write provenance file: " ^ msg))

let explain_cmd =
  let opt_int names doc = Arg.(value & opt (some int) None & info names ~doc) in
  let seed_t = opt_int [ "seed" ] "Scenario seed (default: 42, or 7 with $(b,--small))." in
  let prefixes_t = opt_int [ "prefixes" ] "Number of client prefixes." in
  let pops_t = opt_int [ "pops" ] "Number of provider PoP metros." in
  let track_t =
    opt_int [ "track" ] "Client-AS prefixes kept warm (matches serve)."
  in
  let prefix_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "prefix" ] ~docv:"PREFIX"
          ~doc:"Destination: $(b,anycast) for the provider's prefix, or a \
                client prefix id.")
  in
  let as_t =
    Arg.(
      required
      & opt (some string) None
      & info [ "as" ] ~docv:"AS"
          ~doc:"The AS whose routing decision to explain.")
  in
  let provenance_out_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "provenance-out" ] ~docv:"FILE"
          ~doc:"Also dump the full provenance table toward the destination \
                as schema-tagged JSONL ($(b,beatbgp.provenance/1)) to \
                $(docv).")
  in
  let doc = "Explain why an AS selected its route" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Prints the decision chain behind an AS's selected route toward a \
         destination prefix: the Gao-Rexford phase that admitted it, the \
         candidate set considered, the tie-break rule that discriminated, \
         the rejected runner-up, and the latency-optimal counterfactual \
         with its delta.  Output is byte-identical to the serve protocol's \
         EXPLAIN verb on the same scenario (see doc/observability.md).";
    ]
  in
  Cmd.v
    (Cmd.info "explain" ~doc ~man)
    Term.(
      const run_explain $ small_t $ seed_t $ prefixes_t $ pops_t $ track_t
      $ prefix_t $ as_t $ provenance_out_t)

let cmd name doc f =
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const (with_sizes f) $ seed_t $ prefixes_t $ days_t $ small_t $ csv_t
      $ trace_t $ metrics_out_t $ metrics_prom_t $ trace_perfetto_t
      $ event_log_t $ domains_t $ no_rib_cache_t)

(* One line carrying every schema an artifact of this build can emit,
   so `beatbgp --version` answers "which build wrote this file?" for
   snapshots, event logs and bench JSON alike. *)
let version_string =
  Printf.sprintf
    "%s (events %s, snapshot %s/%d-%d, provenance %s, bench schema %d)"
    (Netsim_serve.Version.git_sha ())
    Netsim_obs.Recorder.schema Netsim_serve.Snapshot.magic
    Netsim_serve.Snapshot.schema_version Netsim_serve.Snapshot.schema_version_v2
    Netsim_obs.Provenance.schema Bench_support.Bench_out.schema_version

let main =
  let doc = "Reproduction of 'Beating BGP is Harder than we Thought' (HotNets '19)" in
  Cmd.group
    (Cmd.info "beatbgp" ~doc ~version:version_string)
    [
      cmd "fig1" "Figure 1: alternate-route improvement at PoPs" run_fig1;
      cmd "fig2" "Figure 2: peer vs transit, private vs public" run_fig2;
      cmd "fig3" "Figure 3: anycast vs best unicast front-end" run_fig3;
      cmd "fig4" "Figure 4: DNS redirection vs anycast" run_fig4;
      cmd "fig5" "Figure 5: Premium vs Standard cloud tiers" run_fig5;
      cmd "degrade" "Section 3.1.1: degrade-together analysis" run_degrade;
      cmd "peering" "Section 3.1.3: peering-footprint ablation" run_peering;
      cmd "grooming" "Section 3.2.2: anycast grooming (nature vs nurture)" run_grooming;
      cmd "wanfrac" "Section 3.3.2: single-WAN-fraction hypothesis" run_wanfrac;
      cmd "goodput" "Footnote 3: Figure 1 repeated for TCP goodput" run_goodput;
      cmd "availability" "Section 4: site failures, anycast vs DNS pinning" run_availability;
      cmd "dynamics" "Section 4: stale controller vs BGP under failures and congestion churn" run_dynamics;
      cmd "hybrid" "Section 4: hybrid anycast+redirection margin sweep" run_hybrid;
      cmd "splittcp" "Section 4: split TCP over WAN vs public backend" run_splittcp;
      cmd "sites" "Section 3.2.2: how many anycast sites are enough" run_sites;
      cmd "ecs" "Section 3.2.1: EDNS-Client-Subnet adoption ablation" run_ecs;
      cmd "groompredict" "Section 3.2.2: predicting grooming impact pre-announcement" run_groompredict;
      cmd "robustness" "Claim pass rates across independently generated Internets" run_robustness;
      cmd "topo" "Generate the base Internet and check invariants" run_topo;
      cmd "rib" "Inspect PoP Adj-RIB-Ins and serving flows (show ip bgp style)" run_rib;
      cmd "compare" "Unified scheme comparison: BGP vs oracles vs redirection" run_compare;
      cmd "all" "Run every figure and analysis" run_all;
      scale_cmd;
      serve_cmd;
      explain_cmd;
    ]

let () = exit (Cmd.eval main)
