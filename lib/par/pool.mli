(** Fixed-size domain pool with deterministic fan-out/fan-in.

    [map f arr] shards the indexed work list [arr] across OCaml 5
    domains and places each result at its submission index, so the
    output array is byte-identical to [Array.map f arr] regardless of
    how many domains run or how the scheduler interleaves them —
    provided [f] itself is deterministic (every simulator hot loop
    handed to the pool is: one Gao–Rexford propagation per prefix, one
    full figure pipeline per seed).

    Observability stays deterministic too: when tracing is enabled,
    each task runs inside {!Netsim_obs.Metrics.capture} /
    {!Netsim_obs.Span.capture}, and the per-task buffers are absorbed
    into the global registry in submission order after the join —
    counters sum, gauges keep the last (submission-order) write,
    histogram observations replay one by one, and span subtrees
    re-parent under the span open at the fan-out point.  Replay
    reproduces the exact record-call sequence of a sequential run, so
    metrics JSON is byte-identical for any domain count (span
    wall-clock times vary run to run, exactly as they do serially).

    The pool size comes from the [NETSIM_DOMAINS] environment variable
    (default: {!Domain.recommended_domain_count}).  With one domain,
    [map] is literally [Array.map] — the exact pre-pool code path,
    with no capture overhead.  Nested [map] calls from inside a worker
    run sequentially rather than re-entering the pool, so composed
    layers (a figure fan-out whose figures shard their own
    propagations) cannot oversubscribe or deadlock.  Likewise, if two
    non-worker domains call [map] at the same time (the serve daemon's
    listener domain vs the main domain), one claims the pool and the
    other degrades to the sequential path — results are identical
    either way, only the scheduling differs.

    Worker domains are spawned lazily on first parallel use, reused
    across calls, and joined via [at_exit]. *)

val domain_count : unit -> int
(** Current pool size (>= 1), from [NETSIM_DOMAINS] or the hardware
    default, clamped to [1, 64]. *)

val set_domain_count : int -> unit
(** Override the pool size (clamped to [1, 64]).  Takes effect on the
    next [map]; already-spawned workers are kept for reuse. *)

val in_worker : unit -> bool
(** True while executing inside a pool task (where nested maps run
    sequentially). *)

val map : ('a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel [Array.map].  If a task raises, the
    lowest-index exception is re-raised after all tasks settle (obs
    buffers of the tasks before it are still absorbed, mirroring the
    partial state a sequential run would have left). *)

val mapi : (int -> 'a -> 'b) -> 'a array -> 'b array

val map_list : ('a -> 'b) -> 'a list -> 'b list
(** [map] over a list, preserving order. *)

val map_batches : batch:int -> ('a array -> 'b array) -> 'a array -> 'b array
(** [map_batches ~batch f arr] cuts [arr] into contiguous chunks of
    [batch] items (the last possibly shorter), runs [f] on each chunk
    as one pool task, and concatenates the per-chunk results — the
    fan-out used to drive {!Netsim_bgp.Rib_cache.run_batch} over many
    origins.  Each chunk gets [map]'s per-task observability and
    RIB-cache shard capture/absorb, so results and counters are
    byte-identical at any domain count.  [f] must return one result
    per input item, in order.  @raise Invalid_argument if [batch <= 0]
    or a chunk result length disagrees. *)
