module Metrics = Netsim_obs.Metrics
module Span = Netsim_obs.Span
module Recorder = Netsim_obs.Recorder
module Rib_cache = Netsim_bgp.Rib_cache

let clamp lo hi v = Stdlib.max lo (Stdlib.min hi v)

let default_domains () =
  match Sys.getenv_opt "NETSIM_DOMAINS" with
  | None | Some "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None ->
          Printf.eprintf
            "netsim: ignoring non-numeric NETSIM_DOMAINS=%S\n%!" s;
          Domain.recommended_domain_count ())

let requested = ref (clamp 1 64 (default_domains ()))
let domain_count () = !requested
let set_domain_count n = requested := clamp 1 64 n

(* Per-domain flag: true while running a pool task.  Workers set it for
   their lifetime; the main domain sets it only while it participates
   in draining a job.  Nested [map]s check it and run sequentially. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

(* Stable worker id for utilization reporting: 0 is the main domain,
   spawned workers get 1..k in spawn order. *)
let worker_id_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let worker_id () = Domain.DLS.get worker_id_key

(* ---- work queue ------------------------------------------------------ *)

(* One job at a time: [map] is only ever entered from the main domain
   (nested calls short-circuit to sequential), so a single slot
   guarded by [mu]/[cond] suffices.  Tasks are claimed by atomic
   fetch-and-add on [next]; [completed] counts finished tasks and the
   last finisher wakes the main domain. *)
type job = {
  n : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  run : int -> unit;
}

let mu = Mutex.create ()
let cond = Condition.create ()
let current : job option ref = ref None
let shutting_down = ref false
let workers : unit Domain.t list ref = ref []
let n_workers = ref 0

let drain job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      job.run i;
      let finished = 1 + Atomic.fetch_and_add job.completed 1 in
      if finished = job.n then begin
        Mutex.lock mu;
        Condition.broadcast cond;
        Mutex.unlock mu
      end;
      go ()
    end
  in
  go ()

let worker_loop wid () =
  Domain.DLS.set in_worker_key true;
  Domain.DLS.set worker_id_key wid;
  let rec next_job () =
    Mutex.lock mu;
    let rec wait () =
      if !shutting_down then begin
        Mutex.unlock mu;
        None
      end
      else
        match !current with
        | Some j when Atomic.get j.next < j.n ->
            Mutex.unlock mu;
            Some j
        | _ ->
            Condition.wait cond mu;
            wait ()
    in
    match wait () with
    | None -> ()
    | Some j ->
        drain j;
        next_job ()
  in
  next_job ()

let ensure_workers k =
  while !n_workers < k do
    incr n_workers;
    workers := Domain.spawn (worker_loop !n_workers) :: !workers
  done

let () =
  at_exit (fun () ->
      Mutex.lock mu;
      shutting_down := true;
      Condition.broadcast cond;
      Mutex.unlock mu;
      List.iter Domain.join !workers)

(* ---- deterministic map ----------------------------------------------- *)

(* Job/task counters are deterministic (same increments in the
   sequential and parallel paths), so they live in the regular
   registry; wall-clock utilization goes to runtime gauges only. *)
let c_jobs = Metrics.counter "par.jobs"
let c_tasks = Metrics.counter "par.tasks"

(* The single job slot above means only one domain may run the
   parallel path at a time.  Historically [map] was only entered from
   the main domain, but the serve daemon's listener runs in its own
   domain — so the slot is claimed by CAS, and a caller that loses the
   race (two non-worker domains mapping at once) degrades to the
   sequential path instead of corrupting [current]. *)
let job_slot = Atomic.make false

let map (type a b) (f : a -> b) (arr : a array) : b array =
  let n = Array.length arr in
  let d = Stdlib.min (domain_count ()) n in
  Metrics.incr c_jobs;
  Metrics.incr ~by:n c_tasks;
  if d <= 1 || in_worker ()
     || not (Atomic.compare_and_set job_slot false true)
  then
    (* Sequential, but with the same per-task RIB-cache shard
       discipline as the parallel path, so cache hit/miss behaviour —
       and therefore traced metrics — is byte-identical for any domain
       count. *)
    Array.map
      (fun x ->
        let shard = Rib_cache.fresh_shard () in
        let r = Rib_cache.capture shard (fun () -> f x) in
        Rib_cache.absorb shard;
        r)
      arr
  else begin
    Fun.protect ~finally:(fun () -> Atomic.set job_slot false) @@ fun () ->
    let tracing = Metrics.enabled () in
    let recording = Recorder.enabled () in
    let results : b option array = Array.make n None in
    let obs : (Metrics.captured * Span.captured) option array =
      Array.make n None
    in
    let rec_bufs : Recorder.captured option array = Array.make n None in
    let ribs : Rib_cache.shard array =
      Array.init n (fun _ -> Rib_cache.fresh_shard ())
    in
    let task_s = Array.make n 0. in
    let task_worker = Array.make n 0 in
    let errors : exn option array = Array.make n None in
    let run i =
      try
        let t0 = if tracing then Unix.gettimeofday () else 0. in
        (Rib_cache.capture ribs.(i) @@ fun () ->
         let go () =
           if tracing then begin
             let (r, spans), events =
               Metrics.capture (fun () -> Span.capture (fun () -> f arr.(i)))
             in
             results.(i) <- Some r;
             obs.(i) <- Some (events, spans)
           end
           else results.(i) <- Some (f arr.(i))
         in
         if recording then begin
           let (), events = Recorder.capture go in
           rec_bufs.(i) <- Some events
         end
         else go ());
        if tracing then begin
          task_s.(i) <- Unix.gettimeofday () -. t0;
          task_worker.(i) <- worker_id ()
        end
      with e -> errors.(i) <- Some e
    in
    let t_job = if tracing then Unix.gettimeofday () else 0. in
    let job = { n; next = Atomic.make 0; completed = Atomic.make 0; run } in
    Mutex.lock mu;
    ensure_workers (d - 1);
    current := Some job;
    Condition.broadcast cond;
    Mutex.unlock mu;
    (* The main domain participates as the d-th worker. *)
    Domain.DLS.set in_worker_key true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker_key false)
      (fun () -> drain job);
    Mutex.lock mu;
    while Atomic.get job.completed < n do
      Condition.wait cond mu
    done;
    current := None;
    Mutex.unlock mu;
    (* Fan-in: merge per-task observability in submission order, then
       surface the lowest-index failure (sequential semantics: obs of
       the tasks "before" the failure are kept). *)
    let first_error = ref None in
    Array.iteri
      (fun i e ->
        match (!first_error, e) with
        | None, Some _ -> first_error := Some i
        | _ -> ())
      errors;
    let merge_until =
      match !first_error with Some i -> i | None -> n
    in
    for i = 0 to merge_until - 1 do
      (* Recorder events first: the task's own events must land in the
         ring before the evict events that [Rib_cache.absorb] emits
         while re-inserting the task's shard — that is the order a
         sequential run produces. *)
      (if recording then
         match rec_bufs.(i) with
         | Some events -> Recorder.absorb events
         | None -> ());
      (if tracing then
         match obs.(i) with
         | Some (events, spans) ->
             Metrics.absorb events;
             Span.absorb spans
         | None -> ());
      Rib_cache.absorb ribs.(i)
    done;
    (match !first_error with
    | Some i -> ( match errors.(i) with Some e -> raise e | None -> ())
    | None -> ());
    (* Utilization summary: wall-clock numbers, so runtime gauges only
       (kept out of the deterministic metrics document). *)
    if tracing then begin
      let wall_ms = (Unix.gettimeofday () -. t_job) *. 1000. in
      let busy_ms = ref 0. in
      let by_worker = Hashtbl.create 8 in
      Array.iteri
        (fun i s ->
          busy_ms := !busy_ms +. (s *. 1000.);
          let w = task_worker.(i) in
          let b, t =
            match Hashtbl.find_opt by_worker w with
            | Some (b, t) -> (b, t)
            | None -> (0., 0)
          in
          Hashtbl.replace by_worker w (b +. (s *. 1000.), t + 1))
        task_s;
      Metrics.set_runtime "par.job.wall_ms" wall_ms;
      Metrics.set_runtime "par.job.busy_ms" !busy_ms;
      Metrics.set_runtime "par.job.idle_ms"
        (Float.max 0. ((wall_ms *. float_of_int d) -. !busy_ms));
      Metrics.set_runtime "par.job.tasks" (float_of_int n);
      Hashtbl.iter
        (fun w (b, t) ->
          Metrics.set_runtime (Printf.sprintf "par.d%d.busy_ms" w) b;
          Metrics.set_runtime (Printf.sprintf "par.d%d.tasks" w)
            (float_of_int t))
        by_worker
    end;
    Array.map
      (function
        | Some r -> r
        | None -> invalid_arg "Pool.map: missing result")
      results
  end

let mapi f arr =
  let idx = Array.mapi (fun i x -> (i, x)) arr in
  map (fun (i, x) -> f i x) idx

let map_list f l = Array.to_list (map f (Array.of_list l))

(* Batched fan-out: contiguous chunks of [batch] items become the pool
   tasks, so a per-chunk batched computation (Rib_cache.run_batch)
   runs under [map]'s usual per-task shard + capture/absorb
   discipline.  Chunking is deterministic in the input order alone, so
   results are byte-identical at any domain count. *)
let map_batches (type a b) ~batch (f : a array -> b array) (arr : a array) :
    b array =
  if batch <= 0 then invalid_arg "Pool.map_batches: batch must be positive";
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let chunks =
      Array.init
        ((n + batch - 1) / batch)
        (fun c ->
          let lo = c * batch in
          Array.sub arr lo (Stdlib.min batch (n - lo)))
    in
    let results = map f chunks in
    Array.iteri
      (fun c r ->
        if Array.length r <> Array.length chunks.(c) then
          invalid_arg "Pool.map_batches: chunk result length mismatch")
      results;
    Array.concat (Array.to_list results)
  end
