(** Confidence intervals for medians.

    Figure 1 of the paper shades the distribution of the lower and
    upper bounds of confidence intervals around per-⟨PoP, prefix⟩
    median differences; this module provides both a distribution-free
    order-statistic interval and a bootstrap interval. *)

type interval = { lo : float; hi : float }

val median_binomial : ?confidence:float -> float array -> interval
(** Distribution-free CI for the median using binomial order
    statistics (normal approximation for the ranks).  [confidence]
    defaults to 0.95.  For samples of size < 3 the interval degenerates
    to [min, max].  @raise Invalid_argument on an empty array. *)

val bootstrap_median :
  ?confidence:float ->
  ?iterations:int ->
  rng:Netsim_prng.Splitmix.t ->
  float array ->
  interval
(** Percentile-bootstrap CI for the median ([iterations] defaults to
    200). *)

val width : interval -> float
val contains : interval -> float -> bool
