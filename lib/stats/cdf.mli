(** Empirical (optionally weighted) cumulative distributions.

    The paper's figures are CDFs/CCDFs of per-unit latency differences
    weighted by traffic volume; this module is the common substrate for
    all of them. *)

type t
(** An immutable empirical distribution over weighted samples. *)

val of_samples : float array -> t
(** Unweighted: every sample has weight 1. *)

val of_weighted : (float * float) array -> t
(** [(value, weight)] pairs; weights must be non-negative and sum to a
    positive total.  @raise Invalid_argument otherwise. *)

val count : t -> int
val total_weight : t -> float

val fraction_below : t -> float -> float
(** [fraction_below t x] is the weighted fraction of samples with value
    [<= x] (the CDF evaluated at [x]). *)

val fraction_above : t -> float -> float
(** Weighted fraction strictly above [x] (the CCDF at [x]). *)

val quantile : t -> float -> float
(** Weighted quantile, [0 <= q <= 1]. *)

val median : t -> float

val cdf_points : ?max_points:int -> t -> (float * float) list
(** [(x, F(x))] points suitable for plotting, thinned to at most
    [max_points] (default 200). *)

val ccdf_points : ?max_points:int -> t -> (float * float) list
(** [(x, 1 - F(x))] points. *)

val min_value : t -> float
val max_value : t -> float

val mean : t -> float
(** Weighted mean. *)
