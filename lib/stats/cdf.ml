type t = {
  values : float array; (* sorted ascending *)
  cum_weight : float array; (* cumulative weight, same length *)
  total : float;
}

let of_weighted pairs =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Cdf.of_weighted: empty sample";
  Array.iter
    (fun (_, w) ->
      if w < 0. then invalid_arg "Cdf.of_weighted: negative weight")
    pairs;
  let sorted = Array.copy pairs in
  Array.sort (fun (a, _) (b, _) -> compare a b) sorted;
  let values = Array.map fst sorted in
  let cum_weight = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i (_, w) ->
      acc := !acc +. w;
      cum_weight.(i) <- !acc)
    sorted;
  if !acc <= 0. then invalid_arg "Cdf.of_weighted: total weight must be > 0";
  { values; cum_weight; total = !acc }

let of_samples samples = of_weighted (Array.map (fun v -> (v, 1.)) samples)
let count t = Array.length t.values
let total_weight t = t.total

(* Index of the last value <= x, or -1 if none. *)
let last_leq t x =
  let n = Array.length t.values in
  if n = 0 || t.values.(0) > x then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.values.(mid) <= x then lo := mid else hi := mid - 1
    done;
    !lo
  end

let fraction_below t x =
  let i = last_leq t x in
  if i < 0 then 0. else t.cum_weight.(i) /. t.total

let fraction_above t x = 1. -. fraction_below t x

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Cdf.quantile: q out of range";
  let target = q *. t.total in
  let n = Array.length t.values in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum_weight.(mid) < target then lo := mid + 1 else hi := mid
  done;
  t.values.(!lo)

let median t = quantile t 0.5

let thin_indices n max_points =
  if n <= max_points then List.init n (fun i -> i)
  else begin
    let step = float_of_int (n - 1) /. float_of_int (max_points - 1) in
    let rec go i acc =
      if i >= max_points then List.rev acc
      else
        let idx = int_of_float (Float.round (float_of_int i *. step)) in
        go (i + 1) (min idx (n - 1) :: acc)
    in
    go 0 []
  end

let cdf_points ?(max_points = 200) t =
  let n = Array.length t.values in
  let idxs = thin_indices n max_points in
  List.map (fun i -> (t.values.(i), t.cum_weight.(i) /. t.total)) idxs

let ccdf_points ?max_points t =
  List.map (fun (x, f) -> (x, 1. -. f)) (cdf_points ?max_points t)

let min_value t = t.values.(0)
let max_value t = t.values.(Array.length t.values - 1)

let mean t =
  let acc = ref 0. and prev = ref 0. in
  Array.iteri
    (fun i v ->
      let w = t.cum_weight.(i) -. !prev in
      prev := t.cum_weight.(i);
      acc := !acc +. (v *. w))
    t.values;
  !acc /. t.total
