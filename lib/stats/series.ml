type t = { name : string; points : (float * float) list }

let make name points = { name; points }

let to_csv series_list =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,x,y\n";
  List.iter
    (fun s ->
      List.iter
        (fun (x, y) ->
          Buffer.add_string buf (Printf.sprintf "%s,%.6g,%.6g\n" s.name x y))
        s.points)
    series_list;
  Buffer.contents buf

let interpolate s x =
  let rec go = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        if x < x1 then None
        else if x <= x2 then
          if x2 = x1 then Some y1
          else Some (y1 +. ((x -. x1) /. (x2 -. x1) *. (y2 -. y1)))
        else go rest
    | [ (x1, y1) ] -> if x = x1 then Some y1 else None
    | [] -> None
  in
  go s.points

let fold_range f series_list =
  let acc =
    List.fold_left
      (fun acc s ->
        List.fold_left
          (fun acc p ->
            let v = f p in
            match acc with
            | None -> Some (v, v)
            | Some (lo, hi) -> Some (min lo v, max hi v))
          acc s.points)
      None series_list
  in
  acc

let x_range series_list = fold_range fst series_list
let y_range series_list = fold_range snd series_list

let crossing s level =
  let rec go = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        if (y1 <= level && y2 >= level) || (y1 >= level && y2 <= level) then
          if y2 = y1 then Some x1
          else Some (x1 +. ((level -. y1) /. (y2 -. y1) *. (x2 -. x1)))
        else go rest
    | [ (x1, y1) ] -> if y1 = level then Some x1 else None
    | [] -> None
  in
  go s.points
