(** Fixed-width binned histograms over floats. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width
    bins plus underflow/overflow counters.
    @raise Invalid_argument if [bins <= 0] or [hi <= lo]. *)

val add : ?weight:float -> t -> float -> unit
val bin_count : t -> int
val bin_weight : t -> int -> float
val bin_center : t -> int -> float
val underflow : t -> float
val overflow : t -> float
val total : t -> float

val normalized : t -> (float * float) list
(** [(center, fraction)] per bin; fractions sum to <= 1 (excludes
    under/overflow). *)

val mode_bin : t -> int
(** Index of the heaviest bin. *)
