type t = {
  lo : float;
  width : float;
  counts : float array;
  mutable underflow : float;
  mutable overflow : float;
  mutable total : float;
}

let create ~lo ~hi ~bins =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  {
    lo;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0.;
    underflow = 0.;
    overflow = 0.;
    total = 0.;
  }

let add ?(weight = 1.) t x =
  t.total <- t.total +. weight;
  if x < t.lo then t.underflow <- t.underflow +. weight
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    if i >= Array.length t.counts then t.overflow <- t.overflow +. weight
    else t.counts.(i) <- t.counts.(i) +. weight
  end

let bin_count t = Array.length t.counts
let bin_weight t i = t.counts.(i)
let bin_center t i = t.lo +. ((float_of_int i +. 0.5) *. t.width)
let underflow t = t.underflow
let overflow t = t.overflow
let total t = t.total

let normalized t =
  if t.total <= 0. then []
  else
    Array.to_list
      (Array.mapi (fun i w -> (bin_center t i, w /. t.total)) t.counts)

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i w -> if w > t.counts.(!best) then best := i) t.counts;
  !best
