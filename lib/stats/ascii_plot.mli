(** Terminal rendering of figure series as ASCII line plots.

    The CLI and the bench harness use this to show each reproduced
    figure directly in the terminal, alongside the CSV dump. *)

val plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  Series.t list ->
  string
(** Render the series into a fixed-size character canvas.  Each series
    gets a distinct glyph; a legend and axis ranges are appended.
    Defaults: [width = 72], [height = 20]. *)
