(** Named plottable series and lightweight CSV export.

    Every figure in the reproduction is ultimately a list of series;
    benches and the CLI both render through this module. *)

type t = { name : string; points : (float * float) list }

val make : string -> (float * float) list -> t

val to_csv : t list -> string
(** Long-format CSV: [series,x,y] with a header row.  Points keep their
    original order. *)

val interpolate : t -> float -> float option
(** Linear interpolation at an x value; [None] outside the x range or
    for an empty series.  Assumes points sorted by x. *)

val x_range : t list -> (float * float) option
(** Combined [min, max] over all x values, or [None] if all empty. *)

val y_range : t list -> (float * float) option

val crossing : t -> float -> float option
(** [crossing s y] is the first x at which the series reaches or
    crosses the horizontal level [y] (linear interpolation), if any.
    Useful for "where does the CDF reach 0.9"-style checks. *)
