let quantile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile.quantile: empty sample";
  if q < 0. || q > 1. then invalid_arg "Quantile.quantile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let quantile samples q =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  quantile_sorted sorted q

let median samples = quantile samples 0.5

let weighted_quantile pairs q =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Quantile.weighted_quantile: empty sample";
  if q < 0. || q > 1. then
    invalid_arg "Quantile.weighted_quantile: q out of range";
  let sorted = Array.copy pairs in
  Array.sort (fun (a, _) (b, _) -> compare a b) sorted;
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0. sorted in
  if total <= 0. then
    invalid_arg "Quantile.weighted_quantile: total weight must be positive";
  let target = q *. total in
  let rec go i acc =
    if i >= n - 1 then fst sorted.(n - 1)
    else
      let acc = acc +. snd sorted.(i) in
      if acc >= target then fst sorted.(i) else go (i + 1) acc
  in
  go 0 0.

let iqr samples =
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  quantile_sorted sorted 0.75 -. quantile_sorted sorted 0.25
