type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity; total = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let count t = t.n
let mean t = if t.n = 0 then nan else t.mean
let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)
let std t = sqrt (variance t)
let min t = t.min
let max t = t.max
let total t = t.total

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n
         /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
      total = a.total +. b.total;
    }
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f std=%.3f min=%.3f max=%.3f" t.n (mean t)
    (std t) t.min t.max

(* Compact human formatting shared by figure captions, ASCII-plot axis
   labels and the observability metrics table. *)
let pretty_float v =
  if Float.is_nan v then "nan"
  else if v = Float.infinity then "inf"
  else if v = Float.neg_infinity then "-inf"
  else if Float.is_integer v && Float.abs v < 1e7 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let one_line t =
  if t.n = 0 then "n=0"
  else
    Printf.sprintf "n=%d mean=%s min=%s max=%s total=%s" t.n
      (pretty_float (mean t)) (pretty_float t.min) (pretty_float t.max)
      (pretty_float t.total)
