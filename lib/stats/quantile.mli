(** Exact and weighted quantiles over float samples. *)

val quantile : float array -> float -> float
(** [quantile samples q] is the [q]-quantile ([0 <= q <= 1]) with linear
    interpolation between order statistics.  The input need not be
    sorted; it is not modified.  @raise Invalid_argument on an empty
    array or [q] outside [\[0, 1\]]. *)

val quantile_sorted : float array -> float -> float
(** Same as {!quantile} but assumes the input is already sorted
    ascending (no check, no copy). *)

val median : float array -> float
(** [median samples] is [quantile samples 0.5]. *)

val weighted_quantile : (float * float) array -> float -> float
(** [weighted_quantile pairs q] where each pair is [(value, weight)].
    Returns the smallest value [v] such that the cumulative weight of
    samples [<= v] reaches [q] of the total weight.  Weights must be
    non-negative with a positive sum. *)

val iqr : float array -> float
(** Interquartile range. *)
