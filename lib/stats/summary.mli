(** Streaming univariate summary (Welford's online algorithm). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the samples seen so far; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] if fewer than two samples. *)

val std : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

val merge : t -> t -> t
(** Combine two summaries as if all their samples had been added to a
    single one. *)

val pp : Format.formatter -> t -> unit

val pretty_float : float -> string
(** Compact human formatting: integers without a fraction, everything
    else ["%.4g"], non-finite values spelled out.  Shared by figure
    stat captions, ASCII-plot axis labels and the observability
    metrics table. *)

val one_line : t -> string
(** One-line rendering ["n=... mean=... min=... max=... total=..."]
    built on {!pretty_float}; ["n=0"] when empty. *)
