type interval = { lo : float; hi : float }

(* Two-sided normal quantile for the given confidence level. *)
let z_of_confidence confidence =
  (* Abramowitz-Stegun style rational approximation of the probit is
     overkill here; the simulation only ever asks for a handful of
     levels, so interpolate a small table. *)
  let table =
    [| (0.80, 1.2816); (0.90, 1.6449); (0.95, 1.9600); (0.98, 2.3263);
       (0.99, 2.5758); (0.999, 3.2905) |]
  in
  let n = Array.length table in
  if confidence <= fst table.(0) then snd table.(0)
  else if confidence >= fst table.(n - 1) then snd table.(n - 1)
  else begin
    let rec go i =
      let c1, z1 = table.(i) and c2, z2 = table.(i + 1) in
      if confidence <= c2 then z1 +. ((confidence -. c1) /. (c2 -. c1) *. (z2 -. z1))
      else go (i + 1)
    in
    go 0
  end

let median_binomial ?(confidence = 0.95) samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Ci.median_binomial: empty sample";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  if n < 3 then { lo = sorted.(0); hi = sorted.(n - 1) }
  else begin
    let z = z_of_confidence confidence in
    let fn = float_of_int n in
    let half_width = z *. sqrt (fn *. 0.25) in
    let lo_rank = int_of_float (floor ((fn /. 2.) -. half_width)) in
    let hi_rank = int_of_float (ceil ((fn /. 2.) +. half_width)) in
    let lo_rank = max 0 (min (n - 1) lo_rank) in
    let hi_rank = max 0 (min (n - 1) hi_rank) in
    { lo = sorted.(lo_rank); hi = sorted.(hi_rank) }
  end

let bootstrap_median ?(confidence = 0.95) ?(iterations = 200) ~rng samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Ci.bootstrap_median: empty sample";
  let medians =
    Array.init iterations (fun _ ->
        let resample =
          Array.init n (fun _ -> samples.(Netsim_prng.Splitmix.next_int rng n))
        in
        Quantile.median resample)
  in
  Array.sort compare medians;
  let alpha = (1. -. confidence) /. 2. in
  {
    lo = Quantile.quantile_sorted medians alpha;
    hi = Quantile.quantile_sorted medians (1. -. alpha);
  }

let width i = i.hi -. i.lo
let contains i x = x >= i.lo && x <= i.hi
