let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@'; '%'; '&' |]

let plot ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y") ~title
    series_list =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  match (Series.x_range series_list, Series.y_range series_list) with
  | None, _ | _, None ->
      Buffer.add_string buf "(no data)\n";
      Buffer.contents buf
  | Some (x_lo, x_hi), Some (y_lo, y_hi) ->
      let x_hi = if x_hi = x_lo then x_lo +. 1. else x_hi in
      let y_hi = if y_hi = y_lo then y_lo +. 1. else y_hi in
      let canvas = Array.make_matrix height width ' ' in
      let to_col x =
        let c =
          int_of_float
            (Float.round
               ((x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1)))
        in
        max 0 (min (width - 1) c)
      in
      let to_row y =
        let r =
          int_of_float
            (Float.round
               ((y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1)))
        in
        (height - 1) - max 0 (min (height - 1) r)
      in
      List.iteri
        (fun si (s : Series.t) ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          let rec draw = function
            | (x1, y1) :: ((x2, y2) :: _ as rest) ->
                (* Draw the segment by sampling columns between the
                   endpoints so the line reads as continuous. *)
                let c1 = to_col x1 and c2 = to_col x2 in
                let steps = max 1 (abs (c2 - c1)) in
                for k = 0 to steps do
                  let f = float_of_int k /. float_of_int steps in
                  let x = x1 +. (f *. (x2 -. x1)) in
                  let y = y1 +. (f *. (y2 -. y1)) in
                  canvas.(to_row y).(to_col x) <- glyph
                done;
                draw rest
            | [ (x, y) ] -> canvas.(to_row y).(to_col x) <- glyph
            | [] -> ()
          in
          draw s.points)
        series_list;
      (* Vertical axis: print the range at top and bottom rows.  Axis
         labels share the compact float formatting used by figure
         captions and the metrics table. *)
      let pf = Summary.pretty_float in
      for r = 0 to height - 1 do
        let label =
          if r = 0 then Printf.sprintf "%10s |" (pf y_hi)
          else if r = height - 1 then Printf.sprintf "%10s |" (pf y_lo)
          else Printf.sprintf "%10s |" ""
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> canvas.(r).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
      Buffer.add_string buf
        (Printf.sprintf "%10s  %s%s%s\n" "" (pf x_lo)
           (String.make (max 1 (width - 12)) ' ')
           (pf x_hi));
      Buffer.add_string buf (Printf.sprintf "  x: %s, y: %s\n" x_label y_label);
      List.iteri
        (fun si (s : Series.t) ->
          Buffer.add_string buf
            (Printf.sprintf "  [%c] %s\n" glyphs.(si mod Array.length glyphs) s.name))
        series_list;
      Buffer.contents buf
