(** Announcement configuration for a destination prefix.

    A prefix is originated by one AS, but the origination is per-link:
    each of the origin's links can carry the announcement or not, and
    can apply AS-path prepending.  This is the mechanism behind
    anycast (announce everywhere), unicast sites (announce only at one
    metro), and grooming (withhold or prepend at selected sessions). *)

type action = {
  export : bool;
  prepend : int;
  no_export : bool;
      (** RFC 1997 NO_EXPORT: the receiving AS may use the route but
          must not advertise it further.  One of the paper's grooming
          techniques ("adding a BGP community to control
          propagation"). *)
}

type t = {
  origin : int;  (** Originating AS id. *)
  policy : Netsim_topo.Relation.link -> action;
}

val default : origin:int -> t
(** Announce on every link of the origin, no prepending. *)

val only_at_metros : origin:int -> int list -> t
(** Announce only on origin links located at the given metros
    (unicast site announcements). *)

val with_overrides :
  t -> (Netsim_topo.Relation.link -> action option) -> t
(** Layer per-link overrides over an existing config; [None] falls
    through to the base policy. *)

val prepend_at_metros : t -> int list -> int -> t
(** Add [n] prepends on links at the given metros (a grooming action). *)

val withhold_links : t -> int list -> t
(** Stop announcing on links with the given ids (a grooming action). *)

val no_export_at_metros : t -> int list -> t
(** Tag announcements on links at the given metros with NO_EXPORT:
    only directly-connected neighbors there will carry the traffic
    (scoping an anycast site to its local peers). *)

val action_on : t -> Netsim_topo.Relation.link -> action
(** The effective action, forced to [export = false] for links that do
    not touch the origin. *)
