module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation

type entry = {
  len : int;
  parent : int;
  link : Relation.link;
  no_export : bool;
      (** The route carries NO_EXPORT: usable here, never re-exported. *)
}

type state = {
  topo : Topology.t;
  config : Announce.t;
  cust : entry option array;
  peer : entry option array;
  prov : entry option array;
}

let topology s = s.topo
let config s = s.config
let origin s = s.config.Announce.origin

(* Priority queue of candidates with deterministic ordering;
   implemented over Set since candidate counts are small. *)
module Pq = Set.Make (struct
  type t = int * int * int * int * Relation.link * bool

  let compare (l1, p1, k1, t1, _, _) (l2, p2, k2, t2, _, _) =
    compare (l1, p1, k1, t1) (l2, p2, k2, t2)
end)

(* Seeds: announcements the origin sends on its own sessions, grouped
   by the class in which the receiving AS learns them. *)
let seeds topo config ~klass =
  let origin = config.Announce.origin in
  List.filter_map
    (fun (nb : Topology.neighbor) ->
      let action = Announce.action_on config nb.link in
      if not action.Announce.export then None
      else begin
        (* nb.rel is the relation from the origin's perspective; the
           receiver's class is the mirror image. *)
        let receiver_klass =
          match nb.rel with
          | Relation.To_customer -> Route.Provider (* receiver sees provider *)
          | Relation.To_provider -> Route.Customer (* receiver sees customer *)
          | Relation.Priv_peer | Relation.Pub_peer -> Route.Peer
        in
        if receiver_klass = klass then
          Some
            ( nb.peer,
              1 + action.Announce.prepend,
              origin,
              nb.link,
              action.Announce.no_export )
        else None
      end)
    (Topology.neighbors topo origin)

let c_exported = Netsim_obs.Metrics.counter "bgp.announcements_exported"
let c_selected = Netsim_obs.Metrics.counter "bgp.routes_selected"
let c_visited = Netsim_obs.Metrics.counter "bgp.ases_visited"

let run topo config =
  Netsim_obs.Span.with_ ~name:"bgp.propagate" @@ fun () ->
  (* One flag read per run: record sites below are guarded by this
     immutable local so the disabled-mode cost in the hot loops is a
     single well-predicted branch. *)
  let tracing = Netsim_obs.Metrics.enabled () in
  let n = Topology.as_count topo in
  let origin = config.Announce.origin in
  let cust = Array.make n None in
  let peer = Array.make n None in
  let prov = Array.make n None in
  (* ---- Phase 1: customer-learned routes (propagate upward). ---- *)
  let pq = ref Pq.empty in
  let push (target, len, parent, link, no_export) =
    if tracing then Netsim_obs.Metrics.incr c_exported;
    pq := Pq.add (len, parent, link.Relation.id, target, link, no_export) !pq
  in
  List.iter push (seeds topo config ~klass:Route.Customer);
  while not (Pq.is_empty !pq) do
    let ((len, parent, _, target, link, no_export) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if target <> origin && cust.(target) = None then begin
      cust.(target) <- Some { len; parent; link; no_export };
      (* target exports its best customer route to its providers —
         unless the announcement was scoped with NO_EXPORT. *)
      if not no_export then
        List.iter
          (fun (nb : Topology.neighbor) ->
            if nb.rel = Relation.To_provider && nb.peer <> origin then
              push (nb.peer, len + 1, target, nb.link, false))
          (Topology.neighbors topo target)
    end
  done;
  (* ---- Phase 2: peer-learned routes (single lateral step). ---- *)
  let better (candidate : entry) (current : entry option) =
    match current with
    | None -> true
    | Some e ->
        candidate.len < e.len
        || (candidate.len = e.len
           && (candidate.parent, candidate.link.Relation.id)
              < (e.parent, e.link.Relation.id))
  in
  List.iter
    (fun (target, len, parent, link, no_export) ->
      if target <> origin then begin
        let candidate = { len; parent; link; no_export } in
        if better candidate peer.(target) then peer.(target) <- Some candidate
      end)
    (seeds topo config ~klass:Route.Peer);
  for x = 0 to n - 1 do
    match cust.(x) with
    | None -> ()
    | Some ex ->
        if not ex.no_export then
          List.iter
            (fun (nb : Topology.neighbor) ->
              match nb.rel with
              | Relation.Priv_peer | Relation.Pub_peer ->
                  if nb.peer <> origin then begin
                    let candidate =
                      { len = ex.len + 1; parent = x; link = nb.link;
                        no_export = false }
                    in
                    if better candidate peer.(nb.peer) then
                      peer.(nb.peer) <- Some candidate
                  end
              | Relation.To_customer | Relation.To_provider -> ())
            (Topology.neighbors topo x)
  done;
  (* ---- Phase 3: provider-learned routes (propagate downward). ---- *)
  let sel_fixed x =
    (* Selected best among the already-final classes. *)
    match cust.(x) with Some e -> Some e | None -> peer.(x)
  in
  let pq = ref Pq.empty in
  let push (target, len, parent, link, no_export) =
    if tracing then Netsim_obs.Metrics.incr c_exported;
    pq := Pq.add (len, parent, link.Relation.id, target, link, no_export) !pq
  in
  List.iter push (seeds topo config ~klass:Route.Provider);
  (* ASes whose selection is already final export to their customers
     regardless of phase-3 progress. *)
  for x = 0 to n - 1 do
    match sel_fixed x with
    | None -> ()
    | Some ex ->
        if not ex.no_export then
          List.iter
            (fun (nb : Topology.neighbor) ->
              if nb.rel = Relation.To_customer && nb.peer <> origin then
                push (nb.peer, ex.len + 1, x, nb.link, false))
            (Topology.neighbors topo x)
  done;
  while not (Pq.is_empty !pq) do
    let ((len, parent, _, target, link, no_export) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if target <> origin && prov.(target) = None then begin
      prov.(target) <- Some { len; parent; link; no_export };
      (* If the provider route is the target's selected best, it now
         exports that route to its customers. *)
      if sel_fixed target = None && not no_export then
        List.iter
          (fun (nb : Topology.neighbor) ->
            if nb.rel = Relation.To_customer && nb.peer <> origin then
              push (nb.peer, len + 1, target, nb.link, false))
          (Topology.neighbors topo target)
    end
  done;
  if tracing then begin
    let selected = ref 0 and visited = ref 0 in
    for x = 0 to n - 1 do
      let c = cust.(x) <> None
      and p = peer.(x) <> None
      and v = prov.(x) <> None in
      if c then Stdlib.incr selected;
      if p then Stdlib.incr selected;
      if v then Stdlib.incr selected;
      if c || p || v then Stdlib.incr visited
    done;
    Netsim_obs.Metrics.add c_selected !selected;
    Netsim_obs.Metrics.add c_visited !visited
  end;
  { topo; config; cust; peer; prov }

let selected_entry s x =
  if x = origin s then None
  else
    match s.cust.(x) with
    | Some e -> Some (Route.Customer, e)
    | None -> (
        match s.peer.(x) with
        | Some e -> Some (Route.Peer, e)
        | None -> (
            match s.prov.(x) with
            | Some e -> Some (Route.Provider, e)
            | None -> None))

let selected_class s x =
  match selected_entry s x with Some (k, _) -> Some k | None -> None

let reachable s x = x = origin s || selected_entry s x <> None

let rec path_of s x klass =
  (* AS path from x's route of the given class: next hop ... origin. *)
  let entry =
    match klass with
    | Route.Customer -> s.cust.(x)
    | Route.Peer -> s.peer.(x)
    | Route.Provider -> s.prov.(x)
  in
  match entry with
  | None -> []
  | Some e ->
      if e.parent = origin s then [ e.parent ]
      else begin
        let parent_klass =
          match klass with
          | Route.Customer -> Route.Customer
          | Route.Peer -> Route.Customer
          | Route.Provider -> (
              match selected_entry s e.parent with
              | Some (k, _) -> k
              | None -> Route.Provider (* unreachable in a valid state *))
        in
        e.parent :: path_of s e.parent parent_klass
      end

let as_path s x =
  match selected_entry s x with
  | None -> []
  | Some (klass, _) -> path_of s x klass

let best s x =
  match selected_entry s x with
  | None -> None
  | Some (klass, e) ->
      Some
        {
          Route.dest = origin s;
          klass;
          next_hop = e.parent;
          via_link = e.link;
          path_len = e.len;
          as_path = path_of s x klass;
        }

let klass_of_rel = function
  | Relation.To_customer -> Route.Customer
  | Relation.To_provider -> Route.Provider
  | Relation.Priv_peer | Relation.Pub_peer -> Route.Peer

let received s x =
  if x = origin s then []
  else
    List.filter_map
      (fun (nb : Topology.neighbor) ->
        if nb.peer = origin s then begin
          (* Direct announcement from the origin on this session. *)
          let action = Announce.action_on s.config nb.link in
          if not action.Announce.export then None
          else
            Some
              {
                Route.dest = origin s;
                klass = klass_of_rel nb.rel;
                next_hop = nb.peer;
                via_link = nb.link;
                path_len = 1 + action.Announce.prepend;
                as_path = [ origin s ];
              }
        end
        else
          match selected_entry s nb.peer with
          | None -> None
          | Some (peer_klass, peer_entry) ->
              (* A NO_EXPORT route is never advertised further.
                 Otherwise: to its customers the neighbor exports
                 everything; to peers/providers only customer-learned
                 routes. *)
              let x_is_customer_of_peer = nb.rel = Relation.To_provider in
              if peer_entry.no_export then None
              else if
                (not x_is_customer_of_peer) && peer_klass <> Route.Customer
              then None
              else begin
                let peer_path = path_of s nb.peer peer_klass in
                if List.mem x peer_path || peer_entry.parent = x then None
                else
                  Some
                    {
                      Route.dest = origin s;
                      klass = klass_of_rel nb.rel;
                      next_hop = nb.peer;
                      via_link = nb.link;
                      path_len = peer_entry.len + 1;
                      as_path = nb.peer :: peer_path;
                    }
              end)
      (Topology.neighbors s.topo x)

let received_at_metro s x ~metro =
  List.filter
    (fun (r : Route.t) -> r.via_link.Relation.metro = metro)
    (received s x)
