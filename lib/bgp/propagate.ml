module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Provenance = Netsim_obs.Provenance

type entry = {
  len : int;
  parent : int;
  link : Relation.link;
  no_export : bool;
      (** The route carries NO_EXPORT: usable here, never re-exported. *)
}

(* ---- bit-packed routing entries -------------------------------------- *)

(* Per-AS, per-class routing state lives in flat int arrays instead of
   [entry option array]s: one immediate word per entry, no pointer
   chasing and no per-entry allocation in the hot loops.  Layout (an
   empty slot is -1, so the sign bit doubles as the presence flag):

     bit  0      no_export
     bits 1-21   link id        (21 bits; Topology caps ids at 2^21)
     bits 22-41  parent AS id   (20 bits; Topology caps ASes at 2^20)
     bits 42-61  path length    (20 bits)

   Integer comparison of two packed entries is exactly the
   deterministic route preference (len, parent, link id) the Set-based
   implementation used, so "is this candidate better" is one compare. *)

let e_pack ~len ~parent ~link ~ne =
  (len lsl 42) lor (parent lsl 22) lor (link lsl 1) lor (if ne then 1 else 0)

let e_len v = v lsr 42
let e_parent v = (v lsr 22) land 0xF_FFFF
let e_link v = (v lsr 1) land 0x1F_FFFF
let e_ne v = v land 1 = 1

let max_path_len = (1 lsl 20) - 1

type state = {
  topo : Topology.t;
  config : Announce.t;
  link_by_id : Relation.link array;
      (** Link records indexed by id (ids survive [remove_links], so
          this is {e not} the topology's [links] array). *)
  cust : int array;
  peer : int array;
  prov : int array;
  pv : Provenance.arena option;
      (** Decision evidence per (class, AS), present when the state was
          computed with provenance on. *)
}

let topology s = s.topo
let config s = s.config
let origin s = s.config.Announce.origin

let dummy_link =
  { Relation.id = -1; a = -1; b = -1; kind = Relation.C2p; metro = 0;
    capacity_gbps = 0. }

let link_index topo =
  let links = Topology.links topo in
  let max_id =
    Array.fold_left
      (fun m (l : Relation.link) -> Stdlib.max m l.Relation.id)
      (-1) links
  in
  let t = Array.make (max_id + 1) dummy_link in
  Array.iter (fun (l : Relation.link) -> t.(l.Relation.id) <- l) links;
  t

let entry_of s v =
  {
    len = e_len v;
    parent = e_parent v;
    link = s.link_by_id.(e_link v);
    no_export = e_ne v;
  }

let get s (arr : int array) x =
  let v = arr.(x) in
  if v < 0 then None else Some (entry_of s v)

(* ---- monotone bucket (Dial) queue ------------------------------------ *)

(* Export candidates queue up in per-path-length buckets: lengths only
   ever grow by one hop, so the scan over buckets is monotone and the
   whole priority queue is append + one sort per bucket — no [Set]
   node churn, no tuple allocation.  A queued candidate is one packed
   int (the bucket index carries the length):

     bit  0      no_export
     bits 1-20   target AS id
     bits 21-41  link id
     bits 42-61  parent AS id

   Ascending int order is (parent, link, target): exactly the
   tie-break order the Set-based queue popped in within one length.
   Every push from a bucket goes to a strictly higher bucket, so a
   bucket is complete when the scan reaches it, and one sort there
   reproduces the full (len, parent, link, target) pop order —
   results are bit-identical to [run_reference]. *)

let q_pack ~parent ~link ~target ~ne =
  (parent lsl 42) lor (link lsl 21) lor (target lsl 1)
  lor (if ne then 1 else 0)

let q_parent v = v lsr 42
let q_link v = (v lsr 21) land 0x1F_FFFF
let q_target v = (v lsr 1) land 0xF_FFFF
let q_ne v = v land 1 = 1

type dial = {
  mutable buckets : int array array;
  mutable sizes : int array;
  mutable cur : int;  (** buckets below this are drained *)
  mutable pending : int;
}

let dial_create () =
  { buckets = Array.make 16 [||]; sizes = Array.make 16 0; cur = 0; pending = 0 }

let dial_push q ~len packed =
  if len < 0 || len > max_path_len then
    invalid_arg "Propagate: path length out of packed range";
  if len < q.cur then invalid_arg "Propagate: non-monotone queue push";
  let cap = Array.length q.buckets in
  if len >= cap then begin
    let ncap = Stdlib.max (len + 1) (2 * cap) in
    let nb = Array.make ncap [||] and ns = Array.make ncap 0 in
    Array.blit q.buckets 0 nb 0 cap;
    Array.blit q.sizes 0 ns 0 cap;
    q.buckets <- nb;
    q.sizes <- ns
  end;
  let b = q.buckets.(len) and sz = q.sizes.(len) in
  let b =
    if sz = Array.length b then begin
      let nb = Array.make (Stdlib.max 8 (2 * sz)) 0 in
      Array.blit b 0 nb 0 sz;
      q.buckets.(len) <- nb;
      nb
    end
    else b
  in
  b.(sz) <- packed;
  q.sizes.(len) <- sz + 1;
  q.pending <- q.pending + 1

(* Ascending in-place sort of a.(lo..hi-1): insertion sort for small
   ranges, median-of-three quicksort above — monomorphic int compares
   throughout. *)
let rec sort_range (a : int array) lo hi =
  if hi - lo <= 12 then
    for i = lo + 1 to hi - 1 do
      let v = a.(i) in
      let j = ref (i - 1) in
      while !j >= lo && a.(!j) > v do
        a.(!j + 1) <- a.(!j);
        decr j
      done;
      a.(!j + 1) <- v
    done
  else begin
    let mid = lo + ((hi - lo) lsr 1) in
    let x = a.(lo) and y = a.(mid) and z = a.(hi - 1) in
    let pivot =
      if x < y then if y < z then y else if x < z then z else x
      else if x < z then x
      else if y < z then z
      else y
    in
    let i = ref lo and j = ref (hi - 1) in
    while !i <= !j do
      while a.(!i) < pivot do
        incr i
      done;
      while a.(!j) > pivot do
        decr j
      done;
      if !i <= !j then begin
        let tmp = a.(!i) in
        a.(!i) <- a.(!j);
        a.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    sort_range a lo (!j + 1);
    sort_range a !i hi
  end

let dial_drain q f =
  while q.pending > 0 do
    while q.sizes.(q.cur) = 0 do
      q.cur <- q.cur + 1
    done;
    let len = q.cur in
    let b = q.buckets.(len) and sz = q.sizes.(len) in
    sort_range b 0 sz;
    (* Processing can only push to higher buckets, so [sz] is final. *)
    q.pending <- q.pending - sz;
    q.sizes.(len) <- 0;
    q.cur <- len + 1;
    for i = 0 to sz - 1 do
      f ~len b.(i)
    done
  done

(* Seeds: announcements the origin sends on its own sessions, grouped
   by the class in which the receiving AS learns them. *)
let seeds topo config ~klass =
  let origin = config.Announce.origin in
  List.filter_map
    (fun (nb : Topology.neighbor) ->
      let action = Announce.action_on config nb.link in
      if not action.Announce.export then None
      else begin
        (* nb.rel is the relation from the origin's perspective; the
           receiver's class is the mirror image. *)
        let receiver_klass =
          match nb.rel with
          | Relation.To_customer -> Route.Provider (* receiver sees provider *)
          | Relation.To_provider -> Route.Customer (* receiver sees customer *)
          | Relation.Priv_peer | Relation.Pub_peer -> Route.Peer
        in
        if receiver_klass = klass then
          Some
            ( nb.peer,
              1 + action.Announce.prepend,
              origin,
              nb.link,
              action.Announce.no_export )
        else None
      end)
    (Topology.neighbors topo origin)

let c_exported = Netsim_obs.Metrics.counter "bgp.announcements_exported"
let c_selected = Netsim_obs.Metrics.counter "bgp.routes_selected"
let c_visited = Netsim_obs.Metrics.counter "bgp.ases_visited"

let record_run_stats ~tracing n (cust : int array) peer prov =
  if tracing then begin
    let selected = ref 0 and visited = ref 0 in
    for x = 0 to n - 1 do
      let c = cust.(x) >= 0 and p = peer.(x) >= 0 and v = prov.(x) >= 0 in
      if c then Stdlib.incr selected;
      if p then Stdlib.incr selected;
      if v then Stdlib.incr selected;
      if c || p || v then Stdlib.incr visited
    done;
    Netsim_obs.Metrics.add c_selected !selected;
    Netsim_obs.Metrics.add c_visited !visited
  end

(* Which tie-break rule discriminated the winner of class [cls] at AS
   [x] from the overall runner-up.  A same-class runner-up loses on
   path length or the stable (parent, link) pair; otherwise the best
   entry of the next non-empty class lost on relationship class alone;
   otherwise the winner was the only candidate anywhere. *)
let pv_rule pva ~cust:(_ : int array) ~peer ~prov ~cls ~winner x =
  let same = Provenance.runner_up pva ~cls x in
  if same >= 0 then
    if e_len same <> e_len winner then Provenance.Path_length
    else Provenance.Stable_id
  else if cls = 0 && peer.(x) >= 0 then Provenance.Phase
  else if cls <= 1 && prov.(x) >= 0 then Provenance.Phase
  else Provenance.Only_candidate

(* Per-run counter tally: decisions by winning phase and a histogram
   of discriminating rules.  Only from full runs (reconverge rebuilds
   its arena through [run]). *)
let record_provenance_stats ~tracing n ~origin pva cust peer prov =
  if tracing then
    for x = 0 to n - 1 do
      if x <> origin then begin
        let cls =
          if cust.(x) >= 0 then 0
          else if peer.(x) >= 0 then 1
          else if prov.(x) >= 0 then 2
          else -1
        in
        if cls >= 0 then begin
          let winner =
            match cls with 0 -> cust.(x) | 1 -> peer.(x) | _ -> prov.(x)
          in
          Provenance.bump_decision cls;
          Provenance.bump_rule (pv_rule pva ~cust ~peer ~prov ~cls ~winner x)
        end
      end
    done

(* Shared placeholder for provenance-off runs: never written, so the
   hot loops can hold an unconditional arena local and guard each
   record with the [pv_on] immutable bool (load + branch, the flight
   recorder's disabled-cost discipline). *)
let no_arena = Provenance.create 0

let run ?provenance topo config =
  Netsim_obs.Span.with_ ~name:"bgp.propagate" @@ fun () ->
  (* One flag read per run: record sites below are guarded by this
     immutable local so the disabled-mode cost in the hot loops is a
     single well-predicted branch. *)
  let tracing = Netsim_obs.Metrics.enabled () in
  let pv_on =
    match provenance with Some b -> b | None -> Provenance.enabled ()
  in
  let n = Topology.as_count topo in
  (* CSR adjacency arena: AS x's packed neighbor words are
     wrd.(off.(x)) .. wrd.(off.(x+1)-1).  Hoisted once per run. *)
  let off = Topology.csr_offsets topo and wrd = Topology.csr_words topo in
  let pva = if pv_on then Provenance.create n else no_arena in
  let origin = config.Announce.origin in
  let cust = Array.make n (-1) in
  let peer = Array.make n (-1) in
  let prov = Array.make n (-1) in
  (* ---- Phase 1: customer-learned routes (propagate upward). ---- *)
  let q = dial_create () in
  let push_seed (target, len, (_ : int), link, ne) =
    if tracing then Netsim_obs.Metrics.incr c_exported;
    dial_push q ~len (q_pack ~parent:origin ~link:link.Relation.id ~target ~ne)
  in
  List.iter push_seed (seeds topo config ~klass:Route.Customer);
  (* Provenance in the drains: the queue is monotone, so the first pop
     for a target is the winning candidate and every later pop a loser
     — count each arrival, offer losers as runner-ups. *)
  dial_drain q (fun ~len v ->
      let target = q_target v in
      if target <> origin then
        if cust.(target) < 0 then begin
          if pv_on then Provenance.count pva ~cls:0 target;
          cust.(target) <-
            e_pack ~len ~parent:(q_parent v) ~link:(q_link v) ~ne:(q_ne v);
          (* target exports its best customer route to its providers —
             unless the announcement was scoped with NO_EXPORT. *)
          if not (q_ne v) then
            for i = off.(target) to off.(target + 1) - 1 do
              let pn = wrd.(i) in
              match Topology.pn_rel pn with
              | Relation.To_provider ->
                  let up = Topology.pn_peer pn in
                  if up <> origin then begin
                    if tracing then Netsim_obs.Metrics.incr c_exported;
                    dial_push q ~len:(len + 1)
                      (q_pack ~parent:target ~link:(Topology.pn_link pn)
                         ~target:up ~ne:false)
                  end
              | Relation.To_customer | Relation.Priv_peer | Relation.Pub_peer
                ->
                  ()
            done
        end
        else if pv_on then begin
          Provenance.count pva ~cls:0 target;
          Provenance.offer pva ~cls:0 target
            (e_pack ~len ~parent:(q_parent v) ~link:(q_link v) ~ne:(q_ne v))
        end);
  (* ---- Phase 2: peer-learned routes (single lateral step). ----
     Provenance here is the classic two-minima update: when a new best
     displaces the current entry, the displaced entry is offered as
     runner-up (it beat every earlier loser); otherwise the candidate
     itself lost.  Order-independent either way. *)
  List.iter
    (fun (target, len, (_ : int), (link : Relation.link), ne) ->
      if target <> origin then begin
        let cand = e_pack ~len ~parent:origin ~link:link.Relation.id ~ne in
        let cur = peer.(target) in
        if pv_on then begin
          Provenance.count pva ~cls:1 target;
          if cur >= 0 then
            Provenance.offer pva ~cls:1 target (if cand < cur then cur else cand)
        end;
        if cur < 0 || cand < cur then peer.(target) <- cand
      end)
    (seeds topo config ~klass:Route.Peer);
  for x = 0 to n - 1 do
    let ex = cust.(x) in
    if ex >= 0 && not (e_ne ex) then begin
      let len1 = e_len ex + 1 in
      for i = off.(x) to off.(x + 1) - 1 do
        let pn = wrd.(i) in
        match Topology.pn_rel pn with
        | Relation.Priv_peer | Relation.Pub_peer ->
            let lateral = Topology.pn_peer pn in
            if lateral <> origin then begin
              let cand =
                e_pack ~len:len1 ~parent:x ~link:(Topology.pn_link pn) ~ne:false
              in
              let cur = peer.(lateral) in
              if pv_on then begin
                Provenance.count pva ~cls:1 lateral;
                if cur >= 0 then
                  Provenance.offer pva ~cls:1 lateral
                    (if cand < cur then cur else cand)
              end;
              if cur < 0 || cand < cur then peer.(lateral) <- cand
            end
        | Relation.To_customer | Relation.To_provider -> ()
      done
    end
  done;
  (* ---- Phase 3: provider-learned routes (propagate downward). ---- *)
  let q = dial_create () in
  List.iter
    (fun (target, len, (_ : int), (link : Relation.link), ne) ->
      if tracing then Netsim_obs.Metrics.incr c_exported;
      dial_push q ~len (q_pack ~parent:origin ~link:link.Relation.id ~target ~ne))
    (seeds topo config ~klass:Route.Provider);
  (* ASes whose selection is already final export to their customers
     regardless of phase-3 progress. *)
  for x = 0 to n - 1 do
    let ex = if cust.(x) >= 0 then cust.(x) else peer.(x) in
    if ex >= 0 && not (e_ne ex) then begin
      let len1 = e_len ex + 1 in
      for i = off.(x) to off.(x + 1) - 1 do
        let pn = wrd.(i) in
        match Topology.pn_rel pn with
        | Relation.To_customer ->
            let down = Topology.pn_peer pn in
            if down <> origin then begin
              if tracing then Netsim_obs.Metrics.incr c_exported;
              dial_push q ~len:len1
                (q_pack ~parent:x ~link:(Topology.pn_link pn) ~target:down
                   ~ne:false)
            end
        | Relation.To_provider | Relation.Priv_peer | Relation.Pub_peer -> ()
      done
    end
  done;
  dial_drain q (fun ~len v ->
      let target = q_target v in
      if target <> origin then
        if prov.(target) < 0 then begin
          if pv_on then Provenance.count pva ~cls:2 target;
          prov.(target) <-
            e_pack ~len ~parent:(q_parent v) ~link:(q_link v) ~ne:(q_ne v);
          (* If the provider route is the target's selected best, it now
             exports that route to its customers. *)
          if cust.(target) < 0 && peer.(target) < 0 && not (q_ne v) then
            for i = off.(target) to off.(target + 1) - 1 do
              let pn = wrd.(i) in
              match Topology.pn_rel pn with
              | Relation.To_customer ->
                  let down = Topology.pn_peer pn in
                  if down <> origin then begin
                    if tracing then Netsim_obs.Metrics.incr c_exported;
                    dial_push q ~len:(len + 1)
                      (q_pack ~parent:target ~link:(Topology.pn_link pn)
                         ~target:down ~ne:false)
                  end
              | Relation.To_provider | Relation.Priv_peer | Relation.Pub_peer
                ->
                  ()
            done
        end
        else if pv_on then begin
          Provenance.count pva ~cls:2 target;
          Provenance.offer pva ~cls:2 target
            (e_pack ~len ~parent:(q_parent v) ~link:(q_link v) ~ne:(q_ne v))
        end);
  record_run_stats ~tracing n cust peer prov;
  if pv_on then record_provenance_stats ~tracing n ~origin pva cust peer prov;
  { topo; config; link_by_id = link_index topo; cust; peer; prov;
    pv = (if pv_on then Some pva else None) }

(* ---- batched multi-origin propagation -------------------------------- *)

(* [run_batch] sweeps many origins through the topology in one pass.
   Per origin it performs exactly the pushes of [run]: queue entries of
   different origins never interact, and within a level each target's
   winner is the minimum candidate by (parent, link, ne) — the same
   entry [run]'s sorted first-pop selects — so every returned state is
   entry-identical to an independent [run] (the differential property
   in test/test_scale.ml).  What batching buys over k independent
   runs:

   - the level drains settle by minimum instead of by sorted pop
     order, so the per-bucket sort — a large share of [run]'s queue
     cost — disappears entirely;
   - [link_index] and the class-partitioned adjacency are built once
     per batch instead of once per run;
   - the phase-2 lateral and phase-3 boundary sweeps walk each CSR row
     once, with the origins in the inner loop;
   - export scans in the drains iterate only the edges of the relevant
     relation class (the partitioned arena) instead of decoding every
     word of a full row per origin.

   Entry state lives in stride-k flat arrays (class.(x * k + o)) so
   the inner origin loops stay on adjacent words. *)

let c_batches = Netsim_obs.Metrics.counter "bgp.propagate_batches"
let c_batch_origins = Netsim_obs.Metrics.counter "bgp.propagate_batch_origins"

(* The dial queue generalized to per-(length, origin) sub-buckets.  A
   packed queue word has no spare bits for the origin, so the origin
   index selects a sub-bucket instead.  Buckets stay unsorted — level
   drains settle each target by minimum candidate, which coincides
   with [run]'s sorted pop order (see the drain comment in
   [run_batch]) — and cross-origin interleaving is unobservable
   because an origin's entries only touch its own slots. *)
type bdial = {
  bk : int;
  mutable bbuckets : int array array array;  (* [len].(org) packed words *)
  mutable bsizes : int array array;  (* [len].(org) fill count *)
  mutable blevel : int array;  (* pending words per length *)
  mutable bcur : int;
  mutable bpending : int;
}

let bdial_create k =
  {
    bk = k;
    bbuckets = Array.make 16 [||];
    bsizes = Array.make 16 [||];
    blevel = Array.make 16 0;
    bcur = 0;
    bpending = 0;
  }

let bdial_push q ~len ~org packed =
  if len < 0 || len > max_path_len then
    invalid_arg "Propagate: path length out of packed range";
  if len < q.bcur then invalid_arg "Propagate: non-monotone queue push";
  let cap = Array.length q.bbuckets in
  if len >= cap then begin
    let ncap = Stdlib.max (len + 1) (2 * cap) in
    let nb = Array.make ncap [||]
    and ns = Array.make ncap [||]
    and nl = Array.make ncap 0 in
    Array.blit q.bbuckets 0 nb 0 cap;
    Array.blit q.bsizes 0 ns 0 cap;
    Array.blit q.blevel 0 nl 0 cap;
    q.bbuckets <- nb;
    q.bsizes <- ns;
    q.blevel <- nl
  end;
  if Array.length q.bsizes.(len) = 0 then begin
    q.bbuckets.(len) <- Array.make q.bk [||];
    q.bsizes.(len) <- Array.make q.bk 0
  end;
  let row = q.bbuckets.(len) and szs = q.bsizes.(len) in
  let b = row.(org) and sz = szs.(org) in
  let b =
    if sz = Array.length b then begin
      let nb = Array.make (Stdlib.max 8 (2 * sz)) 0 in
      Array.blit b 0 nb 0 sz;
      row.(org) <- nb;
      nb
    end
    else b
  in
  b.(sz) <- packed;
  szs.(org) <- sz + 1;
  q.blevel.(len) <- q.blevel.(len) + 1;
  q.bpending <- q.bpending + 1

(* Open the next non-empty level for draining: returns the length, the
   per-origin buckets and fills, and marks the level consumed (pops at
   [len] only push to [len + 1], so these buckets are final — same
   argument as [dial_drain], per origin). *)
let bdial_next_level q =
  while q.blevel.(q.bcur) = 0 do
    q.bcur <- q.bcur + 1
  done;
  let len = q.bcur in
  q.bpending <- q.bpending - q.blevel.(len);
  q.blevel.(len) <- 0;
  q.bcur <- len + 1;
  (len, q.bbuckets.(len), q.bsizes.(len))

(* Class-partitioned copy of the CSR arena: per AS, only its
   To_provider / peer / To_customer words, in row order.  One O(n+m)
   pass; lets the batch drains skip the per-word relation decode. *)
let partition_csr n (off : int array) (wrd : int array) =
  let up_off = Array.make (n + 1) 0
  and lat_off = Array.make (n + 1) 0
  and down_off = Array.make (n + 1) 0 in
  for x = 0 to n - 1 do
    for i = off.(x) to off.(x + 1) - 1 do
      match Topology.pn_rel wrd.(i) with
      | Relation.To_provider -> up_off.(x + 1) <- up_off.(x + 1) + 1
      | Relation.Priv_peer | Relation.Pub_peer ->
          lat_off.(x + 1) <- lat_off.(x + 1) + 1
      | Relation.To_customer -> down_off.(x + 1) <- down_off.(x + 1) + 1
    done
  done;
  for x = 0 to n - 1 do
    up_off.(x + 1) <- up_off.(x + 1) + up_off.(x);
    lat_off.(x + 1) <- lat_off.(x + 1) + lat_off.(x);
    down_off.(x + 1) <- down_off.(x + 1) + down_off.(x)
  done;
  let up_w = Array.make up_off.(n) 0
  and lat_w = Array.make lat_off.(n) 0
  and down_w = Array.make down_off.(n) 0 in
  let ui = Array.copy up_off
  and li = Array.copy lat_off
  and di = Array.copy down_off in
  for x = 0 to n - 1 do
    for i = off.(x) to off.(x + 1) - 1 do
      let pn = wrd.(i) in
      match Topology.pn_rel pn with
      | Relation.To_provider ->
          up_w.(ui.(x)) <- pn;
          ui.(x) <- ui.(x) + 1
      | Relation.Priv_peer | Relation.Pub_peer ->
          lat_w.(li.(x)) <- pn;
          li.(x) <- li.(x) + 1
      | Relation.To_customer ->
          down_w.(di.(x)) <- pn;
          di.(x) <- di.(x) + 1
    done
  done;
  (up_off, up_w, lat_off, lat_w, down_off, down_w)

let run_batch ?provenance topo configs =
  let k = Array.length configs in
  if k = 0 then [||]
  else
    Netsim_obs.Span.with_ ~name:"bgp.propagate_batch" @@ fun () ->
    let tracing = Netsim_obs.Metrics.enabled () in
    if tracing then begin
      Netsim_obs.Metrics.incr c_batches;
      Netsim_obs.Metrics.add c_batch_origins k
    end;
    let pv_on =
      match provenance with Some b -> b | None -> Provenance.enabled ()
    in
    let n = Topology.as_count topo in
    let off = Topology.csr_offsets topo and wrd = Topology.csr_words topo in
    let up_off, up_w, lat_off, lat_w, down_off, down_w =
      partition_csr n off wrd
    in
    let origins = Array.map (fun c -> c.Announce.origin) configs in
    let pvas =
      if pv_on then Array.init k (fun _ -> Provenance.create n) else [||]
    in
    let bc = Array.make (n * k) (-1)
    and bp = Array.make (n * k) (-1)
    and bv = Array.make (n * k) (-1) in
    (* ---- Phase 1: customer-learned routes, all origins. ---- *)
    let q = bdial_create k in
    for o = 0 to k - 1 do
      List.iter
        (fun (target, len, (_ : int), (link : Relation.link), ne) ->
          if tracing then Netsim_obs.Metrics.incr c_exported;
          bdial_push q ~len ~org:o
            (q_pack ~parent:origins.(o) ~link:link.Relation.id ~target ~ne))
        (seeds topo configs.(o) ~klass:Route.Customer)
    done;
    (* Drain level by level, buckets unsorted: within a level, [run]'s
       sorted first-pop winner for a target is the minimum candidate by
       (parent, link, ne) — exactly [e_pack] order at equal length — so
       a two-minima settle pass picks the identical winner (and, with
       provenance on, offers the identical loser multiset: every
       comparison permanently discards one candidate, so the offers are
       all candidates but the min, just as [run]'s post-settle pops
       are).  An export pass then pushes the newly settled ASes'
       provider exports at [len + 1]; exports only depend on the final
       winner, which is already known.  Skipping the per-bucket sort is
       most of [run_batch]'s speedup at scale.  The bucket array
       doubles as the newly-settled worklist: settled targets are
       written back into its prefix during the settle pass. *)
    while q.bpending > 0 do
      let len, row, szs = bdial_next_level q in
      for org = 0 to k - 1 do
        let sz = szs.(org) in
        if sz > 0 then begin
          let b = row.(org) in
          szs.(org) <- 0;
          let origin = origins.(org) in
          let settled = ref 0 in
          for i = 0 to sz - 1 do
            let v = b.(i) in
            let target = q_target v in
            if target <> origin then begin
              let idx = (target * k) + org in
              let cand =
                e_pack ~len ~parent:(q_parent v) ~link:(q_link v) ~ne:(q_ne v)
              in
              let cur = bc.(idx) in
              if pv_on then Provenance.count pvas.(org) ~cls:0 target;
              if cur < 0 then begin
                bc.(idx) <- cand;
                b.(!settled) <- target;
                incr settled
              end
              else begin
                if cand < cur then bc.(idx) <- cand;
                if pv_on then
                  Provenance.offer pvas.(org) ~cls:0 target
                    (if cand < cur then cur else cand)
              end
            end
          done;
          for i = 0 to !settled - 1 do
            let target = b.(i) in
            if not (e_ne bc.((target * k) + org)) then
              for j = up_off.(target) to up_off.(target + 1) - 1 do
                let pn = up_w.(j) in
                let up = Topology.pn_peer pn in
                if up <> origin then begin
                  if tracing then Netsim_obs.Metrics.incr c_exported;
                  bdial_push q ~len:(len + 1) ~org
                    (q_pack ~parent:target ~link:(Topology.pn_link pn)
                       ~target:up ~ne:false)
                end
              done
          done
        end
      done
    done;
    (* ---- Phase 2: peer-learned routes. ---- *)
    for o = 0 to k - 1 do
      let origin = origins.(o) in
      List.iter
        (fun (target, len, (_ : int), (link : Relation.link), ne) ->
          if target <> origin then begin
            let idx = (target * k) + o in
            let cand = e_pack ~len ~parent:origin ~link:link.Relation.id ~ne in
            let cur = bp.(idx) in
            if pv_on then begin
              Provenance.count pvas.(o) ~cls:1 target;
              if cur >= 0 then
                Provenance.offer pvas.(o) ~cls:1 target
                  (if cand < cur then cur else cand)
            end;
            if cur < 0 || cand < cur then bp.(idx) <- cand
          end)
        (seeds topo configs.(o) ~klass:Route.Peer)
    done;
    (* Lateral sweep: one walk over each AS's peer words; origins in
       the inner loop.  For a fixed origin the candidate order is
       [run]'s (x ascending, row order) and the two-minima update is
       order-independent anyway. *)
    for x = 0 to n - 1 do
      if lat_off.(x + 1) > lat_off.(x) then begin
        let base = x * k in
        for o = 0 to k - 1 do
          let ex = bc.(base + o) in
          if ex >= 0 && not (e_ne ex) then begin
            let len1 = e_len ex + 1 in
            let origin = origins.(o) in
            for i = lat_off.(x) to lat_off.(x + 1) - 1 do
              let pn = lat_w.(i) in
              let lateral = Topology.pn_peer pn in
              if lateral <> origin then begin
                let idx = (lateral * k) + o in
                let cand =
                  e_pack ~len:len1 ~parent:x ~link:(Topology.pn_link pn)
                    ~ne:false
                in
                let cur = bp.(idx) in
                if pv_on then begin
                  Provenance.count pvas.(o) ~cls:1 lateral;
                  if cur >= 0 then
                    Provenance.offer pvas.(o) ~cls:1 lateral
                      (if cand < cur then cur else cand)
                end;
                if cur < 0 || cand < cur then bp.(idx) <- cand
              end
            done
          end
        done
      end
    done;
    (* ---- Phase 3: provider-learned routes. ---- *)
    let q = bdial_create k in
    for o = 0 to k - 1 do
      List.iter
        (fun (target, len, (_ : int), (link : Relation.link), ne) ->
          if tracing then Netsim_obs.Metrics.incr c_exported;
          bdial_push q ~len ~org:o
            (q_pack ~parent:origins.(o) ~link:link.Relation.id ~target ~ne))
        (seeds topo configs.(o) ~klass:Route.Provider)
    done;
    (* Boundary sweep: each AS row walked once, origins inner. *)
    for x = 0 to n - 1 do
      if down_off.(x + 1) > down_off.(x) then begin
        let base = x * k in
        for o = 0 to k - 1 do
          let c = bc.(base + o) in
          let ex = if c >= 0 then c else bp.(base + o) in
          if ex >= 0 && not (e_ne ex) then begin
            let len1 = e_len ex + 1 in
            let origin = origins.(o) in
            for i = down_off.(x) to down_off.(x + 1) - 1 do
              let pn = down_w.(i) in
              let down = Topology.pn_peer pn in
              if down <> origin then begin
                if tracing then Netsim_obs.Metrics.incr c_exported;
                bdial_push q ~len:len1 ~org:o
                  (q_pack ~parent:x ~link:(Topology.pn_link pn) ~target:down
                     ~ne:false)
              end
            done
          end
        done
      end
    done;
    (* Same unsorted level drain as phase 1 (see the comment there);
       the export condition — the provider route is the target's
       selected best — reads [bc]/[bp], which are final by now, and
       the winner's NO_EXPORT flag. *)
    while q.bpending > 0 do
      let len, row, szs = bdial_next_level q in
      for org = 0 to k - 1 do
        let sz = szs.(org) in
        if sz > 0 then begin
          let b = row.(org) in
          szs.(org) <- 0;
          let origin = origins.(org) in
          let settled = ref 0 in
          for i = 0 to sz - 1 do
            let v = b.(i) in
            let target = q_target v in
            if target <> origin then begin
              let idx = (target * k) + org in
              let cand =
                e_pack ~len ~parent:(q_parent v) ~link:(q_link v) ~ne:(q_ne v)
              in
              let cur = bv.(idx) in
              if pv_on then Provenance.count pvas.(org) ~cls:2 target;
              if cur < 0 then begin
                bv.(idx) <- cand;
                b.(!settled) <- target;
                incr settled
              end
              else begin
                if cand < cur then bv.(idx) <- cand;
                if pv_on then
                  Provenance.offer pvas.(org) ~cls:2 target
                    (if cand < cur then cur else cand)
              end
            end
          done;
          for i = 0 to !settled - 1 do
            let target = b.(i) in
            let idx = (target * k) + org in
            if bc.(idx) < 0 && bp.(idx) < 0 && not (e_ne bv.(idx)) then
              for j = down_off.(target) to down_off.(target + 1) - 1 do
                let pn = down_w.(j) in
                let down = Topology.pn_peer pn in
                if down <> origin then begin
                  if tracing then Netsim_obs.Metrics.incr c_exported;
                  bdial_push q ~len:(len + 1) ~org
                    (q_pack ~parent:target ~link:(Topology.pn_link pn)
                       ~target:down ~ne:false)
                end
              done
          done
        end
      done
    done;
    (* ---- Slice the strided arrays into per-origin states. ---- *)
    let link_by_id = link_index topo in
    Array.init k (fun o ->
        let cust = Array.make n (-1)
        and peer = Array.make n (-1)
        and prov = Array.make n (-1) in
        for x = 0 to n - 1 do
          let idx = (x * k) + o in
          cust.(x) <- bc.(idx);
          peer.(x) <- bp.(idx);
          prov.(x) <- bv.(idx)
        done;
        record_run_stats ~tracing n cust peer prov;
        if pv_on then
          record_provenance_stats ~tracing n ~origin:origins.(o) pvas.(o) cust
            peer prov;
        {
          topo;
          config = configs.(o);
          link_by_id;
          cust;
          peer;
          prov;
          pv = (if pv_on then Some pvas.(o) else None);
        })

(* ---- reference implementation ---------------------------------------- *)

(* The original Set-based priority queue and [entry option] arrays,
   kept verbatim behind the same interface: the differential QCheck
   property in the test suite and bench/micro_propagate hold the
   optimized core to bit-identical results against this. *)
module Pq = Set.Make (struct
  type t = int * int * int * int * Relation.link * bool

  let compare (l1, p1, k1, t1, _, _) (l2, p2, k2, t2, _, _) =
    compare (l1, p1, k1, t1) (l2, p2, k2, t2)
end)

type ref_entry = {
  r_len : int;
  r_parent : int;
  r_link : Relation.link;
  r_ne : bool;
}

let run_reference topo config =
  Netsim_obs.Span.with_ ~name:"bgp.propagate" @@ fun () ->
  let tracing = Netsim_obs.Metrics.enabled () in
  let n = Topology.as_count topo in
  let origin = config.Announce.origin in
  let cust = Array.make n None in
  let peer = Array.make n None in
  let prov = Array.make n None in
  (* ---- Phase 1: customer-learned routes (propagate upward). ---- *)
  let pq = ref Pq.empty in
  let push (target, len, parent, link, no_export) =
    if tracing then Netsim_obs.Metrics.incr c_exported;
    pq := Pq.add (len, parent, link.Relation.id, target, link, no_export) !pq
  in
  List.iter push (seeds topo config ~klass:Route.Customer);
  while not (Pq.is_empty !pq) do
    let ((len, parent, _, target, link, no_export) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if target <> origin && cust.(target) = None then begin
      cust.(target) <- Some { r_len = len; r_parent = parent; r_link = link; r_ne = no_export };
      if not no_export then
        List.iter
          (fun (nb : Topology.neighbor) ->
            if nb.rel = Relation.To_provider && nb.peer <> origin then
              push (nb.peer, len + 1, target, nb.link, false))
          (Topology.neighbors topo target)
    end
  done;
  (* ---- Phase 2: peer-learned routes (single lateral step). ---- *)
  let better (candidate : ref_entry) (current : ref_entry option) =
    match current with
    | None -> true
    | Some e ->
        candidate.r_len < e.r_len
        || (candidate.r_len = e.r_len
           && (candidate.r_parent, candidate.r_link.Relation.id)
              < (e.r_parent, e.r_link.Relation.id))
  in
  List.iter
    (fun (target, len, parent, link, no_export) ->
      if target <> origin then begin
        let candidate =
          { r_len = len; r_parent = parent; r_link = link; r_ne = no_export }
        in
        if better candidate peer.(target) then peer.(target) <- Some candidate
      end)
    (seeds topo config ~klass:Route.Peer);
  for x = 0 to n - 1 do
    match cust.(x) with
    | None -> ()
    | Some ex ->
        if not ex.r_ne then
          List.iter
            (fun (nb : Topology.neighbor) ->
              match nb.rel with
              | Relation.Priv_peer | Relation.Pub_peer ->
                  if nb.peer <> origin then begin
                    let candidate =
                      { r_len = ex.r_len + 1; r_parent = x; r_link = nb.link;
                        r_ne = false }
                    in
                    if better candidate peer.(nb.peer) then
                      peer.(nb.peer) <- Some candidate
                  end
              | Relation.To_customer | Relation.To_provider -> ())
            (Topology.neighbors topo x)
  done;
  (* ---- Phase 3: provider-learned routes (propagate downward). ---- *)
  let sel_fixed x =
    match cust.(x) with Some e -> Some e | None -> peer.(x)
  in
  let pq = ref Pq.empty in
  let push (target, len, parent, link, no_export) =
    if tracing then Netsim_obs.Metrics.incr c_exported;
    pq := Pq.add (len, parent, link.Relation.id, target, link, no_export) !pq
  in
  List.iter push (seeds topo config ~klass:Route.Provider);
  for x = 0 to n - 1 do
    match sel_fixed x with
    | None -> ()
    | Some ex ->
        if not ex.r_ne then
          List.iter
            (fun (nb : Topology.neighbor) ->
              if nb.rel = Relation.To_customer && nb.peer <> origin then
                push (nb.peer, ex.r_len + 1, x, nb.link, false))
            (Topology.neighbors topo x)
  done;
  while not (Pq.is_empty !pq) do
    let ((len, parent, _, target, link, no_export) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if target <> origin && prov.(target) = None then begin
      prov.(target) <- Some { r_len = len; r_parent = parent; r_link = link; r_ne = no_export };
      if sel_fixed target = None && not no_export then
        List.iter
          (fun (nb : Topology.neighbor) ->
            if nb.rel = Relation.To_customer && nb.peer <> origin then
              push (nb.peer, len + 1, target, nb.link, false))
          (Topology.neighbors topo target)
    end
  done;
  let pack_opt = function
    | None -> -1
    | Some e ->
        e_pack ~len:e.r_len ~parent:e.r_parent ~link:e.r_link.Relation.id
          ~ne:e.r_ne
  in
  let cust = Array.map pack_opt cust
  and peer = Array.map pack_opt peer
  and prov = Array.map pack_opt prov in
  record_run_stats ~tracing n cust peer prov;
  (* The reference stays provenance-free: it is the entry oracle, and
     the provenance property tests compare optimized runs instead. *)
  { topo; config; link_by_id = link_index topo; cust; peer; prov; pv = None }

let equal a b =
  a.config.Announce.origin = b.config.Announce.origin
  && a.cust = b.cust && a.peer = b.peer && a.prov = b.prov

(* ---- RIB snapshot views ----------------------------------------------- *)

let rib_arrays s = (Array.copy s.cust, Array.copy s.peer, Array.copy s.prov)

let of_rib_arrays ~topo ~config ~cust ~peer ~prov =
  let n = Topology.as_count topo in
  if Array.length cust <> n || Array.length peer <> n || Array.length prov <> n
  then invalid_arg "Propagate.of_rib_arrays: table length <> AS count";
  let link_by_id = link_index topo in
  let check_table name (t : int array) =
    Array.iteri
      (fun x v ->
        if v >= 0 then begin
          if x = config.Announce.origin then
            invalid_arg
              (Printf.sprintf
                 "Propagate.of_rib_arrays: %s entry at the origin" name);
          let l = e_link v in
          if l >= Array.length link_by_id || link_by_id.(l).Relation.id <> l
          then
            invalid_arg
              (Printf.sprintf
                 "Propagate.of_rib_arrays: %s entry of AS %d references \
                  unknown link %d"
                 name x l);
          if e_parent v >= n then
            invalid_arg
              (Printf.sprintf
                 "Propagate.of_rib_arrays: %s entry of AS %d has parent out \
                  of range"
                 name x)
        end)
      t
  in
  check_table "customer" cust;
  check_table "peer" peer;
  check_table "provider" prov;
  (* Snapshots persist only the routing tables; provenance is rebuilt
     deterministically on demand (see Rib_cache.run ~provenance). *)
  {
    topo;
    config;
    link_by_id;
    cust = Array.copy cust;
    peer = Array.copy peer;
    prov = Array.copy prov;
    pv = None;
  }

(* ---- Incremental reconvergence ------------------------------------ *)

type delta = Link_removed of int | Link_added of int

type reconverge_stats = {
  rs_dirty_cust : int;
  rs_dirty_peer : int;
  rs_dirty_prov : int;
  rs_as_count : int;
}

let rs_dirty r = r.rs_dirty_cust + r.rs_dirty_peer + r.rs_dirty_prov

let c_reconverges = Netsim_obs.Metrics.counter "bgp.reconverges"
let c_reconverge_dirty = Netsim_obs.Metrics.counter "bgp.reconverge_dirty_ases"

(* A single-link topology delta invalidates only the routes that
   (transitively) depend on the changed link.  [reconverge] computes a
   conservative per-class dirty set, clears those entries, and re-runs
   the three propagation phases restricted to the dirty ASes, with
   boundary exports seeded from the untouched entries.  The result is
   provably identical to a full [run] on the new topology (see
   doc/dynamics.md for the closure argument; test_dynamics checks it
   on random single-link failures and flap restores).

   Dirty closure rules, per delta direction:

   - removal only {e worsens} customer/peer candidates, so a worse
     export from [p] can only affect ASes whose current entry already
     goes through [p] (the recorded [parent] back-pointers);
   - addition can {e improve} customer/peer candidates, so an improved
     export from [p] can be adopted by {e any} provider/peer neighbor
     of [p];
   - in both directions a dirty entry of [p] can flip [p]'s overall
     selection between route classes, which changes the length of the
     route [p] exports downhill in either direction — so every
     customer neighbor of a dirty AS joins the provider-class dirty
     set.

   Provenance: the dirty closure bounds where {e entries} change, not
   where candidate {e arrival sets} change (removing a link deletes an
   arrival at an AS whose selected route never used it, leaving the AS
   clean but its candidate count stale), so the arena cannot be
   patched per dirty slot.  When provenance is requested — explicitly,
   because the input state carries it, or via the global flag — the
   incremental entries are kept and the arena is rebuilt by one full
   instrumented sweep.  With provenance off (the default) the
   incremental path is unchanged. *)
let reconverge ?provenance s ~topo delta =
  Netsim_obs.Span.with_ ~name:"bgp.reconverge" @@ fun () ->
  let t0 =
    if Netsim_obs.Recorder.(enabled () && timing ()) then Unix.gettimeofday ()
    else 0.
  in
  let n = Topology.as_count topo in
  if n <> Topology.as_count s.topo then
    invalid_arg "Propagate.reconverge: AS count changed";
  let off = Topology.csr_offsets topo and wrd = Topology.csr_words topo in
  let origin = s.config.Announce.origin in
  let config = s.config in
  let dc = Array.make n false
  and dp = Array.make n false
  and dv = Array.make n false in
  (* Work queue of (AS, class) marks, one packed int each. *)
  let queue = Queue.create () in
  let mark d tag x =
    if x <> origin && not d.(x) then begin
      d.(x) <- true;
      Queue.add ((x lsl 2) lor tag) queue
    end
  in
  let mark_c = mark dc 0 and mark_p = mark dp 1 and mark_v = mark dv 2 in
  (* Reverse dependency index over the old state (removals follow the
     recorded parent pointers; additions walk the live adjacency). *)
  let cust_children = Array.make n [] and peer_children = Array.make n [] in
  (match delta with
  | Link_removed _ ->
      for x = n - 1 downto 0 do
        let e = s.cust.(x) in
        if e >= 0 && e_parent e <> origin then
          cust_children.(e_parent e) <- x :: cust_children.(e_parent e);
        let e = s.peer.(x) in
        if e >= 0 && e_parent e <> origin then
          peer_children.(e_parent e) <- x :: peer_children.(e_parent e)
      done
  | Link_added _ -> ());
  (* Base dirty set: entries riding the removed link, or the potential
     first adopters of the added one. *)
  (match delta with
  | Link_removed l ->
      for x = 0 to n - 1 do
        if s.cust.(x) >= 0 && e_link s.cust.(x) = l then mark_c x;
        if s.peer.(x) >= 0 && e_link s.peer.(x) = l then mark_p x;
        if s.prov.(x) >= 0 && e_link s.prov.(x) = l then mark_v x
      done
  | Link_added l -> (
      let link =
        match
          Array.find_opt
            (fun (lk : Relation.link) -> lk.Relation.id = l)
            (Topology.links topo)
        with
        | Some lk -> lk
        | None -> invalid_arg "Propagate.reconverge: added link not in topology"
      in
      match link.Relation.kind with
      | Relation.C2p ->
          (* [a] is the customer: [b] may gain a customer-learned
             route, [a] a provider-learned one. *)
          mark_c link.Relation.b;
          mark_v link.Relation.a
      | Relation.Peer_private | Relation.Peer_public ->
          mark_p link.Relation.a;
          mark_p link.Relation.b));
  let improving = match delta with Link_added _ -> true | Link_removed _ -> false in
  while not (Queue.is_empty queue) do
    let packed = Queue.pop queue in
    let tag = packed land 3 and p = packed lsr 2 in
    if tag = 0 then
      if improving then
        for i = off.(p) to off.(p + 1) - 1 do
          let pn = wrd.(i) in
          match Topology.pn_rel pn with
          | Relation.To_provider -> mark_c (Topology.pn_peer pn)
          | Relation.Priv_peer | Relation.Pub_peer ->
              mark_p (Topology.pn_peer pn)
          | Relation.To_customer -> ()
        done
      else begin
        List.iter mark_c cust_children.(p);
        List.iter mark_p peer_children.(p)
      end;
    (* Any dirty class can flip p's selection, changing what it
       exports to its customers. *)
    for i = off.(p) to off.(p + 1) - 1 do
      let pn = wrd.(i) in
      match Topology.pn_rel pn with
      | Relation.To_customer -> mark_v (Topology.pn_peer pn)
      | Relation.To_provider | Relation.Priv_peer | Relation.Pub_peer -> ()
    done
  done;
  (* Clear the dirty entries; everything else is final and acts as the
     re-run's boundary. *)
  let cust = Array.copy s.cust
  and peer = Array.copy s.peer
  and prov = Array.copy s.prov in
  let nd_c = ref 0 and nd_p = ref 0 and nd_v = ref 0 in
  for x = 0 to n - 1 do
    if dc.(x) then begin
      cust.(x) <- -1;
      Stdlib.incr nd_c
    end;
    if dp.(x) then begin
      peer.(x) <- -1;
      Stdlib.incr nd_p
    end;
    if dv.(x) then begin
      prov.(x) <- -1;
      Stdlib.incr nd_v
    end
  done;
  (* ---- Phase 1 (restricted): customer-learned routes. ---- *)
  let q = dial_create () in
  List.iter
    (fun (target, len, (_ : int), (link : Relation.link), ne) ->
      if dc.(target) then
        dial_push q ~len
          (q_pack ~parent:origin ~link:link.Relation.id ~target ~ne))
    (seeds topo config ~klass:Route.Customer);
  for t = 0 to n - 1 do
    if dc.(t) then begin
      for i = off.(t) to off.(t + 1) - 1 do
        let pn = wrd.(i) in
        match Topology.pn_rel pn with
        | Relation.To_customer ->
            let y = Topology.pn_peer pn in
            if not dc.(y) then begin
              let e = cust.(y) in
              if e >= 0 && not (e_ne e) then
                dial_push q ~len:(e_len e + 1)
                  (q_pack ~parent:y ~link:(Topology.pn_link pn) ~target:t
                     ~ne:false)
            end
        | Relation.To_provider | Relation.Priv_peer | Relation.Pub_peer -> ()
      done
    end
  done;
  dial_drain q (fun ~len v ->
      let target = q_target v in
      if target <> origin && dc.(target) && cust.(target) < 0 then begin
        cust.(target) <-
          e_pack ~len ~parent:(q_parent v) ~link:(q_link v) ~ne:(q_ne v);
        if not (q_ne v) then
          for i = off.(target) to off.(target + 1) - 1 do
            let pn = wrd.(i) in
            match Topology.pn_rel pn with
            | Relation.To_provider ->
                let up = Topology.pn_peer pn in
                if up <> origin && dc.(up) then
                  dial_push q ~len:(len + 1)
                    (q_pack ~parent:target ~link:(Topology.pn_link pn)
                       ~target:up ~ne:false)
            | Relation.To_customer | Relation.Priv_peer | Relation.Pub_peer ->
                ()
          done
      end);
  (* ---- Phase 2 (restricted): peer-learned routes, pulled per dirty
     target over its full lateral candidate set. ---- *)
  let peer_seeds = seeds topo config ~klass:Route.Peer in
  for t = 0 to n - 1 do
    if dp.(t) then begin
      let best = ref max_int in
      List.iter
        (fun (target, len, (_ : int), (link : Relation.link), ne) ->
          if target = t then begin
            let cand = e_pack ~len ~parent:origin ~link:link.Relation.id ~ne in
            if cand < !best then best := cand
          end)
        peer_seeds;
      for i = off.(t) to off.(t + 1) - 1 do
        let pn = wrd.(i) in
        match Topology.pn_rel pn with
        | Relation.Priv_peer | Relation.Pub_peer ->
            let y = Topology.pn_peer pn in
            let e = cust.(y) in
            if e >= 0 && not (e_ne e) then begin
              let cand =
                e_pack ~len:(e_len e + 1) ~parent:y ~link:(Topology.pn_link pn)
                  ~ne:false
              in
              if cand < !best then best := cand
            end
        | Relation.To_customer | Relation.To_provider -> ()
      done;
      peer.(t) <- (if !best = max_int then -1 else !best)
    end
  done;
  (* ---- Phase 3 (restricted): provider-learned routes. ---- *)
  let q = dial_create () in
  List.iter
    (fun (target, len, (_ : int), (link : Relation.link), ne) ->
      if dv.(target) then
        dial_push q ~len
          (q_pack ~parent:origin ~link:link.Relation.id ~target ~ne))
    (seeds topo config ~klass:Route.Provider);
  for t = 0 to n - 1 do
    if dv.(t) then begin
      for i = off.(t) to off.(t + 1) - 1 do
        let pn = wrd.(i) in
        match Topology.pn_rel pn with
        | Relation.To_provider ->
            let y = Topology.pn_peer pn in
            let e = if cust.(y) >= 0 then cust.(y) else peer.(y) in
            if e >= 0 then begin
              if not (e_ne e) then
                dial_push q ~len:(e_len e + 1)
                  (q_pack ~parent:y ~link:(Topology.pn_link pn) ~target:t
                     ~ne:false)
            end
            else if not dv.(y) then begin
              let e = prov.(y) in
              if e >= 0 && not (e_ne e) then
                dial_push q ~len:(e_len e + 1)
                  (q_pack ~parent:y ~link:(Topology.pn_link pn) ~target:t
                     ~ne:false)
            end
        | Relation.To_customer | Relation.Priv_peer | Relation.Pub_peer -> ()
      done
    end
  done;
  dial_drain q (fun ~len v ->
      let target = q_target v in
      if target <> origin && dv.(target) && prov.(target) < 0 then begin
        prov.(target) <-
          e_pack ~len ~parent:(q_parent v) ~link:(q_link v) ~ne:(q_ne v);
        if cust.(target) < 0 && peer.(target) < 0 && not (q_ne v) then
          for i = off.(target) to off.(target + 1) - 1 do
            let pn = wrd.(i) in
            match Topology.pn_rel pn with
            | Relation.To_customer ->
                let down = Topology.pn_peer pn in
                if down <> origin && dv.(down) then
                  dial_push q ~len:(len + 1)
                    (q_pack ~parent:target ~link:(Topology.pn_link pn)
                       ~target:down ~ne:false)
            | Relation.To_provider | Relation.Priv_peer | Relation.Pub_peer ->
                ()
          done
      end);
  let stats =
    {
      rs_dirty_cust = !nd_c;
      rs_dirty_peer = !nd_p;
      rs_dirty_prov = !nd_v;
      rs_as_count = n;
    }
  in
  if Netsim_obs.Metrics.enabled () then begin
    Netsim_obs.Metrics.incr c_reconverges;
    Netsim_obs.Metrics.add c_reconverge_dirty (rs_dirty stats)
  end;
  if Netsim_obs.Recorder.enabled () then begin
    let open Netsim_obs.Recorder in
    (* ns only under NETSIM_EVENT_NS: wall clock breaks the log's
       byte-for-byte determinism. *)
    let fields =
      [
        I ("dirty_cust", stats.rs_dirty_cust);
        I ("dirty_peer", stats.rs_dirty_peer);
        I ("dirty_prov", stats.rs_dirty_prov);
        I ("as_count", stats.rs_as_count);
      ]
    in
    let fields =
      if timing () then
        fields
        @ [ I ("ns", int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)) ]
      else fields
    in
    record ~kind:"bgp.reconverge" fields
  end;
  let pv_on =
    match provenance with
    | Some b -> b
    | None -> s.pv <> None || Provenance.enabled ()
  in
  let pv = if pv_on then (run ~provenance:true topo config).pv else None in
  ({ topo; config; link_by_id = link_index topo; cust; peer; prov; pv }, stats)

let selected_entry s x =
  if x = origin s then None
  else if s.cust.(x) >= 0 then Some (Route.Customer, entry_of s s.cust.(x))
  else if s.peer.(x) >= 0 then Some (Route.Peer, entry_of s s.peer.(x))
  else if s.prov.(x) >= 0 then Some (Route.Provider, entry_of s s.prov.(x))
  else None

let selected_class s x =
  match selected_entry s x with Some (k, _) -> Some k | None -> None

let reachable s x = x = origin s || selected_entry s x <> None

let rec path_of s x klass =
  (* AS path from x's route of the given class: next hop ... origin. *)
  let entry =
    match klass with
    | Route.Customer -> get s s.cust x
    | Route.Peer -> get s s.peer x
    | Route.Provider -> get s s.prov x
  in
  match entry with
  | None -> []
  | Some e ->
      if e.parent = origin s then [ e.parent ]
      else begin
        let parent_klass =
          match klass with
          | Route.Customer -> Route.Customer
          | Route.Peer -> Route.Customer
          | Route.Provider -> (
              match selected_entry s e.parent with
              | Some (k, _) -> k
              | None -> Route.Provider (* unreachable in a valid state *))
        in
        e.parent :: path_of s e.parent parent_klass
      end

let as_path s x =
  match selected_entry s x with
  | None -> []
  | Some (klass, _) -> path_of s x klass

let best s x =
  match selected_entry s x with
  | None -> None
  | Some (klass, e) ->
      Some
        {
          Route.dest = origin s;
          klass;
          next_hop = e.parent;
          via_link = e.link;
          path_len = e.len;
          as_path = path_of s x klass;
        }

let klass_of_rel = function
  | Relation.To_customer -> Route.Customer
  | Relation.To_provider -> Route.Provider
  | Relation.Priv_peer | Relation.Pub_peer -> Route.Peer

let received s x =
  if x = origin s then []
  else
    List.filter_map
      (fun (nb : Topology.neighbor) ->
        if nb.peer = origin s then begin
          (* Direct announcement from the origin on this session. *)
          let action = Announce.action_on s.config nb.link in
          if not action.Announce.export then None
          else
            Some
              {
                Route.dest = origin s;
                klass = klass_of_rel nb.rel;
                next_hop = nb.peer;
                via_link = nb.link;
                path_len = 1 + action.Announce.prepend;
                as_path = [ origin s ];
              }
        end
        else
          match selected_entry s nb.peer with
          | None -> None
          | Some (peer_klass, peer_entry) ->
              (* A NO_EXPORT route is never advertised further.
                 Otherwise: to its customers the neighbor exports
                 everything; to peers/providers only customer-learned
                 routes. *)
              let x_is_customer_of_peer = nb.rel = Relation.To_provider in
              if peer_entry.no_export then None
              else if
                (not x_is_customer_of_peer) && peer_klass <> Route.Customer
              then None
              else begin
                let peer_path = path_of s nb.peer peer_klass in
                if List.mem x peer_path || peer_entry.parent = x then None
                else
                  Some
                    {
                      Route.dest = origin s;
                      klass = klass_of_rel nb.rel;
                      next_hop = nb.peer;
                      via_link = nb.link;
                      path_len = peer_entry.len + 1;
                      as_path = nb.peer :: peer_path;
                    }
              end)
      (Topology.neighbors s.topo x)

let received_at_metro s x ~metro =
  List.filter
    (fun (r : Route.t) -> r.via_link.Relation.metro = metro)
    (received s x)

(* ---- decision provenance --------------------------------------------- *)

let has_provenance s = s.pv <> None

let provenance_equal a b =
  match (a.pv, b.pv) with
  | None, None -> true
  | Some pa, Some pb -> Provenance.equal pa pb
  | Some _, None | None, Some _ -> false

type runner = {
  r_klass : Route.klass;
  r_path_len : int;
  r_next_hop : int;
  r_link_id : int;
}

type decision = {
  d_klass : Route.klass;
  d_path_len : int;
  d_next_hop : int;
  d_link_id : int;
  d_cand_cust : int;
  d_cand_peer : int;
  d_cand_prov : int;
  d_rule : Provenance.rule;
  d_runner : runner option;
}

let klass_of_cls = function
  | 0 -> Route.Customer
  | 1 -> Route.Peer
  | _ -> Route.Provider

let runner_of_packed klass v =
  { r_klass = klass; r_path_len = e_len v; r_next_hop = e_parent v;
    r_link_id = e_link v }

let decision s x =
  match s.pv with
  | None ->
      invalid_arg
        "Propagate.decision: state carries no provenance (recompute with \
         ~provenance:true)"
  | Some pva ->
      if x = origin s || x < 0 || x >= Provenance.length pva then None
      else begin
        let cls =
          if s.cust.(x) >= 0 then 0
          else if s.peer.(x) >= 0 then 1
          else if s.prov.(x) >= 0 then 2
          else -1
        in
        if cls < 0 then None
        else begin
          let winner =
            match cls with 0 -> s.cust.(x) | 1 -> s.peer.(x) | _ -> s.prov.(x)
          in
          let klass = klass_of_cls cls in
          (* Overall runner-up: the same-class second-best if the class
             had one (same class outranks anything below), else the
             best entry of the next non-empty class. *)
          let runner =
            let same = Provenance.runner_up pva ~cls x in
            if same >= 0 then Some (runner_of_packed klass same)
            else if cls = 0 && s.peer.(x) >= 0 then
              Some (runner_of_packed Route.Peer s.peer.(x))
            else if cls <= 1 && s.prov.(x) >= 0 then
              Some (runner_of_packed Route.Provider s.prov.(x))
            else None
          in
          Some
            {
              d_klass = klass;
              d_path_len = e_len winner;
              d_next_hop = e_parent winner;
              d_link_id = e_link winner;
              d_cand_cust = Provenance.candidates pva ~cls:0 x;
              d_cand_peer = Provenance.candidates pva ~cls:1 x;
              d_cand_prov = Provenance.candidates pva ~cls:2 x;
              d_rule =
                pv_rule pva ~cust:s.cust ~peer:s.peer ~prov:s.prov ~cls ~winner
                  x;
              d_runner = runner;
            }
        end
      end
