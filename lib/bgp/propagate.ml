module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation

type entry = {
  len : int;
  parent : int;
  link : Relation.link;
  no_export : bool;
      (** The route carries NO_EXPORT: usable here, never re-exported. *)
}

type state = {
  topo : Topology.t;
  config : Announce.t;
  cust : entry option array;
  peer : entry option array;
  prov : entry option array;
}

let topology s = s.topo
let config s = s.config
let origin s = s.config.Announce.origin

(* Priority queue of candidates with deterministic ordering;
   implemented over Set since candidate counts are small. *)
module Pq = Set.Make (struct
  type t = int * int * int * int * Relation.link * bool

  let compare (l1, p1, k1, t1, _, _) (l2, p2, k2, t2, _, _) =
    compare (l1, p1, k1, t1) (l2, p2, k2, t2)
end)

(* Seeds: announcements the origin sends on its own sessions, grouped
   by the class in which the receiving AS learns them. *)
let seeds topo config ~klass =
  let origin = config.Announce.origin in
  List.filter_map
    (fun (nb : Topology.neighbor) ->
      let action = Announce.action_on config nb.link in
      if not action.Announce.export then None
      else begin
        (* nb.rel is the relation from the origin's perspective; the
           receiver's class is the mirror image. *)
        let receiver_klass =
          match nb.rel with
          | Relation.To_customer -> Route.Provider (* receiver sees provider *)
          | Relation.To_provider -> Route.Customer (* receiver sees customer *)
          | Relation.Priv_peer | Relation.Pub_peer -> Route.Peer
        in
        if receiver_klass = klass then
          Some
            ( nb.peer,
              1 + action.Announce.prepend,
              origin,
              nb.link,
              action.Announce.no_export )
        else None
      end)
    (Topology.neighbors topo origin)

let c_exported = Netsim_obs.Metrics.counter "bgp.announcements_exported"
let c_selected = Netsim_obs.Metrics.counter "bgp.routes_selected"
let c_visited = Netsim_obs.Metrics.counter "bgp.ases_visited"

let run topo config =
  Netsim_obs.Span.with_ ~name:"bgp.propagate" @@ fun () ->
  (* One flag read per run: record sites below are guarded by this
     immutable local so the disabled-mode cost in the hot loops is a
     single well-predicted branch. *)
  let tracing = Netsim_obs.Metrics.enabled () in
  let n = Topology.as_count topo in
  let origin = config.Announce.origin in
  let cust = Array.make n None in
  let peer = Array.make n None in
  let prov = Array.make n None in
  (* ---- Phase 1: customer-learned routes (propagate upward). ---- *)
  let pq = ref Pq.empty in
  let push (target, len, parent, link, no_export) =
    if tracing then Netsim_obs.Metrics.incr c_exported;
    pq := Pq.add (len, parent, link.Relation.id, target, link, no_export) !pq
  in
  List.iter push (seeds topo config ~klass:Route.Customer);
  while not (Pq.is_empty !pq) do
    let ((len, parent, _, target, link, no_export) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if target <> origin && cust.(target) = None then begin
      cust.(target) <- Some { len; parent; link; no_export };
      (* target exports its best customer route to its providers —
         unless the announcement was scoped with NO_EXPORT. *)
      if not no_export then
        List.iter
          (fun (nb : Topology.neighbor) ->
            if nb.rel = Relation.To_provider && nb.peer <> origin then
              push (nb.peer, len + 1, target, nb.link, false))
          (Topology.neighbors topo target)
    end
  done;
  (* ---- Phase 2: peer-learned routes (single lateral step). ---- *)
  let better (candidate : entry) (current : entry option) =
    match current with
    | None -> true
    | Some e ->
        candidate.len < e.len
        || (candidate.len = e.len
           && (candidate.parent, candidate.link.Relation.id)
              < (e.parent, e.link.Relation.id))
  in
  List.iter
    (fun (target, len, parent, link, no_export) ->
      if target <> origin then begin
        let candidate = { len; parent; link; no_export } in
        if better candidate peer.(target) then peer.(target) <- Some candidate
      end)
    (seeds topo config ~klass:Route.Peer);
  for x = 0 to n - 1 do
    match cust.(x) with
    | None -> ()
    | Some ex ->
        if not ex.no_export then
          List.iter
            (fun (nb : Topology.neighbor) ->
              match nb.rel with
              | Relation.Priv_peer | Relation.Pub_peer ->
                  if nb.peer <> origin then begin
                    let candidate =
                      { len = ex.len + 1; parent = x; link = nb.link;
                        no_export = false }
                    in
                    if better candidate peer.(nb.peer) then
                      peer.(nb.peer) <- Some candidate
                  end
              | Relation.To_customer | Relation.To_provider -> ())
            (Topology.neighbors topo x)
  done;
  (* ---- Phase 3: provider-learned routes (propagate downward). ---- *)
  let sel_fixed x =
    (* Selected best among the already-final classes. *)
    match cust.(x) with Some e -> Some e | None -> peer.(x)
  in
  let pq = ref Pq.empty in
  let push (target, len, parent, link, no_export) =
    if tracing then Netsim_obs.Metrics.incr c_exported;
    pq := Pq.add (len, parent, link.Relation.id, target, link, no_export) !pq
  in
  List.iter push (seeds topo config ~klass:Route.Provider);
  (* ASes whose selection is already final export to their customers
     regardless of phase-3 progress. *)
  for x = 0 to n - 1 do
    match sel_fixed x with
    | None -> ()
    | Some ex ->
        if not ex.no_export then
          List.iter
            (fun (nb : Topology.neighbor) ->
              if nb.rel = Relation.To_customer && nb.peer <> origin then
                push (nb.peer, ex.len + 1, x, nb.link, false))
            (Topology.neighbors topo x)
  done;
  while not (Pq.is_empty !pq) do
    let ((len, parent, _, target, link, no_export) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if target <> origin && prov.(target) = None then begin
      prov.(target) <- Some { len; parent; link; no_export };
      (* If the provider route is the target's selected best, it now
         exports that route to its customers. *)
      if sel_fixed target = None && not no_export then
        List.iter
          (fun (nb : Topology.neighbor) ->
            if nb.rel = Relation.To_customer && nb.peer <> origin then
              push (nb.peer, len + 1, target, nb.link, false))
          (Topology.neighbors topo target)
    end
  done;
  if tracing then begin
    let selected = ref 0 and visited = ref 0 in
    for x = 0 to n - 1 do
      let c = cust.(x) <> None
      and p = peer.(x) <> None
      and v = prov.(x) <> None in
      if c then Stdlib.incr selected;
      if p then Stdlib.incr selected;
      if v then Stdlib.incr selected;
      if c || p || v then Stdlib.incr visited
    done;
    Netsim_obs.Metrics.add c_selected !selected;
    Netsim_obs.Metrics.add c_visited !visited
  end;
  { topo; config; cust; peer; prov }

(* ---- Incremental reconvergence ------------------------------------ *)

type delta = Link_removed of int | Link_added of int

type reconverge_stats = {
  rs_dirty_cust : int;
  rs_dirty_peer : int;
  rs_dirty_prov : int;
  rs_as_count : int;
}

let rs_dirty r = r.rs_dirty_cust + r.rs_dirty_peer + r.rs_dirty_prov

let c_reconverges = Netsim_obs.Metrics.counter "bgp.reconverges"
let c_reconverge_dirty = Netsim_obs.Metrics.counter "bgp.reconverge_dirty_ases"

(* A single-link topology delta invalidates only the routes that
   (transitively) depend on the changed link.  [reconverge] computes a
   conservative per-class dirty set, clears those entries, and re-runs
   the three propagation phases restricted to the dirty ASes, with
   boundary exports seeded from the untouched entries.  The result is
   provably identical to a full [run] on the new topology (see
   doc/dynamics.md for the closure argument; test_dynamics checks it
   on random single-link failures and flap restores).

   Dirty closure rules, per delta direction:

   - removal only {e worsens} customer/peer candidates, so a worse
     export from [p] can only affect ASes whose current entry already
     goes through [p] (the recorded [parent] back-pointers);
   - addition can {e improve} customer/peer candidates, so an improved
     export from [p] can be adopted by {e any} provider/peer neighbor
     of [p];
   - in both directions a dirty entry of [p] can flip [p]'s overall
     selection between route classes, which changes the length of the
     route [p] exports downhill in either direction — so every
     customer neighbor of a dirty AS joins the provider-class dirty
     set. *)
let reconverge s ~topo delta =
  Netsim_obs.Span.with_ ~name:"bgp.reconverge" @@ fun () ->
  let n = Topology.as_count topo in
  if n <> Topology.as_count s.topo then
    invalid_arg "Propagate.reconverge: AS count changed";
  let origin = s.config.Announce.origin in
  let config = s.config in
  let dc = Array.make n false
  and dp = Array.make n false
  and dv = Array.make n false in
  let queue = Queue.create () in
  let mark d tag x =
    if x <> origin && not d.(x) then begin
      d.(x) <- true;
      Queue.add (tag, x) queue
    end
  in
  let mark_c = mark dc `C and mark_p = mark dp `P and mark_v = mark dv `V in
  (* Reverse dependency index over the old state (removals follow the
     recorded parent pointers; additions walk the live adjacency). *)
  let cust_children = Array.make n [] and peer_children = Array.make n [] in
  (match delta with
  | Link_removed _ ->
      for x = n - 1 downto 0 do
        (match s.cust.(x) with
        | Some e when e.parent <> origin ->
            cust_children.(e.parent) <- x :: cust_children.(e.parent)
        | _ -> ());
        match s.peer.(x) with
        | Some e when e.parent <> origin ->
            peer_children.(e.parent) <- x :: peer_children.(e.parent)
        | _ -> ()
      done
  | Link_added _ -> ());
  (* Base dirty set: entries riding the removed link, or the potential
     first adopters of the added one. *)
  (match delta with
  | Link_removed l ->
      for x = 0 to n - 1 do
        (match s.cust.(x) with
        | Some e when e.link.Relation.id = l -> mark_c x
        | _ -> ());
        (match s.peer.(x) with
        | Some e when e.link.Relation.id = l -> mark_p x
        | _ -> ());
        match s.prov.(x) with
        | Some e when e.link.Relation.id = l -> mark_v x
        | _ -> ()
      done
  | Link_added l -> (
      let link =
        match
          Array.find_opt
            (fun (lk : Relation.link) -> lk.Relation.id = l)
            (Topology.links topo)
        with
        | Some lk -> lk
        | None -> invalid_arg "Propagate.reconverge: added link not in topology"
      in
      match link.Relation.kind with
      | Relation.C2p ->
          (* [a] is the customer: [b] may gain a customer-learned
             route, [a] a provider-learned one. *)
          mark_c link.Relation.b;
          mark_v link.Relation.a
      | Relation.Peer_private | Relation.Peer_public ->
          mark_p link.Relation.a;
          mark_p link.Relation.b));
  let improving = match delta with Link_added _ -> true | Link_removed _ -> false in
  while not (Queue.is_empty queue) do
    let tag, p = Queue.pop queue in
    (match tag with
    | `C ->
        if improving then
          List.iter
            (fun (nb : Topology.neighbor) ->
              match nb.rel with
              | Relation.To_provider -> mark_c nb.peer
              | Relation.Priv_peer | Relation.Pub_peer -> mark_p nb.peer
              | Relation.To_customer -> ())
            (Topology.neighbors topo p)
        else begin
          List.iter mark_c cust_children.(p);
          List.iter mark_p peer_children.(p)
        end
    | `P | `V -> ());
    (* Any dirty class can flip p's selection, changing what it
       exports to its customers. *)
    List.iter
      (fun (nb : Topology.neighbor) ->
        if nb.rel = Relation.To_customer then mark_v nb.peer)
      (Topology.neighbors topo p)
  done;
  (* Clear the dirty entries; everything else is final and acts as the
     re-run's boundary. *)
  let cust = Array.copy s.cust
  and peer = Array.copy s.peer
  and prov = Array.copy s.prov in
  let nd_c = ref 0 and nd_p = ref 0 and nd_v = ref 0 in
  for x = 0 to n - 1 do
    if dc.(x) then begin
      cust.(x) <- None;
      Stdlib.incr nd_c
    end;
    if dp.(x) then begin
      peer.(x) <- None;
      Stdlib.incr nd_p
    end;
    if dv.(x) then begin
      prov.(x) <- None;
      Stdlib.incr nd_v
    end
  done;
  (* ---- Phase 1 (restricted): customer-learned routes. ---- *)
  let pq = ref Pq.empty in
  let push (target, len, parent, link, no_export) =
    pq := Pq.add (len, parent, link.Relation.id, target, link, no_export) !pq
  in
  List.iter
    (fun ((target, _, _, _, _) as seed) -> if dc.(target) then push seed)
    (seeds topo config ~klass:Route.Customer);
  for t = 0 to n - 1 do
    if dc.(t) then
      List.iter
        (fun (nb : Topology.neighbor) ->
          if nb.rel = Relation.To_customer && not dc.(nb.peer) then
            match cust.(nb.peer) with
            | Some e when not e.no_export ->
                push (t, e.len + 1, nb.peer, nb.link, false)
            | _ -> ())
        (Topology.neighbors topo t)
  done;
  while not (Pq.is_empty !pq) do
    let ((len, parent, _, target, link, no_export) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if target <> origin && dc.(target) && cust.(target) = None then begin
      cust.(target) <- Some { len; parent; link; no_export };
      if not no_export then
        List.iter
          (fun (nb : Topology.neighbor) ->
            if nb.rel = Relation.To_provider && nb.peer <> origin && dc.(nb.peer)
            then push (nb.peer, len + 1, target, nb.link, false))
          (Topology.neighbors topo target)
    end
  done;
  (* ---- Phase 2 (restricted): peer-learned routes, pulled per dirty
     target over its full lateral candidate set. ---- *)
  let better (candidate : entry) current =
    match current with
    | None -> true
    | Some e ->
        candidate.len < e.len
        || (candidate.len = e.len
           && (candidate.parent, candidate.link.Relation.id)
              < (e.parent, e.link.Relation.id))
  in
  let peer_seeds = seeds topo config ~klass:Route.Peer in
  for t = 0 to n - 1 do
    if dp.(t) then begin
      let best = ref None in
      let consider c = if better c !best then best := Some c in
      List.iter
        (fun (target, len, parent, link, no_export) ->
          if target = t then consider { len; parent; link; no_export })
        peer_seeds;
      List.iter
        (fun (nb : Topology.neighbor) ->
          match nb.rel with
          | Relation.Priv_peer | Relation.Pub_peer -> (
              match cust.(nb.peer) with
              | Some e when not e.no_export ->
                  consider
                    { len = e.len + 1; parent = nb.peer; link = nb.link;
                      no_export = false }
              | _ -> ())
          | Relation.To_customer | Relation.To_provider -> ())
        (Topology.neighbors topo t);
      peer.(t) <- !best
    end
  done;
  (* ---- Phase 3 (restricted): provider-learned routes. ---- *)
  let sel_fixed x =
    match cust.(x) with Some e -> Some e | None -> peer.(x)
  in
  let pq = ref Pq.empty in
  let push (target, len, parent, link, no_export) =
    pq := Pq.add (len, parent, link.Relation.id, target, link, no_export) !pq
  in
  List.iter
    (fun ((target, _, _, _, _) as seed) -> if dv.(target) then push seed)
    (seeds topo config ~klass:Route.Provider);
  for t = 0 to n - 1 do
    if dv.(t) then
      List.iter
        (fun (nb : Topology.neighbor) ->
          if nb.rel = Relation.To_provider then begin
            let y = nb.peer in
            match sel_fixed y with
            | Some e ->
                if not e.no_export then push (t, e.len + 1, y, nb.link, false)
            | None -> (
                if not dv.(y) then
                  match prov.(y) with
                  | Some e when not e.no_export ->
                      push (t, e.len + 1, y, nb.link, false)
                  | _ -> ())
          end)
        (Topology.neighbors topo t)
  done;
  while not (Pq.is_empty !pq) do
    let ((len, parent, _, target, link, no_export) as elt) = Pq.min_elt !pq in
    pq := Pq.remove elt !pq;
    if target <> origin && dv.(target) && prov.(target) = None then begin
      prov.(target) <- Some { len; parent; link; no_export };
      if sel_fixed target = None && not no_export then
        List.iter
          (fun (nb : Topology.neighbor) ->
            if nb.rel = Relation.To_customer && nb.peer <> origin && dv.(nb.peer)
            then push (nb.peer, len + 1, target, nb.link, false))
          (Topology.neighbors topo target)
    end
  done;
  let stats =
    {
      rs_dirty_cust = !nd_c;
      rs_dirty_peer = !nd_p;
      rs_dirty_prov = !nd_v;
      rs_as_count = n;
    }
  in
  if Netsim_obs.Metrics.enabled () then begin
    Netsim_obs.Metrics.incr c_reconverges;
    Netsim_obs.Metrics.add c_reconverge_dirty (rs_dirty stats)
  end;
  ({ topo; config; cust; peer; prov }, stats)

let selected_entry s x =
  if x = origin s then None
  else
    match s.cust.(x) with
    | Some e -> Some (Route.Customer, e)
    | None -> (
        match s.peer.(x) with
        | Some e -> Some (Route.Peer, e)
        | None -> (
            match s.prov.(x) with
            | Some e -> Some (Route.Provider, e)
            | None -> None))

let selected_class s x =
  match selected_entry s x with Some (k, _) -> Some k | None -> None

let reachable s x = x = origin s || selected_entry s x <> None

let rec path_of s x klass =
  (* AS path from x's route of the given class: next hop ... origin. *)
  let entry =
    match klass with
    | Route.Customer -> s.cust.(x)
    | Route.Peer -> s.peer.(x)
    | Route.Provider -> s.prov.(x)
  in
  match entry with
  | None -> []
  | Some e ->
      if e.parent = origin s then [ e.parent ]
      else begin
        let parent_klass =
          match klass with
          | Route.Customer -> Route.Customer
          | Route.Peer -> Route.Customer
          | Route.Provider -> (
              match selected_entry s e.parent with
              | Some (k, _) -> k
              | None -> Route.Provider (* unreachable in a valid state *))
        in
        e.parent :: path_of s e.parent parent_klass
      end

let as_path s x =
  match selected_entry s x with
  | None -> []
  | Some (klass, _) -> path_of s x klass

let best s x =
  match selected_entry s x with
  | None -> None
  | Some (klass, e) ->
      Some
        {
          Route.dest = origin s;
          klass;
          next_hop = e.parent;
          via_link = e.link;
          path_len = e.len;
          as_path = path_of s x klass;
        }

let klass_of_rel = function
  | Relation.To_customer -> Route.Customer
  | Relation.To_provider -> Route.Provider
  | Relation.Priv_peer | Relation.Pub_peer -> Route.Peer

let received s x =
  if x = origin s then []
  else
    List.filter_map
      (fun (nb : Topology.neighbor) ->
        if nb.peer = origin s then begin
          (* Direct announcement from the origin on this session. *)
          let action = Announce.action_on s.config nb.link in
          if not action.Announce.export then None
          else
            Some
              {
                Route.dest = origin s;
                klass = klass_of_rel nb.rel;
                next_hop = nb.peer;
                via_link = nb.link;
                path_len = 1 + action.Announce.prepend;
                as_path = [ origin s ];
              }
        end
        else
          match selected_entry s nb.peer with
          | None -> None
          | Some (peer_klass, peer_entry) ->
              (* A NO_EXPORT route is never advertised further.
                 Otherwise: to its customers the neighbor exports
                 everything; to peers/providers only customer-learned
                 routes. *)
              let x_is_customer_of_peer = nb.rel = Relation.To_provider in
              if peer_entry.no_export then None
              else if
                (not x_is_customer_of_peer) && peer_klass <> Route.Customer
              then None
              else begin
                let peer_path = path_of s nb.peer peer_klass in
                if List.mem x peer_path || peer_entry.parent = x then None
                else
                  Some
                    {
                      Route.dest = origin s;
                      klass = klass_of_rel nb.rel;
                      next_hop = nb.peer;
                      via_link = nb.link;
                      path_len = peer_entry.len + 1;
                      as_path = nb.peer :: peer_path;
                    }
              end)
      (Topology.neighbors s.topo x)

let received_at_metro s x ~metro =
  List.filter
    (fun (r : Route.t) -> r.via_link.Relation.metro = metro)
    (received s x)
