module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Asn = Netsim_topo.Asn
module World = Netsim_geo.World
module City = Netsim_geo.City

let as_name topo i = (Topology.asn topo i).Asn.name
let metro_name i = World.cities.(i).City.name

let route topo (r : Route.t) =
  Printf.sprintf "%-9s %-13s @%-14s len %2d  path %s"
    (Route.klass_to_string r.Route.klass)
    (Relation.kind_to_string r.Route.via_link.Relation.kind)
    (metro_name r.Route.via_link.Relation.metro)
    r.Route.path_len
    (String.concat " " (List.map (as_name topo) r.Route.as_path))

let render_ranked topo routes =
  let ranked = Decision.sort Decision.gao_rexford routes in
  let buf = Buffer.create 512 in
  List.iteri
    (fun i r ->
      Buffer.add_string buf (if i = 0 then "> " else "  ");
      Buffer.add_string buf (route topo r);
      Buffer.add_char buf '\n')
    ranked;
  if ranked = [] then Buffer.add_string buf "  (no routes)\n";
  Buffer.contents buf

let rib topo state asid =
  Printf.sprintf "Adj-RIB-In of %s toward %s:\n%s" (as_name topo asid)
    (as_name topo (Propagate.origin state))
    (render_ranked topo (Propagate.received state asid))

let rib_at_metro topo state asid ~metro =
  Printf.sprintf "Adj-RIB-In of %s at %s toward %s:\n%s" (as_name topo asid)
    (metro_name metro)
    (as_name topo (Propagate.origin state))
    (render_ranked topo (Propagate.received_at_metro state asid ~metro))

let walk topo (w : Walk.t) =
  let buf = Buffer.create 512 in
  List.iteri
    (fun i (h : Walk.hop) ->
      let carry =
        City.distance_km World.cities.(h.Walk.ingress)
          World.cities.(h.Walk.egress)
      in
      Buffer.add_string buf
        (Printf.sprintf "%2d  %-12s %-14s -> %-14s (%5.0f km)\n" (i + 1)
           (as_name topo h.Walk.asid)
           (metro_name h.Walk.ingress) (metro_name h.Walk.egress) carry))
    w.Walk.hops;
  (match List.rev w.Walk.hops with
  | last :: _ ->
      Buffer.add_string buf
        (Printf.sprintf "    enters %s at %s\n"
           (as_name topo (Relation.other last.Walk.link last.Walk.asid))
           (metro_name last.Walk.link.Relation.metro))
  | [] -> ());
  Buffer.contents buf
