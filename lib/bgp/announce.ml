module Relation = Netsim_topo.Relation

type action = { export : bool; prepend : int; no_export : bool }
type t = { origin : int; policy : Relation.link -> action }

let default_action = { export = true; prepend = 0; no_export = false }
let silent = { export = false; prepend = 0; no_export = false }

let default ~origin = { origin; policy = (fun _ -> default_action) }

let only_at_metros ~origin metros =
  {
    origin;
    policy =
      (fun link ->
        if List.mem link.Relation.metro metros then default_action else silent);
  }

let with_overrides t overrides =
  {
    t with
    policy =
      (fun link ->
        match overrides link with Some a -> a | None -> t.policy link);
  }

let prepend_at_metros t metros n =
  with_overrides t (fun link ->
      if List.mem link.Relation.metro metros then begin
        let base = t.policy link in
        Some { base with prepend = base.prepend + n }
      end
      else None)

let withhold_links t link_ids =
  with_overrides t (fun link ->
      if List.mem link.Relation.id link_ids then Some silent else None)

let no_export_at_metros t metros =
  with_overrides t (fun link ->
      if List.mem link.Relation.metro metros then begin
        let base = t.policy link in
        Some { base with no_export = true }
      end
      else None)

let action_on t link =
  if link.Relation.a = t.origin || link.Relation.b = t.origin then
    t.policy link
  else silent
