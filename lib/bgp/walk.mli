(** Metro-level flow walks along computed BGP routes.

    BGP selects AS-level next hops; a flow's latency additionally
    depends on {e where} it enters and leaves each AS.  The walk
    follows the selected route AS by AS, choosing among parallel
    sessions by hot-potato (nearest exit to the current metro), and
    records per-AS ingress/egress metros.  The latency library turns
    hop lists into RTTs, and the anycast layer reads the entry metro
    of the final hop as the catchment site. *)

type hop = {
  asid : int;  (** AS being traversed. *)
  ingress : int;  (** Metro where the flow enters this AS. *)
  egress : int;  (** Metro where it leaves (= the exit session metro). *)
  link : Netsim_topo.Relation.link;  (** Session used to exit. *)
}

type t = {
  src : int;  (** Source AS. *)
  hops : hop list;  (** One per AS from the source up to (excluding)
                        the origin; the last hop's link lands on the
                        origin. *)
}

val entry_metro : t -> int
(** Metro of the final link — where traffic enters the destination AS
    (the anycast catchment site).  @raise Invalid_argument on an empty
    walk. *)

val as_path : t -> int list
(** AS ids traversed, starting with the source. *)

val of_source : Propagate.state -> src:int -> t option
(** Walk from the source AS's home metro along its selected routes.
    [None] if the destination is unreachable.  The source must not be
    the origin. *)

val from_metro : Propagate.state -> src:int -> start_metro:int -> t option
(** Like {!of_source} but the flow starts at an explicit metro (e.g. a
    client city that is not the AS's home). *)

val of_route : Propagate.state -> src:int -> route:Route.t -> t option
(** Walk that is pinned to a specific received announcement for its
    first hop (the PoP egress case), then follows selected routes.
    The first hop leaves via [route.via_link] from that link's metro. *)
