(** Anycast catchments.

    With a prefix announced from many sites of one AS, the catchment
    of a client is the site (metro) where its BGP-selected path enters
    the origin.  One propagation run answers this for every client. *)

type t

val compute : Propagate.state -> t
(** Walk every AS's selected route and record its entry metro.  ASes
    that cannot reach the prefix are recorded as uncovered. *)

val site_of : t -> int -> int option
(** [site_of t asid] is the metro whose site serves this AS, if any. *)

val walk_of : t -> int -> Walk.t option
(** The full flow walk used for the catchment decision (for latency
    evaluation). *)

val coverage : t -> float
(** Fraction of ASes with a catchment. *)

val clients_of_site : t -> int -> int list
(** AS ids landing at the given site metro. *)

val sites : t -> int list
(** Distinct site metros that capture at least one AS. *)
