(** Content-addressed, bounded-LRU memoization of {!Propagate.run}.

    Several layers recompute identical propagation states — the egress
    controller, anycast catchments, WAN tiers, the availability sweep
    and the BGP metrics sampler all run [Announce.default ~origin]
    configs on the same topology.  [run] keys a bounded cache on
    (topology generation stamp, origin, per-origin-link announcement
    actions): the key is exact, so a hit returns a state bit-identical
    to a fresh {!Propagate.run}.  Invalidation is automatic — every
    topology constructor (including
    {!Netsim_topo.Topology.remove_links}, the dynamics reconverge
    path) stamps a fresh generation, so structural changes can never
    alias a cached entry.

    Domain safety: the cache is sharded per domain (and per pool task,
    via {!capture}/{!absorb}, mirroring the
    {!Netsim_obs.Metrics.capture} discipline), so no locking is
    involved and results — including hit/miss counters — are
    byte-identical for any [NETSIM_DOMAINS] value.

    Controlled by [NETSIM_RIB_CACHE] (["0"]/["false"]/["off"] disable),
    [NETSIM_RIB_CACHE_SIZE] (entries per shard, default 64) and the
    CLI's [--no-rib-cache] flag.  See doc/performance.md. *)

val run :
  ?provenance:bool -> Netsim_topo.Topology.t -> Announce.t -> Propagate.state
(** Memoized {!Propagate.run}: returns the cached state on a key hit,
    otherwise computes, caches (evicting the least-recently-used entry
    at the capacity bound) and returns.  Falls through to
    {!Propagate.run} when disabled.

    [~provenance:true] (default: [Netsim_obs.Provenance.enabled ()])
    guarantees the returned state carries a provenance arena: a hit
    on an entry cached without one regenerates it with provenance
    (counted as a miss) and upgrades the cached entry in place, so
    repeated explains of the same problem hit.  States cached with
    provenance satisfy plain lookups unchanged — the routing entries
    are bit-identical either way. *)

val run_batch :
  ?provenance:bool ->
  Netsim_topo.Topology.t ->
  Announce.t array ->
  Propagate.state array
(** Memoized {!Propagate.run_batch}: every key the shard is missing is
    computed in one batched propagation, then the configs are replayed
    in order against the cache.  Observationally byte-identical to a
    sequential loop of {!run} — same states, same hit/miss counts and
    events, same recency and eviction order — so a batch with repeated
    keys counts one miss and then hits, exactly as the loop would.
    Falls through to {!Propagate.run_batch} when disabled. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Default on; seeded from [NETSIM_RIB_CACHE]. *)

val capacity : unit -> int
val set_capacity : int -> unit
(** Entries per shard (clamped to >= 1); seeded from
    [NETSIM_RIB_CACHE_SIZE], default 64. *)

(** {1 Per-task shards}

    Used by [Netsim_par.Pool.map]: each task runs against a fresh
    shard installed with {!capture}; after the join the shards are
    {!absorb}ed into the submitting domain's shard in submission
    order, so cache behaviour is independent of how tasks were
    scheduled onto domains. *)

type shard

val fresh_shard : unit -> shard

val capture : shard -> (unit -> 'a) -> 'a
(** Run the thunk with [shard] as the current domain's cache,
    restoring the previous shard afterwards (also on exceptions). *)

val absorb : shard -> unit
(** Merge a task shard — entries oldest-first under the LRU bound,
    plus its hit/miss totals — into the current domain's shard. *)

(** {1 Introspection} *)

val size : unit -> int
(** Entries in the current shard. *)

val hits : unit -> int
val misses : unit -> int
(** Lookup totals of the current shard (independent of the
    observability switch; also exported as metrics counters
    [bgp.rib_cache.hits] / [bgp.rib_cache.misses] when tracing). *)

val clear : unit -> unit
(** Drop all entries and counters of the current shard. *)
