type klass = Customer | Peer | Provider

let klass_rank = function Customer -> 0 | Peer -> 1 | Provider -> 2

let klass_to_string = function
  | Customer -> "customer"
  | Peer -> "peer"
  | Provider -> "provider"

type t = {
  dest : int;
  klass : klass;
  next_hop : int;
  via_link : Netsim_topo.Relation.link;
  path_len : int;
  as_path : int list;
}

let pp fmt t =
  Format.fprintf fmt "dest=%d %s via AS%d len=%d path=[%s]" t.dest
    (klass_to_string t.klass) t.next_hop t.path_len
    (String.concat ";" (List.map string_of_int t.as_path))
