(** Route records and the three Gao–Rexford route classes. *)

(** How a route was learned, which controls both export rules and the
    default local preference. *)
type klass = Customer | Peer | Provider

val klass_rank : klass -> int
(** Customer = 0 (most preferred) … Provider = 2. *)

val klass_to_string : klass -> string

(** A route as received by some AS from a neighbor. *)
type t = {
  dest : int;  (** Origin AS of the prefix. *)
  klass : klass;  (** Relation through which it was learned. *)
  next_hop : int;  (** Neighboring AS that announced it. *)
  via_link : Netsim_topo.Relation.link;  (** Session it arrived on. *)
  path_len : int;  (** Effective AS-path length including prepends. *)
  as_path : int list;  (** Hops from the receiving AS's neighbor to the
                           origin, inclusive; no prepend duplication. *)
}

val pp : Format.formatter -> t -> unit
