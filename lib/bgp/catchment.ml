module Topology = Netsim_topo.Topology

type t = {
  state : Propagate.state;
  walks : Walk.t option array;
  covered : int;  (** ASes with a walk (never counts the origin). *)
  by_site : (int, int list) Hashtbl.t;
      (** metro -> client AS ids, ascending — built once in [compute]
          so [sites] / [clients_of_site] are index lookups instead of
          per-query scans over every AS. *)
  site_list : int list;  (** distinct metros, ascending *)
}

let compute state =
  let topo = Propagate.topology state in
  let n = Topology.as_count topo in
  let origin = Propagate.origin state in
  let walks =
    Array.init n (fun i ->
        if i = origin then None else Walk.of_source state ~src:i)
  in
  let covered = ref 0 in
  let by_site = Hashtbl.create 32 in
  (* Descending loop + cons keeps each per-site list ascending. *)
  for i = n - 1 downto 0 do
    match walks.(i) with
    | None -> ()
    | Some walk ->
        incr covered;
        let metro = Walk.entry_metro walk in
        let tail =
          match Hashtbl.find_opt by_site metro with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace by_site metro (i :: tail)
  done;
  let site_list =
    Hashtbl.fold (fun metro _ acc -> metro :: acc) by_site []
    |> List.sort Stdlib.compare
  in
  { state; walks; covered = !covered; by_site; site_list }

let walk_of t asid = t.walks.(asid)

let site_of t asid =
  match t.walks.(asid) with
  | None -> None
  | Some w -> Some (Walk.entry_metro w)

let coverage t =
  let n = Array.length t.walks in
  (* The origin itself never has a walk; exclude it from the base. *)
  float_of_int t.covered /. float_of_int (max 1 (n - 1))

let clients_of_site t metro =
  match Hashtbl.find_opt t.by_site metro with Some l -> l | None -> []

let sites t = t.site_list
