module Topology = Netsim_topo.Topology

type t = { state : Propagate.state; walks : Walk.t option array }

let compute state =
  let topo = Propagate.topology state in
  let n = Topology.as_count topo in
  let origin = Propagate.origin state in
  let walks =
    Array.init n (fun i ->
        if i = origin then None else Walk.of_source state ~src:i)
  in
  { state; walks }

let walk_of t asid = t.walks.(asid)

let site_of t asid =
  match t.walks.(asid) with
  | None -> None
  | Some w -> Some (Walk.entry_metro w)

let coverage t =
  let n = Array.length t.walks in
  let covered =
    Array.fold_left (fun acc w -> if w <> None then acc + 1 else acc) 0 t.walks
  in
  (* The origin itself never has a walk; exclude it from the base. *)
  float_of_int covered /. float_of_int (max 1 (n - 1))

let clients_of_site t metro =
  let acc = ref [] in
  Array.iteri
    (fun i w ->
      match w with
      | Some walk when Walk.entry_metro walk = metro -> acc := i :: !acc
      | Some _ | None -> ())
    t.walks;
  List.rev !acc

let sites t =
  let module S = Set.Make (Int) in
  let s =
    Array.fold_left
      (fun s w ->
        match w with Some walk -> S.add (Walk.entry_metro walk) s | None -> s)
      S.empty t.walks
  in
  S.elements s
