(** Graph metrics of a topology — the summary statistics used to judge
    whether a generated Internet is structurally plausible (degree
    skew, customer-cone concentration, path lengths, peering density). *)

type t = {
  as_count : int;
  link_count : int;
  peering_share : float;  (** Fraction of links that are settlement-free. *)
  multi_homed_share : float;
      (** Fraction of non-Tier-1 ASes with ≥ 2 providers. *)
  max_degree : int;
  mean_degree : float;
  degree_p99 : int;
  largest_cone : int;  (** Size of the biggest customer cone. *)
  mean_tier1_cone : float;
  mean_path_length : float;
      (** Mean selected AS-path length to a sampled destination. *)
}

val compute :
  ?path_samples:int -> rng:Netsim_prng.Splitmix.t -> Netsim_topo.Topology.t -> t
(** [path_samples] (default 5) destinations are sampled for the
    path-length statistic. *)

val customer_cone : Netsim_topo.Topology.t -> int -> int
(** Number of ASes reachable from [asid] by walking provider→customer
    edges (including itself). *)

val degree_histogram : Netsim_topo.Topology.t -> (int * int) list
(** [(degree, count)] pairs, ascending by degree. *)

val render : t -> string
