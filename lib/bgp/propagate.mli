(** Valley-free BGP route computation for one destination prefix.

    Implements the standard Gao–Rexford model: routes learned from
    customers are exported to everyone; routes learned from peers or
    providers are exported only to customers.  Selection prefers
    customer-learned over peer-learned over provider-learned routes,
    then shorter (prepend-inclusive) AS paths, with a deterministic
    tie-break.  The per-link announcement configuration supports
    anycast, single-site unicast prefixes, prepending and selective
    withholding (grooming).

    One [run] computes the routing state of {e every} AS toward the
    prefix, so anycast catchments for all clients cost a single run. *)

type state

val run : ?provenance:bool -> Netsim_topo.Topology.t -> Announce.t -> state
(** Compute routes from every AS to the configured origin.  The core
    runs on a monotone bucket (Dial) queue over bit-packed flat
    arrays; see doc/performance.md.

    With [~provenance:true] (default:
    [Netsim_obs.Provenance.enabled ()]) the run additionally records,
    per (route class, AS), the candidate count and the runner-up into
    a {!Netsim_obs.Provenance} arena, queryable via {!decision}.  The
    disabled path costs one load + branch per record site. *)

val run_batch :
  ?provenance:bool -> Netsim_topo.Topology.t -> Announce.t array -> state array
(** [run_batch topo configs] propagates every config's prefix in one
    shared frontier sweep and returns one state per config, in order.
    Each state is {!equal} (and, with provenance on, arena-equal) to
    an independent {!run} of its config — the differential property in
    [test/test_scale.ml] — but the topology scans, the link index and
    the class-partitioned adjacency are amortized across the batch, so
    at Internet scale a batch of origins runs several times faster
    than the same origins run one by one (see [bench/micro_scale.ml]).
    Duplicate origins are allowed and computed independently. *)

val run_reference : Netsim_topo.Topology.t -> Announce.t -> state
(** The original [Set]-based implementation, kept as the oracle for
    the differential property tests and benchmarks.  Produces results
    [equal] to {!run} — bit-identical routing entries — at a higher
    cost. *)

val equal : state -> state -> bool
(** Same origin and identical per-AS routing entries in all three
    route classes (length, parent, link and NO_EXPORT flag). *)

(** {1 Incremental reconvergence}

    The dynamics engine mutates topologies one link at a time (flaps,
    failures, repairs).  [reconverge] updates an existing state for
    such a delta by re-running propagation only over the {e dirty} ASes
    — those whose routes can possibly change — seeded from the
    untouched boundary.  Equivalent to a full [run] on the new
    topology, typically an order of magnitude cheaper for a single
    link event (see [bench/micro_dynamics.ml]). *)

type delta =
  | Link_removed of int
      (** The link with this id was removed; the new topology must be
          the old one minus exactly that link
          ({!Netsim_topo.Topology.remove_links} preserves ids). *)
  | Link_added of int
      (** The link with this id is present again in the new topology
          (a repair restoring a previously removed link). *)

type reconverge_stats = {
  rs_dirty_cust : int;  (** ASes whose customer-learned entry was re-derived. *)
  rs_dirty_peer : int;
  rs_dirty_prov : int;
  rs_as_count : int;
}

val rs_dirty : reconverge_stats -> int
(** Total dirty entries across the three classes. *)

val reconverge :
  ?provenance:bool ->
  state ->
  topo:Netsim_topo.Topology.t ->
  delta ->
  state * reconverge_stats
(** [reconverge s ~topo delta] is the routing state on [topo], where
    [topo] differs from [s]'s topology by exactly [delta].  The input
    state is not modified.  @raise Invalid_argument if the AS count
    changed or an added link id is absent from [topo].

    Provenance (requested explicitly, inherited from [s], or via the
    global flag) is rebuilt by one full instrumented sweep: a link
    delta changes candidate arrival sets beyond the entry dirty
    closure, so the arena cannot be patched incrementally.  The
    routing entries still come from the incremental algorithm, and the
    result's provenance equals a full [run ~provenance:true] on
    [topo]. *)

val topology : state -> Netsim_topo.Topology.t
val config : state -> Announce.t
val origin : state -> int

(** {1 RIB snapshot views}

    The three per-class routing tables are flat arrays of bit-packed
    entries (one immediate int per AS, [-1] when absent) — see the
    layout comment in [propagate.ml].  [rib_arrays]/[of_rib_arrays]
    expose them for binary snapshotting: saving a state is three array
    copies, and loading validates every entry against the topology, so
    a reconstructed state answers queries identically to the one that
    was saved. *)

val rib_arrays : state -> int array * int array * int array
(** Copies of the (customer, peer, provider) routing tables, indexed
    by AS id. *)

val of_rib_arrays :
  topo:Netsim_topo.Topology.t ->
  config:Announce.t ->
  cust:int array ->
  peer:int array ->
  prov:int array ->
  state
(** Rebuild a state from snapshotted tables.  The arrays are copied.
    Every present entry must reference a link that exists in [topo]
    and a parent AS in range.  @raise Invalid_argument otherwise. *)

val best : state -> int -> Route.t option
(** The selected best route of an AS ([None] for the origin itself and
    for ASes that cannot reach the prefix). *)

val selected_class : state -> int -> Route.klass option

val reachable : state -> int -> bool
(** True for the origin and any AS with a route. *)

val as_path : state -> int -> int list
(** Full AS path from the given AS to the origin (excluding the AS
    itself, including the origin); [] for the origin or if
    unreachable. *)

val received : state -> int -> Route.t list
(** Every announcement the AS receives from its neighbors, one per
    session, after export filtering and loop suppression.  This is the
    Adj-RIB-In used to enumerate a PoP's alternate routes. *)

val received_at_metro : state -> int -> metro:int -> Route.t list
(** Announcements arriving on sessions at a given metro — the routes
    available to a specific PoP of a multi-site AS. *)

(** {1 Decision provenance}

    Why each AS's winning route won: the Gao-Rexford phase that
    admitted it, the candidate set considered at decision time, the
    exact tie-break rule that discriminated, and the rejected
    runner-up.  Available on states computed with provenance on
    ([run ~provenance:true] or [NETSIM_PROVENANCE=1]); surfaced by
    [beatbgp explain] and the serve protocol's [EXPLAIN] verb. *)

val has_provenance : state -> bool

val provenance_equal : state -> state -> bool
(** Both states carry no provenance, or both carry structurally equal
    arenas — the determinism invariant (run-to-run, cache on/off, any
    domain count) checked by the test suite. *)

(** The rejected runner-up: the most preferred candidate that lost. *)
type runner = {
  r_klass : Route.klass;
  r_path_len : int;
  r_next_hop : int;
  r_link_id : int;
}

type decision = {
  d_klass : Route.klass;  (** Winning route class (= Gao-Rexford phase). *)
  d_path_len : int;
  d_next_hop : int;
  d_link_id : int;
  d_cand_cust : int;  (** Candidate announcements considered, per class. *)
  d_cand_peer : int;
  d_cand_prov : int;
  d_rule : Netsim_obs.Provenance.rule;
      (** What discriminated the winner from the runner-up. *)
  d_runner : runner option;  (** [None] iff the winner was the only
                                 candidate. *)
}

val decision : state -> int -> decision option
(** The decision chain behind an AS's selected route; [None] for the
    origin and for unreachable ASes.  @raise Invalid_argument if the
    state carries no provenance. *)
