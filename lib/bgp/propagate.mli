(** Valley-free BGP route computation for one destination prefix.

    Implements the standard Gao–Rexford model: routes learned from
    customers are exported to everyone; routes learned from peers or
    providers are exported only to customers.  Selection prefers
    customer-learned over peer-learned over provider-learned routes,
    then shorter (prepend-inclusive) AS paths, with a deterministic
    tie-break.  The per-link announcement configuration supports
    anycast, single-site unicast prefixes, prepending and selective
    withholding (grooming).

    One [run] computes the routing state of {e every} AS toward the
    prefix, so anycast catchments for all clients cost a single run. *)

type state

val run : Netsim_topo.Topology.t -> Announce.t -> state
(** Compute routes from every AS to the configured origin. *)

val topology : state -> Netsim_topo.Topology.t
val config : state -> Announce.t
val origin : state -> int

val best : state -> int -> Route.t option
(** The selected best route of an AS ([None] for the origin itself and
    for ASes that cannot reach the prefix). *)

val selected_class : state -> int -> Route.klass option

val reachable : state -> int -> bool
(** True for the origin and any AS with a route. *)

val as_path : state -> int -> int list
(** Full AS path from the given AS to the origin (excluding the AS
    itself, including the origin); [] for the origin or if
    unreachable. *)

val received : state -> int -> Route.t list
(** Every announcement the AS receives from its neighbors, one per
    session, after export filtering and loop suppression.  This is the
    Adj-RIB-In used to enumerate a PoP's alternate routes. *)

val received_at_metro : state -> int -> metro:int -> Route.t list
(** Announcements arriving on sessions at a given metro — the routes
    available to a specific PoP of a multi-site AS. *)
