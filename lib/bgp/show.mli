(** Human-readable rendering of routing state, in the spirit of
    [show ip bgp] and textual traceroute — the debugging surface for
    anyone poking at a simulated Internet. *)

val route : Netsim_topo.Topology.t -> Route.t -> string
(** One Adj-RIB-In line: class, interconnect kind, session metro,
    effective length and the named AS path. *)

val rib : Netsim_topo.Topology.t -> Propagate.state -> int -> string
(** The full Adj-RIB-In of an AS toward the state's prefix, ranked by
    the standard decision process, best first and marked [>]. *)

val rib_at_metro :
  Netsim_topo.Topology.t -> Propagate.state -> int -> metro:int -> string
(** Same, restricted to sessions at one metro (a PoP's view). *)

val walk : Netsim_topo.Topology.t -> Walk.t -> string
(** Traceroute-style rendering of a flow walk: one line per AS with
    ingress/egress metros and the carry distance. *)
