module Relation = Netsim_topo.Relation

type policy = { name : string; rank : Route.t -> int }

let gao_rexford =
  { name = "gao-rexford"; rank = (fun r -> Route.klass_rank r.Route.klass) }

let content_provider =
  {
    name = "content-provider";
    rank =
      (fun r ->
        match r.Route.klass with
        | Route.Customer -> 0
        | Route.Peer -> (
            match r.Route.via_link.Relation.kind with
            | Relation.Peer_private -> 1
            | Relation.Peer_public -> 2
            | Relation.C2p -> 2 (* unreachable: peer class implies peering *))
        | Route.Provider -> 3);
  }

let compare_routes policy a b =
  let c = compare (policy.rank a) (policy.rank b) in
  if c <> 0 then c
  else begin
    let c = compare a.Route.path_len b.Route.path_len in
    if c <> 0 then c
    else begin
      let c = compare a.Route.next_hop b.Route.next_hop in
      if c <> 0 then c
      else compare a.Route.via_link.Relation.id b.Route.via_link.Relation.id
    end
  end

(* Which step of the decision order separates two routes — the
   explain layer's "what would the chosen route have needed to beat
   the alternative" answer. *)
type discriminator = By_rank | By_path_len | By_next_hop | By_link_id | Tied

let discriminator policy a b =
  if policy.rank a <> policy.rank b then By_rank
  else if a.Route.path_len <> b.Route.path_len then By_path_len
  else if a.Route.next_hop <> b.Route.next_hop then By_next_hop
  else if a.Route.via_link.Relation.id <> b.Route.via_link.Relation.id then
    By_link_id
  else Tied

let discriminator_to_string = function
  | By_rank -> "relationship-class"
  | By_path_len -> "path-length"
  | By_next_hop -> "next-hop"
  | By_link_id -> "link-id"
  | Tied -> "tied"

let sort policy routes = List.sort (compare_routes policy) routes

let best policy routes =
  match sort policy routes with [] -> None | r :: _ -> Some r

let k_best policy k routes =
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | r :: rest -> r :: take (k - 1) rest
  in
  take k (sort policy routes)
