module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Asn = Netsim_topo.Asn
module World = Netsim_geo.World
module City = Netsim_geo.City

type hop = { asid : int; ingress : int; egress : int; link : Relation.link }
type t = { src : int; hops : hop list }

let entry_metro t =
  match List.rev t.hops with
  | last :: _ -> last.link.Relation.metro
  | [] -> invalid_arg "Walk.entry_metro: empty walk"

let as_path t = List.map (fun h -> h.asid) t.hops

let metro_distance_km a b =
  City.distance_km World.cities.(a) World.cities.(b)

(* Pick the exit session toward [next] by hot potato: the link whose
   interconnection metro is nearest to where the flow currently is.
   Ties break on link id for determinism. *)
let choose_exit_link links ~current =
  match links with
  | [] -> None
  | _ ->
      let scored =
        List.map
          (fun (l : Relation.link) ->
            (metro_distance_km current l.Relation.metro, l.Relation.id, l))
          links
      in
      let sorted = List.sort compare scored in
      (match sorted with (_, _, l) :: _ -> Some l | [] -> None)

(* Eligible sessions from [x] to the origin under the announcement
   config: announced links with the minimum prepend (BGP prefers the
   shorter announcement among sessions to the same neighbor). *)
let origin_links state topo x =
  let config = Propagate.config state in
  let origin = Propagate.origin state in
  let announced =
    List.filter_map
      (fun (l : Relation.link) ->
        let action = Announce.action_on config l in
        if action.Announce.export then Some (action.Announce.prepend, l)
        else None)
      (Topology.links_between topo x origin)
  in
  match announced with
  | [] -> []
  | l ->
      let min_prepend =
        List.fold_left (fun acc (p, _) -> min acc p) max_int l
      in
      List.filter_map
        (fun (p, link) -> if p = min_prepend then Some link else None)
        l

let max_hops = 64

let continue_from state ~start:x ~current =
  let topo = Propagate.topology state in
  let origin = Propagate.origin state in
  let rec go x current acc steps =
    if steps > max_hops then None
    else
      match Propagate.best state x with
      | None -> None
      | Some route ->
          let next = route.Route.next_hop in
          let candidates =
            if next = origin then origin_links state topo x
            else Topology.links_between topo x next
          in
          (match choose_exit_link candidates ~current with
          | None -> None
          | Some link ->
              let hop =
                { asid = x; ingress = current; egress = link.Relation.metro; link }
              in
              if next = origin then Some (List.rev (hop :: acc))
              else go next link.Relation.metro (hop :: acc) (steps + 1))
  in
  go x current [] 0

let from_metro state ~src ~start_metro =
  if src = Propagate.origin state then
    invalid_arg "Walk.from_metro: source is the origin";
  match continue_from state ~start:src ~current:start_metro with
  | None -> None
  | Some hops -> Some { src; hops }

let of_source state ~src =
  let topo = Propagate.topology state in
  let home = Asn.home (Topology.asn topo src) in
  from_metro state ~src ~start_metro:home

let of_route state ~src ~route =
  let origin = Propagate.origin state in
  let link = route.Route.via_link in
  let start = link.Relation.metro in
  let first = { asid = src; ingress = start; egress = start; link } in
  let next = route.Route.next_hop in
  if next = origin then Some { src; hops = [ first ] }
  else
    match continue_from state ~start:next ~current:start with
    | None -> None
    | Some rest -> Some { src; hops = first :: rest }
