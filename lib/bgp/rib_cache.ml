module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Metrics = Netsim_obs.Metrics
module Recorder = Netsim_obs.Recorder

(* Content-addressed memoization of [Propagate.run].  The key is exact
   — no lossy hashing — so a hit can never return the state of a
   different problem:

   - the topology {e generation stamp}: unique per constructed
     topology value (bumped by [remove_links] on the dynamics
     reconverge path), so any structural change misses;
   - the origin AS id;
   - the announcement actions on the origin's own sessions, sorted by
     link id.  Propagation depends on the policy only through these
     ([Announce.action_on] is silent off-origin), so two configs that
     agree here are the same problem even if they are different
     closures. *)

type key = {
  k_gen : int;
  k_origin : int;
  k_actions : (int * bool * int * bool) list;
      (** (link id, export, prepend, no_export), sorted by link id. *)
}

let key_of topo (config : Announce.t) =
  let origin = config.Announce.origin in
  let actions =
    List.map
      (fun (nb : Topology.neighbor) ->
        let a = Announce.action_on config nb.link in
        ( nb.link.Relation.id,
          a.Announce.export,
          a.Announce.prepend,
          a.Announce.no_export ))
      (Topology.neighbors topo origin)
    |> List.sort compare
  in
  { k_gen = Topology.generation topo; k_origin = origin; k_actions = actions }

(* ---- configuration --------------------------------------------------- *)

let enabled_ref =
  ref
    (match Sys.getenv_opt "NETSIM_RIB_CACHE" with
    | Some ("0" | "false" | "off") -> false
    | None | Some _ -> true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let default_capacity = 64

let capacity_ref =
  ref
    (match Sys.getenv_opt "NETSIM_RIB_CACHE_SIZE" with
    | None | Some "" -> default_capacity
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            Printf.eprintf
              "netsim: ignoring invalid NETSIM_RIB_CACHE_SIZE=%S\n%!" s;
            default_capacity))

let capacity () = !capacity_ref
let set_capacity n = capacity_ref := Stdlib.max 1 n

(* ---- per-domain shards ----------------------------------------------- *)

(* The cache is never shared between domains: every domain (and every
   pool task, via [capture]) works against its own shard, and
   [Netsim_par.Pool.map] merges task shards back in submission order —
   the same capture/replay discipline the observability layer uses.
   Because the per-task hit/miss sequence depends only on the task's
   own lookups, hit/miss counters (and of course the returned states,
   which are bit-identical whether cached or recomputed) are the same
   for any domain count. *)

type node = { n_state : Propagate.state; mutable n_used : int }

type shard = {
  tbl : (key, node) Hashtbl.t;
  mutable tick : int;  (** recency clock; each entry's [n_used] is unique *)
  mutable s_hits : int;
  mutable s_misses : int;
}

let fresh_shard () =
  { tbl = Hashtbl.create 64; tick = 0; s_hits = 0; s_misses = 0 }

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key fresh_shard
let current_shard () = Domain.DLS.get shard_key

let capture shard f =
  let saved = current_shard () in
  Domain.DLS.set shard_key shard;
  match f () with
  | v ->
      Domain.DLS.set shard_key saved;
      v
  | exception e ->
      Domain.DLS.set shard_key saved;
      raise e

(* Insert under the LRU bound.  Ticks are unique, so the victim is
   unique and eviction order does not depend on hash-table iteration
   order. *)
let insert shard key st =
  shard.tick <- shard.tick + 1;
  if
    (not (Hashtbl.mem shard.tbl key))
    && Hashtbl.length shard.tbl >= capacity ()
  then begin
    let victim = ref None in
    Hashtbl.iter
      (fun k n ->
        match !victim with
        | Some (_, u) when u <= n.n_used -> ()
        | Some _ | None -> victim := Some (k, n.n_used))
      shard.tbl;
    match !victim with
    | Some (k, _) ->
        Hashtbl.remove shard.tbl k;
        (* Event logs carry the victim's origin, not its generation
           stamp: stamps come from a global atomic and are
           nondeterministic when topologies are built inside parallel
           pool tasks. *)
        if Recorder.enabled () then
          Recorder.record ~kind:"bgp.rib_cache.evict"
            [ Recorder.I ("origin", k.k_origin) ]
    | None -> ()
  end;
  Hashtbl.replace shard.tbl key { n_state = st; n_used = shard.tick }

let absorb task_shard =
  let parent = current_shard () in
  parent.s_hits <- parent.s_hits + task_shard.s_hits;
  parent.s_misses <- parent.s_misses + task_shard.s_misses;
  (* Replay the task's surviving entries oldest-first so the parent's
     recency order extends the task's. *)
  Hashtbl.fold (fun k n acc -> (n.n_used, k, n.n_state) :: acc) task_shard.tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> Stdlib.compare a b)
  |> List.iter (fun (_, k, st) -> insert parent k st)

(* ---- the memoized entry point ---------------------------------------- *)

let c_hits = Metrics.counter "bgp.rib_cache.hits"
let c_misses = Metrics.counter "bgp.rib_cache.misses"

let hit_node shard key node =
  shard.tick <- shard.tick + 1;
  node.n_used <- shard.tick;
  shard.s_hits <- shard.s_hits + 1;
  if Metrics.enabled () then Metrics.incr c_hits;
  if Recorder.enabled () then
    Recorder.record ~kind:"bgp.rib_cache.hit"
      [ Recorder.I ("origin", key.k_origin) ];
  node.n_state

let miss_state shard key st =
  shard.s_misses <- shard.s_misses + 1;
  if Metrics.enabled () then Metrics.incr c_misses;
  if Recorder.enabled () then
    Recorder.record ~kind:"bgp.rib_cache.miss"
      [ Recorder.I ("origin", key.k_origin) ];
  insert shard key st;
  st

(* One lookup's full bookkeeping.  A cached state lacking the
   provenance the caller wants is regenerated (counted as a miss) and
   the entry upgraded, so subsequent explains of the same problem
   hit. *)
let lookup shard key ~want ~compute =
  match Hashtbl.find_opt shard.tbl key with
  | Some node when (not want) || Propagate.has_provenance node.n_state ->
      hit_node shard key node
  | Some _ | None -> miss_state shard key (compute ())

let run ?provenance topo config =
  (* Resolve the provenance request here so the cached and uncached
     paths agree on what NETSIM_PROVENANCE means. *)
  let want =
    match provenance with
    | Some b -> b
    | None -> Netsim_obs.Provenance.enabled ()
  in
  if not !enabled_ref then Propagate.run ~provenance:want topo config
  else
    let shard = current_shard () in
    let key = key_of topo config in
    lookup shard key ~want ~compute:(fun () ->
        Propagate.run ~provenance:want topo config)

(* Batched lookups: compute every key the shard is missing in one
   [Propagate.run_batch], then replay the configs in order against the
   real cache.  The replay does byte-identical bookkeeping to a
   sequential loop of [run] — same hit/miss counts and events, same
   recency ticks, same insert and eviction order — because each miss
   merely takes its state from the batch instead of propagating again.
   Two corner cases keep the equivalence exact:

   - duplicate keys inside the batch are computed once; the second
     occurrence hits the entry the replay just inserted, as it would
     sequentially;
   - a key this replay's own inserts evict before its turn (capacity
     smaller than the batch) is recomputed solo, as [run] would. *)
let run_batch ?provenance topo configs =
  let want =
    match provenance with
    | Some b -> b
    | None -> Netsim_obs.Provenance.enabled ()
  in
  if not !enabled_ref then Propagate.run_batch ~provenance:want topo configs
  else begin
    let shard = current_shard () in
    let keys = Array.map (fun c -> key_of topo c) configs in
    (* Unique keys needing compute at batch start: absent, or present
       without the provenance the caller wants. *)
    let pending = Hashtbl.create 16 in
    let to_compute = ref [] in
    Array.iteri
      (fun i key ->
        if not (Hashtbl.mem pending key) then
          match Hashtbl.find_opt shard.tbl key with
          | Some node when (not want) || Propagate.has_provenance node.n_state
            ->
              ()
          | Some _ | None ->
              Hashtbl.add pending key ();
              to_compute := i :: !to_compute)
      keys;
    let to_compute = Array.of_list (List.rev !to_compute) in
    let computed =
      if Array.length to_compute = 0 then [||]
      else
        Propagate.run_batch ~provenance:want topo
          (Array.map (fun i -> configs.(i)) to_compute)
    in
    let computed_tbl = Hashtbl.create 16 in
    Array.iteri
      (fun j i -> Hashtbl.replace computed_tbl keys.(i) computed.(j))
      to_compute;
    Array.mapi
      (fun i (config : Announce.t) ->
        let key = keys.(i) in
        lookup shard key ~want ~compute:(fun () ->
            match Hashtbl.find_opt computed_tbl key with
            | Some st -> st
            | None -> Propagate.run ~provenance:want topo config))
      configs
  end

(* ---- introspection (tests, bench) ------------------------------------ *)

let size () = Hashtbl.length (current_shard ()).tbl
let hits () = (current_shard ()).s_hits
let misses () = (current_shard ()).s_misses

let clear () =
  let shard = current_shard () in
  Hashtbl.reset shard.tbl;
  shard.tick <- 0;
  shard.s_hits <- 0;
  shard.s_misses <- 0
