module Sm = Netsim_prng.Splitmix
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Asn = Netsim_topo.Asn

type t = {
  as_count : int;
  link_count : int;
  peering_share : float;
  multi_homed_share : float;
  max_degree : int;
  mean_degree : float;
  degree_p99 : int;
  largest_cone : int;
  mean_tier1_cone : float;
  mean_path_length : float;
}

let customer_cone topo asid =
  let n = Topology.as_count topo in
  let seen = Array.make n false in
  let rec go x =
    if not seen.(x) then begin
      seen.(x) <- true;
      List.iter go (Topology.customers topo x)
    end
  in
  go asid;
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 seen

let degree_histogram topo =
  let tbl = Hashtbl.create 64 in
  for x = 0 to Topology.as_count topo - 1 do
    let d = Topology.degree topo x in
    let cur = match Hashtbl.find_opt tbl d with Some c -> c | None -> 0 in
    Hashtbl.replace tbl d (cur + 1)
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let compute ?(path_samples = 5) ~rng topo =
  let n = Topology.as_count topo in
  let degrees = Array.init n (Topology.degree topo) in
  let sorted = Array.copy degrees in
  Array.sort compare sorted;
  let mean_degree =
    float_of_int (Array.fold_left ( + ) 0 degrees) /. float_of_int n
  in
  let peering =
    Array.fold_left
      (fun acc (l : Relation.link) ->
        if Relation.is_peering l.Relation.kind then acc + 1 else acc)
      0 (Topology.links topo)
  in
  let link_count = Topology.link_count topo in
  let non_tier1 =
    List.init n Fun.id
    |> List.filter (fun x -> (Topology.asn topo x).Asn.klass <> Asn.Tier1)
  in
  let multi_homed =
    List.filter (fun x -> List.length (Topology.providers topo x) >= 2) non_tier1
  in
  let tier1s = Topology.by_klass topo Asn.Tier1 in
  let cones = List.map (customer_cone topo) tier1s in
  let largest_cone = List.fold_left max 0 cones in
  let mean_tier1_cone =
    match cones with
    | [] -> 0.
    | l -> float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  (* Mean selected path length over a few sampled destinations. *)
  let total_len = ref 0 and total_paths = ref 0 in
  for _ = 1 to path_samples do
    let dest = Sm.next_int rng n in
    let state = Rib_cache.run topo (Announce.default ~origin:dest) in
    for x = 0 to n - 1 do
      if x <> dest then begin
        match Propagate.as_path state x with
        | [] -> ()
        | p ->
            total_len := !total_len + List.length p;
            incr total_paths
      end
    done
  done;
  {
    as_count = n;
    link_count;
    peering_share =
      (if link_count = 0 then 0.
       else float_of_int peering /. float_of_int link_count);
    multi_homed_share =
      (match non_tier1 with
      | [] -> 0.
      | l ->
          float_of_int (List.length multi_homed) /. float_of_int (List.length l));
    max_degree = (if n = 0 then 0 else sorted.(n - 1));
    mean_degree;
    degree_p99 =
      (if n = 0 then 0 else sorted.(min (n - 1) (n * 99 / 100)));
    largest_cone;
    mean_tier1_cone;
    mean_path_length =
      (if !total_paths = 0 then 0.
       else float_of_int !total_len /. float_of_int !total_paths);
  }

let render t =
  String.concat "\n"
    [
      Printf.sprintf "ASes %d, links %d (%.0f%% peering)" t.as_count
        t.link_count (100. *. t.peering_share);
      Printf.sprintf "degree: mean %.1f, p99 %d, max %d" t.mean_degree
        t.degree_p99 t.max_degree;
      Printf.sprintf "multi-homed (non-Tier-1): %.0f%%"
        (100. *. t.multi_homed_share);
      Printf.sprintf "customer cones: largest %d, Tier-1 mean %.0f"
        t.largest_cone t.mean_tier1_cone;
      Printf.sprintf "mean selected AS-path length: %.2f" t.mean_path_length;
      "";
    ]
