(** BGP decision process over a set of received announcements.

    {!Propagate} already applies the standard selection while
    computing routes; this module re-ranks an Adj-RIB-In explicitly,
    which is what a content provider's egress pipeline does at each
    PoP (and what the paper's "BGP's most preferred / second / third
    route" spraying needs). *)

type policy = {
  name : string;
  rank : Route.t -> int;
      (** Local preference bucket; lower is more preferred. *)
}

val gao_rexford : policy
(** Customer (0) > peer (1) > provider (2). *)

val content_provider : policy
(** The paper's content-provider egress policy (§3.1): customer
    routes, then private peers, then public peers, then transit
    providers. *)

val compare_routes : policy -> Route.t -> Route.t -> int
(** Full decision order: policy rank, then effective path length, then
    lowest next-hop AS id, then lowest session (link) id. *)

(** The first step of the decision order on which two routes differ —
    what the provenance/explain layer reports as separating the chosen
    route from a counterfactual. *)
type discriminator = By_rank | By_path_len | By_next_hop | By_link_id | Tied

val discriminator : policy -> Route.t -> Route.t -> discriminator

val discriminator_to_string : discriminator -> string
(** Stable wire names: ["relationship-class"], ["path-length"],
    ["next-hop"], ["link-id"], ["tied"]. *)

val sort : policy -> Route.t list -> Route.t list
(** Most preferred first. *)

val best : policy -> Route.t list -> Route.t option

val k_best : policy -> int -> Route.t list -> Route.t list
(** The top [k] routes, one per (next_hop, session); fewer if the
    Adj-RIB-In is smaller. *)
