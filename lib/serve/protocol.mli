(** The serve wire protocol.

    Requests are single LF-terminated lines (an optional trailing CR
    is stripped): a verb and space-separated arguments.  Responses are
    length-delimited so multi-line bodies (STATS, PROM) are
    unambiguous:

    {v
    OK <n>\n<n bytes of body>\n
    ERR <n>\n<n bytes of error message>\n
    v}

    Parsing is total — malformed input yields [Error] with a usage
    message, never an exception — and the server loop frames every
    error as an [ERR] response, so a broken client cannot take the
    daemon down.  See doc/serving.md for the full reference. *)

type request =
  | Catchment of string  (** [CATCHMENT <prefix>]: anycast catchment site. *)
  | Egress of int  (** [EGRESS <pop>]: egress mix at a PoP metro. *)
  | Rtt of string * string
      (** [RTT <client> <prefix>]: deterministic RTT floor plus the
          current churn overlay for a client/prefix pair. *)
  | Explain of string * string
      (** [EXPLAIN <prefix> <as>]: the decision chain behind the AS's
          selected route toward the prefix's origin — winning
          Gao-Rexford phase, candidate set, tie-break rule, runner-up
          — plus the latency-optimal counterfactual and its delta.
          Provenance is recomputed deterministically on the current
          topology, so seed-built and snapshot-loaded daemons answer
          byte-identically. *)
  | Stats  (** [STATS]: deterministic daemon counters. *)
  | Snapshot_to of string  (** [SNAPSHOT <path>]: write a binary snapshot. *)
  | Prom  (** [PROM]: Prometheus text exposition of the registry. *)
  | Advance of float  (** [ADVANCE <minutes>]: step the dynamics engine. *)
  | Quit  (** [QUIT]: close the session. *)

val max_line : int
(** Longest accepted request line in bytes (longer lines are answered
    with a protocol error, not read into memory unboundedly). *)

val verb : request -> string
(** Lower-case verb tag, e.g. ["catchment"] — used for per-query-type
    metrics and recorder events. *)

val read_only : request -> bool
(** True for query verbs that never change server state (CATCHMENT,
    EGRESS, RTT, EXPLAIN, STATS, PROM) — the concurrent executor fans
    these out across the domain pool.  False for the write-barrier
    verbs: ADVANCE and QUIT mutate the session/engine, and SNAPSHOT,
    while logically a read, walks the entire engine state and so is
    serialized with the mutators. *)

val parse : string -> (request, string) result

val frame : ok:bool -> string -> string
(** Frame a response body (or error message) for the wire. *)
