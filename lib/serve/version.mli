(** Build attribution for daemon deployments and snapshot files. *)

val git_sha : unit -> string
(** Short git sha of the working tree, resolved once per process;
    ["unknown"] outside a git checkout. *)
