let memo = ref None

let resolve () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
      let sha = try String.trim (input_line ic) with End_of_file -> "" in
      let status = Unix.close_process_in ic in
      if status = Unix.WEXITED 0 && sha <> "" then sha else "unknown"

let git_sha () =
  match !memo with
  | Some sha -> sha
  | None ->
      let sha = resolve () in
      memo := Some sha;
      sha
