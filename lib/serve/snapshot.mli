(** Versioned binary snapshot of a warm serving state.

    A snapshot captures everything the {!Server} needs to resume
    answering queries without re-propagating: the base topology
    (packed adjacency included, so loading is a validation pass rather
    than an adjacency rebuild), the currently-failed links, the flat
    per-class RIB arrays of every tracked prefix, the client-prefix
    population, the pending dynamics timeline and the active
    congestion overlays.  The header carries a magic string, a schema
    version and the git sha of the build that wrote the file, so
    snapshot files are attributable and version skew fails loudly.

    The encoding is deterministic: [to_bytes] of a loaded snapshot is
    byte-identical to the file it came from (the round-trip property
    [make verify] and the test suite check).  Everything is
    little-endian; see doc/serving.md for the exact layout. *)

type rib = {
  rib_origin : int;  (** Origin AS of the tracked (default) announcement. *)
  rib_active : bool;  (** False while the prefix is withdrawn. *)
  rib_cust : int array;
  rib_peer : int array;
  rib_prov : int array;
      (** Bit-packed per-class routing tables, indexed by AS id — the
          arrays {!Netsim_bgp.Propagate.rib_arrays} exposes. *)
}

type t = {
  git_sha : string;  (** Build that wrote the snapshot. *)
  created_gen : int;
      (** Generation stamp the snapshotted base topology had in the
          writing process.  Informational: a loaded topology gets a
          fresh stamp (stamps are process-local identities). *)
  seed : int;  (** Scenario seed (congestion and churn substreams). *)
  now_min : float;  (** Engine clock at snapshot time. *)
  base : Netsim_topo.Topology.t;  (** Base (pre-failure) topology. *)
  down_links : int list;  (** Currently-failed link ids, ascending. *)
  asid : int;  (** The serving provider's AS id. *)
  pops : int list;  (** Provider PoP metros. *)
  prefixes : Netsim_traffic.Prefix.t array;
  ribs : rib list;  (** Tracked prefixes, engine insertion order. *)
  pending : (float * Netsim_dynamics.Event.t) list;
      (** Unprocessed timeline events, pop order. *)
  overlays : (int * float) list;
      (** Active congestion event overlays: (link id, extra ms). *)
}

val magic : string
(** 8-byte file magic (["BBGPSNAP"]). *)

val schema_version : int

val to_bytes : t -> string

val of_bytes : string -> (t, string) result
(** Decode and validate.  Wrong magic, unsupported schema version,
    truncation and any structural inconsistency (bad link references,
    table lengths, ...) produce a clear [Error], never an exception. *)

val save : t -> path:string -> unit
(** @raise Sys_error on an unwritable path. *)

val load : path:string -> (t, string) result
