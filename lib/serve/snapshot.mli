(** Versioned binary snapshot of a warm serving state.

    A snapshot captures everything the {!Server} needs to resume
    answering queries without re-propagating: the base topology, the
    currently-failed links, the flat per-class RIB arrays of every
    tracked prefix, the client-prefix population, the pending dynamics
    timeline and the active congestion overlays.  The header carries a
    magic string, a schema version and the git sha of the build that
    wrote the file, so snapshot files are attributable and version
    skew fails loudly.

    Two on-disk schemas are read:

    - {b v1} is a sequential byte stream (packed adjacency rows
      inline), decoded entirely on the OCaml heap.
    - {b v2} — the default for writing — moves every large flat array
      (CSR adjacency arena, link tables, per-prefix RIBs) into an
      8-aligned little-endian int64 arena indexed by a section table,
      so {!load} can pull them through [Unix.map_file] Bigarray views
      instead of byte-decoding: at internet scale, loading drops from
      a full decode to a handful of bulk blits of page cache.  Only
      the small trailing metadata block is stream-decoded.

    The encoding is deterministic per version: re-encoding a loaded
    snapshot at the version it was written is byte-identical to the
    file it came from (the round-trip property [make verify] and the
    test suite check).  Both decoders are total: truncation,
    corruption and version skew produce [Error], never an exception or
    a crash.  Everything is little-endian; see doc/serving.md for the
    exact layouts. *)

type rib = {
  rib_origin : int;  (** Origin AS of the tracked (default) announcement. *)
  rib_active : bool;  (** False while the prefix is withdrawn. *)
  rib_cust : int array;
  rib_peer : int array;
  rib_prov : int array;
      (** Bit-packed per-class routing tables, indexed by AS id — the
          arrays {!Netsim_bgp.Propagate.rib_arrays} exposes. *)
}

type t = {
  git_sha : string;  (** Build that wrote the snapshot. *)
  created_gen : int;
      (** Generation stamp the snapshotted base topology had in the
          writing process.  Informational: a loaded topology gets a
          fresh stamp (stamps are process-local identities). *)
  seed : int;  (** Scenario seed (congestion and churn substreams). *)
  now_min : float;  (** Engine clock at snapshot time. *)
  base : Netsim_topo.Topology.t;  (** Base (pre-failure) topology. *)
  down_links : int list;  (** Currently-failed link ids, ascending. *)
  asid : int;  (** The serving provider's AS id. *)
  pops : int list;  (** Provider PoP metros. *)
  prefixes : Netsim_traffic.Prefix.t array;
  ribs : rib list;  (** Tracked prefixes, engine insertion order. *)
  pending : (float * Netsim_dynamics.Event.t) list;
      (** Unprocessed timeline events, pop order. *)
  overlays : (int * float) list;
      (** Active congestion event overlays: (link id, extra ms). *)
}

val magic : string
(** 8-byte file magic (["BBGPSNAP"]). *)

val schema_version : int
(** The v1 (heap-decoded stream) schema number: 1. *)

val schema_version_v2 : int
(** The v2 (mmap-able arena) schema number: 2. *)

val to_bytes : t -> string
(** Encode at schema v1. *)

val to_bytes_v2 : t -> string
(** Encode at schema v2 (arena + section table + metadata block). *)

val of_bytes : string -> (t, string) result
(** Decode and validate either schema version from memory.  Wrong
    magic, unsupported schema version, truncation and any structural
    inconsistency (bad link references, table lengths, a section
    table that does not tile the arena, ...) produce a clear [Error],
    never an exception. *)

val save : ?version:int -> t -> path:string -> unit
(** Write a snapshot file ([version] defaults to
    {!schema_version_v2}).
    @raise Sys_error on an unwritable path.
    @raise Invalid_argument on an unknown version. *)

val load : path:string -> (t, string) result
(** Read a snapshot file.  v2 files take the zero-copy path: arena
    sections are [Unix.map_file]d and bulk-blitted, so a page-cache
    warm restart skips the byte-stream decode entirely.  v1 files (and
    anything unrecognized) fall back to {!of_bytes} on the whole
    file. *)
