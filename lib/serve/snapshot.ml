module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Prefix = Netsim_traffic.Prefix
module Event = Netsim_dynamics.Event

type rib = {
  rib_origin : int;
  rib_active : bool;
  rib_cust : int array;
  rib_peer : int array;
  rib_prov : int array;
}

type t = {
  git_sha : string;
  created_gen : int;
  seed : int;
  now_min : float;
  base : Topology.t;
  down_links : int list;
  asid : int;
  pops : int list;
  prefixes : Prefix.t array;
  ribs : rib list;
  pending : (float * Event.t) list;
  overlays : (int * float) list;
}

let magic = "BBGPSNAP"
let schema_version = 1
let schema_version_v2 = 2

(* ---- writer ----------------------------------------------------------- *)

let w_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let w_i32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let w_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let w_str buf s =
  w_i32 buf (String.length s);
  Buffer.add_string buf s

let klass_code = function
  | Asn.Tier1 -> 0
  | Asn.Transit -> 1
  | Asn.Eyeball -> 2
  | Asn.Stub -> 3
  | Asn.Content -> 4
  | Asn.Cloud -> 5

let kind_code = function
  | Relation.C2p -> 0
  | Relation.Peer_private -> 1
  | Relation.Peer_public -> 2

let w_event buf = function
  | Event.Link_down l ->
      w_u8 buf 0;
      w_i32 buf l
  | Event.Link_up l ->
      w_u8 buf 1;
      w_i32 buf l
  | Event.Link_flap { link_id; down_minutes } ->
      w_u8 buf 2;
      w_i32 buf link_id;
      w_f64 buf down_minutes
  | Event.Site_down { asid; metro } ->
      w_u8 buf 3;
      w_i32 buf asid;
      w_i32 buf metro
  | Event.Site_up { asid; metro } ->
      w_u8 buf 4;
      w_i32 buf asid;
      w_i32 buf metro
  | Event.Congestion_onset { link_id; extra_ms; duration_min } ->
      w_u8 buf 5;
      w_i32 buf link_id;
      w_f64 buf extra_ms;
      w_f64 buf duration_min
  | Event.Congestion_decay { link_id; extra_ms } ->
      w_u8 buf 6;
      w_i32 buf link_id;
      w_f64 buf extra_ms
  | Event.Withdraw_prefix { origin } ->
      w_u8 buf 7;
      w_i32 buf origin
  | Event.Reannounce_prefix { origin } ->
      w_u8 buf 8;
      w_i32 buf origin
  | Event.Measurement_tick { controller } ->
      w_u8 buf 9;
      w_i32 buf controller
  | Event.Mark s ->
      w_u8 buf 10;
      w_str buf s

let w_int_array buf (a : int array) =
  w_i32 buf (Array.length a);
  Array.iter (fun v -> w_i64 buf v) a

(* Metadata pieces shared verbatim between the v1 stream layout and
   the v2 trailing metadata block. *)

let w_meta_prefix buf t =
  w_str buf t.git_sha;
  w_i64 buf t.created_gen;
  w_i64 buf t.seed;
  w_f64 buf t.now_min

let w_as_records buf (ases : Asn.t array) =
  w_i32 buf (Array.length ases);
  Array.iter
    (fun (a : Asn.t) ->
      w_u8 buf (klass_code a.Asn.klass);
      w_str buf a.Asn.name;
      w_i32 buf (Array.length a.Asn.footprint);
      Array.iter (fun m -> w_i32 buf m) a.Asn.footprint)
    ases

let w_down_deploy buf t =
  (* Dynamics state. *)
  w_i32 buf (List.length t.down_links);
  List.iter (fun l -> w_i32 buf l) t.down_links;
  (* Deployment metadata. *)
  w_i32 buf t.asid;
  w_i32 buf (List.length t.pops);
  List.iter (fun m -> w_i32 buf m) t.pops;
  w_i32 buf (Array.length t.prefixes);
  Array.iter
    (fun (p : Prefix.t) ->
      w_i32 buf p.Prefix.id;
      w_i32 buf p.Prefix.asid;
      w_i32 buf p.Prefix.city;
      w_f64 buf p.Prefix.weight)
    t.prefixes

let w_pending_overlays buf t =
  (* Pending timeline and congestion overlays. *)
  w_i32 buf (List.length t.pending);
  List.iter
    (fun (at, ev) ->
      w_f64 buf at;
      w_event buf ev)
    t.pending;
  w_i32 buf (List.length t.overlays);
  List.iter
    (fun (l, ms) ->
      w_i32 buf l;
      w_f64 buf ms)
    t.overlays

let to_bytes t =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  w_i32 buf schema_version;
  w_meta_prefix buf t;
  (* Topology: AS records, link records (with ids), packed adjacency.
     The packed rows make loading a validation pass over immediates
     instead of an adjacency rebuild. *)
  let ases = Topology.ases t.base in
  w_as_records buf ases;
  let links = Topology.links t.base in
  w_i32 buf (Array.length links);
  Array.iter
    (fun (l : Relation.link) ->
      w_i32 buf l.Relation.id;
      w_i32 buf l.Relation.a;
      w_i32 buf l.Relation.b;
      w_u8 buf (kind_code l.Relation.kind);
      w_i32 buf l.Relation.metro;
      w_f64 buf l.Relation.capacity_gbps)
    links;
  Array.iteri
    (fun x _ -> w_int_array buf (Topology.packed_neighbors t.base x))
    ases;
  w_down_deploy buf t;
  (* Flat RIBs of the tracked prefixes. *)
  w_i32 buf (List.length t.ribs);
  List.iter
    (fun r ->
      w_i32 buf r.rib_origin;
      w_u8 buf (if r.rib_active then 1 else 0);
      w_int_array buf r.rib_cust;
      w_int_array buf r.rib_peer;
      w_int_array buf r.rib_prov)
    t.ribs;
  w_pending_overlays buf t;
  Buffer.contents buf

(* ---- v2 writer -------------------------------------------------------- *)

(* Schema v2 puts every large flat array in an 8-aligned little-endian
   int64 "arena" directly addressable through Bigarray views, so
   [load] can [Unix.map_file] the sections instead of decoding a byte
   stream:

     header   magic | i32 version=2 | i64 meta_off | i32 n_sections
              | n_sections x (i64 byte_off, i64 elem_count)
     arena    consecutive 8-byte-element sections, in fixed order:
              csr_off (n+1) | csr_words | link_word | link_meta |
              link_cap | per tracked RIB: cust, peer, prov (n each)
     meta     at meta_off: git_sha, created_gen, seed, now_min, AS
              records, down links, asid, pops, prefixes, RIB
              directory (origin, active), pending timeline, overlays.
              The file ends exactly at the end of this block.

   link_word packs id | a<<21 | b<<41 (the same field widths as the
   CSR neighbor words); link_meta packs kind | metro<<2; link_cap is
   the float bits.  The header is 24 + 16*n_sections bytes, a
   multiple of 8, and every section holds 8-byte elements, so all
   sections stay 8-aligned with no padding. *)

let arena_counts t =
  let links = Topology.links t.base in
  let nl = Array.length links in
  [
    Array.length (Topology.csr_offsets t.base);
    Array.length (Topology.csr_words t.base);
    nl;
    nl;
    nl;
  ]
  @ List.concat_map
      (fun r ->
        [
          Array.length r.rib_cust; Array.length r.rib_peer;
          Array.length r.rib_prov;
        ])
      t.ribs

let to_bytes_v2 t =
  let links = Topology.links t.base in
  let counts = arena_counts t in
  let k = List.length counts in
  let header_len = 24 + (16 * k) in
  let meta_off = header_len + (8 * List.fold_left ( + ) 0 counts) in
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  w_i32 buf schema_version_v2;
  w_i64 buf meta_off;
  w_i32 buf k;
  let off = ref header_len in
  List.iter
    (fun c ->
      w_i64 buf !off;
      w_i64 buf c;
      off := !off + (8 * c))
    counts;
  (* Arena. *)
  Array.iter (fun v -> w_i64 buf v) (Topology.csr_offsets t.base);
  Array.iter (fun v -> w_i64 buf v) (Topology.csr_words t.base);
  Array.iter
    (fun (l : Relation.link) ->
      w_i64 buf (l.Relation.id lor (l.Relation.a lsl 21) lor (l.Relation.b lsl 41)))
    links;
  Array.iter
    (fun (l : Relation.link) ->
      w_i64 buf (kind_code l.Relation.kind lor (l.Relation.metro lsl 2)))
    links;
  Array.iter (fun (l : Relation.link) -> w_f64 buf l.Relation.capacity_gbps) links;
  List.iter
    (fun r ->
      Array.iter (fun v -> w_i64 buf v) r.rib_cust;
      Array.iter (fun v -> w_i64 buf v) r.rib_peer;
      Array.iter (fun v -> w_i64 buf v) r.rib_prov)
    t.ribs;
  assert (Buffer.length buf = meta_off);
  (* Metadata block. *)
  w_meta_prefix buf t;
  w_as_records buf (Topology.ases t.base);
  w_down_deploy buf t;
  w_i32 buf (List.length t.ribs);
  List.iter
    (fun r ->
      w_i32 buf r.rib_origin;
      w_u8 buf (if r.rib_active then 1 else 0))
    t.ribs;
  w_pending_overlays buf t;
  Buffer.contents buf

(* ---- reader ----------------------------------------------------------- *)

exception Corrupt of string

type reader = { data : string; mutable pos : int }

let need r n what =
  if n < 0 || r.pos + n > String.length r.data then
    raise (Corrupt (Printf.sprintf "truncated while reading %s" what))

let r_u8 r what =
  need r 1 what;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i32 r what =
  need r 4 what;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) in
  r.pos <- r.pos + 4;
  v

let r_i64 r what =
  need r 8 what;
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_f64 r what =
  need r 8 what;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_count r what =
  let n = r_i32 r what in
  if n < 0 || n > String.length r.data then
    raise (Corrupt (Printf.sprintf "implausible %s count %d" what n));
  n

let r_str r what =
  let n = r_count r (what ^ " length") in
  need r n what;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let klass_of_code what = function
  | 0 -> Asn.Tier1
  | 1 -> Asn.Transit
  | 2 -> Asn.Eyeball
  | 3 -> Asn.Stub
  | 4 -> Asn.Content
  | 5 -> Asn.Cloud
  | c -> raise (Corrupt (Printf.sprintf "%s: unknown AS class code %d" what c))

let kind_of_code what = function
  | 0 -> Relation.C2p
  | 1 -> Relation.Peer_private
  | 2 -> Relation.Peer_public
  | c -> raise (Corrupt (Printf.sprintf "%s: unknown link kind code %d" what c))

let r_event r =
  match r_u8 r "event tag" with
  | 0 -> Event.Link_down (r_i32 r "event link")
  | 1 -> Event.Link_up (r_i32 r "event link")
  | 2 ->
      let link_id = r_i32 r "event link" in
      let down_minutes = r_f64 r "event down-minutes" in
      Event.Link_flap { link_id; down_minutes }
  | 3 ->
      let asid = r_i32 r "event asid" in
      let metro = r_i32 r "event metro" in
      Event.Site_down { asid; metro }
  | 4 ->
      let asid = r_i32 r "event asid" in
      let metro = r_i32 r "event metro" in
      Event.Site_up { asid; metro }
  | 5 ->
      let link_id = r_i32 r "event link" in
      let extra_ms = r_f64 r "event extra-ms" in
      let duration_min = r_f64 r "event duration" in
      Event.Congestion_onset { link_id; extra_ms; duration_min }
  | 6 ->
      let link_id = r_i32 r "event link" in
      let extra_ms = r_f64 r "event extra-ms" in
      Event.Congestion_decay { link_id; extra_ms }
  | 7 -> Event.Withdraw_prefix { origin = r_i32 r "event origin" }
  | 8 -> Event.Reannounce_prefix { origin = r_i32 r "event origin" }
  | 9 -> Event.Measurement_tick { controller = r_i32 r "event controller" }
  | 10 -> Event.Mark (r_str r "event mark")
  | tag -> raise (Corrupt (Printf.sprintf "unknown event tag %d" tag))

let r_int_array r what =
  let n = r_count r what in
  Array.init n (fun _ -> r_i64 r what)

(* Metadata pieces shared between the v1 stream and the v2 metadata
   block — exact mirrors of the w_* helpers above. *)

let r_meta_prefix r =
  let git_sha = r_str r "git sha" in
  let created_gen = r_i64 r "generation stamp" in
  let seed = r_i64 r "seed" in
  let now_min = r_f64 r "clock" in
  (git_sha, created_gen, seed, now_min)

let r_as_records r =
  let n_ases = r_count r "AS" in
  Array.init n_ases (fun id ->
      let klass = klass_of_code "AS record" (r_u8 r "AS class") in
      let name = r_str r "AS name" in
      let n_fp = r_count r "footprint" in
      let footprint = Array.init n_fp (fun _ -> r_i32 r "footprint metro") in
      { Asn.id; klass; name; footprint })

let r_down_deploy r =
  let n_down = r_count r "down link" in
  let down_links = List.init n_down (fun _ -> r_i32 r "down link id") in
  let asid = r_i32 r "provider asid" in
  let n_pops = r_count r "PoP" in
  let pops = List.init n_pops (fun _ -> r_i32 r "PoP metro") in
  let n_prefixes = r_count r "prefix" in
  let prefixes =
    Array.init n_prefixes (fun _ ->
        let id = r_i32 r "prefix id" in
        let asid = r_i32 r "prefix asid" in
        let city = r_i32 r "prefix city" in
        let weight = r_f64 r "prefix weight" in
        { Prefix.id; asid; city; weight })
  in
  (down_links, asid, pops, prefixes)

let r_pending_overlays r =
  let n_pending = r_count r "pending event" in
  let pending =
    List.init n_pending (fun _ ->
        let at = r_f64 r "event time" in
        let ev = r_event r in
        (at, ev))
  in
  let n_overlays = r_count r "congestion overlay" in
  let overlays =
    List.init n_overlays (fun _ ->
        let l = r_i32 r "overlay link" in
        let ms = r_f64 r "overlay ms" in
        (l, ms))
  in
  (pending, overlays)

let check_no_trailing r what =
  if r.pos <> String.length r.data then
    raise
      (Corrupt
         (Printf.sprintf "%d trailing byte(s) after %s"
            (String.length r.data - r.pos)
            what))

(* v1: decode the whole stream from the heap.  [r.pos] is past the
   magic and version. *)
let decode_v1 r =
  let git_sha, created_gen, seed, now_min = r_meta_prefix r in
  let ases = r_as_records r in
  let n_links = r_count r "link" in
  let links =
    Array.init n_links (fun _ ->
        let id = r_i32 r "link id" in
        let a = r_i32 r "link endpoint" in
        let b = r_i32 r "link endpoint" in
        let kind = kind_of_code "link record" (r_u8 r "link kind") in
        let metro = r_i32 r "link metro" in
        let capacity_gbps = r_f64 r "link capacity" in
        { Relation.id; a; b; kind; metro; capacity_gbps })
  in
  let padj =
    Array.init (Array.length ases) (fun _ -> r_int_array r "adjacency row")
  in
  let base =
    try Topology.of_packed ~ases ~links ~padj
    with Invalid_argument msg -> raise (Corrupt msg)
  in
  let down_links, asid, pops, prefixes = r_down_deploy r in
  let n_ribs = r_count r "RIB" in
  let ribs =
    List.init n_ribs (fun _ ->
        let rib_origin = r_i32 r "RIB origin" in
        let rib_active = r_u8 r "RIB active flag" <> 0 in
        let rib_cust = r_int_array r "customer table" in
        let rib_peer = r_int_array r "peer table" in
        let rib_prov = r_int_array r "provider table" in
        { rib_origin; rib_active; rib_cust; rib_peer; rib_prov })
  in
  let pending, overlays = r_pending_overlays r in
  check_no_trailing r "snapshot payload";
  {
    git_sha;
    created_gen;
    seed;
    now_min;
    base;
    down_links;
    asid;
    pops;
    prefixes;
    ribs;
    pending;
    overlays;
  }

(* ---- v2 reader -------------------------------------------------------- *)

(* A v2 decode source: random access into the file, either over an
   in-memory string (of_bytes, and the corrupt-rejection tests) or
   over an open fd whose arena sections are pulled through
   [Unix.map_file] Bigarray views (the fast [load] path).  Every
   accessor bounds-checks and raises [Corrupt] — never a signal or an
   uncaught [Unix_error]. *)
type v2_source = {
  src_len : int;
  src_sub : pos:int -> len:int -> what:string -> string;
  src_ints : pos:int -> count:int -> what:string -> int array;
  src_floats : pos:int -> count:int -> what:string -> float array;
}

let string_source data =
  let len = String.length data in
  let check ~pos ~bytes ~what =
    if pos < 0 || bytes < 0 || pos + bytes > len then
      raise (Corrupt (Printf.sprintf "truncated while reading %s" what))
  in
  {
    src_len = len;
    src_sub =
      (fun ~pos ~len:l ~what ->
        check ~pos ~bytes:l ~what;
        String.sub data pos l);
    src_ints =
      (fun ~pos ~count ~what ->
        check ~pos ~bytes:(8 * count) ~what;
        Array.init count (fun i ->
            Int64.to_int (String.get_int64_le data (pos + (8 * i)))));
    src_floats =
      (fun ~pos ~count ~what ->
        check ~pos ~bytes:(8 * count) ~what;
        Array.init count (fun i ->
            Int64.float_of_bits (String.get_int64_le data (pos + (8 * i)))));
  }

let really_pread fd ~pos ~len ~what =
  match Unix.lseek fd pos Unix.SEEK_SET with
  | exception Unix.Unix_error _ ->
      raise (Corrupt (Printf.sprintf "truncated while reading %s" what))
  | _ ->
      let b = Bytes.create len in
      let rec go off =
        if off < len then
          match Unix.read fd b off (len - off) with
          | 0 ->
              raise
                (Corrupt (Printf.sprintf "truncated while reading %s" what))
          | n -> go (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      in
      go 0;
      Bytes.unsafe_to_string b

let fd_source fd len =
  let check ~pos ~bytes ~what =
    if pos < 0 || bytes < 0 || pos + bytes > len then
      raise (Corrupt (Printf.sprintf "truncated while reading %s" what))
  in
  let map kind ~pos ~count ~what =
    check ~pos ~bytes:(8 * count) ~what;
    try
      Unix.map_file fd ~pos:(Int64.of_int pos) kind Bigarray.c_layout false
        [| count |]
      |> Bigarray.array1_of_genarray
    with Unix.Unix_error _ | Sys_error _ ->
      raise (Corrupt (Printf.sprintf "cannot map %s" what))
  in
  {
    src_len = len;
    src_sub =
      (fun ~pos ~len:l ~what ->
        check ~pos ~bytes:l ~what;
        really_pread fd ~pos ~len:l ~what);
    src_ints =
      (fun ~pos ~count ~what ->
        if count = 0 then [||]
        else begin
          let view = map Bigarray.int64 ~pos ~count ~what in
          let a = Array.make count 0 in
          for i = 0 to count - 1 do
            a.(i) <- Int64.to_int (Bigarray.Array1.unsafe_get view i)
          done;
          a
        end);
    src_floats =
      (fun ~pos ~count ~what ->
        if count = 0 then [||]
        else begin
          let view = map Bigarray.float64 ~pos ~count ~what in
          let a = Array.make count 0. in
          for i = 0 to count - 1 do
            a.(i) <- Bigarray.Array1.unsafe_get view i
          done;
          a
        end);
  }

(* Field widths of the packed v2 link words (mirroring the CSR
   neighbor word layout). *)
let lw_id w = w land 0x1F_FFFF
let lw_a w = (w lsr 21) land 0xF_FFFF
let lw_b w = (w lsr 41) land 0xF_FFFF

let decode_v2 src =
  (* Header: magic and version were checked by the dispatcher. *)
  let hdr = src.src_sub ~pos:0 ~len:24 ~what:"v2 header" in
  let r = { data = hdr; pos = String.length magic + 4 } in
  let meta_off = r_i64 r "metadata offset" in
  let n_sections = r_i32 r "section count" in
  if n_sections < 5 || (n_sections - 5) mod 3 <> 0 then
    raise (Corrupt (Printf.sprintf "implausible section count %d" n_sections));
  let header_end = 24 + (16 * n_sections) in
  if meta_off < header_end || meta_off > src.src_len then
    raise (Corrupt "metadata offset out of range");
  let tr =
    { data = src.src_sub ~pos:24 ~len:(16 * n_sections) ~what:"section table";
      pos = 0 }
  in
  let sections =
    Array.init n_sections (fun _ ->
        let off = r_i64 tr "section offset" in
        let count = r_i64 tr "section length" in
        (off, count))
  in
  (* The sections must tile [header_end, meta_off) exactly, in order —
     anything else is corruption, and the bound also rules out
     overflowing Bigarray dimensions below. *)
  let expect = ref header_end in
  Array.iter
    (fun (off, count) ->
      if count < 0 || count > src.src_len then
        raise (Corrupt (Printf.sprintf "implausible section length %d" count));
      if off <> !expect || off + (8 * count) > meta_off then
        raise (Corrupt "section table does not tile the arena");
      expect := off + (8 * count))
    sections;
  if !expect <> meta_off then
    raise (Corrupt "arena does not end at the metadata offset");
  (* Metadata block: everything small lives here, decoded from the
     heap exactly like v1. *)
  let r =
    {
      data =
        src.src_sub ~pos:meta_off ~len:(src.src_len - meta_off)
          ~what:"metadata block";
      pos = 0;
    }
  in
  let git_sha, created_gen, seed, now_min = r_meta_prefix r in
  let ases = r_as_records r in
  let down_links, asid, pops, prefixes = r_down_deploy r in
  let n_ribs = r_count r "RIB" in
  if n_ribs <> (n_sections - 5) / 3 then
    raise (Corrupt "RIB directory disagrees with the section table");
  let rib_dir =
    List.init n_ribs (fun _ ->
        let origin = r_i32 r "RIB origin" in
        let active = r_u8 r "RIB active flag" <> 0 in
        (origin, active))
  in
  let pending, overlays = r_pending_overlays r in
  check_no_trailing r "snapshot metadata";
  (* Arena sections. *)
  let ints i what =
    let off, count = sections.(i) in
    src.src_ints ~pos:off ~count ~what
  in
  let floats i what =
    let off, count = sections.(i) in
    src.src_floats ~pos:off ~count ~what
  in
  let csr_off = ints 0 "CSR offsets" in
  let csr_words = ints 1 "CSR words" in
  let link_word = ints 2 "link words" in
  let link_meta = ints 3 "link metadata" in
  let link_cap = floats 4 "link capacities" in
  let n_links = Array.length link_word in
  if Array.length link_meta <> n_links || Array.length link_cap <> n_links
  then raise (Corrupt "link section lengths disagree");
  let links =
    Array.init n_links (fun i ->
        let w = link_word.(i) and m = link_meta.(i) in
        if w < 0 || w lsr 61 <> 0 then
          raise (Corrupt "link word out of range");
        if m < 0 then raise (Corrupt "link metadata out of range");
        let kind = kind_of_code "link record" (m land 3) in
        {
          Relation.id = lw_id w;
          a = lw_a w;
          b = lw_b w;
          kind;
          metro = m lsr 2;
          capacity_gbps = link_cap.(i);
        })
  in
  let base =
    try Topology.of_csr ~ases ~links ~csr_off ~csr_words
    with Invalid_argument msg -> raise (Corrupt msg)
  in
  let n = Array.length ases in
  let ribs =
    List.mapi
      (fun i (rib_origin, rib_active) ->
        let rib_cust = ints (5 + (3 * i)) "customer table" in
        let rib_peer = ints (6 + (3 * i)) "peer table" in
        let rib_prov = ints (7 + (3 * i)) "provider table" in
        if
          Array.length rib_cust <> n
          || Array.length rib_peer <> n
          || Array.length rib_prov <> n
        then raise (Corrupt "RIB table length <> AS count");
        { rib_origin; rib_active; rib_cust; rib_peer; rib_prov })
      rib_dir
  in
  {
    git_sha;
    created_gen;
    seed;
    now_min;
    base;
    down_links;
    asid;
    pops;
    prefixes;
    ribs;
    pending;
    overlays;
  }

let unsupported_version v =
  Corrupt
    (Printf.sprintf
       "unsupported snapshot schema version %d (this build reads versions %d \
        and %d)"
       v schema_version schema_version_v2)

let of_bytes data =
  let r = { data; pos = 0 } in
  try
    need r (String.length magic) "magic";
    let m = String.sub data 0 (String.length magic) in
    if m <> magic then
      raise
        (Corrupt
           (Printf.sprintf "bad magic %S (not a beatbgp snapshot, expected %S)"
              m magic));
    r.pos <- String.length magic;
    let version = r_i32 r "schema version" in
    let t =
      match version with
      | 1 -> decode_v1 r
      | 2 -> decode_v2 (string_source data)
      | v -> raise (unsupported_version v)
    in
    Ok t
  with Corrupt msg -> Error ("snapshot: " ^ msg)

let save ?(version = schema_version_v2) t ~path =
  let data =
    if version = schema_version then to_bytes t
    else if version = schema_version_v2 then to_bytes_v2 t
    else
      invalid_arg
        (Printf.sprintf "Snapshot.save: unknown schema version %d" version)
  in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let load ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    match Unix.openfile path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error (e, _, _) ->
        Error (path ^ ": " ^ Unix.error_message e)
    | fd ->
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let len = (Unix.fstat fd).Unix.st_size in
            let version =
              if len < String.length magic + 4 then None
              else begin
                try
                  let hdr = really_pread fd ~pos:0 ~len:12 ~what:"header" in
                  if String.sub hdr 0 (String.length magic) <> magic then None
                  else Some (Int32.to_int (String.get_int32_le hdr 8))
                with Corrupt _ -> None
              end
            in
            match version with
            | Some v when v = schema_version_v2 ->
                (* Zero-copy path: arena sections are mmapped in place
                   and bulk-blitted; only the small metadata block is
                   byte-decoded. *)
                (try Ok (decode_v2 (fd_source fd len))
                 with Corrupt msg -> Error ("snapshot: " ^ msg))
            | _ -> (
                (* v1, unknown versions and non-snapshots all take the
                   total heap decoder for its precise errors. *)
                try of_bytes (really_pread fd ~pos:0 ~len ~what:"snapshot file")
                with Corrupt msg -> Error ("snapshot: " ^ msg)))
  end
