module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Prefix = Netsim_traffic.Prefix
module Event = Netsim_dynamics.Event

type rib = {
  rib_origin : int;
  rib_active : bool;
  rib_cust : int array;
  rib_peer : int array;
  rib_prov : int array;
}

type t = {
  git_sha : string;
  created_gen : int;
  seed : int;
  now_min : float;
  base : Topology.t;
  down_links : int list;
  asid : int;
  pops : int list;
  prefixes : Prefix.t array;
  ribs : rib list;
  pending : (float * Event.t) list;
  overlays : (int * float) list;
}

let magic = "BBGPSNAP"
let schema_version = 1

(* ---- writer ----------------------------------------------------------- *)

let w_u8 buf v = Buffer.add_uint8 buf (v land 0xff)
let w_i32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let w_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let w_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let w_str buf s =
  w_i32 buf (String.length s);
  Buffer.add_string buf s

let klass_code = function
  | Asn.Tier1 -> 0
  | Asn.Transit -> 1
  | Asn.Eyeball -> 2
  | Asn.Stub -> 3
  | Asn.Content -> 4
  | Asn.Cloud -> 5

let kind_code = function
  | Relation.C2p -> 0
  | Relation.Peer_private -> 1
  | Relation.Peer_public -> 2

let w_event buf = function
  | Event.Link_down l ->
      w_u8 buf 0;
      w_i32 buf l
  | Event.Link_up l ->
      w_u8 buf 1;
      w_i32 buf l
  | Event.Link_flap { link_id; down_minutes } ->
      w_u8 buf 2;
      w_i32 buf link_id;
      w_f64 buf down_minutes
  | Event.Site_down { asid; metro } ->
      w_u8 buf 3;
      w_i32 buf asid;
      w_i32 buf metro
  | Event.Site_up { asid; metro } ->
      w_u8 buf 4;
      w_i32 buf asid;
      w_i32 buf metro
  | Event.Congestion_onset { link_id; extra_ms; duration_min } ->
      w_u8 buf 5;
      w_i32 buf link_id;
      w_f64 buf extra_ms;
      w_f64 buf duration_min
  | Event.Congestion_decay { link_id; extra_ms } ->
      w_u8 buf 6;
      w_i32 buf link_id;
      w_f64 buf extra_ms
  | Event.Withdraw_prefix { origin } ->
      w_u8 buf 7;
      w_i32 buf origin
  | Event.Reannounce_prefix { origin } ->
      w_u8 buf 8;
      w_i32 buf origin
  | Event.Measurement_tick { controller } ->
      w_u8 buf 9;
      w_i32 buf controller
  | Event.Mark s ->
      w_u8 buf 10;
      w_str buf s

let w_int_array buf (a : int array) =
  w_i32 buf (Array.length a);
  Array.iter (fun v -> w_i64 buf v) a

let to_bytes t =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  w_i32 buf schema_version;
  w_str buf t.git_sha;
  w_i64 buf t.created_gen;
  w_i64 buf t.seed;
  w_f64 buf t.now_min;
  (* Topology: AS records, link records (with ids), packed adjacency.
     The packed rows make loading a validation pass over immediates
     instead of an adjacency rebuild. *)
  let ases = Topology.ases t.base in
  w_i32 buf (Array.length ases);
  Array.iter
    (fun (a : Asn.t) ->
      w_u8 buf (klass_code a.Asn.klass);
      w_str buf a.Asn.name;
      w_i32 buf (Array.length a.Asn.footprint);
      Array.iter (fun m -> w_i32 buf m) a.Asn.footprint)
    ases;
  let links = Topology.links t.base in
  w_i32 buf (Array.length links);
  Array.iter
    (fun (l : Relation.link) ->
      w_i32 buf l.Relation.id;
      w_i32 buf l.Relation.a;
      w_i32 buf l.Relation.b;
      w_u8 buf (kind_code l.Relation.kind);
      w_i32 buf l.Relation.metro;
      w_f64 buf l.Relation.capacity_gbps)
    links;
  Array.iteri
    (fun x _ -> w_int_array buf (Topology.packed_neighbors t.base x))
    ases;
  (* Dynamics state. *)
  w_i32 buf (List.length t.down_links);
  List.iter (fun l -> w_i32 buf l) t.down_links;
  (* Deployment metadata. *)
  w_i32 buf t.asid;
  w_i32 buf (List.length t.pops);
  List.iter (fun m -> w_i32 buf m) t.pops;
  w_i32 buf (Array.length t.prefixes);
  Array.iter
    (fun (p : Prefix.t) ->
      w_i32 buf p.Prefix.id;
      w_i32 buf p.Prefix.asid;
      w_i32 buf p.Prefix.city;
      w_f64 buf p.Prefix.weight)
    t.prefixes;
  (* Flat RIBs of the tracked prefixes. *)
  w_i32 buf (List.length t.ribs);
  List.iter
    (fun r ->
      w_i32 buf r.rib_origin;
      w_u8 buf (if r.rib_active then 1 else 0);
      w_int_array buf r.rib_cust;
      w_int_array buf r.rib_peer;
      w_int_array buf r.rib_prov)
    t.ribs;
  (* Pending timeline and congestion overlays. *)
  w_i32 buf (List.length t.pending);
  List.iter
    (fun (at, ev) ->
      w_f64 buf at;
      w_event buf ev)
    t.pending;
  w_i32 buf (List.length t.overlays);
  List.iter
    (fun (l, ms) ->
      w_i32 buf l;
      w_f64 buf ms)
    t.overlays;
  Buffer.contents buf

(* ---- reader ----------------------------------------------------------- *)

exception Corrupt of string

type reader = { data : string; mutable pos : int }

let need r n what =
  if r.pos + n > String.length r.data then
    raise (Corrupt (Printf.sprintf "truncated while reading %s" what))

let r_u8 r what =
  need r 1 what;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i32 r what =
  need r 4 what;
  let v = Int32.to_int (String.get_int32_le r.data r.pos) in
  r.pos <- r.pos + 4;
  v

let r_i64 r what =
  need r 8 what;
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_f64 r what =
  need r 8 what;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_count r what =
  let n = r_i32 r what in
  if n < 0 || n > String.length r.data then
    raise (Corrupt (Printf.sprintf "implausible %s count %d" what n));
  n

let r_str r what =
  let n = r_count r (what ^ " length") in
  need r n what;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let klass_of_code what = function
  | 0 -> Asn.Tier1
  | 1 -> Asn.Transit
  | 2 -> Asn.Eyeball
  | 3 -> Asn.Stub
  | 4 -> Asn.Content
  | 5 -> Asn.Cloud
  | c -> raise (Corrupt (Printf.sprintf "%s: unknown AS class code %d" what c))

let kind_of_code what = function
  | 0 -> Relation.C2p
  | 1 -> Relation.Peer_private
  | 2 -> Relation.Peer_public
  | c -> raise (Corrupt (Printf.sprintf "%s: unknown link kind code %d" what c))

let r_event r =
  match r_u8 r "event tag" with
  | 0 -> Event.Link_down (r_i32 r "event link")
  | 1 -> Event.Link_up (r_i32 r "event link")
  | 2 ->
      let link_id = r_i32 r "event link" in
      let down_minutes = r_f64 r "event down-minutes" in
      Event.Link_flap { link_id; down_minutes }
  | 3 ->
      let asid = r_i32 r "event asid" in
      let metro = r_i32 r "event metro" in
      Event.Site_down { asid; metro }
  | 4 ->
      let asid = r_i32 r "event asid" in
      let metro = r_i32 r "event metro" in
      Event.Site_up { asid; metro }
  | 5 ->
      let link_id = r_i32 r "event link" in
      let extra_ms = r_f64 r "event extra-ms" in
      let duration_min = r_f64 r "event duration" in
      Event.Congestion_onset { link_id; extra_ms; duration_min }
  | 6 ->
      let link_id = r_i32 r "event link" in
      let extra_ms = r_f64 r "event extra-ms" in
      Event.Congestion_decay { link_id; extra_ms }
  | 7 -> Event.Withdraw_prefix { origin = r_i32 r "event origin" }
  | 8 -> Event.Reannounce_prefix { origin = r_i32 r "event origin" }
  | 9 -> Event.Measurement_tick { controller = r_i32 r "event controller" }
  | 10 -> Event.Mark (r_str r "event mark")
  | tag -> raise (Corrupt (Printf.sprintf "unknown event tag %d" tag))

let r_int_array r what =
  let n = r_count r what in
  Array.init n (fun _ -> r_i64 r what)

let of_bytes data =
  let r = { data; pos = 0 } in
  try
    need r (String.length magic) "magic";
    let m = String.sub data 0 (String.length magic) in
    if m <> magic then
      raise
        (Corrupt
           (Printf.sprintf "bad magic %S (not a beatbgp snapshot, expected %S)"
              m magic));
    r.pos <- String.length magic;
    let version = r_i32 r "schema version" in
    if version <> schema_version then
      raise
        (Corrupt
           (Printf.sprintf
              "unsupported snapshot schema version %d (this build reads \
               version %d)"
              version schema_version));
    let git_sha = r_str r "git sha" in
    let created_gen = r_i64 r "generation stamp" in
    let seed = r_i64 r "seed" in
    let now_min = r_f64 r "clock" in
    let n_ases = r_count r "AS" in
    let ases =
      Array.init n_ases (fun id ->
          let klass = klass_of_code "AS record" (r_u8 r "AS class") in
          let name = r_str r "AS name" in
          let n_fp = r_count r "footprint" in
          let footprint = Array.init n_fp (fun _ -> r_i32 r "footprint metro") in
          { Asn.id; klass; name; footprint })
    in
    let n_links = r_count r "link" in
    let links =
      Array.init n_links (fun _ ->
          let id = r_i32 r "link id" in
          let a = r_i32 r "link endpoint" in
          let b = r_i32 r "link endpoint" in
          let kind = kind_of_code "link record" (r_u8 r "link kind") in
          let metro = r_i32 r "link metro" in
          let capacity_gbps = r_f64 r "link capacity" in
          { Relation.id; a; b; kind; metro; capacity_gbps })
    in
    let padj = Array.init n_ases (fun _ -> r_int_array r "adjacency row") in
    let base =
      try Topology.of_packed ~ases ~links ~padj
      with Invalid_argument msg -> raise (Corrupt msg)
    in
    let n_down = r_count r "down link" in
    let down_links = List.init n_down (fun _ -> r_i32 r "down link id") in
    let asid = r_i32 r "provider asid" in
    let n_pops = r_count r "PoP" in
    let pops = List.init n_pops (fun _ -> r_i32 r "PoP metro") in
    let n_prefixes = r_count r "prefix" in
    let prefixes =
      Array.init n_prefixes (fun _ ->
          let id = r_i32 r "prefix id" in
          let asid = r_i32 r "prefix asid" in
          let city = r_i32 r "prefix city" in
          let weight = r_f64 r "prefix weight" in
          { Prefix.id; asid; city; weight })
    in
    let n_ribs = r_count r "RIB" in
    let ribs =
      List.init n_ribs (fun _ ->
          let rib_origin = r_i32 r "RIB origin" in
          let rib_active = r_u8 r "RIB active flag" <> 0 in
          let rib_cust = r_int_array r "customer table" in
          let rib_peer = r_int_array r "peer table" in
          let rib_prov = r_int_array r "provider table" in
          { rib_origin; rib_active; rib_cust; rib_peer; rib_prov })
    in
    let n_pending = r_count r "pending event" in
    let pending =
      List.init n_pending (fun _ ->
          let at = r_f64 r "event time" in
          let ev = r_event r in
          (at, ev))
    in
    let n_overlays = r_count r "congestion overlay" in
    let overlays =
      List.init n_overlays (fun _ ->
          let l = r_i32 r "overlay link" in
          let ms = r_f64 r "overlay ms" in
          (l, ms))
    in
    if r.pos <> String.length data then
      raise
        (Corrupt
           (Printf.sprintf "%d trailing byte(s) after snapshot payload"
              (String.length data - r.pos)));
    Ok
      {
        git_sha;
        created_gen;
        seed;
        now_min;
        base;
        down_links;
        asid;
        pops;
        prefixes;
        ribs;
        pending;
        overlays;
      }
  with Corrupt msg -> Error ("snapshot: " ^ msg)

let save t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_bytes t))

let load ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_bytes (really_input_string ic (in_channel_length ic)))
  end
