type request =
  | Catchment of string
  | Egress of int
  | Rtt of string * string
  | Explain of string * string
  | Stats
  | Snapshot_to of string
  | Prom
  | Advance of float
  | Quit

let max_line = 4096

let verb = function
  | Catchment _ -> "catchment"
  | Egress _ -> "egress"
  | Rtt _ -> "rtt"
  | Explain _ -> "explain"
  | Stats -> "stats"
  | Snapshot_to _ -> "snapshot"
  | Prom -> "prom"
  | Advance _ -> "advance"
  | Quit -> "quit"

(* SNAPSHOT mutates nothing but reads the whole engine state, so it
   is serialized at the write barrier with the true mutators. *)
let read_only = function
  | Catchment _ | Egress _ | Rtt _ | Explain _ | Stats | Prom -> true
  | Snapshot_to _ | Advance _ | Quit -> false

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse line =
  if String.length line > max_line then
    Error
      (Printf.sprintf "request exceeds %d bytes (%d)" max_line
         (String.length line))
  else begin
    let words =
      String.split_on_char ' ' (strip_cr line)
      |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> Error "empty request"
    | verb :: args -> (
        match (String.uppercase_ascii verb, args) with
        | "CATCHMENT", [ p ] -> Ok (Catchment p)
        | "CATCHMENT", _ -> Error "usage: CATCHMENT <prefix>"
        | "EGRESS", [ pop ] -> (
            match int_of_string_opt pop with
            | Some m -> Ok (Egress m)
            | None -> Error ("EGRESS: not a metro id: " ^ pop))
        | "EGRESS", _ -> Error "usage: EGRESS <pop>"
        | "RTT", [ client; prefix ] -> Ok (Rtt (client, prefix))
        | "RTT", _ -> Error "usage: RTT <client> <prefix>"
        | "EXPLAIN", [ prefix; asn ] -> Ok (Explain (prefix, asn))
        | "EXPLAIN", _ -> Error "usage: EXPLAIN <prefix> <as>"
        | "STATS", [] -> Ok Stats
        | "STATS", _ -> Error "usage: STATS"
        | "SNAPSHOT", [ path ] -> Ok (Snapshot_to path)
        | "SNAPSHOT", _ -> Error "usage: SNAPSHOT <path>"
        | "PROM", [] -> Ok Prom
        | "PROM", _ -> Error "usage: PROM"
        | "ADVANCE", [ m ] -> (
            match float_of_string_opt m with
            | Some minutes when minutes >= 0. && Float.is_finite minutes ->
                Ok (Advance minutes)
            | Some _ -> Error "ADVANCE: minutes must be finite and >= 0"
            | None -> Error ("ADVANCE: not a number: " ^ m))
        | "ADVANCE", _ -> Error "usage: ADVANCE <minutes>"
        | "QUIT", [] -> Ok Quit
        | "QUIT", _ -> Error "usage: QUIT"
        | v, _ -> Error ("unknown command " ^ v))
  end

let frame ~ok body =
  Printf.sprintf "%s %d\n%s\n" (if ok then "OK" else "ERR")
    (String.length body) body
