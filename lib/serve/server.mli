(** The warm-RIB query daemon.

    A server owns a dynamics {!Netsim_dynamics.Engine} whose tracked
    prefixes (the provider's anycast prefix plus the first [track]
    client-AS prefixes) stay continuously converged, and answers
    {!Protocol} queries against that warm state.  Between request
    batches it applies the scheduled churn timeline incrementally —
    every [batch] requests the engine advances [batch_minutes] of
    simulated time, so responses are a deterministic function of the
    seed and the request sequence (never of wall clock).

    A server is built either from a seed ({!build}, the scenario
    construction path) or from a binary {!Snapshot} ({!of_snapshot}).
    Both produce byte-identical responses to the same request stream:
    the snapshot stores the exact routing tables, pending timeline and
    congestion overlays, and everything else (congestion model,
    batching) is rebuilt deterministically from the stored seed.

    {2 Concurrency model}

    The server executes many client sessions at once without giving up
    determinism.  Each request is split into a {e plan} step — runs on
    the coordinating domain, in request order, and performs all shared
    mutable-state traffic (parsing, counters, RIB-cache lookups) — and
    a pure {e run} thunk.  A scheduling round ingests pending lines
    from every session, fans the planned read-only thunks over the
    {!Netsim_par.Pool} domains in one batch, then executes
    write-barrier verbs (ADVANCE, SNAPSHOT, QUIT) and churn
    batch-boundary advances on the coordinating domain with no reads
    in flight.  Per-session query counters live in the session, so
    every client observes exactly the responses it would observe
    served alone — byte-for-byte, at any domain count.  See
    doc/serving.md. *)

type config = {
  seed : int;
  base_params : Netsim_topo.Generator.params;  (** Base-Internet shape. *)
  n_prefixes : int;
  pop_count : int;  (** Provider PoP metros to deploy. *)
  track : int;  (** Client-AS prefixes kept warm in the engine. *)
  churn : bool;  (** Schedule a flap + congestion-burst timeline. *)
  churn_days : int;  (** Horizon of the churn scripts. *)
  batch : int;  (** Requests per engine advance (0 = never advance). *)
  batch_minutes : float;  (** Simulated minutes per batch advance. *)
}

val default_config : config
(** Default scenario sizes (seed 42, 320 prefixes, 40 PoPs). *)

val small_config : config
(** Test sizes (seed 7, 60 prefixes, 12 PoPs) — used by [--small],
    [make verify] and the test suite. *)

type t

val build : config -> t
(** Construct the provider scenario from the seed and start tracking. *)

val of_snapshot : config -> Snapshot.t -> (t, string) result
(** Resume from a loaded snapshot: restore the engine (base topology,
    failed links, clock), install the stored routing tables without
    repropagating, re-schedule the pending timeline and re-apply the
    congestion overlays.  [Error] if a stored table is inconsistent
    with the stored topology. *)

val snapshot : t -> Snapshot.t
(** The persistable view of the current serving state. *)

(** {1 Queries} *)

val handle : t -> Protocol.request -> (string, string) result
(** Answer one request (no framing, no counters).  Total: unknown
    prefixes, PoPs and origins come back as [Error]. *)

val explain : t -> string -> string -> (string, string) result
(** The [EXPLAIN <prefix> <as>] body: the decision chain behind the
    AS's selected route toward the prefix's origin ("anycast" or a
    client prefix id), plus the latency-optimal counterfactual.
    Provenance is recomputed deterministically on the current topology
    (through the RIB cache), never read from warm engine state — which
    is what makes seed-built and snapshot-loaded daemons answer
    byte-identically.  Shared by the serve verb and [beatbgp explain],
    so CLI and daemon output are the same bytes. *)

val provenance_jsonl : t -> origin:int -> string
(** JSONL dump of the full provenance table toward [origin]: a header
    line tagged [Netsim_obs.Provenance.schema], then one object per
    decided AS (class, next hop, link, path length, per-class
    candidate counts, tie-break rule, runner-up).  Written by
    [beatbgp explain --provenance-out]. *)

val handle_line : t -> string -> string * bool
(** Parse, count, answer and frame one request line on the default
    session; advances the churn timeline on batch boundaries.  Returns
    the framed wire response and [false] when the session should end
    (QUIT). *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Serve until EOF or QUIT.  Never raises on malformed input — every
    error is framed as an [ERR] response. *)

val serve_streams :
  ?on_latency:(int -> float -> unit) ->
  t ->
  string list array ->
  string list array
(** Serve [n] client request streams concurrently through the round
    executor, each in its own session, and return the framed responses
    per stream in order.  Read-only verbs are fanned over the domain
    pool; responses per stream are byte-identical to serving that
    stream alone (and to any domain count).  [on_latency i us] is
    called once per answered request with the stream index and the
    handler wall-clock microseconds — the hook the parallel benchmark
    uses for per-client latency histograms.  A QUIT on any stream
    stops the server; later lines of other streams go unanswered. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run [f], retrying while it raises [Unix.EINTR] — wraps every
    blocking syscall of the listener so a signal (profiler tick,
    SIGCHLD, window resize) cannot kill the daemon. *)

val listen : ?port_ready:(int -> unit) -> t -> port:int -> unit
(** Multi-connection accept loop on localhost:[port] (non-blocking
    sockets and [select], one scheduling round per wakeup).  Each
    connection gets its own session; read-only queries from all
    connections execute concurrently over the domain pool, and
    write-barrier verbs serialize.  [port_ready] is called with the
    actual bound port once listening (useful with [port = 0]).  QUIT
    stops accepting; the daemon exits once remaining connections have
    drained. *)

(** {1 Introspection (tests, CLI)} *)

val provider : t -> int
val pops : t -> int list
val prefixes : t -> Netsim_traffic.Prefix.t array
val engine : t -> Netsim_dynamics.Engine.t
val queries : t -> int
(** Requests received so far (including malformed ones). *)
