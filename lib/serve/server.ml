module Sm = Netsim_prng.Splitmix
module Generator = Netsim_topo.Generator
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Walk = Netsim_bgp.Walk
module Route = Netsim_bgp.Route
module Deployment = Netsim_cdn.Deployment
module Population = Netsim_traffic.Population
module Prefix = Netsim_traffic.Prefix
module Congestion = Netsim_latency.Congestion
module Params = Netsim_latency.Params
module Propagation = Netsim_latency.Propagation
module Rtt = Netsim_latency.Rtt
module World = Netsim_geo.World
module City = Netsim_geo.City
module Engine = Netsim_dynamics.Engine
module Script = Netsim_dynamics.Script
module Metrics = Netsim_obs.Metrics
module Recorder = Netsim_obs.Recorder
module Pool = Netsim_par.Pool
module Scenario = Beatbgp.Scenario

type config = {
  seed : int;
  base_params : Generator.params;
  n_prefixes : int;
  pop_count : int;
  track : int;
  churn : bool;
  churn_days : int;
  batch : int;
  batch_minutes : float;
}

let config_of_sizes (s : Scenario.sizes) ~pop_count ~track =
  {
    seed = s.Scenario.seed;
    base_params = s.Scenario.base;
    n_prefixes = s.Scenario.n_prefixes;
    pop_count;
    track;
    churn = false;
    churn_days = max 1 (int_of_float s.Scenario.days);
    batch = 16;
    batch_minutes = 15.;
  }

let default_config = config_of_sizes Scenario.default_sizes ~pop_count:40 ~track:8
let small_config = config_of_sizes Scenario.test_sizes ~pop_count:12 ~track:4

type counts = {
  mutable q_catchment : int;
  mutable q_egress : int;
  mutable q_rtt : int;
  mutable q_explain : int;
  mutable q_stats : int;
  mutable q_snapshot : int;
  mutable q_prom : int;
  mutable q_advance : int;
  mutable q_quit : int;
  mutable q_invalid : int;
}

let zero_counts () =
  {
    q_catchment = 0;
    q_egress = 0;
    q_rtt = 0;
    q_explain = 0;
    q_stats = 0;
    q_snapshot = 0;
    q_prom = 0;
    q_advance = 0;
    q_quit = 0;
    q_invalid = 0;
  }

(* One client's view of the daemon: its own query counters and stop
   flag.  STATS reports the session's numbers, so a client served
   concurrently sees exactly the counters it would see served alone. *)
type session = {
  s_counts : counts;
  mutable s_queries : int;
  mutable s_stopped : bool;
}

let fresh_session () =
  { s_counts = zero_counts (); s_queries = 0; s_stopped = false }

type t = {
  cfg : config;
  engine : Engine.t;
  cong : Congestion.t;
  asid : int;
  pops : int list;
  prefixes : Prefix.t array;
  session0 : session;  (** the stdin / [handle_line] session *)
  mutable pop_index : (int, Prefix.t list) Hashtbl.t option;
  mutable queries : int;  (** across all sessions *)
  mutable stopped : bool;
}

(* ---- construction ----------------------------------------------------- *)

let schedule_churn cfg ~root ~topo engine =
  let link_ids = Array.init (Topology.link_count topo) (fun i -> i) in
  Script.schedule_all engine
    (Script.flaps
       (Sm.of_label root "serve.flaps")
       ~link_ids ~mean_interval_min:120. ~mean_down_min:15. ~days:cfg.churn_days);
  Script.schedule_all engine
    (Script.congestion_bursts
       (Sm.of_label root "serve.bursts")
       ~link_ids ~mean_interval_min:90. ~median_extra_ms:30. ~sigma:0.6
       ~mean_duration_min:45. ~days:cfg.churn_days)

(* The first [track] distinct client ASes in prefix order. *)
let client_origins cfg prefixes =
  let seen = Hashtbl.create 64 and acc = ref [] in
  Array.iter
    (fun (p : Prefix.t) ->
      if Hashtbl.length seen < cfg.track && not (Hashtbl.mem seen p.Prefix.asid)
      then begin
        Hashtbl.add seen p.Prefix.asid ();
        acc := p.Prefix.asid :: !acc
      end)
    prefixes;
  List.rev !acc

let build cfg =
  let root = Sm.create cfg.seed in
  let base =
    Generator.generate { cfg.base_params with Generator.seed = cfg.seed }
  in
  let spec =
    Deployment.default_spec ~name:"CONTENT"
      ~pop_metros:(Scenario.spread_metros cfg.pop_count)
  in
  let deployment = Deployment.deploy base ~rng:(Sm.of_label root "deploy") spec in
  let topo = deployment.Deployment.topo in
  let prefixes =
    Population.generate topo
      ~rng:(Sm.of_label root "population")
      ~n_prefixes:cfg.n_prefixes
  in
  let cong = Congestion.create Params.default topo ~seed:(cfg.seed + 1) in
  let engine = Engine.create ~congestion:cong topo in
  Engine.track engine (Announce.default ~origin:deployment.Deployment.asid);
  List.iter
    (fun origin -> Engine.track engine (Announce.default ~origin))
    (client_origins cfg prefixes);
  if cfg.churn then schedule_churn cfg ~root ~topo engine;
  {
    cfg;
    engine;
    cong;
    asid = deployment.Deployment.asid;
    pops = deployment.Deployment.pops;
    prefixes;
    session0 = fresh_session ();
    pop_index = None;
    queries = 0;
    stopped = false;
  }

exception Bad of string

let of_snapshot cfg (snap : Snapshot.t) =
  try
    let n = Topology.as_count snap.Snapshot.base in
    let n_cities = Array.length World.cities in
    if snap.Snapshot.asid < 0 || snap.Snapshot.asid >= n then
      raise (Bad (Printf.sprintf "provider AS %d out of range" snap.Snapshot.asid));
    List.iter
      (fun m ->
        if m < 0 || m >= n_cities then
          raise (Bad (Printf.sprintf "PoP metro %d out of range" m)))
      snap.Snapshot.pops;
    Array.iter
      (fun (p : Prefix.t) ->
        if p.Prefix.asid < 0 || p.Prefix.asid >= n then
          raise (Bad (Printf.sprintf "prefix %d: AS %d out of range" p.Prefix.id p.Prefix.asid));
        if p.Prefix.city < 0 || p.Prefix.city >= n_cities then
          raise (Bad (Printf.sprintf "prefix %d: city %d out of range" p.Prefix.id p.Prefix.city)))
      snap.Snapshot.prefixes;
    let cong =
      Congestion.create Params.default snap.Snapshot.base
        ~seed:(snap.Snapshot.seed + 1)
    in
    List.iter
      (fun (l, ms) -> Congestion.add_event_delay_ms cong ~link_id:l ~ms)
      snap.Snapshot.overlays;
    let engine =
      try
        Engine.restore ~congestion:cong ~base:snap.Snapshot.base
          ~down:snap.Snapshot.down_links ~now:snap.Snapshot.now_min ()
      with Invalid_argument msg -> raise (Bad msg)
    in
    List.iter
      (fun (r : Snapshot.rib) ->
        let config = Announce.default ~origin:r.Snapshot.rib_origin in
        let state =
          try
            Propagate.of_rib_arrays ~topo:(Engine.topology engine) ~config
              ~cust:r.Snapshot.rib_cust ~peer:r.Snapshot.rib_peer
              ~prov:r.Snapshot.rib_prov
          with Invalid_argument msg ->
            raise
              (Bad
                 (Printf.sprintf "tracked origin %d: %s" r.Snapshot.rib_origin
                    msg))
        in
        Engine.track_state engine config ~state ~active:r.Snapshot.rib_active)
      snap.Snapshot.ribs;
    Script.schedule_all engine snap.Snapshot.pending;
    Ok
      {
        cfg = { cfg with seed = snap.Snapshot.seed };
        engine;
        cong;
        asid = snap.Snapshot.asid;
        pops = snap.Snapshot.pops;
        prefixes = snap.Snapshot.prefixes;
        session0 = fresh_session ();
        pop_index = None;
        queries = 0;
        stopped = false;
      }
  with Bad msg -> Error ("snapshot: " ^ msg)

let snapshot t =
  let base = Engine.base_topology t.engine in
  let overlays =
    Array.to_list (Topology.links base)
    |> List.filter_map (fun (l : Relation.link) ->
           let ms = Congestion.event_delay_ms t.cong ~link_id:l.Relation.id in
           if ms > 0. then Some (l.Relation.id, ms) else None)
  in
  {
    Snapshot.git_sha = Version.git_sha ();
    created_gen = Topology.generation base;
    seed = t.cfg.seed;
    now_min = Engine.now t.engine;
    base;
    down_links = Engine.down_links t.engine;
    asid = t.asid;
    pops = t.pops;
    prefixes = t.prefixes;
    ribs =
      Engine.tracked_prefixes t.engine
      |> List.map (fun (origin, active, state) ->
             let cust, peer, prov = Propagate.rib_arrays state in
             {
               Snapshot.rib_origin = origin;
               rib_active = active;
               rib_cust = cust;
               rib_peer = peer;
               rib_prov = prov;
             });
    pending = Engine.pending t.engine;
    overlays;
  }

(* ---- query answering --------------------------------------------------

   Every read-only verb is split into a PLAN step and a pure RUN
   thunk.  Planning runs on the coordinating domain in request order:
   it parses arguments and touches every piece of shared mutable
   state — the RIB cache via [state_for] / [pv_state], the
   lazily-built PoP index, the counters — capturing the resolved
   routing states in the thunk's closure.  The returned thunk only
   reads immutable data (walks, scans, formatting), so the concurrent
   executor can run it on any pool domain.  Because all cache traffic
   happens at plan time in request order, cache hit/miss counters and
   response bytes are identical at any domain count, and identical to
   the sequential loop. *)

let const r () = r

(* Warm state toward an origin: the engine's continuously-reconverged
   state for tracked origins, the RIB cache (exact memoized
   Propagate.run on the current topology) for everything else. *)
let state_for t ~origin =
  match Engine.routing t.engine ~origin with
  | s -> s
  | exception Not_found ->
      Rib_cache.run (Engine.topology t.engine) (Announce.default ~origin)

let prefix_of t s =
  match int_of_string_opt s with
  | Some id when id >= 0 && id < Array.length t.prefixes -> Ok t.prefixes.(id)
  | Some id ->
      Error
        (Printf.sprintf "unknown prefix %d (known: 0..%d)" id
           (Array.length t.prefixes - 1))
  | None -> Error ("not a prefix id: " ^ s)

let city_name m = World.cities.(m).City.name

(* The provider's client-to-PoP map: geographically nearest PoP, ties
   broken by PoP list order (deterministic; the list is persisted). *)
let nearest_pop t ~city =
  let c = World.cities.(city) in
  match t.pops with
  | [] -> invalid_arg "nearest_pop: no PoPs"
  | p0 :: rest ->
      let best = ref p0 and best_d = ref (City.distance_km c World.cities.(p0)) in
      List.iter
        (fun m ->
          let d = City.distance_km c World.cities.(m) in
          if d < !best_d then begin
            best := m;
            best_d := d
          end)
        rest;
      !best

let plan_catchment t arg =
  match prefix_of t arg with
  | Error e -> const (Error e)
  | Ok (p : Prefix.t) ->
      if p.Prefix.asid = t.asid then
        const
          (Error (Printf.sprintf "prefix %d sits in the provider AS" p.Prefix.id))
      else begin
        let st = state_for t ~origin:t.asid in
        fun () ->
          match
            Walk.from_metro st ~src:p.Prefix.asid ~start_metro:p.Prefix.city
          with
          | None ->
              Ok
                (Printf.sprintf "prefix=%d client_as=%d site=unreachable"
                   p.Prefix.id p.Prefix.asid)
          | Some w ->
              let m = Walk.entry_metro w in
              Ok
                (Printf.sprintf "prefix=%d client_as=%d site=%d site_city=%s"
                   p.Prefix.id p.Prefix.asid m (city_name m))
      end

(* Private peering beats public peering beats transit — the provider
   egress-preference order used throughout the paper. *)
let kind_rank = function
  | Relation.Peer_private -> 0
  | Relation.Peer_public -> 1
  | Relation.C2p -> 2

let best_received routes =
  List.sort
    (fun (a : Route.t) (b : Route.t) ->
      compare
        ( kind_rank a.Route.via_link.Relation.kind,
          a.Route.path_len,
          a.Route.via_link.Relation.id )
        ( kind_rank b.Route.via_link.Relation.kind,
          b.Route.path_len,
          b.Route.via_link.Relation.id ))
    routes
  |> function
  | [] -> None
  | r :: _ -> Some r

(* The client prefixes a PoP fronts (nearest-PoP assignment, in prefix
   table order).  A pure function of the immutable PoP list and prefix
   table, so it is computed once and memoized — EGRESS planning then
   touches exactly the prefixes it needs instead of re-scanning the
   whole population against every PoP. *)
let pop_prefixes t pop =
  let idx =
    match t.pop_index with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 64 in
        Array.iter
          (fun (p : Prefix.t) ->
            if p.Prefix.asid <> t.asid then begin
              let m = nearest_pop t ~city:p.Prefix.city in
              let cur =
                match Hashtbl.find_opt h m with Some l -> l | None -> []
              in
              Hashtbl.replace h m (p :: cur)
            end)
          t.prefixes;
        let ms = Hashtbl.fold (fun m _ acc -> m :: acc) h [] in
        List.iter (fun m -> Hashtbl.replace h m (List.rev (Hashtbl.find h m))) ms;
        t.pop_index <- Some h;
        h
  in
  match Hashtbl.find_opt idx pop with Some l -> l | None -> []

let plan_egress t pop =
  if not (List.mem pop t.pops) then
    const (Error (Printf.sprintf "unknown pop %d (not a provider PoP metro)" pop))
  else begin
    (* Resolve the per-prefix states now, in prefix order — the same
       cache access order the pre-index scan performed. *)
    let states =
      List.map
        (fun (p : Prefix.t) -> state_for t ~origin:p.Prefix.asid)
        (pop_prefixes t pop)
    in
    fun () ->
      let total = ref 0
      and priv = ref 0
      and pub = ref 0
      and transit = ref 0
      and unreachable = ref 0 in
      List.iter
        (fun st ->
          incr total;
          match best_received (Propagate.received_at_metro st t.asid ~metro:pop)
          with
          | None -> incr unreachable
          | Some r -> (
              match r.Route.via_link.Relation.kind with
              | Relation.Peer_private -> incr priv
              | Relation.Peer_public -> incr pub
              | Relation.C2p -> incr transit))
        states;
      Ok
        (Printf.sprintf
           "pop=%d city=%s prefixes=%d private=%d public=%d transit=%d \
            unreachable=%d"
           pop (city_name pop) !total !priv !pub !transit !unreachable)
  end

let origin_of t arg =
  match String.lowercase_ascii arg with
  | "anycast" -> Ok t.asid
  | _ -> (
      match int_of_string_opt arg with
      | Some o
        when List.exists
               (fun (og, _, _) -> og = o)
               (Engine.tracked_prefixes t.engine) ->
          Ok o
      | Some o ->
          Error
            (Printf.sprintf
               "origin %d is not tracked (use 'anycast' or a tracked origin AS)"
               o)
      | None -> Error ("not an origin: " ^ arg))

let plan_rtt t client arg =
  match prefix_of t client with
  | Error e -> const (Error e)
  | Ok (p : Prefix.t) -> (
      match origin_of t arg with
      | Error e -> const (Error e)
      | Ok origin ->
          if p.Prefix.asid = origin then
            const
              (Error
                 (Printf.sprintf "client prefix %d sits in origin AS %d"
                    p.Prefix.id origin))
          else begin
            let st = state_for t ~origin in
            fun () ->
              match
                Walk.from_metro st ~src:p.Prefix.asid ~start_metro:p.Prefix.city
              with
              | None ->
                  Ok
                    (Printf.sprintf "client=%d origin=%d rtt=unreachable"
                       p.Prefix.id origin)
              | Some w ->
                  let flow =
                    Rtt.make_flow
                      ~access:(Congestion.Access p.Prefix.id)
                      ~terminal:Propagation.At_entry w
                  in
                  let floor =
                    Rtt.floor_ms (Congestion.params t.cong)
                      (Engine.topology t.engine) t.cong flow
                  in
                  let churn =
                    List.fold_left
                      (fun acc (h : Walk.hop) ->
                        acc
                        +. Congestion.event_delay_ms t.cong
                             ~link_id:h.Walk.link.Relation.id)
                      0. w.Walk.hops
                  in
                  Ok
                    (Printf.sprintf
                       "client=%d origin=%d floor_ms=%.3f churn_ms=%.3f \
                        rtt_ms=%.3f"
                       p.Prefix.id origin floor churn (floor +. churn))
          end)

(* ---- EXPLAIN: the decision chain behind a routing outcome ------------- *)

module Decision = Netsim_bgp.Decision

(* Provenance state toward an origin.  Always recomputed on the
   current topology (via the RIB cache, which upgrades plain cached
   entries in place): warm engine states loaded from a snapshot carry
   no arena, and recomputation is what makes seed-built and
   snapshot-loaded daemons answer EXPLAIN byte-identically. *)
let pv_state t ~origin =
  Rib_cache.run ~provenance:true (Engine.topology t.engine)
    (Announce.default ~origin)

(* The prefix argument names the destination: "anycast" for the
   provider's prefix, or a client prefix id for its origin AS. *)
let explain_origin t arg =
  match String.lowercase_ascii arg with
  | "anycast" -> Ok (t.asid, "anycast")
  | _ ->
      Result.bind (prefix_of t arg) (fun (p : Prefix.t) ->
          Ok (p.Prefix.asid, string_of_int p.Prefix.id))

let phase_name = function
  | Route.Customer -> "customer (Gao-Rexford phase 1)"
  | Route.Peer -> "peer (Gao-Rexford phase 2)"
  | Route.Provider -> "provider (Gao-Rexford phase 3)"

let floor_of_walk t w =
  let flow = Rtt.make_flow ~terminal:Propagation.At_entry w in
  Rtt.floor_ms (Congestion.params t.cong) (Engine.topology t.engine) t.cong
    flow

(* The latency-optimal counterfactual (the paper's Fig. 1 gap, per
   AS): rate every received announcement by its deterministic RTT
   floor over the same walk model, and report what separates BGP's
   choice from the fastest alternative. *)
let counterfactual t st a (d : Propagate.decision) =
  let rated =
    List.filter_map
      (fun (r : Route.t) ->
        match Walk.of_route st ~src:a ~route:r with
        | None -> None
        | Some w -> Some (r, floor_of_walk t w))
      (Propagate.received st a)
  in
  let chosen =
    List.find_opt
      (fun ((r : Route.t), _) ->
        r.Route.klass = d.Propagate.d_klass
        && r.Route.next_hop = d.Propagate.d_next_hop
        && r.Route.via_link.Relation.id = d.Propagate.d_link_id)
      rated
  in
  match chosen with
  | None -> "counterfactual: unavailable (chosen route has no walk)"
  | Some ((chosen_r, chosen_ms) as c) ->
      let best =
        List.fold_left
          (fun ((_, bms) as b) ((_, ms) as cand) ->
            if ms < bms then cand else b)
          c rated
      in
      let best_r, best_ms = best in
      if best_r == chosen_r then
        Printf.sprintf
          "counterfactual: chosen route is latency-optimal \
           (floor_ms=%.3f, %d alternatives)"
          chosen_ms
          (List.length rated - 1)
      else
        Printf.sprintf
          "counterfactual: chosen_ms=%.3f best_ms=%.3f delta_ms=%.3f \
           best_class=%s best_next_hop=%d best_link=%d separated_by=%s"
          chosen_ms best_ms (chosen_ms -. best_ms)
          (Route.klass_to_string best_r.Route.klass)
          best_r.Route.next_hop best_r.Route.via_link.Relation.id
          (Decision.discriminator_to_string
             (Decision.discriminator Decision.gao_rexford chosen_r best_r))

let explain_text t st ~origin ~plabel a =
  let header = Printf.sprintf "explain prefix=%s origin_as=%d as=%d" plabel origin a in
  match Propagate.decision st a with
  | None -> header ^ "\nselected: unreachable (no candidate routes)"
  | Some d ->
      let path =
        Propagate.as_path st a |> List.map string_of_int |> String.concat " "
      in
      let runner =
        match d.Propagate.d_runner with
        | None -> "runner-up: none (only candidate)"
        | Some r ->
            Printf.sprintf "runner-up: class=%s next_hop=%d link=%d len=%d"
              (Route.klass_to_string r.Propagate.r_klass)
              r.Propagate.r_next_hop r.Propagate.r_link_id r.Propagate.r_path_len
      in
      String.concat "\n"
        [
          header;
          Printf.sprintf "selected: class=%s next_hop=%d link=%d len=%d path=[%s]"
            (Route.klass_to_string d.Propagate.d_klass)
            d.Propagate.d_next_hop d.Propagate.d_link_id d.Propagate.d_path_len
            path;
          "phase: " ^ phase_name d.Propagate.d_klass;
          Printf.sprintf "candidates: customer=%d peer=%d provider=%d total=%d"
            d.Propagate.d_cand_cust d.Propagate.d_cand_peer
            d.Propagate.d_cand_prov
            (d.Propagate.d_cand_cust + d.Propagate.d_cand_peer
           + d.Propagate.d_cand_prov);
          "tie-break: "
          ^ Netsim_obs.Provenance.rule_to_string d.Propagate.d_rule;
          runner;
          counterfactual t st a d;
        ]

let plan_explain t parg aarg =
  match explain_origin t parg with
  | Error e -> const (Error e)
  | Ok (origin, plabel) -> (
      let n = Topology.as_count (Engine.topology t.engine) in
      match int_of_string_opt aarg with
      | None -> const (Error ("not an AS id: " ^ aarg))
      | Some a when a < 0 || a >= n ->
          const (Error (Printf.sprintf "AS %d out of range (0..%d)" a (n - 1)))
      | Some a when a = origin ->
          const (Error (Printf.sprintf "AS %d is the origin itself" a))
      | Some a ->
          let st = pv_state t ~origin in
          fun () -> Ok (explain_text t st ~origin ~plabel a))

let explain t parg aarg = plan_explain t parg aarg ()

(* Schema-tagged JSONL dump of the whole provenance table toward one
   origin: a header line, then one object per decided AS. *)
let provenance_jsonl t ~origin =
  let st = pv_state t ~origin in
  let n = Topology.as_count (Engine.topology t.engine) in
  let b = Buffer.create (n * 96) in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%S,\"origin_as\":%d,\"as_count\":%d}\n"
       Netsim_obs.Provenance.schema origin n);
  for x = 0 to n - 1 do
    match Propagate.decision st x with
    | None -> ()
    | Some d ->
        let runner =
          match d.Propagate.d_runner with
          | None -> "null"
          | Some r ->
              Printf.sprintf
                "{\"class\":%S,\"next_hop\":%d,\"link\":%d,\"len\":%d}"
                (Route.klass_to_string r.Propagate.r_klass)
                r.Propagate.r_next_hop r.Propagate.r_link_id
                r.Propagate.r_path_len
        in
        Buffer.add_string b
          (Printf.sprintf
             "{\"as\":%d,\"class\":%S,\"next_hop\":%d,\"link\":%d,\"len\":%d,\
              \"cand_cust\":%d,\"cand_peer\":%d,\"cand_prov\":%d,\
              \"rule\":%S,\"runner\":%s}\n"
             x
             (Route.klass_to_string d.Propagate.d_klass)
             d.Propagate.d_next_hop d.Propagate.d_link_id
             d.Propagate.d_path_len d.Propagate.d_cand_cust
             d.Propagate.d_cand_peer d.Propagate.d_cand_prov
             (Netsim_obs.Provenance.rule_to_string d.Propagate.d_rule)
             runner)
  done;
  Buffer.contents b

(* Only fields that are a deterministic function of (seed, request
   sequence) — so a seed-built and a snapshot-loaded server answer
   STATS byte-identically to the same request stream.  Query counters
   are the session's own: a concurrently-served client reads the same
   STATS it would read served alone. *)
let stats t (s : session) =
  let topo = Engine.topology t.engine in
  let c = s.s_counts in
  Ok
    (String.concat "\n"
       [
         Printf.sprintf "server seed=%d snapshot_schema=%d" t.cfg.seed
           Snapshot.schema_version;
         Printf.sprintf "topology ases=%d links=%d down=%d"
           (Topology.as_count topo) (Topology.link_count topo)
           (List.length (Engine.down_links t.engine));
         Printf.sprintf "engine now_min=%.3f tracked=%d pending=%d"
           (Engine.now t.engine)
           (List.length (Engine.tracked_prefixes t.engine))
           (List.length (Engine.pending t.engine));
         Printf.sprintf "population prefixes=%d pops=%d"
           (Array.length t.prefixes) (List.length t.pops);
         Printf.sprintf
           "queries total=%d catchment=%d egress=%d rtt=%d explain=%d \
            stats=%d snapshot=%d prom=%d advance=%d quit=%d invalid=%d"
           s.s_queries c.q_catchment c.q_egress c.q_rtt c.q_explain c.q_stats
           c.q_snapshot c.q_prom c.q_advance c.q_quit c.q_invalid;
         Printf.sprintf "rib_cache hits=%d misses=%d size=%d" (Rib_cache.hits ())
           (Rib_cache.misses ()) (Rib_cache.size ());
       ])

(* Step the churn engine and leave a flight-recorder trace: ADVANCE
   was the one verb whose state change produced no recorder event, so
   a trace could not distinguish "no churn scheduled" from "never
   advanced".  Wall-clock ns only under the timing gate, mirroring the
   bgp.reconverge site, so default traces stay deterministic. *)
let advance t minutes =
  let before = Engine.events_processed t.engine in
  let t0 = if Recorder.timing () then Unix.gettimeofday () else 0. in
  Engine.run t.engine ~until:(Engine.now t.engine +. minutes);
  if Recorder.enabled () then begin
    let fields =
      Recorder.
        [
          I ("events", Engine.events_processed t.engine - before);
          F ("minutes", minutes);
          F ("t_min", Engine.now t.engine);
        ]
    in
    let fields =
      if Recorder.timing () then
        fields
        @ [ Recorder.I ("ns", int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)) ]
      else fields
    in
    Recorder.record ~kind:"serve.advance" fields
  end

(* Write-barrier verbs: executed on the coordinating domain, never
   with reads in flight. *)
let exec_mutation t (req : Protocol.request) =
  match req with
  | Protocol.Snapshot_to path -> (
      try
        Snapshot.save (snapshot t) ~path;
        Ok ("snapshot written to " ^ path)
      with Sys_error e -> Error e)
  | Protocol.Advance minutes ->
      advance t minutes;
      Ok (Printf.sprintf "now_min=%.3f" (Engine.now t.engine))
  | Protocol.Quit -> Ok "bye"
  | Protocol.Catchment _ | Protocol.Egress _ | Protocol.Rtt _
  | Protocol.Explain _ | Protocol.Stats | Protocol.Prom ->
      assert false

let plan_read t (s : session) (req : Protocol.request) =
  match req with
  | Protocol.Catchment arg -> plan_catchment t arg
  | Protocol.Egress pop -> plan_egress t pop
  | Protocol.Rtt (client, origin) -> plan_rtt t client origin
  | Protocol.Explain (prefix, asn) -> plan_explain t prefix asn
  | Protocol.Stats -> const (stats t s)
  | Protocol.Prom ->
      (* The Prometheus exposition reads the whole registry, which
         pool workers may not touch concurrently — so it is rendered
         at plan time on the coordinating domain. *)
      const (Ok (Netsim_obs.Export_prom.to_string ()))
  | Protocol.Snapshot_to _ | Protocol.Advance _ | Protocol.Quit -> assert false

let handle t (req : Protocol.request) =
  if Protocol.read_only req then plan_read t t.session0 req ()
  else exec_mutation t req

(* ---- the request loop ------------------------------------------------- *)

let count_verb c = function
  | "catchment" -> c.q_catchment <- c.q_catchment + 1
  | "egress" -> c.q_egress <- c.q_egress + 1
  | "rtt" -> c.q_rtt <- c.q_rtt + 1
  | "explain" -> c.q_explain <- c.q_explain + 1
  | "stats" -> c.q_stats <- c.q_stats + 1
  | "snapshot" -> c.q_snapshot <- c.q_snapshot + 1
  | "prom" -> c.q_prom <- c.q_prom + 1
  | "advance" -> c.q_advance <- c.q_advance + 1
  | "quit" -> c.q_quit <- c.q_quit + 1
  | _ -> c.q_invalid <- c.q_invalid + 1

let c_requests = Metrics.counter "serve.requests"
let c_errors = Metrics.counter "serve.errors"
let c_sessions = Metrics.counter "serve.sessions"
let c_rounds = Metrics.counter "serve.rounds"
let h_round_reads = Metrics.histogram "serve.round.reads"

let new_session () =
  Metrics.incr c_sessions;
  fresh_session ()

let record_query t ~q ~verb ~ok =
  if Recorder.enabled () then
    Recorder.(
      record ~kind:"serve.query"
        [
          I ("q", q);
          S ("verb", verb);
          S ("status", (if ok then "ok" else "err"));
          F ("t_min", Engine.now t.engine);
        ])

(* A planned request: everything needed to execute, frame and meter it
   away from the shared state. *)
type work = {
  w_q : int;  (** global query number, assigned at plan time *)
  w_verb : string;
  w_timed : bool;  (** false only for unparseable lines *)
  w_run : unit -> (string, string) result;
}

type ingested =
  | Read of work  (** safe on any pool domain *)
  | Barrier of work
      (** must run on the coordinating domain with no reads in flight *)

(* Parse, count and plan one line for a session. *)
let ingest t (s : session) line =
  t.queries <- t.queries + 1;
  s.s_queries <- s.s_queries + 1;
  Metrics.incr c_requests;
  let q = t.queries in
  match Protocol.parse line with
  | Error e ->
      s.s_counts.q_invalid <- s.s_counts.q_invalid + 1;
      Read { w_q = q; w_verb = "invalid"; w_timed = false; w_run = const (Error e) }
  | Ok req ->
      let verb = Protocol.verb req in
      count_verb s.s_counts verb;
      if Protocol.read_only req then
        let run =
          try plan_read t s req
          with exn ->
            const
              (Error
                 (Printf.sprintf "internal error: %s" (Printexc.to_string exn)))
        in
        Read { w_q = q; w_verb = verb; w_timed = true; w_run = run }
      else
        Barrier
          {
            w_q = q;
            w_verb = verb;
            w_timed = true;
            w_run = (fun () -> exec_mutation t req);
          }

(* Execute a planned work item, then meter, record and frame.  Returns
   the framed response and the wall-clock microseconds. *)
let run_work t (w : work) =
  let t0 = Unix.gettimeofday () in
  let result =
    try w.w_run ()
    with exn ->
      Error (Printf.sprintf "internal error: %s" (Printexc.to_string exn))
  in
  let us = (Unix.gettimeofday () -. t0) *. 1e6 in
  if w.w_timed && Metrics.enabled () then begin
    Metrics.incr (Metrics.counter ("serve.query." ^ w.w_verb));
    Metrics.observe (Metrics.histogram ("serve." ^ w.w_verb ^ ".us")) us
  end;
  match result with
  | Ok body ->
      record_query t ~q:w.w_q ~verb:w.w_verb ~ok:true;
      (Protocol.frame ~ok:true body, us)
  | Error e ->
      Metrics.incr c_errors;
      record_query t ~q:w.w_q ~verb:w.w_verb ~ok:false;
      (Protocol.frame ~ok:false e, us)

(* Sequential path: plan and run immediately.  Byte-for-byte the
   behaviour of the pre-concurrency request loop. *)
let session_line t (s : session) line =
  let framed =
    match ingest t s line with
    | Read w -> fst (run_work t w)
    | Barrier w ->
        let framed, _ = run_work t w in
        if w.w_verb = "quit" then begin
          s.s_stopped <- true;
          t.stopped <- true
        end;
        framed
  in
  (* Churn advances on request-count boundaries, never wall clock, so
     the response stream is a pure function of the request stream. *)
  if t.cfg.batch > 0 && s.s_queries mod t.cfg.batch = 0 then
    advance t t.cfg.batch_minutes;
  (framed, not s.s_stopped)

let handle_line t line = session_line t t.session0 line

let serve_channels t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let resp, cont = handle_line t line in
        output_string oc resp;
        flush oc;
        if cont then loop ()
  in
  loop ()

(* ---- the concurrent executor ------------------------------------------

   [run_round] executes one scheduling round over a set of client
   sessions.  PLAN: each session's pending lines are ingested in
   session order, stopping at a write-barrier verb (ADVANCE, SNAPSHOT,
   QUIT), at a churn batch boundary, or at the chunk cap.  EXECUTE:
   all planned reads of the round are fanned out over the domain pool
   in one [Pool.map] — plan order is submission order, so per-task
   metrics and recorder events absorb in plan order and the registry
   is byte-identical at any domain count.  BARRIER: each session's
   pending mutation (and batch-boundary advance) then runs on the
   coordinating domain, in session order, with no reads in flight.

   The produced interleaving is serializable as "[all round reads]
   [mutations in session order]": reads of a round see the
   pre-mutation state, exactly as if their session had been served
   alone up to that point.  Responses per session are therefore
   byte-identical to the sequential loop — the property the QCheck
   suite and `make verify` enforce across domain counts. *)

let max_round_chunk = 32

let run_round ?on_latency t (sessions : session array) ~pull ~deliver =
  let n = Array.length sessions in
  let reads = ref [] and n_reads = ref 0 in
  let barriers = Array.make n None in
  let boundary = Array.make n false in
  let progressed = ref false in
  for i = 0 to n - 1 do
    let s = sessions.(i) in
    let stop = ref s.s_stopped in
    let chunk = ref 0 in
    while not !stop do
      if !chunk >= max_round_chunk then stop := true
      else
        match pull i with
        | None -> stop := true
        | Some line ->
            progressed := true;
            incr chunk;
            (match ingest t s line with
            | Read w ->
                reads := (i, w) :: !reads;
                incr n_reads
            | Barrier w ->
                barriers.(i) <- Some w;
                stop := true);
            if t.cfg.batch > 0 && s.s_queries mod t.cfg.batch = 0 then begin
              boundary.(i) <- true;
              stop := true
            end
    done
  done;
  if !progressed then begin
    Metrics.incr c_rounds;
    if Metrics.enabled () then
      Metrics.observe h_round_reads (float_of_int !n_reads)
  end;
  let reads = Array.of_list (List.rev !reads) in
  let results = Pool.map (fun ((_, w) : int * work) -> run_work t w) reads in
  Array.iteri
    (fun k ((i, _) : int * work) ->
      let framed, us = results.(k) in
      (match on_latency with Some f -> f i us | None -> ());
      deliver i framed)
    reads;
  for i = 0 to n - 1 do
    (match barriers.(i) with
    | Some w ->
        let framed, us = run_work t w in
        (match on_latency with Some f -> f i us | None -> ());
        deliver i framed;
        if w.w_verb = "quit" then begin
          sessions.(i).s_stopped <- true;
          t.stopped <- true
        end
    | None -> ());
    if boundary.(i) then advance t t.cfg.batch_minutes
  done;
  !progressed

let serve_streams ?on_latency t streams =
  let n = Array.length streams in
  let sessions = Array.init n (fun _ -> new_session ()) in
  let remaining = Array.map (fun l -> ref l) streams in
  let out = Array.make n [] in
  let pull i =
    match !(remaining.(i)) with
    | [] -> None
    | line :: rest ->
        remaining.(i) := rest;
        Some line
  in
  let deliver i framed = out.(i) <- framed :: out.(i) in
  while run_round ?on_latency t sessions ~pull ~deliver do
    ()
  done;
  Array.map List.rev out

(* ---- TCP listener ----------------------------------------------------- *)

let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

(* Per-connection state: raw bytes in, complete request lines queued,
   framed responses out (written incrementally under O_NONBLOCK so one
   stalled client cannot wedge the daemon). *)
type conn = {
  c_fd : Unix.file_descr;
  c_session : session;
  c_rbuf : Buffer.t;
  c_lines : string Queue.t;
  c_outq : string Queue.t;
  mutable c_out_off : int;
      (** bytes of [Queue.peek c_outq] already written *)
  mutable c_eof : bool;
  mutable c_dead : bool;
}

(* A peer that sends this much without a newline is not speaking the
   protocol; drop it rather than buffer unboundedly. *)
let max_buffered_input = 1 lsl 20

let conn_of_fd fd =
  Unix.set_nonblock fd;
  {
    c_fd = fd;
    c_session = new_session ();
    c_rbuf = Buffer.create 256;
    c_lines = Queue.create ();
    c_outq = Queue.create ();
    c_out_off = 0;
    c_eof = false;
    c_dead = false;
  }

let split_lines c =
  let data = Buffer.contents c.c_rbuf in
  let n = String.length data in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from data !start '\n' in
       Queue.push (String.sub data !start (i - !start)) c.c_lines;
       start := i + 1
     done
   with Not_found -> ());
  if !start > 0 then begin
    Buffer.clear c.c_rbuf;
    Buffer.add_substring c.c_rbuf data !start (n - !start)
  end;
  if Buffer.length c.c_rbuf > max_buffered_input then c.c_dead <- true

let read_conn c =
  let buf = Bytes.create 65536 in
  match Unix.read c.c_fd buf 0 (Bytes.length buf) with
  | 0 -> c.c_eof <- true
  | n ->
      Buffer.add_subbytes c.c_rbuf buf 0 n;
      split_lines c
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error _ -> c.c_dead <- true

let rec flush_conn c =
  if (not c.c_dead) && not (Queue.is_empty c.c_outq) then begin
    let s = Queue.peek c.c_outq in
    match
      Unix.single_write_substring c.c_fd s c.c_out_off
        (String.length s - c.c_out_off)
    with
    | written ->
        if c.c_out_off + written = String.length s then begin
          ignore (Queue.pop c.c_outq);
          c.c_out_off <- 0;
          flush_conn c
        end
        else c.c_out_off <- c.c_out_off + written
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush_conn c
    | exception Unix.Unix_error _ ->
        (* EPIPE, ECONNRESET, ...: the peer is gone. *)
        c.c_dead <- true
  end

(* Finished: beyond help, or owed nothing more (a stopped session
   discards any input queued after its QUIT). *)
let conn_finished c =
  c.c_dead
  || (c.c_session.s_stopped && Queue.is_empty c.c_outq)
  || (c.c_eof && Queue.is_empty c.c_lines && Queue.is_empty c.c_outq)

let listen ?port_ready t ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  (match port_ready with
  | Some f -> (
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> f p
      | Unix.ADDR_UNIX _ -> ())
  | None -> ());
  let conns = ref [] in
  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      close_fd sock;
      List.iter (fun c -> close_fd c.c_fd) !conns)
    (fun () ->
      (* QUIT stops accepting; the daemon exits once the remaining
         connections have drained. *)
      while not (t.stopped && !conns = []) do
        let accepting = not t.stopped in
        let rset =
          (if accepting then [ sock ] else [])
          @ List.filter_map
              (fun c ->
                if c.c_dead || c.c_eof || c.c_session.s_stopped then None
                else Some c.c_fd)
              !conns
        in
        let wset =
          List.filter_map
            (fun c ->
              if (not c.c_dead) && not (Queue.is_empty c.c_outq) then
                Some c.c_fd
              else None)
            !conns
        in
        (* Lines already queued (chunk cap, or a just-passed barrier)
           must be served without waiting for new IO. *)
        let backlog =
          List.exists
            (fun c ->
              (not c.c_dead)
              && (not c.c_session.s_stopped)
              && not (Queue.is_empty c.c_lines))
            !conns
        in
        let r, _, _ =
          if rset = [] && wset = [] && not backlog then ([], [], [])
          else
            retry_eintr (fun () ->
                Unix.select rset wset [] (if backlog then 0. else -1.))
        in
        (if List.mem sock r then
           match retry_eintr (fun () -> Unix.accept sock) with
           | fd, _ -> conns := !conns @ [ conn_of_fd fd ]
           | exception Unix.Unix_error _ -> ());
        List.iter (fun c -> if List.mem c.c_fd r then read_conn c) !conns;
        (* One scheduling round over the live connections, accept
           order. *)
        let cs = Array.of_list !conns in
        let sessions = Array.map (fun c -> c.c_session) cs in
        let pull i =
          let c = cs.(i) in
          if c.c_dead || Queue.is_empty c.c_lines then None
          else Some (Queue.pop c.c_lines)
        in
        let deliver i framed =
          let c = cs.(i) in
          if not c.c_dead then Queue.push framed c.c_outq
        in
        ignore (run_round t sessions ~pull ~deliver : bool);
        if t.stopped then
          List.iter (fun c -> c.c_session.s_stopped <- true) !conns;
        List.iter flush_conn !conns;
        conns :=
          List.filter
            (fun c ->
              if conn_finished c then begin
                close_fd c.c_fd;
                false
              end
              else true)
            !conns;
        Metrics.set_runtime "serve.clients.active"
          (float_of_int (List.length !conns))
      done)

let provider t = t.asid
let pops t = t.pops
let prefixes t = t.prefixes
let engine t = t.engine
let queries t = t.queries
