module Sm = Netsim_prng.Splitmix
module Generator = Netsim_topo.Generator
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Walk = Netsim_bgp.Walk
module Route = Netsim_bgp.Route
module Deployment = Netsim_cdn.Deployment
module Population = Netsim_traffic.Population
module Prefix = Netsim_traffic.Prefix
module Congestion = Netsim_latency.Congestion
module Params = Netsim_latency.Params
module Propagation = Netsim_latency.Propagation
module Rtt = Netsim_latency.Rtt
module World = Netsim_geo.World
module City = Netsim_geo.City
module Engine = Netsim_dynamics.Engine
module Script = Netsim_dynamics.Script
module Metrics = Netsim_obs.Metrics
module Recorder = Netsim_obs.Recorder
module Scenario = Beatbgp.Scenario

type config = {
  seed : int;
  base_params : Generator.params;
  n_prefixes : int;
  pop_count : int;
  track : int;
  churn : bool;
  churn_days : int;
  batch : int;
  batch_minutes : float;
}

let config_of_sizes (s : Scenario.sizes) ~pop_count ~track =
  {
    seed = s.Scenario.seed;
    base_params = s.Scenario.base;
    n_prefixes = s.Scenario.n_prefixes;
    pop_count;
    track;
    churn = false;
    churn_days = max 1 (int_of_float s.Scenario.days);
    batch = 16;
    batch_minutes = 15.;
  }

let default_config = config_of_sizes Scenario.default_sizes ~pop_count:40 ~track:8
let small_config = config_of_sizes Scenario.test_sizes ~pop_count:12 ~track:4

type counts = {
  mutable q_catchment : int;
  mutable q_egress : int;
  mutable q_rtt : int;
  mutable q_explain : int;
  mutable q_stats : int;
  mutable q_snapshot : int;
  mutable q_prom : int;
  mutable q_advance : int;
  mutable q_quit : int;
  mutable q_invalid : int;
}

let zero_counts () =
  {
    q_catchment = 0;
    q_egress = 0;
    q_rtt = 0;
    q_explain = 0;
    q_stats = 0;
    q_snapshot = 0;
    q_prom = 0;
    q_advance = 0;
    q_quit = 0;
    q_invalid = 0;
  }

type t = {
  cfg : config;
  engine : Engine.t;
  cong : Congestion.t;
  asid : int;
  pops : int list;
  prefixes : Prefix.t array;
  counts : counts;
  mutable queries : int;
  mutable stopped : bool;
}

(* ---- construction ----------------------------------------------------- *)

let schedule_churn cfg ~root ~topo engine =
  let link_ids = Array.init (Topology.link_count topo) (fun i -> i) in
  Script.schedule_all engine
    (Script.flaps
       (Sm.of_label root "serve.flaps")
       ~link_ids ~mean_interval_min:120. ~mean_down_min:15. ~days:cfg.churn_days);
  Script.schedule_all engine
    (Script.congestion_bursts
       (Sm.of_label root "serve.bursts")
       ~link_ids ~mean_interval_min:90. ~median_extra_ms:30. ~sigma:0.6
       ~mean_duration_min:45. ~days:cfg.churn_days)

(* The first [track] distinct client ASes in prefix order. *)
let client_origins cfg prefixes =
  let seen = Hashtbl.create 64 and acc = ref [] in
  Array.iter
    (fun (p : Prefix.t) ->
      if Hashtbl.length seen < cfg.track && not (Hashtbl.mem seen p.Prefix.asid)
      then begin
        Hashtbl.add seen p.Prefix.asid ();
        acc := p.Prefix.asid :: !acc
      end)
    prefixes;
  List.rev !acc

let build cfg =
  let root = Sm.create cfg.seed in
  let base =
    Generator.generate { cfg.base_params with Generator.seed = cfg.seed }
  in
  let spec =
    Deployment.default_spec ~name:"CONTENT"
      ~pop_metros:(Scenario.spread_metros cfg.pop_count)
  in
  let deployment = Deployment.deploy base ~rng:(Sm.of_label root "deploy") spec in
  let topo = deployment.Deployment.topo in
  let prefixes =
    Population.generate topo
      ~rng:(Sm.of_label root "population")
      ~n_prefixes:cfg.n_prefixes
  in
  let cong = Congestion.create Params.default topo ~seed:(cfg.seed + 1) in
  let engine = Engine.create ~congestion:cong topo in
  Engine.track engine (Announce.default ~origin:deployment.Deployment.asid);
  List.iter
    (fun origin -> Engine.track engine (Announce.default ~origin))
    (client_origins cfg prefixes);
  if cfg.churn then schedule_churn cfg ~root ~topo engine;
  {
    cfg;
    engine;
    cong;
    asid = deployment.Deployment.asid;
    pops = deployment.Deployment.pops;
    prefixes;
    counts = zero_counts ();
    queries = 0;
    stopped = false;
  }

exception Bad of string

let of_snapshot cfg (snap : Snapshot.t) =
  try
    let n = Topology.as_count snap.Snapshot.base in
    let n_cities = Array.length World.cities in
    if snap.Snapshot.asid < 0 || snap.Snapshot.asid >= n then
      raise (Bad (Printf.sprintf "provider AS %d out of range" snap.Snapshot.asid));
    List.iter
      (fun m ->
        if m < 0 || m >= n_cities then
          raise (Bad (Printf.sprintf "PoP metro %d out of range" m)))
      snap.Snapshot.pops;
    Array.iter
      (fun (p : Prefix.t) ->
        if p.Prefix.asid < 0 || p.Prefix.asid >= n then
          raise (Bad (Printf.sprintf "prefix %d: AS %d out of range" p.Prefix.id p.Prefix.asid));
        if p.Prefix.city < 0 || p.Prefix.city >= n_cities then
          raise (Bad (Printf.sprintf "prefix %d: city %d out of range" p.Prefix.id p.Prefix.city)))
      snap.Snapshot.prefixes;
    let cong =
      Congestion.create Params.default snap.Snapshot.base
        ~seed:(snap.Snapshot.seed + 1)
    in
    List.iter
      (fun (l, ms) -> Congestion.add_event_delay_ms cong ~link_id:l ~ms)
      snap.Snapshot.overlays;
    let engine =
      try
        Engine.restore ~congestion:cong ~base:snap.Snapshot.base
          ~down:snap.Snapshot.down_links ~now:snap.Snapshot.now_min ()
      with Invalid_argument msg -> raise (Bad msg)
    in
    List.iter
      (fun (r : Snapshot.rib) ->
        let config = Announce.default ~origin:r.Snapshot.rib_origin in
        let state =
          try
            Propagate.of_rib_arrays ~topo:(Engine.topology engine) ~config
              ~cust:r.Snapshot.rib_cust ~peer:r.Snapshot.rib_peer
              ~prov:r.Snapshot.rib_prov
          with Invalid_argument msg ->
            raise
              (Bad
                 (Printf.sprintf "tracked origin %d: %s" r.Snapshot.rib_origin
                    msg))
        in
        Engine.track_state engine config ~state ~active:r.Snapshot.rib_active)
      snap.Snapshot.ribs;
    Script.schedule_all engine snap.Snapshot.pending;
    Ok
      {
        cfg = { cfg with seed = snap.Snapshot.seed };
        engine;
        cong;
        asid = snap.Snapshot.asid;
        pops = snap.Snapshot.pops;
        prefixes = snap.Snapshot.prefixes;
        counts = zero_counts ();
        queries = 0;
        stopped = false;
      }
  with Bad msg -> Error ("snapshot: " ^ msg)

let snapshot t =
  let base = Engine.base_topology t.engine in
  let overlays =
    Array.to_list (Topology.links base)
    |> List.filter_map (fun (l : Relation.link) ->
           let ms = Congestion.event_delay_ms t.cong ~link_id:l.Relation.id in
           if ms > 0. then Some (l.Relation.id, ms) else None)
  in
  {
    Snapshot.git_sha = Version.git_sha ();
    created_gen = Topology.generation base;
    seed = t.cfg.seed;
    now_min = Engine.now t.engine;
    base;
    down_links = Engine.down_links t.engine;
    asid = t.asid;
    pops = t.pops;
    prefixes = t.prefixes;
    ribs =
      Engine.tracked_prefixes t.engine
      |> List.map (fun (origin, active, state) ->
             let cust, peer, prov = Propagate.rib_arrays state in
             {
               Snapshot.rib_origin = origin;
               rib_active = active;
               rib_cust = cust;
               rib_peer = peer;
               rib_prov = prov;
             });
    pending = Engine.pending t.engine;
    overlays;
  }

(* ---- query answering -------------------------------------------------- *)

(* Warm state toward an origin: the engine's continuously-reconverged
   state for tracked origins, the RIB cache (exact memoized
   Propagate.run on the current topology) for everything else. *)
let state_for t ~origin =
  match Engine.routing t.engine ~origin with
  | s -> s
  | exception Not_found ->
      Rib_cache.run (Engine.topology t.engine) (Announce.default ~origin)

let prefix_of t s =
  match int_of_string_opt s with
  | Some id when id >= 0 && id < Array.length t.prefixes -> Ok t.prefixes.(id)
  | Some id ->
      Error
        (Printf.sprintf "unknown prefix %d (known: 0..%d)" id
           (Array.length t.prefixes - 1))
  | None -> Error ("not a prefix id: " ^ s)

let city_name m = World.cities.(m).City.name

(* The provider's client-to-PoP map: geographically nearest PoP, ties
   broken by PoP list order (deterministic; the list is persisted). *)
let nearest_pop t ~city =
  let c = World.cities.(city) in
  match t.pops with
  | [] -> invalid_arg "nearest_pop: no PoPs"
  | p0 :: rest ->
      let best = ref p0 and best_d = ref (City.distance_km c World.cities.(p0)) in
      List.iter
        (fun m ->
          let d = City.distance_km c World.cities.(m) in
          if d < !best_d then begin
            best := m;
            best_d := d
          end)
        rest;
      !best

let catchment t arg =
  Result.bind (prefix_of t arg) (fun (p : Prefix.t) ->
      if p.Prefix.asid = t.asid then
        Error (Printf.sprintf "prefix %d sits in the provider AS" p.Prefix.id)
      else
        let st = state_for t ~origin:t.asid in
        match Walk.from_metro st ~src:p.Prefix.asid ~start_metro:p.Prefix.city with
        | None ->
            Ok
              (Printf.sprintf "prefix=%d client_as=%d site=unreachable"
                 p.Prefix.id p.Prefix.asid)
        | Some w ->
            let m = Walk.entry_metro w in
            Ok
              (Printf.sprintf "prefix=%d client_as=%d site=%d site_city=%s"
                 p.Prefix.id p.Prefix.asid m (city_name m)))

(* Private peering beats public peering beats transit — the provider
   egress-preference order used throughout the paper. *)
let kind_rank = function
  | Relation.Peer_private -> 0
  | Relation.Peer_public -> 1
  | Relation.C2p -> 2

let best_received routes =
  List.sort
    (fun (a : Route.t) (b : Route.t) ->
      compare
        ( kind_rank a.Route.via_link.Relation.kind,
          a.Route.path_len,
          a.Route.via_link.Relation.id )
        ( kind_rank b.Route.via_link.Relation.kind,
          b.Route.path_len,
          b.Route.via_link.Relation.id ))
    routes
  |> function
  | [] -> None
  | r :: _ -> Some r

let egress t pop =
  if not (List.mem pop t.pops) then
    Error (Printf.sprintf "unknown pop %d (not a provider PoP metro)" pop)
  else begin
    let total = ref 0
    and priv = ref 0
    and pub = ref 0
    and transit = ref 0
    and unreachable = ref 0 in
    Array.iter
      (fun (p : Prefix.t) ->
        if p.Prefix.asid <> t.asid && nearest_pop t ~city:p.Prefix.city = pop
        then begin
          incr total;
          let st = state_for t ~origin:p.Prefix.asid in
          match best_received (Propagate.received_at_metro st t.asid ~metro:pop)
          with
          | None -> incr unreachable
          | Some r -> (
              match r.Route.via_link.Relation.kind with
              | Relation.Peer_private -> incr priv
              | Relation.Peer_public -> incr pub
              | Relation.C2p -> incr transit)
        end)
      t.prefixes;
    Ok
      (Printf.sprintf
         "pop=%d city=%s prefixes=%d private=%d public=%d transit=%d \
          unreachable=%d"
         pop (city_name pop) !total !priv !pub !transit !unreachable)
  end

let origin_of t arg =
  match String.lowercase_ascii arg with
  | "anycast" -> Ok t.asid
  | _ -> (
      match int_of_string_opt arg with
      | Some o
        when List.exists
               (fun (og, _, _) -> og = o)
               (Engine.tracked_prefixes t.engine) ->
          Ok o
      | Some o ->
          Error
            (Printf.sprintf
               "origin %d is not tracked (use 'anycast' or a tracked origin AS)"
               o)
      | None -> Error ("not an origin: " ^ arg))

let rtt t client arg =
  Result.bind (prefix_of t client) (fun (p : Prefix.t) ->
      Result.bind (origin_of t arg) (fun origin ->
          if p.Prefix.asid = origin then
            Error
              (Printf.sprintf "client prefix %d sits in origin AS %d"
                 p.Prefix.id origin)
          else
            let st = state_for t ~origin in
            match
              Walk.from_metro st ~src:p.Prefix.asid ~start_metro:p.Prefix.city
            with
            | None ->
                Ok
                  (Printf.sprintf "client=%d origin=%d rtt=unreachable"
                     p.Prefix.id origin)
            | Some w ->
                let flow =
                  Rtt.make_flow
                    ~access:(Congestion.Access p.Prefix.id)
                    ~terminal:Propagation.At_entry w
                in
                let floor =
                  Rtt.floor_ms (Congestion.params t.cong)
                    (Engine.topology t.engine) t.cong flow
                in
                let churn =
                  List.fold_left
                    (fun acc (h : Walk.hop) ->
                      acc
                      +. Congestion.event_delay_ms t.cong
                           ~link_id:h.Walk.link.Relation.id)
                    0. w.Walk.hops
                in
                Ok
                  (Printf.sprintf
                     "client=%d origin=%d floor_ms=%.3f churn_ms=%.3f \
                      rtt_ms=%.3f"
                     p.Prefix.id origin floor churn (floor +. churn))))

(* ---- EXPLAIN: the decision chain behind a routing outcome ------------- *)

module Decision = Netsim_bgp.Decision

(* Provenance state toward an origin.  Always recomputed on the
   current topology (via the RIB cache, which upgrades plain cached
   entries in place): warm engine states loaded from a snapshot carry
   no arena, and recomputation is what makes seed-built and
   snapshot-loaded daemons answer EXPLAIN byte-identically. *)
let pv_state t ~origin =
  Rib_cache.run ~provenance:true (Engine.topology t.engine)
    (Announce.default ~origin)

(* The prefix argument names the destination: "anycast" for the
   provider's prefix, or a client prefix id for its origin AS. *)
let explain_origin t arg =
  match String.lowercase_ascii arg with
  | "anycast" -> Ok (t.asid, "anycast")
  | _ ->
      Result.bind (prefix_of t arg) (fun (p : Prefix.t) ->
          Ok (p.Prefix.asid, string_of_int p.Prefix.id))

let phase_name = function
  | Route.Customer -> "customer (Gao-Rexford phase 1)"
  | Route.Peer -> "peer (Gao-Rexford phase 2)"
  | Route.Provider -> "provider (Gao-Rexford phase 3)"

let floor_of_walk t w =
  let flow = Rtt.make_flow ~terminal:Propagation.At_entry w in
  Rtt.floor_ms (Congestion.params t.cong) (Engine.topology t.engine) t.cong
    flow

(* The latency-optimal counterfactual (the paper's Fig. 1 gap, per
   AS): rate every received announcement by its deterministic RTT
   floor over the same walk model, and report what separates BGP's
   choice from the fastest alternative. *)
let counterfactual t st a (d : Propagate.decision) =
  let rated =
    List.filter_map
      (fun (r : Route.t) ->
        match Walk.of_route st ~src:a ~route:r with
        | None -> None
        | Some w -> Some (r, floor_of_walk t w))
      (Propagate.received st a)
  in
  let chosen =
    List.find_opt
      (fun ((r : Route.t), _) ->
        r.Route.klass = d.Propagate.d_klass
        && r.Route.next_hop = d.Propagate.d_next_hop
        && r.Route.via_link.Relation.id = d.Propagate.d_link_id)
      rated
  in
  match chosen with
  | None -> "counterfactual: unavailable (chosen route has no walk)"
  | Some ((chosen_r, chosen_ms) as c) ->
      let best =
        List.fold_left
          (fun ((_, bms) as b) ((_, ms) as cand) ->
            if ms < bms then cand else b)
          c rated
      in
      let best_r, best_ms = best in
      if best_r == chosen_r then
        Printf.sprintf
          "counterfactual: chosen route is latency-optimal \
           (floor_ms=%.3f, %d alternatives)"
          chosen_ms
          (List.length rated - 1)
      else
        Printf.sprintf
          "counterfactual: chosen_ms=%.3f best_ms=%.3f delta_ms=%.3f \
           best_class=%s best_next_hop=%d best_link=%d separated_by=%s"
          chosen_ms best_ms (chosen_ms -. best_ms)
          (Route.klass_to_string best_r.Route.klass)
          best_r.Route.next_hop best_r.Route.via_link.Relation.id
          (Decision.discriminator_to_string
             (Decision.discriminator Decision.gao_rexford chosen_r best_r))

let explain_text t ~origin ~plabel a =
  let st = pv_state t ~origin in
  let header = Printf.sprintf "explain prefix=%s origin_as=%d as=%d" plabel origin a in
  match Propagate.decision st a with
  | None -> header ^ "\nselected: unreachable (no candidate routes)"
  | Some d ->
      let path =
        Propagate.as_path st a |> List.map string_of_int |> String.concat " "
      in
      let runner =
        match d.Propagate.d_runner with
        | None -> "runner-up: none (only candidate)"
        | Some r ->
            Printf.sprintf "runner-up: class=%s next_hop=%d link=%d len=%d"
              (Route.klass_to_string r.Propagate.r_klass)
              r.Propagate.r_next_hop r.Propagate.r_link_id r.Propagate.r_path_len
      in
      String.concat "\n"
        [
          header;
          Printf.sprintf "selected: class=%s next_hop=%d link=%d len=%d path=[%s]"
            (Route.klass_to_string d.Propagate.d_klass)
            d.Propagate.d_next_hop d.Propagate.d_link_id d.Propagate.d_path_len
            path;
          "phase: " ^ phase_name d.Propagate.d_klass;
          Printf.sprintf "candidates: customer=%d peer=%d provider=%d total=%d"
            d.Propagate.d_cand_cust d.Propagate.d_cand_peer
            d.Propagate.d_cand_prov
            (d.Propagate.d_cand_cust + d.Propagate.d_cand_peer
           + d.Propagate.d_cand_prov);
          "tie-break: "
          ^ Netsim_obs.Provenance.rule_to_string d.Propagate.d_rule;
          runner;
          counterfactual t st a d;
        ]

let explain t parg aarg =
  Result.bind (explain_origin t parg) (fun (origin, plabel) ->
      let n = Topology.as_count (Engine.topology t.engine) in
      match int_of_string_opt aarg with
      | None -> Error ("not an AS id: " ^ aarg)
      | Some a when a < 0 || a >= n ->
          Error (Printf.sprintf "AS %d out of range (0..%d)" a (n - 1))
      | Some a when a = origin ->
          Error (Printf.sprintf "AS %d is the origin itself" a)
      | Some a -> Ok (explain_text t ~origin ~plabel a))

(* Schema-tagged JSONL dump of the whole provenance table toward one
   origin: a header line, then one object per decided AS. *)
let provenance_jsonl t ~origin =
  let st = pv_state t ~origin in
  let n = Topology.as_count (Engine.topology t.engine) in
  let b = Buffer.create (n * 96) in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":%S,\"origin_as\":%d,\"as_count\":%d}\n"
       Netsim_obs.Provenance.schema origin n);
  for x = 0 to n - 1 do
    match Propagate.decision st x with
    | None -> ()
    | Some d ->
        let runner =
          match d.Propagate.d_runner with
          | None -> "null"
          | Some r ->
              Printf.sprintf
                "{\"class\":%S,\"next_hop\":%d,\"link\":%d,\"len\":%d}"
                (Route.klass_to_string r.Propagate.r_klass)
                r.Propagate.r_next_hop r.Propagate.r_link_id
                r.Propagate.r_path_len
        in
        Buffer.add_string b
          (Printf.sprintf
             "{\"as\":%d,\"class\":%S,\"next_hop\":%d,\"link\":%d,\"len\":%d,\
              \"cand_cust\":%d,\"cand_peer\":%d,\"cand_prov\":%d,\
              \"rule\":%S,\"runner\":%s}\n"
             x
             (Route.klass_to_string d.Propagate.d_klass)
             d.Propagate.d_next_hop d.Propagate.d_link_id
             d.Propagate.d_path_len d.Propagate.d_cand_cust
             d.Propagate.d_cand_peer d.Propagate.d_cand_prov
             (Netsim_obs.Provenance.rule_to_string d.Propagate.d_rule)
             runner)
  done;
  Buffer.contents b

(* Only fields that are a deterministic function of (seed, request
   sequence) — so a seed-built and a snapshot-loaded server answer
   STATS byte-identically to the same request stream. *)
let stats t =
  let topo = Engine.topology t.engine in
  let c = t.counts in
  Ok
    (String.concat "\n"
       [
         Printf.sprintf "server seed=%d snapshot_schema=%d" t.cfg.seed
           Snapshot.schema_version;
         Printf.sprintf "topology ases=%d links=%d down=%d"
           (Topology.as_count topo) (Topology.link_count topo)
           (List.length (Engine.down_links t.engine));
         Printf.sprintf "engine now_min=%.3f tracked=%d pending=%d"
           (Engine.now t.engine)
           (List.length (Engine.tracked_prefixes t.engine))
           (List.length (Engine.pending t.engine));
         Printf.sprintf "population prefixes=%d pops=%d"
           (Array.length t.prefixes) (List.length t.pops);
         Printf.sprintf
           "queries total=%d catchment=%d egress=%d rtt=%d explain=%d \
            stats=%d snapshot=%d prom=%d advance=%d quit=%d invalid=%d"
           t.queries c.q_catchment c.q_egress c.q_rtt c.q_explain c.q_stats
           c.q_snapshot c.q_prom c.q_advance c.q_quit c.q_invalid;
         Printf.sprintf "rib_cache hits=%d misses=%d size=%d" (Rib_cache.hits ())
           (Rib_cache.misses ()) (Rib_cache.size ());
       ])

(* Step the churn engine and leave a flight-recorder trace: ADVANCE
   was the one verb whose state change produced no recorder event, so
   a trace could not distinguish "no churn scheduled" from "never
   advanced".  Wall-clock ns only under the timing gate, mirroring the
   bgp.reconverge site, so default traces stay deterministic. *)
let advance t minutes =
  let before = Engine.events_processed t.engine in
  let t0 = if Recorder.timing () then Unix.gettimeofday () else 0. in
  Engine.run t.engine ~until:(Engine.now t.engine +. minutes);
  if Recorder.enabled () then begin
    let fields =
      Recorder.
        [
          I ("events", Engine.events_processed t.engine - before);
          F ("minutes", minutes);
          F ("t_min", Engine.now t.engine);
        ]
    in
    let fields =
      if Recorder.timing () then
        fields
        @ [ Recorder.I ("ns", int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)) ]
      else fields
    in
    Recorder.record ~kind:"serve.advance" fields
  end

let handle t (req : Protocol.request) =
  match req with
  | Protocol.Catchment arg -> catchment t arg
  | Protocol.Egress pop -> egress t pop
  | Protocol.Rtt (client, origin) -> rtt t client origin
  | Protocol.Explain (prefix, asn) -> explain t prefix asn
  | Protocol.Stats -> stats t
  | Protocol.Snapshot_to path -> (
      try
        Snapshot.save (snapshot t) ~path;
        Ok ("snapshot written to " ^ path)
      with Sys_error e -> Error e)
  | Protocol.Prom -> Ok (Netsim_obs.Export_prom.to_string ())
  | Protocol.Advance minutes ->
      advance t minutes;
      Ok (Printf.sprintf "now_min=%.3f" (Engine.now t.engine))
  | Protocol.Quit -> Ok "bye"

(* ---- the request loop ------------------------------------------------- *)

let count_verb c = function
  | "catchment" -> c.q_catchment <- c.q_catchment + 1
  | "egress" -> c.q_egress <- c.q_egress + 1
  | "rtt" -> c.q_rtt <- c.q_rtt + 1
  | "explain" -> c.q_explain <- c.q_explain + 1
  | "stats" -> c.q_stats <- c.q_stats + 1
  | "snapshot" -> c.q_snapshot <- c.q_snapshot + 1
  | "prom" -> c.q_prom <- c.q_prom + 1
  | "advance" -> c.q_advance <- c.q_advance + 1
  | "quit" -> c.q_quit <- c.q_quit + 1
  | _ -> c.q_invalid <- c.q_invalid + 1

let c_requests = Metrics.counter "serve.requests"
let c_errors = Metrics.counter "serve.errors"

let record_query t ~verb ~ok =
  if Recorder.enabled () then
    Recorder.(
      record ~kind:"serve.query"
        [
          I ("q", t.queries);
          S ("verb", verb);
          S ("status", (if ok then "ok" else "err"));
          F ("t_min", Engine.now t.engine);
        ])

let handle_line t line =
  t.queries <- t.queries + 1;
  Metrics.incr c_requests;
  let framed, cont =
    match Protocol.parse line with
    | Error e ->
        t.counts.q_invalid <- t.counts.q_invalid + 1;
        Metrics.incr c_errors;
        record_query t ~verb:"invalid" ~ok:false;
        (Protocol.frame ~ok:false e, true)
    | Ok req ->
        let verb = Protocol.verb req in
        count_verb t.counts verb;
        let t0 = Unix.gettimeofday () in
        let result =
          try handle t req
          with exn ->
            Error (Printf.sprintf "internal error: %s" (Printexc.to_string exn))
        in
        if Metrics.enabled () then begin
          Metrics.incr (Metrics.counter ("serve.query." ^ verb));
          Metrics.observe
            (Metrics.histogram ("serve." ^ verb ^ ".us"))
            ((Unix.gettimeofday () -. t0) *. 1e6)
        end;
        let cont = req <> Protocol.Quit in
        (match result with
        | Ok body ->
            record_query t ~verb ~ok:true;
            (Protocol.frame ~ok:true body, cont)
        | Error e ->
            Metrics.incr c_errors;
            record_query t ~verb ~ok:false;
            (Protocol.frame ~ok:false e, cont))
  in
  (* Churn advances on request-count boundaries, never wall clock, so
     the response stream is a pure function of the request stream. *)
  if t.cfg.batch > 0 && t.queries mod t.cfg.batch = 0 then
    advance t t.cfg.batch_minutes;
  if not cont then t.stopped <- true;
  (framed, cont)

let serve_channels t ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        let resp, cont = handle_line t line in
        output_string oc resp;
        flush oc;
        if cont then loop ()
  in
  loop ()

let listen t ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 8;
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      while not t.stopped do
        let fd, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr fd
        and oc = Unix.out_channel_of_descr fd in
        (try serve_channels t ic oc with Sys_error _ | Unix.Unix_error _ -> ());
        (try flush oc with Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      done)

let provider t = t.asid
let pops t = t.pops
let prefixes t = t.prefixes
let engine t = t.engine
let queries t = t.queries
