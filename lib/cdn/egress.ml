module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Announce = Netsim_bgp.Announce
module Decision = Netsim_bgp.Decision
module Route = Netsim_bgp.Route
module Walk = Netsim_bgp.Walk
module Rtt = Netsim_latency.Rtt
module Propagation = Netsim_latency.Propagation
module Congestion = Netsim_latency.Congestion
module Prefix = Netsim_traffic.Prefix

type option_route = { route : Route.t; flow : Rtt.flow }

type entry = {
  prefix : Prefix.t;
  pop : int;
  options : option_route list;
  all_options : option_route list;
}

let flow_of_route state (d : Deployment.t) (prefix : Prefix.t) route =
  match Walk.of_route state ~src:d.Deployment.asid ~route with
  | None -> None
  | Some walk ->
      Some
        {
          route;
          flow =
            Rtt.make_flow
              ~access:(Congestion.Access prefix.Prefix.id)
              ~dest_net:(Congestion.Dest_net prefix.Prefix.asid)
              ~terminal:(Propagation.To_city prefix.Prefix.city)
              walk;
        }

let c_entries = Netsim_obs.Metrics.counter "cdn.egress.entries"

let compute (d : Deployment.t) ~prefixes ~k =
  Netsim_obs.Span.with_ ~name:"cdn.egress.compute" @@ fun () ->
  let topo = d.Deployment.topo in
  (* One propagation per distinct client AS — each an independent,
     deterministic Gao-Rexford run, so the set is sharded across the
     domain pool (first-appearance order keeps the fan-in, and hence
     the merged trace, identical to the serial loop). *)
  let asids =
    let seen = Hashtbl.create 64 in
    Array.to_list prefixes
    |> List.filter_map (fun (p : Prefix.t) ->
           if Hashtbl.mem seen p.Prefix.asid then None
           else begin
             Hashtbl.replace seen p.Prefix.asid ();
             Some p.Prefix.asid
           end)
    |> Array.of_list
  in
  let shard =
    Netsim_par.Pool.map
      (fun asid -> Rib_cache.run topo (Announce.default ~origin:asid))
      asids
  in
  let states = Hashtbl.create 64 in
  Array.iteri (fun i asid -> Hashtbl.replace states asid shard.(i)) asids;
  let state_for asid = Hashtbl.find states asid in
  let entries =
    Array.to_list prefixes
    |> List.filter_map (fun (prefix : Prefix.t) ->
           let state = state_for prefix.Prefix.asid in
           let pop = Deployment.nearest_pop d ~city:prefix.Prefix.city in
           let local =
             Propagate.received_at_metro state d.Deployment.asid ~metro:pop
           in
           let candidates =
             match local with
             | [] -> Propagate.received state d.Deployment.asid
             | l -> l
           in
           let ranked = Decision.sort Decision.content_provider candidates in
           let all_options =
             List.filter_map (flow_of_route state d prefix) ranked
           in
           let options =
             List.filteri (fun i _ -> i < k) all_options
           in
           match options with
           | [] -> None
           | _ -> Some { prefix; pop; options; all_options })
  in
  Netsim_obs.Metrics.add c_entries (List.length entries);
  Array.of_list entries

let route_kind o = o.route.Route.via_link.Relation.kind

let is_peer_route o =
  match route_kind o with
  | Relation.Peer_private | Relation.Peer_public -> true
  | Relation.C2p -> false

let is_transit_route o =
  (not (is_peer_route o)) && o.route.Route.klass = Route.Provider
