(** Anycast CDN serving (the Microsoft-like setting, §2.3.2).

    The provider announces one anycast prefix from all its sites and
    one unicast prefix per site.  BGP picks the anycast catchment;
    unicast flows let clients measure each site individually, which is
    what the Bing-instrumented study did. *)

type t

val make : Deployment.t -> t
(** Runs one propagation for the anycast prefix and one per unicast
    site. *)

val deployment : t -> Deployment.t
val sites : t -> int list
(** Site metros. *)

val catchment : t -> Netsim_bgp.Catchment.t

val anycast_flow : t -> Netsim_traffic.Prefix.t -> Netsim_latency.Rtt.flow option
(** Client-to-anycast flow; [None] if the client cannot reach the
    prefix.  The flow terminates at the catchment site. *)

val anycast_site : t -> Netsim_traffic.Prefix.t -> int option
(** Site metro the client's anycast traffic lands on. *)

val unicast_flow :
  t -> Netsim_traffic.Prefix.t -> site:int -> Netsim_latency.Rtt.flow option
(** Client-to-one-site unicast flow.  @raise Invalid_argument if
    [site] is not a deployed site. *)

val with_grooming : t -> Netsim_bgp.Announce.t -> t
(** Rebuild the anycast side (propagation + catchment) under a
    modified announcement configuration — the grooming hook for
    §3.2.2.  Unicast states are reused. *)

val anycast_config : t -> Netsim_bgp.Announce.t
