module Sm = Netsim_prng.Splitmix
module Ci = Netsim_stats.Ci
module Quantile = Netsim_stats.Quantile
module Rtt = Netsim_latency.Rtt
module Window = Netsim_traffic.Window

type route_measurement = {
  option_route : Egress.option_route;
  median_ms : float;
  ci : Ci.interval;
  samples : int;
}

type window_result = {
  entry : Egress.entry;
  window : Window.t;
  per_route : route_measurement list;
  bgp : route_measurement;
  best_alternate : route_measurement option;
}

let measure_route cong ~rng ~samples_per_route window (o : Egress.option_route) =
  let time_min = Window.mid_time window in
  let values =
    Array.init samples_per_route (fun _ ->
        Rtt.sample_ms cong ~rng ~time_min o.Egress.flow)
  in
  {
    option_route = o;
    median_ms = Quantile.median values;
    ci = Ci.median_binomial values;
    samples = samples_per_route;
  }

let measure_window cong ~rng ~samples_per_route window (entry : Egress.entry) =
  Netsim_obs.Span.with_ ~name:"measure.edge_window" @@ fun () ->
  let per_route =
    List.map
      (measure_route cong ~rng ~samples_per_route window)
      entry.Egress.options
  in
  match per_route with
  | [] -> invalid_arg "Edge_controller.measure_window: entry without options"
  | bgp :: alternates ->
      let best_alternate =
        List.fold_left
          (fun acc m ->
            match acc with
            | None -> Some m
            | Some b -> if m.median_ms < b.median_ms then Some m else acc)
          None alternates
      in
      { entry; window; per_route; bgp; best_alternate }

let decide cong ~rng ~samples_per_route ~time_min options =
  List.fold_left
    (fun acc (o : Egress.option_route) ->
      let m =
        Rtt.median_of_samples cong ~rng ~time_min ~count:samples_per_route
          o.Egress.flow
      in
      match acc with
      | Some (_, best) when best <= m -> acc
      | _ -> Some (o, m))
    None options

let improvement_ms r =
  match r.best_alternate with
  | None -> None
  | Some alt -> Some (r.bgp.median_ms -. alt.median_ms)

let improvement_bounds r =
  match r.best_alternate with
  | None -> None
  | Some alt ->
      Some
        ( r.bgp.ci.Ci.lo -. alt.ci.Ci.hi,
          r.bgp.ci.Ci.hi -. alt.ci.Ci.lo )
