(** Measurement-driven DNS redirection (the Fig. 4 scheme).

    Training: clients measure the anycast prefix and each unicast site
    over a set of windows; per resolver, the scheme predicts the best
    option (anycast or one unicast site) from its clients' weighted
    medians.  Serving: every client of the resolver is directed to the
    predicted option.  Prefixes with EDNS-Client-Subnet get their own
    per-prefix prediction. *)

type choice = Use_anycast | Use_site of int

type table

val train :
  ?margin:float ->
  ?client_sample:int ->
  Anycast.t ->
  assignment:Ldns.assignment ->
  prefixes:Netsim_traffic.Prefix.t array ->
  cong:Netsim_latency.Congestion.t ->
  rng:Netsim_prng.Splitmix.t ->
  windows:Netsim_traffic.Window.t list ->
  samples_per_window:int ->
  table
(** Build the per-resolver (and per-ECS-prefix) prediction table. *)

val choice_for : table -> Ldns.assignment -> Netsim_traffic.Prefix.t -> choice
(** The option this client will be directed to. *)

val flow_for_choice :
  Anycast.t -> Netsim_traffic.Prefix.t -> choice -> Netsim_latency.Rtt.flow option
(** Serving flow for a choice; falls back to anycast when a predicted
    unicast site is unreachable for this client. *)

val choices : table -> (int * choice) list
(** Per-resolver decisions (for inspection/tests). *)

val redirected_fraction : table -> float
(** Fraction of resolvers predicted to do better on unicast. *)
