module Sm = Netsim_prng.Splitmix
module Dist = Netsim_prng.Dist
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module World = Netsim_geo.World
module City = Netsim_geo.City

type spec = {
  name : string;
  klass : Asn.klass;
  pop_metros : int list;
  transit_count : int;
  transit_session_metros : int;
  pni_prob : float;
  public_peer_prob : float;
  dual_pni_prob : float;
  peer_fraction : float;
  pni_capacity : float;
  public_capacity : float;
  transit_capacity : float;
}

let default_spec ~name ~pop_metros =
  {
    name;
    klass = Asn.Content;
    pop_metros;
    transit_count = 4;
    transit_session_metros = 6;
    pni_prob = 0.7;
    public_peer_prob = 0.8;
    dual_pni_prob = 0.6;
    peer_fraction = 1.0;
    pni_capacity = 100.;
    public_capacity = 20.;
    transit_capacity = 200.;
  }

type t = {
  topo : Topology.t;
  asid : int;
  pops : int list;
  pni_count : int;
  public_peer_count : int;
  transit_link_count : int;
}

let c_pops = Netsim_obs.Metrics.counter "cdn.deploy.pops"

let deploy base ~rng spec =
  Netsim_obs.Span.with_ ~name:"cdn.deploy" @@ fun () ->
  if spec.pop_metros = [] then invalid_arg "Deployment.deploy: no PoPs";
  Netsim_obs.Metrics.add c_pops
    (List.length (List.sort_uniq compare spec.pop_metros));
  let pops = List.sort_uniq compare spec.pop_metros in
  let topo, asid =
    Topology.add_as base ~klass:spec.klass ~name:spec.name
      ~footprint:(Array.of_list pops)
  in
  let links = ref [] in
  let push a b kind metro cap = links := (a, b, kind, metro, cap) :: !links in
  (* Transit from Tier-1s, with sessions at several PoP metros so
     every region has an exit of last resort. *)
  let tier1s = Array.of_list (Topology.by_klass topo Asn.Tier1) in
  Dist.shuffle rng tier1s;
  let chosen_transits =
    Array.to_list (Array.sub tier1s 0 (min spec.transit_count (Array.length tier1s)))
  in
  let transit_link_count = ref 0 in
  List.iter
    (fun t1 ->
      let shared =
        List.filter
          (fun m -> Asn.present_at (Topology.asn topo t1) m)
          pops
      in
      let session_metros =
        match shared with
        | [] -> [ List.hd pops ]
        | l ->
            Dist.sample_without_replacement rng spec.transit_session_metros
              (Array.of_list l)
            |> Array.to_list
      in
      List.iter
        (fun m ->
          push asid t1 Relation.C2p m spec.transit_capacity;
          incr transit_link_count)
        session_metros)
    chosen_transits;
  (* Every PoP metro needs at least one transit session so that a
     unicast prefix announced only there stays globally reachable. *)
  let covered =
    List.filter_map
      (fun (_, _, kind, m, _) -> if kind = Relation.C2p then Some m else None)
      !links
  in
  List.iter
    (fun m ->
      if not (List.mem m covered) then begin
        match chosen_transits with
        | [] -> ()
        | t1 :: _ ->
            push asid t1 Relation.C2p m spec.transit_capacity;
            incr transit_link_count
      end)
    pops;
  (* Peering with eyeballs co-located at PoP metros.  An eyeball peers
     at every PoP metro it shares with the provider (PNIs), or at one
     IXP metro for public peering. *)
  let eyeballs = Topology.by_klass topo Asn.Eyeball in
  let pni_count = ref 0 and public_peer_count = ref 0 in
  List.iter
    (fun eb ->
      let shared =
        List.filter (fun m -> Asn.present_at (Topology.asn topo eb) m) pops
      in
      if shared <> [] && Dist.bernoulli rng ~p:spec.peer_fraction then begin
        (* PNIs and public IXP peering are independent: large eyeballs
           typically keep both, which is what gives BGP's second
           choice near-identical performance to its first. *)
        let has_pni = Dist.bernoulli rng ~p:spec.pni_prob in
        if has_pni then begin
          List.iter
            (fun m ->
              push asid eb Relation.Peer_private m spec.pni_capacity;
              (* Large interconnects run parallel sessions on separate
                 routers; BGP sees them as distinct near-identical
                 routes — the common shape of a PoP's second choice. *)
              if Dist.bernoulli rng ~p:spec.dual_pni_prob then
                push asid eb Relation.Peer_private m spec.pni_capacity)
            shared;
          incr pni_count
        end;
        if Dist.bernoulli rng ~p:spec.public_peer_prob then begin
          let m = List.nth shared (Sm.next_int rng (List.length shared)) in
          push asid eb Relation.Peer_public m spec.public_capacity;
          incr public_peer_count
        end
      end)
    eyeballs;
  let topo = Topology.add_links topo (List.rev !links) in
  {
    topo;
    asid;
    pops;
    pni_count = !pni_count;
    public_peer_count = !public_peer_count;
    transit_link_count = !transit_link_count;
  }

let nearest_pop t ~city =
  let c = World.cities.(city) in
  let best = ref (List.hd t.pops) and best_d = ref infinity in
  List.iter
    (fun m ->
      let d = City.distance_km c World.cities.(m) in
      if d < !best_d then begin
        best_d := d;
        best := m
      end)
    t.pops;
  !best
