module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Announce = Netsim_bgp.Announce
module Catchment = Netsim_bgp.Catchment
module Walk = Netsim_bgp.Walk
module Rtt = Netsim_latency.Rtt
module Propagation = Netsim_latency.Propagation
module Congestion = Netsim_latency.Congestion
module Prefix = Netsim_traffic.Prefix

type t = {
  deployment : Deployment.t;
  anycast_config : Announce.t;
  anycast_state : Propagate.state;
  catchment : Catchment.t;
  unicast_states : (int * Propagate.state) list;
}

let make (d : Deployment.t) =
  Netsim_obs.Span.with_ ~name:"cdn.anycast.make" @@ fun () ->
  let topo = d.Deployment.topo in
  let anycast_config = Announce.default ~origin:d.Deployment.asid in
  let anycast_state = Rib_cache.run topo anycast_config in
  (* One propagation per unicast site, sharded across the domain pool
     (independent runs; fan-in is in site order, like the serial map). *)
  let unicast_states =
    Netsim_par.Pool.map_list
      (fun site ->
        let config = Announce.only_at_metros ~origin:d.Deployment.asid [ site ] in
        (site, Rib_cache.run topo config))
      d.Deployment.pops
  in
  {
    deployment = d;
    anycast_config;
    anycast_state;
    catchment = Catchment.compute anycast_state;
    unicast_states;
  }

let deployment t = t.deployment
let sites t = t.deployment.Deployment.pops
let catchment t = t.catchment
let anycast_config t = t.anycast_config

let flow_of_walk (prefix : Prefix.t) walk =
  Rtt.make_flow
    ~access:(Congestion.Access prefix.Prefix.id)
    ~terminal:Propagation.At_entry walk

let anycast_flow t (prefix : Prefix.t) =
  match
    Walk.from_metro t.anycast_state ~src:prefix.Prefix.asid
      ~start_metro:prefix.Prefix.city
  with
  | None -> None
  | Some walk -> Some (flow_of_walk prefix walk)

let anycast_site t (prefix : Prefix.t) =
  match anycast_flow t prefix with
  | None -> None
  | Some flow -> Some (Walk.entry_metro flow.Rtt.walk)

let unicast_flow t (prefix : Prefix.t) ~site =
  match List.assoc_opt site t.unicast_states with
  | None -> invalid_arg "Anycast.unicast_flow: unknown site"
  | Some state -> (
      match
        Walk.from_metro state ~src:prefix.Prefix.asid
          ~start_metro:prefix.Prefix.city
      with
      | None -> None
      | Some walk -> Some (flow_of_walk prefix walk))

let with_grooming t config =
  let topo = t.deployment.Deployment.topo in
  let anycast_state = Rib_cache.run topo config in
  {
    t with
    anycast_config = config;
    anycast_state;
    catchment = Catchment.compute anycast_state;
  }
