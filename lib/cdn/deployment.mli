(** Grafting a content or cloud provider onto a base Internet.

    A deployment adds one AS with PoPs at chosen metros, transit from
    Tier-1s, private interconnects (PNIs) to eyeballs co-located at
    PoP metros, and public IXP peering — the infrastructure whose
    "nature" §3.2.2 asks about.  The [peer_fraction] knob implements
    the §3.1.3 reduced-peering-footprint ablation. *)

type spec = {
  name : string;
  klass : Netsim_topo.Asn.klass;  (** [Content] or [Cloud]. *)
  pop_metros : int list;  (** Metros with a PoP; at least one. *)
  transit_count : int;  (** Tier-1 transit providers to buy from. *)
  transit_session_metros : int;  (** Sessions per transit, spread over
                                     PoP metros. *)
  pni_prob : float;  (** Probability of a PNI with each co-located
                         eyeball. *)
  public_peer_prob : float;  (** Probability of public IXP peering
                                 (independent of the PNI draw). *)
  dual_pni_prob : float;  (** Probability that a PNI at a metro runs a
                              second parallel session. *)
  peer_fraction : float;  (** Retain this fraction of would-be peers
                              (1.0 = full footprint). *)
  pni_capacity : float;
  public_capacity : float;
  transit_capacity : float;
}

val default_spec : name:string -> pop_metros:int list -> spec
(** Content provider, 3 transits, [pni_prob = 0.7],
    [public_peer_prob = 0.8], full peer fraction. *)

type t = {
  topo : Netsim_topo.Topology.t;  (** Topology including the provider. *)
  asid : int;  (** The provider's AS id. *)
  pops : int list;  (** PoP metros actually deployed. *)
  pni_count : int;
  public_peer_count : int;
  transit_link_count : int;
}

val deploy :
  Netsim_topo.Topology.t -> rng:Netsim_prng.Splitmix.t -> spec -> t
(** Deterministic in [rng].  @raise Invalid_argument on an empty
    [pop_metros]. *)

val nearest_pop : t -> city:int -> int
(** PoP metro geographically nearest to a city (the provider's
    client-to-PoP mapping for the Facebook-like setting). *)
