module Sm = Netsim_prng.Splitmix
module Dist = Netsim_prng.Dist
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module World = Netsim_geo.World
module City = Netsim_geo.City
module Prefix = Netsim_traffic.Prefix
module Region = Netsim_geo.Region

type resolver = { id : int; city : int; public : bool }

type assignment = {
  resolvers : resolver array;
  of_prefix : int array;
  ecs : bool array;
}

type params = {
  in_as_prob : float;
  ecs_prob : float;
  public_hub_names : string list;
}

let default_params =
  {
    in_as_prob = 0.35;
    ecs_prob = 0.001;
    public_hub_names = [ "Ashburn"; "Frankfurt"; "Singapore" ];
  }

let c_resolvers = Netsim_obs.Metrics.counter "cdn.ldns.resolvers"
let c_ecs = Netsim_obs.Metrics.counter "cdn.ldns.ecs_prefixes"

let assign topo ~prefixes ~rng params =
  Netsim_obs.Span.with_ ~name:"cdn.ldns.assign" @@ fun () ->
  let n = Array.length prefixes in
  let resolvers = ref [] in
  let next_id = ref 0 in
  let push city public =
    let r = { id = !next_id; city; public } in
    incr next_id;
    resolvers := r :: !resolvers;
    r
  in
  (* Public resolvers are anycast services: each hub serves distinct
     regional catchments, so prediction pools form per
     (hub, client continent) rather than one global pool per hub. *)
  let hub_cities =
    List.map (fun name -> (World.find_exn name).City.id) params.public_hub_names
  in
  let public_pools : (int * Region.continent, resolver) Hashtbl.t =
    Hashtbl.create 16
  in
  let public_resolver hub_city continent =
    match Hashtbl.find_opt public_pools (hub_city, continent) with
    | Some r -> r
    | None ->
        let r = push hub_city true in
        Hashtbl.replace public_pools (hub_city, continent) r;
        r
  in
  (* One in-AS resolver per client AS, anchored at the AS home metro. *)
  let in_as = Hashtbl.create 64 in
  let in_as_resolver asid =
    match Hashtbl.find_opt in_as asid with
    | Some r -> r
    | None ->
        let home = Asn.home (Topology.asn topo asid) in
        let r = push home false in
        Hashtbl.replace in_as asid r;
        r
  in
  let of_prefix = Array.make n 0 in
  let ecs = Array.make n false in
  Array.iteri
    (fun i (p : Prefix.t) ->
      let r =
        if Dist.bernoulli rng ~p:params.in_as_prob then in_as_resolver p.Prefix.asid
        else begin
          (* Public resolver: clients are served by the anycast site
             nearest to them — usually, but not always, the nearest
             hub. *)
          let client = World.cities.(p.Prefix.city) in
          let scored =
            List.map
              (fun hub_city ->
                (City.distance_km client World.cities.(hub_city), hub_city))
              hub_cities
          in
          let sorted = List.sort compare scored in
          match sorted with
          | (_, first) :: rest ->
              let hub =
                match rest with
                | (_, second) :: _ ->
                    if Dist.bernoulli rng ~p:0.65 then first else second
                | [] -> first
              in
              public_resolver hub client.City.continent
          | [] -> in_as_resolver p.Prefix.asid
        end
      in
      of_prefix.(i) <- r.id;
      ecs.(i) <- Dist.bernoulli rng ~p:params.ecs_prob)
    prefixes;
  Netsim_obs.Metrics.add c_resolvers !next_id;
  Netsim_obs.Metrics.add c_ecs
    (Array.fold_left (fun acc e -> if e then acc + 1 else acc) 0 ecs);
  {
    resolvers = Array.of_list (List.rev !resolvers);
    of_prefix;
    ecs;
  }

let resolver_of a (p : Prefix.t) = a.resolvers.(a.of_prefix.(p.Prefix.id))

let clients_of_resolver a prefixes rid =
  Array.to_list prefixes
  |> List.filter (fun (p : Prefix.t) -> a.of_prefix.(p.Prefix.id) = rid)

let measurement_city a (p : Prefix.t) =
  if a.ecs.(p.Prefix.id) then p.Prefix.city else (resolver_of a p).city
