(** Per-⟨PoP, prefix⟩ egress route options for a content provider.

    For every client prefix, the provider serves from the nearest PoP
    and holds the BGP routes its sessions at that PoP receive for the
    client's prefix, ranked by the content-provider policy (private
    peer > public peer > transit).  Each option carries a ready flow
    for latency sampling. *)

type option_route = {
  route : Netsim_bgp.Route.t;
  flow : Netsim_latency.Rtt.flow;
}

type entry = {
  prefix : Netsim_traffic.Prefix.t;
  pop : int;  (** Serving PoP metro. *)
  options : option_route list;  (** Ranked, most preferred first; the
                                    head is BGP's choice. *)
  all_options : option_route list;
      (** The PoP's complete Adj-RIB-In (ranked), beyond the sprayed
          top-k — used for route-class comparisons (Figure 2). *)
}

val compute :
  Deployment.t ->
  prefixes:Netsim_traffic.Prefix.t array ->
  k:int ->
  entry array
(** One propagation run per distinct client AS (shared across its
    prefixes).  Prefixes whose serving PoP has no local session for
    the destination fall back to the provider's full Adj-RIB-In.
    Entries with no usable route options are dropped. *)

val route_kind : option_route -> Netsim_topo.Relation.kind
(** Interconnect type of the option's egress session. *)

val is_peer_route : option_route -> bool
val is_transit_route : option_route -> bool
