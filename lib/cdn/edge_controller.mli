(** Edge-Fabric-style measurement pipeline at a PoP.

    For each window the provider sprays a sample of sessions across
    the top-k egress routes and computes per-route median MinRTT with
    a confidence interval.  BGP's choice is the policy head; the
    omniscient controller picks the measured best — exactly the
    comparison behind Figure 1. *)

type route_measurement = {
  option_route : Egress.option_route;
  median_ms : float;
  ci : Netsim_stats.Ci.interval;
  samples : int;
}

type window_result = {
  entry : Egress.entry;
  window : Netsim_traffic.Window.t;
  per_route : route_measurement list;  (** Same order as the entry's
                                           ranked options. *)
  bgp : route_measurement;  (** Head of [per_route]. *)
  best_alternate : route_measurement option;
      (** Best-measured among the non-head options; [None] when the
          entry has a single route. *)
}

val measure_window :
  Netsim_latency.Congestion.t ->
  rng:Netsim_prng.Splitmix.t ->
  samples_per_route:int ->
  Netsim_traffic.Window.t ->
  Egress.entry ->
  window_result

val decide :
  Netsim_latency.Congestion.t ->
  rng:Netsim_prng.Splitmix.t ->
  samples_per_route:int ->
  time_min:float ->
  Egress.option_route list ->
  (Egress.option_route * float) option
(** One controller decision at a point in time: measure each candidate
    (median of [samples_per_route] MinRTT samples) and return the
    measured-best with its median; [None] on an empty candidate list.
    Earlier (higher-ranked) options win ties.  This is the re-decision
    the dynamics experiments run on each measurement tick. *)

val improvement_ms : window_result -> float option
(** Median difference, BGP − best alternate (positive = an alternate
    was faster); [None] for single-route entries. *)

val improvement_bounds : window_result -> (float * float) option
(** Conservative CI band of the difference: (bgp.lo − alt.hi,
    bgp.hi − alt.lo). *)
