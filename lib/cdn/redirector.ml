module Quantile = Netsim_stats.Quantile
module Rtt = Netsim_latency.Rtt
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix

type choice = Use_anycast | Use_site of int

type table = {
  by_resolver : (int, choice) Hashtbl.t;
  by_prefix : (int, choice) Hashtbl.t;  (** ECS prefixes only. *)
}

(* Median training RTT of one flow over the training windows. *)
let flow_median cong ~rng ~windows ~samples_per_window flow =
  let values =
    List.concat_map
      (fun w ->
        List.init samples_per_window (fun _ ->
            Rtt.sample_ms cong ~rng ~time_min:(Window.mid_time w) flow))
      windows
  in
  Quantile.median (Array.of_list values)

(* Per-prefix training medians for every option; None if unreachable. *)
let prefix_option_medians any cong ~rng ~windows ~samples_per_window prefix =
  let measure flow_opt =
    Option.map (flow_median cong ~rng ~windows ~samples_per_window) flow_opt
  in
  let anycast = measure (Anycast.anycast_flow any prefix) in
  let sites =
    List.map
      (fun site ->
        (site, measure (Anycast.unicast_flow any prefix ~site)))
      (Anycast.sites any)
  in
  (anycast, sites)

let best_choice ~margin anycast_med site_meds =
  (* Prefer anycast on ties: redirection must beat anycast by at least
     [margin] ms to be used (a hybrid scheme raises the margin to only
     override anycast where the predicted gain is large). *)
  let best_site =
    List.fold_left
      (fun acc (site, med) ->
        match (med, acc) with
        | None, _ -> acc
        | Some m, None -> Some (site, m)
        | Some m, Some (_, bm) -> if m < bm then Some (site, m) else acc)
      None site_meds
  in
  match (anycast_med, best_site) with
  | None, None -> Use_anycast
  | None, Some (site, _) -> Use_site site
  | Some _, None -> Use_anycast
  | Some a, Some (site, m) ->
      if m < a -. margin then Use_site site else Use_anycast

let c_decisions = Netsim_obs.Metrics.counter "cdn.redirector.decisions"
let c_redirected = Netsim_obs.Metrics.counter "cdn.redirector.redirected"

let train ?(margin = 0.) ?client_sample any ~assignment ~prefixes ~cong ~rng
    ~windows ~samples_per_window =
  Netsim_obs.Span.with_ ~name:"cdn.redirector.train" @@ fun () ->
  (* Step 1: per-prefix option medians. *)
  let per_prefix =
    Array.map
      (fun p ->
        prefix_option_medians any cong ~rng ~windows ~samples_per_window p)
      prefixes
  in
  let by_prefix = Hashtbl.create 16 in
  (* Step 2: ECS prefixes predict for themselves. *)
  Array.iteri
    (fun i (p : Prefix.t) ->
      if assignment.Ldns.ecs.(p.Prefix.id) then begin
        let anycast, sites = per_prefix.(i) in
        Hashtbl.replace by_prefix p.Prefix.id (best_choice ~margin anycast sites)
      end)
    prefixes;
  (* Step 3: per-resolver aggregation over non-ECS clients, weighted
     by traffic. *)
  let by_resolver = Hashtbl.create 64 in
  Array.iter
    (fun (r : Ldns.resolver) ->
      let clients =
        Array.to_list prefixes
        |> List.filteri (fun i (p : Prefix.t) ->
               ignore i;
               assignment.Ldns.of_prefix.(p.Prefix.id) = r.Ldns.id
               && not assignment.Ldns.ecs.(p.Prefix.id))
      in
      (* Production systems predict from a sparse sample of each
         LDNS's clients, not a census, and the sample skews toward the
         heaviest clients (they generate most measurements).
         Sub-sampling reproduces the resulting prediction error for
         scattered resolver pools. *)
      let clients =
        match client_sample with
        | None -> clients
        | Some k ->
            List.sort
              (fun (a : Prefix.t) (b : Prefix.t) ->
                compare b.Prefix.weight a.Prefix.weight)
              clients
            |> List.filteri (fun i _ -> i < k)
      in
      if clients <> [] then begin
        let weighted option_of_prefix =
          (* Weighted median over clients of the per-option medians. *)
          let pairs =
            List.filter_map
              (fun (p : Prefix.t) ->
                match option_of_prefix p with
                | Some v -> Some (v, p.Prefix.weight)
                | None -> None)
              clients
          in
          match pairs with
          | [] -> None
          | l -> Some (Quantile.weighted_quantile (Array.of_list l) 0.5)
        in
        let anycast_med =
          weighted (fun p -> fst per_prefix.(p.Prefix.id))
        in
        let site_meds =
          List.map
            (fun site ->
              ( site,
                weighted (fun p ->
                    List.assoc site (snd per_prefix.(p.Prefix.id))) ))
            (Anycast.sites any)
        in
        Hashtbl.replace by_resolver r.Ldns.id
          (best_choice ~margin anycast_med site_meds)
      end)
    assignment.Ldns.resolvers;
  if Netsim_obs.Metrics.enabled () then begin
    let redirected tbl =
      Hashtbl.fold
        (fun _ c acc -> match c with Use_site _ -> acc + 1 | Use_anycast -> acc)
        tbl 0
    in
    Netsim_obs.Metrics.add c_decisions
      (Hashtbl.length by_resolver + Hashtbl.length by_prefix);
    Netsim_obs.Metrics.add c_redirected
      (redirected by_resolver + redirected by_prefix)
  end;
  { by_resolver; by_prefix }

let choice_for table assignment (p : Prefix.t) =
  if assignment.Ldns.ecs.(p.Prefix.id) then
    match Hashtbl.find_opt table.by_prefix p.Prefix.id with
    | Some c -> c
    | None -> Use_anycast
  else
    match
      Hashtbl.find_opt table.by_resolver assignment.Ldns.of_prefix.(p.Prefix.id)
    with
    | Some c -> c
    | None -> Use_anycast

let flow_for_choice any prefix = function
  | Use_anycast -> Anycast.anycast_flow any prefix
  | Use_site site -> (
      match Anycast.unicast_flow any prefix ~site with
      | Some flow -> Some flow
      | None -> Anycast.anycast_flow any prefix)

let choices table =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table.by_resolver []
  |> List.sort compare

let redirected_fraction table =
  let total = Hashtbl.length table.by_resolver in
  if total = 0 then 0.
  else begin
    let redirected =
      Hashtbl.fold
        (fun _ c acc ->
          match c with Use_site _ -> acc + 1 | Use_anycast -> acc)
        table.by_resolver 0
    in
    float_of_int redirected /. float_of_int total
  end
