(** Local DNS resolver model.

    DNS-based redirection only sees the resolver, not the client
    (§3.2.1): most clients use an in-AS resolver near them, but a
    significant share uses a public resolver anchored at a distant
    hub, and EDNS-Client-Subnet adoption is near zero.  The resulting
    client↔resolver mismatch is the mechanism that makes prediction
    hurt ~17 % of queries in Figure 4. *)

type resolver = {
  id : int;
  city : int;  (** Metro the resolver effectively measures from. *)
  public : bool;
}

type assignment = {
  resolvers : resolver array;
  of_prefix : int array;  (** Prefix id → resolver id. *)
  ecs : bool array;  (** Prefix id → true if EDNS-Client-Subnet gives
                         client granularity for this prefix. *)
}

type params = {
  in_as_prob : float;  (** Client uses its ISP's resolver. *)
  ecs_prob : float;  (** Resolver forwards client subnets (≈ 0 per the
                         paper's < 0.1 % adoption). *)
  public_hub_names : string list;  (** Metros hosting public-resolver
                                       sites. *)
}

val default_params : params

val assign :
  Netsim_topo.Topology.t ->
  prefixes:Netsim_traffic.Prefix.t array ->
  rng:Netsim_prng.Splitmix.t ->
  params ->
  assignment

val resolver_of : assignment -> Netsim_traffic.Prefix.t -> resolver

val clients_of_resolver :
  assignment -> Netsim_traffic.Prefix.t array -> int -> Netsim_traffic.Prefix.t list
(** All prefixes using a given resolver. *)

val measurement_city : assignment -> Netsim_traffic.Prefix.t -> int
(** Where redirection decisions are effectively measured for this
    prefix: the client's own city under ECS, otherwise the resolver's
    city. *)
