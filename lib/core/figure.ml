module Series = Netsim_stats.Series
module Ascii_plot = Netsim_stats.Ascii_plot

type t = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  series : Series.t list;
  stats : (string * float) list;
}

let make ~id ~title ~x_label ~y_label ?(stats = []) series =
  { id; title; x_label; y_label; series; stats }

let stat t name = List.assoc name t.stats
let stat_opt t name = List.assoc_opt name t.stats

let to_csv t = Series.to_csv t.series

let render t =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Ascii_plot.plot ~x_label:t.x_label ~y_label:t.y_label
       ~title:(Printf.sprintf "[%s] %s" t.id t.title)
       t.series);
  if t.stats <> [] then begin
    Buffer.add_string buf "  headline statistics:\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf
          (Printf.sprintf "    %-42s %10s\n" k
             (Netsim_stats.Summary.pretty_float v)))
      t.stats
  end;
  Buffer.contents buf
