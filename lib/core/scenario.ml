module Sm = Netsim_prng.Splitmix
module Generator = Netsim_topo.Generator
module World = Netsim_geo.World
module City = Netsim_geo.City
module Region = Netsim_geo.Region
module Deployment = Netsim_cdn.Deployment
module Egress = Netsim_cdn.Egress
module Anycast = Netsim_cdn.Anycast
module Ldns = Netsim_cdn.Ldns
module Population = Netsim_traffic.Population
module Prefix = Netsim_traffic.Prefix
module Congestion = Netsim_latency.Congestion
module Params = Netsim_latency.Params
module Cloud = Netsim_wan.Cloud
module Tiers = Netsim_wan.Tiers
module Vantage = Netsim_measure.Vantage

type sizes = {
  seed : int;
  base : Generator.params;
  n_prefixes : int;
  days : float;
}

let default_sizes =
  { seed = 42; base = Generator.default_params; n_prefixes = 320; days = 3. }

let test_sizes =
  { seed = 7; base = Generator.small_params; n_prefixes = 60; days = 1. }

let top_metros ?continents n =
  let eligible =
    Array.to_list World.cities
    |> List.filter (fun (c : City.t) ->
           match continents with
           | None -> true
           | Some l -> List.mem c.continent l)
  in
  let sorted =
    List.sort
      (fun (a : City.t) (b : City.t) -> compare b.population_m a.population_m)
      eligible
  in
  List.filteri (fun i _ -> i < n) sorted |> List.map (fun (c : City.t) -> c.id)

let spread_metros n =
  (* Continental quotas out of 40, scaled to n. *)
  let quotas =
    [
      (Region.North_america, 10);
      (Region.Europe, 10);
      (Region.Asia, 10);
      (Region.South_america, 4);
      (Region.Oceania, 3);
      (Region.Africa, 3);
    ]
  in
  let scale q = max 1 (q * n / 40) in
  List.concat_map
    (fun (continent, q) -> top_metros ~continents:[ continent ] (scale q))
    quotas
  |> List.sort_uniq compare

(* ---- Facebook-like --------------------------------------------------- *)

type facebook = {
  fb_deployment : Deployment.t;
  fb_prefixes : Prefix.t array;
  fb_entries : Egress.entry array;
  fb_congestion : Congestion.t;
  fb_root : Sm.t;
  fb_days : float;
  fb_samples_per_route : int;
}

let facebook ?(sizes = default_sizes) ?(pop_count = 40) ?(peer_fraction = 1.0)
    ?(params = Params.default) ?(routes_per_prefix = 3) () =
  Netsim_obs.Span.with_ ~name:"scenario.facebook" @@ fun () ->
  let root = Sm.create sizes.seed in
  let base =
    Generator.generate { sizes.base with Generator.seed = sizes.seed }
  in
  let spec =
    {
      (Deployment.default_spec ~name:"CONTENT"
         ~pop_metros:(spread_metros pop_count))
      with
      Deployment.peer_fraction;
    }
  in
  let deployment = Deployment.deploy base ~rng:(Sm.of_label root "deploy") spec in
  let prefixes =
    Population.generate deployment.Deployment.topo
      ~rng:(Sm.of_label root "population") ~n_prefixes:sizes.n_prefixes
  in
  let entries = Egress.compute deployment ~prefixes ~k:routes_per_prefix in
  let congestion =
    Congestion.create params deployment.Deployment.topo ~seed:(sizes.seed + 1)
  in
  {
    fb_deployment = deployment;
    fb_prefixes = prefixes;
    fb_entries = entries;
    fb_congestion = congestion;
    fb_root = root;
    fb_days = sizes.days;
    fb_samples_per_route = 7;
  }

(* ---- Microsoft-like -------------------------------------------------- *)

type microsoft = {
  ms_system : Anycast.t;
  ms_prefixes : Prefix.t array;
  ms_assignment : Ldns.assignment;
  ms_congestion : Congestion.t;
  ms_root : Sm.t;
  ms_days : float;
}

let microsoft ?(sizes = default_sizes) ?(site_count = 36)
    ?(params = Params.default) ?(ldns_params = Ldns.default_params) () =
  Netsim_obs.Span.with_ ~name:"scenario.microsoft" @@ fun () ->
  let root = Sm.create sizes.seed in
  let base =
    Generator.generate { sizes.base with Generator.seed = sizes.seed }
  in
  (* Front-end placement mirrors the 2015 Microsoft deployment: dense
     in North America and Europe, sparser elsewhere. *)
  let dense =
    top_metros
      ~continents:[ Region.North_america; Region.Europe ]
      (site_count * 2 / 3)
  in
  let rest = max 0 (site_count - List.length dense) in
  let sparse =
    List.concat_map
      (fun (continent, share) ->
        top_metros ~continents:[ continent ] (max 1 (rest * share / 12)))
      [
        (Region.Asia, 6);
        (Region.South_america, 3);
        (Region.Oceania, 2);
        (Region.Africa, 1);
      ]
  in
  (* The 2015-era CDN peers far less densely than the Facebook-like
     provider and its transit sessions sit at a handful of global
     hubs — which is exactly what lets BGP carry some clients to a
     distant front-end (the Fig. 3 tail). *)
  let spec =
    {
      (Deployment.default_spec ~name:"ANYCAST-CDN" ~pop_metros:(dense @ sparse))
      with
      Deployment.pni_prob = 0.45;
      public_peer_prob = 0.45;
      dual_pni_prob = 0.2;
      transit_count = 3;
      transit_session_metros = 2;
    }
  in
  let deployment = Deployment.deploy base ~rng:(Sm.of_label root "deploy") spec in
  let system = Anycast.make deployment in
  let prefixes =
    Population.generate deployment.Deployment.topo
      ~rng:(Sm.of_label root "population") ~n_prefixes:sizes.n_prefixes
  in
  let assignment =
    Ldns.assign deployment.Deployment.topo ~prefixes
      ~rng:(Sm.of_label root "ldns") ldns_params
  in
  let congestion =
    Congestion.create params deployment.Deployment.topo ~seed:(sizes.seed + 2)
  in
  {
    ms_system = system;
    ms_prefixes = prefixes;
    ms_assignment = assignment;
    ms_congestion = congestion;
    ms_root = root;
    ms_days = sizes.days;
  }

(* ---- Google-like ----------------------------------------------------- *)

type google = {
  gc_tiers : Tiers.t;
  gc_vantage : Vantage.t array;
  gc_congestion : Congestion.t;
  gc_root : Sm.t;
  gc_days : float;
}

let google ?(sizes = default_sizes) ?(n_vantage = 800) ?(params = Params.default)
    () =
  Netsim_obs.Span.with_ ~name:"scenario.google" @@ fun () ->
  let root = Sm.create sizes.seed in
  let base =
    Generator.generate { sizes.base with Generator.seed = sizes.seed }
  in
  let cloud = Cloud.deploy base ~rng:(Sm.of_label root "deploy") () in
  let tiers = Tiers.make cloud ~params in
  let vantage =
    Vantage.select (Cloud.topo cloud) ~rng:(Sm.of_label root "vantage")
      ~n:n_vantage
  in
  let congestion =
    Congestion.create params (Cloud.topo cloud) ~seed:(sizes.seed + 3)
  in
  {
    gc_tiers = tiers;
    gc_vantage = vantage;
    gc_congestion = congestion;
    gc_root = root;
    gc_days = sizes.days;
  }
