module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Relation = Netsim_topo.Relation
module Egress = Netsim_cdn.Egress
module Edge_controller = Netsim_cdn.Edge_controller
module Congestion = Netsim_latency.Congestion
module Rtt = Netsim_latency.Rtt
module Walk = Netsim_bgp.Walk

type point = {
  peer_fraction : float;
  pni_count : int;
  median_ms : float;
  p95_ms : float;
  improvable_5ms : float;
  mean_egress_utilization : float;
  peer_route_share : float;
}

type result = { figure : Figure.t; points : point list }

(* Assign each prefix's egress volume to the first link of its BGP
   route, then feed the loads into the congestion model. *)
let assign_loads (fb : Scenario.facebook) ~total_egress_gbps =
  let loads = Hashtbl.create 256 in
  Array.iter
    (fun (e : Egress.entry) ->
      match e.Egress.options with
      | [] -> ()
      | (bgp : Egress.option_route) :: _ -> (
          match bgp.Egress.flow.Rtt.walk.Walk.hops with
          | first :: _ ->
              let id = first.Walk.link.Relation.id in
              let cur =
                match Hashtbl.find_opt loads id with Some v -> v | None -> 0.
              in
              Hashtbl.replace loads id
                (cur +. (e.Egress.prefix.Prefix.weight *. total_egress_gbps))
          | [] -> ()))
    fb.Scenario.fb_entries;
  Hashtbl.iter
    (fun link_id gbps ->
      Congestion.set_offered_load fb.Scenario.fb_congestion ~link_id ~gbps)
    loads;
  loads

let measure_point (fb : Scenario.facebook) ~loads ~fraction =
  let rng = Sm.of_label fb.Scenario.fb_root "peering-ablation" in
  let windows = Window.windows ~days:1. ~length_min:60. in
  let samples = 5 in
  let bgp_medians = ref [] in
  let improvements = ref [] in
  let peer_weight = ref 0. and total_weight = ref 0. in
  Array.iter
    (fun (e : Egress.entry) ->
      let w = e.Egress.prefix.Prefix.weight in
      total_weight := !total_weight +. w;
      (match e.Egress.options with
      | bgp :: _ when Egress.is_peer_route bgp -> peer_weight := !peer_weight +. w
      | _ -> ());
      let per_window =
        List.map
          (fun win ->
            Edge_controller.measure_window fb.Scenario.fb_congestion ~rng
              ~samples_per_route:samples win e)
          windows
      in
      List.iter
        (fun (r : Edge_controller.window_result) ->
          bgp_medians :=
            (r.Edge_controller.bgp.Edge_controller.median_ms, w) :: !bgp_medians;
          match Edge_controller.improvement_ms r with
          | Some d -> improvements := (d, w) :: !improvements
          | None -> ())
        per_window)
    fb.Scenario.fb_entries;
  let latency_cdf = Cdf.of_weighted (Array.of_list !bgp_medians) in
  let improvable =
    match !improvements with
    | [] -> 0.
    | l -> Cdf.fraction_above (Cdf.of_weighted (Array.of_list l)) 5.
  in
  let utils =
    Hashtbl.fold
      (fun link_id _ acc ->
        Congestion.utilization fb.Scenario.fb_congestion ~link_id
          ~time_min:720.
        :: acc)
      loads []
  in
  let mean_util =
    match utils with
    | [] -> 0.
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  {
    peer_fraction = fraction;
    pni_count = fb.Scenario.fb_deployment.Netsim_cdn.Deployment.pni_count;
    median_ms = Cdf.median latency_cdf;
    p95_ms = Cdf.quantile latency_cdf 0.95;
    improvable_5ms = improvable;
    mean_egress_utilization = mean_util;
    peer_route_share =
      (if !total_weight > 0. then !peer_weight /. !total_weight else 0.);
  }

let run ?(fractions = [ 1.0; 0.75; 0.5; 0.25; 0.1 ])
    ?(total_egress_gbps = 4000.) ?(sizes = Scenario.default_sizes) () =
  let points =
    List.map
      (fun fraction ->
        let fb = Scenario.facebook ~sizes ~peer_fraction:fraction () in
        let loads = assign_loads fb ~total_egress_gbps in
        measure_point fb ~loads ~fraction)
      fractions
  in
  let series f name = Series.make name (List.map (fun p -> (p.peer_fraction, f p)) points) in
  let stats =
    match (List.nth_opt points 0, List.nth_opt points (List.length points - 1)) with
    | Some full, Some least ->
        [
          ("median_ms_full_peering", full.median_ms);
          ("median_ms_least_peering", least.median_ms);
          ("p95_ms_full_peering", full.p95_ms);
          ("p95_ms_least_peering", least.p95_ms);
          ("util_full_peering", full.mean_egress_utilization);
          ("util_least_peering", least.mean_egress_utilization);
        ]
    | _, _ -> []
  in
  let figure =
    Figure.make ~id:"peering"
      ~title:"Latency vs peering footprint (capacity-aware)"
      ~x_label:"Fraction of peers retained"
      ~y_label:"Traffic-weighted MinRTT (ms)" ~stats
      [
        series (fun p -> p.median_ms) "median";
        series (fun p -> p.p95_ms) "p95";
        series (fun p -> p.mean_egress_utilization *. 100.) "mean util (%)";
      ]
  in
  { figure; points }
