(** §3.1.1 — "BGP is good enough when all route options degrade
    together".

    Classifies every measured ⟨PoP, prefix⟩ pair from the Figure 1
    spraying data:

    - how often an alternate significantly beats BGP (transiently or
      persistently);
    - whether windows in which BGP's route degrades relative to its own
      baseline are also windows in which the alternates degrade
      (shared fate). *)

type pair_class =
  | Never_better  (** An alternate wins by ≥ θ in under 10 % of windows
                      (isolated episode flips, not a repeatable
                      opportunity). *)
  | Transiently_better of float
      (** Fraction of windows in which an alternate wins
          (0.1 ≤ f < 0.6). *)
  | Persistently_better
      (** An alternate wins in ≥ 60 % of windows — a stable geographic
          or provisioning advantage, not transient congestion
          avoidance. *)

type result = {
  figure : Figure.t;
  pairs : (int * pair_class) list;  (** (prefix id, class). *)
  shared_degradation : float;
      (** Among windows where BGP's route degraded ≥ θ above its own
          baseline, the fraction in which the best alternate degraded
          too. *)
  degraded_window_fraction : float;
      (** Fraction of windows with BGP-route degradation — compare
          against {!improvable_window_fraction}: degradation is more
          prevalent than improvement opportunity. *)
  improvable_window_fraction : float;
  persistent_share_of_wins : float;
      (** Of all pairs where alternates ever win, the share that are
          persistent — the paper: "most alternate paths which do beat
          BGP are consistently better all the time". *)
}

val analyze : ?threshold_ms:float -> Fig1_pop_egress.result -> result
(** [threshold_ms] defaults to 5. *)
