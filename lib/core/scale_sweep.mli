(** Internet-scale batched propagation experiment ([beatbgp scale]).

    Generates a {!Netsim_topo.Generator.generate_scale} topology,
    propagates a spread of stub-origin prefixes through
    {!Netsim_bgp.Rib_cache.run_batch} (fanned out over the domain pool
    in contiguous chunks via {!Netsim_par.Pool.map_batches}), and
    reports aggregate routing statistics.  All output derives from the
    routing states alone, so it is byte-identical for any
    [NETSIM_DOMAINS] value and RIB-cache setting — the property the
    [make verify] golden matrix pins down.

    With [sp_check] every batched state is additionally compared
    ({!Netsim_bgp.Propagate.equal}) against an independent
    {!Netsim_bgp.Propagate.run} of the same config — the differential
    guarantee, end to end through cache and pool. *)

type params = {
  sp_scale : Netsim_topo.Generator.scale_params;
  sp_origins : int;  (** Stub prefixes to propagate (clamped to stubs). *)
  sp_batch : int;  (** Origins per {!Netsim_bgp.Rib_cache.run_batch} call. *)
  sp_check : bool;  (** Differentially verify batched against sequential. *)
}

val default_params : params
(** {!Netsim_topo.Generator.scale_params} (≈74.5k ASes), 64 origins,
    batch 16, no check. *)

val small_params : params
(** Same, over {!Netsim_topo.Generator.small_scale_params} (≈600
    ASes). *)

val run : params -> (string, string) result
(** The rendered report, or an error (cap violation from the
    generator, or a differential-check failure naming the origins). *)
