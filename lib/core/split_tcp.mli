(** §4 — split TCP connections over a private WAN vs the public
    Internet.

    The paper flags as an open question how the latency benefit of
    terminating TCP at a nearby edge varies when the {e backend} of
    the split rides a private WAN versus the public Internet.  We
    model a small HTTPS fetch (TCP + TLS handshakes plus a few data
    round trips) under three designs for every qualifying vantage
    point of the Figure-5 scenario:

    - [direct]: end-to-end connection over the Standard tier (public
      BGP the whole way);
    - [split_wan]: handshakes against the nearest WAN edge, backend
      over the Premium tier's backbone;
    - [split_public]: handshakes against the nearest edge, backend
      over the public Internet (the pre-WAN Akamai design).

    Fetch time = [handshake_rtts] × edge RTT + [data_rounds] ×
    backend RTT (for the direct design the edge IS the data center). *)

type design = Direct | Split_wan | Split_public

type per_vp = {
  vp : Netsim_measure.Vantage.t;
  direct_ms : float;
  split_wan_ms : float;
  split_public_ms : float;
}

type result = {
  figure : Figure.t;
  points : per_vp list;
  median_saving_wan_ms : float;  (** direct − split_wan, median over VPs. *)
  median_saving_public_ms : float;
}

val run :
  ?handshake_rtts:float ->
  ?data_rounds:float ->
  Scenario.google ->
  result
(** Defaults: 3 handshake round trips (TCP + TLS 1.2), 2 data rounds. *)
