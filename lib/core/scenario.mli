(** Scenario builders for the paper's three settings.

    Each builder assembles a base Internet, grafts the provider,
    generates the client population, and prepares congestion state —
    everything an experiment needs, deterministic in one seed.  Sizes
    default to values that run each figure in seconds; tests shrink
    them, benches can grow them. *)

type sizes = {
  seed : int;
  base : Netsim_topo.Generator.params;  (** Base-Internet shape. *)
  n_prefixes : int;
  days : float;  (** Simulated measurement horizon. *)
}

val default_sizes : sizes
val test_sizes : sizes
(** Small topology and population for unit/integration tests. *)

(** The Facebook-like PoP-egress setting (§2.3.1, Figures 1–2). *)
type facebook = {
  fb_deployment : Netsim_cdn.Deployment.t;
  fb_prefixes : Netsim_traffic.Prefix.t array;
  fb_entries : Netsim_cdn.Egress.entry array;
  fb_congestion : Netsim_latency.Congestion.t;
  fb_root : Netsim_prng.Splitmix.t;
  fb_days : float;
  fb_samples_per_route : int;
}

val facebook :
  ?sizes:sizes ->
  ?pop_count:int ->
  ?peer_fraction:float ->
  ?params:Netsim_latency.Params.t ->
  ?routes_per_prefix:int ->
  unit ->
  facebook

(** The Microsoft-like anycast CDN setting (§2.3.2, Figures 3–4). *)
type microsoft = {
  ms_system : Netsim_cdn.Anycast.t;
  ms_prefixes : Netsim_traffic.Prefix.t array;
  ms_assignment : Netsim_cdn.Ldns.assignment;
  ms_congestion : Netsim_latency.Congestion.t;
  ms_root : Netsim_prng.Splitmix.t;
  ms_days : float;
}

val microsoft :
  ?sizes:sizes ->
  ?site_count:int ->
  ?params:Netsim_latency.Params.t ->
  ?ldns_params:Netsim_cdn.Ldns.params ->
  unit ->
  microsoft

(** The Google-like cloud-tiers setting (§2.3.3, Figure 5). *)
type google = {
  gc_tiers : Netsim_wan.Tiers.t;
  gc_vantage : Netsim_measure.Vantage.t array;
  gc_congestion : Netsim_latency.Congestion.t;
  gc_root : Netsim_prng.Splitmix.t;
  gc_days : float;
}

val google :
  ?sizes:sizes ->
  ?n_vantage:int ->
  ?params:Netsim_latency.Params.t ->
  unit ->
  google

val top_metros : ?continents:Netsim_geo.Region.continent list -> int -> int list
(** The [n] most populous metros (optionally restricted to some
    continents) — used to place PoPs and front-end sites. *)

val spread_metros : int -> int list
(** [n] metros spread across all continents roughly in proportion to
    a global provider's PoP distribution (NA/EU-heavy, but with
    presence on every continent) — the Facebook-like PoP set. *)
