module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Quantile = Netsim_stats.Quantile
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Anycast = Netsim_cdn.Anycast
module Redirector = Netsim_cdn.Redirector
module Rtt = Netsim_latency.Rtt

type per_client = {
  prefix : Prefix.t;
  choice : Redirector.choice;
  improvement_median_ms : float;
  improvement_p75_ms : float;
}

type result = {
  figure : Figure.t;
  clients : per_client list;
  redirected_fraction : float;
}

let half_split windows =
  let n = List.length windows in
  let rec go i acc = function
    | [] -> (List.rev acc, [])
    | w :: rest ->
        if i < n / 2 then go (i + 1) (w :: acc) rest
        else (List.rev acc, w :: rest)
  in
  go 0 [] windows

let eval_samples cong ~rng ~windows ~samples flow =
  List.concat_map
    (fun w ->
      List.init samples (fun _ ->
          Rtt.sample_ms cong ~rng ~time_min:(Window.mid_time w) flow))
    windows
  |> Array.of_list

let clamp lo hi v = Float.max lo (Float.min hi v)

let run (ms : Scenario.microsoft) =
  Netsim_obs.Span.with_ ~name:"fig4.run" @@ fun () ->
  let rng = Sm.of_label ms.Scenario.ms_root "fig4" in
  let windows = Window.windows ~days:ms.Scenario.ms_days ~length_min:120. in
  let train_windows, eval_windows = half_split windows in
  let table =
    Redirector.train ~client_sample:4 ms.Scenario.ms_system
      ~assignment:ms.Scenario.ms_assignment ~prefixes:ms.Scenario.ms_prefixes
      ~cong:ms.Scenario.ms_congestion ~rng ~windows:train_windows
      ~samples_per_window:3
  in
  let samples = 4 in
  let clients =
    Array.to_list ms.Scenario.ms_prefixes
    |> List.filter_map (fun (prefix : Prefix.t) ->
           let choice =
             Redirector.choice_for table ms.Scenario.ms_assignment prefix
           in
           let anycast_flow = Anycast.anycast_flow ms.Scenario.ms_system prefix in
           let chosen_flow =
             Redirector.flow_for_choice ms.Scenario.ms_system prefix choice
           in
           match (anycast_flow, chosen_flow) with
           | Some af, Some cf ->
               let a =
                 eval_samples ms.Scenario.ms_congestion ~rng
                   ~windows:eval_windows ~samples af
               in
               let c =
                 eval_samples ms.Scenario.ms_congestion ~rng
                   ~windows:eval_windows ~samples cf
               in
               Some
                 {
                   prefix;
                   choice;
                   improvement_median_ms =
                     Quantile.median a -. Quantile.median c;
                   improvement_p75_ms =
                     Quantile.quantile a 0.75 -. Quantile.quantile c 0.75;
                 }
           | _, _ -> None)
  in
  let weighted f =
    List.map (fun c -> (clamp (-400.) 400. (f c), c.prefix.Prefix.weight)) clients
  in
  let median_cdf =
    Cdf.of_weighted (Array.of_list (weighted (fun c -> c.improvement_median_ms)))
  in
  let p75_cdf =
    Cdf.of_weighted (Array.of_list (weighted (fun c -> c.improvement_p75_ms)))
  in
  let same_band = 2. in
  let stats =
    [
      ("frac_improved_median", Cdf.fraction_above median_cdf same_band);
      ( "frac_worse_median",
        Cdf.fraction_below median_cdf (-.same_band) );
      ("frac_improved_p75", Cdf.fraction_above p75_cdf same_band);
      ("frac_worse_p75", Cdf.fraction_below p75_cdf (-.same_band));
      ("redirected_fraction", Redirector.redirected_fraction table);
    ]
  in
  let figure =
    Figure.make ~id:"fig4"
      ~title:"Improvement over anycast from DNS redirection"
      ~x_label:"Improvement (ms) [anycast - predicted]"
      ~y_label:"CDF of weighted client prefixes" ~stats
      [
        Series.make "Median" (Cdf.cdf_points median_cdf);
        Series.make "75th" (Cdf.cdf_points p75_cdf);
      ]
  in
  {
    figure;
    clients;
    redirected_fraction = Redirector.redirected_fraction table;
  }
