module Sm = Netsim_prng.Splitmix
module Quantile = Netsim_stats.Quantile
module Cdf = Netsim_stats.Cdf
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Egress = Netsim_cdn.Egress
module Anycast = Netsim_cdn.Anycast
module Redirector = Netsim_cdn.Redirector
module Rtt = Netsim_latency.Rtt
module World = Netsim_geo.World
module City = Netsim_geo.City

type t = {
  name : string;
  serve : Prefix.t -> time_min:float -> rng:Sm.t -> float option;
}

let name t = t.name
let serve t prefix ~time_min ~rng = t.serve prefix ~time_min ~rng

let window_median cong flow ~time_min ~rng =
  Rtt.median_of_samples cong ~rng ~time_min ~count:7 flow

(* -- egress setting ---------------------------------------------------- *)

let entry_table (fb : Scenario.facebook) =
  let tbl = Hashtbl.create 256 in
  Array.iter
    (fun (e : Egress.entry) ->
      Hashtbl.replace tbl e.Egress.prefix.Prefix.id e)
    fb.Scenario.fb_entries;
  tbl

let egress_bgp (fb : Scenario.facebook) =
  let entries = entry_table fb in
  {
    name = "bgp";
    serve =
      (fun p ~time_min ~rng ->
        match Hashtbl.find_opt entries p.Prefix.id with
        | Some { Egress.options = o :: _; _ } ->
            Some (window_median fb.Scenario.fb_congestion o.Egress.flow ~time_min ~rng)
        | Some { Egress.options = []; _ } | None -> None);
  }

let oracle_over_options (fb : Scenario.facebook) ~name ~pick_per_window =
  let entries = entry_table fb in
  (* For the static oracle: per prefix, the option with the best
     whole-horizon floor is fixed at construction. *)
  let static_choice = Hashtbl.create 256 in
  if not pick_per_window then begin
    let topo = fb.Scenario.fb_deployment.Netsim_cdn.Deployment.topo in
    Hashtbl.iter
      (fun id (e : Egress.entry) ->
        let best =
          List.fold_left
            (fun acc (o : Egress.option_route) ->
              let floor =
                Rtt.floor_ms Netsim_latency.Params.default topo
                  fb.Scenario.fb_congestion o.Egress.flow
              in
              match acc with
              | Some (f, _) when f <= floor -> acc
              | _ -> Some (floor, o))
            None e.Egress.options
        in
        match best with
        | Some (_, o) -> Hashtbl.replace static_choice id o
        | None -> ())
      entries
  end;
  {
    name;
    serve =
      (fun p ~time_min ~rng ->
        match Hashtbl.find_opt entries p.Prefix.id with
        | None | Some { Egress.options = []; _ } -> None
        | Some e ->
            if pick_per_window then
              List.fold_left
                (fun acc (o : Egress.option_route) ->
                  let m =
                    window_median fb.Scenario.fb_congestion o.Egress.flow
                      ~time_min ~rng
                  in
                  match acc with
                  | Some b when b <= m -> acc
                  | _ -> Some m)
                None e.Egress.options
            else
              Hashtbl.find_opt static_choice p.Prefix.id
              |> Option.map (fun (o : Egress.option_route) ->
                     window_median fb.Scenario.fb_congestion o.Egress.flow
                       ~time_min ~rng));
  }

let egress_oracle fb =
  oracle_over_options fb ~name:"oracle-dynamic" ~pick_per_window:true

let egress_static_oracle fb =
  oracle_over_options fb ~name:"oracle-static" ~pick_per_window:false

(* -- anycast CDN setting ----------------------------------------------- *)

let anycast (ms : Scenario.microsoft) =
  {
    name = "anycast";
    serve =
      (fun p ~time_min ~rng ->
        Anycast.anycast_flow ms.Scenario.ms_system p
        |> Option.map (fun flow ->
               window_median ms.Scenario.ms_congestion flow ~time_min ~rng));
  }

let unicast_oracle ?(nearby_sites = 8) (ms : Scenario.microsoft) =
  let sites = Anycast.sites ms.Scenario.ms_system in
  let nearby p =
    let c = World.cities.(p.Prefix.city) in
    List.map (fun s -> (City.distance_km c World.cities.(s), s)) sites
    |> List.sort compare
    |> List.filteri (fun i _ -> i < nearby_sites)
    |> List.map snd
  in
  {
    name = "unicast-oracle";
    serve =
      (fun p ~time_min ~rng ->
        List.fold_left
          (fun acc site ->
            match Anycast.unicast_flow ms.Scenario.ms_system p ~site with
            | None -> acc
            | Some flow ->
                let m =
                  window_median ms.Scenario.ms_congestion flow ~time_min ~rng
                in
                (match acc with Some b when b <= m -> acc | _ -> Some m))
          None (nearby p));
  }

let dns_redirection ?(margin = 0.) ?name:(label = "dns-redirection")
    (ms : Scenario.microsoft) =
  let rng = Sm.of_label ms.Scenario.ms_root "scheme-redirector" in
  let windows = Window.windows ~days:(ms.Scenario.ms_days /. 2.) ~length_min:120. in
  let table =
    Redirector.train ~margin ~client_sample:4 ms.Scenario.ms_system
      ~assignment:ms.Scenario.ms_assignment ~prefixes:ms.Scenario.ms_prefixes
      ~cong:ms.Scenario.ms_congestion ~rng ~windows ~samples_per_window:3
  in
  {
    name = label;
    serve =
      (fun p ~time_min ~rng ->
        let choice = Redirector.choice_for table ms.Scenario.ms_assignment p in
        Redirector.flow_for_choice ms.Scenario.ms_system p choice
        |> Option.map (fun flow ->
               window_median ms.Scenario.ms_congestion flow ~time_min ~rng));
  }

(* -- comparison --------------------------------------------------------- *)

type report = {
  scheme_names : string list;
  medians : (string * float) list;
  p95s : (string * float) list;
  win_matrix : ((string * string) * float) list;
  unservable : (string * float) list;
}

let compare_schemes schemes ~prefixes ~rng ~windows =
  if schemes = [] then invalid_arg "Scheme.compare_schemes: no schemes";
  let names = List.map (fun s -> s.name) schemes in
  (* results.(i) = per-scheme list of (latency option, weight) aligned
     across (client, window) points. *)
  let points =
    Array.to_list prefixes
    |> List.concat_map (fun (p : Prefix.t) ->
           List.map (fun w -> (p, Window.mid_time w)) windows)
  in
  let evaluated =
    List.map
      (fun (p, time_min) ->
        (* Common random numbers: every scheme evaluates this point
           with an identical substream, so scheme differences are
           never sampling noise (and an oracle over a superset of
           routes can never lose to its baseline). *)
        let key = Printf.sprintf "point-%d-%.3f" p.Prefix.id time_min in
        ( p.Prefix.weight,
          List.map
            (fun s -> s.serve p ~time_min ~rng:(Sm.of_label rng key))
            schemes ))
      points
  in
  let nth_values i =
    List.filter_map
      (fun (w, vs) ->
        match List.nth vs i with Some v -> Some (v, w) | None -> None)
      evaluated
  in
  let medians, p95s, unservable =
    List.fold_left
      (fun (ms, ps, us) i ->
        let scheme_name = List.nth names i in
        let vals = nth_values i in
        let total_w =
          List.fold_left (fun acc (w, _) -> acc +. w) 0. evaluated
        in
        let served_w = List.fold_left (fun acc (_, w) -> acc +. w) 0. vals in
        let unserved =
          if total_w > 0. then 1. -. (served_w /. total_w) else 0.
        in
        match vals with
        | [] -> ((scheme_name, nan) :: ms, (scheme_name, nan) :: ps,
                 (scheme_name, unserved) :: us)
        | l ->
            let cdf = Cdf.of_weighted (Array.of_list l) in
            ( (scheme_name, Cdf.median cdf) :: ms,
              (scheme_name, Cdf.quantile cdf 0.95) :: ps,
              (scheme_name, unserved) :: us ))
      ([], [], [])
      (List.init (List.length schemes) Fun.id)
  in
  let win_matrix =
    List.concat
      (List.mapi
         (fun i a ->
           List.mapi
             (fun j b ->
               if i = j then (((a, b), 0.))
               else begin
                 let wins = ref 0. and total = ref 0. in
                 List.iter
                   (fun (w, vs) ->
                     match (List.nth vs i, List.nth vs j) with
                     | Some va, Some vb ->
                         total := !total +. w;
                         if va <= vb -. 2. then wins := !wins +. w
                     | _, _ -> ())
                   evaluated;
                 ((a, b), if !total > 0. then !wins /. !total else nan)
               end)
             names)
         names)
  in
  {
    scheme_names = names;
    medians = List.rev medians;
    p95s = List.rev p95s;
    win_matrix;
    unservable = List.rev unservable;
  }

let win_rate r a b = List.assoc (a, b) r.win_matrix

let render r =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%-18s %12s %12s %12s\n" "scheme" "median(ms)" "p95(ms)"
       "unservable");
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "%-18s %12.1f %12.1f %11.1f%%\n" n
           (List.assoc n r.medians) (List.assoc n r.p95s)
           (100. *. List.assoc n r.unservable)))
    r.scheme_names;
  Buffer.add_string buf "\nwin matrix (row beats column by >= 2 ms, weighted):\n";
  let short n = if String.length n > 15 then String.sub n 0 15 else n in
  Buffer.add_string buf (Printf.sprintf "%-18s" "");
  List.iter
    (fun n -> Buffer.add_string buf (Printf.sprintf " %16s" (short n)))
    r.scheme_names;
  Buffer.add_char buf '\n';
  List.iter
    (fun a ->
      Buffer.add_string buf (Printf.sprintf "%-18s" (short a));
      List.iter
        (fun b ->
          let v = win_rate r a b in
          Buffer.add_string buf
            (if a = b then Printf.sprintf " %16s" "-"
             else Printf.sprintf " %15.1f%%" (100. *. v)))
        r.scheme_names;
      Buffer.add_char buf '\n')
    r.scheme_names;
  Buffer.contents buf
