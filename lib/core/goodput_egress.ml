module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Egress = Netsim_cdn.Egress
module Goodput = Netsim_latency.Goodput

type result = { figure : Figure.t; ratios : (float * float) list }

let run ?(windows_per_day = 8) (fb : Scenario.facebook) =
  let rng = Sm.of_label fb.Scenario.fb_root "goodput" in
  let windows =
    Window.windows ~days:fb.Scenario.fb_days
      ~length_min:(1440. /. float_of_int windows_per_day)
  in
  let ratios = ref [] in
  Array.iter
    (fun (entry : Egress.entry) ->
      match entry.Egress.options with
      | (bgp : Egress.option_route) :: (_ :: _ as alternates) ->
          let w = entry.Egress.prefix.Prefix.weight in
          List.iter
            (fun win ->
              let time_min = Window.mid_time win in
              let goodput (o : Egress.option_route) =
                Goodput.flow_goodput_mbps fb.Scenario.fb_congestion ~rng
                  ~time_min o.Egress.flow
              in
              let bgp_gp = goodput bgp in
              let best_alt =
                List.fold_left
                  (fun acc o -> Float.max acc (goodput o))
                  0. alternates
              in
              if bgp_gp > 0. then
                ratios := (best_alt /. bgp_gp, w) :: !ratios)
            windows
      | _ -> ())
    fb.Scenario.fb_entries;
  let ratios = List.rev !ratios in
  let cdf = Cdf.of_weighted (Array.of_list ratios) in
  let clamp v = Float.max 0. (Float.min 3. v) in
  let stats =
    [
      ("frac_alternate_10pct_faster", Cdf.fraction_above cdf 1.1);
      ("frac_alternate_50pct_faster", Cdf.fraction_above cdf 1.5);
      ("frac_bgp_at_least_as_fast", Cdf.fraction_below cdf 1.0);
      ("median_ratio", Cdf.median cdf);
    ]
  in
  let figure =
    Figure.make ~id:"goodput"
      ~title:"Goodput: best alternate / BGP's route (footnote 3)"
      ~x_label:"Goodput ratio (alternate / BGP)"
      ~y_label:"Cumulative fraction of traffic" ~stats
      [
        Series.make "ratio CDF"
          (Cdf.cdf_points
             (Cdf.of_weighted
                (Array.of_list (List.map (fun (r, w) -> (clamp r, w)) ratios))));
      ]
  in
  { figure; ratios }
