(** §3.2.2 — predicting a grooming action's impact before announcing.

    Operators want to know what a prepend will do {e before} touching
    BGP.  We evaluate a cheap local predictor against ground truth:

    - {b Predictor}: a prepend on session [l] affects exactly the
      clients whose current anycast walk ends on [l]; each lands on
      the session its final-hop AS would pick next (hot-potato among
      the AS's remaining lowest-prepend sessions with the provider).
      No propagation is recomputed.
    - {b Ground truth}: rerun the full route computation with the
      prepend applied and read every client's new catchment.

    The predictor is exact for the final-hop mechanics but blind to
    upstream route changes (an AS switching next-hops entirely), so
    its accuracy measures how "local" grooming impact really is. *)

type action_eval = {
  link_id : int;  (** Prepended session. *)
  affected_weight : float;  (** Traffic predicted to move. *)
  predicted_correct : float;
      (** Weighted share of predicted-affected clients whose actual
          new catchment matches the prediction. *)
  unpredicted_movers : float;
      (** Weighted share of clients that moved although the predictor
          said they would not — upstream ripple effects. *)
}

type result = {
  figure : Figure.t;
  actions : action_eval list;
  mean_accuracy : float;
  mean_ripple : float;
}

val run : ?max_actions:int -> Scenario.microsoft -> result
(** Evaluate the predictor on up to [max_actions] (default 10)
    candidate prepends — the sessions attracting the most badly-caught
    traffic. *)
