module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Quantile = Netsim_stats.Quantile
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Relation = Netsim_topo.Relation
module Egress = Netsim_cdn.Egress
module Rtt = Netsim_latency.Rtt

type result = {
  figure : Figure.t;
  peer_vs_transit : (float * float) list;
  private_vs_public : (float * float) list;
}

(* Median MinRTT of one route option pooled over the whole horizon. *)
let route_median cong ~rng ~windows ~samples (o : Egress.option_route) =
  let values =
    List.concat_map
      (fun w ->
        List.init samples (fun _ ->
            Rtt.sample_ms cong ~rng ~time_min:(Window.mid_time w) o.Egress.flow))
      windows
  in
  Quantile.median (Array.of_list values)

let clamp lo hi v = Float.max lo (Float.min hi v)

let run (fb : Scenario.facebook) =
  Netsim_obs.Span.with_ ~name:"fig2.run" @@ fun () ->
  let rng = Sm.of_label fb.Scenario.fb_root "fig2" in
  (* Sample a few windows spread over the horizon; per-class medians
     are stable aggregates, not per-window quantities. *)
  let windows =
    Window.windows ~days:fb.Scenario.fb_days ~length_min:180.
  in
  let samples = 5 in
  let peer_vs_transit = ref [] and private_vs_public = ref [] in
  Array.iter
    (fun (entry : Egress.entry) ->
      let weight = entry.Egress.prefix.Prefix.weight in
      let median o =
        route_median fb.Scenario.fb_congestion ~rng ~windows ~samples o
      in
      let best options =
        match options with
        | [] -> None
        | l -> Some (List.fold_left Float.min infinity (List.map median l))
      in
      let peers, non_peers =
        List.partition Egress.is_peer_route entry.Egress.all_options
      in
      let transits = List.filter Egress.is_transit_route non_peers in
      (match (best peers, best transits) with
      | Some p, Some t ->
          peer_vs_transit := (p -. t, weight) :: !peer_vs_transit
      | _, _ -> ());
      let private_peers, public_peers =
        List.partition
          (fun o ->
            match Egress.route_kind o with
            | Relation.Peer_private -> true
            | Relation.Peer_public | Relation.C2p -> false)
          peers
      in
      match (best private_peers, best public_peers) with
      | Some pr, Some pu ->
          private_vs_public := (pr -. pu, weight) :: !private_vs_public
      | _, _ -> ())
    fb.Scenario.fb_entries;
  let peer_vs_transit = List.rev !peer_vs_transit in
  let private_vs_public = List.rev !private_vs_public in
  let series name values =
    match values with
    | [] -> Series.make name []
    | l ->
        Series.make name
          (Cdf.cdf_points
             (Cdf.of_weighted
                (Array.of_list
                   (List.map (fun (d, w) -> (clamp (-10.) 10. d, w)) l))))
  in
  let stats =
    let with_cdf values f =
      match values with
      | [] -> nan
      | l -> f (Cdf.of_weighted (Array.of_list l))
    in
    [
      ( "peer_vs_transit_median_ms",
        with_cdf peer_vs_transit (fun c -> Cdf.median c) );
      ( "peer_vs_transit_frac_within_5ms",
        with_cdf peer_vs_transit (fun c ->
            Cdf.fraction_below c 5. -. Cdf.fraction_below c (-5.)) );
      ( "private_vs_public_median_ms",
        with_cdf private_vs_public (fun c -> Cdf.median c) );
      ( "private_vs_public_frac_within_5ms",
        with_cdf private_vs_public (fun c ->
            Cdf.fraction_below c 5. -. Cdf.fraction_below c (-5.)) );
    ]
  in
  let figure =
    Figure.make ~id:"fig2"
      ~title:"Route-class latency differences at PoPs"
      ~x_label:"Median MinRTT difference (ms)"
      ~y_label:"Cumulative fraction of traffic" ~stats
      [
        series "Peering vs Transit" peer_vs_transit;
        series "Private vs Public" private_vs_public;
      ]
  in
  { figure; peer_vs_transit; private_vs_public }
