(** §3.2.2 — nature vs nurture: does anycast perform well because of
    the infrastructure, or because operators groom routes over time?

    Starting from the ungroomed deployment ("nature"), each grooming
    round finds clients whose anycast catchment is far slower than
    their best front-end, identifies the announcement session that
    attracts them, and prepends on it — the operator playbook the
    paper describes ("prepending to a particular peer at a particular
    location").  The result quantifies how much of anycast's final
    quality is nurture. *)

type round_stats = {
  round : int;
  frac_within_10ms : float;
  frac_worse_25ms : float;
  frac_worse_100ms : float;
  p95_gap_ms : float;
  actions_applied : int;  (** Cumulative prepend actions. *)
}

type result = {
  figure : Figure.t;
  rounds : round_stats list;  (** Head is the ungroomed baseline. *)
  total_actions : int;
}

val run :
  ?rounds:int -> ?gap_threshold_ms:float -> Scenario.microsoft -> result
(** [rounds] defaults to 4 grooming iterations; [gap_threshold_ms]
    (default 25) is the gap that triggers an action. *)
