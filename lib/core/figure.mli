(** Reproduced figures: named series plus headline statistics.

    Every experiment returns one of these; the CLI renders it as an
    ASCII plot + CSV, and the integration tests assert on the
    [stats] entries (shape claims from the paper's prose). *)

type t = {
  id : string;  (** e.g. "fig1". *)
  title : string;
  x_label : string;
  y_label : string;
  series : Netsim_stats.Series.t list;
  stats : (string * float) list;  (** Headline numbers, e.g.
                                      ("fraction_improvable_5ms", 0.03). *)
}

val make :
  id:string ->
  title:string ->
  x_label:string ->
  y_label:string ->
  ?stats:(string * float) list ->
  Netsim_stats.Series.t list ->
  t

val stat : t -> string -> float
(** @raise Not_found if the statistic was not recorded. *)

val stat_opt : t -> string -> float option

val render : t -> string
(** ASCII plot, stats block and CSV dump. *)

val to_csv : t -> string
