module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Quantile = Netsim_stats.Quantile
module Region = Netsim_geo.Region
module Tiers = Netsim_wan.Tiers
module Vantage = Netsim_measure.Vantage
module Campaign = Netsim_measure.Campaign

type per_country = {
  country : string;
  continent : Region.continent;
  vantage_count : int;
  diff_ms : float;
}

type result = {
  figure : Figure.t;
  countries : per_country list;
  qualifying_vps : int;
  premium_ingress_within_400km : float;
  standard_ingress_within_400km : float;
}

type vp_measurement = {
  vp : Vantage.t;
  premium_ms : float;
  standard_ms : float;
  premium_ingress_km : float;
  standard_ingress_km : float;
}

let measure_vp (gc : Scenario.google) ~rng vp =
  let tiers = gc.Scenario.gc_tiers in
  match
    ( Tiers.premium_flow tiers vp,
      Tiers.standard_flow tiers vp,
      Tiers.premium_trace tiers vp,
      Tiers.standard_trace tiers vp )
  with
  | Some pf, Some sf, Some pt, Some st ->
      let ping flow =
        Campaign.ping_median gc.Scenario.gc_congestion ~rng
          ~days:gc.Scenario.gc_days ~per_day:10 ~pings_per_round:5 flow
      in
      Some
        {
          vp;
          premium_ms = ping pf;
          standard_ms = ping sf;
          premium_ingress_km = pt.Campaign.ingress_km;
          standard_ingress_km = st.Campaign.ingress_km;
        }
  | _, _, _, _ -> None

let run (gc : Scenario.google) =
  Netsim_obs.Span.with_ ~name:"fig5.run" @@ fun () ->
  let rng = Sm.of_label gc.Scenario.gc_root "fig5" in
  let qualifying =
    Array.to_list gc.Scenario.gc_vantage
    |> List.filter (Tiers.qualifies gc.Scenario.gc_tiers)
  in
  let measurements = List.filter_map (measure_vp gc ~rng) qualifying in
  (* Per-country median of (standard - premium). *)
  let by_country = Hashtbl.create 64 in
  List.iter
    (fun m ->
      let c = Vantage.country m.vp in
      let existing =
        match Hashtbl.find_opt by_country c with Some l -> l | None -> []
      in
      Hashtbl.replace by_country c (m :: existing))
    measurements;
  let countries =
    Hashtbl.fold
      (fun country ms acc ->
        let diffs =
          Array.of_list (List.map (fun m -> m.standard_ms -. m.premium_ms) ms)
        in
        match ms with
        | [] -> acc
        | m :: _ ->
            {
              country;
              continent = Vantage.continent m.vp;
              vantage_count = List.length ms;
              diff_ms = Quantile.median diffs;
            }
            :: acc)
      by_country []
    |> List.sort (fun a b -> compare (a.continent, a.country) (b.continent, b.country))
  in
  let ingress_frac f =
    match measurements with
    | [] -> 0.
    | l ->
        let n = List.length l in
        let hits = List.length (List.filter (fun m -> f m <= 400.) l) in
        float_of_int hits /. float_of_int n
  in
  let frac_of pred l =
    match l with
    | [] -> nan
    | _ ->
        float_of_int (List.length (List.filter pred l))
        /. float_of_int (List.length l)
  in
  let western =
    List.filter
      (fun c ->
        match c.continent with
        | Region.North_america | Region.South_america | Region.Europe -> true
        | Region.Asia | Region.Africa | Region.Oceania -> false)
      countries
  in
  let asia_oceania =
    List.filter
      (fun c ->
        match c.continent with
        | Region.Asia | Region.Oceania -> true
        | Region.North_america | Region.South_america | Region.Europe
        | Region.Africa ->
            false)
      countries
  in
  let india = List.find_opt (fun c -> c.country = "IN") countries in
  let stats =
    [
      ( "frac_western_within_10ms",
        frac_of (fun c -> Float.abs c.diff_ms <= 10.) western );
      ( "frac_asia_oceania_premium_wins",
        frac_of (fun c -> c.diff_ms > 0.) asia_oceania );
      ( "india_diff_ms",
        match india with Some c -> c.diff_ms | None -> nan );
      ("premium_ingress_within_400km", ingress_frac (fun m -> m.premium_ingress_km));
      ("standard_ingress_within_400km", ingress_frac (fun m -> m.standard_ingress_km));
      ("qualifying_vps", float_of_int (List.length measurements));
    ]
  in
  let country_cdf =
    match countries with
    | [] -> Series.make "per-country diff CDF" []
    | l ->
        Series.make "per-country diff CDF"
          (Cdf.cdf_points
             (Cdf.of_samples (Array.of_list (List.map (fun c -> c.diff_ms) l))))
  in
  let continent_series continent name =
    let values =
      List.filter (fun c -> c.continent = continent) countries
      |> List.map (fun c -> c.diff_ms)
    in
    match values with
    | [] -> Series.make name []
    | l -> Series.make name (Cdf.cdf_points (Cdf.of_samples (Array.of_list l)))
  in
  let figure =
    Figure.make ~id:"fig5"
      ~title:"Standard - Premium median latency per country (positive: WAN wins)"
      ~x_label:"Median latency difference (ms) [standard - premium]"
      ~y_label:"CDF of countries" ~stats
      [
        country_cdf;
        continent_series Region.Europe "Europe";
        continent_series Region.Asia "Asia";
        continent_series Region.North_america "North America";
      ]
  in
  {
    figure;
    countries;
    qualifying_vps = List.length measurements;
    premium_ingress_within_400km = ingress_frac (fun m -> m.premium_ingress_km);
    standard_ingress_within_400km = ingress_frac (fun m -> m.standard_ingress_km);
  }

let render_map result =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "country  cont  #vp   std-prem(ms)   winner\n";
  Buffer.add_string buf
    "------------------------------------------------\n";
  List.iter
    (fun c ->
      let winner =
        if c.diff_ms > 10. then "PREMIUM (WAN)"
        else if c.diff_ms < -10. then "STANDARD (BGP)"
        else "~tie"
      in
      Buffer.add_string buf
        (Printf.sprintf "%-8s %-5s %4d   %+10.1f   %s\n" c.country
           (Region.continent_to_string c.continent)
           c.vantage_count c.diff_ms winner))
    result.countries;
  Buffer.contents buf
