module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Quantile = Netsim_stats.Quantile
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Region = Netsim_geo.Region
module World = Netsim_geo.World
module City = Netsim_geo.City
module Anycast = Netsim_cdn.Anycast
module Rtt = Netsim_latency.Rtt
module Walk = Netsim_bgp.Walk

type per_client = {
  prefix : Prefix.t;
  anycast_ms : float;
  best_unicast_ms : float;
  best_site : int;
  anycast_site : int;
}

type result = { figure : Figure.t; clients : per_client list }

let flow_median cong ~rng ~windows ~samples flow =
  let values =
    List.concat_map
      (fun w ->
        List.init samples (fun _ ->
            Rtt.sample_ms cong ~rng ~time_min:(Window.mid_time w) flow))
      windows
  in
  Quantile.median (Array.of_list values)

let nearest_sites sites ~city ~k =
  let c = World.cities.(city) in
  List.map (fun s -> (City.distance_km c World.cities.(s), s)) sites
  |> List.sort compare
  |> List.filteri (fun i _ -> i < k)
  |> List.map snd

let measure_clients ?(nearby_sites = 8) (ms : Scenario.microsoft) =
  let rng = Sm.of_label ms.Scenario.ms_root "fig3" in
  let windows = Window.windows ~days:ms.Scenario.ms_days ~length_min:240. in
  let samples = 4 in
  let sites = Anycast.sites ms.Scenario.ms_system in
  Array.to_list ms.Scenario.ms_prefixes
  |> List.filter_map (fun (prefix : Prefix.t) ->
         match Anycast.anycast_flow ms.Scenario.ms_system prefix with
         | None -> None
         | Some any_flow ->
             let anycast_ms =
               flow_median ms.Scenario.ms_congestion ~rng ~windows ~samples
                 any_flow
             in
             let anycast_site = Walk.entry_metro any_flow.Rtt.walk in
             let candidates =
               nearest_sites sites ~city:prefix.Prefix.city ~k:nearby_sites
             in
             let best =
               List.fold_left
                 (fun acc site ->
                   match
                     Anycast.unicast_flow ms.Scenario.ms_system prefix ~site
                   with
                   | None -> acc
                   | Some flow ->
                       let m =
                         flow_median ms.Scenario.ms_congestion ~rng ~windows
                           ~samples flow
                       in
                       (match acc with
                       | None -> Some (m, site)
                       | Some (bm, _) -> if m < bm then Some (m, site) else acc))
                 None candidates
             in
             (match best with
             | None -> None
             | Some (best_unicast_ms, best_site) ->
                 Some
                   { prefix; anycast_ms; best_unicast_ms; best_site; anycast_site }))

let run ?nearby_sites ms =
  Netsim_obs.Span.with_ ~name:"fig3.run" @@ fun () ->
  let clients =
    Netsim_obs.Span.with_ ~name:"fig3.measure_clients" (fun () ->
        measure_clients ?nearby_sites ms)
  in
  let gap c = Float.max 0. (c.anycast_ms -. c.best_unicast_ms) in
  let in_scope scope c =
    let city = World.cities.(c.prefix.Prefix.city) in
    Region.in_scope scope city.City.continent ~country:city.City.country
  in
  let ccdf_series name scope =
    let values =
      List.filter (in_scope scope) clients
      |> List.map (fun c -> (gap c, c.prefix.Prefix.weight))
    in
    match values with
    | [] -> Series.make name []
    | l -> Series.make name (Cdf.ccdf_points (Cdf.of_weighted (Array.of_list l)))
  in
  let world_cdf =
    Cdf.of_weighted
      (Array.of_list (List.map (fun c -> (gap c, c.prefix.Prefix.weight)) clients))
  in
  let stats =
    [
      ("frac_within_10ms_world", Cdf.fraction_below world_cdf 10.);
      ("frac_worse_25ms_world", Cdf.fraction_above world_cdf 25.);
      ("frac_worse_100ms_world", Cdf.fraction_above world_cdf 100.);
      ("median_gap_ms_world", Cdf.median world_cdf);
    ]
  in
  let figure =
    Figure.make ~id:"fig3"
      ~title:"Anycast vs best unicast front-end"
      ~x_label:"Anycast - best unicast (ms)"
      ~y_label:"CCDF of requests" ~stats
      [
        ccdf_series "Europe" Region.Europe_only;
        ccdf_series "World" Region.World;
        ccdf_series "United States" Region.United_states;
      ]
  in
  { figure; clients }
