(** The paper's quantitative prose claims as checkable records.

    Bands are deliberately generous: the substrate is a simulator, so
    the tests verify the {e shape} (who wins, roughly by how much,
    where the crossovers fall), not the authors' absolute numbers. *)

type t = {
  id : string;
  description : string;
  paper_value : string;  (** The claim as stated in the paper. *)
  measured : float;
  band : float * float;  (** Acceptable [lo, hi] for [measured]. *)
}

val passes : t -> bool

val of_figure : Figure.t -> t list
(** The claims attached to a figure's headline statistics; [] for
    figures with no tracked prose claim. *)

val render : t list -> string
(** One line per claim: id, pass/fail, measured vs band, paper text. *)
