module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Walk = Netsim_bgp.Walk
module Anycast = Netsim_cdn.Anycast
module Prefix = Netsim_traffic.Prefix
module Rtt = Netsim_latency.Rtt

type round_stats = {
  round : int;
  frac_within_10ms : float;
  frac_worse_25ms : float;
  frac_worse_100ms : float;
  p95_gap_ms : float;
  actions_applied : int;
}

type result = {
  figure : Figure.t;
  rounds : round_stats list;
  total_actions : int;
}

let gap (c : Fig3_anycast_gap.per_client) =
  Float.max 0.
    (c.Fig3_anycast_gap.anycast_ms -. c.Fig3_anycast_gap.best_unicast_ms)

let stats_of_clients ~round ~actions clients =
  let cdf =
    Cdf.of_weighted
      (Array.of_list
         (List.map
            (fun c ->
              (gap c, c.Fig3_anycast_gap.prefix.Prefix.weight))
            clients))
  in
  {
    round;
    frac_within_10ms = Cdf.fraction_below cdf 10.;
    frac_worse_25ms = Cdf.fraction_above cdf 25.;
    frac_worse_100ms = Cdf.fraction_above cdf 100.;
    p95_gap_ms = Cdf.quantile cdf 0.95;
    actions_applied = actions;
  }

(* The announcement session that attracted a mis-caught client: the
   final link of its anycast walk. *)
let offending_link system (c : Fig3_anycast_gap.per_client) =
  match Anycast.anycast_flow system c.Fig3_anycast_gap.prefix with
  | None -> None
  | Some flow -> (
      match List.rev flow.Rtt.walk.Walk.hops with
      | last :: _ -> Some last.Walk.link.Relation.id
      | [] -> None)

let run ?(rounds = 4) ?(gap_threshold_ms = 25.) (ms : Scenario.microsoft) =
  let prepends : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let config_with_prepends base =
    Announce.with_overrides base (fun link ->
        match Hashtbl.find_opt prepends link.Relation.id with
        | Some n ->
            let a = base.Announce.policy link in
            Some { a with Announce.prepend = a.Announce.prepend + n }
        | None -> None)
  in
  let base_config = Anycast.anycast_config ms.Scenario.ms_system in
  let rec go round scenario acc =
    let fig3 = Fig3_anycast_gap.run scenario in
    let clients = fig3.Fig3_anycast_gap.clients in
    let actions = Hashtbl.fold (fun _ n acc -> acc + n) prepends 0 in
    let stats = stats_of_clients ~round ~actions clients in
    if round >= rounds then (List.rev (stats :: acc), clients)
    else begin
      (* Prepend once on every session currently attracting a
         badly-caught client.  One-shot per session: re-prepending
         everything each round would eventually equalize all sessions
         and revert the catchments. *)
      let offenders =
        List.filter (fun c -> gap c >= gap_threshold_ms) clients
      in
      List.iter
        (fun c ->
          match offending_link scenario.Scenario.ms_system c with
          | Some link_id ->
              if not (Hashtbl.mem prepends link_id) then
                Hashtbl.replace prepends link_id 3
          | None -> ())
        offenders;
      let groomed =
        Anycast.with_grooming scenario.Scenario.ms_system
          (config_with_prepends base_config)
      in
      go (round + 1)
        { scenario with Scenario.ms_system = groomed }
        (stats :: acc)
    end
  in
  let round_list, _final_clients = go 0 ms [] in
  let total_actions = Hashtbl.length prepends in
  let series f name =
    Series.make name
      (List.map (fun r -> (float_of_int r.round, f r)) round_list)
  in
  let head = List.nth_opt round_list 0 in
  (* An operator keeps the configuration that worked best, not the
     last thing they tried. *)
  let best =
    List.fold_left
      (fun acc r ->
        match acc with
        | None -> Some r
        | Some b -> if r.p95_gap_ms < b.p95_gap_ms then Some r else acc)
      None round_list
  in
  let figure_stats =
    match (head, best) with
    | Some h, Some b ->
        [
          ("ungroomed_frac_within_10ms", h.frac_within_10ms);
          ("groomed_frac_within_10ms", b.frac_within_10ms);
          ("ungroomed_frac_worse_100ms", h.frac_worse_100ms);
          ("groomed_frac_worse_100ms", b.frac_worse_100ms);
          ("ungroomed_p95_gap_ms", h.p95_gap_ms);
          ("groomed_p95_gap_ms", b.p95_gap_ms);
          ("best_round", float_of_int b.round);
          ("total_actions", float_of_int total_actions);
        ]
    | _, _ -> []
  in
  let figure =
    Figure.make ~id:"grooming"
      ~title:"Anycast grooming: nature vs nurture"
      ~x_label:"Grooming round" ~y_label:"Gap metric" ~stats:figure_stats
      [
        series (fun r -> r.frac_within_10ms) "frac within 10ms";
        series (fun r -> r.frac_worse_100ms) "frac worse by 100ms";
        series (fun r -> r.p95_gap_ms /. 100.) "p95 gap (100ms units)";
      ]
  in
  { figure; rounds = round_list; total_actions }
