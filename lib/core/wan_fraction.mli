(** §3.3.2 — do private WANs struggle to beat BGP exactly when the BGP
    route already behaves like a single WAN?

    For every qualifying vantage point of the Figure 5 campaign, we
    compute the fraction of the Standard-tier path's carriage distance
    that rides a single AS (the "single-WAN fraction") and correlate
    it with the Standard−Premium latency difference.  The paper's
    hypothesis predicts: the higher the single-WAN fraction, the
    smaller Premium's advantage — with India (whole journey on one
    Tier-1 via Europe) as the extreme case. *)

type vp_point = {
  vp : Netsim_measure.Vantage.t;
  single_wan_fraction : float;
  diff_ms : float;  (** standard − premium. *)
}

type bucket = {
  lo : float;
  hi : float;
  count : int;
  mean_diff_ms : float;  (** Mean (standard − premium) for VPs whose
                             single-WAN fraction falls in the bucket. *)
}

type result = {
  figure : Figure.t;
  points : vp_point list;
  buckets : bucket list;
  correlation : float;
      (** Pearson correlation between single-WAN fraction and
          (standard − premium); the hypothesis predicts negative. *)
  india_mean_fraction : float;
      (** Mean single-WAN fraction among Indian VPs. *)
  world_mean_fraction : float;
}

val run : Scenario.google -> result
