module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Prefix = Netsim_traffic.Prefix

type point = {
  site_count : int;
  median_rtt_ms : float;
  p90_rtt_ms : float;
  miscatch_share : float;
  median_gap_ms : float;
}

type result = { figure : Figure.t; points : point list }

let measure sizes site_count =
  let ms = Scenario.microsoft ~sizes ~site_count () in
  let fig3 = Fig3_anycast_gap.run ms in
  let clients = fig3.Fig3_anycast_gap.clients in
  let weighted f =
    Cdf.of_weighted
      (Array.of_list
         (List.map
            (fun (c : Fig3_anycast_gap.per_client) ->
              (f c, c.Fig3_anycast_gap.prefix.Prefix.weight))
            clients))
  in
  let rtt = weighted (fun c -> c.Fig3_anycast_gap.anycast_ms) in
  let gap =
    weighted (fun c ->
        Float.max 0.
          (c.Fig3_anycast_gap.anycast_ms -. c.Fig3_anycast_gap.best_unicast_ms))
  in
  {
    site_count;
    median_rtt_ms = Cdf.median rtt;
    p90_rtt_ms = Cdf.quantile rtt 0.9;
    miscatch_share = Cdf.fraction_above gap 25.;
    median_gap_ms = Cdf.median gap;
  }

let run ?(site_counts = [ 6; 12; 18; 24; 36 ])
    ?(sizes = Scenario.default_sizes) () =
  let points = List.map (measure sizes) site_counts in
  let series f name =
    Series.make name
      (List.map (fun p -> (float_of_int p.site_count, f p)) points)
  in
  let stats =
    match (List.nth_opt points 0, List.nth_opt points (List.length points - 1)) with
    | Some sparse, Some dense ->
        [
          ("median_rtt_sparse_ms", sparse.median_rtt_ms);
          ("median_rtt_dense_ms", dense.median_rtt_ms);
          ("p90_rtt_sparse_ms", sparse.p90_rtt_ms);
          ("p90_rtt_dense_ms", dense.p90_rtt_ms);
          ("miscatch_sparse", sparse.miscatch_share);
          ("miscatch_dense", dense.miscatch_share);
        ]
    | _, _ -> []
  in
  let figure =
    Figure.make ~id:"sites"
      ~title:"Anycast performance vs front-end density"
      ~x_label:"Number of front-end sites" ~y_label:"ms / fraction" ~stats
      [
        series (fun p -> p.median_rtt_ms) "median anycast RTT (ms)";
        series (fun p -> p.p90_rtt_ms) "p90 anycast RTT (ms)";
        series (fun p -> p.miscatch_share *. 100.) "mis-caught share (%)";
      ]
  in
  { figure; points }
