(** Footnote-3 check: the Figure 1 comparison repeated for goodput.

    "We find qualitatively similar results for bandwidth (not
    shown)." — per ⟨PoP, prefix, window⟩ we compare the TCP goodput of
    BGP's egress route against the best alternate and build the
    traffic-weighted CDF of the ratio.  BGP is vindicated if the ratio
    mass sits at 1 (alternates no faster) with only a small tail
    above. *)

type result = {
  figure : Figure.t;
  ratios : (float * float) list;
      (** (best_alternate_goodput / bgp_goodput, weight); > 1 means an
          alternate had more goodput. *)
}

val run : ?windows_per_day:int -> Scenario.facebook -> result
