(** Figure 3: how far anycast is from the best unicast front-end.

    Clients measure the anycast prefix and their nearby unicast
    front-ends; the CCDF of (anycast − best unicast) is split into
    World / Europe / United States.  Mass near zero means BGP's
    anycast steering already lands most clients at (or within a few
    ms of) their best front-end; the tail is the opportunity that
    redirection could theoretically claim. *)

type per_client = {
  prefix : Netsim_traffic.Prefix.t;
  anycast_ms : float;
  best_unicast_ms : float;
  best_site : int;  (** Metro of the best unicast front-end. *)
  anycast_site : int;  (** Catchment site of the anycast flow. *)
}

type result = {
  figure : Figure.t;
  clients : per_client list;  (** Reused by grooming (§3.2.2). *)
}

val run : ?nearby_sites:int -> Scenario.microsoft -> result
(** [nearby_sites] (default 8): how many front-ends nearest to the
    client are probed, mirroring the original study's "number of
    nearby unicast addresses". *)
