(** Figure 2: latency of route classes at the provider's PoPs.

    Per ⟨PoP, prefix⟩, compares the median MinRTT of the best peering
    route against the best transit route (solid line in the paper),
    and the best private-interconnect peer against the best
    public-exchange peer (dashed line).  Values near zero mean the
    less-preferred class performs about as well — the paper's evidence
    that direct peering does not by itself explain BGP's good
    performance (§3.1.2). *)

type result = {
  figure : Figure.t;
  peer_vs_transit : (float * float) list;  (** (diff_ms, weight). *)
  private_vs_public : (float * float) list;
}

val run : Scenario.facebook -> result
