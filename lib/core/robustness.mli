(** Seed-robustness sweep: do the paper's claims hold across
    independently generated Internets?

    Re-runs every figure for a list of seeds (each seed draws a fresh
    topology, population, congestion weather and measurement noise)
    and reports, per tracked claim, the pass rate and the spread of
    the measured statistic.  This is the reproduction's answer to "is
    this one lucky seed?". *)

type claim_summary = {
  claim_id : string;
  pass_rate : float;  (** Fraction of seeds on which the claim passed. *)
  mean : float;
  std : float;
  min : float;
  max : float;
}

type result = {
  figure : Figure.t;
  claims : claim_summary list;
  seeds : int list;
  all_pass_rate : float;  (** Fraction of (seed, claim) pairs passing. *)
}

val run : ?seeds:int list -> ?sizes:Scenario.sizes -> unit -> result
(** Default seeds: [42; 43; 44; 45; 46].  [sizes] fields other than
    the seed are used for every run. *)
