module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Asn = Netsim_topo.Asn
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Route = Netsim_bgp.Route

type params = {
  sp_scale : Generator.scale_params;
  sp_origins : int;
  sp_batch : int;
  sp_check : bool;
}

let default_params =
  { sp_scale = Generator.scale_params; sp_origins = 64; sp_batch = 16;
    sp_check = false }

let small_params =
  { default_params with sp_scale = Generator.small_scale_params }

(* Origins are stub ASes spread evenly over the id range: stub ids grow
   with creation order, which the generator draws from the population
   distribution, so an even stride samples the whole planet rather
   than one metro's burst. *)
let pick_origins topo k =
  let stubs = Array.of_list (Topology.by_klass topo Asn.Stub) in
  let pool = if Array.length stubs > 0 then stubs
    else Array.init (Topology.as_count topo) Fun.id in
  let n = Array.length pool in
  let k = Stdlib.max 1 (Stdlib.min k n) in
  Array.init k (fun i -> pool.(i * n / k))

let run p =
  match Generator.generate_scale p.sp_scale with
  | Error e -> Error e
  | Ok topo ->
      Netsim_obs.Span.with_ ~name:"core.scale_sweep" @@ fun () ->
      let n = Topology.as_count topo in
      let origins = pick_origins topo p.sp_origins in
      let k = Array.length origins in
      let configs =
        Array.map (fun origin -> Announce.default ~origin) origins
      in
      (* The experiment's hot path: batched multi-origin propagation,
         fanned out over the domain pool in contiguous chunks.  States
         are byte-identical for any domain count and cache setting, so
         everything printed below is too. *)
      let states =
        Netsim_par.Pool.map_batches ~batch:(Stdlib.max 1 p.sp_batch)
          (fun chunk -> Rib_cache.run_batch topo chunk)
          configs
      in
      let check_failures = ref [] in
      if p.sp_check then
        Array.iteri
          (fun i st ->
            let solo = Propagate.run topo configs.(i) in
            if not (Propagate.equal st solo) then
              check_failures := origins.(i) :: !check_failures)
          states;
      match !check_failures with
      | _ :: _ as l ->
          Error
            (Printf.sprintf
               "differential check FAILED for %d origin(s): %s"
               (List.length l)
               (String.concat ", "
                  (List.rev_map string_of_int l)))
      | [] ->
          let buf = Buffer.create 1024 in
          let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
          pr "=== Internet-scale batched propagation ===\n";
          pr "topology: %d ASes, %d links (seed %d)\n" n
            (Topology.link_count topo) p.sp_scale.Generator.sc_seed;
          List.iter
            (fun klass ->
              pr "  %-8s %d\n"
                (Asn.klass_to_string klass)
                (List.length (Topology.by_klass topo klass)))
            [ Asn.Tier1; Asn.Transit; Asn.Eyeball; Asn.Stub ];
          pr "origins: %d stub prefixes, batch size %d\n" k
            (Stdlib.max 1 p.sp_batch);
          if p.sp_check then
            pr "differential check: OK (%d origins, batched == sequential)\n"
              k;
          (* Aggregate routing statistics over all (origin, AS) pairs;
             derived from the states alone, so deterministic for any
             domain count / cache setting. *)
          let reach_min = ref max_int and reach_max = ref 0 in
          let reach_total = ref 0 in
          let len_sum = ref 0 and len_count = ref 0 and len_max = ref 0 in
          let by_class = [| 0; 0; 0 |] in
          Array.iter
            (fun st ->
              let reach = ref 0 in
              for x = 0 to n - 1 do
                if Propagate.reachable st x then begin
                  incr reach;
                  match Propagate.best st x with
                  | None -> () (* the origin itself *)
                  | Some r ->
                      len_sum := !len_sum + r.Route.path_len;
                      if r.Route.path_len > !len_max then
                        len_max := r.Route.path_len;
                      incr len_count;
                      by_class.(Route.klass_rank r.Route.klass) <-
                        by_class.(Route.klass_rank r.Route.klass) + 1
                end
              done;
              reach_min := Stdlib.min !reach_min !reach;
              reach_max := Stdlib.max !reach_max !reach;
              reach_total := !reach_total + !reach)
            states;
          pr "reachability: min %d  max %d  mean %.1f  (of %d ASes)\n"
            !reach_min !reach_max
            (float_of_int !reach_total /. float_of_int k)
            n;
          let routed = Stdlib.max 1 !len_count in
          pr "path length: mean %.2f hops  max %d\n"
            (float_of_int !len_sum /. float_of_int routed)
            !len_max;
          pr "selected class: customer %.1f%%  peer %.1f%%  provider %.1f%%\n"
            (100. *. float_of_int by_class.(0) /. float_of_int routed)
            (100. *. float_of_int by_class.(1) /. float_of_int routed)
            (100. *. float_of_int by_class.(2) /. float_of_int routed);
          Ok (Buffer.contents buf)
