(** §3.2.2 open question — "how many sites are enough?"

    Sweeps the anycast deployment's front-end count and measures
    client latency and mis-catchment.  The paper asks how quickly the
    benefit of adding PoPs diminishes and whether more PoPs raise the
    chance of anycast picking a suboptimal one; this experiment
    answers both for the simulated Internet. *)

type point = {
  site_count : int;
  median_rtt_ms : float;  (** Traffic-weighted anycast RTT floor+congestion
                              median. *)
  p90_rtt_ms : float;
  miscatch_share : float;
      (** Weighted share of clients whose anycast gap to their best
          front-end is ≥ 25 ms. *)
  median_gap_ms : float;
}

type result = { figure : Figure.t; points : point list }

val run :
  ?site_counts:int list -> ?sizes:Scenario.sizes -> unit -> result
(** Default sweep: [6; 12; 18; 24; 36] sites. *)
