(** Figure 5: Standard-tier minus Premium-tier median latency, per
    country, to the US-Central data center.

    Vantage points are filtered as in the paper — the Premium route
    must enter the cloud directly from the VP's AS while the Standard
    route crosses at least one intermediate AS — then ping campaigns
    run against both tiers.  Positive per-country values mean the
    private WAN (Premium) was faster; negative values mean plain BGP
    over the public Internet won.  The paper's map becomes a
    per-country table plus per-continent summaries. *)

type per_country = {
  country : string;
  continent : Netsim_geo.Region.continent;
  vantage_count : int;
  diff_ms : float;  (** Median (standard − premium) over the country's
                        qualifying VPs. *)
}

type result = {
  figure : Figure.t;
  countries : per_country list;
  qualifying_vps : int;
  premium_ingress_within_400km : float;
      (** Fraction of qualifying VPs whose Premium traceroute enters
          the cloud within 400 km (paper: ≈ 80 %). *)
  standard_ingress_within_400km : float;  (** Paper: ≈ 10 %. *)
}

val run : Scenario.google -> result

val render_map : result -> string
(** Country-by-country text table grouped by continent (the textual
    stand-in for the paper's choropleth). *)
