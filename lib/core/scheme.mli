(** A unified scheme-comparison harness.

    The paper evaluates performance-aware routing schemes against BGP
    in three settings, each with its own methodology.  This module is
    the reproduction's unifying contribution: a routing {e scheme} is
    a value — something that serves a client in a measurement window —
    and any set of schemes can be compared under identical clients,
    windows and congestion weather, producing weighted latency CDFs
    and a pairwise win matrix.

    Schemes for the egress setting (Figure 1's cast):

    - {!egress_bgp} — BGP's preferred route, no overrides;
    - {!egress_oracle} — omniscient per-window controller over the
      sprayed top-k routes (Edge Fabric with a perfect crystal ball);
    - {!egress_static_oracle} — pick each client's best route {e once}
      (whole-horizon median) and never adapt: separating how much of
      the oracle's win is dynamism vs static route choice is the
      paper's §3.1.1 temporary-vs-always distinction.

    Schemes for the anycast CDN setting (Figures 3–4's cast):

    - {!anycast} — BGP anycast;
    - {!unicast_oracle} — per-window best nearby unicast front-end;
    - {!dns_redirection} — the realistic trained redirector;
    - {!hybrid} — redirector with a confidence margin. *)

type t
(** A named scheme: serves a client prefix in a window, yielding the
    median latency the client experiences (or [None] if the scheme
    cannot serve that client). *)

val name : t -> string

val serve :
  t ->
  Netsim_traffic.Prefix.t ->
  time_min:float ->
  rng:Netsim_prng.Splitmix.t ->
  float option

(* -- egress setting -- *)

val egress_bgp : Scenario.facebook -> t
val egress_oracle : Scenario.facebook -> t
val egress_static_oracle : Scenario.facebook -> t

(* -- anycast CDN setting -- *)

val anycast : Scenario.microsoft -> t

val unicast_oracle : ?nearby_sites:int -> Scenario.microsoft -> t

val dns_redirection : ?margin:float -> ?name:string -> Scenario.microsoft -> t
(** Trains the realistic redirector (sparse, traffic-biased samples)
    on the first half of the horizon at construction time. *)

(* -- comparison -- *)

type report = {
  scheme_names : string list;
  medians : (string * float) list;  (** Traffic-weighted median latency. *)
  p95s : (string * float) list;
  win_matrix : ((string * string) * float) list;
      (** [((a, b), w)]: weighted fraction of (client, window) points
          where scheme [a] beats scheme [b] by ≥ 2 ms. *)
  unservable : (string * float) list;
      (** Weighted share of clients a scheme could not serve. *)
}

val compare_schemes :
  t list ->
  prefixes:Netsim_traffic.Prefix.t array ->
  rng:Netsim_prng.Splitmix.t ->
  windows:Netsim_traffic.Window.t list ->
  report
(** Evaluate every scheme on every (client, window) point under the
    same congestion weather and build the report.
    @raise Invalid_argument on an empty scheme list. *)

val win_rate : report -> string -> string -> float
(** [win_rate r a b] looks up the win-matrix entry.
    @raise Not_found for unknown scheme names. *)

val render : report -> string
(** Text table: per-scheme medians/p95 and the win matrix. *)
