(** Stale-measurement routing over time (§4's "can you beat BGP in
    practice" question, under dynamics).

    Replays identical failure/congestion timelines through the
    discrete-event engine while sweeping the controller's measurement
    period: BGP reroutes the instant a path breaks, while the
    Edge-Fabric-style controller keeps serving its last measured-best
    egress until the next tick.  The figure plots the weighted mean
    and 10th-percentile latency advantage (BGP − controller, positive
    = controller wins) against staleness, one series per churn rate.
    The tracked claims assert that the fresh controller wins, that the
    advantage shrinks as staleness exceeds the churn timescale, and
    that the stale controller develops a losing tail. *)

type churn = {
  churn_name : string;
  flap_interval_min : float;  (** Mean between link flaps, fleet-wide. *)
  burst_interval_min : float;  (** Mean between congestion onsets. *)
}

type cell = {
  staleness_min : float;
  churn : string;
  mean_advantage_ms : float;  (** Weighted mean of BGP − controller. *)
  p10_advantage_ms : float;
  ticks : int;  (** Controller re-decisions. *)
  events : int;  (** Timeline events processed. *)
  dirty_entries : int;  (** Route entries re-derived incrementally. *)
  full_runs : int;  (** Full repropagations. *)
}

type result = {
  figure : Figure.t;
  cells : cell list;  (** One per (churn, staleness) pair. *)
}

val staleness_sweep : float list
val churns : churn list

val run : Scenario.facebook -> result
