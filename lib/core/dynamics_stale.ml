module Sm = Netsim_prng.Splitmix
module Series = Netsim_stats.Series
module Quantile = Netsim_stats.Quantile
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Decision = Netsim_bgp.Decision
module Walk = Netsim_bgp.Walk
module Deployment = Netsim_cdn.Deployment
module Egress = Netsim_cdn.Egress
module Edge_controller = Netsim_cdn.Edge_controller
module Rtt = Netsim_latency.Rtt
module Congestion = Netsim_latency.Congestion
module Prefix = Netsim_traffic.Prefix
module Event = Netsim_dynamics.Event
module Engine = Netsim_dynamics.Engine
module Script = Netsim_dynamics.Script

type churn = {
  churn_name : string;
  flap_interval_min : float;  (** Mean between link flaps, fleet-wide. *)
  burst_interval_min : float;  (** Mean between congestion onsets. *)
}

type cell = {
  staleness_min : float;
  churn : string;
  mean_advantage_ms : float;
  p10_advantage_ms : float;
  ticks : int;
  events : int;
  dirty_entries : int;
  full_runs : int;
}

type result = {
  figure : Figure.t;
  cells : cell list;
}

let staleness_sweep = [ 5.; 15.; 30.; 60.; 120.; 240. ]

let churns =
  [
    { churn_name = "fast"; flap_interval_min = 45.; burst_interval_min = 8. };
    { churn_name = "slow"; flap_interval_min = 180.; burst_interval_min = 30. };
  ]

let max_entries = 24
let eval_period_min = 10.
let decide_samples = 5
let eval_samples = 3

(* The provider/client pairs under study: the heaviest multi-route
   egress entries, so the controller has a real choice to make. *)
let select_entries (fb : Scenario.facebook) =
  Array.to_list fb.Scenario.fb_entries
  |> List.filter (fun (e : Egress.entry) -> List.length e.Egress.options >= 2)
  |> List.sort (fun (a : Egress.entry) (b : Egress.entry) ->
         let c =
           compare b.Egress.prefix.Prefix.weight a.Egress.prefix.Prefix.weight
         in
         if c <> 0 then c
         else compare a.Egress.prefix.Prefix.id b.Egress.prefix.Prefix.id)
  |> List.filteri (fun i _ -> i < max_entries)

let egress_links entries =
  List.concat_map
    (fun (e : Egress.entry) ->
      List.map
        (fun (o : Egress.option_route) ->
          o.Egress.flow.Rtt.walk.Walk.hops |> List.hd |> fun h ->
          h.Walk.link.Relation.id)
        e.Egress.options)
    entries
  |> List.sort_uniq compare |> Array.of_list

let walk_up eng (w : Walk.t) =
  List.for_all
    (fun (h : Walk.hop) -> Engine.link_is_up eng h.Walk.link.Relation.id)
    w.Walk.hops

let available_options eng (e : Egress.entry) =
  List.filter
    (fun (o : Egress.option_route) -> walk_up eng o.Egress.flow.Rtt.walk)
    e.Egress.options

(* BGP's serving flow right now: the highest-ranked precomputed option
   whose path is intact, else a fresh walk over the reconverged state
   (BGP has no stale-measurement problem — it reroutes immediately). *)
let bgp_flow eng d (e : Egress.entry) =
  match available_options eng e with
  | o :: _ -> Some o.Egress.flow
  | [] -> (
      let state = Engine.routing eng ~origin:e.Egress.prefix.Prefix.asid in
      let candidates =
        match
          Propagate.received_at_metro state d.Deployment.asid
            ~metro:e.Egress.pop
        with
        | [] -> Propagate.received state d.Deployment.asid
        | l -> l
      in
      match Decision.sort Decision.content_provider candidates with
      | [] -> None
      | route :: _ -> (
          match Walk.of_route state ~src:d.Deployment.asid ~route with
          | None -> None
          | Some walk -> (
              match e.Egress.options with
              | o :: _ -> Some { o.Egress.flow with Rtt.walk }
              | [] -> None)))

let simulate (fb : Scenario.facebook) ~entries ~links ~days
    ~(churn : churn) ~staleness_min =
  Netsim_obs.Span.with_ ~name:"dynamics.cell" @@ fun () ->
  let cong = fb.Scenario.fb_congestion in
  Congestion.clear_event_delays cong;
  let d = fb.Scenario.fb_deployment in
  let eng = Engine.create ~congestion:cong d.Deployment.topo in
  List.iter
    (fun origin -> Engine.track eng (Announce.default ~origin))
    (List.sort_uniq compare
       (List.map
          (fun (e : Egress.entry) -> e.Egress.prefix.Prefix.asid)
          entries));
  (* Event scripts are seeded per churn rate only, so every staleness
     cell of a row replays the identical timeline and the sweep
     isolates the controller's measurement age. *)
  let rng_of label =
    Sm.of_label fb.Scenario.fb_root
      (Printf.sprintf "dynamics.%s.%s" churn.churn_name label)
  in
  Script.schedule_all eng
    (Script.flaps (rng_of "flaps") ~link_ids:links
       ~mean_interval_min:churn.flap_interval_min ~mean_down_min:20. ~days);
  Script.schedule_all eng
    (Script.congestion_bursts (rng_of "bursts") ~link_ids:links
       ~mean_interval_min:churn.burst_interval_min ~median_extra_ms:35.
       ~sigma:0.7 ~mean_duration_min:30. ~days);
  Script.schedule_all eng
    (Script.measurement_ticks ~controller:0 ~period_min:staleness_min ~days);
  let horizon = float_of_int days *. 24. *. 60. in
  let rec eval_marks t acc =
    if t >= horizon then List.rev acc
    else eval_marks (t +. eval_period_min) ((t, Event.Mark "eval") :: acc)
  in
  Script.schedule_all eng (eval_marks (eval_period_min /. 2.) []);
  let entries = Array.of_list entries in
  let picks = Array.make (Array.length entries) None in
  let ticks = ref 0 in
  let redecide ~time =
    Array.iteri
      (fun i e ->
        let rng =
          Sm.of_label fb.Scenario.fb_root
            (Printf.sprintf "dynamics.%s.decide.%g.%d" churn.churn_name time i)
        in
        picks.(i) <-
          (match
             Edge_controller.decide cong ~rng ~samples_per_route:decide_samples
               ~time_min:time
               (available_options eng e)
           with
          | Some (o, _) -> Some o
          | None -> None);
        if Netsim_obs.Recorder.enabled () then begin
          (* [pick] is the chosen route's rank among the entry's
             precomputed options (-1 when nothing is available), so
             the log shows each decision alongside the measurement
             staleness it was made under. *)
          let pick =
            match picks.(i) with
            | None -> -1
            | Some o ->
                let rec idx k = function
                  | [] -> -1
                  | o' :: rest -> if o' == o then k else idx (k + 1) rest
                in
                idx 0 e.Egress.options
          in
          Netsim_obs.Recorder.(
            record ~kind:"controller.decide"
              [
                F ("t_min", time);
                F ("staleness_min", staleness_min);
                S ("churn", churn.churn_name);
                I ("entry", i);
                I ("pick", pick);
              ])
        end)
      entries
  in
  (* The controller starts fresh: a decision at t = 0. *)
  redecide ~time:0.;
  let advantages = ref [] in
  let evaluate ~time =
    Array.iteri
      (fun i e ->
        match bgp_flow eng d e with
        | None -> ()
        | Some bf ->
            let cf =
              match picks.(i) with
              | Some (o : Egress.option_route)
                when walk_up eng o.Egress.flow.Rtt.walk ->
                  o.Egress.flow
              | Some _ | None -> bf
            in
            let sample tag flow =
              let rng =
                Sm.of_label fb.Scenario.fb_root
                  (Printf.sprintf "dynamics.%s.eval.%g.%d.%s"
                     churn.churn_name time i tag)
              in
              Rtt.median_of_samples cong ~rng ~time_min:time
                ~count:eval_samples flow
            in
            let b = sample "bgp" bf in
            let c = if cf == bf then b else sample "ctrl" cf in
            advantages :=
              (b -. c, e.Egress.prefix.Prefix.weight) :: !advantages)
      entries
  in
  Engine.subscribe eng (fun _ ~time ev ->
      match ev with
      | Event.Measurement_tick _ ->
          incr ticks;
          redecide ~time
      | Event.Mark "eval" -> evaluate ~time
      | _ -> ());
  Engine.run eng ~until:horizon;
  Congestion.clear_event_delays cong;
  let adv = Array.of_list (List.rev !advantages) in
  let total_w = Array.fold_left (fun acc (_, w) -> acc +. w) 0. adv in
  let mean =
    if total_w <= 0. then 0.
    else
      Array.fold_left (fun acc (v, w) -> acc +. (v *. w)) 0. adv /. total_w
  in
  let p10 = if adv = [||] then 0. else Quantile.weighted_quantile adv 0.1 in
  let dirty, full_runs =
    List.fold_left
      (fun (d0, f0) (cv : Engine.convergence) ->
        (d0 + cv.Engine.cv_dirty, f0 + cv.Engine.cv_full_runs))
      (0, 0) (Engine.convergence_log eng)
  in
  {
    staleness_min;
    churn = churn.churn_name;
    mean_advantage_ms = mean;
    p10_advantage_ms = p10;
    ticks = !ticks;
    events = Engine.events_processed eng;
    dirty_entries = dirty;
    full_runs;
  }

let run (fb : Scenario.facebook) =
  Netsim_obs.Span.with_ ~name:"dynamics.run" @@ fun () ->
  let entries = select_entries fb in
  let links = egress_links entries in
  let days = max 1 (int_of_float (Float.min fb.Scenario.fb_days 2.)) in
  let cells =
    List.concat_map
      (fun churn ->
        List.map
          (fun staleness_min ->
            simulate fb ~entries ~links ~days ~churn ~staleness_min)
          staleness_sweep)
      churns
  in
  let row name = List.filter (fun c -> c.churn = name) cells in
  let series name f cs =
    Series.make name (List.map (fun c -> (c.staleness_min, f c)) cs)
  in
  let fast = row "fast" and slow = row "slow" in
  let first l = List.nth l 0 in
  let last l = List.nth l (List.length l - 1) in
  let fresh = first fast and stalest = last fast in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 cells in
  let fast_churn = List.find (fun c -> c.churn_name = "fast") churns in
  let stats =
    [
      ("advantage_fresh_ms", fresh.mean_advantage_ms);
      ("advantage_stalest_ms", stalest.mean_advantage_ms);
      ( "advantage_drop_ms",
        fresh.mean_advantage_ms -. stalest.mean_advantage_ms );
      ("tail_p10_stalest_ms", stalest.p10_advantage_ms);
      ("slow_advantage_drop_ms",
        (first slow).mean_advantage_ms -. (last slow).mean_advantage_ms);
      ("flap_interval_min", fast_churn.flap_interval_min);
      ("events_total", float_of_int (sum (fun c -> c.events)));
      ("dirty_entries_total", float_of_int (sum (fun c -> c.dirty_entries)));
      ("full_runs_total", float_of_int (sum (fun c -> c.full_runs)));
    ]
  in
  let figure =
    Figure.make ~id:"dynamics"
      ~title:"Controller advantage vs measurement staleness under churn"
      ~x_label:"Controller measurement staleness (minutes)"
      ~y_label:"BGP - controller latency (ms)" ~stats
      [
        series "mean advantage (fast churn)" (fun c -> c.mean_advantage_ms)
          fast;
        series "mean advantage (slow churn)" (fun c -> c.mean_advantage_ms)
          slow;
        series "p10 advantage (fast churn)" (fun c -> c.p10_advantage_ms) fast;
        series "p10 advantage (slow churn)" (fun c -> c.p10_advantage_ms) slow;
      ]
  in
  { figure; cells }
