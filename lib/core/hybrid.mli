(** §4 — hybrid anycast + DNS redirection.

    The paper points to hybrid approaches [Calder et al., IMC '15]
    that keep anycast by default and redirect only where the predicted
    gain is large.  We sweep the redirection margin: a resolver is
    redirected only if its best unicast front-end is predicted to beat
    anycast by more than [margin] ms.  The interesting trade-off: how
    much of the tail win survives as the regression rate collapses. *)

type point = {
  margin_ms : float;
  frac_improved : float;  (** Weighted clients improved ≥ 2 ms. *)
  frac_worse : float;  (** Weighted clients hurt ≥ 2 ms. *)
  mean_improvement_ms : float;  (** Traffic-weighted mean improvement. *)
  redirected_fraction : float;  (** Resolvers redirected. *)
}

type result = { figure : Figure.t; points : point list }

val run : ?margins:float list -> Scenario.microsoft -> result
(** Default margins: [0; 5; 10; 25; 50] ms. *)
