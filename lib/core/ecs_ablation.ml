module Series = Netsim_stats.Series
module Ldns = Netsim_cdn.Ldns

type point = { ecs_adoption : float; frac_improved : float; frac_worse : float }
type result = { figure : Figure.t; points : point list }

let measure sizes adoption =
  let ldns_params = { Ldns.default_params with Ldns.ecs_prob = adoption } in
  let ms = Scenario.microsoft ~sizes ~ldns_params () in
  let fig4 = Fig4_dns_redirection.run ms in
  let stat name = Figure.stat fig4.Fig4_dns_redirection.figure name in
  {
    ecs_adoption = adoption;
    frac_improved = stat "frac_improved_median";
    frac_worse = stat "frac_worse_median";
  }

let run ?(adoptions = [ 0.001; 0.25; 0.5; 1.0 ])
    ?(sizes = Scenario.default_sizes) () =
  let points = List.map (measure sizes) adoptions in
  let series f name =
    Series.make name (List.map (fun p -> (p.ecs_adoption, f p)) points)
  in
  let stats =
    match (List.nth_opt points 0, List.nth_opt points (List.length points - 1)) with
    | Some today, Some full ->
        [
          ("frac_worse_today", today.frac_worse);
          ("frac_worse_full_ecs", full.frac_worse);
          ("frac_improved_today", today.frac_improved);
          ("frac_improved_full_ecs", full.frac_improved);
        ]
    | _, _ -> []
  in
  let figure =
    Figure.make ~id:"ecs"
      ~title:"DNS redirection quality vs EDNS-Client-Subnet adoption"
      ~x_label:"ECS adoption" ~y_label:"Fraction of weighted clients" ~stats
      [
        series (fun p -> p.frac_improved) "frac improved";
        series (fun p -> p.frac_worse) "frac worse";
      ]
  in
  { figure; points }
