(** §3.1.3 — what happens to latency if the provider drastically
    reduces its peering footprint?

    The open question the paper poses cannot be run on a production
    network (peers would complain); in simulation we rebuild the
    provider with a fraction of its peers and — as the paper demands —
    account for the reduced capacity: egress traffic is assigned to
    the surviving links and queueing grows with their utilization. *)

type point = {
  peer_fraction : float;
  pni_count : int;
  median_ms : float;  (** Traffic-weighted median MinRTT of BGP's
                          serving route. *)
  p95_ms : float;
  improvable_5ms : float;  (** Fraction of traffic an omniscient
                               controller could improve by ≥ 5 ms. *)
  mean_egress_utilization : float;
  peer_route_share : float;  (** Fraction of traffic whose BGP route
                                 still leaves via a peer. *)
}

type result = { figure : Figure.t; points : point list }

val run :
  ?fractions:float list ->
  ?total_egress_gbps:float ->
  ?sizes:Scenario.sizes ->
  unit ->
  result
(** Default fractions: [1.0; 0.75; 0.5; 0.25; 0.1]; default egress
    volume 4000 Gbps spread over client prefixes by traffic weight. *)
