module Sm = Netsim_prng.Splitmix
module Series = Netsim_stats.Series
module Tiers = Netsim_wan.Tiers
module Vantage = Netsim_measure.Vantage
module Campaign = Netsim_measure.Campaign
module Rtt = Netsim_latency.Rtt

type vp_point = {
  vp : Vantage.t;
  single_wan_fraction : float;
  diff_ms : float;
}

type bucket = { lo : float; hi : float; count : int; mean_diff_ms : float }

type result = {
  figure : Figure.t;
  points : vp_point list;
  buckets : bucket list;
  correlation : float;
  india_mean_fraction : float;
  world_mean_fraction : float;
}

let pearson xs ys =
  let n = float_of_int (Array.length xs) in
  if n < 2. then 0.
  else begin
    let mean a = Array.fold_left ( +. ) 0. a /. n in
    let mx = mean xs and my = mean ys in
    let cov = ref 0. and vx = ref 0. and vy = ref 0. in
    Array.iteri
      (fun i x ->
        let dx = x -. mx and dy = ys.(i) -. my in
        cov := !cov +. (dx *. dy);
        vx := !vx +. (dx *. dx);
        vy := !vy +. (dy *. dy))
      xs;
    if !vx <= 0. || !vy <= 0. then 0. else !cov /. sqrt (!vx *. !vy)
  end

let run (gc : Scenario.google) =
  let rng = Sm.of_label gc.Scenario.gc_root "wanfrac" in
  let tiers = gc.Scenario.gc_tiers in
  let points =
    Array.to_list gc.Scenario.gc_vantage
    |> List.filter (Tiers.qualifies tiers)
    |> List.filter_map (fun vp ->
           match (Tiers.premium_flow tiers vp, Tiers.standard_flow tiers vp) with
           | Some pf, Some sf ->
               let ping flow =
                 Campaign.ping_median gc.Scenario.gc_congestion ~rng
                   ~days:gc.Scenario.gc_days ~per_day:6 ~pings_per_round:4 flow
               in
               Some
                 {
                   vp;
                   single_wan_fraction =
                     Campaign.single_as_fraction sf.Rtt.walk;
                   diff_ms = ping sf -. ping pf;
                 }
           | _, _ -> None)
  in
  let xs = Array.of_list (List.map (fun p -> p.single_wan_fraction) points) in
  let ys = Array.of_list (List.map (fun p -> p.diff_ms) points) in
  let correlation = pearson xs ys in
  let bucket_edges = [ (0., 0.5); (0.5, 0.75); (0.75, 0.9); (0.9, 1.01) ] in
  let buckets =
    List.map
      (fun (lo, hi) ->
        let members =
          List.filter
            (fun p -> p.single_wan_fraction >= lo && p.single_wan_fraction < hi)
            points
        in
        let count = List.length members in
        let mean_diff_ms =
          if count = 0 then nan
          else
            List.fold_left (fun acc p -> acc +. p.diff_ms) 0. members
            /. float_of_int count
        in
        { lo; hi; count; mean_diff_ms })
      bucket_edges
  in
  let mean_fraction filter =
    let members = List.filter filter points in
    match members with
    | [] -> nan
    | l ->
        List.fold_left (fun acc p -> acc +. p.single_wan_fraction) 0. l
        /. float_of_int (List.length l)
  in
  let india_mean_fraction =
    mean_fraction (fun p -> Vantage.country p.vp = "IN")
  in
  let world_mean_fraction = mean_fraction (fun _ -> true) in
  let stats =
    [
      ("correlation", correlation);
      ("india_mean_single_wan_fraction", india_mean_fraction);
      ("world_mean_single_wan_fraction", world_mean_fraction);
      ("qualifying_vps", float_of_int (List.length points));
    ]
  in
  let figure =
    Figure.make ~id:"wanfrac"
      ~title:"Premium advantage vs single-WAN fraction of the BGP path"
      ~x_label:"Single-AS fraction of standard-path carriage"
      ~y_label:"Mean standard - premium (ms)" ~stats
      [
        Series.make "bucket mean diff"
          (List.filter_map
             (fun b ->
               if b.count = 0 then None
               else Some ((b.lo +. b.hi) /. 2., b.mean_diff_ms))
             buckets);
      ]
  in
  {
    figure;
    points;
    buckets;
    correlation;
    india_mean_fraction;
    world_mean_fraction;
  }
