module Sm = Netsim_prng.Splitmix
module Series = Netsim_stats.Series
module Quantile = Netsim_stats.Quantile
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Walk = Netsim_bgp.Walk
module Anycast = Netsim_cdn.Anycast
module Deployment = Netsim_cdn.Deployment
module Redirector = Netsim_cdn.Redirector
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Params = Netsim_latency.Params
module Propagation = Netsim_latency.Propagation

type site_failure = {
  site : int;
  affected_share : float;
  stranded_share : float;
  anycast_delta_ms : float;
  dns_outage_share : float;
  dns_outage_client_seconds : float;
}

type result = {
  figure : Figure.t;
  failures : site_failure list;
  mean_anycast_delta_ms : float;
  mean_dns_outage_share : float;
}

(* Congestion-free floor of a client's anycast path on a given
   propagation state; None if unreachable. *)
let floor_to_anycast topo state (p : Prefix.t) =
  match Walk.from_metro state ~src:p.Prefix.asid ~start_metro:p.Prefix.city with
  | None -> None
  | Some walk ->
      Some
        ( Walk.entry_metro walk,
          Propagation.walk_rtt_ms Params.default topo walk
            ~terminal:Propagation.At_entry )

let provider_links_at topo asid metro =
  List.filter_map
    (fun (nb : Topology.neighbor) ->
      if nb.Topology.link.Relation.metro = metro then
        Some nb.Topology.link.Relation.id
      else None)
    (Topology.neighbors topo asid)

let fail_site (ms : Scenario.microsoft) ~table ~ttl_seconds ~site =
  let system = ms.Scenario.ms_system in
  let d = Anycast.deployment system in
  let topo = d.Deployment.topo in
  let asid = d.Deployment.asid in
  let before = Rib_cache.run topo (Announce.default ~origin:asid) in
  let failed_topo =
    Topology.remove_links topo (provider_links_at topo asid site)
  in
  (* The failed topology has a fresh generation stamp, so this can
     never hit a stale entry; [before], by contrast, is the same
     (topo, config) for every site in the sweep and hits after the
     first. *)
  let after = Rib_cache.run failed_topo (Announce.default ~origin:asid) in
  let affected = ref 0. and stranded = ref 0. in
  let deltas = ref [] in
  let dns_outage = ref 0. in
  Array.iter
    (fun (p : Prefix.t) ->
      (match floor_to_anycast topo before p with
      | Some (entry, floor_before) when entry = site -> (
          affected := !affected +. p.Prefix.weight;
          match floor_to_anycast failed_topo after p with
          | None -> stranded := !stranded +. p.Prefix.weight
          | Some (_, floor_after) ->
              deltas := (floor_after -. floor_before, p.Prefix.weight) :: !deltas)
      | Some _ | None -> ());
      (* DNS-redirected clients pinned to the failed site lose service
         for a TTL. *)
      match Redirector.choice_for table ms.Scenario.ms_assignment p with
      | Redirector.Use_site s when s = site ->
          dns_outage := !dns_outage +. p.Prefix.weight
      | Redirector.Use_site _ | Redirector.Use_anycast -> ())
    ms.Scenario.ms_prefixes;
  let anycast_delta_ms =
    match !deltas with
    | [] -> 0.
    | l -> Quantile.weighted_quantile (Array.of_list l) 0.5
  in
  {
    site;
    affected_share = !affected;
    stranded_share = !stranded;
    anycast_delta_ms;
    dns_outage_share = !dns_outage;
    dns_outage_client_seconds = !dns_outage *. ttl_seconds;
  }

let run ?(ttl_seconds = 300.) ?(max_sites = 8) (ms : Scenario.microsoft) =
  let rng = Sm.of_label ms.Scenario.ms_root "availability" in
  (* Train the redirector once on a short history so DNS pinning
     reflects its real decisions. *)
  let windows = Window.windows ~days:(ms.Scenario.ms_days /. 2.) ~length_min:180. in
  let table =
    Redirector.train ms.Scenario.ms_system
      ~assignment:ms.Scenario.ms_assignment ~prefixes:ms.Scenario.ms_prefixes
      ~cong:ms.Scenario.ms_congestion ~rng ~windows ~samples_per_window:2
  in
  (* Rank sites by catchment share and fail the biggest ones. *)
  let catchment = Anycast.catchment ms.Scenario.ms_system in
  let share_of site =
    Netsim_bgp.Catchment.clients_of_site catchment site
    |> List.fold_left
         (fun acc asid ->
           Array.fold_left
             (fun acc (p : Prefix.t) ->
               if p.Prefix.asid = asid then acc +. p.Prefix.weight else acc)
             acc ms.Scenario.ms_prefixes)
         0.
  in
  let sites =
    Anycast.sites ms.Scenario.ms_system
    |> List.map (fun s -> (share_of s, s))
    |> List.sort (fun a b -> compare (fst b) (fst a))
    |> List.filteri (fun i _ -> i < max_sites)
    |> List.map snd
  in
  let failures =
    List.map (fun site -> fail_site ms ~table ~ttl_seconds ~site) sites
    (* Order the figure by failed-site identity (metro id) so the
       x-axis is a stable label, not a rank that reshuffles whenever
       catchment shares move. *)
    |> List.sort (fun a b -> compare a.site b.site)
  in
  let mean f =
    match failures with
    | [] -> 0.
    | l -> List.fold_left (fun acc x -> acc +. f x) 0. l /. float_of_int (List.length l)
  in
  let mean_anycast_delta_ms = mean (fun f -> f.anycast_delta_ms) in
  let mean_dns_outage_share = mean (fun f -> f.dns_outage_share) in
  let stats =
    [
      ("mean_anycast_delta_ms", mean_anycast_delta_ms);
      ("mean_dns_outage_share", mean_dns_outage_share);
      ("mean_affected_share", mean (fun f -> f.affected_share));
      ("max_stranded_share", List.fold_left (fun acc f -> Float.max acc f.stranded_share) 0. failures);
      ("ttl_seconds", ttl_seconds);
    ]
  in
  let series f name =
    Series.make name
      (List.map (fun x -> (float_of_int x.site, f x)) failures)
  in
  let figure =
    Figure.make ~id:"availability"
      ~title:"Site failures: anycast reconvergence vs DNS pinning"
      ~x_label:"Failed site (metro id)"
      ~y_label:"Impact" ~stats
      [
        series (fun f -> f.affected_share) "affected traffic share";
        series (fun f -> f.anycast_delta_ms /. 100.) "anycast delta (100ms units)";
        series (fun f -> f.dns_outage_share) "DNS-pinned outage share";
      ]
  in
  { figure; failures; mean_anycast_delta_ms; mean_dns_outage_share }
