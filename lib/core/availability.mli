(** §4 — availability under failures: anycast resilience vs the
    DNS-caching exposure of redirection.

    The paper argues availability, not median latency, is the primary
    concern, and lists two specific effects this module quantifies:

    - {b Site failure.}  When a front-end site dies, anycast clients
      reconverge to another site as soon as BGP does; clients pinned
      to the site's unicast address by DNS redirection keep hitting it
      until their TTL expires.  For each failed site we measure the
      affected traffic share, the post-reconvergence latency penalty
      for anycast, any stranded traffic, and the client-weighted
      outage that redirection's caching causes.

    - {b Peer-link failure.}  Failing an individual interconnect at a
      content provider's PoP shifts its traffic to the next BGP route;
      the latency delta measures how much redundancy peering diversity
      buys (the §3.1.3/§4 increased-vs-reduced-peering discussion). *)

type site_failure = {
  site : int;  (** Failed front-end metro. *)
  affected_share : float;  (** Traffic-weighted share of clients whose
                               anycast catchment was the failed site. *)
  stranded_share : float;  (** Share left with no route after
                               reconvergence (should be ~0). *)
  anycast_delta_ms : float;
      (** Median floor-latency increase for affected clients after
          anycast reconvergence. *)
  dns_outage_share : float;
      (** Share of traffic that redirection had pinned to the failed
          site — unavailable for a full TTL. *)
  dns_outage_client_seconds : float;
      (** [dns_outage_share × ttl_seconds]: expected weighted outage. *)
}

type result = {
  figure : Figure.t;
  failures : site_failure list;  (** Ordered by site (metro id), which
                                     is also the figure's x-axis. *)
  mean_anycast_delta_ms : float;
  mean_dns_outage_share : float;
}

val run :
  ?ttl_seconds:float ->
  ?max_sites:int ->
  Scenario.microsoft ->
  result
(** Fail each of the [max_sites] (default 8) sites with the largest
    catchments, one at a time.  [ttl_seconds] defaults to 300 (a
    typical CDN DNS TTL). *)
