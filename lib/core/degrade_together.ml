module Quantile = Netsim_stats.Quantile
module Series = Netsim_stats.Series
module Histogram = Netsim_stats.Histogram
module Egress = Netsim_cdn.Egress
module Edge_controller = Netsim_cdn.Edge_controller
module Prefix = Netsim_traffic.Prefix

type pair_class =
  | Never_better
  | Transiently_better of float
  | Persistently_better

type result = {
  figure : Figure.t;
  pairs : (int * pair_class) list;
  shared_degradation : float;
  degraded_window_fraction : float;
  improvable_window_fraction : float;
  persistent_share_of_wins : float;
}

(* Group the flat window-result list by entry (prefix id keys both
   PoP and prefix: one entry per prefix). *)
let group_by_entry window_results =
  let tbl = Hashtbl.create 256 in
  List.iter
    (fun (r : Edge_controller.window_result) ->
      let key = r.Edge_controller.entry.Egress.prefix.Prefix.id in
      let existing =
        match Hashtbl.find_opt tbl key with Some l -> l | None -> []
      in
      Hashtbl.replace tbl key (r :: existing))
    window_results;
  tbl

let classify ~threshold_ms results =
  let wins =
    List.filter
      (fun r ->
        match Edge_controller.improvement_ms r with
        | Some d -> d >= threshold_ms
        | None -> false)
      results
  in
  let f =
    float_of_int (List.length wins) /. float_of_int (List.length results)
  in
  (* Under 10 % of windows a "win" is an isolated episode flip, not a
     repeatable opportunity; a pair counts as persistently better when
     the alternate wins in at least 60 % of windows. *)
  if f < 0.10 then Never_better
  else if f >= 0.60 then Persistently_better
  else Transiently_better f

let analyze ?(threshold_ms = 5.) (fig1 : Fig1_pop_egress.result) =
  let by_entry = group_by_entry fig1.Fig1_pop_egress.window_results in
  let pairs =
    Hashtbl.fold
      (fun key results acc -> (key, classify ~threshold_ms results) :: acc)
      by_entry []
    |> List.sort compare
  in
  (* Shared-fate analysis: per entry, the BGP route's baseline is its
     median across windows; a window is "degraded" when the BGP median
     exceeds baseline + θ.  In those windows, did the best alternate
     also sit ≥ θ above its own baseline? *)
  let shared = ref 0 and degraded = ref 0 in
  let total_windows = ref 0 and improvable_windows = ref 0 in
  Hashtbl.iter
    (fun _ results ->
      let bgp_medians =
        Array.of_list
          (List.map
             (fun (r : Edge_controller.window_result) ->
               r.Edge_controller.bgp.Edge_controller.median_ms)
             results)
      in
      let alt_medians =
        List.filter_map
          (fun (r : Edge_controller.window_result) ->
            Option.map
              (fun (m : Edge_controller.route_measurement) ->
                m.Edge_controller.median_ms)
              r.Edge_controller.best_alternate)
          results
      in
      if List.length alt_medians = List.length results then begin
        let alt_medians = Array.of_list alt_medians in
        let bgp_base = Quantile.median bgp_medians in
        let alt_base = Quantile.median alt_medians in
        Array.iteri
          (fun i bgp_m ->
            incr total_windows;
            let alt_m = alt_medians.(i) in
            if bgp_m -. alt_m >= threshold_ms then incr improvable_windows;
            if bgp_m >= bgp_base +. threshold_ms then begin
              incr degraded;
              if alt_m >= alt_base +. threshold_ms then incr shared
            end)
          bgp_medians
      end)
    by_entry;
  let ratio a b = if b = 0 then 0. else float_of_int a /. float_of_int b in
  let shared_degradation = ratio !shared !degraded in
  let degraded_window_fraction = ratio !degraded !total_windows in
  let improvable_window_fraction = ratio !improvable_windows !total_windows in
  let winners =
    List.filter (fun (_, c) -> c <> Never_better) pairs
  in
  let persistent =
    List.filter (fun (_, c) -> c = Persistently_better) winners
  in
  let persistent_share_of_wins =
    ratio (List.length persistent) (List.length winners)
  in
  (* Figure: histogram of per-pair win fractions. *)
  let hist = Histogram.create ~lo:0. ~hi:1.0001 ~bins:20 in
  List.iter
    (fun (_, c) ->
      let f =
        match c with
        | Never_better -> 0.
        | Transiently_better f -> f
        | Persistently_better -> 1.
      in
      Histogram.add hist f)
    pairs;
  let stats =
    [
      ("shared_degradation", shared_degradation);
      ("degraded_window_fraction", degraded_window_fraction);
      ("improvable_window_fraction", improvable_window_fraction);
      ("persistent_share_of_wins", persistent_share_of_wins);
      ("pairs_never_better",
       ratio (List.length pairs - List.length winners) (List.length pairs));
    ]
  in
  let figure =
    Figure.make ~id:"degrade"
      ~title:"Per-pair fraction of windows in which an alternate beats BGP"
      ~x_label:"Fraction of windows alternate wins (>= threshold)"
      ~y_label:"Fraction of pairs" ~stats
      [ Series.make "pairs" (Histogram.normalized hist) ]
  in
  {
    figure;
    pairs;
    shared_degradation;
    degraded_window_fraction;
    improvable_window_fraction;
    persistent_share_of_wins;
  }
