(** Figure 1: possible median-latency improvement from routing over
    alternate egress routes at a content provider's PoPs.

    For every ⟨PoP, prefix⟩ with at least two routes, each 15-minute
    window sprays sessions over BGP's top-k routes and compares the
    median MinRTT of BGP's choice against the best-performing
    alternate.  The CDF is weighted by traffic volume; the band shows
    the distribution of the per-window confidence-interval bounds.
    Positive x = an alternate was faster than BGP. *)

type result = {
  figure : Figure.t;
  window_results : Netsim_cdn.Edge_controller.window_result list;
      (** Every per-window measurement, reused by the §3.1.1
          degrade-together analysis. *)
}

val run : Scenario.facebook -> result

val improvements : result -> (float * float) list
(** [(improvement_ms, traffic_weight)] pairs over all measured
    ⟨PoP, prefix, window⟩ points (positive = alternate faster). *)
