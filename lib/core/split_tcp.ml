module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Quantile = Netsim_stats.Quantile
module Tiers = Netsim_wan.Tiers
module Cloud = Netsim_wan.Cloud
module Backbone = Netsim_wan.Backbone
module Vantage = Netsim_measure.Vantage
module Campaign = Netsim_measure.Campaign
module Rtt = Netsim_latency.Rtt
module Params = Netsim_latency.Params
module World = Netsim_geo.World
module City = Netsim_geo.City

type design = Direct | Split_wan | Split_public

type per_vp = {
  vp : Vantage.t;
  direct_ms : float;
  split_wan_ms : float;
  split_public_ms : float;
}

type result = {
  figure : Figure.t;
  points : per_vp list;
  median_saving_wan_ms : float;
  median_saving_public_ms : float;
}

let run ?(handshake_rtts = 3.) ?(data_rounds = 2.) (gc : Scenario.google) =
  let rng = Sm.of_label gc.Scenario.gc_root "split-tcp" in
  let tiers = gc.Scenario.gc_tiers in
  let cloud = Tiers.cloud tiers in
  let backbone = Tiers.backbone tiers in
  let dc = cloud.Cloud.dc_metro in
  let ping flow =
    Campaign.ping_median gc.Scenario.gc_congestion ~rng ~days:1. ~per_day:8
      ~pings_per_round:3 flow
  in
  let points =
    Array.to_list gc.Scenario.gc_vantage
    |> List.filter (Tiers.qualifies tiers)
    |> List.filter_map (fun vp ->
           match (Tiers.premium_flow tiers vp, Tiers.standard_flow tiers vp) with
           | Some premium, Some standard ->
               (* Edge RTT: the premium flow up to its WAN entry
                  (strip the backbone carriage). *)
               let edge_rtt =
                 ping { premium with Rtt.extra_ms = 0. }
               in
               let entry = Netsim_bgp.Walk.entry_metro premium.Rtt.walk in
               let wan_backend =
                 Backbone.carry_rtt_ms backbone Params.default entry dc
               in
               (* Public backend: approximate the edge-to-DC public
                  path with the standard tier's RTT minus the client's
                  edge RTT (both share the access segment). *)
               let standard_rtt = ping standard in
               let public_backend =
                 Float.max wan_backend (standard_rtt -. edge_rtt)
               in
               let fetch ~edge ~backend =
                 (handshake_rtts *. edge) +. (data_rounds *. backend)
               in
               Some
                 {
                   vp;
                   direct_ms =
                     fetch ~edge:standard_rtt ~backend:standard_rtt;
                   split_wan_ms = fetch ~edge:edge_rtt ~backend:(edge_rtt +. wan_backend);
                   split_public_ms =
                     fetch ~edge:edge_rtt ~backend:(edge_rtt +. public_backend);
                 }
           | _, _ -> None)
  in
  let savings f =
    match points with
    | [] -> nan
    | l -> Quantile.median (Array.of_list (List.map f l))
  in
  let median_saving_wan_ms = savings (fun p -> p.direct_ms -. p.split_wan_ms) in
  let median_saving_public_ms =
    savings (fun p -> p.direct_ms -. p.split_public_ms)
  in
  let dist_km (p : per_vp) =
    City.distance_km World.cities.(p.vp.Vantage.city) World.cities.(dc)
  in
  let cdf_series f name =
    match points with
    | [] -> Series.make name []
    | l ->
        Series.make name
          (Cdf.cdf_points (Cdf.of_samples (Array.of_list (List.map f l))))
  in
  (* Long-distance clients benefit most: record the saving split by
     distance halves. *)
  let far, near =
    List.partition (fun p -> dist_km p > 7000.) points
  in
  let mean f l =
    match l with
    | [] -> nan
    | _ -> List.fold_left (fun a p -> a +. f p) 0. l /. float_of_int (List.length l)
  in
  let stats =
    [
      ("median_saving_wan_ms", median_saving_wan_ms);
      ("median_saving_public_ms", median_saving_public_ms);
      ("mean_saving_wan_far_ms", mean (fun p -> p.direct_ms -. p.split_wan_ms) far);
      ("mean_saving_wan_near_ms", mean (fun p -> p.direct_ms -. p.split_wan_ms) near);
      ( "wan_backend_advantage_ms",
        median_saving_wan_ms -. median_saving_public_ms );
    ]
  in
  let figure =
    Figure.make ~id:"splittcp"
      ~title:"Small-object fetch time under split-TCP designs"
      ~x_label:"Fetch time (ms)" ~y_label:"CDF of vantage points" ~stats
      [
        cdf_series (fun p -> p.direct_ms) "direct (public, no split)";
        cdf_series (fun p -> p.split_wan_ms) "split, WAN backend";
        cdf_series (fun p -> p.split_public_ms) "split, public backend";
      ]
  in
  { figure; points; median_saving_wan_ms; median_saving_public_ms }
