type t = {
  id : string;
  description : string;
  paper_value : string;
  measured : float;
  band : float * float;
}

let passes c =
  let lo, hi = c.band in
  (not (Float.is_nan c.measured)) && c.measured >= lo && c.measured <= hi

let claim ~id ~description ~paper_value ~band figure stat =
  match Figure.stat_opt figure stat with
  | None -> None
  | Some measured -> Some { id; description; paper_value; measured; band }

let of_figure figure =
  let mk = claim in
  let candidates =
    match figure.Figure.id with
    | "fig1" ->
        [
          mk ~id:"fig1-improvable"
            ~description:"traffic improvable by >= 5 ms via alternates"
            ~paper_value:"2-4 % of traffic" ~band:(0.005, 0.15) figure
            "fraction_improvable_5ms";
          mk ~id:"fig1-median-near-zero"
            ~description:"median (BGP - best alternate) is close to zero"
            ~paper_value:"most traffic sees no improvement" ~band:(-5., 1.)
            figure "median_improvement_ms";
        ]
    | "fig2" ->
        [
          mk ~id:"fig2-private-public-parity"
            ~description:"private and public peers perform alike (median)"
            ~paper_value:"similar performance" ~band:(-5., 5.) figure
            "private_vs_public_median_ms";
          mk ~id:"fig2-transit-competitive"
            ~description:"best transit within tens of ms of best peer (median)"
            ~paper_value:"transits often similar to peers" ~band:(-70., 5.)
            figure "peer_vs_transit_median_ms";
        ]
    | "fig3" ->
        [
          mk ~id:"fig3-anycast-mostly-good"
            ~description:"anycast within 10 ms of best unicast"
            ~paper_value:"~70 % of requests" ~band:(0.55, 0.9) figure
            "frac_within_10ms_world";
          mk ~id:"fig3-tail"
            ~description:"anycast >= 100 ms worse in the tail"
            ~paper_value:"~10 % of requests" ~band:(0.005, 0.3) figure
            "frac_worse_100ms_world";
        ]
    | "fig4" ->
        [
          mk ~id:"fig4-improved"
            ~description:"redirection improves median latency"
            ~paper_value:"27 % of queries" ~band:(0.10, 0.45) figure
            "frac_improved_median";
          mk ~id:"fig4-worse"
            ~description:"redirection does worse than anycast"
            ~paper_value:"17 % of queries" ~band:(0.02, 0.35) figure
            "frac_worse_median";
        ]
    | "fig5" ->
        [
          mk ~id:"fig5-india"
            ~description:"Standard tier (public BGP) beats the WAN for India"
            ~paper_value:"consistently negative" ~band:(-150., -5.) figure
            "india_diff_ms";
          mk ~id:"fig5-asia-oceania"
            ~description:"Premium wins across most of Asia/Oceania"
            ~paper_value:"most countries" ~band:(0.5, 1.) figure
            "frac_asia_oceania_premium_wins";
          mk ~id:"fig5-ingress-contrast"
            ~description:"Premium enters the WAN near the VP far more often"
            ~paper_value:"80 % vs 10 % within 400 km" ~band:(0.3, 1.) figure
            "premium_ingress_within_400km";
        ]
    | "goodput" ->
        [
          mk ~id:"goodput-parity"
            ~description:"median goodput ratio (alternate / BGP) near 1"
            ~paper_value:"qualitatively similar to latency (footnote 3)"
            ~band:(0.9, 1.2) figure "median_ratio";
          mk ~id:"goodput-bgp-mostly-best"
            ~description:"BGP's route at least as fast for most traffic"
            ~paper_value:"qualitatively similar to latency (footnote 3)"
            ~band:(0.5, 1.) figure "frac_bgp_at_least_as_fast";
        ]
    | "dynamics" ->
        [
          mk ~id:"dyn-fresh-positive"
            ~description:"fresh controller beats BGP on average"
            ~paper_value:"controllers win while measurements are fresh"
            ~band:(0.01, 500.) figure "advantage_fresh_ms";
          mk ~id:"dyn-staleness-drop"
            ~description:"advantage shrinks as staleness outlives the churn"
            ~paper_value:"stale measurements erode the edge (section 4)"
            ~band:(0.005, 500.) figure "advantage_drop_ms";
          mk ~id:"dyn-tail-negative"
            ~description:"stalest controller develops a losing tail (p10)"
            ~paper_value:"beating BGP requires reacting faster than the churn"
            ~band:(-500., -0.001) figure "tail_p10_stalest_ms";
        ]
    | _ -> []
  in
  List.filter_map (fun c -> c) candidates

let render claims =
  let buf = Buffer.create 1024 in
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "%-26s %s  measured=%8.3f  band=[%g, %g]  paper: %s\n"
           c.id
           (if passes c then "PASS" else "FAIL")
           c.measured (fst c.band) (snd c.band) c.paper_value))
    claims;
  Buffer.contents buf
