module Series = Netsim_stats.Series
module Summary = Netsim_stats.Summary

type claim_summary = {
  claim_id : string;
  pass_rate : float;
  mean : float;
  std : float;
  min : float;
  max : float;
}

type result = {
  figure : Figure.t;
  claims : claim_summary list;
  seeds : int list;
  all_pass_rate : float;
}

let figures_for sizes =
  let fb = Scenario.facebook ~sizes () in
  let ms = Scenario.microsoft ~sizes () in
  let gc = Scenario.google ~sizes () in
  [
    (Fig1_pop_egress.run fb).Fig1_pop_egress.figure;
    (Fig2_route_classes.run fb).Fig2_route_classes.figure;
    (Fig3_anycast_gap.run ms).Fig3_anycast_gap.figure;
    (Fig4_dns_redirection.run ms).Fig4_dns_redirection.figure;
    (Fig5_cloud_tiers.run gc).Fig5_cloud_tiers.figure;
  ]

let run ?(seeds = [ 42; 43; 44; 45; 46 ]) ?(sizes = Scenario.default_sizes) ()
    =
  (* Each seed draws an independent Internet and reruns the full figure
     pipeline — perfectly parallel, so the sweep is sharded across the
     domain pool.  Results come back in seed-submission order and are
     folded exactly as the serial loop did, so summaries (and the
     merged trace) are byte-identical for any domain count. *)
  let per_seed_claims =
    Netsim_par.Pool.map
      (fun seed ->
        let figures = figures_for { sizes with Scenario.seed } in
        List.concat_map
          (fun fig ->
            List.map
              (fun (c : Claims.t) ->
                (c.Claims.id, c.Claims.measured, Claims.passes c))
              (Claims.of_figure fig))
          figures)
      (Array.of_list seeds)
  in
  (* claim id -> (measured values, pass flags) accumulated over seeds *)
  let per_claim : (string, float list * bool list) Hashtbl.t =
    Hashtbl.create 32
  in
  Array.iter
    (List.iter (fun (id, measured, pass) ->
         let values, passes =
           match Hashtbl.find_opt per_claim id with
           | Some acc -> acc
           | None -> ([], [])
         in
         Hashtbl.replace per_claim id (measured :: values, pass :: passes)))
    per_seed_claims;
  let claims =
    Hashtbl.fold
      (fun claim_id (values, passes) acc ->
        let s = Summary.create () in
        List.iter (Summary.add s) values;
        let pass_count = List.length (List.filter Fun.id passes) in
        {
          claim_id;
          pass_rate = float_of_int pass_count /. float_of_int (List.length passes);
          mean = Summary.mean s;
          std = (if Summary.count s > 1 then Summary.std s else 0.);
          min = Summary.min s;
          max = Summary.max s;
        }
        :: acc)
      per_claim []
    |> List.sort (fun a b -> compare a.claim_id b.claim_id)
  in
  let total_pairs =
    List.fold_left (fun acc _ -> acc) 0 claims |> ignore;
    List.length claims * List.length seeds
  in
  let total_passes =
    Hashtbl.fold
      (fun _ (_, passes) acc -> acc + List.length (List.filter Fun.id passes))
      per_claim 0
  in
  let all_pass_rate =
    if total_pairs = 0 then nan
    else float_of_int total_passes /. float_of_int total_pairs
  in
  let stats =
    ("all_pass_rate", all_pass_rate)
    :: ("seeds", float_of_int (List.length seeds))
    :: List.map (fun c -> (c.claim_id ^ "_pass_rate", c.pass_rate)) claims
  in
  let figure =
    Figure.make ~id:"robustness"
      ~title:"Claim pass rate across seeds"
      ~x_label:"Claim (rank)" ~y_label:"Pass rate" ~stats
      [
        Series.make "pass rate"
          (List.mapi (fun i c -> (float_of_int i, c.pass_rate)) claims);
      ]
  in
  { figure; claims; seeds; all_pass_rate }
