module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Egress = Netsim_cdn.Egress
module Edge_controller = Netsim_cdn.Edge_controller

type result = {
  figure : Figure.t;
  window_results : Edge_controller.window_result list;
}

(* Clamp plotted x into the paper's [-10, 10] ms viewport; statistics
   are computed on unclamped values. *)
let clamp lo hi v = Float.max lo (Float.min hi v)

let weight_of (r : Edge_controller.window_result) =
  r.Edge_controller.entry.Egress.prefix.Prefix.weight

let collect_results (fb : Scenario.facebook) =
  let rng = Sm.of_label fb.Scenario.fb_root "fig1" in
  let windows = Window.fifteen_minute ~days:fb.Scenario.fb_days in
  let multi_route =
    Array.to_list fb.Scenario.fb_entries
    |> List.filter (fun (e : Egress.entry) -> List.length e.Egress.options >= 2)
  in
  List.concat_map
    (fun entry ->
      List.map
        (fun w ->
          Edge_controller.measure_window fb.Scenario.fb_congestion ~rng
            ~samples_per_route:fb.Scenario.fb_samples_per_route w entry)
        windows)
    multi_route

let improvements_of results =
  List.filter_map
    (fun r ->
      match Edge_controller.improvement_ms r with
      | None -> None
      | Some d -> Some (d, weight_of r))
    results

let run fb =
  Netsim_obs.Span.with_ ~name:"fig1.run" @@ fun () ->
  let results =
    Netsim_obs.Span.with_ ~name:"fig1.collect" (fun () -> collect_results fb)
  in
  Netsim_obs.Span.with_ ~name:"fig1.aggregate" @@ fun () ->
  let improvements = improvements_of results in
  let bounds =
    List.filter_map
      (fun r ->
        match Edge_controller.improvement_bounds r with
        | None -> None
        | Some b -> Some (b, weight_of r))
      results
  in
  let cdf_series name values =
    Series.make name (Cdf.cdf_points (Cdf.of_weighted (Array.of_list values)))
  in
  let main =
    cdf_series "BGP - best alternate"
      (List.map (fun (d, w) -> (clamp (-10.) 10. d, w)) improvements)
  in
  let lower =
    cdf_series "CI lower bound"
      (List.map (fun ((lo, _), w) -> (clamp (-10.) 10. lo, w)) bounds)
  in
  let upper =
    cdf_series "CI upper bound"
      (List.map (fun ((_, hi), w) -> (clamp (-10.) 10. hi, w)) bounds)
  in
  let raw = Cdf.of_weighted (Array.of_list improvements) in
  let stats =
    [
      ("fraction_improvable_5ms", Cdf.fraction_above raw 5.);
      ("fraction_improvable_10ms", Cdf.fraction_above raw 10.);
      ("fraction_bgp_better_or_equal", Cdf.fraction_below raw 0.);
      ("median_improvement_ms", Cdf.median raw);
      ("p95_improvement_ms", Cdf.quantile raw 0.95);
    ]
  in
  let figure =
    Figure.make ~id:"fig1"
      ~title:
        "Median latency improvement available from alternate egress routes"
      ~x_label:"Median MinRTT difference (ms) [BGP - alternate]"
      ~y_label:"Cumulative fraction of traffic" ~stats
      [ main; lower; upper ]
  in
  { figure; window_results = results }

let improvements result = improvements_of result.window_results
