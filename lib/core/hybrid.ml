module Sm = Netsim_prng.Splitmix
module Cdf = Netsim_stats.Cdf
module Series = Netsim_stats.Series
module Quantile = Netsim_stats.Quantile
module Window = Netsim_traffic.Window
module Prefix = Netsim_traffic.Prefix
module Anycast = Netsim_cdn.Anycast
module Redirector = Netsim_cdn.Redirector
module Rtt = Netsim_latency.Rtt

type point = {
  margin_ms : float;
  frac_improved : float;
  frac_worse : float;
  mean_improvement_ms : float;
  redirected_fraction : float;
}

type result = { figure : Figure.t; points : point list }

let eval_margin (ms : Scenario.microsoft) ~rng ~train_windows ~eval_windows
    ~margin =
  let table =
    Redirector.train ~margin ~client_sample:4 ms.Scenario.ms_system
      ~assignment:ms.Scenario.ms_assignment ~prefixes:ms.Scenario.ms_prefixes
      ~cong:ms.Scenario.ms_congestion ~rng ~windows:train_windows
      ~samples_per_window:3
  in
  let samples flow =
    List.concat_map
      (fun w ->
        List.init 3 (fun _ ->
            Rtt.sample_ms ms.Scenario.ms_congestion ~rng
              ~time_min:(Window.mid_time w) flow))
      eval_windows
    |> Array.of_list
  in
  let improvements = ref [] in
  Array.iter
    (fun (p : Prefix.t) ->
      let choice = Redirector.choice_for table ms.Scenario.ms_assignment p in
      match
        ( Anycast.anycast_flow ms.Scenario.ms_system p,
          Redirector.flow_for_choice ms.Scenario.ms_system p choice )
      with
      | Some af, Some cf ->
          let improvement =
            Quantile.median (samples af) -. Quantile.median (samples cf)
          in
          improvements := (improvement, p.Prefix.weight) :: !improvements
      | _, _ -> ())
    ms.Scenario.ms_prefixes;
  let cdf = Cdf.of_weighted (Array.of_list !improvements) in
  {
    margin_ms = margin;
    frac_improved = Cdf.fraction_above cdf 2.;
    frac_worse = Cdf.fraction_below cdf (-2.);
    mean_improvement_ms = Cdf.mean cdf;
    redirected_fraction = Redirector.redirected_fraction table;
  }

let run ?(margins = [ 0.; 5.; 10.; 25.; 50. ]) (ms : Scenario.microsoft) =
  let rng = Sm.of_label ms.Scenario.ms_root "hybrid" in
  let windows = Window.windows ~days:ms.Scenario.ms_days ~length_min:120. in
  let n = List.length windows in
  let train_windows = List.filteri (fun i _ -> i < n / 2) windows in
  let eval_windows = List.filteri (fun i _ -> i >= n / 2) windows in
  let points =
    List.map
      (fun margin ->
        eval_margin ms ~rng ~train_windows ~eval_windows ~margin)
      margins
  in
  let series f name =
    Series.make name (List.map (fun p -> (p.margin_ms, f p)) points)
  in
  let stats =
    match (List.nth_opt points 0, List.nth_opt points (List.length points - 1)) with
    | Some agg, Some cons ->
        [
          ("aggressive_frac_worse", agg.frac_worse);
          ("conservative_frac_worse", cons.frac_worse);
          ("aggressive_mean_improvement_ms", agg.mean_improvement_ms);
          ("conservative_mean_improvement_ms", cons.mean_improvement_ms);
          ("aggressive_redirected", agg.redirected_fraction);
          ("conservative_redirected", cons.redirected_fraction);
        ]
    | _, _ -> []
  in
  let figure =
    Figure.make ~id:"hybrid"
      ~title:"Hybrid anycast+redirection: margin sweep"
      ~x_label:"Redirection margin (ms)" ~y_label:"Fraction / ms" ~stats
      [
        series (fun p -> p.frac_improved) "frac improved";
        series (fun p -> p.frac_worse) "frac worse";
        series (fun p -> p.redirected_fraction) "redirected resolvers";
      ]
  in
  { figure; points }
