(** §3.2.1 — what would EDNS-Client-Subnet adoption buy?

    The paper notes redirection is limited to per-LDNS granularity
    because ECS adoption outside public resolvers is < 0.1 %.  This
    ablation sweeps adoption from today's ≈0 to full deployment and
    reruns the Figure-4 comparison: with client-granularity
    prediction, the "redirection made things worse" mass should
    collapse while the improved mass grows. *)

type point = {
  ecs_adoption : float;
  frac_improved : float;
  frac_worse : float;
}

type result = { figure : Figure.t; points : point list }

val run :
  ?adoptions:float list -> ?sizes:Scenario.sizes -> unit -> result
(** Default sweep: [0.001; 0.25; 0.5; 1.0]. *)
