module Series = Netsim_stats.Series
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Walk = Netsim_bgp.Walk
module Anycast = Netsim_cdn.Anycast
module Deployment = Netsim_cdn.Deployment
module Prefix = Netsim_traffic.Prefix
module World = Netsim_geo.World
module City = Netsim_geo.City

type action_eval = {
  link_id : int;
  affected_weight : float;
  predicted_correct : float;
  unpredicted_movers : float;
}

type result = {
  figure : Figure.t;
  actions : action_eval list;
  mean_accuracy : float;
  mean_ripple : float;
}

(* Current anycast walk of every client (computed once). *)
let client_walks (ms : Scenario.microsoft) =
  Array.to_list ms.Scenario.ms_prefixes
  |> List.filter_map (fun (p : Prefix.t) ->
         match Anycast.anycast_flow ms.Scenario.ms_system p with
         | None -> None
         | Some flow -> Some (p, flow.Netsim_latency.Rtt.walk))

let final_hop (walk : Walk.t) =
  match List.rev walk.Walk.hops with
  | last :: _ -> Some last
  | [] -> None

(* The local prediction: among the final-hop AS's other sessions with
   the provider, hot-potato picks the one nearest its ingress. *)
let predict_new_site topo asid (hop : Walk.hop) ~prepended =
  let sessions =
    Topology.links_between topo hop.Walk.asid asid
    |> List.filter (fun (l : Relation.link) -> l.Relation.id <> prepended)
  in
  match sessions with
  | [] -> None
  | l ->
      let scored =
        List.map
          (fun (link : Relation.link) ->
            ( City.distance_km World.cities.(hop.Walk.ingress)
                World.cities.(link.Relation.metro),
              link.Relation.id,
              link.Relation.metro ))
          l
      in
      (match List.sort compare scored with
      | (_, _, metro) :: _ -> Some metro
      | [] -> None)

let evaluate_action (ms : Scenario.microsoft) ~walks ~link_id =
  let system = ms.Scenario.ms_system in
  let d = Anycast.deployment system in
  let topo = d.Deployment.topo in
  let asid = d.Deployment.asid in
  (* Predictions. *)
  let predictions =
    List.map
      (fun ((p : Prefix.t), walk) ->
        match final_hop walk with
        | Some hop when hop.Walk.link.Relation.id = link_id ->
            (p, `Moves (predict_new_site topo asid hop ~prepended:link_id))
        | Some _ | None -> (p, `Stays (Walk.entry_metro walk)))
      walks
  in
  (* Ground truth. *)
  let config =
    Announce.with_overrides (Anycast.anycast_config system) (fun link ->
        if link.Relation.id = link_id then
          Some { Announce.export = true; prepend = 3; no_export = false }
        else None)
  in
  let after = Propagate.run topo config in
  let actual_site (p : Prefix.t) =
    match
      Walk.from_metro after ~src:p.Prefix.asid ~start_metro:p.Prefix.city
    with
    | Some w -> Some (Walk.entry_metro w)
    | None -> None
  in
  let affected_weight = ref 0. in
  let correct = ref 0. in
  let ripple = ref 0. in
  List.iter
    (fun ((p : Prefix.t), prediction) ->
      let w = p.Prefix.weight in
      match prediction with
      | `Moves predicted -> (
          affected_weight := !affected_weight +. w;
          match (predicted, actual_site p) with
          | Some site, Some actual when site = actual -> correct := !correct +. w
          | _, _ -> ())
      | `Stays old_site -> (
          match actual_site p with
          | Some actual when actual <> old_site -> ripple := !ripple +. w
          | Some _ | None -> ()))
    predictions;
  {
    link_id;
    affected_weight = !affected_weight;
    predicted_correct =
      (if !affected_weight > 0. then !correct /. !affected_weight else nan);
    unpredicted_movers = !ripple;
  }

let run ?(max_actions = 10) (ms : Scenario.microsoft) =
  let walks = client_walks ms in
  (* Candidate actions: the final-hop sessions attracting the most
     traffic from far away. *)
  let tally = Hashtbl.create 64 in
  List.iter
    (fun ((p : Prefix.t), walk) ->
      match final_hop walk with
      | Some hop ->
          let distance =
            City.distance_km World.cities.(p.Prefix.city)
              World.cities.(Walk.entry_metro walk)
          in
          if distance > 2500. then begin
            let id = hop.Walk.link.Relation.id in
            let cur =
              match Hashtbl.find_opt tally id with Some v -> v | None -> 0.
            in
            Hashtbl.replace tally id (cur +. p.Prefix.weight)
          end
      | None -> ())
    walks;
  let candidates =
    Hashtbl.fold (fun id w acc -> (w, id) :: acc) tally []
    |> List.sort (fun a b -> compare (fst b) (fst a))
    |> List.filteri (fun i _ -> i < max_actions)
    |> List.map snd
  in
  let actions =
    List.map (fun link_id -> evaluate_action ms ~walks ~link_id) candidates
  in
  let valid = List.filter (fun a -> not (Float.is_nan a.predicted_correct)) actions in
  let mean f l =
    match l with
    | [] -> nan
    | _ -> List.fold_left (fun acc a -> acc +. f a) 0. l /. float_of_int (List.length l)
  in
  let mean_accuracy = mean (fun a -> a.predicted_correct) valid in
  let mean_ripple = mean (fun a -> a.unpredicted_movers) actions in
  let stats =
    [
      ("mean_accuracy", mean_accuracy);
      ("mean_ripple_weight", mean_ripple);
      ("actions_evaluated", float_of_int (List.length actions));
    ]
  in
  let figure =
    Figure.make ~id:"groompredict"
      ~title:"Local prediction of grooming impact vs ground truth"
      ~x_label:"Candidate action (rank)" ~y_label:"Weighted fraction" ~stats
      [
        Series.make "prediction accuracy"
          (List.mapi (fun i a -> (float_of_int i, a.predicted_correct)) actions);
        Series.make "ripple (unpredicted movers)"
          (List.mapi (fun i a -> (float_of_int i, a.unpredicted_movers)) actions);
      ]
  in
  { figure; actions; mean_accuracy; mean_ripple }
