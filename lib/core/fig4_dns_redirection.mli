(** Figure 4: improvement over anycast from LDNS-based DNS redirection.

    The redirector is trained on the first half of the horizon and the
    predicted choice (anycast or one unicast front-end, per resolver)
    is evaluated side-by-side with anycast on the second half.  The
    CDF over traffic-weighted client prefixes shows the improvement
    (anycast − predicted; positive = redirection faster) at the median
    and the 75th percentile of each client's evaluation samples. *)

type per_client = {
  prefix : Netsim_traffic.Prefix.t;
  choice : Netsim_cdn.Redirector.choice;
  improvement_median_ms : float;
  improvement_p75_ms : float;
}

type result = {
  figure : Figure.t;
  clients : per_client list;
  redirected_fraction : float;  (** Resolvers predicted to unicast. *)
}

val run : Scenario.microsoft -> result
