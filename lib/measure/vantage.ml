module Sm = Netsim_prng.Splitmix
module Dist = Netsim_prng.Dist
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module World = Netsim_geo.World
module City = Netsim_geo.City

type t = { id : int; asid : int; city : int; weight : float }

let c_vantages = Netsim_obs.Metrics.counter "measure.vantages"

let select topo ~rng ~n =
  Netsim_obs.Span.with_ ~name:"measure.vantage.select" @@ fun () ->
  let hosts =
    Topology.by_klass topo Asn.Eyeball @ Topology.by_klass topo Asn.Stub
  in
  (* Enumerate all ⟨city, AS⟩ pairs, then sample without replacement
     weighted by city population (approximated by shuffling an
     expansion would be wasteful; instead sample indices by weight and
     dedupe). *)
  let pairs =
    List.concat_map
      (fun asid ->
        (Topology.asn topo asid).Asn.footprint
        |> Array.to_list
        |> List.map (fun city -> (asid, city)))
      hosts
    |> Array.of_list
  in
  let weights =
    Array.map (fun (_, city) -> World.cities.(city).City.population_m) pairs
  in
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let chosen = ref S.empty in
  let result = ref [] in
  let attempts = ref 0 in
  let max_attempts = 20 * n in
  while List.length !result < n && !attempts < max_attempts do
    incr attempts;
    let i = Dist.categorical weights rng in
    let ((asid, city) as pair) = pairs.(i) in
    if not (S.mem pair !chosen) then begin
      chosen := S.add pair !chosen;
      result :=
        {
          id = List.length !result;
          asid;
          city;
          weight = World.cities.(city).City.population_m;
        }
        :: !result
    end
  done;
  Netsim_obs.Metrics.add c_vantages (List.length !result);
  Array.of_list (List.rev !result)

let country t = World.cities.(t.city).City.country
let continent t = World.cities.(t.city).City.continent
