(** Ping campaigns and traceroute-style introspection of flows. *)

val ping_samples :
  Netsim_latency.Congestion.t ->
  rng:Netsim_prng.Splitmix.t ->
  days:float ->
  per_day:int ->
  pings_per_round:int ->
  Netsim_latency.Rtt.flow ->
  float array
(** Simulate a measurement campaign: [per_day] rounds per day spread
    uniformly over [days], each reporting the minimum of
    [pings_per_round] pings.  Returns one value per round. *)

val ping_median :
  Netsim_latency.Congestion.t ->
  rng:Netsim_prng.Splitmix.t ->
  days:float ->
  per_day:int ->
  pings_per_round:int ->
  Netsim_latency.Rtt.flow ->
  float
(** Median over the campaign. *)

(** Traceroute-level facts about a flow's walk. *)
type trace = {
  as_path : int list;  (** Traversed ASes, source first. *)
  entry_metro : int;  (** Where the flow enters the destination AS. *)
  ingress_km : float;  (** Distance from the flow's start metro to the
                           entry metro — the paper's "enters the
                           network within 400 km" metric. *)
}

val traceroute : start_city:int -> Netsim_bgp.Walk.t -> trace

val single_as_fraction : Netsim_bgp.Walk.t -> float
(** Fraction of the walk's total intra-AS carry distance that happens
    inside the single AS that carries the most of it (§3.3.2's
    "single-WAN fraction").  1.0 for walks with no carry distance. *)
