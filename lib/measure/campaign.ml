module Rtt = Netsim_latency.Rtt
module Walk = Netsim_bgp.Walk
module Topology = Netsim_topo.Topology
module World = Netsim_geo.World
module City = Netsim_geo.City

let c_pings = Netsim_obs.Metrics.counter "measure.pings"

let ping_samples cong ~rng ~days ~per_day ~pings_per_round flow =
  Netsim_obs.Span.with_ ~name:"measure.ping_campaign" @@ fun () ->
  let rounds = int_of_float (Float.round (days *. float_of_int per_day)) in
  let interval = 1440. /. float_of_int per_day in
  Netsim_obs.Metrics.add c_pings (rounds * pings_per_round);
  Array.init rounds (fun r ->
      let time_min = (float_of_int r +. 0.5) *. interval in
      let best = ref infinity in
      for _ = 1 to pings_per_round do
        let v = Rtt.sample_ms cong ~rng ~time_min flow in
        if v < !best then best := v
      done;
      !best)

let ping_median cong ~rng ~days ~per_day ~pings_per_round flow =
  let samples = ping_samples cong ~rng ~days ~per_day ~pings_per_round flow in
  Netsim_stats.Quantile.median samples

type trace = { as_path : int list; entry_metro : int; ingress_km : float }

let traceroute ~start_city walk =
  let entry_metro = Walk.entry_metro walk in
  let ingress_km =
    City.distance_km World.cities.(start_city) World.cities.(entry_metro)
  in
  { as_path = Walk.as_path walk; entry_metro; ingress_km }

let single_as_fraction walk =
  let carries =
    List.map
      (fun (h : Walk.hop) ->
        ( h.Walk.asid,
          City.distance_km World.cities.(h.Walk.ingress)
            World.cities.(h.Walk.egress) ))
      walk.Walk.hops
  in
  let total = List.fold_left (fun acc (_, d) -> acc +. d) 0. carries in
  if total <= 0. then 1.
  else begin
    let per_as = Hashtbl.create 8 in
    List.iter
      (fun (asid, d) ->
        let cur =
          match Hashtbl.find_opt per_as asid with Some v -> v | None -> 0.
        in
        Hashtbl.replace per_as asid (cur +. d))
      carries;
    let best = Hashtbl.fold (fun _ v acc -> Float.max v acc) per_as 0. in
    best /. total
  end
