(** Vantage-point platform (Speedchecker/RIPE-Atlas-like, §3.3).

    Vantage points are ⟨city, AS⟩ pairs drawn from access networks,
    weighted by metro population — mirroring how probe platforms sit
    in home routers and PCs. *)

type t = {
  id : int;
  asid : int;
  city : int;
  weight : float;  (** Population weight of the VP's metro (for
                       user-weighted aggregation, as with APNIC
                       estimates). *)
}

val select :
  Netsim_topo.Topology.t ->
  rng:Netsim_prng.Splitmix.t ->
  n:int ->
  t array
(** Up to [n] distinct ⟨city, AS⟩ pairs over eyeball and stub ASes. *)

val country : t -> string
val continent : t -> Netsim_geo.Region.continent
