let uniform rng ~lo ~hi = lo +. ((hi -. lo) *. Splitmix.next_float rng)

let normal rng ~mean ~std =
  (* Box-Muller; we draw a fresh pair each call and discard the second
     variate to keep the sampler stateless. *)
  let rec nonzero () =
    let u = Splitmix.next_float rng in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = Splitmix.next_float rng in
  let r = sqrt (-2. *. log u1) in
  mean +. (std *. r *. cos (2. *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~std:sigma)

let exponential rng ~rate =
  let rec nonzero () =
    let u = Splitmix.next_float rng in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let pareto rng ~shape ~scale =
  let rec nonzero () =
    let u = Splitmix.next_float rng in
    if u > 0. then u else nonzero ()
  in
  scale /. (nonzero () ** (1. /. shape))

let poisson rng ~mean =
  if mean <= 0. then 0
  else if mean > 60. then
    (* Normal approximation with continuity correction. *)
    let x = normal rng ~mean ~std:(sqrt mean) in
    max 0 (int_of_float (Float.round x))
  else begin
    let l = exp (-.mean) in
    let k = ref 0 and p = ref 1. in
    let continue = ref true in
    while !continue do
      incr k;
      p := !p *. Splitmix.next_float rng;
      if !p <= l then continue := false
    done;
    !k - 1
  end

let bernoulli rng ~p = Splitmix.next_float rng < p

type zipf = { cumulative : float array; weights : float array }

let zipf_make ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf_make: n must be positive";
  let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let weights = Array.map (fun w -> w /. total) weights in
  let cumulative = Array.make n 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  cumulative.(n - 1) <- 1.;
  { cumulative; weights }

let bisect cumulative u =
  let lo = ref 0 and hi = ref (Array.length cumulative - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumulative.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let zipf_sample z rng = bisect z.cumulative (Splitmix.next_float rng)
let zipf_weight z i = z.weights.(i)

let categorical weights rng =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Dist.categorical: weights must sum > 0";
  let u = Splitmix.next_float rng *. total in
  let n = Array.length weights in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Splitmix.next_int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement rng k arr =
  let n = Array.length arr in
  let k = min k n in
  let copy = Array.copy arr in
  (* Partial Fisher-Yates: the first k slots end up as the sample. *)
  for i = 0 to k - 1 do
    let j = i + Splitmix.next_int rng (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
