(** SplitMix64 pseudo-random number generator.

    A small, fast, deterministic generator with a 64-bit state and the
    ability to {e split} into statistically independent substreams.  All
    simulation randomness in this repository flows through this module so
    that every experiment is reproducible from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal
    seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay the same
    stream that [t] would produce from this point on. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val next_float : t -> float
(** [next_float t] is uniformly distributed in [\[0, 1)]. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [\[0, bound)].  [bound] must be
    positive.  @raise Invalid_argument otherwise. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val of_label : t -> string -> t
(** [of_label t label] derives a substream from [t]'s {e current} state
    and a string label, without advancing [t].  Deriving the same label
    twice from the same state yields the same stream; this gives stable
    per-component randomness that does not depend on evaluation order. *)
