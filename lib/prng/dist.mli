(** Random variates for the simulation's stochastic components.

    Every sampler takes the generator explicitly; none of them keeps
    hidden state, so substreams can be derived per component with
    {!Splitmix.of_label} and experiments stay reproducible. *)

val uniform : Splitmix.t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. *)

val normal : Splitmix.t -> mean:float -> std:float -> float
(** Gaussian via the Box–Muller transform. *)

val lognormal : Splitmix.t -> mu:float -> sigma:float -> float
(** [exp] of a Gaussian with the given log-space parameters. *)

val exponential : Splitmix.t -> rate:float -> float
(** Exponential with the given rate; mean is [1. /. rate]. *)

val pareto : Splitmix.t -> shape:float -> scale:float -> float
(** Pareto (type I): support [\[scale, infinity)]. *)

val poisson : Splitmix.t -> mean:float -> int
(** Poisson-distributed count (Knuth's method for small means, normal
    approximation above 60). *)

val bernoulli : Splitmix.t -> p:float -> bool
(** True with probability [p]. *)

type zipf
(** Precomputed Zipf sampler over ranks [1..n]. *)

val zipf_make : n:int -> s:float -> zipf
(** [zipf_make ~n ~s] prepares a Zipf distribution with exponent [s]
    over [n] ranks.  @raise Invalid_argument if [n <= 0]. *)

val zipf_sample : zipf -> Splitmix.t -> int
(** Sample a rank in [\[0, n)] (0-based; rank 0 is the most popular). *)

val zipf_weight : zipf -> int -> float
(** [zipf_weight z i] is the normalized probability of rank [i]. *)

val categorical : float array -> Splitmix.t -> int
(** [categorical weights rng] samples an index proportionally to
    [weights] (not necessarily normalized; all entries must be
    non-negative and the sum positive). *)

val shuffle : Splitmix.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : Splitmix.t -> int -> 'a array -> 'a array
(** [sample_without_replacement rng k arr] picks [k] distinct elements
    ([k] is clamped to the array length). *)
