type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let next_float t =
  (* Use the top 53 bits for a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let next_int t bound =
  if bound <= 0 then invalid_arg "Splitmix.next_int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     bounds used in simulation (<< 2^32). *)
  (* Keep 62 bits so the value fits in OCaml's native 63-bit int
     without wrapping negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let hash_string s =
  (* FNV-1a, 64-bit. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let of_label t label =
  { state = mix64 (Int64.logxor t.state (hash_string label)) }
