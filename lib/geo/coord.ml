type t = { lat : float; lon : float }

let make ~lat ~lon =
  if lat < -90. || lat > 90. then invalid_arg "Coord.make: lat out of range";
  if lon < -180. || lon > 180. then invalid_arg "Coord.make: lon out of range";
  { lat; lon }

let earth_radius_km = 6371.

let rad deg = deg *. Float.pi /. 180.

let haversine_km a b =
  let dlat = rad (b.lat -. a.lat) and dlon = rad (b.lon -. a.lon) in
  let h =
    (sin (dlat /. 2.) ** 2.)
    +. (cos (rad a.lat) *. cos (rad b.lat) *. (sin (dlon /. 2.) ** 2.))
  in
  2. *. earth_radius_km *. asin (min 1. (sqrt h))

(* Light in fiber travels ~200 km/ms one-way, i.e. a round trip costs
   1 ms per 100 km of one-way distance. *)
let rtt_ms_of_km km = km /. 100.

let geodesic_rtt_ms a b = rtt_ms_of_km (haversine_km a b)

let pp fmt t = Format.fprintf fmt "(%.2f, %.2f)" t.lat t.lon
