(* Metro database: (name, country, continent, lat, lon, population in
   millions).  Coordinates and populations are approximate metro-area
   figures; what matters for the simulation is relative geography and
   relative demand, not census precision. *)
let raw =
  [|
    (* North America *)
    ("New York", "US", "NA", 40.71, -74.01, 19.8);
    ("Los Angeles", "US", "NA", 34.05, -118.24, 13.2);
    ("Chicago", "US", "NA", 41.88, -87.63, 9.5);
    ("Dallas", "US", "NA", 32.78, -96.80, 7.6);
    ("Houston", "US", "NA", 29.76, -95.37, 7.1);
    ("Washington", "US", "NA", 38.91, -77.04, 6.3);
    ("Miami", "US", "NA", 25.76, -80.19, 6.1);
    ("Atlanta", "US", "NA", 33.75, -84.39, 6.0);
    ("Boston", "US", "NA", 42.36, -71.06, 4.9);
    ("Phoenix", "US", "NA", 33.45, -112.07, 4.8);
    ("San Francisco", "US", "NA", 37.77, -122.42, 4.7);
    ("Seattle", "US", "NA", 47.61, -122.33, 4.0);
    ("Denver", "US", "NA", 39.74, -104.99, 3.0);
    ("Minneapolis", "US", "NA", 44.98, -93.27, 3.7);
    ("San Jose", "US", "NA", 37.34, -121.89, 2.0);
    ("Ashburn", "US", "NA", 39.04, -77.49, 0.4);
    ("Kansas City", "US", "NA", 39.10, -94.58, 2.2);
    ("Salt Lake City", "US", "NA", 40.76, -111.89, 1.2);
    ("Portland", "US", "NA", 45.52, -122.68, 2.5);
    ("Toronto", "CA", "NA", 43.65, -79.38, 6.4);
    ("Montreal", "CA", "NA", 45.50, -73.57, 4.3);
    ("Vancouver", "CA", "NA", 49.28, -123.12, 2.6);
    ("Mexico City", "MX", "NA", 19.43, -99.13, 21.8);
    ("Guadalajara", "MX", "NA", 20.67, -103.35, 5.3);
    ("Monterrey", "MX", "NA", 25.69, -100.32, 5.3);
    ("Panama City", "PA", "NA", 8.98, -79.52, 1.9);
    ("San Juan", "PR", "NA", 18.47, -66.11, 2.4);
    ("Guatemala City", "GT", "NA", 14.63, -90.51, 3.0);
    (* South America *)
    ("Sao Paulo", "BR", "SA", -23.55, -46.63, 22.0);
    ("Rio de Janeiro", "BR", "SA", -22.91, -43.17, 13.5);
    ("Fortaleza", "BR", "SA", -3.73, -38.53, 4.1);
    ("Porto Alegre", "BR", "SA", -30.03, -51.23, 4.3);
    ("Brasilia", "BR", "SA", -15.79, -47.88, 4.7);
    ("Buenos Aires", "AR", "SA", -34.60, -58.38, 15.3);
    ("Santiago", "CL", "SA", -33.45, -70.67, 6.8);
    ("Lima", "PE", "SA", -12.05, -77.04, 10.9);
    ("Bogota", "CO", "SA", 4.71, -74.07, 11.0);
    ("Medellin", "CO", "SA", 6.25, -75.56, 4.0);
    ("Caracas", "VE", "SA", 10.48, -66.90, 2.9);
    ("Quito", "EC", "SA", -0.18, -78.47, 2.0);
    ("Montevideo", "UY", "SA", -34.90, -56.16, 1.8);
    ("Asuncion", "PY", "SA", -25.26, -57.58, 2.3);
    ("La Paz", "BO", "SA", -16.49, -68.12, 1.9);
    (* Europe *)
    ("London", "GB", "EU", 51.51, -0.13, 14.3);
    ("Manchester", "GB", "EU", 53.48, -2.24, 2.9);
    ("Paris", "FR", "EU", 48.86, 2.35, 13.0);
    ("Marseille", "FR", "EU", 43.30, 5.37, 1.9);
    ("Frankfurt", "DE", "EU", 50.11, 8.68, 2.7);
    ("Berlin", "DE", "EU", 52.52, 13.41, 4.5);
    ("Munich", "DE", "EU", 48.14, 11.58, 2.9);
    ("Hamburg", "DE", "EU", 53.55, 9.99, 3.2);
    ("Amsterdam", "NL", "EU", 52.37, 4.90, 2.8);
    ("Brussels", "BE", "EU", 50.85, 4.35, 2.1);
    ("Madrid", "ES", "EU", 40.42, -3.70, 6.7);
    ("Barcelona", "ES", "EU", 41.39, 2.17, 5.6);
    ("Lisbon", "PT", "EU", 38.72, -9.14, 2.9);
    ("Milan", "IT", "EU", 45.46, 9.19, 4.3);
    ("Rome", "IT", "EU", 41.90, 12.50, 4.3);
    ("Zurich", "CH", "EU", 47.37, 8.54, 1.4);
    ("Vienna", "AT", "EU", 48.21, 16.37, 2.9);
    ("Prague", "CZ", "EU", 50.08, 14.44, 2.7);
    ("Warsaw", "PL", "EU", 52.23, 21.01, 3.1);
    ("Budapest", "HU", "EU", 47.50, 19.04, 3.0);
    ("Bucharest", "RO", "EU", 44.43, 26.10, 2.3);
    ("Sofia", "BG", "EU", 42.70, 23.32, 1.7);
    ("Athens", "GR", "EU", 37.98, 23.73, 3.6);
    ("Stockholm", "SE", "EU", 59.33, 18.07, 2.4);
    ("Copenhagen", "DK", "EU", 55.68, 12.57, 2.1);
    ("Oslo", "NO", "EU", 59.91, 10.75, 1.6);
    ("Helsinki", "FI", "EU", 60.17, 24.94, 1.5);
    ("Dublin", "IE", "EU", 53.35, -6.26, 2.1);
    ("Kyiv", "UA", "EU", 50.45, 30.52, 3.0);
    ("Moscow", "RU", "EU", 55.76, 37.62, 17.1);
    ("Saint Petersburg", "RU", "EU", 59.93, 30.34, 5.4);
    ("Istanbul", "TR", "EU", 41.01, 28.98, 15.5);
    ("Zagreb", "HR", "EU", 45.81, 15.98, 1.1);
    ("Belgrade", "RS", "EU", 44.79, 20.45, 1.7);
    (* Asia & Middle East *)
    ("Tokyo", "JP", "AS", 35.68, 139.69, 37.3);
    ("Osaka", "JP", "AS", 34.69, 135.50, 19.1);
    ("Seoul", "KR", "AS", 37.57, 126.98, 25.5);
    ("Beijing", "CN", "AS", 39.90, 116.41, 20.9);
    ("Shanghai", "CN", "AS", 31.23, 121.47, 28.5);
    ("Shenzhen", "CN", "AS", 22.54, 114.06, 12.6);
    ("Hong Kong", "HK", "AS", 22.32, 114.17, 7.5);
    ("Taipei", "TW", "AS", 25.03, 121.57, 7.0);
    ("Singapore", "SG", "AS", 1.35, 103.82, 5.9);
    ("Kuala Lumpur", "MY", "AS", 3.14, 101.69, 8.4);
    ("Jakarta", "ID", "AS", -6.21, 106.85, 33.4);
    ("Surabaya", "ID", "AS", -7.26, 112.75, 9.5);
    ("Bangkok", "TH", "AS", 13.76, 100.50, 17.1);
    ("Manila", "PH", "AS", 14.60, 120.98, 24.3);
    ("Ho Chi Minh City", "VN", "AS", 10.82, 106.63, 13.9);
    ("Hanoi", "VN", "AS", 21.03, 105.85, 8.2);
    ("Mumbai", "IN", "AS", 19.08, 72.88, 20.7);
    ("Delhi", "IN", "AS", 28.70, 77.10, 31.2);
    ("Bangalore", "IN", "AS", 12.97, 77.59, 12.8);
    ("Chennai", "IN", "AS", 13.08, 80.27, 11.2);
    ("Hyderabad", "IN", "AS", 17.39, 78.49, 10.2);
    ("Kolkata", "IN", "AS", 22.57, 88.36, 14.9);
    ("Karachi", "PK", "AS", 24.86, 67.00, 16.5);
    ("Lahore", "PK", "AS", 31.55, 74.34, 13.1);
    ("Dhaka", "BD", "AS", 23.81, 90.41, 22.0);
    ("Colombo", "LK", "AS", 6.93, 79.85, 2.4);
    ("Kathmandu", "NP", "AS", 27.72, 85.32, 1.5);
    ("Dubai", "AE", "AS", 25.20, 55.27, 3.5);
    ("Riyadh", "SA", "AS", 24.71, 46.68, 7.7);
    ("Jeddah", "SA", "AS", 21.49, 39.19, 4.8);
    ("Doha", "QA", "AS", 25.29, 51.53, 2.4);
    ("Tel Aviv", "IL", "AS", 32.09, 34.78, 4.4);
    ("Amman", "JO", "AS", 31.96, 35.95, 2.2);
    ("Baghdad", "IQ", "AS", 33.31, 44.37, 7.5);
    ("Tehran", "IR", "AS", 35.69, 51.39, 9.5);
    ("Almaty", "KZ", "AS", 43.24, 76.89, 2.0);
    ("Tashkent", "UZ", "AS", 41.30, 69.24, 2.6);
    (* Africa *)
    ("Cairo", "EG", "AF", 30.04, 31.24, 21.3);
    ("Lagos", "NG", "AF", 6.52, 3.38, 15.4);
    ("Kinshasa", "CD", "AF", -4.44, 15.27, 15.6);
    ("Johannesburg", "ZA", "AF", -26.20, 28.05, 10.0);
    ("Cape Town", "ZA", "AF", -33.92, 18.42, 4.8);
    ("Nairobi", "KE", "AF", -1.29, 36.82, 5.1);
    ("Accra", "GH", "AF", 5.60, -0.19, 2.6);
    ("Casablanca", "MA", "AF", 33.57, -7.59, 3.8);
    ("Algiers", "DZ", "AF", 36.75, 3.06, 2.9);
    ("Tunis", "TN", "AF", 36.81, 10.18, 2.4);
    ("Addis Ababa", "ET", "AF", 9.03, 38.74, 5.0);
    ("Dar es Salaam", "TZ", "AF", -6.79, 39.21, 7.0);
    ("Abidjan", "CI", "AF", 5.36, -4.01, 5.6);
    ("Dakar", "SN", "AF", 14.72, -17.47, 3.3);
    ("Kampala", "UG", "AF", 0.35, 32.58, 3.7);
    (* Oceania *)
    ("Sydney", "AU", "OC", -33.87, 151.21, 5.3);
    ("Melbourne", "AU", "OC", -37.81, 144.96, 5.1);
    ("Brisbane", "AU", "OC", -27.47, 153.03, 2.6);
    ("Perth", "AU", "OC", -31.95, 115.86, 2.1);
    ("Adelaide", "AU", "OC", -34.93, 138.60, 1.4);
    ("Auckland", "NZ", "OC", -36.85, 174.76, 1.7);
    ("Wellington", "NZ", "OC", -41.29, 174.78, 0.4);
    ("Suva", "FJ", "OC", -18.14, 178.44, 0.3);
    (* Secondary North America *)
    ("Detroit", "US", "NA", 42.33, -83.05, 4.3);
    ("Philadelphia", "US", "NA", 39.95, -75.17, 6.2);
    ("San Diego", "US", "NA", 32.72, -117.16, 3.3);
    ("Tampa", "US", "NA", 27.95, -82.46, 3.2);
    ("St. Louis", "US", "NA", 38.63, -90.20, 2.8);
    ("Charlotte", "US", "NA", 35.23, -80.84, 2.7);
    ("Calgary", "CA", "NA", 51.05, -114.07, 1.6);
    ("Ottawa", "CA", "NA", 45.42, -75.70, 1.4);
    ("Havana", "CU", "NA", 23.11, -82.37, 2.1);
    ("Santo Domingo", "DO", "NA", 18.49, -69.93, 3.3);
    ("San Jose CR", "CR", "NA", 9.93, -84.08, 1.4);
    ("Kingston", "JM", "NA", 17.97, -76.79, 1.2);
    ("Tegucigalpa", "HN", "NA", 14.07, -87.19, 1.4);
    ("San Salvador", "SV", "NA", 13.69, -89.22, 1.8);
    (* Secondary South America *)
    ("Salvador", "BR", "SA", -12.97, -38.50, 3.9);
    ("Recife", "BR", "SA", -8.05, -34.90, 4.1);
    ("Curitiba", "BR", "SA", -25.43, -49.27, 3.7);
    ("Guayaquil", "EC", "SA", -2.19, -79.89, 3.1);
    ("Cali", "CO", "SA", 3.45, -76.53, 2.8);
    ("Cordoba", "AR", "SA", -31.42, -64.18, 1.6);
    ("Georgetown", "GY", "SA", 6.80, -58.16, 0.4);
    (* Secondary Europe *)
    ("Lyon", "FR", "EU", 45.76, 4.84, 2.3);
    ("Turin", "IT", "EU", 45.07, 7.69, 2.2);
    ("Naples", "IT", "EU", 40.85, 14.27, 3.1);
    ("Valencia", "ES", "EU", 39.47, -0.38, 2.5);
    ("Porto", "PT", "EU", 41.16, -8.63, 1.7);
    ("Krakow", "PL", "EU", 50.06, 19.94, 1.8);
    ("Rotterdam", "NL", "EU", 51.92, 4.48, 1.8);
    ("Birmingham", "GB", "EU", 52.49, -1.89, 3.1);
    ("Glasgow", "GB", "EU", 55.86, -4.25, 1.9);
    ("Bratislava", "SK", "EU", 48.15, 17.11, 0.7);
    ("Vilnius", "LT", "EU", 54.69, 25.28, 0.8);
    ("Riga", "LV", "EU", 56.95, 24.11, 1.0);
    ("Tallinn", "EE", "EU", 59.44, 24.75, 0.6);
    ("Minsk", "BY", "EU", 53.90, 27.57, 2.0);
    ("Chisinau", "MD", "EU", 47.01, 28.86, 0.7);
    ("Sarajevo", "BA", "EU", 43.86, 18.41, 0.6);
    ("Tirana", "AL", "EU", 41.33, 19.82, 0.9);
    ("Ankara", "TR", "EU", 39.93, 32.86, 5.7);
    (* Central Asia, Caucasus, more Middle East *)
    ("Tbilisi", "GE", "AS", 41.72, 44.83, 1.2);
    ("Yerevan", "AM", "AS", 40.18, 44.51, 1.1);
    ("Baku", "AZ", "AS", 40.41, 49.87, 2.3);
    ("Bishkek", "KG", "AS", 42.87, 74.59, 1.1);
    ("Astana", "KZ", "AS", 51.17, 71.45, 1.2);
    ("Kuwait City", "KW", "AS", 29.38, 47.99, 3.1);
    ("Muscat", "OM", "AS", 23.59, 58.41, 1.6);
    ("Manama", "BH", "AS", 26.23, 50.59, 0.7);
    ("Beirut", "LB", "AS", 33.89, 35.50, 2.4);
    (* More Asia *)
    ("Pune", "IN", "AS", 18.52, 73.86, 7.2);
    ("Ahmedabad", "IN", "AS", 23.02, 72.57, 8.0);
    ("Islamabad", "PK", "AS", 33.68, 73.05, 1.2);
    ("Chittagong", "BD", "AS", 22.36, 91.78, 5.2);
    ("Yangon", "MM", "AS", 16.87, 96.20, 5.4);
    ("Phnom Penh", "KH", "AS", 11.56, 104.92, 2.2);
    ("Vientiane", "LA", "AS", 17.98, 102.63, 0.9);
    ("Ulaanbaatar", "MN", "AS", 47.89, 106.91, 1.6);
    ("Busan", "KR", "AS", 35.18, 129.08, 3.4);
    ("Nagoya", "JP", "AS", 35.18, 136.91, 9.4);
    ("Fukuoka", "JP", "AS", 33.59, 130.40, 5.5);
    ("Chengdu", "CN", "AS", 30.57, 104.07, 16.0);
    ("Guangzhou", "CN", "AS", 23.13, 113.26, 18.7);
    ("Cebu", "PH", "AS", 10.32, 123.89, 3.0);
    ("Medan", "ID", "AS", 3.59, 98.67, 2.5);
    (* More Africa *)
    ("Durban", "ZA", "AF", -29.86, 31.02, 3.5);
    ("Abuja", "NG", "AF", 9.06, 7.49, 3.6);
    ("Kano", "NG", "AF", 12.00, 8.52, 4.1);
    ("Luanda", "AO", "AF", -8.84, 13.23, 8.3);
    ("Maputo", "MZ", "AF", -25.97, 32.57, 1.8);
    ("Lusaka", "ZM", "AF", -15.39, 28.32, 2.9);
    ("Harare", "ZW", "AF", -17.83, 31.05, 2.1);
    ("Kigali", "RW", "AF", -1.94, 30.06, 1.2);
    ("Khartoum", "SD", "AF", 15.50, 32.56, 5.8);
    ("Alexandria", "EG", "AF", 31.20, 29.92, 5.4);
    ("Douala", "CM", "AF", 4.05, 9.77, 3.8);
    ("Bamako", "ML", "AF", 12.64, -8.00, 2.7);
    ("Antananarivo", "MG", "AF", -18.88, 47.51, 3.4);
  |]

let cities =
  Array.mapi
    (fun id (name, country, cont, lat, lon, population_m) ->
      let continent =
        match Region.continent_of_string cont with
        | Some c -> c
        | None -> assert false (* table above only uses valid codes *)
      in
      {
        City.id;
        name;
        country;
        continent;
        coord = Coord.make ~lat ~lon;
        population_m;
      })
    raw

let count = Array.length cities

let find name =
  Array.find_opt (fun (c : City.t) -> c.name = name) cities

let find_exn name =
  match find name with Some c -> c | None -> raise Not_found

let by_continent continent =
  Array.to_list cities
  |> List.filter (fun (c : City.t) -> c.continent = continent)

let by_country country =
  Array.to_list cities
  |> List.filter (fun (c : City.t) -> c.country = country)

let countries =
  let module S = Set.Make (String) in
  Array.fold_left (fun s (c : City.t) -> S.add c.country s) S.empty cities
  |> S.elements

let nearest coord =
  let best = ref cities.(0) and best_d = ref infinity in
  Array.iter
    (fun (c : City.t) ->
      let d = Coord.haversine_km coord c.coord in
      if d < !best_d then begin
        best_d := d;
        best := c
      end)
    cities;
  !best

let total_population_m =
  Array.fold_left (fun acc (c : City.t) -> acc +. c.population_m) 0. cities

let population_weights =
  Array.map (fun (c : City.t) -> c.population_m /. total_population_m) cities

(* The classic interconnection hubs: metros whose colocation density
   far exceeds what population predicts. *)
let interconnection_hubs =
  [
    "New York"; "Ashburn"; "Chicago"; "Dallas"; "Miami"; "Los Angeles";
    "San Jose"; "San Francisco"; "Seattle"; "Toronto";
    "London"; "Frankfurt"; "Amsterdam"; "Paris"; "Madrid"; "Milan";
    "Stockholm"; "Warsaw"; "Marseille";
    "Sao Paulo"; "Buenos Aires"; "Bogota";
    "Tokyo"; "Singapore"; "Hong Kong"; "Mumbai"; "Dubai"; "Seoul";
    "Sydney"; "Johannesburg"; "Lagos"; "Nairobi";
  ]

let hub_score (c : City.t) =
  if List.mem c.name interconnection_hubs then c.population_m *. 12.
  else c.population_m
