type continent =
  | North_america
  | South_america
  | Europe
  | Asia
  | Africa
  | Oceania

let continent_to_string = function
  | North_america -> "NA"
  | South_america -> "SA"
  | Europe -> "EU"
  | Asia -> "AS"
  | Africa -> "AF"
  | Oceania -> "OC"

let continent_of_string = function
  | "NA" -> Some North_america
  | "SA" -> Some South_america
  | "EU" -> Some Europe
  | "AS" -> Some Asia
  | "AF" -> Some Africa
  | "OC" -> Some Oceania
  | _ -> None

type scope = World | Europe_only | United_states

let scope_to_string = function
  | World -> "World"
  | Europe_only -> "Europe"
  | United_states -> "United States"

let in_scope scope continent ~country =
  match scope with
  | World -> true
  | Europe_only -> continent = Europe
  | United_states -> country = "US"

let all_continents =
  [ North_america; South_america; Europe; Asia; Africa; Oceania ]
