type t = {
  id : int;
  name : string;
  country : string;
  continent : Region.continent;
  coord : Coord.t;
  population_m : float;
}

let distance_km a b = Coord.haversine_km a.coord b.coord
let rtt_ms a b = Coord.geodesic_rtt_ms a.coord b.coord

let pp fmt t =
  Format.fprintf fmt "%s/%s%a" t.name t.country Coord.pp t.coord
