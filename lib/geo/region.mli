(** Continents and the coarse regions used by the paper's figures. *)

type continent =
  | North_america
  | South_america
  | Europe
  | Asia
  | Africa
  | Oceania

val continent_to_string : continent -> string
val continent_of_string : string -> continent option

type scope = World | Europe_only | United_states
(** Figure 3 splits its CCDF into World / Europe / United States. *)

val scope_to_string : scope -> string

val in_scope : scope -> continent -> country:string -> bool
(** [in_scope scope continent ~country] decides membership: [World]
    accepts everything, [Europe_only] requires the Europe continent,
    [United_states] requires country code "US". *)

val all_continents : continent list
