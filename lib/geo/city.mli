(** Metro areas: the geographic anchor for PoPs, interconnection
    facilities, and client populations. *)

type t = {
  id : int;  (** Index into {!World.cities}. *)
  name : string;
  country : string;  (** ISO-3166 alpha-2 code. *)
  continent : Region.continent;
  coord : Coord.t;
  population_m : float;  (** Metro population in millions — used as the
                             client-demand weight. *)
}

val distance_km : t -> t -> float
val rtt_ms : t -> t -> float
val pp : Format.formatter -> t -> unit
