(** Embedded world metro database.

    ~140 metro areas with coordinates and populations covering every
    continent.  The paper's settings are global (Facebook PoPs on all
    continents, Microsoft front-ends, Speedchecker vantage points in
    17k ⟨city, AS⟩ pairs); the topology generator draws footprints and
    client populations from this table. *)

val cities : City.t array
(** All metros, indexed by {!City.t.id}. *)

val count : int

val find : string -> City.t option
(** Lookup by metro name (exact match). *)

val find_exn : string -> City.t
(** @raise Not_found if the metro is unknown. *)

val by_continent : Region.continent -> City.t list

val by_country : string -> City.t list

val countries : string list
(** Distinct country codes, sorted. *)

val nearest : Coord.t -> City.t
(** Metro closest to a coordinate. *)

val total_population_m : float

val population_weights : float array
(** Per-city population weights aligned with {!cities}; sums to 1. *)

val hub_score : City.t -> float
(** Interconnection importance of a metro: population boosted heavily
    for the classic colocation/IXP hubs (Frankfurt, Amsterdam, London,
    Ashburn, …).  Peering density follows these facilities, not raw
    population — Moscow is Europe's biggest metro but not its peering
    hub. *)
