(** Geographic coordinates and fiber-propagation latency. *)

type t = { lat : float; lon : float }
(** Degrees; positive lat is north, positive lon is east. *)

val make : lat:float -> lon:float -> t
(** @raise Invalid_argument if lat is outside [-90, 90] or lon outside
    [-180, 180]. *)

val haversine_km : t -> t -> float
(** Great-circle distance in kilometres (mean Earth radius 6371 km). *)

val rtt_ms_of_km : float -> float
(** Round-trip propagation time in milliseconds for a one-way fiber
    distance in km, assuming light at 2/3 c: 1 ms of RTT per 100 km. *)

val geodesic_rtt_ms : t -> t -> float
(** [rtt_ms_of_km (haversine_km a b)] — the physical lower bound for a
    round trip between two points. *)

val pp : Format.formatter -> t -> unit
