(** Inter-AS business relationships and physical links.

    A link record is stored once; {!rel_of} gives each endpoint's view.
    Private peering (PNI) and public peering (via an IXP fabric) are
    distinguished because the content-provider BGP policy in the paper
    prefers private peers over public peers over transit. *)

type kind =
  | C2p  (** [a] is the customer, [b] the provider. *)
  | Peer_private  (** Dedicated private interconnect (PNI). *)
  | Peer_public  (** Peering across a public IXP fabric. *)

type link = {
  id : int;
  a : int;  (** AS id. *)
  b : int;  (** AS id. *)
  kind : kind;
  metro : int;  (** City id of the interconnection facility. *)
  capacity_gbps : float;
}

(** One endpoint's view of a link. *)
type rel = To_provider | To_customer | Priv_peer | Pub_peer

val rel_of : link -> int -> rel
(** [rel_of link asid] is the relation from [asid]'s perspective.
    @raise Invalid_argument if [asid] is not an endpoint. *)

val other : link -> int -> int
(** The opposite endpoint.  @raise Invalid_argument if not an endpoint. *)

val rel_to_string : rel -> string
val kind_to_string : kind -> string

val is_peering : kind -> bool
