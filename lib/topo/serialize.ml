let klass_of_string = function
  | "tier1" -> Some Asn.Tier1
  | "transit" -> Some Asn.Transit
  | "eyeball" -> Some Asn.Eyeball
  | "stub" -> Some Asn.Stub
  | "content" -> Some Asn.Content
  | "cloud" -> Some Asn.Cloud
  | _ -> None

let kind_of_string = function
  | "c2p" -> Some Relation.C2p
  | "peer-private" -> Some Relation.Peer_private
  | "peer-public" -> Some Relation.Peer_public
  | _ -> None

let to_string topo =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "# beatbgp topology v1\n";
  Array.iter
    (fun (a : Asn.t) ->
      Buffer.add_string buf
        (Printf.sprintf "as %d %s %s %s\n" a.Asn.id
           (Asn.klass_to_string a.Asn.klass)
           a.Asn.name
           (String.concat ","
              (Array.to_list (Array.map string_of_int a.Asn.footprint)))))
    (Topology.ases topo);
  Array.iter
    (fun (l : Relation.link) ->
      Buffer.add_string buf
        (Printf.sprintf "link %d %d %d %s %d %g\n" l.Relation.id l.Relation.a
           l.Relation.b
           (Relation.kind_to_string l.Relation.kind)
           l.Relation.metro l.Relation.capacity_gbps))
    (Topology.links topo);
  Buffer.contents buf

let of_string text =
  let error line msg = Error (Printf.sprintf "line %d: %s" line msg) in
  let ases = ref [] and links = ref [] in
  let exception Bad of string in
  try
    String.split_on_char '\n' text
    |> List.iteri (fun i line ->
           let lineno = i + 1 in
           let line = String.trim line in
           if line = "" || String.length line > 0 && line.[0] = '#' then ()
           else begin
             match String.split_on_char ' ' line with
             | "as" :: id :: klass :: name :: [ footprint ] -> (
                 match
                   ( int_of_string_opt id,
                     klass_of_string klass,
                     String.split_on_char ',' footprint
                     |> List.map int_of_string_opt )
                 with
                 | Some id, Some klass, metros
                   when List.for_all Option.is_some metros ->
                     let footprint =
                       Array.of_list (List.map Option.get metros)
                     in
                     ases := { Asn.id; klass; name; footprint } :: !ases
                 | _ ->
                     raise
                       (Bad (Printf.sprintf "line %d: bad 'as' record" lineno)))
             | "link" :: id :: a :: b :: kind :: metro :: [ cap ] -> (
                 match
                   ( int_of_string_opt id,
                     int_of_string_opt a,
                     int_of_string_opt b,
                     kind_of_string kind,
                     int_of_string_opt metro,
                     float_of_string_opt cap )
                 with
                 | Some _, Some a, Some b, Some kind, Some metro, Some cap ->
                     links :=
                       { Relation.id = 0; a; b; kind; metro;
                         capacity_gbps = cap }
                       :: !links
                 | _ ->
                     raise
                       (Bad (Printf.sprintf "line %d: bad 'link' record" lineno)))
             | _ ->
                 raise
                   (Bad
                      (Printf.sprintf "line %d: unknown record '%s'" lineno
                         (List.hd (String.split_on_char ' ' line))))
           end);
    let ases =
      List.rev !ases |> List.sort (fun a b -> compare a.Asn.id b.Asn.id)
    in
    (* Ids must be dense; Topology.make enforces it. *)
    (try Ok (Topology.make (Array.of_list ases) (List.rev !links))
     with Invalid_argument msg -> error 0 msg)
  with Bad msg -> Error msg

let save topo ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string topo))

let load ~path =
  if not (Sys.file_exists path) then Error (path ^ ": no such file")
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (really_input_string ic (in_channel_length ic)))
  end
