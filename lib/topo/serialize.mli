(** Plain-text serialization of topologies.

    A line-oriented format so generated Internets can be saved,
    diffed, shared and reloaded exactly — the reproducibility story
    for experiments that outlive one process.

    Format (one record per line, [#] comments ignored):
    {v
    as <id> <klass> <name> <metro>[,<metro>...]
    link <id> <a> <b> <kind> <metro> <capacity_gbps>
    v}
    where [klass] is the lowercase class name and [kind] one of
    [c2p], [peer-private], [peer-public]. *)

val to_string : Topology.t -> string

val of_string : string -> (Topology.t, string) result
(** Parse; the error string names the offending line.  Link ids are
    re-assigned densely in file order (as {!Topology.make} does). *)

val save : Topology.t -> path:string -> unit
val load : path:string -> (Topology.t, string) result
