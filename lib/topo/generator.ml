module Sm = Netsim_prng.Splitmix
module Dist = Netsim_prng.Dist
module World = Netsim_geo.World
module City = Netsim_geo.City
module Region = Netsim_geo.Region

type params = {
  seed : int;
  n_tier1 : int;
  n_transit : int;
  n_eyeball : int;
  n_stub : int;
  transit_provider_count : int * int;
  eyeball_provider_count : int * int;
  eyeball_peering_prob : float;
  transit_peering_prob : float;
  tier1_capacity : float;
  transit_capacity : float;
  eyeball_capacity : float;
  stub_capacity : float;
  public_peering_capacity : float;
}

let default_params =
  {
    seed = 42;
    n_tier1 = 8;
    n_transit = 48;
    n_eyeball = 240;
    n_stub = 400;
    transit_provider_count = (2, 3);
    eyeball_provider_count = (1, 3);
    eyeball_peering_prob = 0.3;
    transit_peering_prob = 0.4;
    tier1_capacity = 1000.;
    transit_capacity = 400.;
    eyeball_capacity = 200.;
    stub_capacity = 10.;
    public_peering_capacity = 20.;
  }

let small_params =
  {
    default_params with
    n_tier1 = 4;
    n_transit = 10;
    n_eyeball = 30;
    n_stub = 40;
  }

let shared_metros fa fb =
  let module S = Set.Make (Int) in
  let sb = Array.fold_left (fun s c -> S.add c s) S.empty fb in
  Array.to_list fa |> List.filter (fun c -> S.mem c sb)

let common_metro rng fa fb =
  match shared_metros fa fb with
  | [] -> None
  | l -> Some (List.nth l (Sm.next_int rng (List.length l)))

(* Up to [k] shared metros chosen uniformly — used for national-scale
   interconnects (eyeball <-> transit), where sessions sit wherever
   the ISP's network happens to be rather than at the global hubs.
   This heterogeneity is what creates the minority of clients whose
   transit route persistently beats the peer route (the paper's
   "consistently better" alternates). *)
let random_metros rng ~k fa fb =
  match shared_metros fa fb with
  | [] -> []
  | l -> Dist.sample_without_replacement rng k (Array.of_list l) |> Array.to_list

(* Up to [k] shared metros with geographic spread: round-robin over
   continents, most populous shared metro of each continent first.
   Two global networks end up interconnected on every continent they
   share, which is what lets hot-potato pick a nearby exit instead of
   detouring through a remote megacity.  The rng breaks ties among
   equally-sized metros. *)
let common_metros rng ~k fa fb =
  match shared_metros fa fb with
  | [] -> []
  | l ->
      let arr = Array.of_list l in
      Dist.shuffle rng arr;
      let by_pop a b =
        compare
          (World.hub_score World.cities.(b))
          (World.hub_score World.cities.(a))
      in
      let groups =
        List.map
          (fun continent ->
            List.filter
              (fun m -> World.cities.(m).City.continent = continent)
              (Array.to_list arr)
            |> List.sort by_pop)
          Region.all_continents
        |> List.filter (fun g -> g <> [])
      in
      (* Round-robin: first pick of every continent, then second, ... *)
      let rec rounds acc groups =
        if groups = [] then List.rev acc
        else begin
          let heads = List.filter_map (fun g -> List.nth_opt g 0) groups in
          let tails =
            List.filter_map
              (fun g -> match g with [] | [ _ ] -> None | _ :: t -> Some t)
              groups
          in
          rounds (List.rev_append heads acc) tails
        end
      in
      List.filteri (fun i _ -> i < k) (rounds [] groups)

(* Mutable builder: ASes and link specs are accumulated, then frozen
   into a Topology.t. *)
type builder = {
  mutable ases_rev : Asn.t list;
  mutable n : int;
  mutable links_rev : (int * int * Relation.kind * int * float) list;
}

let new_builder () = { ases_rev = []; n = 0; links_rev = [] }

let push_as b ~klass ~name ~footprint =
  let id = b.n in
  b.ases_rev <- { Asn.id; klass; name; footprint } :: b.ases_rev;
  b.n <- b.n + 1;
  id

let push_link b a bb kind metro capacity =
  b.links_rev <- (a, bb, kind, metro, capacity) :: b.links_rev

let city_ids_of_continent continent =
  World.by_continent continent |> List.map (fun (c : City.t) -> c.id)

let sample_ints rng k l =
  Dist.sample_without_replacement rng k (Array.of_list l) |> Array.to_list

let range_int rng (lo, hi) =
  if hi <= lo then lo else lo + Sm.next_int rng (hi - lo + 1)

(* Footprint helpers -------------------------------------------------- *)

let tier1_footprint rng =
  (* Tier-1s are present in every large metro plus a random sample of
     the rest; their home is one of the biggest interconnection hubs. *)
  let big, small =
    Array.to_list World.cities
    |> List.partition (fun (c : City.t) -> c.population_m >= 4.)
  in
  let extra =
    List.filter (fun (_ : City.t) -> Dist.bernoulli rng ~p:0.5) small
  in
  let all = big @ extra in
  let ids = List.map (fun (c : City.t) -> c.id) all in
  let hubs =
    [ "New York"; "London"; "Frankfurt"; "Tokyo"; "Singapore"; "Amsterdam" ]
  in
  let home = (World.find_exn (List.nth hubs (Sm.next_int rng 6))).id in
  Array.of_list (home :: List.filter (fun c -> c <> home) ids)

let transit_footprint rng continent =
  let ids = city_ids_of_continent continent in
  let k = max 2 (List.length ids * (40 + Sm.next_int rng 40) / 100) in
  let chosen = sample_ints rng k ids in
  match chosen with
  | [] -> assert false (* every continent has >= 2 metros *)
  | home :: rest -> Array.of_list (home :: rest)

let eyeball_footprint rng country =
  let ids = World.by_country country |> List.map (fun (c : City.t) -> c.id) in
  let k = max 1 (List.length ids - Sm.next_int rng 2) in
  match sample_ints rng k ids with
  | [] -> (match ids with [] -> assert false | h :: _ -> [| h |])
  | home :: rest -> Array.of_list (home :: rest)

(* Generation --------------------------------------------------------- *)

let dedupe_links specs =
  (* Collapse accidental duplicate (a, b, kind, metro) tuples produced
     by independent random draws; keep the first capacity. *)
  let module S = Set.Make (struct
    type t = int * int * Relation.kind * int

    let compare = compare
  end) in
  let seen = ref S.empty in
  List.filter_map
    (fun (a, b, kind, metro, cap) ->
      let key = if a < b then (a, b, kind, metro) else (b, a, kind, metro) in
      if S.mem key !seen then None
      else begin
        seen := S.add key !seen;
        Some { Relation.id = 0; a; b; kind; metro; capacity_gbps = cap }
      end)
    specs

let c_ases = Netsim_obs.Metrics.counter "topo.ases"
let c_links = Netsim_obs.Metrics.counter "topo.links"

let generate p =
  Netsim_obs.Span.with_ ~name:"topo.generate" @@ fun () ->
  let rng = Sm.create p.seed in
  let b = new_builder () in
  (* 1. Tier-1 clique. *)
  let t1_rng = Sm.of_label rng "tier1" in
  let tier1s =
    List.init p.n_tier1 (fun i ->
        push_as b ~klass:Asn.Tier1
          ~name:(Printf.sprintf "T1-%d" i)
          ~footprint:(tier1_footprint t1_rng))
  in
  let ases_arr () = Array.of_list (List.rev b.ases_rev) in
  let footprint id = (ases_arr ()).(id).Asn.footprint in
  (* Clique of private peering among Tier-1s, interconnected in many
     facilities worldwide. *)
  List.iteri
    (fun i a ->
      List.iteri
        (fun j bb ->
          if j > i then begin
            let metros =
              match common_metros t1_rng ~k:10 (footprint a) (footprint bb) with
              | [] -> [ (World.find_exn "London").id ]
              | l -> l
            in
            List.iter
              (fun metro ->
                push_link b a bb Relation.Peer_private metro p.tier1_capacity)
              metros
          end)
        tier1s)
    tier1s;
  (* 2. Regional transit providers. *)
  let tr_rng = Sm.of_label rng "transit" in
  let continents = Array.of_list Region.all_continents in
  let continent_weights =
    Array.map
      (fun c -> float_of_int (List.length (city_ids_of_continent c)))
      continents
  in
  let transits =
    List.init p.n_transit (fun i ->
        let ci = Dist.categorical continent_weights tr_rng in
        let continent = continents.(ci) in
        let id =
          push_as b ~klass:Asn.Transit
            ~name:
              (Printf.sprintf "TR-%d-%s" i (Region.continent_to_string continent))
            ~footprint:(transit_footprint tr_rng continent)
        in
        (id, continent))
  in
  let all = ases_arr () in
  (* Transit -> Tier-1 providers. *)
  List.iter
    (fun (tid, _) ->
      let k = range_int tr_rng p.transit_provider_count in
      let chosen = sample_ints tr_rng k tier1s in
      List.iter
        (fun t1 ->
          let metros =
            match
              common_metros tr_rng ~k:5 all.(tid).Asn.footprint
                all.(t1).Asn.footprint
            with
            | [] -> [ Asn.home all.(tid) ]
            | l -> l
          in
          List.iter
            (fun metro -> push_link b tid t1 Relation.C2p metro p.transit_capacity)
            metros)
        chosen)
    transits;
  (* Transit <-> transit peering within a continent. *)
  let rec pair_transits = function
    | [] -> ()
    | (tid, cont) :: rest ->
        List.iter
          (fun (oid, ocont) ->
            if cont = ocont && Dist.bernoulli tr_rng ~p:p.transit_peering_prob
            then
              List.iter
                (fun metro ->
                  push_link b tid oid Relation.Peer_private metro
                    p.transit_capacity)
                (common_metros tr_rng ~k:2 all.(tid).Asn.footprint
                   all.(oid).Asn.footprint))
          rest;
        pair_transits rest
  in
  pair_transits transits;
  (* 3. Eyeball ISPs, one or more per country weighted by population. *)
  let eb_rng = Sm.of_label rng "eyeball" in
  let countries = Array.of_list World.countries in
  let country_pop country =
    World.by_country country
    |> List.fold_left (fun acc (c : City.t) -> acc +. c.population_m) 0.
  in
  let country_weights = Array.map country_pop countries in
  let eyeballs =
    List.init p.n_eyeball (fun i ->
        let country = countries.(Dist.categorical country_weights eb_rng) in
        let id =
          push_as b ~klass:Asn.Eyeball
            ~name:(Printf.sprintf "EB-%d-%s" i country)
            ~footprint:(eyeball_footprint eb_rng country)
        in
        (id, country))
  in
  let all = ases_arr () in
  let continent_of_as id =
    let home = Asn.home all.(id) in
    World.cities.(home).City.continent
  in
  let transits_serving continent =
    List.filter (fun (_, c) -> c = continent) transits |> List.map fst
  in
  (* Eyeball -> transit providers (same continent; Tier-1 fallback). *)
  List.iter
    (fun (eid, _) ->
      let continent = continent_of_as eid in
      let candidates =
        match transits_serving continent with [] -> tier1s | l -> l
      in
      let k = min (List.length candidates) (range_int eb_rng p.eyeball_provider_count) in
      let k = max 1 k in
      let chosen = sample_ints eb_rng k candidates in
      List.iter
        (fun tid ->
          let metros =
            match
              random_metros eb_rng ~k:4 all.(eid).Asn.footprint
                all.(tid).Asn.footprint
            with
            | [] -> [ Asn.home all.(eid) ]
            | l -> l
          in
          List.iter
            (fun metro -> push_link b eid tid Relation.C2p metro p.eyeball_capacity)
            metros)
        chosen;
      (* Many eyeballs also buy transit directly from a Tier-1, with
         sessions in their main metros — this is the short
         [Tier-1; eyeball] alternate path that makes transit routes
         competitive with peering at a content provider's PoPs. *)
      if candidates != tier1s && Dist.bernoulli eb_rng ~p:0.65 then begin
        let t1 = List.nth tier1s (Sm.next_int eb_rng (List.length tier1s)) in
        let metros =
          match
            random_metros eb_rng ~k:5 all.(eid).Asn.footprint
              all.(t1).Asn.footprint
          with
          | [] -> [ Asn.home all.(eid) ]
          | l -> l
        in
        List.iter
          (fun metro -> push_link b eid t1 Relation.C2p metro p.eyeball_capacity)
          metros
      end)
    eyeballs;
  (* Eyeball <-> eyeball public peering at shared metros (IXPs). *)
  let rec pair_eyeballs = function
    | [] -> ()
    | (eid, _) :: rest ->
        List.iter
          (fun (oid, _) ->
            if Dist.bernoulli eb_rng ~p:p.eyeball_peering_prob then begin
              match
                common_metro eb_rng all.(eid).Asn.footprint
                  all.(oid).Asn.footprint
              with
              | Some metro ->
                  push_link b eid oid Relation.Peer_public metro
                    p.public_peering_capacity
              | None -> ()
            end)
          rest;
        pair_eyeballs rest
  in
  pair_eyeballs eyeballs;
  (* 4. Stub ASes: single-homed to an eyeball or transit at their metro. *)
  let st_rng = Sm.of_label rng "stub" in
  let eyeball_ids = List.map fst eyeballs in
  for i = 0 to p.n_stub - 1 do
    let city = Dist.categorical World.population_weights st_rng in
    let sid =
      push_as b ~klass:Asn.Stub
        ~name:(Printf.sprintf "ST-%d" i)
        ~footprint:[| city |]
    in
    let upstream_candidates =
      List.filter (fun id -> Asn.present_at all.(id) city) eyeball_ids
    in
    let upstream =
      match upstream_candidates with
      | [] ->
          (* No eyeball at this metro: attach to a transit or Tier-1
             present there. *)
          let transit_here =
            List.filter (fun (tid, _) -> Asn.present_at all.(tid) city) transits
            |> List.map fst
          in
          let pool = if transit_here = [] then tier1s else transit_here in
          List.nth pool (Sm.next_int st_rng (List.length pool))
      | l -> List.nth l (Sm.next_int st_rng (List.length l))
    in
    push_link b sid upstream Relation.C2p city p.stub_capacity
  done;
  let topo = Topology.make (ases_arr ()) (List.rev b.links_rev |> dedupe_links) in
  Netsim_obs.Metrics.add c_ases (Topology.as_count topo);
  Netsim_obs.Metrics.add c_links (Topology.link_count topo);
  topo

(* ---- Internet scale -------------------------------------------------- *)

(* [generate] above draws peerings by testing every pair (O(n^2)) —
   fine at hundreds of ASes, unusable at 75k.  [generate_scale] keeps
   the same hierarchy (Tier-1 clique / continental transits /
   per-country eyeballs / single-homed stubs) but replaces the pair
   loops with per-node partner sampling out of metro and continent
   buckets, so the whole build is O(n + m).  Total construction, in
   and out of cap, is part of the contract: every failure mode is an
   [Error], never an exception (fuzzed in test/test_scale.ml). *)

type scale_params = {
  sc_seed : int;
  sc_tier1 : int;
  sc_transit : int;
  sc_eyeball : int;
  sc_stub : int;
  sc_transit_providers : int * int;
  sc_transit_peer_degree : int;
  sc_eyeball_providers : int * int;
  sc_eyeball_peer_degree : int;
  sc_sessions : int;
}

let scale_params =
  {
    sc_seed = 42;
    sc_tier1 = 16;
    sc_transit = 2500;
    sc_eyeball = 12000;
    sc_stub = 60000;
    sc_transit_providers = (2, 4);
    sc_transit_peer_degree = 16;
    sc_eyeball_providers = (2, 3);
    sc_eyeball_peer_degree = 60;
    sc_sessions = 4;
  }

let small_scale_params =
  {
    scale_params with
    sc_tier1 = 4;
    sc_transit = 40;
    sc_eyeball = 160;
    sc_stub = 400;
    sc_transit_peer_degree = 6;
    sc_eyeball_peer_degree = 8;
    sc_sessions = 2;
  }

let generate_scale p =
  let n_total = p.sc_tier1 + p.sc_transit + p.sc_eyeball + p.sc_stub in
  if p.sc_tier1 < 1 then Error "generate_scale: need at least one Tier-1"
  else if p.sc_transit < 0 || p.sc_eyeball < 0 || p.sc_stub < 0 then
    Error "generate_scale: negative AS count"
  else if p.sc_sessions < 1 then Error "generate_scale: sc_sessions < 1"
  else if n_total > Topology.max_as_count then
    Error
      (Printf.sprintf
         "generate_scale: %d ASes exceeds the packed cap of %d (2^20)" n_total
         Topology.max_as_count)
  else begin
    try
      Netsim_obs.Span.with_ ~name:"topo.generate_scale" @@ fun () ->
      let rng = Sm.create p.sc_seed in
      let b = new_builder () in
      let n_cities = Array.length World.cities in
      (* 1. Tier-1 clique, global footprints. *)
      let t1_rng = Sm.of_label rng "tier1" in
      let tier1s =
        Array.init p.sc_tier1 (fun i ->
            push_as b ~klass:Asn.Tier1
              ~name:(Printf.sprintf "T1-%d" i)
              ~footprint:(tier1_footprint t1_rng))
      in
      let fp = Array.make n_total [||] in
      Array.iter (fun (a : Asn.t) -> fp.(a.Asn.id) <- a.Asn.footprint)
        (Array.of_list b.ases_rev);
      let remember id = fp.(id) <- (List.hd b.ases_rev).Asn.footprint in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j bb ->
              if j > i then begin
                let metros =
                  match
                    common_metros t1_rng ~k:p.sc_sessions fp.(a) fp.(bb)
                  with
                  | [] -> [ fp.(a).(0) ]
                  | l -> l
                in
                List.iter
                  (fun metro ->
                    push_link b a bb Relation.Peer_private metro 1000.)
                  metros
              end)
            tier1s)
        tier1s;
      (* 2. Continental transit providers. *)
      let tr_rng = Sm.of_label rng "transit" in
      let continents = Array.of_list Region.all_continents in
      let continent_weights =
        Array.map
          (fun c -> float_of_int (List.length (city_ids_of_continent c)))
          continents
      in
      let n_cont = Array.length continents in
      let cont_index c =
        let rec go i = if continents.(i) = c then i else go (i + 1) in
        go 0
      in
      let transit_cont = Array.make p.sc_transit 0 in
      let transits =
        Array.init p.sc_transit (fun i ->
            let ci = Dist.categorical continent_weights tr_rng in
            let id =
              push_as b ~klass:Asn.Transit
                ~name:(Printf.sprintf "TR-%d" i)
                ~footprint:(transit_footprint tr_rng continents.(ci))
            in
            remember id;
            transit_cont.(i) <- ci;
            id)
      in
      (* Continent buckets of transits, for provider/peer sampling. *)
      let transit_by_cont = Array.make n_cont [] in
      Array.iteri
        (fun i tid ->
          transit_by_cont.(transit_cont.(i)) <-
            tid :: transit_by_cont.(transit_cont.(i)))
        transits;
      let transit_by_cont =
        Array.map (fun l -> Array.of_list (List.rev l)) transit_by_cont
      in
      (* Transit -> Tier-1 providers. *)
      Array.iter
        (fun tid ->
          let k = range_int tr_rng p.sc_transit_providers in
          let chosen = Dist.sample_without_replacement tr_rng k tier1s in
          Array.iter
            (fun t1 ->
              let metros =
                match
                  random_metros tr_rng ~k:p.sc_sessions fp.(tid) fp.(t1)
                with
                | [] -> [ fp.(tid).(0) ]
                | l -> l
              in
              List.iter
                (fun metro -> push_link b tid t1 Relation.C2p metro 400.)
                metros)
            chosen)
        transits;
      (* Transit peering: per-node partner sampling within the
         continent (pairs deduped), instead of the O(n^2) pair walk. *)
      let pair_seen = Hashtbl.create 4096 in
      let fresh_pair a bb =
        let key =
          if a < bb then (a * Topology.max_as_count) + bb
          else (bb * Topology.max_as_count) + a
        in
        if Hashtbl.mem pair_seen key then false
        else begin
          Hashtbl.add pair_seen key ();
          true
        end
      in
      Array.iteri
        (fun i tid ->
          let bucket = transit_by_cont.(transit_cont.(i)) in
          let nb = Array.length bucket in
          if nb > 1 then
            for _ = 1 to p.sc_transit_peer_degree do
              let other = bucket.(Sm.next_int tr_rng nb) in
              if other <> tid && fresh_pair tid other then
                List.iter
                  (fun metro ->
                    push_link b tid other Relation.Peer_private metro 400.)
                  (random_metros tr_rng ~k:2 fp.(tid) fp.(other))
            done)
        transits;
      (* 3. Eyeball ISPs: country by population, providers from the
         continent's transit bucket, IXP peering within the home
         metro's bucket. *)
      let eb_rng = Sm.of_label rng "eyeball" in
      let countries = Array.of_list World.countries in
      let country_pop country =
        World.by_country country
        |> List.fold_left (fun acc (c : City.t) -> acc +. c.population_m) 0.
      in
      let country_weights = Array.map country_pop countries in
      let eyeballs_at = Array.make n_cities [] in
      let transit_at = Array.make n_cities [] in
      Array.iter
        (fun tid ->
          Array.iter
            (fun c -> transit_at.(c) <- tid :: transit_at.(c))
            fp.(tid))
        transits;
      let transit_at = Array.map (fun l -> Array.of_list (List.rev l)) transit_at in
      let eyeballs =
        Array.init p.sc_eyeball (fun i ->
            let country = countries.(Dist.categorical country_weights eb_rng) in
            let id =
              push_as b ~klass:Asn.Eyeball
                ~name:(Printf.sprintf "EB-%d" i)
                ~footprint:(eyeball_footprint eb_rng country)
            in
            remember id;
            let home = fp.(id).(0) in
            eyeballs_at.(home) <- id :: eyeballs_at.(home);
            id)
      in
      let eyeballs_at =
        Array.map (fun l -> Array.of_list (List.rev l)) eyeballs_at
      in
      Array.iter
        (fun eid ->
            let home = fp.(eid).(0) in
            let cont = World.cities.(home).City.continent in
            let bucket = transit_by_cont.(cont_index cont) in
            let candidates = if Array.length bucket = 0 then tier1s else bucket in
            let k =
              Stdlib.max 1
                (Stdlib.min (Array.length candidates)
                   (range_int eb_rng p.sc_eyeball_providers))
            in
            let chosen = Dist.sample_without_replacement eb_rng k candidates in
            Array.iter
              (fun tid ->
                let metros =
                  match
                    random_metros eb_rng ~k:p.sc_sessions fp.(eid) fp.(tid)
                  with
                  | [] -> [ home ]
                  | l -> l
                in
                List.iter
                  (fun metro -> push_link b eid tid Relation.C2p metro 200.)
                  metros)
              chosen;
            (* Direct Tier-1 transit for the bigger eyeballs. *)
            if Dist.bernoulli eb_rng ~p:0.6 then begin
              let t1 = tier1s.(Sm.next_int eb_rng (Array.length tier1s)) in
              let metros =
                match random_metros eb_rng ~k:p.sc_sessions fp.(eid) fp.(t1) with
                | [] -> [ home ]
                | l -> l
              in
              List.iter
                (fun metro -> push_link b eid t1 Relation.C2p metro 200.)
                metros
            end;
            (* IXP peering with other eyeballs homed at the same metro. *)
            let ix = eyeballs_at.(home) in
            let nix = Array.length ix in
            if nix > 1 then
              for _ = 1 to p.sc_eyeball_peer_degree do
                let other = ix.(Sm.next_int eb_rng nix) in
                if other <> eid && fresh_pair eid other then
                  push_link b eid other Relation.Peer_public home 20.
              done)
        eyeballs;
      (* 4. Stubs: single-homed (possibly dual sessions) to an AS
         present at their metro. *)
      let st_rng = Sm.of_label rng "stub" in
      for i = 0 to p.sc_stub - 1 do
        let city = Dist.categorical World.population_weights st_rng in
        let sid =
          push_as b ~klass:Asn.Stub
            ~name:(Printf.sprintf "ST-%d" i)
            ~footprint:[| city |]
        in
        let upstream =
          let ebs = eyeballs_at.(city) in
          if Array.length ebs > 0 then ebs.(Sm.next_int st_rng (Array.length ebs))
          else begin
            let trs = transit_at.(city) in
            if Array.length trs > 0 then
              trs.(Sm.next_int st_rng (Array.length trs))
            else tier1s.(Sm.next_int st_rng (Array.length tier1s))
          end
        in
        let sessions = if p.sc_sessions >= 2 then 2 else 1 in
        for _ = 1 to sessions do
          push_link b sid upstream Relation.C2p city 10.
        done
      done;
      let n_links = List.length b.links_rev in
      if n_links > Topology.max_link_count then
        Error
          (Printf.sprintf
             "generate_scale: %d links exceeds the packed cap of %d (2^21)"
             n_links Topology.max_link_count)
      else begin
        let links =
          List.rev_map
            (fun (a, bb, kind, metro, cap) ->
              { Relation.id = 0; a; b = bb; kind; metro; capacity_gbps = cap })
            b.links_rev
        in
        let topo = Topology.make (Array.of_list (List.rev b.ases_rev)) links in
        Netsim_obs.Metrics.add c_ases (Topology.as_count topo);
        Netsim_obs.Metrics.add c_links (Topology.link_count topo);
        Ok topo
      end
    with Invalid_argument msg -> Error msg
  end

(* ---- degenerate shapes ----------------------------------------------- *)

(* Total constructors for the fuzz/totality property: pathological
   graphs (no ASes beside one, a max-degree hub, a provider chain as
   long as the cap allows) must build valid CSR arenas, and anything
   over the packed caps must come back as [Error] without raising. *)

type shape = Single | Star of int | Chain of int

let shape_footprint = [| 0 |]

let generate_shape shape =
  let mk ases links =
    try Ok (Topology.make ases links) with Invalid_argument msg -> Error msg
  in
  match shape with
  | Single ->
      mk
        [| { Asn.id = 0; klass = Asn.Tier1; name = "S0";
             footprint = shape_footprint } |]
        []
  | Star spokes ->
      if spokes < 0 then Error "generate_shape: negative spoke count"
      else if spokes + 1 > Topology.max_as_count then
        Error "generate_shape: star exceeds the 2^20 AS cap"
      else begin
        let ases =
          Array.init (spokes + 1) (fun i ->
              if i = 0 then
                { Asn.id = 0; klass = Asn.Tier1; name = "hub";
                  footprint = shape_footprint }
              else
                { Asn.id = i; klass = Asn.Stub; name = "s";
                  footprint = shape_footprint })
        in
        let links =
          List.init spokes (fun i ->
              { Relation.id = 0; a = i + 1; b = 0; kind = Relation.C2p;
                metro = 0; capacity_gbps = 10. })
        in
        mk ases links
      end
  | Chain length ->
      if length < 1 then Error "generate_shape: chain needs at least one AS"
      else if length > Topology.max_as_count then
        Error "generate_shape: chain exceeds the 2^20 AS cap"
      else begin
        let ases =
          Array.init length (fun i ->
              let klass =
                if i = 0 then Asn.Tier1
                else if i = length - 1 then Asn.Stub
                else Asn.Transit
              in
              { Asn.id = i; klass; name = "c"; footprint = shape_footprint })
        in
        let links =
          List.init (length - 1) (fun i ->
              { Relation.id = 0; a = i + 1; b = i; kind = Relation.C2p;
                metro = 0; capacity_gbps = 10. })
        in
        mk ases links
      end
