(** Structural sanity checks on a topology.

    Generators and experiment scenarios run these in tests; a healthy
    topology returns an empty violation list. *)

val check : Topology.t -> string list
(** All violations found, each described by a human-readable string.
    Checks: no self links; no duplicate (endpoints, kind, metro)
    links; Tier-1s form a peering clique; every non-Tier-1 AS reaches
    a Tier-1 through a provider chain; link metros lie in both
    endpoints' footprints or at least one endpoint's; stubs have
    exactly one provider. *)

val is_valid : Topology.t -> bool

val provider_depth : Topology.t -> int -> int option
(** Length of the shortest provider chain from an AS up to any Tier-1;
    [Some 0] for a Tier-1 itself; [None] if no chain exists. *)
