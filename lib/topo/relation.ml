type kind = C2p | Peer_private | Peer_public

type link = {
  id : int;
  a : int;
  b : int;
  kind : kind;
  metro : int;
  capacity_gbps : float;
}

type rel = To_provider | To_customer | Priv_peer | Pub_peer

let rel_of link asid =
  if asid = link.a then
    match link.kind with
    | C2p -> To_provider
    | Peer_private -> Priv_peer
    | Peer_public -> Pub_peer
  else if asid = link.b then
    match link.kind with
    | C2p -> To_customer
    | Peer_private -> Priv_peer
    | Peer_public -> Pub_peer
  else invalid_arg "Relation.rel_of: AS is not an endpoint of this link"

let other link asid =
  if asid = link.a then link.b
  else if asid = link.b then link.a
  else invalid_arg "Relation.other: AS is not an endpoint of this link"

let rel_to_string = function
  | To_provider -> "to-provider"
  | To_customer -> "to-customer"
  | Priv_peer -> "private-peer"
  | Pub_peer -> "public-peer"

let kind_to_string = function
  | C2p -> "c2p"
  | Peer_private -> "peer-private"
  | Peer_public -> "peer-public"

let is_peering = function
  | Peer_private | Peer_public -> true
  | C2p -> false
