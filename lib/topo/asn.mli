(** Autonomous systems.

    Each AS has a class that determines its role in the routing
    hierarchy and a geographic footprint: the set of metros where it
    has presence (and can therefore interconnect with others). *)

type klass =
  | Tier1  (** Global transit-free provider; clique-peers with other Tier1s. *)
  | Transit  (** Regional/national transit provider. *)
  | Eyeball  (** Access ISP hosting client populations. *)
  | Stub  (** Small single-homed edge AS. *)
  | Content  (** Content provider (Facebook/Microsoft-like). *)
  | Cloud  (** Cloud provider with a private WAN (Google-like). *)

val klass_to_string : klass -> string

type t = {
  id : int;  (** Dense index into the topology's AS array. *)
  klass : klass;
  name : string;
  footprint : int array;  (** City ids where this AS is present; the
                              first entry is its home metro. *)
}

val home : t -> int
(** Home metro (first footprint entry). *)

val present_at : t -> int -> bool
(** [present_at t city] tests footprint membership. *)

val is_transit_like : t -> bool
(** Tier1 or Transit. *)

val pp : Format.formatter -> t -> unit
