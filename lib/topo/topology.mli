(** The assembled AS-level graph with adjacency queries.

    A topology is immutable once built; providers are added by
    constructing a new topology with {!add_as} / {!add_links} (used by
    the CDN and WAN layers to graft a content or cloud AS onto a base
    Internet). *)

type neighbor = {
  peer : int;  (** Neighboring AS id. *)
  rel : Relation.rel;  (** Relation from this AS's perspective. *)
  link : Relation.link;
}

type t

val make : Asn.t array -> Relation.link list -> t
(** Build from AS records and links.  AS ids must be dense [0..n-1]
    and match their array index; link endpoints must be valid.
    @raise Invalid_argument otherwise. *)

val as_count : t -> int
val link_count : t -> int

val generation : t -> int
(** Unique stamp of this topology value.  Every constructor —
    including {!remove_links}, the dynamics engine's reconvergence
    path — returns a value with a fresh stamp, so a stamp equality
    check is a sound (and precise) cache-invalidation test: two equal
    stamps always denote the very same link set.  Stamps carry no
    meaning beyond identity. *)

val asn : t -> int -> Asn.t
val ases : t -> Asn.t array
val links : t -> Relation.link array
val neighbors : t -> int -> neighbor list

(** {2 Packed CSR adjacency}

    Allocation-free mirror of {!neighbors} for hot loops: each
    neighbor is one immediate int with the link id in bits 0-20, the
    peer AS id in bits 21-40 and the relation in bits 41-42, decoded
    with the [pn_*] accessors.  AS count is capped at 2^20 and link
    ids at 2^21 by the constructors to keep the packing valid.

    The words live in a compressed-sparse-row arena: AS [x]'s
    neighbors are [csr_words.(csr_offsets.(x))
    .. csr_words.(csr_offsets.(x+1) - 1)].  Both arrays are built once
    per topology and shared {e read-only} across pool domains — never
    mutate them. *)

val max_as_count : int
(** 2^20 — the AS-count cap the packed word layout supports. *)

val max_link_count : int
(** 2^21 — the exclusive upper bound on link ids. *)

val csr_offsets : t -> int array
(** Row offsets, length [as_count t + 1]; [csr_offsets t .(as_count t)]
    is the total directed-edge count (2 × {!link_count}). *)

val csr_words : t -> int array
(** The packed neighbor word arena indexed by {!csr_offsets}. *)

val packed_neighbors : t -> int -> int array
(** Same sessions as {!neighbors} (same order), copied out of the CSR
    arena into a fresh row.  Cold-path convenience (snapshots, tests);
    hot loops should index {!csr_words} directly. *)

val pn_peer : int -> int
val pn_link : int -> int
(** Link {e id} (stable across {!remove_links}), not an index into
    {!links}. *)

val pn_rel : int -> Relation.rel

val of_packed :
  ases:Asn.t array -> links:Relation.link array -> padj:int array array -> t
(** Reconstruct a topology from its serialized parts: the AS records,
    the link records ({e with their ids}, which are preserved verbatim
    — unlike {!make}, which reassigns ids by list position) and the
    packed adjacency rows as returned by {!packed_neighbors}.  This is
    the snapshot-load path: a topology saved as
    [(ases, links, packed rows)] round-trips exactly, including
    topologies whose link ids are sparse because {!remove_links} ran.
    Every packed word is validated against the link records.
    @raise Invalid_argument on any inconsistency. *)

val of_csr :
  ases:Asn.t array ->
  links:Relation.link array ->
  csr_off:int array ->
  csr_words:int array ->
  t
(** Reconstruct a topology directly from its CSR arena, as stored by
    snapshot schema v2: [csr_off] must have length [n + 1], start at
    0, be monotone and end at [Array.length csr_words]; every packed
    word is validated against the link records exactly like
    {!of_packed}.  The arrays become owned by the topology — callers
    must not mutate them afterwards.  Unlike the other constructors
    the boxed {!neighbors} rows are built lazily (domain-safe memo),
    so a loader that only runs the packed hot loops never allocates
    them.
    @raise Invalid_argument on any inconsistency. *)

val customers : t -> int -> int list
val providers : t -> int -> int list
val peers : t -> int -> int list
(** Both private and public peers. *)

val degree : t -> int -> int

val links_between : t -> int -> int -> Relation.link list
(** All links between two ASes (multi-links at different metros are
    allowed). *)

val add_as : t -> klass:Asn.klass -> name:string -> footprint:int array -> t * int
(** Returns the extended topology and the new AS id. *)

val add_links :
  t -> (int * int * Relation.kind * int * float) list -> t
(** [(a, b, kind, metro, capacity)] tuples; ids are assigned
    sequentially after the existing links. *)

val remove_links : t -> int list -> t
(** Fail the links with the given ids: they disappear from the
    adjacency but ids of surviving links are preserved, so congestion
    state and announcement configs built on the original topology
    remain valid.  Unknown ids are ignored. *)

val remove_links_of_as : t -> int -> t
(** Fail every link touching the given AS (an AS-level outage). *)

val by_klass : t -> Asn.klass -> int list

val ases_at_metro : t -> int -> int list
(** ASes whose footprint contains the metro. *)
