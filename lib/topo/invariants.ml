let provider_depth topo asid =
  let n = Topology.as_count topo in
  let dist = Array.make n (-1) in
  (* BFS upward along provider edges from the AS. *)
  let q = Queue.create () in
  dist.(asid) <- 0;
  Queue.add asid q;
  let found = ref None in
  (match (Topology.asn topo asid).Asn.klass with
  | Asn.Tier1 -> found := Some 0
  | _ -> ());
  while !found = None && not (Queue.is_empty q) do
    let x = Queue.pop q in
    List.iter
      (fun p ->
        if dist.(p) < 0 then begin
          dist.(p) <- dist.(x) + 1;
          if (Topology.asn topo p).Asn.klass = Asn.Tier1 then
            (if !found = None then found := Some dist.(p));
          Queue.add p q
        end)
      (Topology.providers topo x)
  done;
  !found

let check topo =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let n = Topology.as_count topo in
  (* Self links / id uniqueness / metro consistency.  Parallel links
     between the same pair at the same metro are legitimate (dual
     sessions on separate routers). *)
  let module S = Set.Make (Int) in
  let seen = ref S.empty in
  Array.iter
    (fun (l : Relation.link) ->
      if l.a = l.b then add "self-link on AS%d" l.a;
      if S.mem l.id !seen then add "duplicate link id %d" l.id;
      seen := S.add l.id !seen;
      let fa = (Topology.asn topo l.a).Asn.footprint in
      let fb = (Topology.asn topo l.b).Asn.footprint in
      let in_a = Array.exists (fun c -> c = l.metro) fa in
      let in_b = Array.exists (fun c -> c = l.metro) fb in
      if (not in_a) && not in_b then
        add "link AS%d-AS%d metro %d is in neither footprint" l.a l.b l.metro)
    (Topology.links topo);
  (* Tier-1 clique. *)
  let tier1s = Topology.by_klass topo Asn.Tier1 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b && Topology.links_between topo a b = [] then
            add "Tier-1s AS%d and AS%d are not interconnected" a b)
        tier1s)
    tier1s;
  (* Reachability of the Tier-1 clique via providers. *)
  for i = 0 to n - 1 do
    match (Topology.asn topo i).Asn.klass with
    | Asn.Tier1 -> ()
    | Asn.Content | Asn.Cloud ->
        (* Providers are optional for provider-grafted ASes; they are
           reachable via their peers/transit links instead. *)
        ()
    | Asn.Transit | Asn.Eyeball | Asn.Stub -> (
        match provider_depth topo i with
        | Some _ -> ()
        | None -> add "AS%d has no provider chain to a Tier-1" i)
  done;
  (* Stubs are single-homed. *)
  for i = 0 to n - 1 do
    if (Topology.asn topo i).Asn.klass = Asn.Stub then begin
      let providers = Topology.providers topo i in
      if List.length providers <> 1 then
        add "stub AS%d has %d providers" i (List.length providers)
    end
  done;
  List.rev !violations

let is_valid topo = check topo = []
