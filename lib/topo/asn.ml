type klass = Tier1 | Transit | Eyeball | Stub | Content | Cloud

let klass_to_string = function
  | Tier1 -> "tier1"
  | Transit -> "transit"
  | Eyeball -> "eyeball"
  | Stub -> "stub"
  | Content -> "content"
  | Cloud -> "cloud"

type t = { id : int; klass : klass; name : string; footprint : int array }

let home t =
  assert (Array.length t.footprint > 0);
  t.footprint.(0)

let present_at t city = Array.exists (fun c -> c = city) t.footprint

let is_transit_like t =
  match t.klass with
  | Tier1 | Transit -> true
  | Eyeball | Stub | Content | Cloud -> false

let pp fmt t = Format.fprintf fmt "AS%d(%s,%s)" t.id t.name (klass_to_string t.klass)
