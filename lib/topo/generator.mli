(** Hierarchical AS-level Internet generator.

    Produces a base Internet with the structural properties the
    paper's analysis depends on: a Tier-1 clique with global
    footprints, regional transit providers, per-country eyeball ISPs
    hosting the client population, and small stub ASes.  Content and
    cloud providers are grafted on later by the CDN/WAN layers so that
    their peering footprint can be varied per experiment. *)

type params = {
  seed : int;
  n_tier1 : int;
  n_transit : int;
  n_eyeball : int;
  n_stub : int;
  transit_provider_count : int * int;  (** Min/max Tier-1 providers per transit. *)
  eyeball_provider_count : int * int;  (** Min/max transit providers per eyeball. *)
  eyeball_peering_prob : float;
      (** Probability that two eyeballs sharing a metro peer publicly. *)
  transit_peering_prob : float;
      (** Probability that two transits sharing a continent peer. *)
  tier1_capacity : float;
  transit_capacity : float;
  eyeball_capacity : float;
  stub_capacity : float;
  public_peering_capacity : float;
}

val default_params : params
(** [seed = 42], 8 Tier-1s, 48 transits, 240 eyeballs, 400 stubs. *)

val small_params : params
(** A small topology for unit tests (4/10/30/40). *)

val generate : params -> Topology.t
(** Build the base Internet.  Deterministic in [params.seed]. *)

val common_metro :
  Netsim_prng.Splitmix.t -> int array -> int array -> int option
(** A shared metro of two footprints, chosen uniformly; [None] if the
    footprints are disjoint.  Exposed for the CDN layer. *)

val common_metros :
  Netsim_prng.Splitmix.t -> k:int -> int array -> int array -> int list
(** Up to [k] distinct shared metros ([] if disjoint). *)

(** {2 Internet scale}

    {!generate} draws peerings by testing every AS pair, which is
    O(n²) and unusable beyond a few thousand ASes.  {!generate_scale}
    builds the same hierarchy with per-node partner sampling out of
    metro and continent buckets — O(n + m) — so ~75k-AS,
    million-link topologies assemble in seconds while staying inside
    the packed-word caps ({!Topology.max_as_count},
    {!Topology.max_link_count}). *)

type scale_params = {
  sc_seed : int;
  sc_tier1 : int;
  sc_transit : int;
  sc_eyeball : int;
  sc_stub : int;
  sc_transit_providers : int * int;  (** Min/max Tier-1 providers per transit. *)
  sc_transit_peer_degree : int;
      (** Peering partners drawn per transit from its continent bucket. *)
  sc_eyeball_providers : int * int;  (** Min/max transit providers per eyeball. *)
  sc_eyeball_peer_degree : int;
      (** IXP partners drawn per eyeball from its home-metro bucket. *)
  sc_sessions : int;  (** Sessions (distinct metros) per interconnect. *)
}

val scale_params : scale_params
(** [seed = 42]; 16 Tier-1s, 2 500 transits, 12 000 eyeballs, 60 000
    stubs — ≈74.5k ASes, ≈1M links. *)

val small_scale_params : scale_params
(** ≈600 ASes with reduced degrees, for goldens and unit tests. *)

val generate_scale : scale_params -> (Topology.t, string) result
(** Build an Internet-scale topology.  Deterministic in
    [p.sc_seed]; total — parameter sets that violate the packed caps
    (or any constructor invariant) return [Error], never raise. *)

(** {2 Degenerate shapes}

    Minimal pathological graphs for the CSR/totality fuzz tests:
    [Single] is one isolated Tier-1; [Star n] is a Tier-1 hub with [n]
    stub customers (a max-degree row — [Star (Topology.max_as_count - 1)]
    is the largest valid star); [Chain n] is a provider chain of [n]
    ASes (Tier-1 head, Transit middle, Stub tail). *)

type shape = Single | Star of int | Chain of int

val generate_shape : shape -> (Topology.t, string) result
(** Total: out-of-cap or negative sizes return [Error], never raise. *)
