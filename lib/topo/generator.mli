(** Hierarchical AS-level Internet generator.

    Produces a base Internet with the structural properties the
    paper's analysis depends on: a Tier-1 clique with global
    footprints, regional transit providers, per-country eyeball ISPs
    hosting the client population, and small stub ASes.  Content and
    cloud providers are grafted on later by the CDN/WAN layers so that
    their peering footprint can be varied per experiment. *)

type params = {
  seed : int;
  n_tier1 : int;
  n_transit : int;
  n_eyeball : int;
  n_stub : int;
  transit_provider_count : int * int;  (** Min/max Tier-1 providers per transit. *)
  eyeball_provider_count : int * int;  (** Min/max transit providers per eyeball. *)
  eyeball_peering_prob : float;
      (** Probability that two eyeballs sharing a metro peer publicly. *)
  transit_peering_prob : float;
      (** Probability that two transits sharing a continent peer. *)
  tier1_capacity : float;
  transit_capacity : float;
  eyeball_capacity : float;
  stub_capacity : float;
  public_peering_capacity : float;
}

val default_params : params
(** [seed = 42], 8 Tier-1s, 48 transits, 240 eyeballs, 400 stubs. *)

val small_params : params
(** A small topology for unit tests (4/10/30/40). *)

val generate : params -> Topology.t
(** Build the base Internet.  Deterministic in [params.seed]. *)

val common_metro :
  Netsim_prng.Splitmix.t -> int array -> int array -> int option
(** A shared metro of two footprints, chosen uniformly; [None] if the
    footprints are disjoint.  Exposed for the CDN layer. *)

val common_metros :
  Netsim_prng.Splitmix.t -> k:int -> int array -> int array -> int list
(** Up to [k] distinct shared metros ([] if disjoint). *)
