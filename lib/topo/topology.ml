type neighbor = { peer : int; rel : Relation.rel; link : Relation.link }

(* Neighbor records are a cold-path convenience view of the CSR arena
   below.  Constructors that materialise them anyway store them
   eagerly; [of_csr] — the mmap snapshot-load path — defers building
   the boxed rows until first use, so a query daemon that only runs
   the packed hot loops never pays the allocation.  The memo is a CAS
   cell rather than [Lazy.t] because lazy forcing is not domain-safe
   under OCaml 5: [build] is pure, so when two domains race both
   compute the same rows and the CAS loser adopts the winner's. *)
type adj_cell = {
  memo : neighbor list array option Atomic.t;
  build : unit -> neighbor list array;
}

type t = {
  gen : int;
  ases : Asn.t array;
  links : Relation.link array;
  adj : adj_cell;
  (* CSR adjacency arena: AS [x]'s packed neighbor words live at
     [csr_words.(csr_off.(x)) .. csr_words.(csr_off.(x+1) - 1)].  Two
     flat arrays instead of per-node rows keeps the hot propagation
     loops on one contiguous allocation that domains share read-only. *)
  csr_off : int array;
  csr_words : int array;
}

let eager_adj adj = { memo = Atomic.make (Some adj); build = (fun () -> adj) }

let force_adj t =
  match Atomic.get t.adj.memo with
  | Some a -> a
  | None ->
      let a = t.adj.build () in
      if Atomic.compare_and_set t.adj.memo None (Some a) then a
      else (
        match Atomic.get t.adj.memo with Some winner -> winner | None -> a)

(* Every constructed topology gets a unique generation stamp, so a
   value derived by [remove_links] (the dynamics engine's reconverge
   path) can never alias a cache entry built on its parent.  Atomic:
   scenario construction happens inside pool workers. *)
let gen_counter = Atomic.make 0
let next_gen () = Atomic.fetch_and_add gen_counter 1

(* Packed neighbor word, for allocation-free adjacency scans in the
   propagation hot loops: link id in bits 0-20, peer AS id in bits
   21-40, relation code in bits 41-42. *)
let max_as_count = 1 lsl 20
let max_link_count = 1 lsl 21

let rel_code = function
  | Relation.To_customer -> 0
  | Relation.To_provider -> 1
  | Relation.Priv_peer -> 2
  | Relation.Pub_peer -> 3

let pn_link pn = pn land 0x1F_FFFF
let pn_peer pn = (pn lsr 21) land 0xF_FFFF

let pn_rel pn =
  match pn lsr 41 with
  | 0 -> Relation.To_customer
  | 1 -> Relation.To_provider
  | 2 -> Relation.Priv_peer
  | _ -> Relation.Pub_peer

let pack_neighbor ~rel ~peer ~link_id =
  (rel_code rel lsl 41) lor (peer lsl 21) lor link_id

let pack_of_nb (nb : neighbor) =
  pack_neighbor ~rel:nb.rel ~peer:nb.peer ~link_id:nb.link.Relation.id

let csr_of_adj adj =
  let n = Array.length adj in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + List.length adj.(i)
  done;
  let words = Array.make off.(n) 0 in
  for i = 0 to n - 1 do
    let j = ref off.(i) in
    List.iter
      (fun nb ->
        words.(!j) <- pack_of_nb nb;
        incr j)
      adj.(i)
  done;
  (off, words)

let build_adjacency n links =
  let adj = Array.make n [] in
  Array.iter
    (fun (l : Relation.link) ->
      adj.(l.a) <-
        { peer = l.b; rel = Relation.rel_of l l.a; link = l } :: adj.(l.a);
      adj.(l.b) <-
        { peer = l.a; rel = Relation.rel_of l l.b; link = l } :: adj.(l.b))
    links;
  adj

let check_packing_limits n links =
  if n > max_as_count then
    invalid_arg "Topology: AS count exceeds packed-adjacency limit (2^20)";
  Array.iter
    (fun (l : Relation.link) ->
      if l.Relation.id < 0 || l.Relation.id >= max_link_count then
        invalid_arg "Topology: link id exceeds packed-adjacency limit (2^21)")
    links

let check_dense_ases what ases =
  Array.iteri
    (fun i (a : Asn.t) ->
      if a.id <> i then
        invalid_arg (Printf.sprintf "Topology.%s: AS ids must be dense" what);
      if Array.length a.footprint = 0 then
        invalid_arg
          (Printf.sprintf "Topology.%s: AS with empty footprint" what))
    ases

(* Index serialized link records by id, validating endpoints and
   uniqueness — shared by the two deserializing constructors. *)
let index_links what ~n (links : Relation.link array) =
  let max_id =
    Array.fold_left
      (fun m (l : Relation.link) -> Stdlib.max m l.Relation.id)
      (-1) links
  in
  let by_id = Array.make (max_id + 1) None in
  Array.iter
    (fun (l : Relation.link) ->
      if l.a < 0 || l.a >= n || l.b < 0 || l.b >= n || l.a = l.b then
        invalid_arg
          (Printf.sprintf "Topology.%s: link endpoint out of range" what);
      if by_id.(l.Relation.id) <> None then
        invalid_arg (Printf.sprintf "Topology.%s: duplicate link id" what);
      by_id.(l.Relation.id) <- Some l)
    links;
  by_id

(* Validate one packed neighbor word of AS [x] against the link
   records and return its link record. *)
let check_word what by_id x pn =
  if pn < 0 || pn lsr 43 <> 0 then
    invalid_arg
      (Printf.sprintf "Topology.%s: packed word out of range" what);
  let id = pn_link pn and peer = pn_peer pn and rel = pn_rel pn in
  let link = if id >= Array.length by_id then None else by_id.(id) in
  match link with
  | None -> invalid_arg (Printf.sprintf "Topology.%s: unknown link id" what)
  | Some l ->
      if
        not
          ((l.Relation.a = x && l.Relation.b = peer)
          || (l.Relation.b = x && l.Relation.a = peer))
      then
        invalid_arg
          (Printf.sprintf
             "Topology.%s: packed neighbor disagrees with link record" what);
      if Relation.rel_of l x <> rel then
        invalid_arg
          (Printf.sprintf
             "Topology.%s: packed relation disagrees with link kind" what);
      l

let make ases link_list =
  let n = Array.length ases in
  check_dense_ases "make" ases;
  let links =
    Array.of_list
      (List.mapi (fun i (l : Relation.link) -> { l with Relation.id = i }) link_list)
  in
  Array.iter
    (fun (l : Relation.link) ->
      if l.a < 0 || l.a >= n || l.b < 0 || l.b >= n then
        invalid_arg "Topology.make: link endpoint out of range";
      if l.a = l.b then invalid_arg "Topology.make: self-link")
    links;
  check_packing_limits n links;
  let adj = build_adjacency n links in
  let csr_off, csr_words = csr_of_adj adj in
  { gen = next_gen (); ases; links; adj = eager_adj adj; csr_off; csr_words }

let of_packed ~ases ~links ~padj =
  let n = Array.length ases in
  check_dense_ases "of_packed" ases;
  check_packing_limits n links;
  if Array.length padj <> n then
    invalid_arg "Topology.of_packed: adjacency row count <> AS count";
  let by_id = index_links "of_packed" ~n links in
  let adj =
    Array.mapi
      (fun x row ->
        List.map
          (fun pn ->
            let l = check_word "of_packed" by_id x pn in
            { peer = pn_peer pn; rel = pn_rel pn; link = l })
          (Array.to_list row))
      padj
  in
  let csr_off, csr_words = csr_of_adj adj in
  { gen = next_gen (); ases; links; adj = eager_adj adj; csr_off; csr_words }

let of_csr ~ases ~links ~csr_off ~csr_words =
  let n = Array.length ases in
  check_dense_ases "of_csr" ases;
  check_packing_limits n links;
  if Array.length csr_off <> n + 1 then
    invalid_arg "Topology.of_csr: offset array length <> AS count + 1";
  if csr_off.(0) <> 0 then
    invalid_arg "Topology.of_csr: offsets must start at 0";
  for x = 0 to n - 1 do
    if csr_off.(x + 1) < csr_off.(x) then
      invalid_arg "Topology.of_csr: offsets must be monotone"
  done;
  if csr_off.(n) <> Array.length csr_words then
    invalid_arg "Topology.of_csr: word arena length <> final offset";
  let by_id = index_links "of_csr" ~n links in
  for x = 0 to n - 1 do
    for j = csr_off.(x) to csr_off.(x + 1) - 1 do
      ignore (check_word "of_csr" by_id x csr_words.(j))
    done
  done;
  (* Words are validated above, so the deferred row build can decode
     them without re-checking. *)
  let build () =
    Array.init n (fun x ->
        List.init
          (csr_off.(x + 1) - csr_off.(x))
          (fun k ->
            let pn = csr_words.(csr_off.(x) + k) in
            match by_id.(pn_link pn) with
            | Some l -> { peer = pn_peer pn; rel = pn_rel pn; link = l }
            | None -> assert false))
  in
  {
    gen = next_gen ();
    ases;
    links;
    adj = { memo = Atomic.make None; build };
    csr_off;
    csr_words;
  }

let as_count t = Array.length t.ases
let link_count t = Array.length t.links
let generation t = t.gen
let asn t i = t.ases.(i)
let ases t = t.ases
let links t = t.links
let neighbors t i = (force_adj t).(i)
let csr_offsets t = t.csr_off
let csr_words t = t.csr_words

let packed_neighbors t i =
  Array.sub t.csr_words t.csr_off.(i) (t.csr_off.(i + 1) - t.csr_off.(i))

let filter_rel t i want =
  List.filter_map
    (fun nb -> if want nb.rel then Some nb.peer else None)
    (neighbors t i)
  |> List.sort_uniq compare

let customers t i = filter_rel t i (fun r -> r = Relation.To_customer)
let providers t i = filter_rel t i (fun r -> r = Relation.To_provider)

let peers t i =
  filter_rel t i (fun r ->
      match r with
      | Relation.Priv_peer | Relation.Pub_peer -> true
      | Relation.To_customer | Relation.To_provider -> false)

let degree t i = List.length (neighbors t i)

let links_between t x y =
  List.filter_map
    (fun nb -> if nb.peer = y then Some nb.link else None)
    (neighbors t x)

let add_as t ~klass ~name ~footprint =
  if Array.length footprint = 0 then
    invalid_arg "Topology.add_as: empty footprint";
  let id = Array.length t.ases in
  if id + 1 > max_as_count then
    invalid_arg "Topology.add_as: AS count exceeds packed-adjacency limit";
  let ases = Array.append t.ases [| { Asn.id; klass; name; footprint } |] in
  ( {
      gen = next_gen ();
      ases;
      links = t.links;
      adj = eager_adj (Array.append (force_adj t) [| [] |]);
      (* The new AS has no neighbors: one more (equal) offset, same
         word arena. *)
      csr_off = Array.append t.csr_off [| t.csr_off.(Array.length t.csr_off - 1) |];
      csr_words = t.csr_words;
    },
    id )

let add_links t specs =
  let base = Array.length t.links in
  let extra =
    List.mapi
      (fun i (a, b, kind, metro, capacity_gbps) ->
        { Relation.id = base + i; a; b; kind; metro; capacity_gbps })
      specs
  in
  let links = Array.append t.links (Array.of_list extra) in
  let n = Array.length t.ases in
  Array.iter
    (fun (l : Relation.link) ->
      if l.a < 0 || l.a >= n || l.b < 0 || l.b >= n || l.a = l.b then
        invalid_arg "Topology.add_links: bad endpoints")
    links;
  check_packing_limits n links;
  let adj = build_adjacency n links in
  let csr_off, csr_words = csr_of_adj adj in
  { t with gen = next_gen (); links; adj = eager_adj adj; csr_off; csr_words }

let remove_links t ids =
  let module S = Set.Make (Int) in
  let failed = S.of_list ids in
  let keep (l : Relation.link) = not (S.mem l.Relation.id failed) in
  let links = Array.of_list (List.filter keep (Array.to_list t.links)) in
  (* Adjacency changes only at the endpoints of removed links; every
     other AS shares its neighbor list with [t].  Filtering preserves
     order, so the result is identical to a full rebuild. *)
  let touched =
    Array.fold_left
      (fun acc (l : Relation.link) ->
        if keep l then acc else S.add l.Relation.a (S.add l.Relation.b acc))
      S.empty t.links
  in
  let adj = Array.copy (force_adj t) in
  S.iter
    (fun x -> adj.(x) <- List.filter (fun nb -> keep nb.link) adj.(x))
    touched;
  (* The CSR arena is contiguous, so it is rebuilt wholesale — O(n+m),
     the same order as the links-array filter above. *)
  let csr_off, csr_words = csr_of_adj adj in
  { t with gen = next_gen (); links; adj = eager_adj adj; csr_off; csr_words }

let remove_links_of_as t asid =
  let ids =
    List.map (fun (nb : neighbor) -> nb.link.Relation.id) (neighbors t asid)
  in
  remove_links t ids

let by_klass t klass =
  Array.to_list t.ases
  |> List.filter_map (fun (a : Asn.t) ->
         if a.klass = klass then Some a.id else None)

let ases_at_metro t metro =
  Array.to_list t.ases
  |> List.filter_map (fun (a : Asn.t) ->
         if Asn.present_at a metro then Some a.id else None)
