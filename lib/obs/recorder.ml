(* Flight recorder: a bounded ring buffer of structured events.

   Every record site checks one boolean, so the disabled path costs a
   load + branch (same discipline as Metrics).  Events carry no wall
   clock by default — only simulation-deterministic fields — so the
   flushed JSONL is byte-identical run-to-run; setting NETSIM_EVENT_NS
   lets sites attach wall-clock nanoseconds at the price of that
   determinism.

   Domain safety mirrors Metrics: the ring is owned by the main
   domain, pool workers record into a domain-local capture buffer and
   Netsim_par.Pool.map absorbs the buffers in task-submission order,
   so the event sequence — including sequence numbers and ring drops —
   is identical for any NETSIM_DOMAINS. *)

type field =
  | I of string * int
  | F of string * float
  | S of string * string

type event = { e_kind : string; e_fields : field list }

let on =
  ref
    (match Sys.getenv_opt "NETSIM_EVENTS" with
    | None | Some "" | Some "0" | Some "false" -> false
    | Some _ -> true)

let set_enabled b = on := b
let enabled () = !on

let timing_ref =
  ref
    (match Sys.getenv_opt "NETSIM_EVENT_NS" with
    | None | Some "" | Some "0" | Some "false" -> false
    | Some _ -> true)

let timing () = !timing_ref
let set_timing b = timing_ref := b

(* ---- bounded ring ---------------------------------------------------- *)

let default_capacity = 1 lsl 17

let capacity_ref =
  ref
    (match Sys.getenv_opt "NETSIM_EVENT_CAP" with
    | None | Some "" -> default_capacity
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | Some _ | None ->
            Printf.eprintf "netsim: ignoring invalid NETSIM_EVENT_CAP=%S\n%!" s;
            default_capacity))

type ring = {
  mutable arr : event array;  (** [||] until the first append *)
  mutable head : int;  (** index of the oldest event *)
  mutable count : int;
  mutable appended : int;  (** total appends ever; seq of the next event *)
}

let ring = { arr = [||]; head = 0; count = 0; appended = 0 }

let capacity () = !capacity_ref

let reset () =
  ring.arr <- [||];
  ring.head <- 0;
  ring.count <- 0;
  ring.appended <- 0

let set_capacity n =
  capacity_ref := Stdlib.max 1 n;
  reset ()

let dummy = { e_kind = ""; e_fields = [] }

let append ev =
  let cap = !capacity_ref in
  if Array.length ring.arr = 0 then ring.arr <- Array.make cap dummy;
  if ring.count < cap then begin
    ring.arr.((ring.head + ring.count) mod cap) <- ev;
    ring.count <- ring.count + 1
  end
  else begin
    (* Full: overwrite the oldest (drop it). *)
    ring.arr.(ring.head) <- ev;
    ring.head <- (ring.head + 1) mod cap
  end;
  ring.appended <- ring.appended + 1

(* ---- domain-local capture buffers ------------------------------------ *)

type captured = event list  (** oldest first *)

let buffer_key : event list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let record ~kind fields =
  if !on then begin
    let ev = { e_kind = kind; e_fields = fields } in
    match Domain.DLS.get buffer_key with
    | None -> append ev
    | Some buf -> buf := ev :: !buf
  end

let capture f =
  let saved = Domain.DLS.get buffer_key in
  let buf = ref [] in
  Domain.DLS.set buffer_key (Some buf);
  match f () with
  | v ->
      Domain.DLS.set buffer_key saved;
      (v, List.rev !buf)
  | exception e ->
      Domain.DLS.set buffer_key saved;
      raise e

let absorb events =
  List.iter
    (fun ev ->
      match Domain.DLS.get buffer_key with
      | None -> append ev
      | Some buf -> buf := ev :: !buf)
    events

(* ---- introspection / flush ------------------------------------------- *)

let size () = ring.count
let dropped () = ring.appended - ring.count

let events () =
  let base = ring.appended - ring.count in
  List.init ring.count (fun i ->
      let cap = Array.length ring.arr in
      (base + i, ring.arr.((ring.head + i) mod cap)))

let field_json = function
  | I (k, v) -> (k, Jsonx.Int v)
  | F (k, v) -> (k, Jsonx.Float v)
  | S (k, v) -> (k, Jsonx.String v)

let event_json seq ev =
  Jsonx.Obj
    (("seq", Jsonx.Int seq)
    :: ("kind", Jsonx.String ev.e_kind)
    :: List.map field_json ev.e_fields)

let schema = "beatbgp.events/1"

let to_jsonl () =
  let buf = Buffer.create 4096 in
  let header =
    Jsonx.Obj
      [
        ("schema", Jsonx.String schema);
        ("events", Jsonx.Int ring.count);
        ("dropped", Jsonx.Int (dropped ()));
        ("cap", Jsonx.Int !capacity_ref);
      ]
  in
  Buffer.add_string buf (Jsonx.to_string header);
  Buffer.add_char buf '\n';
  List.iter
    (fun (seq, ev) ->
      Buffer.add_string buf (Jsonx.to_string (event_json seq ev));
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf
