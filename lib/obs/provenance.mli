(** Route-provenance arena: decision evidence behind every routing
    outcome.

    When enabled, the propagation core records — per (route class, AS)
    — how many candidate announcements the AS considered and the best
    {e losing} candidate (the runner-up), into flat packed-int arrays
    with no per-entry allocation.  Disabled record sites cost a single
    load + branch, mirroring the flight recorder's discipline.  The
    interpretation of packed entries belongs to the core
    ([Netsim_bgp.Propagate]); this module only stores and compares
    them.

    Enable with [NETSIM_PROVENANCE=1], [Propagate.run ~provenance:true]
    or {!set_enabled}.  Surfaced by [beatbgp explain], the serve
    protocol's [EXPLAIN] verb and the [beatbgp.provenance/1] JSONL
    export. *)

val enabled : unit -> bool
(** Whether new propagation runs record provenance by default
    ([NETSIM_PROVENANCE]). *)

val set_enabled : bool -> unit

val schema : string
(** The JSONL export schema tag (["beatbgp.provenance/1"]), also
    reported by [beatbgp --version]. *)

(** The tie-break rule that discriminated the winner from the
    runner-up, in Gao-Rexford preference order: relationship class
    beats path length beats the stable (parent AS, link id) pair;
    [Only_candidate] when there was nothing to beat. *)
type rule = Phase | Path_length | Stable_id | Only_candidate

val rule_to_string : rule -> string
(** Stable wire names: ["relationship-class"], ["path-length"],
    ["stable-id"], ["only-candidate"]. *)

(** {1 The arena} *)

type arena

val create : int -> arena
(** [create n] is an empty arena for [n] ASes. *)

val length : arena -> int
val copy : arena -> arena

val clear_slot : arena -> cls:int -> int -> unit
(** Reset one (class, AS) slot to the empty state. *)

val count : arena -> cls:int -> int -> unit
(** Record that the AS considered one more candidate in the class. *)

val offer : arena -> cls:int -> int -> int -> unit
(** Offer a non-winning packed candidate for the runner-up slot; the
    minimum (most preferred) offer wins, so the result is independent
    of arrival order. *)

val candidates : arena -> cls:int -> int -> int
val runner_up : arena -> cls:int -> int -> int
(** The packed runner-up entry, or [-1] when the class saw at most one
    candidate. *)

val equal : arena -> arena -> bool
(** Structural equality — the provenance-determinism invariant checked
    by the test suite. *)

(** {1 Registry counters}

    [netsim_provenance_*] in the Prometheus exposition.  Callers tally
    once per run, only when {!Metrics.enabled}. *)

val bump_decision : int -> unit
(** Count one decided AS by winning class (0 customer / 1 peer /
    2 provider). *)

val bump_rule : rule -> unit
