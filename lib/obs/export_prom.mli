(** Prometheus text-exposition (v0.0.4) export of the metrics
    registry: HELP/TYPE lines for every metric, [_total]-suffixed
    counters, gauges (including runtime samples from
    {!Metrics.runtime_rows}), and cumulative
    [_bucket]/[_sum]/[_count] histogram triples.  Names are sanitized
    to [[a-zA-Z0-9_:]] and prefixed ["netsim_"]. *)

val sanitize : string -> string
(** Map a registry name to its Prometheus name (prefix + character
    sanitization, no [_total] suffix). *)

val to_string : unit -> string

val write : string -> unit
(** Render to a file via {!Report.write_text} (clear error on a
    missing directory). *)
