(** Global metrics registry: named counters, gauges and log-bucketed
    latency histograms.

    All record sites ([incr], [add], [set], [observe]) check a single
    [enabled] flag and are no-ops when it is off (the default), so
    instrumentation can stay in hot paths permanently.  The flag is
    seeded from the [NETSIM_TRACE] environment variable (any value
    other than empty, ["0"] or ["false"] enables it) and toggled by
    [set_enabled] — the CLI's [--trace] / [--metrics-out] flags do
    that.

    Metric objects are interned by name: [counter "x"] returns the same
    counter everywhere, so modules declare their metrics at top level
    and pay only the flag check per event. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create the counter registered under this name. *)

val incr : ?by:int -> counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Log-bucketed (5 buckets per decade over [1e-3, 1e7), plus
    underflow/overflow); quantiles are estimated from bucket geometric
    midpoints via {!Netsim_stats.Quantile.weighted_quantile}, so the
    relative error is bounded by the bucket width (~1.58x). *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_summary : histogram -> Netsim_stats.Summary.t
val histogram_quantile : histogram -> float -> float
(** [nan] when the histogram is empty. *)

(** {1 Snapshots} — used by {!Span} to attribute counter deltas. *)

val counter_snapshot : unit -> int array
val counter_deltas : int array -> (string * int) list
(** Counters that changed since the snapshot, sorted by name. *)

(** {1 Reporting} *)

val counter_rows : unit -> (string * int) list
val gauge_rows : unit -> (string * float) list

type hist_row = {
  hr_name : string;
  hr_summary : Netsim_stats.Summary.t;
  hr_p50 : float;
  hr_p90 : float;
  hr_p99 : float;
}

val histogram_rows : unit -> hist_row list

val reset : unit -> unit
(** Zero every registered metric (objects stay registered). *)

val to_json : unit -> Jsonx.t
