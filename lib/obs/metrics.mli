(** Global metrics registry: named counters, gauges and log-bucketed
    latency histograms.

    All record sites ([incr], [add], [set], [observe]) check a single
    [enabled] flag and are no-ops when it is off (the default), so
    instrumentation can stay in hot paths permanently.  The flag is
    seeded from the [NETSIM_TRACE] environment variable (any value
    other than empty, ["0"] or ["false"] enables it) and toggled by
    [set_enabled] — the CLI's [--trace] / [--metrics-out] flags do
    that.

    Metric objects are interned by name: [counter "x"] returns the same
    counter everywhere, so modules declare their metrics at top level
    and pay only the flag check per event.

    The registry is owned by the main domain.  Worker domains (the
    {!Netsim_par.Pool}) wrap each task in {!capture}, which redirects
    every record site in that domain to a private ordered event
    buffer; the pool then {!absorb}s the buffers in task-submission
    order.  Replay reproduces the exact sequence of record calls a
    sequential run would make, so the merged registry — and its JSON —
    is byte-identical for any domain count. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Find-or-create the counter registered under this name. *)

val incr : ?by:int -> counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Log-bucketed (5 buckets per decade over [1e-3, 1e7), plus
    underflow/overflow); quantiles are estimated from bucket geometric
    midpoints via {!Netsim_stats.Quantile.weighted_quantile}, so the
    relative error is bounded by the bucket width (~1.58x). *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_summary : histogram -> Netsim_stats.Summary.t
val histogram_quantile : histogram -> float -> float
(** [nan] when the histogram is empty. *)

(** {1 Snapshots} — used by {!Span} to attribute counter deltas. *)

type snapshot

val counter_snapshot : unit -> snapshot
val counter_deltas : snapshot -> (string * int) list
(** Counters that changed since the snapshot, sorted by name.  Inside
    a {!capture}, both operate on the capture buffer, so span counter
    deltas keep working in pool workers. *)

(** {1 Capture} — domain-local buffering for the parallel pool. *)

type captured
(** An ordered log of the record events a task performed. *)

val capture : (unit -> 'a) -> 'a * captured
(** [capture f] runs [f] with every record site in the current domain
    redirected to a fresh buffer and returns the buffer alongside
    [f]'s result.  The global registry is untouched.  On exception the
    buffer is discarded and the exception re-raised.  Captures nest
    (the inner buffer simply shadows the outer for the duration). *)

val absorb : captured -> unit
(** Replay a captured log through the normal record path: counters
    add, gauges overwrite, histogram observations re-bucket, and
    unseen names register — all in the captured order.  Absorbing
    per-task logs in submission order therefore leaves the registry
    byte-identical to a sequential run. *)

(** {1 Reporting} *)

val counter_rows : unit -> (string * int) list
val gauge_rows : unit -> (string * float) list

type hist_row = {
  hr_name : string;
  hr_summary : Netsim_stats.Summary.t;
  hr_p50 : float;
  hr_p90 : float;
  hr_p99 : float;
}

val histogram_rows : unit -> hist_row list

val histogram_export : unit -> (string * (float * int) list * Netsim_stats.Summary.t) list
(** Per-histogram raw bucket contents for exporters: [(name, (upper
    bound, count) per bucket, summary)], sorted by name.  The last
    bucket's bound is [infinity]. *)

(** {1 Runtime gauges}

    Process-level samples (GC stats, pool utilization) that depend on
    wall clock and domain count.  Kept out of {!to_json} so the merged
    deterministic metrics stay byte-identical across runs; read them
    with {!runtime_rows} (exporters, human-readable report). *)

val set_runtime : string -> float -> unit
(** No-op when disabled or inside a {!capture} (worker domains never
    write runtime samples). *)

val runtime_rows : unit -> (string * float) list

val reset : unit -> unit
(** Zero every registered metric (objects stay registered); drop all
    runtime gauges. *)

val to_json : unit -> Jsonx.t
