type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest decimal that is still unambiguous JSON: "%.17g" round-trips
   any float but is noisy; "%g" truncates.  Try increasing precision
   until the parse matches. *)
let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.1f" v
  else begin
    let s12 = Printf.sprintf "%.12g" v in
    if float_of_string s12 = v then s12 else Printf.sprintf "%.17g" v
  end

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v ->
      (* JSON has no nan/infinity literals. *)
      if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr v)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          emit buf x)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  emit buf t;
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_string t)

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
