module Summary = Netsim_stats.Summary

let pf = Summary.pretty_float

let metrics_table () =
  let buf = Buffer.create 2048 in
  let counters = Metrics.counter_rows () in
  let gauges = Metrics.gauge_rows () in
  let hists = Metrics.histogram_rows () in
  if counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (n, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-42s %12d\n" n v))
      counters
  end;
  if gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (n, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-42s %12s\n" n (pf v)))
      gauges
  end;
  if hists <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (r : Metrics.hist_row) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-42s %s p50=%s p90=%s p99=%s\n" r.Metrics.hr_name
             (Summary.one_line r.Metrics.hr_summary)
             (pf r.Metrics.hr_p50) (pf r.Metrics.hr_p90) (pf r.Metrics.hr_p99)))
      hists
  end;
  (let runtime = Metrics.runtime_rows () in
   if runtime <> [] then begin
     Buffer.add_string buf "runtime:\n";
     List.iter
       (fun (n, v) ->
         Buffer.add_string buf (Printf.sprintf "  %-42s %12s\n" n (pf v)))
       runtime
   end);
  if Buffer.length buf = 0 then "metrics: (none recorded)\n"
  else Buffer.contents buf

let render () =
  "=== trace (wall clock) ===\n" ^ Span.render ()
  ^ "=== metrics ===\n" ^ metrics_table ()

let to_json () =
  Jsonx.Obj [ ("metrics", Metrics.to_json ()); ("trace", Span.to_json ()) ]

(* All telemetry file outputs go through here so a bad --metrics-out /
   --trace / --event-log path fails with an actionable message instead
   of a raw Sys_error. *)
let write_text path content =
  let dir = Filename.dirname path in
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    failwith
      (Printf.sprintf "cannot write %s: directory %s does not exist" path dir);
  match open_out path with
  | exception Sys_error msg ->
      failwith (Printf.sprintf "cannot write %s: %s" path msg)
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content)

let write_json path = write_text path (Jsonx.to_string (to_json ()) ^ "\n")

let reset () =
  Metrics.reset ();
  Span.reset ();
  Recorder.reset ()
