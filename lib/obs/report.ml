module Summary = Netsim_stats.Summary

let pf = Summary.pretty_float

let metrics_table () =
  let buf = Buffer.create 2048 in
  let counters = Metrics.counter_rows () in
  let gauges = Metrics.gauge_rows () in
  let hists = Metrics.histogram_rows () in
  if counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (n, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-42s %12d\n" n v))
      counters
  end;
  if gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (n, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-42s %12s\n" n (pf v)))
      gauges
  end;
  if hists <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (r : Metrics.hist_row) ->
        Buffer.add_string buf
          (Printf.sprintf "  %-42s %s p50=%s p90=%s p99=%s\n" r.Metrics.hr_name
             (Summary.one_line r.Metrics.hr_summary)
             (pf r.Metrics.hr_p50) (pf r.Metrics.hr_p90) (pf r.Metrics.hr_p99)))
      hists
  end;
  if Buffer.length buf = 0 then "metrics: (none recorded)\n"
  else Buffer.contents buf

let render () =
  "=== trace (wall clock) ===\n" ^ Span.render ()
  ^ "=== metrics ===\n" ^ metrics_table ()

let to_json () =
  Jsonx.Obj [ ("metrics", Metrics.to_json ()); ("trace", Span.to_json ()) ]

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Jsonx.to_string (to_json ()));
      output_char oc '\n')

let reset () =
  Metrics.reset ();
  Span.reset ()
