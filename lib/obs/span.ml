(* Wall-clock span tree.  Repeated spans with the same name under the
   same parent are merged into one node (call count + accumulated
   time), which keeps per-prefix loops — e.g. one [bgp.propagate] per
   client AS — readable and bounds memory. *)

type node = {
  name : string;
  mutable calls : int;
  mutable total_ms : float;
  mutable children : node list;  (** newest first *)
  mutable counters : (string * int) list;
}

type info = {
  i_name : string;
  i_calls : int;
  i_total_ms : float;
  i_self_ms : float;
  i_counters : (string * int) list;
  i_children : info list;
}

let make_node name =
  { name; calls = 0; total_ms = 0.; children = []; counters = [] }

let root = ref (make_node "root")

type frame = { node : node; start : float; snap : int array }

let stack : frame list ref = ref []

let reset () =
  root := make_node "root";
  stack := []

let now_ms () = Unix.gettimeofday () *. 1000.

let find_child parent name =
  match List.find_opt (fun n -> n.name = name) parent.children with
  | Some n -> n
  | None ->
      let n = make_node name in
      parent.children <- n :: parent.children;
      n

(* Accumulate counter deltas into the node's running totals; both lists
   are sorted by name. *)
let merge_counters old deltas =
  let rec go a b =
    match (a, b) with
    | [], l | l, [] -> l
    | (ka, va) :: ra, (kb, vb) :: rb ->
        if ka = kb then (ka, va + vb) :: go ra rb
        else if ka < kb then (ka, va) :: go ra b
        else (kb, vb) :: go a rb
  in
  go old deltas

let with_ ~name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let parent = match !stack with fr :: _ -> fr.node | [] -> !root in
    let node = find_child parent name in
    let frame =
      { node; start = now_ms (); snap = Metrics.counter_snapshot () }
    in
    stack := frame :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | fr :: rest when fr == frame -> stack := rest
        | _ -> stack := []);
        node.calls <- node.calls + 1;
        node.total_ms <- node.total_ms +. (now_ms () -. frame.start);
        node.counters <-
          merge_counters node.counters (Metrics.counter_deltas frame.snap))
      f
  end

let rec info_of n =
  let children = List.rev_map info_of n.children in
  let child_ms =
    List.fold_left (fun acc c -> acc +. c.i_total_ms) 0. children
  in
  {
    i_name = n.name;
    i_calls = n.calls;
    i_total_ms = n.total_ms;
    i_self_ms = Float.max 0. (n.total_ms -. child_ms);
    i_counters = n.counters;
    i_children = children;
  }

let tree () = List.rev_map info_of !root.children

let rec names_of acc i =
  let acc = if List.mem i.i_name acc then acc else i.i_name :: acc in
  List.fold_left names_of acc i.i_children

let span_names () = List.fold_left names_of [] (tree ()) |> List.rev

let render () =
  let buf = Buffer.create 2048 in
  let rec line depth i =
    let label = String.make (2 * depth) ' ' ^ i.i_name in
    Buffer.add_string buf
      (Printf.sprintf "  %-42s %6dx %10.1fms %10.1fms" label i.i_calls
         i.i_total_ms i.i_self_ms);
    if i.i_counters <> [] then begin
      Buffer.add_string buf "  [";
      List.iteri
        (fun k (n, v) ->
          if k > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%s=%d" n v))
        i.i_counters;
      Buffer.add_char buf ']'
    end;
    Buffer.add_char buf '\n';
    List.iter (line (depth + 1)) i.i_children
  in
  match tree () with
  | [] -> "trace: (empty — was tracing enabled?)\n"
  | roots ->
      Buffer.add_string buf
        (Printf.sprintf "  %-42s %7s %12s %12s\n" "span" "calls" "total"
           "self");
      List.iter (line 0) roots;
      Buffer.contents buf

let rec json_of (i : info) =
  Jsonx.Obj
    [
      ("name", Jsonx.String i.i_name);
      ("calls", Jsonx.Int i.i_calls);
      ("total_ms", Jsonx.Float i.i_total_ms);
      ("self_ms", Jsonx.Float i.i_self_ms);
      ( "counters",
        Jsonx.Obj (List.map (fun (n, v) -> (n, Jsonx.Int v)) i.i_counters) );
      ("children", Jsonx.Arr (List.map json_of i.i_children));
    ]

let to_json () = Jsonx.Arr (List.map json_of (tree ()))
