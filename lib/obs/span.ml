(* Wall-clock span tree.  Repeated spans with the same name under the
   same parent are merged into one node (call count + accumulated
   time), which keeps per-prefix loops — e.g. one [bgp.propagate] per
   client AS — readable and bounds memory. *)

type node = {
  name : string;
  mutable calls : int;
  mutable total_ms : float;
  mutable children : node list;  (** newest first *)
  mutable counters : (string * int) list;
}

type info = {
  i_name : string;
  i_calls : int;
  i_total_ms : float;
  i_self_ms : float;
  i_counters : (string * int) list;
  i_children : info list;
}

let make_node name =
  { name; calls = 0; total_ms = 0.; children = []; counters = [] }

type frame = { node : node; start : float; snap : Metrics.snapshot }

(* The tree and the open-span stack are domain-local: the main domain
   owns the tree that [render]/[to_json] report on, while each pool
   worker accumulates into its own scratch tree inside [capture] and
   the pool re-parents it under the fan-out span via [absorb]. *)
type dstate = { mutable root : node; mutable stack : frame list }

let dstate_key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { root = make_node "root"; stack = [] })

let reset () =
  let st = Domain.DLS.get dstate_key in
  st.root <- make_node "root";
  st.stack <- []

let now_ms () = Unix.gettimeofday () *. 1000.

let find_child parent name =
  match List.find_opt (fun n -> n.name = name) parent.children with
  | Some n -> n
  | None ->
      let n = make_node name in
      parent.children <- n :: parent.children;
      n

(* Accumulate counter deltas into the node's running totals; both lists
   are sorted by name. *)
let merge_counters old deltas =
  let rec go a b =
    match (a, b) with
    | [], l | l, [] -> l
    | (ka, va) :: ra, (kb, vb) :: rb ->
        if ka = kb then (ka, va + vb) :: go ra rb
        else if ka < kb then (ka, va) :: go ra b
        else (kb, vb) :: go a rb
  in
  go old deltas

let with_ ~name f =
  if not (Metrics.enabled ()) then f ()
  else begin
    let st = Domain.DLS.get dstate_key in
    let parent = match st.stack with fr :: _ -> fr.node | [] -> st.root in
    let node = find_child parent name in
    let frame =
      { node; start = now_ms (); snap = Metrics.counter_snapshot () }
    in
    st.stack <- frame :: st.stack;
    Fun.protect
      ~finally:(fun () ->
        (match st.stack with
        | fr :: rest when fr == frame -> st.stack <- rest
        | _ -> st.stack <- []);
        node.calls <- node.calls + 1;
        node.total_ms <- node.total_ms +. (now_ms () -. frame.start);
        node.counters <-
          merge_counters node.counters (Metrics.counter_deltas frame.snap);
        (* Sample GC state at every span boundary.  [set_runtime] is a
           no-op inside a capture, so pool workers skip the sample and
           the runtime table only ever sees main-domain values. *)
        let gc = Gc.quick_stat () in
        Metrics.set_runtime "gc.minor_collections"
          (float_of_int gc.Gc.minor_collections);
        Metrics.set_runtime "gc.major_collections"
          (float_of_int gc.Gc.major_collections);
        Metrics.set_runtime "gc.promoted_words" gc.Gc.promoted_words;
        Metrics.set_runtime "gc.heap_words" (float_of_int gc.Gc.heap_words))
      f
  end

let rec info_of n =
  let children = List.rev_map info_of n.children in
  let child_ms =
    List.fold_left (fun acc c -> acc +. c.i_total_ms) 0. children
  in
  {
    i_name = n.name;
    i_calls = n.calls;
    i_total_ms = n.total_ms;
    i_self_ms = Float.max 0. (n.total_ms -. child_ms);
    i_counters = n.counters;
    i_children = children;
  }

let tree () = List.rev_map info_of (Domain.DLS.get dstate_key).root.children

(* ---- capture / absorb ------------------------------------------------ *)

type captured = node

let capture f =
  let st = Domain.DLS.get dstate_key in
  let saved_root = st.root and saved_stack = st.stack in
  let fresh = make_node "root" in
  st.root <- fresh;
  st.stack <- [];
  let restore () =
    st.root <- saved_root;
    st.stack <- saved_stack
  in
  match f () with
  | v ->
      restore ();
      (v, fresh)
  | exception e ->
      restore ();
      raise e

let absorb cap =
  let st = Domain.DLS.get dstate_key in
  let parent = match st.stack with fr :: _ -> fr.node | [] -> st.root in
  let rec merge parent n =
    let dst = find_child parent n.name in
    dst.calls <- dst.calls + n.calls;
    dst.total_ms <- dst.total_ms +. n.total_ms;
    dst.counters <- merge_counters dst.counters n.counters;
    (* children is newest-first; merge oldest-first to reproduce the
       sequential creation order. *)
    List.iter (merge dst) (List.rev n.children)
  in
  List.iter (merge parent) (List.rev cap.children)

let rec names_of acc i =
  let acc = if List.mem i.i_name acc then acc else i.i_name :: acc in
  List.fold_left names_of acc i.i_children

let span_names () = List.fold_left names_of [] (tree ()) |> List.rev

let render () =
  let buf = Buffer.create 2048 in
  let rec line depth i =
    let label = String.make (2 * depth) ' ' ^ i.i_name in
    Buffer.add_string buf
      (Printf.sprintf "  %-42s %6dx %10.1fms %10.1fms" label i.i_calls
         i.i_total_ms i.i_self_ms);
    if i.i_counters <> [] then begin
      Buffer.add_string buf "  [";
      List.iteri
        (fun k (n, v) ->
          if k > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%s=%d" n v))
        i.i_counters;
      Buffer.add_char buf ']'
    end;
    Buffer.add_char buf '\n';
    List.iter (line (depth + 1)) i.i_children
  in
  match tree () with
  | [] -> "trace: (empty — was tracing enabled?)\n"
  | roots ->
      Buffer.add_string buf
        (Printf.sprintf "  %-42s %7s %12s %12s\n" "span" "calls" "total"
           "self");
      List.iter (line 0) roots;
      Buffer.contents buf

let rec json_of (i : info) =
  Jsonx.Obj
    [
      ("name", Jsonx.String i.i_name);
      ("calls", Jsonx.Int i.i_calls);
      ("total_ms", Jsonx.Float i.i_total_ms);
      ("self_ms", Jsonx.Float i.i_self_ms);
      ( "counters",
        Jsonx.Obj (List.map (fun (n, v) -> (n, Jsonx.Int v)) i.i_counters) );
      ("children", Jsonx.Arr (List.map json_of i.i_children));
    ]

let to_json () = Jsonx.Arr (List.map json_of (tree ()))
