(** Combined human-readable and JSON reports over {!Metrics} and
    {!Span}. *)

val metrics_table : unit -> string
(** Counters, gauges and histogram summaries (one line each, built on
    {!Netsim_stats.Summary.one_line}). *)

val render : unit -> string
(** Trace tree followed by the metrics table. *)

val to_json : unit -> Jsonx.t
(** [{"metrics": {...}, "trace": [...]}] *)

val write_text : string -> string -> unit
(** [write_text path content] writes [content] to [path], raising
    [Failure] with a clear message (rather than a raw [Sys_error])
    when the target directory does not exist or the file cannot be
    opened.  All CLI telemetry outputs funnel through this. *)

val write_json : string -> unit
(** Write {!to_json} to a file, newline-terminated. *)

val reset : unit -> unit
(** Reset the metrics registry, the span tree, and the flight
    recorder. *)
