(** Combined human-readable and JSON reports over {!Metrics} and
    {!Span}. *)

val metrics_table : unit -> string
(** Counters, gauges and histogram summaries (one line each, built on
    {!Netsim_stats.Summary.one_line}). *)

val render : unit -> string
(** Trace tree followed by the metrics table. *)

val to_json : unit -> Jsonx.t
(** [{"metrics": {...}, "trace": [...]}] *)

val write_json : string -> unit
(** Write {!to_json} to a file, newline-terminated. *)

val reset : unit -> unit
(** Reset both the metrics registry and the span tree. *)
