(** Minimal JSON document type with a hand-rolled emitter (no external
    dependency).  Non-finite floats emit as [null]; strings are escaped
    per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val member : string -> t -> t option
(** [member name (Obj fields)] is the value bound to [name], if any;
    [None] on non-objects. *)
