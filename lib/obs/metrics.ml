module Summary = Netsim_stats.Summary
module Quantile = Netsim_stats.Quantile

(* Single global switch checked at every record site.  Default off, so
   instrumentation costs one load + branch per site; seeded from the
   NETSIM_TRACE environment variable, flipped by the CLI / bench
   drivers. *)
let on =
  ref
    (match Sys.getenv_opt "NETSIM_TRACE" with
    | None | Some "" | Some "0" | Some "false" -> false
    | Some _ -> true)

let set_enabled b = on := b
let enabled () = !on

(* ---- counters -------------------------------------------------------- *)

type counter = { c_id : int; c_name : string; mutable c_value : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let counter_list : counter list ref = ref []
let n_counters = ref 0

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None ->
      let c = { c_id = !n_counters; c_name = name; c_value = 0 } in
      incr n_counters;
      Hashtbl.replace counters name c;
      counter_list := c :: !counter_list;
      c

let incr ?(by = 1) c = if !on then c.c_value <- c.c_value + by
let add c by = if !on then c.c_value <- c.c_value + by
let counter_value c = c.c_value

(* ---- gauges ---------------------------------------------------------- *)

type gauge = { g_name : string; mutable g_value : float }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None ->
      let g = { g_name = name; g_value = 0. } in
      Hashtbl.replace gauges name g;
      g

let set g v = if !on then g.g_value <- v
let gauge_value g = g.g_value

(* ---- histograms ------------------------------------------------------ *)

(* Log-bucketed: [buckets_per_decade] buckets per decade of value, over
   [10^lo_decade, 10^hi_decade), with underflow (index 0, values <=
   lower bound or <= 0) and overflow (last index) buckets.  Quantiles
   are estimated from bucket geometric midpoints with the existing
   weighted-quantile machinery, so the relative error is bounded by the
   bucket width (x10^(1/buckets_per_decade) ~ 1.58). *)
let buckets_per_decade = 5
let lo_decade = -3
let hi_decade = 7
let n_inner = (hi_decade - lo_decade) * buckets_per_decade
let n_buckets = n_inner + 2

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_summary : Summary.t;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          h_name = name;
          h_buckets = Array.make n_buckets 0;
          h_summary = Summary.create ();
        }
      in
      Hashtbl.replace histograms name h;
      h

let bucket_index v =
  if v <= 0. then 0
  else begin
    let raw =
      int_of_float
        (Float.floor
           ((Float.log10 v -. float_of_int lo_decade)
           *. float_of_int buckets_per_decade))
    in
    if raw < 0 then 0 else if raw >= n_inner then n_buckets - 1 else raw + 1
  end

(* Geometric midpoint of the bucket: the value every sample in it is
   reported as when estimating quantiles. *)
let bucket_mid i =
  if i = 0 then 0.
  else if i = n_buckets - 1 then 10. ** float_of_int hi_decade
  else
    10.
    ** (float_of_int lo_decade
       +. ((float_of_int (i - 1) +. 0.5) /. float_of_int buckets_per_decade))

let observe h v =
  if !on then begin
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1;
    Summary.add h.h_summary v
  end

let histogram_count h = Summary.count h.h_summary
let histogram_summary h = h.h_summary

let histogram_quantile h q =
  let pairs = ref [] in
  Array.iteri
    (fun i n ->
      if n > 0 then pairs := (bucket_mid i, float_of_int n) :: !pairs)
    h.h_buckets;
  match !pairs with
  | [] -> nan
  | l -> Quantile.weighted_quantile (Array.of_list l) q

(* ---- snapshots (for per-span counter deltas) ------------------------- *)

let counter_snapshot () =
  let a = Array.make (Stdlib.max 1 !n_counters) 0 in
  List.iter (fun c -> a.(c.c_id) <- c.c_value) !counter_list;
  a

let counter_deltas snap =
  List.filter_map
    (fun c ->
      let base = if c.c_id < Array.length snap then snap.(c.c_id) else 0 in
      let d = c.c_value - base in
      if d = 0 then None else Some (c.c_name, d))
    !counter_list
  |> List.sort compare

(* ---- report rows ----------------------------------------------------- *)

let counter_rows () =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) counters []
  |> List.sort compare

let gauge_rows () =
  Hashtbl.fold (fun name g acc -> (name, g.g_value) :: acc) gauges []
  |> List.sort compare

type hist_row = {
  hr_name : string;
  hr_summary : Summary.t;
  hr_p50 : float;
  hr_p90 : float;
  hr_p99 : float;
}

let histogram_rows () =
  Hashtbl.fold
    (fun name h acc ->
      ( name,
        {
          hr_name = name;
          hr_summary = h.h_summary;
          hr_p50 = histogram_quantile h 0.5;
          hr_p90 = histogram_quantile h 0.9;
          hr_p99 = histogram_quantile h 0.99;
        } )
      :: acc)
    histograms []
  |> List.sort compare |> List.map snd

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 n_buckets 0;
      h.h_summary <- Summary.create ())
    histograms

let to_json () =
  Jsonx.Obj
    [
      ( "counters",
        Jsonx.Obj
          (List.map (fun (n, v) -> (n, Jsonx.Int v)) (counter_rows ())) );
      ( "gauges",
        Jsonx.Obj (List.map (fun (n, v) -> (n, Jsonx.Float v)) (gauge_rows ()))
      );
      ( "histograms",
        Jsonx.Arr
          (List.map
             (fun r ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String r.hr_name);
                   ("count", Jsonx.Int (Summary.count r.hr_summary));
                   ("mean", Jsonx.Float (Summary.mean r.hr_summary));
                   ("min", Jsonx.Float (Summary.min r.hr_summary));
                   ("max", Jsonx.Float (Summary.max r.hr_summary));
                   ("total", Jsonx.Float (Summary.total r.hr_summary));
                   ("p50", Jsonx.Float r.hr_p50);
                   ("p90", Jsonx.Float r.hr_p90);
                   ("p99", Jsonx.Float r.hr_p99);
                 ])
             (histogram_rows ())) );
    ]
