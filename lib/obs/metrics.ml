module Summary = Netsim_stats.Summary
module Quantile = Netsim_stats.Quantile

(* Single global switch checked at every record site.  Default off, so
   instrumentation costs one load + branch per site; seeded from the
   NETSIM_TRACE environment variable, flipped by the CLI / bench
   drivers. *)
let on =
  ref
    (match Sys.getenv_opt "NETSIM_TRACE" with
    | None | Some "" | Some "0" | Some "false" -> false
    | Some _ -> true)

let set_enabled b = on := b
let enabled () = !on

(* ---- domain-local capture buffers ------------------------------------ *)

(* The registry below is owned by the main domain.  Worker domains (the
   Netsim_par pool) must not touch it concurrently, so every record
   site first consults a domain-local slot: [None] (the default in
   every domain) means "write straight into the global registry";
   [Some buf] means "append to this buffer".  [capture] installs a
   fresh buffer around a task and returns the ordered event list;
   [absorb] replays it through the normal record path.  Replaying the
   per-task buffers in submission order reproduces, event for event,
   the sequence of record calls a sequential run would have made — so
   the merged registry is byte-identical regardless of domain count. *)

type event =
  | Ev_counter of string * int
  | Ev_gauge of string * float
  | Ev_observe of string * float

type buffer = {
  mutable events : event list;  (** newest first *)
  live : (string, int ref) Hashtbl.t;
      (** running counter values, for span counter deltas *)
}

let buffer_key : buffer option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

(* ---- counters -------------------------------------------------------- *)

type counter = { c_id : int; c_name : string; mutable c_value : int }

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let counter_list : counter list ref = ref []
let n_counters = ref 0

let counter name =
  match Hashtbl.find_opt counters name with
  | Some c -> c
  | None -> (
      match Domain.DLS.get buffer_key with
      | Some _ ->
          (* Inside a capture: never mutate the global table.  The
             detached handle still records by name, and [absorb]
             registers the name (in deterministic replay order) when
             the buffer is merged. *)
          { c_id = -1; c_name = name; c_value = 0 }
      | None ->
          let c = { c_id = !n_counters; c_name = name; c_value = 0 } in
          incr n_counters;
          Hashtbl.replace counters name c;
          counter_list := c :: !counter_list;
          c)

let buffer_incr buf name by =
  buf.events <- Ev_counter (name, by) :: buf.events;
  match Hashtbl.find_opt buf.live name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace buf.live name (ref by)

let incr ?(by = 1) c =
  if !on then
    match Domain.DLS.get buffer_key with
    | None -> c.c_value <- c.c_value + by
    | Some buf -> buffer_incr buf c.c_name by

let add c by =
  if !on then
    match Domain.DLS.get buffer_key with
    | None -> c.c_value <- c.c_value + by
    | Some buf -> buffer_incr buf c.c_name by

let counter_value c =
  match Domain.DLS.get buffer_key with
  | None -> c.c_value
  | Some buf -> (
      (* Within a capture only the task's own increments are visible. *)
      match Hashtbl.find_opt buf.live c.c_name with
      | Some r -> !r
      | None -> 0)

(* ---- gauges ---------------------------------------------------------- *)

type gauge = { g_name : string; mutable g_value : float }

let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16

let gauge name =
  match Hashtbl.find_opt gauges name with
  | Some g -> g
  | None -> (
      match Domain.DLS.get buffer_key with
      | Some _ -> { g_name = name; g_value = 0. }
      | None ->
          let g = { g_name = name; g_value = 0. } in
          Hashtbl.replace gauges name g;
          g)

let set g v =
  if !on then
    match Domain.DLS.get buffer_key with
    | None -> g.g_value <- v
    | Some buf -> buf.events <- Ev_gauge (g.g_name, v) :: buf.events

let gauge_value g = g.g_value

(* ---- histograms ------------------------------------------------------ *)

(* Log-bucketed: [buckets_per_decade] buckets per decade of value, over
   [10^lo_decade, 10^hi_decade), with underflow (index 0, values <=
   lower bound or <= 0) and overflow (last index) buckets.  Quantiles
   are estimated from bucket geometric midpoints with the existing
   weighted-quantile machinery, so the relative error is bounded by the
   bucket width (x10^(1/buckets_per_decade) ~ 1.58). *)
let buckets_per_decade = 5
let lo_decade = -3
let hi_decade = 7
let n_inner = (hi_decade - lo_decade) * buckets_per_decade
let n_buckets = n_inner + 2

type histogram = {
  h_name : string;
  h_buckets : int array;
  mutable h_summary : Summary.t;
}

let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let histogram name =
  match Hashtbl.find_opt histograms name with
  | Some h -> h
  | None -> (
      let h =
        {
          h_name = name;
          h_buckets = Array.make n_buckets 0;
          h_summary = Summary.create ();
        }
      in
      match Domain.DLS.get buffer_key with
      | Some _ -> h
      | None ->
          Hashtbl.replace histograms name h;
          h)

let bucket_index v =
  if v <= 0. then 0
  else begin
    let raw =
      int_of_float
        (Float.floor
           ((Float.log10 v -. float_of_int lo_decade)
           *. float_of_int buckets_per_decade))
    in
    if raw < 0 then 0 else if raw >= n_inner then n_buckets - 1 else raw + 1
  end

(* Geometric midpoint of the bucket: the value every sample in it is
   reported as when estimating quantiles. *)
let bucket_mid i =
  if i = 0 then 0.
  else if i = n_buckets - 1 then 10. ** float_of_int hi_decade
  else
    10.
    ** (float_of_int lo_decade
       +. ((float_of_int (i - 1) +. 0.5) /. float_of_int buckets_per_decade))

let observe_direct h v =
  let i = bucket_index v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1;
  Summary.add h.h_summary v

let observe h v =
  if !on then
    match Domain.DLS.get buffer_key with
    | None -> observe_direct h v
    | Some buf -> buf.events <- Ev_observe (h.h_name, v) :: buf.events

let histogram_count h = Summary.count h.h_summary
let histogram_summary h = h.h_summary

(* Upper bound of bucket [i], for Prometheus-style cumulative export.
   The underflow bucket's bound is the histogram floor; the overflow
   bucket is unbounded. *)
let bucket_upper i =
  if i = 0 then 10. ** float_of_int lo_decade
  else if i = n_buckets - 1 then infinity
  else
    10.
    ** (float_of_int lo_decade
       +. (float_of_int i /. float_of_int buckets_per_decade))

let histogram_quantile h q =
  let pairs = ref [] in
  Array.iteri
    (fun i n ->
      if n > 0 then pairs := (bucket_mid i, float_of_int n) :: !pairs)
    h.h_buckets;
  match !pairs with
  | [] -> nan
  | l -> Quantile.weighted_quantile (Array.of_list l) q

(* ---- snapshots (for per-span counter deltas) ------------------------- *)

type snapshot =
  | Snap_global of int array  (** values indexed by [c_id] *)
  | Snap_buffered of (string * int) list  (** sorted buffer values *)

let buffer_values buf =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) buf.live []
  |> List.sort compare

let counter_snapshot () =
  match Domain.DLS.get buffer_key with
  | None ->
      let a = Array.make (Stdlib.max 1 !n_counters) 0 in
      List.iter (fun c -> a.(c.c_id) <- c.c_value) !counter_list;
      Snap_global a
  | Some buf -> Snap_buffered (buffer_values buf)

let counter_deltas snap =
  match (snap, Domain.DLS.get buffer_key) with
  | Snap_global a, None ->
      List.filter_map
        (fun c ->
          let base = if c.c_id < Array.length a then a.(c.c_id) else 0 in
          let d = c.c_value - base in
          if d = 0 then None else Some (c.c_name, d))
        !counter_list
      |> List.sort compare
  | Snap_buffered base, Some buf ->
      List.filter_map
        (fun (name, v) ->
          let b =
            match List.assoc_opt name base with Some b -> b | None -> 0
          in
          if v = b then None else Some (name, v - b))
        (buffer_values buf)
  | Snap_global _, Some _ | Snap_buffered _, None ->
      (* Snapshot crossed a capture boundary; spans never do this. *)
      []

(* ---- capture / absorb ------------------------------------------------ *)

type captured = event list  (** oldest first *)

let capture f =
  let saved = Domain.DLS.get buffer_key in
  let buf = { events = []; live = Hashtbl.create 32 } in
  Domain.DLS.set buffer_key (Some buf);
  match f () with
  | v ->
      Domain.DLS.set buffer_key saved;
      (v, List.rev buf.events)
  | exception e ->
      Domain.DLS.set buffer_key saved;
      raise e

let absorb events =
  List.iter
    (fun ev ->
      match (ev, Domain.DLS.get buffer_key) with
      | Ev_counter (name, by), None ->
          let c = counter name in
          c.c_value <- c.c_value + by
      | Ev_gauge (name, v), None -> (gauge name).g_value <- v
      | Ev_observe (name, v), None -> observe_direct (histogram name) v
      (* Absorbing inside an outer capture just re-buffers, so nested
         fan-outs compose. *)
      | Ev_counter (name, by), Some buf -> buffer_incr buf name by
      | (Ev_gauge _ | Ev_observe _), Some buf -> buf.events <- ev :: buf.events)
    events

(* ---- runtime gauges -------------------------------------------------- *)

(* Process-level numbers (GC stats, pool utilization) that vary with
   wall clock and domain count.  They live in a side table that is
   deliberately NOT part of [to_json], so the deterministic merged
   metrics document stays byte-identical across runs and NETSIM_DOMAINS
   settings; exporters and the human-readable report read them via
   [runtime_rows].  Writes from inside a capture are dropped rather
   than buffered — worker-domain samples would race and are not
   meaningful to merge. *)

let runtime : (string, float ref) Hashtbl.t = Hashtbl.create 32

let set_runtime name v =
  if !on then
    match Domain.DLS.get buffer_key with
    | Some _ -> ()
    | None -> (
        match Hashtbl.find_opt runtime name with
        | Some r -> r := v
        | None -> Hashtbl.replace runtime name (ref v))

let runtime_rows () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) runtime []
  |> List.sort compare

(* ---- report rows ----------------------------------------------------- *)

let counter_rows () =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) counters []
  |> List.sort compare

let gauge_rows () =
  Hashtbl.fold (fun name g acc -> (name, g.g_value) :: acc) gauges []
  |> List.sort compare

type hist_row = {
  hr_name : string;
  hr_summary : Summary.t;
  hr_p50 : float;
  hr_p90 : float;
  hr_p99 : float;
}

let histogram_rows () =
  Hashtbl.fold
    (fun name h acc ->
      ( name,
        {
          hr_name = name;
          hr_summary = h.h_summary;
          hr_p50 = histogram_quantile h 0.5;
          hr_p90 = histogram_quantile h 0.9;
          hr_p99 = histogram_quantile h 0.99;
        } )
      :: acc)
    histograms []
  |> List.sort compare |> List.map snd

let histogram_export () =
  Hashtbl.fold
    (fun name h acc ->
      let buckets =
        List.init n_buckets (fun i -> (bucket_upper i, h.h_buckets.(i)))
      in
      (name, buckets, h.h_summary) :: acc)
    histograms []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let reset () =
  Hashtbl.reset runtime;
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.fill h.h_buckets 0 n_buckets 0;
      h.h_summary <- Summary.create ())
    histograms

let to_json () =
  Jsonx.Obj
    [
      ( "counters",
        Jsonx.Obj
          (List.map (fun (n, v) -> (n, Jsonx.Int v)) (counter_rows ())) );
      ( "gauges",
        Jsonx.Obj (List.map (fun (n, v) -> (n, Jsonx.Float v)) (gauge_rows ()))
      );
      ( "histograms",
        Jsonx.Arr
          (List.map
             (fun r ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.String r.hr_name);
                   ("count", Jsonx.Int (Summary.count r.hr_summary));
                   ("mean", Jsonx.Float (Summary.mean r.hr_summary));
                   ("min", Jsonx.Float (Summary.min r.hr_summary));
                   ("max", Jsonx.Float (Summary.max r.hr_summary));
                   ("total", Jsonx.Float (Summary.total r.hr_summary));
                   ("p50", Jsonx.Float r.hr_p50);
                   ("p90", Jsonx.Float r.hr_p90);
                   ("p99", Jsonx.Float r.hr_p99);
                 ])
             (histogram_rows ())) );
    ]
