(** Nested wall-clock trace spans.

    [with_ ~name f] times [f] and records it as a span under the
    currently open span (or at the root).  When tracing is disabled
    ({!Metrics.enabled} is false) it is exactly [f ()].  Repeated spans
    with the same name under the same parent merge into one node (call
    count + accumulated time), so per-prefix loops stay readable.

    Each span also records the delta of every registered counter
    between entry and exit (inclusive of descendants). *)

val with_ : name:string -> (unit -> 'a) -> 'a
(** Exception-safe: the span is closed even if [f] raises. *)

(** Immutable view of the recorded tree. *)
type info = {
  i_name : string;
  i_calls : int;
  i_total_ms : float;  (** wall clock, inclusive of children *)
  i_self_ms : float;  (** [total] minus the children's total, >= 0 *)
  i_counters : (string * int) list;  (** counter deltas, sorted by name *)
  i_children : info list;  (** first-seen order *)
}

val tree : unit -> info list
val span_names : unit -> string list
(** Distinct span names, preorder. *)

val render : unit -> string
(** Indented text table: span, calls, total ms, self ms, counter
    deltas. *)

val to_json : unit -> Jsonx.t
val reset : unit -> unit

(** {1 Capture} — domain-local trees for the parallel pool.

    The span tree and open-span stack are per-domain, so concurrent
    workers never race.  {!capture} runs a task against a fresh
    scratch tree; {!absorb} re-parents the captured subtree under the
    currently open span (the fan-out point), merging same-name nodes
    exactly as sequential execution would have. *)

type captured

val capture : (unit -> 'a) -> 'a * captured
(** Exception-safe; the surrounding tree/stack are restored either way
    (the partial capture is discarded on exception). *)

val absorb : captured -> unit
