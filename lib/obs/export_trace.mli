(** Chrome trace-event JSON export of the {!Span} tree, for Perfetto
    and chrome://tracing.  The aggregated tree holds merged totals
    rather than raw timestamps, so the exporter synthesizes a timeline
    ("X" complete events, children placed sequentially inside their
    parent) that preserves nesting and relative durations. *)

val to_json : unit -> Jsonx.t
val to_string : unit -> string

val write : string -> unit
(** Render to a file via {!Report.write_text} (clear error on a
    missing directory). *)
