(* Prometheus text-exposition (v0.0.4) rendering of the metrics
   registry.  Counters become <name>_total counters, gauges and
   runtime samples become gauges, histograms become the cumulative
   _bucket/_sum/_count triple.  Metric names are sanitized to
   [a-zA-Z0-9_:] and prefixed "netsim_" so scrapes from several tools
   never collide. *)

let prefix = "netsim_"

let sanitize name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> ()
      | _ -> Bytes.set b i '_')
    b;
  let s = Bytes.to_string b in
  let s =
    if s = "" then "_"
    else match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s
  in
  prefix ^ s

(* Prometheus floats: plain decimal or scientific, "+Inf" for the
   unbounded bucket.  %.12g round-trips every value we emit. *)
let num v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Printf.sprintf "%.12g" v

let help_line buf name kind help =
  Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

let to_string () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, v) ->
      let pname = sanitize name ^ "_total" in
      help_line buf pname "counter" (Printf.sprintf "Counter %s." name);
      Buffer.add_string buf (Printf.sprintf "%s %d\n" pname v))
    (Metrics.counter_rows ());
  List.iter
    (fun (name, v) ->
      let pname = sanitize name in
      help_line buf pname "gauge" (Printf.sprintf "Gauge %s." name);
      Buffer.add_string buf (Printf.sprintf "%s %s\n" pname (num v)))
    (Metrics.gauge_rows ());
  List.iter
    (fun (name, v) ->
      let pname = sanitize name in
      help_line buf pname "gauge" (Printf.sprintf "Runtime sample %s." name);
      Buffer.add_string buf (Printf.sprintf "%s %s\n" pname (num v)))
    (Metrics.runtime_rows ());
  List.iter
    (fun (name, buckets, summary) ->
      let pname = sanitize name in
      help_line buf pname "histogram" (Printf.sprintf "Histogram %s." name);
      (* Cumulative buckets; skip empty inner deltas but always emit
         the +Inf bucket, whose count must equal _count.  A histogram
         with zero observations (or a bucket list without an explicit
         +Inf upper bound) must still produce the +Inf/_sum/_count
         triple, or the exposition fails to parse. *)
      let cum = ref 0 in
      let inf_emitted = ref false in
      List.iter
        (fun (upper, n) ->
          cum := !cum + n;
          if n > 0 || upper = infinity then begin
            if upper = infinity then inf_emitted := true;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" pname (num upper)
                 !cum)
          end)
        buckets;
      if not !inf_emitted then
        Buffer.add_string buf
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" pname !cum);
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n" pname
           (num (Netsim_stats.Summary.total summary)));
      Buffer.add_string buf
        (Printf.sprintf "%s_count %d\n" pname
           (Netsim_stats.Summary.count summary)))
    (Metrics.histogram_export ());
  Buffer.contents buf

let write path = Report.write_text path (to_string ())
