(* Route-provenance arena: per (class, AS) decision evidence recorded
   by the propagation core when enabled.

   The propagation phases already visit every candidate announcement
   exactly once (queue pops in phases 1/3, min-updates in phase 2), so
   provenance is two packed-int side tables — how many candidates each
   AS considered per route class, and the best {e losing} candidate
   (the runner-up) — maintained with order-independent min/count
   updates.  No per-entry allocation, and when disabled every record
   site costs one load + branch, the same discipline as the flight
   recorder.

   The arena stores the core's packed route entries verbatim (this
   layer never interprets them); class indices are 0 = customer,
   1 = peer, 2 = provider — [Route.klass_rank] order. *)

let enabled_ref =
  ref
    (match Sys.getenv_opt "NETSIM_PROVENANCE" with
    | Some ("1" | "true" | "on") -> true
    | None | Some _ -> false)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let schema = "beatbgp.provenance/1"

type rule = Phase | Path_length | Stable_id | Only_candidate

let rule_to_string = function
  | Phase -> "relationship-class"
  | Path_length -> "path-length"
  | Stable_id -> "stable-id"
  | Only_candidate -> "only-candidate"

let classes = 3

type arena = {
  pa_n : int;
  ncand : int array array;  (** [class][as]: candidates considered. *)
  cand2 : int array array;
      (** [class][as]: packed runner-up entry, -1 when the class had at
          most one candidate. *)
}

let create n =
  {
    pa_n = n;
    ncand = Array.init classes (fun _ -> Array.make n 0);
    cand2 = Array.init classes (fun _ -> Array.make n (-1));
  }

let length a = a.pa_n

let copy a =
  { pa_n = a.pa_n; ncand = Array.map Array.copy a.ncand;
    cand2 = Array.map Array.copy a.cand2 }

let clear_slot a ~cls x =
  a.ncand.(cls).(x) <- 0;
  a.cand2.(cls).(x) <- -1

let count a ~cls x = a.ncand.(cls).(x) <- a.ncand.(cls).(x) + 1

(* Offer a non-winning candidate for the runner-up slot.  Packed
   entries compare as route preference, so keeping the minimum yields
   the true second-best whatever order candidates arrive in. *)
let offer a ~cls x cand =
  let cur = a.cand2.(cls).(x) in
  if cur < 0 || cand < cur then a.cand2.(cls).(x) <- cand

let candidates a ~cls x = a.ncand.(cls).(x)
let runner_up a ~cls x = a.cand2.(cls).(x)

let equal a b = a.pa_n = b.pa_n && a.ncand = b.ncand && a.cand2 = b.cand2

(* ---- registry counters ------------------------------------------------ *)

(* Exported by Export_prom as netsim_provenance_*: decisions by the
   Gao-Rexford phase that won, and a histogram of which tie-break rule
   discriminated.  Callers (the propagation core) only tally when the
   metrics registry is enabled. *)

let c_decisions =
  [|
    Metrics.counter "provenance.decisions.customer";
    Metrics.counter "provenance.decisions.peer";
    Metrics.counter "provenance.decisions.provider";
  |]

let c_rule_phase = Metrics.counter "provenance.tiebreak.relationship_class"
let c_rule_len = Metrics.counter "provenance.tiebreak.path_length"
let c_rule_id = Metrics.counter "provenance.tiebreak.stable_id"
let c_rule_only = Metrics.counter "provenance.tiebreak.only_candidate"

let bump_decision cls = Metrics.incr c_decisions.(cls)

let bump_rule = function
  | Phase -> Metrics.incr c_rule_phase
  | Path_length -> Metrics.incr c_rule_len
  | Stable_id -> Metrics.incr c_rule_id
  | Only_candidate -> Metrics.incr c_rule_only
