(** Flight recorder: bounded ring buffer of structured events.

    Sites call {!record} unconditionally; when disabled the cost is a
    single load + branch and no allocation.  Enabled runs flush to
    JSONL via {!to_jsonl} — one header line followed by one object per
    event, oldest first, with monotone [seq] numbers.  Events contain
    only deterministic simulation fields by default, so logs are
    byte-identical run-to-run and across [NETSIM_DOMAINS] settings.

    Environment knobs: [NETSIM_EVENTS] enables recording (the CLI's
    [--event-log] flag does the same), [NETSIM_EVENT_CAP] overrides
    the ring capacity (default 131072), [NETSIM_EVENT_NS] lets sites
    attach wall-clock timings (breaks byte-determinism; off by
    default). *)

type field =
  | I of string * int
  | F of string * float
  | S of string * string

val enabled : unit -> bool
val set_enabled : bool -> unit

val timing : unit -> bool
(** Whether sites may attach wall-clock fields ([NETSIM_EVENT_NS]). *)

val set_timing : bool -> unit

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (clamped to >= 1).  Resets recorded events. *)

val record : kind:string -> field list -> unit
(** Append an event.  No-op when disabled.  Inside a {!capture} the
    event goes to the domain-local buffer instead of the ring. *)

val size : unit -> int
(** Events currently held in the ring. *)

val dropped : unit -> int
(** Events evicted because the ring was full. *)

val reset : unit -> unit

val schema : string
(** The event-log schema tag (["beatbgp.events/1"]), also reported by
    [beatbgp --version]. *)

val to_jsonl : unit -> string
(** Header line [{"schema":"beatbgp.events/1",...}] then one JSON
    object per event ([seq], [kind], then the event's fields). *)

(** {2 Deterministic parallel fan-in}

    Mirrors [Metrics.capture]/[absorb]: pool workers wrap each task in
    {!capture} and the main domain replays the buffers in
    task-submission order, so sequence numbers and ring-drop behaviour
    are independent of the domain count. *)

type captured

val capture : (unit -> 'a) -> 'a * captured
val absorb : captured -> unit
