(* Chrome trace-event JSON from the aggregated span tree, openable in
   Perfetto / chrome://tracing.

   The span tree stores merged totals (calls, total_ms), not raw begin
   and end timestamps, so the export synthesizes a plausible timeline:
   a depth-first walk places each node as one "X" (complete) event,
   children laid out sequentially from the parent's start.  A parent's
   duration is stretched to max(own total, sum of children) so nesting
   is always valid, and durations below 1us are clamped up so Perfetto
   renders a visible slice.  Counter deltas ride along as event
   args. *)

let us_of_ms ms = ms *. 1000.

let span_args (i : Span.info) =
  ("calls", Jsonx.Int i.Span.i_calls)
  :: ("total_ms", Jsonx.Float i.Span.i_total_ms)
  :: ("self_ms", Jsonx.Float i.Span.i_self_ms)
  :: List.map (fun (n, v) -> (n, Jsonx.Int v)) i.Span.i_counters

let rec duration_us (i : Span.info) =
  let children = List.fold_left (fun a c -> a +. duration_us c) 0. i.Span.i_children in
  Float.max 1. (Float.max (us_of_ms i.Span.i_total_ms) children)

let to_json () =
  let events = ref [] in
  let emit ev = events := ev :: !events in
  let rec walk ts (i : Span.info) =
    let dur = duration_us i in
    emit
      (Jsonx.Obj
         [
           ("name", Jsonx.String i.Span.i_name);
           ("ph", Jsonx.String "X");
           ("cat", Jsonx.String "span");
           ("ts", Jsonx.Float ts);
           ("dur", Jsonx.Float dur);
           ("pid", Jsonx.Int 1);
           ("tid", Jsonx.Int 1);
           ("args", Jsonx.Obj (span_args i));
         ]);
    let child_ts = ref ts in
    List.iter
      (fun c ->
        walk !child_ts c;
        child_ts := !child_ts +. duration_us c)
      i.Span.i_children
  in
  let ts = ref 0. in
  List.iter
    (fun root ->
      walk !ts root;
      ts := !ts +. duration_us root)
    (Span.tree ());
  let meta =
    Jsonx.Obj
      [
        ("name", Jsonx.String "process_name");
        ("ph", Jsonx.String "M");
        ("pid", Jsonx.Int 1);
        ("tid", Jsonx.Int 1);
        ( "args",
          Jsonx.Obj [ ("name", Jsonx.String "beatbgp") ] );
      ]
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.Arr (meta :: List.rev !events));
      ("displayTimeUnit", Jsonx.String "ms");
    ]

let to_string () = Jsonx.to_string (to_json ())
let write path = Report.write_text path (to_string () ^ "\n")
