type t = { id : int; asid : int; city : int; weight : float }

let pp fmt t =
  Format.fprintf fmt "pfx%d(AS%d@%d w=%.4f)" t.id t.asid t.city t.weight
