(** Client prefixes: the unit of routing and measurement aggregation.

    A prefix belongs to an access AS (eyeball or stub), is anchored at
    one of that AS's metros, and carries a share of global traffic.
    The prefix id doubles as the id of its last-mile congestion
    segment. *)

type t = {
  id : int;
  asid : int;  (** Access AS hosting the prefix. *)
  city : int;  (** Metro where its users are. *)
  weight : float;  (** Share of total traffic volume; population
                       weights sum to 1 over a generated set. *)
}

val pp : Format.formatter -> t -> unit
