(** Client-population generation.

    Prefixes are spread over eyeball and stub ASes; each prefix sits
    in one of its AS's metros, and traffic weights combine the metro's
    population with a Zipf popularity factor, reproducing the paper's
    heavy skew ("half of all traffic within 500 km of a PoP" emerges
    from population-dense metros hosting both PoPs and clients). *)

val generate :
  Netsim_topo.Topology.t ->
  rng:Netsim_prng.Splitmix.t ->
  n_prefixes:int ->
  Prefix.t array
(** Weights are normalized to sum to 1.
    @raise Invalid_argument if the topology has no eyeball or stub
    ASes or [n_prefixes <= 0]. *)

val total_weight : Prefix.t array -> float

val by_as : Prefix.t array -> (int, Prefix.t list) Hashtbl.t
