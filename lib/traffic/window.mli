(** Measurement windows.

    The Facebook study aggregates per 15-minute window; experiments
    iterate a horizon of simulated days at that granularity. *)

type t = { index : int; start_min : float; length_min : float }

val windows : days:float -> length_min:float -> t list
(** All windows covering [days] simulated days. *)

val fifteen_minute : days:float -> t list

val mid_time : t -> float
(** Window midpoint in minutes — the sampling instant used for
    congestion state. *)

val count : days:float -> length_min:float -> int
