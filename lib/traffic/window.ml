type t = { index : int; start_min : float; length_min : float }

let count ~days ~length_min =
  int_of_float (Float.round (days *. 1440. /. length_min))

let windows ~days ~length_min =
  let n = count ~days ~length_min in
  List.init n (fun index ->
      { index; start_min = float_of_int index *. length_min; length_min })

let fifteen_minute ~days = windows ~days ~length_min:15.

let mid_time t = t.start_min +. (t.length_min /. 2.)
