module Sm = Netsim_prng.Splitmix
module Dist = Netsim_prng.Dist
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module World = Netsim_geo.World
module City = Netsim_geo.City

let c_prefixes = Netsim_obs.Metrics.counter "traffic.prefixes"

let generate topo ~rng ~n_prefixes =
  Netsim_obs.Span.with_ ~name:"traffic.population" @@ fun () ->
  if n_prefixes <= 0 then invalid_arg "Population.generate: n_prefixes <= 0";
  Netsim_obs.Metrics.add c_prefixes n_prefixes;
  let hosts =
    Topology.by_klass topo Asn.Eyeball @ Topology.by_klass topo Asn.Stub
  in
  if hosts = [] then
    invalid_arg "Population.generate: topology has no client ASes";
  let hosts = Array.of_list hosts in
  (* Host ASes weighted by the population of their footprints. *)
  let host_weights =
    Array.map
      (fun asid ->
        let fp = (Topology.asn topo asid).Asn.footprint in
        Array.fold_left
          (fun acc c -> acc +. World.cities.(c).City.population_m)
          0. fp)
      hosts
  in
  (* Exponent < 1 keeps the skew heavy-tailed without letting a single
     prefix dominate the weighted statistics the way it would with the
     classic s = 1.1 at a few hundred prefixes; real traffic spreads
     over millions of prefixes. *)
  let zipf = Dist.zipf_make ~n:n_prefixes ~s:0.8 in
  let prefixes =
    Array.init n_prefixes (fun id ->
        let asid = hosts.(Dist.categorical host_weights rng) in
        let fp = (Topology.asn topo asid).Asn.footprint in
        let city = fp.(Sm.next_int rng (Array.length fp)) in
        let popularity = Dist.zipf_weight zipf id in
        let weight = popularity *. World.cities.(city).City.population_m in
        { Prefix.id; asid; city; weight })
  in
  let total = Array.fold_left (fun acc p -> acc +. p.Prefix.weight) 0. prefixes in
  Array.map (fun p -> { p with Prefix.weight = p.Prefix.weight /. total }) prefixes

let total_weight prefixes =
  Array.fold_left (fun acc p -> acc +. p.Prefix.weight) 0. prefixes

let by_as prefixes =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (p : Prefix.t) ->
      let existing =
        match Hashtbl.find_opt tbl p.asid with Some l -> l | None -> []
      in
      Hashtbl.replace tbl p.asid (p :: existing))
    prefixes;
  tbl
