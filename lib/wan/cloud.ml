module World = Netsim_geo.World
module City = Netsim_geo.City
module Deployment = Netsim_cdn.Deployment

type t = {
  deployment : Deployment.t;
  dc_metro : int;
  edge_metros : int list;
}

let dc_city_name = "Kansas City"

let default_edge_names =
  [
    "Kansas City"; "New York"; "San Francisco"; "Seattle"; "Dallas";
    "Miami"; "Toronto"; "Mexico City"; "Sao Paulo"; "Buenos Aires";
    "Santiago"; "Bogota"; "London"; "Frankfurt"; "Amsterdam"; "Paris";
    "Madrid"; "Milan"; "Warsaw"; "Stockholm"; "Tokyo"; "Osaka"; "Seoul";
    "Hong Kong"; "Taipei"; "Singapore"; "Jakarta"; "Mumbai"; "Delhi";
    "Dubai"; "Tel Aviv"; "Sydney"; "Melbourne"; "Auckland";
    "Johannesburg"; "Lagos";
  ]

let deploy base ~rng ?edge_metros ?(peer_fraction = 1.0) () =
  let dc_metro = (World.find_exn dc_city_name).City.id in
  let edge_metros =
    match edge_metros with
    | Some l -> List.sort_uniq compare (dc_metro :: l)
    | None ->
        List.map (fun n -> (World.find_exn n).City.id) default_edge_names
        |> List.sort_uniq compare
  in
  let spec =
    {
      (Deployment.default_spec ~name:"CLOUD" ~pop_metros:edge_metros) with
      Deployment.klass = Netsim_topo.Asn.Cloud;
      pni_prob = 0.8;
      public_peer_prob = 0.4;
      peer_fraction;
      transit_count = 3;
      transit_session_metros = 8;
    }
  in
  let deployment = Deployment.deploy base ~rng spec in
  { deployment; dc_metro; edge_metros }

let topo t = t.deployment.Deployment.topo
let asid t = t.deployment.Deployment.asid
