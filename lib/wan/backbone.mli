(** Explicit cable-level backbone of the cloud WAN.

    Great-circle distance is direction-agnostic, but real WANs are
    constrained by where cables run: in 2019 Google's WAN reached
    India via East Asia and the Pacific, while public Tier-1 routes
    ran west via Europe — the cause of the paper's India anomaly
    (§3.3.2).  This module models the WAN as a hand-curated segment
    graph over the edge metros; carriage distance between two PoPs is
    the shortest path over segments, not the geodesic. *)

type t

val default : unit -> t
(** The built-in 2019-shaped backbone over {!Cloud.deploy}'s default
    edge set.  Notably, India connects only eastward (to Singapore and
    Dubai, Dubai only eastward as well). *)

val of_segments : (string * string) list -> t
(** Build from metro-name pairs; segment length is the geodesic
    between its endpoints.  @raise Not_found for unknown metro names. *)

val nodes : t -> int list

val distance_km : t -> int -> int -> float
(** Shortest cable-path distance between two metros.  Metros that are
    not backbone nodes are attached to their nearest node (plus the
    geodesic to it); [infinity] if disconnected. *)

val carry_rtt_ms : t -> Netsim_latency.Params.t -> int -> int -> float
(** WAN carriage RTT between two metros: cable distance converted to
    RTT and inflated by the content/cloud factor. *)
