module World = Netsim_geo.World
module City = Netsim_geo.City
module Coord = Netsim_geo.Coord

type t = {
  nodes : int array;  (** Metro ids, sorted. *)
  index : (int, int) Hashtbl.t;  (** Metro id → node index. *)
  dist : float array array;  (** All-pairs shortest cable distance. *)
}

let default_segments =
  [
    (* North America *)
    ("Kansas City", "New York"); ("Kansas City", "Dallas");
    ("Kansas City", "San Francisco"); ("Kansas City", "Seattle");
    ("Kansas City", "Toronto"); ("Kansas City", "Miami");
    ("New York", "Toronto"); ("New York", "Miami");
    ("San Francisco", "Seattle"); ("Dallas", "Miami");
    ("Dallas", "Mexico City");
    (* Transatlantic *)
    ("New York", "London"); ("New York", "Amsterdam"); ("Miami", "Madrid");
    (* Europe *)
    ("London", "Amsterdam"); ("London", "Paris"); ("Amsterdam", "Frankfurt");
    ("Paris", "Madrid"); ("Frankfurt", "Milan"); ("Frankfurt", "Warsaw");
    ("Frankfurt", "Stockholm"); ("Madrid", "Milan"); ("Milan", "Tel Aviv");
    (* Middle East / South Asia: eastward connectivity only. *)
    ("Dubai", "Mumbai"); ("Dubai", "Singapore"); ("Mumbai", "Delhi");
    ("Mumbai", "Singapore");
    (* East and Southeast Asia *)
    ("Singapore", "Jakarta"); ("Singapore", "Hong Kong");
    ("Hong Kong", "Taipei"); ("Hong Kong", "Tokyo"); ("Taipei", "Tokyo");
    ("Tokyo", "Osaka"); ("Tokyo", "Seoul");
    (* Transpacific *)
    ("Tokyo", "Seattle"); ("Tokyo", "San Francisco");
    ("Sydney", "San Francisco");
    (* Oceania *)
    ("Sydney", "Melbourne"); ("Sydney", "Auckland"); ("Sydney", "Singapore");
    (* South America *)
    ("Miami", "Bogota"); ("Miami", "Sao Paulo");
    ("Sao Paulo", "Buenos Aires"); ("Buenos Aires", "Santiago");
    ("Bogota", "Santiago");
    (* Africa *)
    ("London", "Lagos"); ("Lagos", "Johannesburg");
  ]

let of_segments named =
  let segments =
    List.map
      (fun (a, b) ->
        ((World.find_exn a).City.id, (World.find_exn b).City.id))
      named
  in
  let module S = Set.Make (Int) in
  let node_set =
    List.fold_left (fun s (a, b) -> S.add a (S.add b s)) S.empty segments
  in
  let nodes = Array.of_list (S.elements node_set) in
  let index = Hashtbl.create 64 in
  Array.iteri (fun i m -> Hashtbl.replace index m i) nodes;
  let n = Array.length nodes in
  let dist = Array.make_matrix n n infinity in
  for i = 0 to n - 1 do
    dist.(i).(i) <- 0.
  done;
  List.iter
    (fun (a, b) ->
      let i = Hashtbl.find index a and j = Hashtbl.find index b in
      let d = City.distance_km World.cities.(a) World.cities.(b) in
      if d < dist.(i).(j) then begin
        dist.(i).(j) <- d;
        dist.(j).(i) <- d
      end)
    segments;
  (* Floyd–Warshall; the graph has a few dozen nodes. *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = dist.(i).(k) +. dist.(k).(j) in
        if via < dist.(i).(j) then dist.(i).(j) <- via
      done
    done
  done;
  { nodes; index; dist }

let default () = of_segments default_segments

let nodes t = Array.to_list t.nodes

let nearest_node t metro =
  let c = World.cities.(metro) in
  let best = ref t.nodes.(0) and best_d = ref infinity in
  Array.iter
    (fun m ->
      let d = City.distance_km c World.cities.(m) in
      if d < !best_d then begin
        best_d := d;
        best := m
      end)
    t.nodes;
  (!best, !best_d)

let distance_km t a b =
  let resolve m =
    match Hashtbl.find_opt t.index m with
    | Some i -> (i, 0.)
    | None ->
        let node, d = nearest_node t m in
        (Hashtbl.find t.index node, d)
  in
  let ia, da = resolve a and ib, db = resolve b in
  da +. t.dist.(ia).(ib) +. db

let carry_rtt_ms t (params : Netsim_latency.Params.t) a b =
  Coord.rtt_ms_of_km (distance_km t a b)
  *. params.Netsim_latency.Params.inflation_content
