module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache
module Announce = Netsim_bgp.Announce
module Walk = Netsim_bgp.Walk
module Rtt = Netsim_latency.Rtt
module Propagation = Netsim_latency.Propagation
module Congestion = Netsim_latency.Congestion
module Vantage = Netsim_measure.Vantage
module Campaign = Netsim_measure.Campaign

type t = {
  cloud : Cloud.t;
  params : Netsim_latency.Params.t;
  backbone : Backbone.t;
  premium : Propagate.state;
  standard : Propagate.state;
}

let make cloud ~params =
  let topo = Cloud.topo cloud in
  let asid = Cloud.asid cloud in
  let premium = Rib_cache.run topo (Announce.default ~origin:asid) in
  let standard =
    Rib_cache.run topo
      (Announce.only_at_metros ~origin:asid [ cloud.Cloud.dc_metro ])
  in
  { cloud; params; backbone = Backbone.default (); premium; standard }

let cloud t = t.cloud
let backbone t = t.backbone

let walk_of state (vp : Vantage.t) =
  Walk.from_metro state ~src:vp.Vantage.asid ~start_metro:vp.Vantage.city

(* The VP's last-mile segment is keyed by a synthetic access id derived
   from its identity so that both tiers share the same access fate. *)
let access_entity (vp : Vantage.t) =
  Congestion.Access (1_000_000 + (vp.Vantage.asid * 1000) + vp.Vantage.city)

let premium_flow t vp =
  match walk_of t.premium vp with
  | None -> None
  | Some walk ->
      let entry = Walk.entry_metro walk in
      let wan_carry =
        Backbone.carry_rtt_ms t.backbone t.params entry t.cloud.Cloud.dc_metro
      in
      Some
        (Rtt.make_flow ~access:(access_entity vp) ~extra_ms:wan_carry
           ~terminal:Propagation.At_entry walk)

let standard_flow t vp =
  match walk_of t.standard vp with
  | None -> None
  | Some walk ->
      (* Entry is at the DC metro (the only announcing site); any
         residual carry to the DC city is intra-cloud and ~0. *)
      Some
        (Rtt.make_flow ~access:(access_entity vp)
           ~terminal:(Propagation.To_city t.cloud.Cloud.dc_metro)
           walk)

let trace_of state (vp : Vantage.t) =
  match walk_of state vp with
  | None -> None
  | Some walk -> Some (Campaign.traceroute ~start_city:vp.Vantage.city walk)

let premium_trace t vp = trace_of t.premium vp
let standard_trace t vp = trace_of t.standard vp

let qualifies t vp =
  match (walk_of t.premium vp, walk_of t.standard vp) with
  | Some pw, Some sw ->
      (* Premium: the VP's AS hands traffic straight to the cloud
         (a single hop: the VP AS itself).  Standard: at least one
         intermediate AS between the VP's AS and the cloud. *)
      List.length pw.Walk.hops = 1 && List.length sw.Walk.hops >= 2
  | _, _ -> false
