(** Premium vs Standard networking tiers (§2.3.3, Figure 5).

    Premium: the cloud prefix is announced from every WAN edge PoP;
    traffic enters the WAN near the client and rides the backbone to
    the data center.  Standard: the prefix is announced only at the
    data-center metro; the public Internet (BGP) carries traffic the
    whole way.  Both configurations share the same physical
    deployment, so the comparison isolates routing. *)

type t

val make : Cloud.t -> params:Netsim_latency.Params.t -> t
(** Runs the two propagations and prepares the backbone metric. *)

val cloud : t -> Cloud.t
val backbone : t -> Backbone.t

val premium_flow : t -> Netsim_measure.Vantage.t -> Netsim_latency.Rtt.flow option
(** VP-to-DC flow on the Premium tier: walk to the nearest announcing
    edge, then WAN carriage to the DC over the cable graph. *)

val standard_flow : t -> Netsim_measure.Vantage.t -> Netsim_latency.Rtt.flow option
(** VP-to-DC flow on the Standard tier (public Internet to the DC
    metro). *)

val premium_trace : t -> Netsim_measure.Vantage.t -> Netsim_measure.Campaign.trace option
val standard_trace : t -> Netsim_measure.Vantage.t -> Netsim_measure.Campaign.trace option

val qualifies : t -> Netsim_measure.Vantage.t -> bool
(** The paper's VP filter: the Premium route enters the cloud directly
    from the VP's AS, while the Standard route crosses at least one
    intermediate AS. *)
