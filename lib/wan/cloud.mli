(** A cloud provider with a private WAN (the Google-like setting,
    §2.3.3).

    The provider has one or more data-center metros plus a worldwide
    set of WAN edge PoPs.  Its AS class is [Cloud], whose low
    intra-AS inflation models the well-engineered backbone. *)

type t = {
  deployment : Netsim_cdn.Deployment.t;
  dc_metro : int;  (** The data-center metro the experiments target
                       ("US Central"). *)
  edge_metros : int list;  (** WAN edge PoPs (includes the DC metro). *)
}

val dc_city_name : string
(** "Kansas City" — the stand-in for the US-Central region. *)

val deploy :
  Netsim_topo.Topology.t ->
  rng:Netsim_prng.Splitmix.t ->
  ?edge_metros:int list ->
  ?peer_fraction:float ->
  unit ->
  t
(** Graft the cloud AS with PNIs at all its edge PoPs.  The default
    edge set covers major metros on every continent. *)

val topo : t -> Netsim_topo.Topology.t
val asid : t -> int
