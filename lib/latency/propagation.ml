module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Walk = Netsim_bgp.Walk
module World = Netsim_geo.World
module City = Netsim_geo.City

type terminal = At_entry | To_city of int

let inflation (p : Params.t) = function
  | Asn.Tier1 -> p.inflation_tier1
  | Asn.Transit -> p.inflation_transit
  | Asn.Eyeball -> p.inflation_eyeball
  | Asn.Stub -> p.inflation_stub
  | Asn.Content | Asn.Cloud -> p.inflation_content

let metro_rtt a b = City.rtt_ms World.cities.(a) World.cities.(b)

let intra_as_ms p topo ~asid ~from_metro ~to_metro =
  let klass = (Topology.asn topo asid).Asn.klass in
  metro_rtt from_metro to_metro *. inflation p klass

let walk_rtt_ms p topo (walk : Walk.t) ~terminal =
  let carry =
    List.fold_left
      (fun acc (h : Walk.hop) ->
        acc
        +. intra_as_ms p topo ~asid:h.Walk.asid ~from_metro:h.Walk.ingress
             ~to_metro:h.Walk.egress
        +. p.hop_penalty_ms)
      0. walk.Walk.hops
  in
  match terminal with
  | At_entry -> carry
  | To_city city ->
      let entry = Walk.entry_metro walk in
      let dest_as =
        (* The destination AS is the prefix origin: the far endpoint of
           the last link. *)
        match List.rev walk.Walk.hops with
        | last :: _ -> Netsim_topo.Relation.other last.Walk.link last.Walk.asid
        | [] -> invalid_arg "Propagation.walk_rtt_ms: empty walk"
      in
      carry +. intra_as_ms p topo ~asid:dest_as ~from_metro:entry ~to_metro:city
