module Walk = Netsim_bgp.Walk
module Relation = Netsim_topo.Relation

let loss_floor = 1e-5

let link_loss_rate cong ~link_id ~time_min =
  let u = Congestion.utilization cong ~link_id ~time_min in
  (* Queue-fill drops: negligible until a link approaches saturation
     (modern routers buffer well below ~90 % utilization). *)
  loss_floor +. (0.02 *. (u ** 12.))

let path_loss_rate cong walk ~time_min =
  let survive =
    List.fold_left
      (fun acc (h : Walk.hop) ->
        acc
        *. (1.
           -. link_loss_rate cong ~link_id:h.Walk.link.Relation.id ~time_min))
      1. walk.Walk.hops
  in
  1. -. survive

let mathis_mbps ~mss_bytes ~rtt_ms ~loss =
  let loss = Float.max loss_floor loss in
  let rtt_s = Float.max 1e-4 (rtt_ms /. 1000.) in
  (* Mathis et al.: rate = (MSS / RTT) * (C / sqrt(p)), C ~ 1.22. *)
  float_of_int (mss_bytes * 8) /. rtt_s *. (1.22 /. sqrt loss) /. 1e6

let bottleneck_fair_share_mbps cong walk ~time_min =
  List.fold_left
    (fun acc (h : Walk.hop) ->
      let link = h.Walk.link in
      let u = Congestion.utilization cong ~link_id:link.Relation.id ~time_min in
      let headroom_gbps = link.Relation.capacity_gbps *. (1. -. u) in
      Float.min acc (headroom_gbps *. 1000.))
    infinity walk.Walk.hops

let flow_goodput_mbps cong ~rng ?(rtt_samples = 7) ~time_min (flow : Rtt.flow) =
  let rtt_ms =
    Rtt.median_of_samples cong ~rng ~time_min ~count:rtt_samples flow
  in
  let loss = path_loss_rate cong flow.Rtt.walk ~time_min in
  let mathis = mathis_mbps ~mss_bytes:1460 ~rtt_ms ~loss in
  let access_cap =
    match flow.Rtt.access with
    | Some (Congestion.Access id) -> Congestion.access_rate_mbps cong id
    | Some (Congestion.Link _ | Congestion.Dest_net _) | None -> infinity
  in
  Float.min access_cap
    (Float.min mathis (bottleneck_fair_share_mbps cong flow.Rtt.walk ~time_min))
