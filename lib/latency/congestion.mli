(** Time-varying congestion state.

    Three kinds of congestible entities:

    - [Link l]: an individual inter-AS link — congestion here is what
      performance-aware routing can route around;
    - [Access a]: a client prefix's last-mile segment — shared by
      {e every} route option to that client;
    - [Dest_net d]: the destination network's internal segment — also
      shared across options.

    The split between shared and per-link congestion is the mechanism
    behind the paper's §3.1.1 "all options degrade together"
    observation, and is fully parameterized so ablations can move the
    mix.  Episodes and per-entity draws are deterministic functions of
    (seed, entity, day); no hidden mutable randomness. *)

type entity = Link of int | Access of int | Dest_net of int

type t

val create : Params.t -> Netsim_topo.Topology.t -> seed:int -> t

val params : t -> Params.t
val topology : t -> Netsim_topo.Topology.t

val set_offered_load : t -> link_id:int -> gbps:float -> unit
(** Override a link's utilization to [load / capacity] (used by the
    peering-ablation experiment, where withdrawing peers concentrates
    traffic on fewer links). *)

val clear_offered_loads : t -> unit

(** {1 Timeline-driven congestion}

    The dynamics engine overlays event-driven extra delay on top of
    the derived diurnal/episode model: a congestion-onset event adds
    delay to a link, the matching decay removes it.  Deltas are
    additive so overlapping episodes compose; a decay never drives the
    overlay negative. *)

val add_event_delay_ms : t -> link_id:int -> ms:float -> unit
val remove_event_delay_ms : t -> link_id:int -> ms:float -> unit

val event_delay_ms : t -> link_id:int -> float
(** Current overlay on a link (0 when no event is in force). *)

val clear_event_delays : t -> unit
(** Reset the overlay on every link (used between timeline runs that
    share one congestion state). *)

val utilization : t -> link_id:int -> time_min:float -> float
(** Current utilization in [0, 0.97], including the diurnal cycle at
    the link's metro. *)

val queue_delay_ms : t -> link_id:int -> time_min:float -> float
(** Utilization-driven queueing delay on a link. *)

val episode_delay_ms : t -> entity -> time_min:float -> float
(** Added delay if the entity is inside a congestion episode at this
    time, else 0. *)

val access_base_ms : t -> int -> float
(** Per-access-segment last-mile base delay (stable per prefix). *)

val access_rate_mbps : t -> int -> float
(** Per-access-segment last-mile capacity in Mbit/s (stable per
    prefix, lognormal around ~120 Mbit/s).  The access link is the
    bandwidth bottleneck shared by every route option to the client —
    the reason the paper's throughput comparison looks like its
    latency comparison. *)

val entity_delay_ms : t -> entity -> time_min:float -> float
(** Total stochastic delay of an entity at a time: queueing (links
    only) plus episode delay. *)

val diurnal_factor : t -> metro:int -> time_min:float -> float
(** Local-time load multiplier, mean 1, peaking in the local evening. *)
