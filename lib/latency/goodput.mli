(** TCP goodput model on top of the latency substrate.

    The paper reports (§3.1 and footnote 3) that its latency findings
    hold qualitatively for bandwidth/goodput.  This module makes that
    checkable: per-link loss grows with utilization, path loss
    compounds, and steady-state TCP throughput follows the Mathis
    model [MSS / (RTT · sqrt(p))], capped by the bottleneck link's
    fair share. *)

val link_loss_rate : Congestion.t -> link_id:int -> time_min:float -> float
(** Loss probability on one link: a small floor plus a sharply
    super-linear term in utilization (drops appear as queues fill). *)

val path_loss_rate :
  Congestion.t -> Netsim_bgp.Walk.t -> time_min:float -> float
(** Compound loss over the walk's links: [1 - prod (1 - p_i)]. *)

val mathis_mbps : mss_bytes:int -> rtt_ms:float -> loss:float -> float
(** Steady-state TCP throughput estimate in Mbit/s.  Loss is clamped
    to a floor of 1e-6 so the model stays finite on clean paths. *)

val bottleneck_fair_share_mbps :
  Congestion.t -> Netsim_bgp.Walk.t -> time_min:float -> float
(** The walk's smallest per-link headroom,
    [capacity · (1 - utilization)], in Mbit/s. *)

val flow_goodput_mbps :
  Congestion.t ->
  rng:Netsim_prng.Splitmix.t ->
  ?rtt_samples:int ->
  time_min:float ->
  Rtt.flow ->
  float
(** Goodput of a flow in a window: Mathis on the median of
    [rtt_samples] MinRTT observations (default 7) and the path loss,
    capped by the bottleneck fair share. *)
