(** Latency-model parameters.

    Every knob of the RTT model lives here so experiments and
    ablations can vary them explicitly.  Defaults are chosen to match
    published path-inflation and access-delay measurements in shape:
    intra-AS distances are inflated over the geodesic, access links
    add a few milliseconds, and queueing grows super-linearly with
    utilization. *)

type t = {
  (* Path inflation over the great-circle RTT, per AS class. *)
  inflation_tier1 : float;
  inflation_transit : float;
  inflation_eyeball : float;
  inflation_stub : float;
  inflation_content : float;  (** Content/cloud private WANs are the
                                  best engineered. *)
  hop_penalty_ms : float;  (** Per inter-AS hop (router + fabric). *)
  access_base_ms : float;  (** Median last-mile delay. *)
  access_spread : float;  (** Lognormal sigma of per-prefix last-mile
                              base delay. *)
  (* Utilization-driven queueing. *)
  queue_scale_ms : float;  (** Delay scale as utilization approaches 1. *)
  base_util_lo : float;
  base_util_hi : float;  (** Per-link base utilization is uniform in
                             [lo, hi]. *)
  chronic_link_prob : float;
      (** Probability that a link is chronically under-provisioned
          (base utilization drawn from [chronic_util_lo, chronic_util_hi]
          instead).  Chronic links create the {e persistently}
          better alternates of §3.1.1. *)
  chronic_util_lo : float;
  chronic_util_hi : float;
  diurnal_amplitude : float;  (** Relative swing of the daily load curve. *)
  (* Congestion episodes. *)
  access_episode_per_day : float;
      (** Probability that a given access/destination segment has a
          congestion episode on a given day — the {e shared} fate of
          all route options to that client (§3.1.1). *)
  transit_episode_per_day : float;
      (** Probability for an individual transit/peering link — what
          performance-aware routing can route around. *)
  episode_mean_minutes : float;
  episode_severity_ms : float;  (** Median added delay during an episode. *)
  episode_severity_sigma : float;
  (* Measurement noise. *)
  minrtt_jitter_sigma : float;
      (** Lognormal sigma applied multiplicatively to sampled MinRTT. *)
}

val default : t

val congestion_free : t
(** No episodes, no queueing, no jitter — pure geometry, used by unit
    tests that check propagation arithmetic. *)
