(** End-to-end MinRTT samples for flow walks.

    Combines the deterministic propagation floor with the stochastic
    congestion components and a small multiplicative jitter modelling
    what TCP's MinRTT estimator sees over a session. *)

type flow = {
  walk : Netsim_bgp.Walk.t;
  terminal : Propagation.terminal;
  access : Congestion.entity option;
      (** Client last-mile segment, if the flow has one. *)
  dest_net : Congestion.entity option;
      (** Destination network segment shared by all routes. *)
  extra_ms : float;
      (** Deterministic extra RTT beyond the walk — e.g. carriage on a
          private WAN whose cable graph differs from the geodesic. *)
}

val make_flow :
  ?access:Congestion.entity ->
  ?dest_net:Congestion.entity ->
  ?extra_ms:float ->
  terminal:Propagation.terminal ->
  Netsim_bgp.Walk.t ->
  flow

val floor_ms :
  Params.t -> Netsim_topo.Topology.t -> Congestion.t -> flow -> float
(** Propagation + stable per-prefix access base; no time-varying or
    random components.  The congestion state supplies the per-access
    base draw. *)

val sample_ms :
  Congestion.t ->
  rng:Netsim_prng.Splitmix.t ->
  time_min:float ->
  flow ->
  float
(** One MinRTT observation at a point in time: floor + per-link
    queueing and episodes + shared access/destination episodes +
    jitter. *)

val median_of_samples :
  Congestion.t ->
  rng:Netsim_prng.Splitmix.t ->
  time_min:float ->
  count:int ->
  flow ->
  float
(** Median of [count] samples in the same window (jitter varies;
    congestion state is that of [time_min]). *)
