type t = {
  inflation_tier1 : float;
  inflation_transit : float;
  inflation_eyeball : float;
  inflation_stub : float;
  inflation_content : float;
  hop_penalty_ms : float;
  access_base_ms : float;
  access_spread : float;
  queue_scale_ms : float;
  base_util_lo : float;
  base_util_hi : float;
  chronic_link_prob : float;
  chronic_util_lo : float;
  chronic_util_hi : float;
  diurnal_amplitude : float;
  access_episode_per_day : float;
  transit_episode_per_day : float;
  episode_mean_minutes : float;
  episode_severity_ms : float;
  episode_severity_sigma : float;
  minrtt_jitter_sigma : float;
}

let default =
  {
    inflation_tier1 = 1.2;
    inflation_transit = 1.45;
    inflation_eyeball = 1.85;
    inflation_stub = 1.9;
    inflation_content = 1.1;
    hop_penalty_ms = 0.35;
    access_base_ms = 4.0;
    access_spread = 0.45;
    queue_scale_ms = 1.8;
    base_util_lo = 0.25;
    base_util_hi = 0.65;
    chronic_link_prob = 0.07;
    chronic_util_lo = 0.83;
    chronic_util_hi = 0.92;
    diurnal_amplitude = 0.35;
    access_episode_per_day = 0.8;
    transit_episode_per_day = 0.25;
    episode_mean_minutes = 60.;
    episode_severity_ms = 12.;
    episode_severity_sigma = 0.8;
    minrtt_jitter_sigma = 0.03;
  }

let congestion_free =
  {
    default with
    queue_scale_ms = 0.;
    chronic_link_prob = 0.;
    access_episode_per_day = 0.;
    transit_episode_per_day = 0.;
    minrtt_jitter_sigma = 0.;
    access_base_ms = 0.;
    access_spread = 0.;
  }
