module Dist = Netsim_prng.Dist
module Walk = Netsim_bgp.Walk

type flow = {
  walk : Walk.t;
  terminal : Propagation.terminal;
  access : Congestion.entity option;
  dest_net : Congestion.entity option;
  extra_ms : float;
}

let make_flow ?access ?dest_net ?(extra_ms = 0.) ~terminal walk =
  { walk; terminal; access; dest_net; extra_ms }

let floor_ms params topo cong flow =
  let propagation =
    Propagation.walk_rtt_ms params topo flow.walk ~terminal:flow.terminal
  in
  let access =
    match flow.access with
    | Some (Congestion.Access id) -> Congestion.access_base_ms cong id
    | Some (Congestion.Link _ | Congestion.Dest_net _) | None -> 0.
  in
  propagation +. access +. flow.extra_ms

let congestion_ms cong ~time_min flow =
  let links =
    List.fold_left
      (fun acc (h : Walk.hop) ->
        acc
        +. Congestion.entity_delay_ms cong
             (Congestion.Link h.Walk.link.Netsim_topo.Relation.id)
             ~time_min)
      0. flow.walk.Walk.hops
  in
  let shared entity =
    match entity with
    | Some e -> Congestion.entity_delay_ms cong e ~time_min
    | None -> 0.
  in
  links +. shared flow.access +. shared flow.dest_net

let c_samples = Netsim_obs.Metrics.counter "latency.rtt.samples"
let h_rtt = Netsim_obs.Metrics.histogram "latency.rtt.ms"

(* [tracing] is hoisted out of the sampling loops (the convention of
   [Propagate.run]): one [Metrics.enabled] read per call, a single
   immutable local guarding the record sites inside the loop. *)
let sample_traced cong ~tracing ~rng ~time_min flow =
  let params = Congestion.params cong in
  let topo = Congestion.topology cong in
  let base = floor_ms params topo cong flow in
  let congested = congestion_ms cong ~time_min flow in
  let sigma = params.Params.minrtt_jitter_sigma in
  let jitter = if sigma <= 0. then 1. else Dist.lognormal rng ~mu:0. ~sigma in
  let v = (base +. congested) *. jitter in
  if tracing then begin
    Netsim_obs.Metrics.incr c_samples;
    Netsim_obs.Metrics.observe h_rtt v
  end;
  v

let sample_ms cong ~rng ~time_min flow =
  let tracing = Netsim_obs.Metrics.enabled () in
  sample_traced cong ~tracing ~rng ~time_min flow

let median_of_samples cong ~rng ~time_min ~count flow =
  let tracing = Netsim_obs.Metrics.enabled () in
  let samples =
    Array.init count (fun _ -> sample_traced cong ~tracing ~rng ~time_min flow)
  in
  Netsim_stats.Quantile.median samples
