(** Deterministic propagation latency of a flow walk.

    This is the congestion-free floor of the RTT: great-circle
    distances inflated per AS class, plus per-hop penalties.  The
    stochastic components live in {!Congestion} and {!Rtt}. *)

(** What happens after the flow enters the destination AS. *)
type terminal =
  | At_entry  (** The server sits at the entry metro (a PoP). *)
  | To_city of int  (** Carry on inside the destination AS to a city
                        (the client's metro), adding intra-AS carry. *)

val inflation : Params.t -> Netsim_topo.Asn.klass -> float

val intra_as_ms :
  Params.t -> Netsim_topo.Topology.t -> asid:int -> from_metro:int -> to_metro:int -> float
(** Inflated great-circle RTT between two metros inside one AS. *)

val walk_rtt_ms :
  Params.t ->
  Netsim_topo.Topology.t ->
  Netsim_bgp.Walk.t ->
  terminal:terminal ->
  float
(** Propagation RTT of the walk: per-AS intra-carry + per-hop penalty
    + terminal carry.  Excludes last-mile access delay (see {!Rtt}). *)
