module Sm = Netsim_prng.Splitmix
module Dist = Netsim_prng.Dist
module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module World = Netsim_geo.World
module City = Netsim_geo.City

type entity = Link of int | Access of int | Dest_net of int

type t = {
  params : Params.t;
  topo : Topology.t;
  root : Sm.t;  (** Never advanced; only used to derive labeled substreams. *)
  base_util : float array;
  chronic : bool array;
      (** Chronically saturated links are demand-bound all day: their
          utilization ignores the diurnal swing. *)
  offered_load : float option array;
  event_extra : float array;
      (** Timeline-driven extra delay per link (ms), maintained by the
          dynamics engine's congestion onset/decay events.  Additive so
          overlapping episodes compose. *)
  access_base : (int, float) Hashtbl.t;
}

let create params topo ~seed =
  let root = Sm.create seed in
  let util_rng = Sm.of_label root "base-util" in
  let n_links = Topology.link_count topo in
  let chronic = Array.make n_links false in
  let links = Topology.links topo in
  let base_util =
    Array.init n_links (fun i ->
        (* Chronic saturation happens on peering links: PNIs have
           dedicated but finite capacity (the situation Edge Fabric
           was built for), whereas transit is upgraded on demand.  A
           chronic transit session would synchronize whole PoPs, which
           is not what the measurements show. *)
        let peering = Relation.is_peering links.(i).Relation.kind in
        if
          peering
          && Dist.bernoulli util_rng ~p:params.Params.chronic_link_prob
        then begin
          chronic.(i) <- true;
          Dist.uniform util_rng ~lo:params.Params.chronic_util_lo
            ~hi:params.Params.chronic_util_hi
        end
        else
          Dist.uniform util_rng ~lo:params.Params.base_util_lo
            ~hi:params.Params.base_util_hi)
  in
  {
    params;
    topo;
    root;
    base_util;
    chronic;
    offered_load = Array.make n_links None;
    event_extra = Array.make n_links 0.;
    access_base = Hashtbl.create 256;
  }

let params t = t.params
let topology t = t.topo

let set_offered_load t ~link_id ~gbps = t.offered_load.(link_id) <- Some gbps

let clear_offered_loads t =
  Array.fill t.offered_load 0 (Array.length t.offered_load) None

let add_event_delay_ms t ~link_id ~ms =
  t.event_extra.(link_id) <- t.event_extra.(link_id) +. ms

let remove_event_delay_ms t ~link_id ~ms =
  t.event_extra.(link_id) <- Float.max 0. (t.event_extra.(link_id) -. ms)

let event_delay_ms t ~link_id = t.event_extra.(link_id)

let clear_event_delays t =
  Array.fill t.event_extra 0 (Array.length t.event_extra) 0.

let minutes_per_day = 1440.

let diurnal_factor t ~metro ~time_min =
  let lon = World.cities.(metro).City.coord.Netsim_geo.Coord.lon in
  let utc_hour = Float.rem (time_min /. 60.) 24. in
  let local_hour = Float.rem (utc_hour +. (lon /. 15.) +. 48.) 24. in
  (* Load peaks in the local evening (20:00). *)
  1.
  +. t.params.Params.diurnal_amplitude
     *. cos (2. *. Float.pi *. (local_hour -. 20.) /. 24.)

let utilization t ~link_id ~time_min =
  let link = (Topology.links t.topo).(link_id) in
  let base =
    match t.offered_load.(link_id) with
    | Some gbps -> gbps /. link.Relation.capacity_gbps
    | None -> t.base_util.(link_id)
  in
  let u =
    if t.chronic.(link_id) && t.offered_load.(link_id) = None then base
    else base *. diurnal_factor t ~metro:link.Relation.metro ~time_min
  in
  Float.max 0. (Float.min 0.97 u)

let queue_delay_ms t ~link_id ~time_min =
  let u = utilization t ~link_id ~time_min in
  t.params.Params.queue_scale_ms *. (u ** 4.) /. (1. -. u)

let entity_key = function
  | Link i -> Printf.sprintf "link-%d" i
  | Access i -> Printf.sprintf "access-%d" i
  | Dest_net i -> Printf.sprintf "destnet-%d" i

let episode_probability t = function
  | Link _ -> t.params.Params.transit_episode_per_day
  | Access _ | Dest_net _ -> t.params.Params.access_episode_per_day

(* Episodes are re-derived (not cached) from (entity, day): with some
   probability the entity has one episode that day, with a random
   start, exponential duration and lognormal severity. *)
let episode_delay_ms t entity ~time_min =
  let p = episode_probability t entity in
  if p <= 0. then 0.
  else begin
    let day = int_of_float (floor (time_min /. minutes_per_day)) in
    let rng =
      Sm.of_label t.root (Printf.sprintf "ep-%s-%d" (entity_key entity) day)
    in
    if not (Dist.bernoulli rng ~p) then 0.
    else begin
      let start =
        (float_of_int day *. minutes_per_day)
        +. Dist.uniform rng ~lo:0. ~hi:minutes_per_day
      in
      let duration =
        Dist.exponential rng ~rate:(1. /. t.params.Params.episode_mean_minutes)
      in
      let severity =
        Dist.lognormal rng
          ~mu:(log t.params.Params.episode_severity_ms)
          ~sigma:t.params.Params.episode_severity_sigma
      in
      if time_min >= start && time_min <= start +. duration then severity
      else 0.
    end
  end

let access_base_ms t access_id =
  match Hashtbl.find_opt t.access_base access_id with
  | Some v -> v
  | None ->
      let rng = Sm.of_label t.root (Printf.sprintf "access-base-%d" access_id) in
      let v =
        if t.params.Params.access_base_ms <= 0. then 0.
        else
          Dist.lognormal rng
            ~mu:(log t.params.Params.access_base_ms)
            ~sigma:t.params.Params.access_spread
      in
      Hashtbl.replace t.access_base access_id v;
      v

let access_rate_mbps t access_id =
  let rng =
    Sm.of_label t.root (Printf.sprintf "access-rate-%d" access_id)
  in
  Dist.lognormal rng ~mu:(log 120.) ~sigma:0.6

let c_samples = Netsim_obs.Metrics.counter "latency.congestion.samples"
let c_episodes = Netsim_obs.Metrics.counter "latency.congestion.episodes"

let entity_delay_ms t entity ~time_min =
  Netsim_obs.Metrics.incr c_samples;
  let episode = episode_delay_ms t entity ~time_min in
  if episode > 0. then Netsim_obs.Metrics.incr c_episodes;
  match entity with
  | Link i -> episode +. queue_delay_ms t ~link_id:i ~time_min +. t.event_extra.(i)
  | Access _ | Dest_net _ -> episode
