(** Stochastic event scripts.

    Generators for common event mixes, all driven by explicit
    {!Netsim_prng.Splitmix} substreams so the same seed always yields
    the same script.  Times are simulated minutes from 0; [days] sets
    the horizon. *)

val flaps :
  Netsim_prng.Splitmix.t ->
  link_ids:int array ->
  mean_interval_min:float ->
  mean_down_min:float ->
  days:int ->
  (float * Event.t) list
(** Poisson arrivals of {!Event.Link_flap} on uniformly-chosen links:
    exponential inter-arrival times with the given mean, exponential
    down-times (floored at 30 s).  Empty if [link_ids] is empty. *)

val congestion_bursts :
  Netsim_prng.Splitmix.t ->
  link_ids:int array ->
  mean_interval_min:float ->
  median_extra_ms:float ->
  sigma:float ->
  mean_duration_min:float ->
  days:int ->
  (float * Event.t) list
(** Poisson arrivals of {!Event.Congestion_onset}: lognormal severity
    (median [median_extra_ms], log-space [sigma]) and exponential
    duration (floored at 1 min). *)

val measurement_ticks :
  controller:int -> period_min:float -> days:int -> (float * Event.t) list
(** Periodic {!Event.Measurement_tick}, first at [period_min].
    @raise Invalid_argument if [period_min <= 0]. *)

val schedule_all : Engine.t -> (float * Event.t) list -> unit
