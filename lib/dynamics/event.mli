(** Typed timeline events.

    Every change the network undergoes over simulated time is one of
    these.  Topology events (link/site down/up, flaps) trigger
    incremental BGP reconvergence of the engine's tracked prefixes;
    congestion events drive the {!Netsim_latency.Congestion} overlay;
    announcement events toggle a tracked prefix; measurement ticks and
    marks carry no engine semantics and exist for processes (e.g. the
    stale edge controller) to react to. *)

type t =
  | Link_down of int  (** Fail the link with this id. *)
  | Link_up of int  (** Restore a previously failed link. *)
  | Link_flap of { link_id : int; down_minutes : float }
      (** Fail the link now and schedule its repair [down_minutes]
          later. *)
  | Site_down of { asid : int; metro : int }
      (** Fail every link of [asid] at [metro] (a PoP outage). *)
  | Site_up of { asid : int; metro : int }
  | Congestion_onset of { link_id : int; extra_ms : float; duration_min : float }
      (** Add [extra_ms] of delay to the link now and schedule the
          matching decay [duration_min] later. *)
  | Congestion_decay of { link_id : int; extra_ms : float }
  | Withdraw_prefix of { origin : int }
      (** The tracked origin withdraws its announcement everywhere. *)
  | Reannounce_prefix of { origin : int }
  | Measurement_tick of { controller : int }
      (** A controller's periodic measurement instant; engine no-op. *)
  | Mark of string  (** Free-form scripting marker; engine no-op. *)

val kind : t -> string
(** Short kind tag, e.g. ["link-down"] — used for span names and
    per-kind counters. *)

val label : t -> string
(** Stable human-readable label, e.g. ["link-down:17"] or
    ["site-down:AS12@33"] — used in event logs and figures. *)
