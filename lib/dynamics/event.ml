type t =
  | Link_down of int
  | Link_up of int
  | Link_flap of { link_id : int; down_minutes : float }
  | Site_down of { asid : int; metro : int }
  | Site_up of { asid : int; metro : int }
  | Congestion_onset of { link_id : int; extra_ms : float; duration_min : float }
  | Congestion_decay of { link_id : int; extra_ms : float }
  | Withdraw_prefix of { origin : int }
  | Reannounce_prefix of { origin : int }
  | Measurement_tick of { controller : int }
  | Mark of string

let kind = function
  | Link_down _ -> "link-down"
  | Link_up _ -> "link-up"
  | Link_flap _ -> "link-flap"
  | Site_down _ -> "site-down"
  | Site_up _ -> "site-up"
  | Congestion_onset _ -> "congestion-onset"
  | Congestion_decay _ -> "congestion-decay"
  | Withdraw_prefix _ -> "withdraw"
  | Reannounce_prefix _ -> "reannounce"
  | Measurement_tick _ -> "tick"
  | Mark _ -> "mark"

let label = function
  | Link_down l -> Printf.sprintf "link-down:%d" l
  | Link_up l -> Printf.sprintf "link-up:%d" l
  | Link_flap { link_id; down_minutes } ->
      Printf.sprintf "link-flap:%d(%gm)" link_id down_minutes
  | Site_down { asid; metro } -> Printf.sprintf "site-down:AS%d@%d" asid metro
  | Site_up { asid; metro } -> Printf.sprintf "site-up:AS%d@%d" asid metro
  | Congestion_onset { link_id; extra_ms; duration_min } ->
      Printf.sprintf "congestion-onset:%d(+%gms,%gm)" link_id extra_ms
        duration_min
  | Congestion_decay { link_id; extra_ms } ->
      Printf.sprintf "congestion-decay:%d(-%gms)" link_id extra_ms
  | Withdraw_prefix { origin } -> Printf.sprintf "withdraw:AS%d" origin
  | Reannounce_prefix { origin } -> Printf.sprintf "reannounce:AS%d" origin
  | Measurement_tick { controller } -> Printf.sprintf "tick:%d" controller
  | Mark s -> Printf.sprintf "mark:%s" s
