(** Deterministic priority-queue timeline.

    A binary min-heap of timed items ordered by (time, insertion
    sequence): earlier times first, and among equal times strict FIFO,
    so replaying the same schedule always yields the same order.  Times
    are simulated minutes (matching {!Netsim_traffic.Window}). *)

type 'a t

val create : unit -> 'a t

val schedule : 'a t -> at:float -> 'a -> unit
(** @raise Invalid_argument on a NaN time. *)

val peek : 'a t -> (float * 'a) option
(** Next item without removing it. *)

val pop : 'a t -> (float * 'a) option

val length : 'a t -> int
val is_empty : 'a t -> bool

val drain : 'a t -> (float * 'a) list
(** Pop everything, in order (leaves the timeline empty). *)

val to_list : 'a t -> (float * 'a) list
(** Every pending item in pop order, without removing anything —
    the snapshot view used to persist a timeline.  Re-[schedule]-ing
    the result into a fresh timeline reproduces the pop order exactly
    (ties keep their FIFO rank). *)
