type 'a item = { at : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a item array;  (** Valid entries are [0 .. size-1]. *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length t = t.size
let is_empty t = t.size = 0

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t ~at payload =
  if Float.is_nan at then invalid_arg "Timeline.schedule: NaN time";
  let item = { at; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.heap then begin
    let cap = max 16 (2 * t.size) in
    let heap = Array.make cap item in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end;
  t.heap.(t.size) <- item;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t =
  if t.size = 0 then None
  else
    let item = t.heap.(0) in
    Some (item.at, item.payload)

let pop t =
  if t.size = 0 then None
  else begin
    let item = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (item.at, item.payload)
  end

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let to_list t =
  Array.sub t.heap 0 t.size |> Array.to_list
  |> List.sort (fun a b ->
         if before a b then -1 else if before b a then 1 else 0)
  |> List.map (fun item -> (item.at, item.payload))
