(** Discrete-event network dynamics engine.

    The engine owns a base topology, a set of currently-failed links,
    an optional congestion state (whose event overlay it maintains),
    and any number of {e tracked prefixes} — announcement configs whose
    BGP routing state it keeps continuously converged.  Events are
    processed strictly in (time, insertion) order from a {!Timeline};
    each topology delta triggers {!Netsim_bgp.Propagate.reconverge} of
    every tracked state (a dirty-set incremental re-run, not a full
    repropagation), with per-event convergence accounting.

    Pluggable {e processes} observe every processed event after the
    engine has applied it and may schedule follow-on events — this is
    how controllers, flap generators and scenario scripts compose. *)

type t

type process = t -> time:float -> Event.t -> unit

(** Per-event reconvergence accounting. *)
type convergence = {
  cv_time : float;
  cv_event : Event.t;
  cv_dirty : int;
      (** Route entries re-derived across all tracked prefixes. *)
  cv_states : int;  (** Tracked states touched (incremental runs). *)
  cv_full_runs : int;  (** Full repropagations (withdraw/re-announce). *)
}

val create : ?congestion:Netsim_latency.Congestion.t -> Netsim_topo.Topology.t -> t
(** The congestion state, when given, must have been built on the same
    (base) topology; the engine drives its event-delay overlay. *)

val restore :
  ?congestion:Netsim_latency.Congestion.t ->
  base:Netsim_topo.Topology.t ->
  down:int list ->
  now:float ->
  unit ->
  t
(** Rebuild an engine from persisted parts (the snapshot-load path):
    the base topology, the currently-failed link ids and the clock.
    The current topology is [base] minus [down]; no reconvergence
    happens — tracked states are installed afterwards with
    {!track_state} and pending events re-{!schedule}d.
    @raise Invalid_argument on an unknown down link id. *)

val track : t -> Netsim_bgp.Announce.t -> unit
(** Start tracking a prefix: one full propagation now, incremental
    reconvergence on every subsequent topology event. *)

val track_state :
  t -> Netsim_bgp.Announce.t -> state:Netsim_bgp.Propagate.state ->
  active:bool -> unit
(** Like {!track}, but install an already-computed routing state
    (loaded from a snapshot) instead of propagating — the state must
    have been computed on the engine's {e current} topology for the
    given config.  [active = false] registers the prefix as withdrawn
    (the state then reflects the withdrawn announcement).
    @raise Invalid_argument if the state's origin differs from the
    config's. *)

val pending : t -> (float * Event.t) list
(** Scheduled-but-unprocessed events in pop order — the persistable
    view of the timeline.  Re-scheduling them into a {!restore}d
    engine reproduces the remaining run exactly. *)

val tracked_prefixes : t -> (int * bool * Netsim_bgp.Propagate.state) list
(** [(origin, active, state)] per tracked prefix, insertion order —
    the persistable counterpart of {!track_state}. *)

val routing : t -> origin:int -> Netsim_bgp.Propagate.state
(** Current routing state of a tracked origin.
    @raise Not_found if the origin is not tracked. *)

val subscribe : t -> process -> unit
(** Processes run in subscription order, after the engine applied the
    event. *)

val schedule : t -> at:float -> Event.t -> unit

val run : t -> until:float -> unit
(** Process every scheduled event with time <= [until] (including
    events that processes schedule along the way) and advance the
    clock to [until]. *)

val step : t -> (float * Event.t) option
(** Process exactly the next event, if any. *)

val now : t -> float
val topology : t -> Netsim_topo.Topology.t
(** Current topology (base minus failed links). *)

val base_topology : t -> Netsim_topo.Topology.t
val congestion : t -> Netsim_latency.Congestion.t option
val link_is_up : t -> int -> bool
val down_links : t -> int list
(** Currently failed link ids, ascending. *)

val events_processed : t -> int
val event_log : t -> (float * Event.t) list
(** Processed events, chronological. *)

val convergence_log : t -> convergence list
(** One record per event that touched routing, chronological. *)
