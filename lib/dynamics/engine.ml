module Topology = Netsim_topo.Topology
module Relation = Netsim_topo.Relation
module Propagate = Netsim_bgp.Propagate
module Announce = Netsim_bgp.Announce
module Congestion = Netsim_latency.Congestion

type tracked = {
  t_origin : int;
  t_config : Announce.t;
  t_withdrawn : Announce.t;
  mutable t_state : Propagate.state;
  mutable t_active : bool;
}

type convergence = {
  cv_time : float;
  cv_event : Event.t;
  cv_dirty : int;
  cv_states : int;
  cv_full_runs : int;
}

type t = {
  base_topo : Topology.t;
  cong : Congestion.t option;
  mutable topo : Topology.t;
  mutable down : int list;  (** ascending link ids *)
  mutable tracked : tracked list;  (** insertion order *)
  timeline : Event.t Timeline.t;
  mutable now_min : float;
  mutable processed : int;
  mutable log : (float * Event.t) list;  (** reversed *)
  mutable convergence : convergence list;  (** reversed *)
  mutable processes : process list;  (** subscription order *)
}

and process = t -> time:float -> Event.t -> unit

let c_events = Netsim_obs.Metrics.counter "dynamics.events"
let c_link_deltas = Netsim_obs.Metrics.counter "dynamics.link_deltas"
let h_dirty = Netsim_obs.Metrics.histogram "dynamics.reconverge.dirty_entries"

let create ?congestion base_topo =
  {
    base_topo;
    cong = congestion;
    topo = base_topo;
    down = [];
    tracked = [];
    timeline = Timeline.create ();
    now_min = 0.;
    processed = 0;
    log = [];
    convergence = [];
    processes = [];
  }

let restore ?congestion ~base ~down ~now () =
  let n_links = Topology.link_count base in
  List.iter
    (fun l ->
      if l < 0 || l >= n_links then
        invalid_arg "Engine.restore: down link id not in base topology")
    down;
  let down = List.sort_uniq compare down in
  let t = create ?congestion base in
  t.down <- down;
  if down <> [] then t.topo <- Topology.remove_links base down;
  t.now_min <- now;
  t

let withdrawn_of config =
  Announce.with_overrides config (fun _ ->
      Some { Announce.export = false; prepend = 0; no_export = false })

let track t config =
  let state = Propagate.run t.topo config in
  t.tracked <-
    t.tracked
    @ [
        {
          t_origin = config.Announce.origin;
          t_config = config;
          t_withdrawn = withdrawn_of config;
          t_state = state;
          t_active = true;
        };
      ]

let track_state t config ~state ~active =
  if Propagate.origin state <> config.Announce.origin then
    invalid_arg "Engine.track_state: state origin <> config origin";
  t.tracked <-
    t.tracked
    @ [
        {
          t_origin = config.Announce.origin;
          t_config = config;
          t_withdrawn = withdrawn_of config;
          t_state = state;
          t_active = active;
        };
      ]

let pending t = Timeline.to_list t.timeline

let tracked_prefixes t =
  List.map (fun tr -> (tr.t_origin, tr.t_active, tr.t_state)) t.tracked

let routing t ~origin =
  match List.find_opt (fun tr -> tr.t_origin = origin) t.tracked with
  | Some tr -> tr.t_state
  | None -> raise Not_found

let subscribe t p = t.processes <- t.processes @ [ p ]
let schedule t ~at ev = Timeline.schedule t.timeline ~at ev

let now t = t.now_min
let topology t = t.topo
let base_topology t = t.base_topo
let congestion t = t.cong
let link_is_up t l = not (List.mem l t.down)
let down_links t = t.down
let events_processed t = t.processed
let event_log t = List.rev t.log
let convergence_log t = List.rev t.convergence

(* Shard reconvergence across the domain pool only when there is
   enough work to amortize the fan-out: tracked prefixes are
   independent (each repairs its own state against the shared new
   topology), but a single-prefix engine — the dynamics benchmarks —
   must not pay pool overhead. *)
let reconverge_min_shard = 4

(* Apply one link delta: update the down set and topology, then
   incrementally reconverge every active tracked prefix.  Returns the
   dirty-entry total (0 if the delta was a no-op). *)
let apply_link_delta t dir l =
  let applies =
    match dir with
    | `Down -> link_is_up t l && l >= 0 && l < Topology.link_count t.base_topo
    | `Up -> not (link_is_up t l)
  in
  if not applies then None
  else begin
    Netsim_obs.Metrics.incr c_link_deltas;
    (t.down <-
       (match dir with
       | `Down -> List.sort compare (l :: t.down)
       | `Up -> List.filter (fun x -> x <> l) t.down));
    t.topo <- Topology.remove_links t.base_topo t.down;
    let delta =
      match dir with
      | `Down -> Propagate.Link_removed l
      | `Up -> Propagate.Link_added l
    in
    let tracked = Array.of_list t.tracked in
    let step tr =
      if tr.t_active then begin
        let state, stats = Propagate.reconverge tr.t_state ~topo:t.topo delta in
        (state, Propagate.rs_dirty stats, true)
      end
      else
        (* A withdrawn prefix has no routes to repair; just rebase
           its empty state onto the new topology. *)
        (Propagate.run t.topo tr.t_withdrawn, 0, false)
    in
    let results =
      if Array.length tracked >= reconverge_min_shard then
        Netsim_par.Pool.map step tracked
      else Array.map step tracked
    in
    let dirty = ref 0 and states = ref 0 in
    Array.iteri
      (fun i (state, d, active) ->
        tracked.(i).t_state <- state;
        dirty := !dirty + d;
        if active then incr states)
      results;
    if Netsim_obs.Metrics.enabled () then
      Netsim_obs.Metrics.observe h_dirty (float_of_int !dirty);
    Some (!dirty, !states)
  end

let site_links t ~asid ~metro =
  List.filter_map
    (fun (nb : Topology.neighbor) ->
      if nb.Topology.link.Relation.metro = metro then
        Some nb.Topology.link.Relation.id
      else None)
    (Topology.neighbors t.base_topo asid)
  |> List.sort_uniq compare

let record_convergence t ~time ~event ~dirty ~states ~full_runs =
  if states > 0 || full_runs > 0 then begin
    t.convergence <-
      {
        cv_time = time;
        cv_event = event;
        cv_dirty = dirty;
        cv_states = states;
        cv_full_runs = full_runs;
      }
      :: t.convergence;
    if Netsim_obs.Recorder.enabled () then
      Netsim_obs.Recorder.(
        record ~kind:"dynamics.converge"
          [
            F ("t_min", time);
            I ("dirty", dirty);
            I ("states", states);
            I ("full_runs", full_runs);
          ])
  end

let handle t ~time ev =
  let acc_dirty = ref 0 and acc_states = ref 0 and acc_full = ref 0 in
  let link dir l =
    match apply_link_delta t dir l with
    | None -> ()
    | Some (dirty, states) ->
        acc_dirty := !acc_dirty + dirty;
        acc_states := !acc_states + states
  in
  (match ev with
  | Event.Link_down l -> link `Down l
  | Event.Link_up l -> link `Up l
  | Event.Link_flap { link_id; down_minutes } ->
      if link_is_up t link_id then begin
        link `Down link_id;
        schedule t ~at:(time +. down_minutes) (Event.Link_up link_id)
      end
  | Event.Site_down { asid; metro } ->
      List.iter (link `Down) (site_links t ~asid ~metro)
  | Event.Site_up { asid; metro } ->
      List.iter (link `Up) (site_links t ~asid ~metro)
  | Event.Congestion_onset { link_id; extra_ms; duration_min } -> (
      match t.cong with
      | None -> ()
      | Some cong ->
          Congestion.add_event_delay_ms cong ~link_id ~ms:extra_ms;
          schedule t
            ~at:(time +. duration_min)
            (Event.Congestion_decay { link_id; extra_ms }))
  | Event.Congestion_decay { link_id; extra_ms } -> (
      match t.cong with
      | None -> ()
      | Some cong -> Congestion.remove_event_delay_ms cong ~link_id ~ms:extra_ms)
  | Event.Withdraw_prefix { origin } ->
      List.iter
        (fun tr ->
          if tr.t_origin = origin && tr.t_active then begin
            tr.t_active <- false;
            tr.t_state <- Propagate.run t.topo tr.t_withdrawn;
            incr acc_full
          end)
        t.tracked
  | Event.Reannounce_prefix { origin } ->
      List.iter
        (fun tr ->
          if tr.t_origin = origin && not tr.t_active then begin
            tr.t_active <- true;
            tr.t_state <- Propagate.run t.topo tr.t_config;
            incr acc_full
          end)
        t.tracked
  | Event.Measurement_tick _ | Event.Mark _ -> ());
  record_convergence t ~time ~event:ev ~dirty:!acc_dirty ~states:!acc_states
    ~full_runs:!acc_full

let step t =
  match Timeline.pop t.timeline with
  | None -> None
  | Some (at, ev) ->
      (* The clock never runs backwards: events scheduled in the past
         are processed at the current time. *)
      t.now_min <- Float.max t.now_min at;
      let time = t.now_min in
      Netsim_obs.Span.with_ ~name:("dynamics." ^ Event.kind ev) (fun () ->
          Netsim_obs.Metrics.incr c_events;
          if Netsim_obs.Recorder.enabled () then
            Netsim_obs.Recorder.(
              record ~kind:"dynamics.event"
                [
                  F ("t_min", time);
                  S ("event", Event.kind ev);
                  S ("label", Event.label ev);
                ]);
          handle t ~time ev;
          List.iter (fun p -> p t ~time ev) t.processes);
      t.processed <- t.processed + 1;
      t.log <- (time, ev) :: t.log;
      Some (time, ev)

let run t ~until =
  let continue = ref true in
  while !continue do
    match Timeline.peek t.timeline with
    | Some (at, _) when at <= until -> ignore (step t)
    | Some _ | None -> continue := false
  done;
  t.now_min <- Float.max t.now_min until
