module Splitmix = Netsim_prng.Splitmix
module Dist = Netsim_prng.Dist

let minutes_per_day = 24. *. 60.

let flaps rng ~link_ids ~mean_interval_min ~mean_down_min ~days =
  if link_ids = [||] || mean_interval_min <= 0. then []
  else begin
    let rng = Splitmix.of_label rng "script.flaps" in
    let horizon = float_of_int days *. minutes_per_day in
    let rec go t acc =
      let t = t +. Dist.exponential rng ~rate:(1. /. mean_interval_min) in
      if t >= horizon then List.rev acc
      else
        let link_id = link_ids.(Splitmix.next_int rng (Array.length link_ids)) in
        let down_minutes =
          Float.max 0.5 (Dist.exponential rng ~rate:(1. /. mean_down_min))
        in
        go t ((t, Event.Link_flap { link_id; down_minutes }) :: acc)
    in
    go 0. []
  end

let congestion_bursts rng ~link_ids ~mean_interval_min ~median_extra_ms ~sigma
    ~mean_duration_min ~days =
  if link_ids = [||] || mean_interval_min <= 0. then []
  else begin
    let rng = Splitmix.of_label rng "script.congestion" in
    let horizon = float_of_int days *. minutes_per_day in
    let mu = Float.log median_extra_ms in
    let rec go t acc =
      let t = t +. Dist.exponential rng ~rate:(1. /. mean_interval_min) in
      if t >= horizon then List.rev acc
      else
        let link_id = link_ids.(Splitmix.next_int rng (Array.length link_ids)) in
        let extra_ms = Dist.lognormal rng ~mu ~sigma in
        let duration_min =
          Float.max 1. (Dist.exponential rng ~rate:(1. /. mean_duration_min))
        in
        go t
          ((t, Event.Congestion_onset { link_id; extra_ms; duration_min }) :: acc)
    in
    go 0. []
  end

let measurement_ticks ~controller ~period_min ~days =
  if period_min <= 0. then invalid_arg "Script.measurement_ticks: period <= 0";
  let horizon = float_of_int days *. minutes_per_day in
  let rec go t acc =
    if t >= horizon then List.rev acc
    else go (t +. period_min) ((t, Event.Measurement_tick { controller }) :: acc)
  in
  (* First tick at [period_min]: at t=0 the controller is fresh by
     construction, so the cycle starts after one full period. *)
  go period_min []

let schedule_all engine events =
  List.iter (fun (at, ev) -> Engine.schedule engine ~at ev) events
