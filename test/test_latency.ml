(* Tests for the latency model: propagation arithmetic on the fixture,
   congestion determinism/shape, RTT sampling. *)

module Sm = Netsim_prng.Splitmix
module Relation = Netsim_topo.Relation
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Walk = Netsim_bgp.Walk
module Params = Netsim_latency.Params
module Propagation = Netsim_latency.Propagation
module Congestion = Netsim_latency.Congestion
module Rtt = Netsim_latency.Rtt
module World = Netsim_geo.World
module City = Netsim_geo.City
open Fixture

let walk_exn s src =
  match Walk.of_source s ~src with
  | Some w -> w
  | None -> Alcotest.fail "expected a walk"

let state () =
  let t = topo () in
  (t, Propagate.run t (Announce.default ~origin:cp))

(* ---- Propagation ---- *)

let test_inflation_by_class () =
  let p = Params.default in
  Alcotest.(check bool) "cloud best engineered" true
    (Propagation.inflation p Netsim_topo.Asn.Cloud
    < Propagation.inflation p Netsim_topo.Asn.Tier1);
  Alcotest.(check bool) "stub worst" true
    (Propagation.inflation p Netsim_topo.Asn.Stub
    > Propagation.inflation p Netsim_topo.Asn.Eyeball)

let test_intra_as_zero_same_metro () =
  let t, _ = state () in
  Alcotest.(check (float 1e-9)) "same metro no carry" 0.
    (Propagation.intra_as_ms Params.default t ~asid:t1a ~from_metro:ny
       ~to_metro:ny)

let test_intra_as_inflated () =
  let t, _ = state () in
  let geodesic = City.rtt_ms World.cities.(ny) World.cities.(london) in
  let carried =
    Propagation.intra_as_ms Params.default t ~asid:t1a ~from_metro:ny
      ~to_metro:london
  in
  Alcotest.(check (float 1e-9)) "tier1 inflation"
    (geodesic *. Params.default.Params.inflation_tier1)
    carried

let test_walk_rtt_local_path () =
  (* Stub -> CP: everything happens in Chicago, so the floor is just
     the per-hop penalties. *)
  let t, s = state () in
  let w = walk_exn s st in
  let rtt = Propagation.walk_rtt_ms Params.default t w ~terminal:Propagation.At_entry in
  Alcotest.(check (float 1e-9)) "two hop penalties"
    (2. *. Params.default.Params.hop_penalty_ms)
    rtt

let test_walk_rtt_terminal_carry () =
  (* Terminal To_city London adds CP's intra-AS carry from the entry
     (Chicago) to London. *)
  let t, s = state () in
  let w = walk_exn s st in
  let base =
    Propagation.walk_rtt_ms Params.default t w ~terminal:Propagation.At_entry
  in
  let extended =
    Propagation.walk_rtt_ms Params.default t w
      ~terminal:(Propagation.To_city london)
  in
  let expected_carry =
    City.rtt_ms World.cities.(chicago) World.cities.(london)
    *. Params.default.Params.inflation_content
  in
  Alcotest.(check (float 1e-6)) "carry added" expected_carry (extended -. base)

let test_walk_rtt_longer_for_detours () =
  (* T1b's path enters at NY; a client behind it in Tokyo would pay
     the ocean crossing. *)
  let t, s = state () in
  match Walk.from_metro s ~src:t1b ~start_metro:tokyo with
  | None -> Alcotest.fail "no walk"
  | Some w ->
      let rtt =
        Propagation.walk_rtt_ms Params.default t w ~terminal:Propagation.At_entry
      in
      Alcotest.(check bool) "transpacific floor > 100ms" true (rtt > 100.)

(* ---- Congestion ---- *)

let congestion ?(params = Params.default) () =
  let t = topo () in
  (t, Congestion.create params t ~seed:5)

let test_congestion_determinism () =
  let _, c1 = congestion () in
  let _, c2 = congestion () in
  for link_id = 0 to 8 do
    Alcotest.(check (float 1e-12)) "same utilization"
      (Congestion.utilization c1 ~link_id ~time_min:100.)
      (Congestion.utilization c2 ~link_id ~time_min:100.)
  done

let test_utilization_bounds () =
  let _, c = congestion () in
  for link_id = 0 to 8 do
    for h = 0 to 47 do
      let u = Congestion.utilization c ~link_id ~time_min:(float_of_int h *. 30.) in
      Alcotest.(check bool) "in [0, 0.97]" true (u >= 0. && u <= 0.97)
    done
  done

let test_offered_load_overrides () =
  let _, c = congestion () in
  Congestion.set_offered_load c ~link_id:0 ~gbps:97.;
  (* Capacity is 100 Gbps in the fixture: utilization near cap. *)
  let u = Congestion.utilization c ~link_id:0 ~time_min:0. in
  Alcotest.(check bool) "high util" true (u > 0.6);
  Congestion.clear_offered_loads c;
  let u' = Congestion.utilization c ~link_id:0 ~time_min:0. in
  Alcotest.(check bool) "reset to base" true (u' < u)

let test_queue_delay_monotone_in_util () =
  let _, c = congestion () in
  Congestion.set_offered_load c ~link_id:0 ~gbps:30.;
  let low = Congestion.queue_delay_ms c ~link_id:0 ~time_min:0. in
  Congestion.set_offered_load c ~link_id:0 ~gbps:95.;
  let high = Congestion.queue_delay_ms c ~link_id:0 ~time_min:0. in
  Alcotest.(check bool) "queueing grows" true (high > low);
  Alcotest.(check bool) "superlinear" true (high > 3. *. low)

let test_diurnal_mean_one () =
  let _, c = congestion () in
  let sum = ref 0. in
  let n = 96 in
  for i = 0 to n - 1 do
    sum :=
      !sum +. Congestion.diurnal_factor c ~metro:ny ~time_min:(float_of_int i *. 15.)
  done;
  Alcotest.(check bool) "mean ~1 over a day" true
    (Float.abs ((!sum /. float_of_int n) -. 1.) < 0.02)

let test_diurnal_timezone_shift () =
  (* Peak hits Tokyo and New York at different UTC times. *)
  let _, c = congestion () in
  let series metro =
    List.init 96 (fun i ->
        Congestion.diurnal_factor c ~metro ~time_min:(float_of_int i *. 15.))
  in
  Alcotest.(check bool) "shifted curves differ" true (series ny <> series tokyo)

let test_episode_deterministic () =
  let _, c1 = congestion () in
  let _, c2 = congestion () in
  for d = 0 to 2 do
    let t = (float_of_int d *. 1440.) +. 300. in
    Alcotest.(check (float 1e-12)) "same episode delay"
      (Congestion.episode_delay_ms c1 (Congestion.Access 3) ~time_min:t)
      (Congestion.episode_delay_ms c2 (Congestion.Access 3) ~time_min:t)
  done

let test_episode_nonnegative () =
  let _, c = congestion () in
  for i = 0 to 50 do
    let t = float_of_int i *. 37. in
    Alcotest.(check bool) "nonnegative" true
      (Congestion.episode_delay_ms c (Congestion.Dest_net i) ~time_min:t >= 0.)
  done

let test_episode_rate_zero_means_none () =
  let _, c =
    congestion ~params:Params.congestion_free ()
  in
  for i = 0 to 20 do
    Alcotest.(check (float 0.)) "no episodes" 0.
      (Congestion.episode_delay_ms c (Congestion.Access i)
         ~time_min:(float_of_int (i * 100)))
  done

let test_episodes_do_happen () =
  let _, c = congestion () in
  (* With access rate 0.8/day, scanning many entities and times must
     find at least one episode. *)
  let found = ref false in
  for e = 0 to 80 do
    for h = 0 to 23 do
      if
        Congestion.episode_delay_ms c (Congestion.Access e)
          ~time_min:(float_of_int h *. 60.)
        > 0.
      then found := true
    done
  done;
  Alcotest.(check bool) "episodes occur" true !found

let test_access_base_stable_and_positive () =
  let _, c = congestion () in
  let a = Congestion.access_base_ms c 7 in
  let b = Congestion.access_base_ms c 7 in
  Alcotest.(check (float 1e-12)) "stable per prefix" a b;
  Alcotest.(check bool) "positive" true (a > 0.);
  Alcotest.(check bool) "differs across prefixes" true
    (Congestion.access_base_ms c 8 <> a)

(* ---- Rtt ---- *)

let flow_for src =
  let t = topo () in
  let s = Propagate.run t (Announce.default ~origin:cp) in
  let w = walk_exn s src in
  (t, Rtt.make_flow ~access:(Congestion.Access 1) ~terminal:Propagation.At_entry w)

let test_floor_includes_access_base () =
  let t, flow = flow_for st in
  let c = Congestion.create Params.default t ~seed:5 in
  let floor = Rtt.floor_ms Params.default t c flow in
  let expected =
    (2. *. Params.default.Params.hop_penalty_ms)
    +. Congestion.access_base_ms c 1
  in
  Alcotest.(check (float 1e-9)) "floor = propagation + access" expected floor

let test_sample_at_least_floor_without_jitter () =
  let t, flow = flow_for st in
  let params = { Params.default with Params.minrtt_jitter_sigma = 0. } in
  let c = Congestion.create params t ~seed:5 in
  let rng = Sm.create 1 in
  for i = 0 to 20 do
    let v = Rtt.sample_ms c ~rng ~time_min:(float_of_int i *. 60.) flow in
    let floor = Rtt.floor_ms params t c flow in
    Alcotest.(check bool) "sample >= floor" true (v >= floor -. 1e-9)
  done

let test_sample_deterministic_given_rng () =
  let t, flow = flow_for st in
  let c = Congestion.create Params.default t ~seed:5 in
  let v1 = Rtt.sample_ms c ~rng:(Sm.create 9) ~time_min:100. flow in
  let v2 = Rtt.sample_ms c ~rng:(Sm.create 9) ~time_min:100. flow in
  Alcotest.(check (float 1e-12)) "reproducible" v1 v2

let test_extra_ms_added () =
  let t, flow = flow_for st in
  let flow' = { flow with Rtt.extra_ms = 42. } in
  let c = Congestion.create Params.default t ~seed:5 in
  Alcotest.(check (float 1e-9)) "extra added" 42.
    (Rtt.floor_ms Params.default t c flow'
    -. Rtt.floor_ms Params.default t c flow)

let test_median_of_samples_stable () =
  let t, flow = flow_for st in
  let c = Congestion.create Params.default t ~seed:5 in
  let m1 =
    Rtt.median_of_samples c ~rng:(Sm.create 3) ~time_min:200. ~count:21 flow
  in
  let m2 =
    Rtt.median_of_samples c ~rng:(Sm.create 3) ~time_min:200. ~count:21 flow
  in
  Alcotest.(check (float 1e-12)) "deterministic median" m1 m2;
  Alcotest.(check bool) "positive" true (m1 > 0.)

let test_shared_access_fate () =
  (* Two different walks sharing the same access entity see the same
     access episode: sample both during an access episode and check
     the delta matches. *)
  let t = topo () in
  let s = Propagate.run t (Announce.default ~origin:cp) in
  let w1 = walk_exn s st in
  let params = { Params.default with Params.minrtt_jitter_sigma = 0. } in
  let c = Congestion.create params t ~seed:5 in
  (* Find a time where access entity 1 is in an episode. *)
  let in_episode = ref None in
  for i = 0 to 2000 do
    let tm = float_of_int i *. 10. in
    if !in_episode = None
       && Congestion.episode_delay_ms c (Congestion.Access 1) ~time_min:tm > 0.
    then in_episode := Some tm
  done;
  match !in_episode with
  | None -> () (* extremely unlikely; nothing to assert *)
  | Some tm ->
      let flow terminal =
        Rtt.make_flow ~access:(Congestion.Access 1) ~terminal w1
      in
      let a =
        Rtt.sample_ms c ~rng:(Sm.create 1) ~time_min:tm
          (flow Propagation.At_entry)
      in
      let episode =
        Congestion.episode_delay_ms c (Congestion.Access 1) ~time_min:tm
      in
      Alcotest.(check bool) "episode visible in sample" true (a >= episode)

let suite =
  [
    Alcotest.test_case "inflation by class" `Quick test_inflation_by_class;
    Alcotest.test_case "intra-AS same metro" `Quick test_intra_as_zero_same_metro;
    Alcotest.test_case "intra-AS inflated" `Quick test_intra_as_inflated;
    Alcotest.test_case "walk rtt local" `Quick test_walk_rtt_local_path;
    Alcotest.test_case "walk rtt terminal carry" `Quick test_walk_rtt_terminal_carry;
    Alcotest.test_case "walk rtt detour" `Quick test_walk_rtt_longer_for_detours;
    Alcotest.test_case "congestion determinism" `Quick test_congestion_determinism;
    Alcotest.test_case "utilization bounds" `Quick test_utilization_bounds;
    Alcotest.test_case "offered load override" `Quick test_offered_load_overrides;
    Alcotest.test_case "queue delay monotone" `Quick test_queue_delay_monotone_in_util;
    Alcotest.test_case "diurnal mean 1" `Quick test_diurnal_mean_one;
    Alcotest.test_case "diurnal timezone shift" `Quick test_diurnal_timezone_shift;
    Alcotest.test_case "episode deterministic" `Quick test_episode_deterministic;
    Alcotest.test_case "episode nonnegative" `Quick test_episode_nonnegative;
    Alcotest.test_case "episode rate zero" `Quick test_episode_rate_zero_means_none;
    Alcotest.test_case "episodes happen" `Quick test_episodes_do_happen;
    Alcotest.test_case "access base stable" `Quick test_access_base_stable_and_positive;
    Alcotest.test_case "floor includes access" `Quick test_floor_includes_access_base;
    Alcotest.test_case "sample >= floor" `Quick test_sample_at_least_floor_without_jitter;
    Alcotest.test_case "sample deterministic" `Quick test_sample_deterministic_given_rng;
    Alcotest.test_case "extra_ms added" `Quick test_extra_ms_added;
    Alcotest.test_case "median stable" `Quick test_median_of_samples_stable;
    Alcotest.test_case "shared access fate" `Quick test_shared_access_fate;
  ]
