(* Paper-shape checks at full scale: every figure is regenerated with
   the default scenario sizes and its tracked prose claims (with the
   generous bands from DESIGN.md §6) must pass.

   These are the repository's "does it still reproduce the paper"
   tests; they take a few tens of seconds in total. *)

module S = Beatbgp.Scenario
module Figure = Beatbgp.Figure
module Claims = Beatbgp.Claims

let check_all_claims fig =
  let claims = Claims.of_figure fig in
  Alcotest.(check bool)
    (Printf.sprintf "figure %s has tracked claims" fig.Figure.id)
    true (claims <> []);
  List.iter
    (fun (c : Claims.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: measured=%.4f band=[%g,%g] (%s)" c.Claims.id
           c.Claims.measured (fst c.Claims.band) (snd c.Claims.band)
           c.Claims.paper_value)
        true (Claims.passes c))
    claims

let fb = lazy (S.facebook ())
let ms = lazy (S.microsoft ())
let gc = lazy (S.google ())
let fig1 = lazy (Beatbgp.Fig1_pop_egress.run (Lazy.force fb))

let test_fig1_claims () =
  check_all_claims (Lazy.force fig1).Beatbgp.Fig1_pop_egress.figure

let test_fig2_claims () =
  check_all_claims
    (Beatbgp.Fig2_route_classes.run (Lazy.force fb)).Beatbgp.Fig2_route_classes.figure

let test_fig3_claims () =
  check_all_claims
    (Beatbgp.Fig3_anycast_gap.run (Lazy.force ms)).Beatbgp.Fig3_anycast_gap.figure

let test_fig4_claims () =
  check_all_claims
    (Beatbgp.Fig4_dns_redirection.run (Lazy.force ms))
      .Beatbgp.Fig4_dns_redirection.figure

let test_fig5_claims () =
  check_all_claims
    (Beatbgp.Fig5_cloud_tiers.run (Lazy.force gc)).Beatbgp.Fig5_cloud_tiers.figure

let test_degrade_together_paper_shape () =
  (* §3.1.1's three observations, checked directly. *)
  let d = Beatbgp.Degrade_together.analyze (Lazy.force fig1) in
  (* 1. Alternates usually offer no improvement. *)
  Alcotest.(check bool) "most pairs never improvable" true
    (List.assoc "pairs_never_better"
       d.Beatbgp.Degrade_together.figure.Figure.stats
    > 0.5);
  (* 2. Degradation more prevalent than improvement opportunity. *)
  Alcotest.(check bool) "degradation more prevalent" true
    (d.Beatbgp.Degrade_together.degraded_window_fraction
    >= d.Beatbgp.Degrade_together.improvable_window_fraction);
  (* 3. When options degrade, they tend to degrade together. *)
  Alcotest.(check bool) "shared fate substantial" true
    (d.Beatbgp.Degrade_together.shared_degradation > 0.25);
  (* 4. Most alternates that do beat BGP are consistently better. *)
  Alcotest.(check bool) "persistent winners dominate" true
    (d.Beatbgp.Degrade_together.persistent_share_of_wins > 0.4)

let test_fig5_india_anomaly () =
  let r = Beatbgp.Fig5_cloud_tiers.run (Lazy.force gc) in
  let india =
    List.find_opt
      (fun (c : Beatbgp.Fig5_cloud_tiers.per_country) ->
        c.Beatbgp.Fig5_cloud_tiers.country = "IN")
      r.Beatbgp.Fig5_cloud_tiers.countries
  in
  match india with
  | None -> Alcotest.fail "no Indian measurements at default scale"
  | Some c ->
      Alcotest.(check bool) "standard wins for India" true
        (c.Beatbgp.Fig5_cloud_tiers.diff_ms < 0.)

let test_goodput_claims () =
  check_all_claims
    (Beatbgp.Goodput_egress.run (Lazy.force fb)).Beatbgp.Goodput_egress.figure

let test_grooming_nurture () =
  (* §3.2.2: route grooming at human timescales provides real benefit
     — the ungroomed deployment's bad tail shrinks substantially after
     the operator keeps the best prepend set. *)
  let r = Beatbgp.Grooming.run (Lazy.force ms) in
  let stat name = List.assoc name r.Beatbgp.Grooming.figure.Figure.stats in
  Alcotest.(check bool) "grooming shrinks the >=100ms tail" true
    (stat "groomed_frac_worse_100ms" < stat "ungroomed_frac_worse_100ms" /. 2.);
  Alcotest.(check bool) "grooming improves the within-10ms mass" true
    (stat "groomed_frac_within_10ms" >= stat "ungroomed_frac_within_10ms");
  Alcotest.(check bool) "grooming used a modest number of actions" true
    (stat "total_actions" > 0. && stat "total_actions" < 500.)

let test_dynamics_claims () =
  (* §4 under dynamics: fresh controllers win, stale ones stop
     winning.  Also sanity-check the sweep itself: every cell ran its
     events, and all reconvergence was incremental (no full runs). *)
  let r = Beatbgp.Dynamics_stale.run (Lazy.force fb) in
  check_all_claims r.Beatbgp.Dynamics_stale.figure;
  List.iter
    (fun (c : Beatbgp.Dynamics_stale.cell) ->
      Alcotest.(check bool)
        (Printf.sprintf "cell %s/%g processed events" c.Beatbgp.Dynamics_stale.churn
           c.Beatbgp.Dynamics_stale.staleness_min)
        true
        (c.Beatbgp.Dynamics_stale.events > 0
        && c.Beatbgp.Dynamics_stale.ticks > 0
        && c.Beatbgp.Dynamics_stale.full_runs = 0))
    r.Beatbgp.Dynamics_stale.cells

let test_wan_fraction_hypothesis () =
  (* §3.3.2's hypothesis: Premium's advantage shrinks when the BGP
     path already behaves like a single WAN.  We check the bucket
     contrast: mean (standard − premium) among VPs whose standard path
     is spread over many ASes must exceed the mean among VPs whose
     path rides a single AS for ≥ 90 % of its carriage.  India's
     paths must be single-WAN-dominated in absolute terms. *)
  let r = Beatbgp.Wan_fraction.run (Lazy.force gc) in
  let bucket_mean lo =
    List.find_opt
      (fun (b : Beatbgp.Wan_fraction.bucket) -> b.Beatbgp.Wan_fraction.lo = lo)
      r.Beatbgp.Wan_fraction.buckets
  in
  (match (bucket_mean 0., bucket_mean 0.9) with
  | Some low, Some high
    when low.Beatbgp.Wan_fraction.count > 0 && high.Beatbgp.Wan_fraction.count > 0
    ->
      Alcotest.(check bool) "premium advantage shrinks with single-WAN share"
        true
        (low.Beatbgp.Wan_fraction.mean_diff_ms
        > high.Beatbgp.Wan_fraction.mean_diff_ms)
  | _, _ -> ());
  Alcotest.(check bool) "india rides a single WAN" true
    (r.Beatbgp.Wan_fraction.india_mean_fraction > 0.55)

let suite =
  [
    Alcotest.test_case "fig1 paper claims" `Slow test_fig1_claims;
    Alcotest.test_case "fig2 paper claims" `Slow test_fig2_claims;
    Alcotest.test_case "fig3 paper claims" `Slow test_fig3_claims;
    Alcotest.test_case "fig4 paper claims" `Slow test_fig4_claims;
    Alcotest.test_case "fig5 paper claims" `Slow test_fig5_claims;
    Alcotest.test_case "degrade-together shape" `Slow test_degrade_together_paper_shape;
    Alcotest.test_case "india anomaly" `Slow test_fig5_india_anomaly;
    Alcotest.test_case "grooming nurture" `Slow test_grooming_nurture;
    Alcotest.test_case "goodput footnote-3" `Slow test_goodput_claims;
    Alcotest.test_case "single-WAN hypothesis" `Slow test_wan_fraction_hypothesis;
    Alcotest.test_case "dynamics staleness claims" `Slow test_dynamics_claims;
  ]
