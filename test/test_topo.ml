(* Tests for AS records, relations, the topology container, the
   generator and the invariant checker. *)

module Sm = Netsim_prng.Splitmix
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Invariants = Netsim_topo.Invariants

(* ---- Asn / Relation ---- *)

let test_asn_home () =
  let a = { Asn.id = 0; klass = Asn.Stub; name = "x"; footprint = [| 7; 3 |] } in
  Alcotest.(check int) "home is first" 7 (Asn.home a);
  Alcotest.(check bool) "present" true (Asn.present_at a 3);
  Alcotest.(check bool) "absent" false (Asn.present_at a 9)

let test_asn_transit_like () =
  let mk klass = { Asn.id = 0; klass; name = ""; footprint = [| 0 |] } in
  Alcotest.(check bool) "tier1" true (Asn.is_transit_like (mk Asn.Tier1));
  Alcotest.(check bool) "transit" true (Asn.is_transit_like (mk Asn.Transit));
  Alcotest.(check bool) "eyeball" false (Asn.is_transit_like (mk Asn.Eyeball));
  Alcotest.(check bool) "content" false (Asn.is_transit_like (mk Asn.Content))

let test_relation_perspectives () =
  let l =
    { Relation.id = 0; a = 1; b = 2; kind = Relation.C2p; metro = 0;
      capacity_gbps = 1. }
  in
  Alcotest.(check bool) "a sees provider" true
    (Relation.rel_of l 1 = Relation.To_provider);
  Alcotest.(check bool) "b sees customer" true
    (Relation.rel_of l 2 = Relation.To_customer);
  Alcotest.(check int) "other of a" 2 (Relation.other l 1);
  Alcotest.(check int) "other of b" 1 (Relation.other l 2)

let test_relation_peering_symmetric () =
  let l =
    { Relation.id = 0; a = 1; b = 2; kind = Relation.Peer_public; metro = 0;
      capacity_gbps = 1. }
  in
  Alcotest.(check bool) "both see pub peer" true
    (Relation.rel_of l 1 = Relation.Pub_peer
    && Relation.rel_of l 2 = Relation.Pub_peer)

let test_relation_bad_endpoint () =
  let l =
    { Relation.id = 0; a = 1; b = 2; kind = Relation.C2p; metro = 0;
      capacity_gbps = 1. }
  in
  Alcotest.check_raises "not endpoint"
    (Invalid_argument "Relation.rel_of: AS is not an endpoint of this link")
    (fun () -> ignore (Relation.rel_of l 5))

let test_relation_is_peering () =
  Alcotest.(check bool) "c2p" false (Relation.is_peering Relation.C2p);
  Alcotest.(check bool) "priv" true (Relation.is_peering Relation.Peer_private)

(* ---- Topology on the fixture ---- *)

let test_fixture_counts () =
  let t = Fixture.topo () in
  Alcotest.(check int) "ases" 6 (Topology.as_count t);
  Alcotest.(check int) "links" 9 (Topology.link_count t)

let test_fixture_adjacency () =
  let t = Fixture.topo () in
  Alcotest.(check (list int)) "cp providers" [ Fixture.t1a ]
    (Topology.providers t Fixture.cp);
  Alcotest.(check (list int)) "cp peers" [ Fixture.eb ]
    (Topology.peers t Fixture.cp);
  Alcotest.(check (list int)) "tr providers" [ Fixture.t1a; Fixture.t1b ]
    (Topology.providers t Fixture.tr);
  Alcotest.(check (list int)) "t1a customers"
    [ Fixture.tr; Fixture.cp ]
    (List.sort compare (Topology.customers t Fixture.t1a));
  Alcotest.(check (list int)) "eb customers" [ Fixture.st ]
    (Topology.customers t Fixture.eb)

let test_fixture_links_between () =
  let t = Fixture.topo () in
  Alcotest.(check int) "cp-t1a has two sessions" 2
    (List.length (Topology.links_between t Fixture.cp Fixture.t1a));
  Alcotest.(check int) "cp-eb has two sessions" 2
    (List.length (Topology.links_between t Fixture.cp Fixture.eb));
  Alcotest.(check int) "no st-cp link" 0
    (List.length (Topology.links_between t Fixture.st Fixture.cp))

let test_fixture_degree () =
  let t = Fixture.topo () in
  Alcotest.(check int) "stub degree 1" 1 (Topology.degree t Fixture.st)

let test_by_klass () =
  let t = Fixture.topo () in
  Alcotest.(check (list int)) "tier1s" [ 0; 1 ] (Topology.by_klass t Asn.Tier1);
  Alcotest.(check (list int)) "content" [ 5 ] (Topology.by_klass t Asn.Content)

let test_ases_at_metro () =
  let t = Fixture.topo () in
  let at_chicago = Topology.ases_at_metro t Fixture.chicago in
  Alcotest.(check (list int)) "chicago residents"
    [ Fixture.tr; Fixture.eb; Fixture.st; Fixture.cp ]
    (List.sort compare at_chicago)

let test_add_as_and_links () =
  let t = Fixture.topo () in
  let t, id =
    Topology.add_as t ~klass:Asn.Stub ~name:"NEW" ~footprint:[| Fixture.ny |]
  in
  Alcotest.(check int) "new id" 6 id;
  let t =
    Topology.add_links t [ (id, Fixture.eb, Relation.C2p, Fixture.ny, 10.) ]
  in
  Alcotest.(check (list int)) "new provider" [ Fixture.eb ]
    (Topology.providers t id);
  Alcotest.(check int) "links grew" 10 (Topology.link_count t)

let test_make_rejects_self_link () =
  let ases =
    [| { Asn.id = 0; klass = Asn.Stub; name = "a"; footprint = [| 0 |] } |]
  in
  let bad =
    [ { Relation.id = 0; a = 0; b = 0; kind = Relation.C2p; metro = 0;
        capacity_gbps = 1. } ]
  in
  Alcotest.check_raises "self link" (Invalid_argument "Topology.make: self-link")
    (fun () -> ignore (Topology.make ases bad))

let test_make_rejects_sparse_ids () =
  let ases =
    [| { Asn.id = 1; klass = Asn.Stub; name = "a"; footprint = [| 0 |] } |]
  in
  Alcotest.check_raises "sparse ids"
    (Invalid_argument "Topology.make: AS ids must be dense") (fun () ->
      ignore (Topology.make ases []))

(* ---- Generator ---- *)

let generated = lazy (Generator.generate Generator.default_params)

let test_generator_counts () =
  let t = Lazy.force generated in
  let p = Generator.default_params in
  Alcotest.(check int) "tier1 count" p.Generator.n_tier1
    (List.length (Topology.by_klass t Asn.Tier1));
  Alcotest.(check int) "transit count" p.Generator.n_transit
    (List.length (Topology.by_klass t Asn.Transit));
  Alcotest.(check int) "eyeball count" p.Generator.n_eyeball
    (List.length (Topology.by_klass t Asn.Eyeball));
  Alcotest.(check int) "stub count" p.Generator.n_stub
    (List.length (Topology.by_klass t Asn.Stub))

let test_generator_deterministic () =
  let a = Generator.generate Generator.small_params in
  let b = Generator.generate Generator.small_params in
  Alcotest.(check int) "same link count" (Topology.link_count a)
    (Topology.link_count b);
  Alcotest.(check bool) "same links" true
    (Topology.links a = Topology.links b)

let test_generator_seed_changes_topology () =
  let a = Generator.generate Generator.small_params in
  let b =
    Generator.generate { Generator.small_params with Generator.seed = 99 }
  in
  Alcotest.(check bool) "different seed, different links" true
    (Topology.links a <> Topology.links b)

let test_generator_invariants () =
  Alcotest.(check (list string)) "no violations" []
    (Invariants.check (Lazy.force generated))

let test_generator_small_invariants () =
  Alcotest.(check (list string)) "small topology valid" []
    (Invariants.check (Generator.generate Generator.small_params))

let test_generator_tier1_clique () =
  let t = Lazy.force generated in
  let tier1s = Topology.by_klass t Asn.Tier1 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b then
            Alcotest.(check bool) "tier1 pair connected" true
              (Topology.links_between t a b <> []))
        tier1s)
    tier1s

let test_generator_multi_metro_interconnects () =
  (* The detour fix: big AS pairs must interconnect at several
     metros. *)
  let t = Lazy.force generated in
  let tier1s = Topology.by_klass t Asn.Tier1 in
  match tier1s with
  | a :: b :: _ ->
      Alcotest.(check bool) "several sessions" true
        (List.length (Topology.links_between t a b) >= 5)
  | _ -> Alcotest.fail "need at least two tier1s"

let test_generator_eyeballs_have_providers () =
  let t = Lazy.force generated in
  List.iter
    (fun eb ->
      Alcotest.(check bool) "eyeball multihomed or single-homed" true
        (List.length (Topology.providers t eb) >= 1))
    (Topology.by_klass t Asn.Eyeball)

let test_generator_stub_single_homed () =
  let t = Lazy.force generated in
  List.iter
    (fun st ->
      Alcotest.(check int) "one provider" 1
        (List.length (Topology.providers t st)))
    (Topology.by_klass t Asn.Stub)

let test_common_metros () =
  let rng = Sm.create 1 in
  let shared = Generator.common_metros rng ~k:3 [| 1; 2; 3; 4 |] [| 3; 4; 5 |] in
  Alcotest.(check bool) "subset of intersection" true
    (List.for_all (fun m -> List.mem m [ 3; 4 ]) shared);
  Alcotest.(check bool) "nonempty" true (shared <> []);
  Alcotest.(check (list int)) "disjoint footprints" []
    (Generator.common_metros rng ~k:3 [| 1 |] [| 2 |])

let test_common_metro_option () =
  let rng = Sm.create 2 in
  Alcotest.(check (option int)) "singleton intersection" (Some 9)
    (Generator.common_metro rng [| 9; 1 |] [| 9; 2 |]);
  Alcotest.(check (option int)) "disjoint" None
    (Generator.common_metro rng [| 1 |] [| 2 |])

(* ---- Serialize ---- *)

let test_serialize_roundtrip_fixture () =
  let t = Fixture.topo () in
  match Netsim_topo.Serialize.of_string (Netsim_topo.Serialize.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check bool) "ases identical" true
        (Topology.ases t = Topology.ases t');
      Alcotest.(check bool) "links identical" true
        (Topology.links t = Topology.links t')

let test_serialize_roundtrip_generated () =
  let t = Generator.generate Generator.small_params in
  match Netsim_topo.Serialize.of_string (Netsim_topo.Serialize.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check int) "same AS count" (Topology.as_count t)
        (Topology.as_count t');
      Alcotest.(check bool) "links identical" true
        (Topology.links t = Topology.links t');
      Alcotest.(check (list string)) "still valid" []
        (Invariants.check t')

let test_serialize_rejects_garbage () =
  (match Netsim_topo.Serialize.of_string "nonsense record here" with
  | Error e ->
      Alcotest.(check bool) "names the line" true
        (Test_util.contains e "line 1")
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Netsim_topo.Serialize.of_string "as x tier1 T1 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad id"

let test_serialize_comments_and_blanks () =
  let text =
    "# comment\n\nas 0 tier1 A 0\nas 1 stub B 0\nlink 0 1 0 c2p 0 10\n"
  in
  match Netsim_topo.Serialize.of_string text with
  | Error e -> Alcotest.fail e
  | Ok t ->
      Alcotest.(check int) "two ases" 2 (Topology.as_count t);
      Alcotest.(check int) "one link" 1 (Topology.link_count t)

let test_serialize_file_roundtrip () =
  let t = Fixture.topo () in
  let path = Filename.temp_file "beatbgp" ".topo" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Netsim_topo.Serialize.save t ~path;
      match Netsim_topo.Serialize.load ~path with
      | Ok t' ->
          Alcotest.(check bool) "file roundtrip" true
            (Topology.links t = Topology.links t')
      | Error e -> Alcotest.fail e)

let test_serialize_load_missing_file () =
  match Netsim_topo.Serialize.load ~path:"/nonexistent/beatbgp.topo" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file"

(* ---- Invariants ---- *)

let test_invariants_fixture_clean () =
  Alcotest.(check (list string)) "fixture valid" []
    (Invariants.check (Fixture.topo ()))

let test_provider_depth () =
  let t = Fixture.topo () in
  Alcotest.(check (option int)) "tier1 depth 0" (Some 0)
    (Invariants.provider_depth t Fixture.t1a);
  Alcotest.(check (option int)) "transit depth 1" (Some 1)
    (Invariants.provider_depth t Fixture.tr);
  Alcotest.(check (option int)) "stub depth 3" (Some 3)
    (Invariants.provider_depth t Fixture.st)

let test_invariants_detect_orphan () =
  (* A stub with no provider chain must be flagged. *)
  let ases =
    [|
      { Asn.id = 0; klass = Asn.Tier1; name = "t"; footprint = [| 0 |] };
      { Asn.id = 1; klass = Asn.Stub; name = "s"; footprint = [| 0 |] };
    |]
  in
  let t = Topology.make ases [] in
  let violations = Invariants.check t in
  Alcotest.(check bool) "orphan stub flagged" true
    (List.exists
       (fun v -> Test_util.contains v "no provider chain")
       violations)

let test_invariants_detect_missing_clique () =
  let ases =
    [|
      { Asn.id = 0; klass = Asn.Tier1; name = "a"; footprint = [| 0 |] };
      { Asn.id = 1; klass = Asn.Tier1; name = "b"; footprint = [| 0 |] };
    |]
  in
  let t = Topology.make ases [] in
  Alcotest.(check bool) "missing clique flagged" true
    (List.exists
       (fun v -> Test_util.contains v "not interconnected")
       (Invariants.check t))

(* ---- CSR arena consistency across constructors ---- *)

(* Every constructor must leave the shared CSR arena in lockstep with
   the list adjacency: offsets tile the word array, rows decode to the
   same sessions in the same order. *)
let check_csr_matches_lists topo =
  let n = Topology.as_count topo in
  let off = Topology.csr_offsets topo and wrd = Topology.csr_words topo in
  Alcotest.(check int) "offsets length" (n + 1) (Array.length off);
  Alcotest.(check int) "words = 2 * links" (2 * Topology.link_count topo)
    (Array.length wrd);
  Alcotest.(check int) "last offset tiles the arena" (Array.length wrd) off.(n);
  for x = 0 to n - 1 do
    let row = Topology.packed_neighbors topo x in
    Alcotest.(check int)
      (Printf.sprintf "row %d width" x)
      (List.length (Topology.neighbors topo x))
      (Array.length row);
    Array.iteri
      (fun i pn ->
        Alcotest.(check int)
          (Printf.sprintf "row %d word %d in arena" x i)
          wrd.(off.(x) + i) pn)
      row;
    List.iteri
      (fun i (nb : Topology.neighbor) ->
        Alcotest.(check int) "peer" nb.peer (Topology.pn_peer row.(i));
        Alcotest.(check int) "link id" nb.link.Relation.id
          (Topology.pn_link row.(i));
        Alcotest.(check bool) "rel" true (Topology.pn_rel row.(i) = nb.rel))
      (Topology.neighbors topo x)
  done

let test_csr_fixture () = check_csr_matches_lists (Fixture.topo ())

let test_csr_after_remove_links () =
  let topo = Fixture.topo () in
  let failed = Topology.remove_links topo [ Fixture.l_t1_peer; Fixture.l_eb_tr ] in
  check_csr_matches_lists failed;
  (* The surviving link ids are stable, only the arena shrank. *)
  Alcotest.(check int) "two links gone"
    (Topology.link_count topo - 2)
    (Topology.link_count failed)

let test_csr_after_add_as () =
  let topo = Fixture.topo () in
  let grown, id =
    Topology.add_as topo ~klass:Asn.Content ~name:"CDN"
      ~footprint:[| Fixture.ny |]
  in
  (* A fresh AS has an empty row: one extra offset, no extra words. *)
  Alcotest.(check int) "new id is dense" (Topology.as_count topo) id;
  let off = Topology.csr_offsets grown in
  Alcotest.(check int) "empty new row" off.(id) off.(id + 1);
  check_csr_matches_lists grown;
  let linked =
    Topology.add_links grown
      [ (id, Fixture.t1a, Relation.C2p, Fixture.ny, 100.) ]
  in
  check_csr_matches_lists linked

(* of_csr: the zero-copy constructor the mmap snapshot loader uses.
   Rebuilding a topology from its own CSR arena must reproduce the
   boxed adjacency exactly (rows decode lazily), and inconsistent
   arenas must be rejected. *)
let test_of_csr_roundtrip () =
  let topo = Fixture.topo () in
  let rebuilt =
    Topology.of_csr
      ~ases:(Array.copy (Topology.ases topo))
      ~links:(Array.copy (Topology.links topo))
      ~csr_off:(Array.copy (Topology.csr_offsets topo))
      ~csr_words:(Array.copy (Topology.csr_words topo))
  in
  check_csr_matches_lists rebuilt;
  for x = 0 to Topology.as_count topo - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d equal" x)
      true
      (Topology.neighbors rebuilt x = Topology.neighbors topo x)
  done

let test_of_csr_rejects_inconsistent () =
  let topo = Fixture.topo () in
  let ases = Topology.ases topo and links = Topology.links topo in
  let off = Topology.csr_offsets topo and wrd = Topology.csr_words topo in
  let expect_invalid what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: accepted" what
  in
  expect_invalid "offsets wrong length" (fun () ->
      Topology.of_csr ~ases ~links
        ~csr_off:(Array.sub off 0 (Array.length off - 1))
        ~csr_words:wrd);
  expect_invalid "offsets not ending at arena" (fun () ->
      let bad = Array.copy off in
      bad.(Array.length bad - 1) <- bad.(Array.length bad - 1) - 1;
      Topology.of_csr ~ases ~links ~csr_off:bad ~csr_words:wrd);
  expect_invalid "offsets not monotone" (fun () ->
      let bad = Array.copy off in
      bad.(1) <- bad.(1) + Array.length wrd;
      Topology.of_csr ~ases ~links ~csr_off:bad ~csr_words:wrd);
  expect_invalid "word references unknown link" (fun () ->
      let bad = Array.copy wrd in
      bad.(0) <- bad.(0) lxor 1;
      Topology.of_csr ~ases ~links ~csr_off:off ~csr_words:bad);
  expect_invalid "negative word" (fun () ->
      let bad = Array.copy wrd in
      bad.(0) <- -1;
      Topology.of_csr ~ases ~links ~csr_off:off ~csr_words:bad)

let suite =
  [
    Alcotest.test_case "asn home/present" `Quick test_asn_home;
    Alcotest.test_case "asn transit-like" `Quick test_asn_transit_like;
    Alcotest.test_case "relation perspectives" `Quick test_relation_perspectives;
    Alcotest.test_case "relation peering symmetric" `Quick test_relation_peering_symmetric;
    Alcotest.test_case "relation bad endpoint" `Quick test_relation_bad_endpoint;
    Alcotest.test_case "relation is_peering" `Quick test_relation_is_peering;
    Alcotest.test_case "fixture counts" `Quick test_fixture_counts;
    Alcotest.test_case "fixture adjacency" `Quick test_fixture_adjacency;
    Alcotest.test_case "fixture links_between" `Quick test_fixture_links_between;
    Alcotest.test_case "fixture degree" `Quick test_fixture_degree;
    Alcotest.test_case "by_klass" `Quick test_by_klass;
    Alcotest.test_case "ases_at_metro" `Quick test_ases_at_metro;
    Alcotest.test_case "add_as/add_links" `Quick test_add_as_and_links;
    Alcotest.test_case "reject self link" `Quick test_make_rejects_self_link;
    Alcotest.test_case "reject sparse ids" `Quick test_make_rejects_sparse_ids;
    Alcotest.test_case "generator counts" `Slow test_generator_counts;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator seed sensitivity" `Quick test_generator_seed_changes_topology;
    Alcotest.test_case "generator invariants" `Slow test_generator_invariants;
    Alcotest.test_case "small generator invariants" `Quick test_generator_small_invariants;
    Alcotest.test_case "tier1 clique" `Slow test_generator_tier1_clique;
    Alcotest.test_case "multi-metro interconnects" `Slow test_generator_multi_metro_interconnects;
    Alcotest.test_case "eyeball providers" `Slow test_generator_eyeballs_have_providers;
    Alcotest.test_case "stub single-homed" `Slow test_generator_stub_single_homed;
    Alcotest.test_case "common_metros" `Quick test_common_metros;
    Alcotest.test_case "common_metro option" `Quick test_common_metro_option;
    Alcotest.test_case "serialize fixture roundtrip" `Quick test_serialize_roundtrip_fixture;
    Alcotest.test_case "serialize generated roundtrip" `Quick test_serialize_roundtrip_generated;
    Alcotest.test_case "serialize rejects garbage" `Quick test_serialize_rejects_garbage;
    Alcotest.test_case "serialize comments" `Quick test_serialize_comments_and_blanks;
    Alcotest.test_case "serialize file roundtrip" `Quick test_serialize_file_roundtrip;
    Alcotest.test_case "serialize missing file" `Quick test_serialize_load_missing_file;
    Alcotest.test_case "fixture invariants" `Quick test_invariants_fixture_clean;
    Alcotest.test_case "provider depth" `Quick test_provider_depth;
    Alcotest.test_case "detect orphan" `Quick test_invariants_detect_orphan;
    Alcotest.test_case "detect missing clique" `Quick test_invariants_detect_missing_clique;
    Alcotest.test_case "CSR matches list adjacency" `Quick test_csr_fixture;
    Alcotest.test_case "of_csr round-trips the arena" `Quick
      test_of_csr_roundtrip;
    Alcotest.test_case "of_csr rejects inconsistent arenas" `Quick
      test_of_csr_rejects_inconsistent;
    Alcotest.test_case "CSR rebuilt by remove_links" `Quick test_csr_after_remove_links;
    Alcotest.test_case "CSR extended by add_as/add_links" `Quick test_csr_after_add_as;
  ]
