(* Tests for the statistics substrate: quantiles, summaries, CDFs,
   confidence intervals, histograms, series. *)

module Quantile = Netsim_stats.Quantile
module Summary = Netsim_stats.Summary
module Cdf = Netsim_stats.Cdf
module Ci = Netsim_stats.Ci
module Histogram = Netsim_stats.Histogram
module Series = Netsim_stats.Series
module Ascii_plot = Netsim_stats.Ascii_plot
module Sm = Netsim_prng.Splitmix

let checkf = Alcotest.(check (float 1e-9))
let checkf_loose = Alcotest.(check (float 1e-6))

(* ---- Quantile ---- *)

let test_median_odd () = checkf "median odd" 3. (Quantile.median [| 5.; 1.; 3. |])

let test_median_even () =
  checkf "median even (interpolated)" 2.5 (Quantile.median [| 1.; 2.; 3.; 4. |])

let test_quantile_extremes () =
  let s = [| 10.; 20.; 30. |] in
  checkf "q0 = min" 10. (Quantile.quantile s 0.);
  checkf "q1 = max" 30. (Quantile.quantile s 1.)

let test_quantile_interpolation () =
  checkf "q0.25 of 0..4" 1. (Quantile.quantile [| 0.; 1.; 2.; 3.; 4. |] 0.25)

let test_quantile_single () =
  checkf "singleton" 42. (Quantile.quantile [| 42. |] 0.7)

let test_quantile_unsorted_input_untouched () =
  let s = [| 3.; 1.; 2. |] in
  ignore (Quantile.quantile s 0.5);
  Alcotest.(check (array (float 0.))) "input preserved" [| 3.; 1.; 2. |] s

let test_quantile_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.quantile: empty sample")
    (fun () -> ignore (Quantile.quantile [||] 0.5))

let test_quantile_out_of_range () =
  Alcotest.check_raises "q>1" (Invalid_argument "Quantile.quantile: q out of range")
    (fun () -> ignore (Quantile.quantile [| 1. |] 1.5))

let test_weighted_quantile_uniform_weights () =
  let pairs = [| (1., 1.); (2., 1.); (3., 1.) |] in
  checkf "uniform weights = plain median" 2. (Quantile.weighted_quantile pairs 0.5)

let test_weighted_quantile_skewed () =
  (* 90 % of the weight sits on value 10. *)
  let pairs = [| (1., 0.1); (10., 0.9) |] in
  checkf "weight dominates" 10. (Quantile.weighted_quantile pairs 0.5)

let test_iqr () =
  let s = Array.init 101 float_of_int in
  checkf "iqr of 0..100" 50. (Quantile.iqr s)

(* ---- Summary ---- *)

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Summary.count s);
  checkf "mean" 2.5 (Summary.mean s);
  checkf_loose "variance" (5. /. 3.) (Summary.variance s);
  checkf "min" 1. (Summary.min s);
  checkf "max" 4. (Summary.max s);
  checkf "total" 10. (Summary.total s)

let test_summary_empty () =
  let s = Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Summary.mean s))

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () and c = Summary.create () in
  let xs = [ 1.; 5.; 2. ] and ys = [ 9.; 3. ] in
  List.iter (Summary.add a) xs;
  List.iter (Summary.add b) ys;
  List.iter (Summary.add c) (xs @ ys);
  let m = Summary.merge a b in
  Alcotest.(check int) "merged count" (Summary.count c) (Summary.count m);
  checkf_loose "merged mean" (Summary.mean c) (Summary.mean m);
  checkf_loose "merged var" (Summary.variance c) (Summary.variance m)

let test_summary_merge_empty () =
  let a = Summary.create () and b = Summary.create () in
  Summary.add b 7.;
  let m = Summary.merge a b in
  checkf "merge with empty" 7. (Summary.mean m)

let test_pretty_float () =
  let check what expect v =
    Alcotest.(check string) what expect (Summary.pretty_float v)
  in
  check "integer" "42" 42.;
  check "negative integer" "-3" (-3.);
  check "zero" "0" 0.;
  check "fraction" "2.5" 2.5;
  check "small" "0.001234" 0.001234;
  check "large integer uses %g" "1.235e+08" 123456789.;
  check "nan" "nan" Float.nan;
  check "inf" "inf" Float.infinity;
  check "-inf" "-inf" Float.neg_infinity

let test_one_line () =
  let s = Summary.create () in
  Alcotest.(check string) "empty" "n=0" (Summary.one_line s);
  List.iter (Summary.add s) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check string)
    "basic" "n=4 mean=2.5 min=1 max=4 total=10" (Summary.one_line s)

(* ---- Cdf ---- *)

let test_cdf_fraction_below () =
  let c = Cdf.of_samples [| 1.; 2.; 3.; 4. |] in
  checkf "below 2.5" 0.5 (Cdf.fraction_below c 2.5);
  checkf "below 0" 0. (Cdf.fraction_below c 0.);
  checkf "below 10" 1. (Cdf.fraction_below c 10.);
  checkf "at 2 (inclusive)" 0.5 (Cdf.fraction_below c 2.)

let test_cdf_fraction_above () =
  let c = Cdf.of_samples [| 1.; 2.; 3.; 4. |] in
  checkf "above 2" 0.5 (Cdf.fraction_above c 2.)

let test_cdf_weighted () =
  let c = Cdf.of_weighted [| (0., 9.); (100., 1.) |] in
  checkf "weighted below 50" 0.9 (Cdf.fraction_below c 50.);
  checkf "weighted median" 0. (Cdf.median c)

let test_cdf_quantile () =
  let c = Cdf.of_samples (Array.init 100 float_of_int) in
  Alcotest.(check bool) "q0.9 around 89-90" true
    (Cdf.quantile c 0.9 >= 88. && Cdf.quantile c 0.9 <= 91.)

let test_cdf_mean () =
  let c = Cdf.of_weighted [| (10., 1.); (20., 3.) |] in
  checkf "weighted mean" 17.5 (Cdf.mean c)

let test_cdf_min_max () =
  let c = Cdf.of_samples [| 5.; -2.; 8. |] in
  checkf "min" (-2.) (Cdf.min_value c);
  checkf "max" 8. (Cdf.max_value c)

let test_cdf_points_monotone () =
  let c = Cdf.of_samples (Array.init 1000 (fun i -> float_of_int (i mod 37))) in
  let pts = Cdf.cdf_points c in
  Alcotest.(check bool) "bounded by max_points" true (List.length pts <= 200);
  let rec mono = function
    | (x1, y1) :: ((x2, y2) :: _ as rest) ->
        x1 <= x2 && y1 <= y2 && mono rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (mono pts)

let test_cdf_ccdf_complement () =
  let c = Cdf.of_samples [| 1.; 2.; 3. |] in
  let cdf = Cdf.cdf_points c and ccdf = Cdf.ccdf_points c in
  List.iter2
    (fun (x1, f) (x2, g) ->
      checkf "same x" x1 x2;
      checkf "complement" 1. (f +. g))
    cdf ccdf

let test_cdf_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Cdf.of_weighted: empty sample")
    (fun () -> ignore (Cdf.of_samples [||]))

let test_cdf_rejects_negative_weight () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Cdf.of_weighted: negative weight") (fun () ->
      ignore (Cdf.of_weighted [| (1., -1.) |]))

(* ---- Ci ---- *)

let test_ci_contains_median () =
  let rng = Sm.create 31 in
  let samples =
    Array.init 200 (fun _ -> Netsim_prng.Dist.normal rng ~mean:50. ~std:5.)
  in
  let iv = Ci.median_binomial samples in
  Alcotest.(check bool) "median inside its CI" true
    (Ci.contains iv (Quantile.median samples))

let test_ci_width_shrinks () =
  let rng = Sm.create 32 in
  let mk n = Array.init n (fun _ -> Netsim_prng.Dist.normal rng ~mean:0. ~std:1.) in
  let small = Ci.median_binomial (mk 20) in
  let large = Ci.median_binomial (mk 2000) in
  Alcotest.(check bool) "more samples, tighter CI" true
    (Ci.width large < Ci.width small)

let test_ci_tiny_sample () =
  let iv = Ci.median_binomial [| 3.; 1. |] in
  checkf "lo=min" 1. iv.Ci.lo;
  checkf "hi=max" 3. iv.Ci.hi

let test_ci_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Ci.median_binomial: empty sample") (fun () ->
      ignore (Ci.median_binomial [||]))

let test_bootstrap_contains_median () =
  let rng = Sm.create 33 in
  let samples = Array.init 300 (fun i -> float_of_int (i mod 17)) in
  let iv = Ci.bootstrap_median ~rng samples in
  Alcotest.(check bool) "median inside bootstrap CI" true
    (Ci.contains iv (Quantile.median samples))

(* ---- Histogram ---- *)

let test_histogram_binning () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  Histogram.add h 0.5;
  Histogram.add h 0.9;
  Histogram.add h 5.5;
  checkf "bin 0 weight" 2. (Histogram.bin_weight h 0);
  checkf "bin 5 weight" 1. (Histogram.bin_weight h 5);
  checkf "bin center" 0.5 (Histogram.bin_center h 0);
  Alcotest.(check int) "mode bin" 0 (Histogram.mode_bin h)

let test_histogram_overflow () =
  let h = Histogram.create ~lo:0. ~hi:1. ~bins:2 in
  Histogram.add h (-5.);
  Histogram.add h 5.;
  checkf "underflow" 1. (Histogram.underflow h);
  checkf "overflow" 1. (Histogram.overflow h);
  checkf "total includes both" 2. (Histogram.total h)

let test_histogram_weights () =
  let h = Histogram.create ~lo:0. ~hi:4. ~bins:4 in
  Histogram.add ~weight:2.5 h 1.5;
  checkf "weighted bin" 2.5 (Histogram.bin_weight h 1)

let test_histogram_normalized () =
  let h = Histogram.create ~lo:0. ~hi:2. ~bins:2 in
  Histogram.add h 0.5;
  Histogram.add h 1.5;
  Histogram.add h 1.6;
  let norm = Histogram.normalized h in
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. norm in
  checkf_loose "fractions sum to 1 (no overflow)" 1. total

let test_histogram_invalid () =
  Alcotest.check_raises "bins 0"
    (Invalid_argument "Histogram.create: bins must be positive") (fun () ->
      ignore (Histogram.create ~lo:0. ~hi:1. ~bins:0))

(* ---- Series ---- *)

let test_series_csv () =
  let s = Series.make "a" [ (1., 2.); (3., 4.) ] in
  let csv = Series.to_csv [ s ] in
  Alcotest.(check string) "csv" "series,x,y\na,1,2\na,3,4\n" csv

let test_series_interpolate () =
  let s = Series.make "a" [ (0., 0.); (10., 100.) ] in
  Alcotest.(check (option (float 1e-9))) "midpoint" (Some 50.)
    (Series.interpolate s 5.);
  Alcotest.(check (option (float 1e-9))) "outside" None
    (Series.interpolate s 20.)

let test_series_ranges () =
  let s1 = Series.make "a" [ (0., 5.); (2., 1.) ] in
  let s2 = Series.make "b" [ (-1., 3.) ] in
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "x range"
    (Some (-1., 2.))
    (Series.x_range [ s1; s2 ]);
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "y range"
    (Some (1., 5.))
    (Series.y_range [ s1; s2 ])

let test_series_crossing () =
  let s = Series.make "a" [ (0., 0.); (10., 1.) ] in
  Alcotest.(check (option (float 1e-9))) "crosses 0.5 at 5" (Some 5.)
    (Series.crossing s 0.5)

let test_series_empty_ranges () =
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "empty" None
    (Series.x_range [ Series.make "e" [] ])

(* ---- Ascii plot ---- *)

let test_plot_contains_title_and_legend () =
  let s = Series.make "demo-series" [ (0., 0.); (1., 1.) ] in
  let out = Ascii_plot.plot ~title:"my plot" [ s ] in
  Alcotest.(check bool) "has title" true
    (String.length out > 0
    && String.sub out 0 7 = "my plot");
  Alcotest.(check bool) "mentions series" true
    (Test_util.contains out "demo-series")

let test_plot_empty () =
  let out = Ascii_plot.plot ~title:"t" [] in
  Alcotest.(check bool) "reports no data" true
    (Test_util.contains out "(no data)")

(* ---- qcheck properties ---- *)

let prop_quantile_within_bounds =
  QCheck.Test.make ~name:"quantile within [min,max]" ~count:300
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.)) (float_bound_inclusive 1.))
    (fun (l, q) ->
      let arr = Array.of_list l in
      let v = Quantile.quantile arr q in
      let lo = Array.fold_left min infinity arr in
      let hi = Array.fold_left max neg_infinity arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"CDF monotone in x" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (float_bound_inclusive 100.))
    (fun l ->
      let c = Cdf.of_samples (Array.of_list l) in
      let a = Cdf.fraction_below c 20. and b = Cdf.fraction_below c 60. in
      a <= b)

let prop_summary_mean_bounds =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:300
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 500.))
    (fun l ->
      let s = Summary.create () in
      List.iter (Summary.add s) l;
      Summary.mean s >= Summary.min s -. 1e-9
      && Summary.mean s <= Summary.max s +. 1e-9)

let suite =
  [
    Alcotest.test_case "median odd" `Quick test_median_odd;
    Alcotest.test_case "median even" `Quick test_median_even;
    Alcotest.test_case "quantile extremes" `Quick test_quantile_extremes;
    Alcotest.test_case "quantile interpolation" `Quick test_quantile_interpolation;
    Alcotest.test_case "quantile singleton" `Quick test_quantile_single;
    Alcotest.test_case "quantile input untouched" `Quick test_quantile_unsorted_input_untouched;
    Alcotest.test_case "quantile empty" `Quick test_quantile_empty;
    Alcotest.test_case "quantile out of range" `Quick test_quantile_out_of_range;
    Alcotest.test_case "weighted quantile uniform" `Quick test_weighted_quantile_uniform_weights;
    Alcotest.test_case "weighted quantile skewed" `Quick test_weighted_quantile_skewed;
    Alcotest.test_case "iqr" `Quick test_iqr;
    Alcotest.test_case "summary basic" `Quick test_summary_basic;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    Alcotest.test_case "summary merge empty" `Quick test_summary_merge_empty;
    Alcotest.test_case "summary pretty float" `Quick test_pretty_float;
    Alcotest.test_case "summary one line" `Quick test_one_line;
    Alcotest.test_case "cdf fraction below" `Quick test_cdf_fraction_below;
    Alcotest.test_case "cdf fraction above" `Quick test_cdf_fraction_above;
    Alcotest.test_case "cdf weighted" `Quick test_cdf_weighted;
    Alcotest.test_case "cdf quantile" `Quick test_cdf_quantile;
    Alcotest.test_case "cdf mean" `Quick test_cdf_mean;
    Alcotest.test_case "cdf min max" `Quick test_cdf_min_max;
    Alcotest.test_case "cdf points monotone" `Quick test_cdf_points_monotone;
    Alcotest.test_case "ccdf complement" `Quick test_cdf_ccdf_complement;
    Alcotest.test_case "cdf rejects empty" `Quick test_cdf_rejects_empty;
    Alcotest.test_case "cdf rejects negative" `Quick test_cdf_rejects_negative_weight;
    Alcotest.test_case "ci contains median" `Quick test_ci_contains_median;
    Alcotest.test_case "ci width shrinks" `Quick test_ci_width_shrinks;
    Alcotest.test_case "ci tiny sample" `Quick test_ci_tiny_sample;
    Alcotest.test_case "ci empty" `Quick test_ci_empty;
    Alcotest.test_case "bootstrap contains median" `Quick test_bootstrap_contains_median;
    Alcotest.test_case "histogram binning" `Quick test_histogram_binning;
    Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow;
    Alcotest.test_case "histogram weights" `Quick test_histogram_weights;
    Alcotest.test_case "histogram normalized" `Quick test_histogram_normalized;
    Alcotest.test_case "histogram invalid" `Quick test_histogram_invalid;
    Alcotest.test_case "series csv" `Quick test_series_csv;
    Alcotest.test_case "series interpolate" `Quick test_series_interpolate;
    Alcotest.test_case "series ranges" `Quick test_series_ranges;
    Alcotest.test_case "series crossing" `Quick test_series_crossing;
    Alcotest.test_case "series empty ranges" `Quick test_series_empty_ranges;
    Alcotest.test_case "plot title+legend" `Quick test_plot_contains_title_and_legend;
    Alcotest.test_case "plot empty" `Quick test_plot_empty;
    QCheck_alcotest.to_alcotest prop_quantile_within_bounds;
    QCheck_alcotest.to_alcotest prop_cdf_monotone;
    QCheck_alcotest.to_alcotest prop_summary_mean_bounds;
  ]
