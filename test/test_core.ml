(* Integration tests: scenario builders, figure experiments on the
   small topology, claim machinery and the hypothesis analyses.

   These run the real pipelines end to end at reduced scale, checking
   structural properties that must hold at any scale.  The
   full-scale paper-shape checks live in test_claims.ml. *)

module S = Beatbgp.Scenario
module Figure = Beatbgp.Figure
module Claims = Beatbgp.Claims
module Series = Netsim_stats.Series
module Prefix = Netsim_traffic.Prefix
module Egress = Netsim_cdn.Egress

let sizes = S.test_sizes

(* Scenario caches so each pipeline builds once. *)
let fb = lazy (S.facebook ~sizes ())
let ms = lazy (S.microsoft ~sizes ())
let gc = lazy (S.google ~sizes ~n_vantage:200 ())
let fig1 = lazy (Beatbgp.Fig1_pop_egress.run (Lazy.force fb))

(* ---- Scenario builders ---- *)

let test_facebook_scenario_shape () =
  let fb = Lazy.force fb in
  Alcotest.(check bool) "has entries" true (Array.length fb.S.fb_entries > 0);
  Alcotest.(check bool) "entries <= prefixes" true
    (Array.length fb.S.fb_entries <= Array.length fb.S.fb_prefixes);
  Array.iter
    (fun (e : Egress.entry) ->
      Alcotest.(check bool) "options nonempty" true (e.Egress.options <> []))
    fb.S.fb_entries

let test_facebook_deterministic () =
  let a = S.facebook ~sizes () and b = S.facebook ~sizes () in
  let ids x =
    Array.to_list x.S.fb_entries
    |> List.map (fun (e : Egress.entry) -> e.Egress.prefix.Prefix.id)
  in
  Alcotest.(check (list int)) "same entries" (ids a) (ids b)

let test_microsoft_scenario_shape () =
  let ms = Lazy.force ms in
  Alcotest.(check bool) "sites deployed" true
    (List.length (Netsim_cdn.Anycast.sites ms.S.ms_system) >= 10);
  Alcotest.(check int) "prefixes generated" sizes.S.n_prefixes
    (Array.length ms.S.ms_prefixes)

let test_google_scenario_shape () =
  let gc = Lazy.force gc in
  Alcotest.(check bool) "vantage points selected" true
    (Array.length gc.S.gc_vantage > 50)

let test_top_metros () =
  let l = S.top_metros 5 in
  Alcotest.(check int) "five metros" 5 (List.length l);
  (* Most populous metro globally is Tokyo. *)
  let tokyo = (Netsim_geo.World.find_exn "Tokyo").Netsim_geo.City.id in
  Alcotest.(check bool) "tokyo present" true (List.mem tokyo l)

let test_top_metros_continent_filter () =
  List.iter
    (fun m ->
      Alcotest.(check bool) "european" true
        (Netsim_geo.World.cities.(m).Netsim_geo.City.continent
        = Netsim_geo.Region.Europe))
    (S.top_metros ~continents:[ Netsim_geo.Region.Europe ] 6)

let test_spread_metros_covers_continents () =
  let metros = S.spread_metros 40 in
  List.iter
    (fun continent ->
      Alcotest.(check bool)
        (Printf.sprintf "%s covered"
           (Netsim_geo.Region.continent_to_string continent))
        true
        (List.exists
           (fun m ->
             Netsim_geo.World.cities.(m).Netsim_geo.City.continent = continent)
           metros))
    Netsim_geo.Region.all_continents

(* ---- Figure container ---- *)

let test_figure_stats_access () =
  let f =
    Figure.make ~id:"x" ~title:"t" ~x_label:"x" ~y_label:"y"
      ~stats:[ ("a", 1.5) ]
      [ Series.make "s" [ (0., 0.) ] ]
  in
  Alcotest.(check (float 1e-9)) "stat" 1.5 (Figure.stat f "a");
  Alcotest.(check (option (float 1e-9))) "stat_opt missing" None
    (Figure.stat_opt f "zzz");
  Alcotest.check_raises "stat missing" Not_found (fun () ->
      ignore (Figure.stat f "zzz"))

let test_figure_render_and_csv () =
  let f =
    Figure.make ~id:"demo" ~title:"demo title" ~x_label:"x" ~y_label:"y"
      ~stats:[ ("k", 2.) ]
      [ Series.make "sname" [ (0., 0.); (1., 1.) ] ]
  in
  let out = Figure.render f in
  Alcotest.(check bool) "title shown" true
    (Test_util.contains out "demo title");
  Alcotest.(check bool) "stats shown" true (Test_util.contains out "k");
  Alcotest.(check bool) "csv has header" true
    (Test_util.contains (Figure.to_csv f) "series,x,y")

(* ---- Fig1 on the small scenario ---- *)

let test_fig1_structure () =
  let r = Lazy.force fig1 in
  let f = r.Beatbgp.Fig1_pop_egress.figure in
  Alcotest.(check string) "id" "fig1" f.Figure.id;
  Alcotest.(check int) "three series (line + CI band)" 3
    (List.length f.Figure.series);
  Alcotest.(check bool) "has measurements" true
    (r.Beatbgp.Fig1_pop_egress.window_results <> [])

let test_fig1_weights_are_traffic () =
  let r = Lazy.force fig1 in
  List.iter
    (fun (_, w) -> Alcotest.(check bool) "positive weight" true (w > 0.))
    (Beatbgp.Fig1_pop_egress.improvements r)

let test_fig1_stats_sane () =
  let f = (Lazy.force fig1).Beatbgp.Fig1_pop_egress.figure in
  let v = Figure.stat f "fraction_improvable_5ms" in
  Alcotest.(check bool) "fraction in [0,1]" true (v >= 0. && v <= 1.);
  let b = Figure.stat f "fraction_bgp_better_or_equal" in
  Alcotest.(check bool) "bgp good for majority even at small scale" true
    (b > 0.3)

let test_fig1_ci_band_brackets_line () =
  let f = (Lazy.force fig1).Beatbgp.Fig1_pop_egress.figure in
  match f.Figure.series with
  | [ line; lower; upper ] ->
      (* At x = 0 the lower-bound CDF must be <= the line <= upper
         bound... note: lower CI bound produces a CDF shifted left,
         hence a *higher* CDF value at any x. *)
      let at x s = Series.interpolate s x in
      (match (at 0. line, at 0. lower, at 0. upper) with
      | Some l, Some lo, Some hi ->
          Alcotest.(check bool) "band ordering" true (hi <= l && l <= lo)
      | _ -> ())
  | _ -> Alcotest.fail "expected three series"

(* ---- Fig2 ---- *)

let test_fig2_structure () =
  let r = Beatbgp.Fig2_route_classes.run (Lazy.force fb) in
  let f = r.Beatbgp.Fig2_route_classes.figure in
  Alcotest.(check string) "id" "fig2" f.Figure.id;
  Alcotest.(check bool) "peer vs transit measured" true
    (r.Beatbgp.Fig2_route_classes.peer_vs_transit <> [])

(* ---- Fig3 ---- *)

let fig3 = lazy (Beatbgp.Fig3_anycast_gap.run (Lazy.force ms))

let test_fig3_structure () =
  let r = Lazy.force fig3 in
  Alcotest.(check string) "id" "fig3" r.Beatbgp.Fig3_anycast_gap.figure.Figure.id;
  Alcotest.(check bool) "clients measured" true
    (List.length r.Beatbgp.Fig3_anycast_gap.clients > 10)

let test_fig3_best_unicast_definition () =
  (* best unicast can beat anycast but anycast is itself one of the
     catchment outcomes; the recorded gap must be >= 0 by the max. *)
  List.iter
    (fun (c : Beatbgp.Fig3_anycast_gap.per_client) ->
      Alcotest.(check bool) "rtt values positive" true
        (c.Beatbgp.Fig3_anycast_gap.anycast_ms > 0.
        && c.Beatbgp.Fig3_anycast_gap.best_unicast_ms > 0.))
    (Lazy.force fig3).Beatbgp.Fig3_anycast_gap.clients

let test_fig3_sites_are_deployed () =
  let sites = Netsim_cdn.Anycast.sites (Lazy.force ms).S.ms_system in
  List.iter
    (fun (c : Beatbgp.Fig3_anycast_gap.per_client) ->
      Alcotest.(check bool) "anycast site deployed" true
        (List.mem c.Beatbgp.Fig3_anycast_gap.anycast_site sites);
      Alcotest.(check bool) "best site deployed" true
        (List.mem c.Beatbgp.Fig3_anycast_gap.best_site sites))
    (Lazy.force fig3).Beatbgp.Fig3_anycast_gap.clients

(* ---- Fig4 ---- *)

let fig4 = lazy (Beatbgp.Fig4_dns_redirection.run (Lazy.force ms))

let test_fig4_structure () =
  let r = Lazy.force fig4 in
  Alcotest.(check string) "id" "fig4"
    r.Beatbgp.Fig4_dns_redirection.figure.Figure.id;
  Alcotest.(check int) "two series (median + p75)" 2
    (List.length r.Beatbgp.Fig4_dns_redirection.figure.Figure.series);
  let f = r.Beatbgp.Fig4_dns_redirection.redirected_fraction in
  Alcotest.(check bool) "redirected fraction bounded" true (f >= 0. && f <= 1.)

let test_fig4_anycast_choices_are_zero_improvement () =
  (* Clients whose choice is anycast compare anycast against itself:
     improvement must be ~0 (same flow, same congestion; only sampling
     jitter differs). *)
  List.iter
    (fun (c : Beatbgp.Fig4_dns_redirection.per_client) ->
      match c.Beatbgp.Fig4_dns_redirection.choice with
      | Netsim_cdn.Redirector.Use_anycast ->
          Alcotest.(check bool) "near-zero improvement" true
            (Float.abs c.Beatbgp.Fig4_dns_redirection.improvement_median_ms
            < 15.)
      | Netsim_cdn.Redirector.Use_site _ -> ())
    (Lazy.force fig4).Beatbgp.Fig4_dns_redirection.clients

(* ---- Fig5 ---- *)

let fig5 = lazy (Beatbgp.Fig5_cloud_tiers.run (Lazy.force gc))

let test_fig5_structure () =
  let r = Lazy.force fig5 in
  Alcotest.(check string) "id" "fig5" r.Beatbgp.Fig5_cloud_tiers.figure.Figure.id;
  Alcotest.(check bool) "qualifying VPs" true
    (r.Beatbgp.Fig5_cloud_tiers.qualifying_vps > 0);
  Alcotest.(check bool) "countries measured" true
    (List.length r.Beatbgp.Fig5_cloud_tiers.countries > 3)

let test_fig5_ingress_contrast () =
  let r = Lazy.force fig5 in
  Alcotest.(check bool) "premium enters nearer than standard" true
    (r.Beatbgp.Fig5_cloud_tiers.premium_ingress_within_400km
    > r.Beatbgp.Fig5_cloud_tiers.standard_ingress_within_400km)

let test_fig5_render_map () =
  let out = Beatbgp.Fig5_cloud_tiers.render_map (Lazy.force fig5) in
  Alcotest.(check bool) "table header" true
    (Test_util.contains out "std-prem")

(* ---- Claims ---- *)

let test_claims_pass_fail_logic () =
  let c =
    {
      Claims.id = "x"; description = "d"; paper_value = "p"; measured = 0.5;
      band = (0., 1.);
    }
  in
  Alcotest.(check bool) "inside band" true (Claims.passes c);
  Alcotest.(check bool) "outside band" false
    (Claims.passes { c with Claims.measured = 2. });
  Alcotest.(check bool) "nan fails" false
    (Claims.passes { c with Claims.measured = nan })

let test_claims_of_figures_nonempty () =
  List.iter
    (fun (fig : Figure.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "claims for %s" fig.Figure.id)
        true
        (Claims.of_figure fig <> []))
    [
      (Lazy.force fig1).Beatbgp.Fig1_pop_egress.figure;
      (Lazy.force fig3).Beatbgp.Fig3_anycast_gap.figure;
      (Lazy.force fig4).Beatbgp.Fig4_dns_redirection.figure;
      (Lazy.force fig5).Beatbgp.Fig5_cloud_tiers.figure;
    ]

let test_claims_render () =
  let claims =
    Claims.of_figure (Lazy.force fig1).Beatbgp.Fig1_pop_egress.figure
  in
  let out = Claims.render claims in
  Alcotest.(check bool) "mentions PASS or FAIL" true
    (Test_util.contains out "PASS" || Test_util.contains out "FAIL")

let test_claims_unknown_figure_empty () =
  let f = Figure.make ~id:"nope" ~title:"" ~x_label:"" ~y_label:"" [] in
  Alcotest.(check int) "no claims" 0 (List.length (Claims.of_figure f))

(* ---- Degrade-together analysis ---- *)

let degrade = lazy (Beatbgp.Degrade_together.analyze (Lazy.force fig1))

let test_degrade_fractions_bounded () =
  let d = Lazy.force degrade in
  let in01 v = v >= 0. && v <= 1. in
  Alcotest.(check bool) "shared" true
    (in01 d.Beatbgp.Degrade_together.shared_degradation);
  Alcotest.(check bool) "degraded" true
    (in01 d.Beatbgp.Degrade_together.degraded_window_fraction);
  Alcotest.(check bool) "improvable" true
    (in01 d.Beatbgp.Degrade_together.improvable_window_fraction);
  Alcotest.(check bool) "persistent share" true
    (in01 d.Beatbgp.Degrade_together.persistent_share_of_wins)

let test_degrade_covers_all_pairs () =
  let d = Lazy.force degrade in
  let measured_pairs =
    List.length d.Beatbgp.Degrade_together.pairs
  in
  Alcotest.(check bool) "pairs classified" true (measured_pairs > 0)

let test_degrade_paper_direction () =
  (* The paper: degradation is more prevalent than improvement
     opportunity.  At the tiny test scale the ratio is noisy, so the
     check here only guards against gross inversion; the strict
     direction check runs at full scale in test_claims.ml. *)
  let d = Lazy.force degrade in
  Alcotest.(check bool) "degradation occurs at all" true
    (d.Beatbgp.Degrade_together.degraded_window_fraction > 0.)

(* ---- Wan-fraction analysis ---- *)

let test_wanfrac_runs () =
  let r = Beatbgp.Wan_fraction.run (Lazy.force gc) in
  Alcotest.(check bool) "points" true (r.Beatbgp.Wan_fraction.points <> []);
  Alcotest.(check bool) "correlation in [-1,1]" true
    (r.Beatbgp.Wan_fraction.correlation >= -1.
    && r.Beatbgp.Wan_fraction.correlation <= 1.);
  List.iter
    (fun (p : Beatbgp.Wan_fraction.vp_point) ->
      Alcotest.(check bool) "fraction in (0,1]" true
        (p.Beatbgp.Wan_fraction.single_wan_fraction > 0.
        && p.Beatbgp.Wan_fraction.single_wan_fraction <= 1.))
    r.Beatbgp.Wan_fraction.points

let suite =
  [
    Alcotest.test_case "facebook scenario" `Slow test_facebook_scenario_shape;
    Alcotest.test_case "facebook deterministic" `Slow test_facebook_deterministic;
    Alcotest.test_case "microsoft scenario" `Slow test_microsoft_scenario_shape;
    Alcotest.test_case "google scenario" `Slow test_google_scenario_shape;
    Alcotest.test_case "top metros" `Quick test_top_metros;
    Alcotest.test_case "top metros filter" `Quick test_top_metros_continent_filter;
    Alcotest.test_case "spread metros" `Quick test_spread_metros_covers_continents;
    Alcotest.test_case "figure stats" `Quick test_figure_stats_access;
    Alcotest.test_case "figure render/csv" `Quick test_figure_render_and_csv;
    Alcotest.test_case "fig1 structure" `Slow test_fig1_structure;
    Alcotest.test_case "fig1 weights" `Slow test_fig1_weights_are_traffic;
    Alcotest.test_case "fig1 stats sane" `Slow test_fig1_stats_sane;
    Alcotest.test_case "fig1 CI band" `Slow test_fig1_ci_band_brackets_line;
    Alcotest.test_case "fig2 structure" `Slow test_fig2_structure;
    Alcotest.test_case "fig3 structure" `Slow test_fig3_structure;
    Alcotest.test_case "fig3 rtts positive" `Slow test_fig3_best_unicast_definition;
    Alcotest.test_case "fig3 sites deployed" `Slow test_fig3_sites_are_deployed;
    Alcotest.test_case "fig4 structure" `Slow test_fig4_structure;
    Alcotest.test_case "fig4 anycast self-compare" `Slow test_fig4_anycast_choices_are_zero_improvement;
    Alcotest.test_case "fig5 structure" `Slow test_fig5_structure;
    Alcotest.test_case "fig5 ingress contrast" `Slow test_fig5_ingress_contrast;
    Alcotest.test_case "fig5 render map" `Slow test_fig5_render_map;
    Alcotest.test_case "claims pass/fail" `Quick test_claims_pass_fail_logic;
    Alcotest.test_case "claims per figure" `Slow test_claims_of_figures_nonempty;
    Alcotest.test_case "claims render" `Slow test_claims_render;
    Alcotest.test_case "claims unknown figure" `Quick test_claims_unknown_figure_empty;
    Alcotest.test_case "degrade bounded" `Slow test_degrade_fractions_bounded;
    Alcotest.test_case "degrade pairs" `Slow test_degrade_covers_all_pairs;
    Alcotest.test_case "degrade direction" `Slow test_degrade_paper_direction;
    Alcotest.test_case "wanfrac runs" `Slow test_wanfrac_runs;
  ]
