let () =
  Alcotest.run "beatbgp"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("obs", Test_obs.suite);
      ("par", Test_par.suite);
      ("geo", Test_geo.suite);
      ("topo", Test_topo.suite);
      ("bgp", Test_bgp.suite);
      ("rib-cache", Test_rib_cache.suite);
      ("provenance", Test_provenance.suite);
      ("latency", Test_latency.suite);
      ("traffic", Test_traffic.suite);
      ("measure", Test_measure.suite);
      ("cdn", Test_cdn.suite);
      ("wan", Test_wan.suite);
      ("core", Test_core.suite);
      ("edge-cases", Test_edge_cases.suite);
      ("scheme", Test_scheme.suite);
      ("properties", Test_properties.suite);
      ("scale", Test_scale.suite);
      ("extensions", Test_extensions.suite);
      ("dynamics", Test_dynamics.suite);
      ("serve", Test_serve.suite);
      ("bench-trend", Test_trend.suite);
      ("paper-claims", Test_claims.suite);
    ]
