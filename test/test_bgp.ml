(* BGP engine tests on the hand-built fixture (known-by-construction
   routes) plus valley-freeness properties on generated topologies. *)

module Sm = Netsim_prng.Splitmix
module Asn = Netsim_topo.Asn
module Relation = Netsim_topo.Relation
module Topology = Netsim_topo.Topology
module Generator = Netsim_topo.Generator
module Announce = Netsim_bgp.Announce
module Route = Netsim_bgp.Route
module Propagate = Netsim_bgp.Propagate
module Decision = Netsim_bgp.Decision
module Walk = Netsim_bgp.Walk
module Catchment = Netsim_bgp.Catchment
open Fixture

let state_to_cp () =
  let t = topo () in
  (t, Propagate.run t (Announce.default ~origin:cp))

(* ---- Announce ---- *)

let test_announce_default () =
  let t = topo () in
  let c = Announce.default ~origin:cp in
  let link = (Topology.links t).(l_cp_eb_priv) in
  let a = Announce.action_on c link in
  Alcotest.(check bool) "exports" true a.Announce.export;
  Alcotest.(check int) "no prepend" 0 a.Announce.prepend

let test_announce_non_origin_link () =
  let t = topo () in
  let c = Announce.default ~origin:cp in
  let link = (Topology.links t).(l_st_eb) in
  Alcotest.(check bool) "non-origin link never exports" false
    (Announce.action_on c link).Announce.export

let test_announce_only_at_metros () =
  let t = topo () in
  let c = Announce.only_at_metros ~origin:cp [ london ] in
  let links = Topology.links t in
  Alcotest.(check bool) "london session exports" true
    (Announce.action_on c links.(l_cp_t1a_lon)).Announce.export;
  Alcotest.(check bool) "ny session silent" false
    (Announce.action_on c links.(l_cp_t1a_ny)).Announce.export

let test_announce_prepend_at_metros () =
  let t = topo () in
  let c = Announce.prepend_at_metros (Announce.default ~origin:cp) [ chicago ] 3 in
  let links = Topology.links t in
  Alcotest.(check int) "chicago prepended" 3
    (Announce.action_on c links.(l_cp_eb_priv)).Announce.prepend;
  Alcotest.(check int) "ny untouched" 0
    (Announce.action_on c links.(l_cp_eb_pub)).Announce.prepend

let test_announce_withhold () =
  let t = topo () in
  let c = Announce.withhold_links (Announce.default ~origin:cp) [ l_cp_eb_priv ] in
  let links = Topology.links t in
  Alcotest.(check bool) "withheld" false
    (Announce.action_on c links.(l_cp_eb_priv)).Announce.export;
  Alcotest.(check bool) "others still export" true
    (Announce.action_on c links.(l_cp_eb_pub)).Announce.export

(* ---- Propagate: selection on the fixture ---- *)

let best_exn state x =
  match Propagate.best state x with
  | Some r -> r
  | None -> Alcotest.fail (Printf.sprintf "AS%d has no route" x)

let test_t1a_customer_route () =
  let _, s = state_to_cp () in
  let r = best_exn s t1a in
  Alcotest.(check bool) "customer class" true (r.Route.klass = Route.Customer);
  Alcotest.(check int) "len 1" 1 r.Route.path_len;
  Alcotest.(check (list int)) "path" [ cp ] r.Route.as_path

let test_t1b_peer_route () =
  let _, s = state_to_cp () in
  let r = best_exn s t1b in
  Alcotest.(check bool) "peer class" true (r.Route.klass = Route.Peer);
  Alcotest.(check (list int)) "path via t1a" [ t1a; cp ] r.Route.as_path

let test_tr_provider_route () =
  let _, s = state_to_cp () in
  let r = best_exn s tr in
  Alcotest.(check bool) "provider class" true (r.Route.klass = Route.Provider);
  (* Shorter provider route [t1a; cp] beats [t1b; t1a; cp]. *)
  Alcotest.(check (list int)) "shortest provider path" [ t1a; cp ]
    r.Route.as_path

let test_eb_prefers_peer () =
  let _, s = state_to_cp () in
  let r = best_exn s eb in
  Alcotest.(check bool) "peer class" true (r.Route.klass = Route.Peer);
  Alcotest.(check (list int)) "direct" [ cp ] r.Route.as_path;
  (* Tie between the private (link 7) and public (link 8) sessions
     breaks on the lower link id. *)
  Alcotest.(check int) "deterministic session" l_cp_eb_priv
    r.Route.via_link.Relation.id

let test_st_provider_chain () =
  let _, s = state_to_cp () in
  let r = best_exn s st in
  Alcotest.(check (list int)) "chain through eyeball" [ eb; cp ] r.Route.as_path;
  Alcotest.(check bool) "provider class" true (r.Route.klass = Route.Provider)

let test_origin_has_no_route () =
  let _, s = state_to_cp () in
  Alcotest.(check bool) "origin best = None" true (Propagate.best s cp = None);
  Alcotest.(check bool) "origin reachable" true (Propagate.reachable s cp)

let test_as_path_matches_best () =
  let _, s = state_to_cp () in
  for x = 0 to 4 do
    let r = best_exn s x in
    Alcotest.(check (list int)) "as_path consistent" r.Route.as_path
      (Propagate.as_path s x)
  done

let test_all_reachable () =
  let t, s = state_to_cp () in
  for x = 0 to Topology.as_count t - 1 do
    Alcotest.(check bool) "reachable" true (Propagate.reachable s x)
  done

(* ---- Propagate: export rules via received ---- *)

let received_paths s x =
  List.map (fun (r : Route.t) -> r.Route.as_path) (Propagate.received s x)

let test_valley_free_export_to_provider () =
  (* EB's best is a peer route; it must NOT be exported to its
     provider TR.  TR's Adj-RIB-In has only the two Tier-1 routes. *)
  let _, s = state_to_cp () in
  let got = List.sort compare (received_paths s tr) in
  Alcotest.(check (list (list int))) "only tier1 announcements"
    [ [ t1a; cp ]; [ t1b; t1a; cp ] ]
    got

let test_peer_learned_not_exported_to_peer () =
  (* T1b's route is peer-learned from T1a; T1b must not export it back
     to its peer, and T1a must not receive its own path. *)
  let _, s = state_to_cp () in
  let got = received_paths s t1a in
  Alcotest.(check bool) "no looped announcement" true
    (not (List.exists (fun p -> List.mem t1a p) got))

let test_provider_exports_everything_to_customer () =
  (* ST is EB's customer: it receives EB's peer-learned best. *)
  let _, s = state_to_cp () in
  Alcotest.(check (list (list int))) "stub hears the peer route"
    [ [ eb; cp ] ]
    (received_paths s st)

let test_received_at_origin_empty () =
  let _, s = state_to_cp () in
  Alcotest.(check int) "origin receives nothing" 0
    (List.length (Propagate.received s cp))

let test_received_direct_sessions () =
  (* EB hears the prefix on both of its sessions with CP. *)
  let _, s = state_to_cp () in
  let direct =
    List.filter
      (fun (r : Route.t) -> r.Route.next_hop = cp)
      (Propagate.received s eb)
  in
  Alcotest.(check int) "two direct sessions" 2 (List.length direct)

let test_received_at_metro_filters () =
  let _, s = state_to_cp () in
  let at_chicago = Propagate.received_at_metro s eb ~metro:chicago in
  List.iter
    (fun (r : Route.t) ->
      Alcotest.(check int) "session at chicago" chicago
        r.Route.via_link.Relation.metro)
    at_chicago;
  Alcotest.(check bool) "nonempty" true (at_chicago <> [])

(* ---- Prepending and withholding ---- *)

let test_prepend_shifts_selection () =
  (* Prepending on the private session makes the public session the
     shorter announcement at EB. *)
  let t = topo () in
  let config =
    Announce.with_overrides (Announce.default ~origin:cp) (fun link ->
        if link.Relation.id = l_cp_eb_priv then
          Some { Announce.export = true; prepend = 2; no_export = false }
        else None)
  in
  let s = Propagate.run t config in
  let r = best_exn s eb in
  Alcotest.(check int) "public session now best" l_cp_eb_pub
    r.Route.via_link.Relation.id;
  Alcotest.(check int) "len 1 unprepended" 1 r.Route.path_len

let test_prepend_does_not_flip_class () =
  (* Even a heavy prepend cannot make EB prefer its provider route:
     local-pref compares class first. *)
  let t = topo () in
  let config =
    Announce.with_overrides (Announce.default ~origin:cp) (fun link ->
        if link.Relation.id = l_cp_eb_priv || link.Relation.id = l_cp_eb_pub
        then Some { Announce.export = true; prepend = 10; no_export = false }
        else None)
  in
  let s = Propagate.run t config in
  Alcotest.(check bool) "still peer class" true
    ((best_exn s eb).Route.klass = Route.Peer)

let test_withhold_both_peer_sessions () =
  let t = topo () in
  let config =
    Announce.withhold_links (Announce.default ~origin:cp)
      [ l_cp_eb_priv; l_cp_eb_pub ]
  in
  let s = Propagate.run t config in
  let r = best_exn s eb in
  Alcotest.(check bool) "falls back to provider" true
    (r.Route.klass = Route.Provider);
  Alcotest.(check (list int)) "via transit chain" [ tr; t1a; cp ]
    r.Route.as_path

let test_unicast_site_announcement () =
  (* Prefix announced only at London: everyone still reaches it, via
     T1a's London session. *)
  let t = topo () in
  let s = Propagate.run t (Announce.only_at_metros ~origin:cp [ london ]) in
  for x = 0 to 4 do
    Alcotest.(check bool) "reachable via london" true (Propagate.reachable s x)
  done;
  let r = best_exn s eb in
  Alcotest.(check bool) "eyeball uses provider chain" true
    (r.Route.klass = Route.Provider)

let test_withhold_all_disconnects () =
  let t = topo () in
  let config =
    Announce.withhold_links (Announce.default ~origin:cp)
      [ l_cp_t1a_ny; l_cp_t1a_lon; l_cp_eb_priv; l_cp_eb_pub ]
  in
  let s = Propagate.run t config in
  Alcotest.(check bool) "nobody reaches the prefix" false
    (Propagate.reachable s st)

(* ---- NO_EXPORT community ---- *)

let no_export_on ids =
  Announce.with_overrides (Announce.default ~origin:cp) (fun link ->
      if List.mem link.Relation.id ids then
        Some { Announce.export = true; prepend = 0; no_export = true }
      else None)

let test_no_export_receiver_still_uses_route () =
  let t = topo () in
  let s = Propagate.run t (no_export_on [ l_cp_eb_priv; l_cp_eb_pub ]) in
  let r = best_exn s eb in
  Alcotest.(check bool) "eyeball keeps the peer route" true
    (r.Route.klass = Route.Peer)

let test_no_export_not_advertised_to_customer () =
  (* EB's peer routes are NO_EXPORT: its customer ST must fall back to
     whatever else it can hear — here, nothing from EB's peer route,
     so it still reaches CP via EB's provider chain announcement... in
     this fixture EB is ST's only upstream, so ST hears EB's selected
     route only if exportable. *)
  let t = topo () in
  let s = Propagate.run t (no_export_on [ l_cp_eb_priv; l_cp_eb_pub ]) in
  let heard_from_eb =
    List.filter
      (fun (r : Route.t) -> r.Route.next_hop = eb)
      (Propagate.received s st)
  in
  Alcotest.(check int) "EB advertises nothing NO_EXPORT" 0
    (List.length heard_from_eb)

let test_no_export_on_transit_scopes_propagation () =
  (* NO_EXPORT on the T1a sessions: T1a itself still routes to CP, but
     neither T1b (peer) nor TR (customer) hears the route from it.
     With the peer sessions also withheld, most of the world goes
     dark. *)
  let t = topo () in
  let config =
    Announce.with_overrides (Announce.default ~origin:cp) (fun link ->
        if link.Relation.id = l_cp_t1a_ny || link.Relation.id = l_cp_t1a_lon
        then Some { Announce.export = true; prepend = 0; no_export = true }
        else if link.Relation.id = l_cp_eb_priv || link.Relation.id = l_cp_eb_pub
        then Some { Announce.export = false; prepend = 0; no_export = false }
        else None)
  in
  let s = Propagate.run t config in
  Alcotest.(check bool) "T1a itself still routes" true (Propagate.reachable s t1a);
  Alcotest.(check bool) "T1b no longer hears it" false (Propagate.reachable s t1b);
  Alcotest.(check bool) "TR no longer hears it" false (Propagate.reachable s tr)

let test_no_export_helper () =
  let t = topo () in
  let c =
    Announce.no_export_at_metros (Announce.default ~origin:cp) [ chicago ]
  in
  let links = Topology.links t in
  Alcotest.(check bool) "chicago tagged" true
    (Announce.action_on c links.(l_cp_eb_priv)).Announce.no_export;
  Alcotest.(check bool) "ny untouched" false
    (Announce.action_on c links.(l_cp_eb_pub)).Announce.no_export

(* ---- Decision ---- *)

let test_decision_content_policy_order () =
  let _, s = state_to_cp () in
  (* Reverse direction: routes toward a client (EB) at the content
     provider. *)
  let s_client = Propagate.run (topo ()) (Announce.default ~origin:eb) in
  let ranked =
    Decision.sort Decision.content_provider (Propagate.received s_client cp)
  in
  (match ranked with
  | first :: second :: _ ->
      Alcotest.(check bool) "private peer first" true
        (first.Route.via_link.Relation.kind = Relation.Peer_private);
      Alcotest.(check bool) "public peer second" true
        (second.Route.via_link.Relation.kind = Relation.Peer_public)
  | _ -> Alcotest.fail "expected at least two routes");
  ignore s

let test_decision_k_best () =
  let s_client = Propagate.run (topo ()) (Announce.default ~origin:eb) in
  let received = Propagate.received s_client cp in
  let k2 = Decision.k_best Decision.content_provider 2 received in
  Alcotest.(check int) "k bounded" 2 (List.length k2);
  let all = Decision.k_best Decision.content_provider 100 received in
  Alcotest.(check int) "k clamps to available" (List.length received)
    (List.length all)

let test_decision_gao_rexford_ranks () =
  let mk klass kind =
    {
      Route.dest = 0;
      klass;
      next_hop = 1;
      via_link =
        { Relation.id = 0; a = 0; b = 1; kind; metro = 0; capacity_gbps = 1. };
      path_len = 5;
      as_path = [];
    }
  in
  let cust = mk Route.Customer Relation.C2p in
  let peer = mk Route.Peer Relation.Peer_private in
  let prov = mk Route.Provider Relation.C2p in
  let sorted = Decision.sort Decision.gao_rexford [ prov; peer; cust ] in
  Alcotest.(check bool) "customer first" true
    (match sorted with r :: _ -> r.Route.klass = Route.Customer | [] -> false);
  Alcotest.(check bool) "provider last" true
    (match List.rev sorted with
    | r :: _ -> r.Route.klass = Route.Provider
    | [] -> false)

let test_decision_shorter_path_wins () =
  let mk len id =
    {
      Route.dest = 0;
      klass = Route.Peer;
      next_hop = id;
      via_link =
        { Relation.id = id; a = 0; b = id; kind = Relation.Peer_private;
          metro = 0; capacity_gbps = 1. };
      path_len = len;
      as_path = [];
    }
  in
  match Decision.best Decision.gao_rexford [ mk 5 1; mk 2 2; mk 3 3 ] with
  | Some r -> Alcotest.(check int) "len 2 wins" 2 r.Route.path_len
  | None -> Alcotest.fail "no best"

(* ---- Walk ---- *)

let test_walk_from_stub () =
  let _, s = state_to_cp () in
  match Walk.of_source s ~src:st with
  | None -> Alcotest.fail "no walk"
  | Some w ->
      Alcotest.(check (list int)) "as path" [ st; eb ] (Walk.as_path w);
      Alcotest.(check int) "enters at chicago (private peer)" chicago
        (Walk.entry_metro w)

let test_walk_hot_potato_prefers_near_exit () =
  (* From T1b the walk reaches CP via T1a; T1a's sessions to CP are at
     NY and London and the flow is at NY, so it must exit at NY. *)
  let _, s = state_to_cp () in
  match Walk.of_source s ~src:t1b with
  | None -> Alcotest.fail "no walk"
  | Some w ->
      Alcotest.(check int) "entry at NY" ny (Walk.entry_metro w);
      Alcotest.(check (list int)) "path" [ t1b; t1a ] (Walk.as_path w)

let test_walk_respects_withheld_final_links () =
  (* Announce only at London: the final hop must use the London
     session even though NY is closer. *)
  let t = topo () in
  let s = Propagate.run t (Announce.only_at_metros ~origin:cp [ london ]) in
  match Walk.of_source s ~src:t1b with
  | None -> Alcotest.fail "no walk"
  | Some w -> Alcotest.(check int) "entry at london" london (Walk.entry_metro w)

let test_walk_prefers_less_prepended_final_link () =
  (* NY prepended, London clean: BGP picks the shorter announcement
     even though NY is nearer. *)
  let t = topo () in
  let config =
    Announce.with_overrides (Announce.default ~origin:cp) (fun link ->
        if link.Relation.id = l_cp_t1a_ny then
          Some { Announce.export = true; prepend = 4; no_export = false }
        else None)
  in
  let s = Propagate.run t config in
  match Walk.of_source s ~src:tr with
  | None -> Alcotest.fail "no walk"
  | Some w -> Alcotest.(check int) "entry at london" london (Walk.entry_metro w)

let test_walk_from_metro () =
  let _, s = state_to_cp () in
  match Walk.from_metro s ~src:eb ~start_metro:ny with
  | None -> Alcotest.fail "no walk"
  | Some w -> (
      match w.Walk.hops with
      | [ hop ] ->
          Alcotest.(check int) "ingress at NY" ny hop.Walk.ingress
      | _ -> Alcotest.fail "expected single hop")

let test_walk_of_route_pins_first_hop () =
  (* Egress from CP toward EB pinned to the transit announcement. *)
  let t = topo () in
  let s = Propagate.run t (Announce.default ~origin:eb) in
  let transit_route =
    List.find
      (fun (r : Route.t) -> r.Route.next_hop = t1a)
      (Propagate.received s cp)
  in
  match Walk.of_route s ~src:cp ~route:transit_route with
  | None -> Alcotest.fail "no walk"
  | Some w ->
      Alcotest.(check (list int)) "path via transit" [ cp; t1a; tr ]
        (Walk.as_path w)

let test_walk_source_is_origin_rejected () =
  let _, s = state_to_cp () in
  Alcotest.check_raises "origin as source"
    (Invalid_argument "Walk.from_metro: source is the origin") (fun () ->
      ignore (Walk.from_metro s ~src:cp ~start_metro:ny))

(* ---- Catchment ---- *)

let test_catchment_basic () =
  let _, s = state_to_cp () in
  let c = Catchment.compute s in
  Alcotest.(check (option int)) "stub lands at chicago" (Some chicago)
    (Catchment.site_of c st);
  Alcotest.(check (option int)) "t1b lands at NY" (Some ny)
    (Catchment.site_of c t1b);
  Alcotest.(check bool) "full coverage" true (Catchment.coverage c >= 1.)

let test_catchment_clients_of_site () =
  let _, s = state_to_cp () in
  let c = Catchment.compute s in
  let at_chicago = Catchment.clients_of_site c chicago in
  Alcotest.(check bool) "stub and eyeball at chicago" true
    (List.mem st at_chicago && List.mem eb at_chicago)

let test_catchment_sites () =
  let _, s = state_to_cp () in
  let c = Catchment.compute s in
  Alcotest.(check (list int)) "two active sites"
    (List.sort compare [ ny; chicago ])
    (List.sort compare (Catchment.sites c))

(* ---- Metrics ---- *)

let test_metrics_fixture () =
  let t = topo () in
  let m = Netsim_bgp.Metrics.compute ~rng:(Sm.create 1) t in
  Alcotest.(check int) "as count" 6 m.Netsim_bgp.Metrics.as_count;
  Alcotest.(check int) "link count" 9 m.Netsim_bgp.Metrics.link_count;
  Alcotest.(check bool) "mean degree = 2E/N" true
    (Float.abs (m.Netsim_bgp.Metrics.mean_degree -. (18. /. 6.)) < 1e-9);
  Alcotest.(check bool) "paths exist" true
    (m.Netsim_bgp.Metrics.mean_path_length >= 1.)

let test_customer_cone () =
  let t = topo () in
  (* T1a's cone: itself, TR, EB, ST, CP = 5. *)
  Alcotest.(check int) "t1a cone" 5 (Netsim_bgp.Metrics.customer_cone t t1a);
  Alcotest.(check int) "eb cone" 2 (Netsim_bgp.Metrics.customer_cone t eb);
  Alcotest.(check int) "stub cone" 1 (Netsim_bgp.Metrics.customer_cone t st)

let test_degree_histogram () =
  let t = topo () in
  let hist = Netsim_bgp.Metrics.degree_histogram t in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
  Alcotest.(check int) "covers all ASes" 6 total;
  let rec ascending = function
    | (a, _) :: ((b, _) :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by degree" true (ascending hist)

let test_metrics_generated_plausible () =
  let t = Generator.generate Generator.small_params in
  let m = Netsim_bgp.Metrics.compute ~rng:(Sm.create 2) t in
  Alcotest.(check bool) "path length 2-7" true
    (m.Netsim_bgp.Metrics.mean_path_length > 1.5
    && m.Netsim_bgp.Metrics.mean_path_length < 7.);
  Alcotest.(check bool) "peering share sane" true
    (m.Netsim_bgp.Metrics.peering_share > 0.05
    && m.Netsim_bgp.Metrics.peering_share < 0.9);
  Alcotest.(check bool) "largest cone most of the Internet" true
    (m.Netsim_bgp.Metrics.largest_cone > Topology.as_count t / 3)

(* ---- Show ---- *)

let test_show_route_line () =
  let t, s = state_to_cp () in
  match Propagate.best s st with
  | None -> Alcotest.fail "no route"
  | Some r ->
      let line = Netsim_bgp.Show.route t r in
      Alcotest.(check bool) "mentions class" true
        (Test_util.contains line "provider");
      Alcotest.(check bool) "mentions path names" true
        (Test_util.contains line "CP")

let test_show_rib_marks_best () =
  let t, s = state_to_cp () in
  let out = Netsim_bgp.Show.rib t s eb in
  Alcotest.(check bool) "best marked with >" true
    (Test_util.contains out "> ");
  Alcotest.(check bool) "shows receiver name" true
    (Test_util.contains out "EB")

let test_show_rib_empty () =
  let t, s = state_to_cp () in
  let out = Netsim_bgp.Show.rib t s cp in
  Alcotest.(check bool) "origin has empty rib" true
    (Test_util.contains out "(no routes)")

let test_show_walk () =
  let t, s = state_to_cp () in
  match Walk.of_source s ~src:st with
  | None -> Alcotest.fail "no walk"
  | Some w ->
      let out = Netsim_bgp.Show.walk t w in
      Alcotest.(check bool) "mentions entry" true
        (Test_util.contains out "enters CP");
      Alcotest.(check bool) "mentions metros" true
        (Test_util.contains out "Chicago")

(* ---- Valley-freeness property on generated topologies ---- *)

let valley_free topo path =
  (* A valid path, read source -> origin, must be a sequence of
     customer->provider steps, at most one peer step, then
     provider->customer steps. *)
  let rel a b =
    match Topology.links_between topo a b with
    | [] -> None
    | l :: _ -> Some (Relation.rel_of l a)
  in
  let rec go phase = function
    | a :: (b :: _ as rest) -> (
        match rel a b with
        | None -> false
        | Some r -> (
            match (phase, r) with
            | `Up, Relation.To_provider -> go `Up rest
            | `Up, (Relation.Priv_peer | Relation.Pub_peer) -> go `Down rest
            | `Up, Relation.To_customer -> go `Down rest
            | `Down, Relation.To_customer -> go `Down rest
            | `Down, (Relation.To_provider | Relation.Priv_peer | Relation.Pub_peer)
              ->
                false))
    | [ _ ] | [] -> true
  in
  go `Up path

let test_generated_paths_valley_free () =
  let t = Generator.generate Generator.small_params in
  let stubs = Topology.by_klass t Asn.Stub in
  let dests = List.filteri (fun i _ -> i < 10) stubs in
  List.iter
    (fun dest ->
      let s = Propagate.run t (Announce.default ~origin:dest) in
      for x = 0 to Topology.as_count t - 1 do
        if x <> dest then begin
          match Propagate.as_path s x with
          | [] -> Alcotest.fail (Printf.sprintf "AS%d unreachable" x)
          | path ->
              Alcotest.(check bool) "valley-free" true (valley_free t (x :: path))
        end
      done)
    dests

let test_generated_paths_loop_free () =
  let t = Generator.generate Generator.small_params in
  let dest = List.hd (Topology.by_klass t Asn.Eyeball) in
  let s = Propagate.run t (Announce.default ~origin:dest) in
  for x = 0 to Topology.as_count t - 1 do
    if x <> dest then begin
      let path = x :: Propagate.as_path s x in
      let sorted = List.sort_uniq compare path in
      Alcotest.(check int) "no repeated AS" (List.length path)
        (List.length sorted)
    end
  done

let test_received_routes_are_exportable () =
  (* Every announcement an AS receives from a non-customer must be a
     customer-learned route of the sender. *)
  let t = Generator.generate Generator.small_params in
  let dest = List.hd (Topology.by_klass t Asn.Stub) in
  let s = Propagate.run t (Announce.default ~origin:dest) in
  for x = 0 to Topology.as_count t - 1 do
    if x <> dest then
      List.iter
        (fun (r : Route.t) ->
          if r.Route.next_hop <> dest then begin
            let sender_klass = Propagate.selected_class s r.Route.next_hop in
            let x_is_customer =
              Relation.rel_of r.Route.via_link x = Relation.To_provider
            in
            if not x_is_customer then
              Alcotest.(check (option (of_pp (fun fmt k ->
                Format.pp_print_string fmt (Route.klass_to_string k)))))
                "sender exported a customer route" (Some Route.Customer)
                sender_klass
          end)
        (Propagate.received s x)
  done

let suite =
  [
    Alcotest.test_case "announce default" `Quick test_announce_default;
    Alcotest.test_case "announce non-origin" `Quick test_announce_non_origin_link;
    Alcotest.test_case "announce only_at_metros" `Quick test_announce_only_at_metros;
    Alcotest.test_case "announce prepend" `Quick test_announce_prepend_at_metros;
    Alcotest.test_case "announce withhold" `Quick test_announce_withhold;
    Alcotest.test_case "t1a customer route" `Quick test_t1a_customer_route;
    Alcotest.test_case "t1b peer route" `Quick test_t1b_peer_route;
    Alcotest.test_case "tr provider route" `Quick test_tr_provider_route;
    Alcotest.test_case "eb prefers peer" `Quick test_eb_prefers_peer;
    Alcotest.test_case "stub provider chain" `Quick test_st_provider_chain;
    Alcotest.test_case "origin has no route" `Quick test_origin_has_no_route;
    Alcotest.test_case "as_path consistent" `Quick test_as_path_matches_best;
    Alcotest.test_case "all reachable" `Quick test_all_reachable;
    Alcotest.test_case "no peer export to provider" `Quick test_valley_free_export_to_provider;
    Alcotest.test_case "no loop announcements" `Quick test_peer_learned_not_exported_to_peer;
    Alcotest.test_case "full export to customer" `Quick test_provider_exports_everything_to_customer;
    Alcotest.test_case "origin receives nothing" `Quick test_received_at_origin_empty;
    Alcotest.test_case "direct sessions" `Quick test_received_direct_sessions;
    Alcotest.test_case "received_at_metro" `Quick test_received_at_metro_filters;
    Alcotest.test_case "prepend shifts selection" `Quick test_prepend_shifts_selection;
    Alcotest.test_case "prepend cannot flip class" `Quick test_prepend_does_not_flip_class;
    Alcotest.test_case "withhold falls back" `Quick test_withhold_both_peer_sessions;
    Alcotest.test_case "unicast site reachable" `Quick test_unicast_site_announcement;
    Alcotest.test_case "withhold all disconnects" `Quick test_withhold_all_disconnects;
    Alcotest.test_case "no_export still usable" `Quick test_no_export_receiver_still_uses_route;
    Alcotest.test_case "no_export not re-advertised" `Quick test_no_export_not_advertised_to_customer;
    Alcotest.test_case "no_export scopes transit" `Quick test_no_export_on_transit_scopes_propagation;
    Alcotest.test_case "no_export helper" `Quick test_no_export_helper;
    Alcotest.test_case "content policy order" `Quick test_decision_content_policy_order;
    Alcotest.test_case "k_best" `Quick test_decision_k_best;
    Alcotest.test_case "gao-rexford ranks" `Quick test_decision_gao_rexford_ranks;
    Alcotest.test_case "shorter path wins" `Quick test_decision_shorter_path_wins;
    Alcotest.test_case "walk from stub" `Quick test_walk_from_stub;
    Alcotest.test_case "walk hot potato" `Quick test_walk_hot_potato_prefers_near_exit;
    Alcotest.test_case "walk withheld final links" `Quick test_walk_respects_withheld_final_links;
    Alcotest.test_case "walk prepended final links" `Quick test_walk_prefers_less_prepended_final_link;
    Alcotest.test_case "walk from metro" `Quick test_walk_from_metro;
    Alcotest.test_case "walk of_route pins hop" `Quick test_walk_of_route_pins_first_hop;
    Alcotest.test_case "walk origin rejected" `Quick test_walk_source_is_origin_rejected;
    Alcotest.test_case "catchment basic" `Quick test_catchment_basic;
    Alcotest.test_case "catchment clients_of_site" `Quick test_catchment_clients_of_site;
    Alcotest.test_case "catchment sites" `Quick test_catchment_sites;
    Alcotest.test_case "metrics fixture" `Quick test_metrics_fixture;
    Alcotest.test_case "customer cone" `Quick test_customer_cone;
    Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
    Alcotest.test_case "metrics plausible" `Quick test_metrics_generated_plausible;
    Alcotest.test_case "show route line" `Quick test_show_route_line;
    Alcotest.test_case "show rib best mark" `Quick test_show_rib_marks_best;
    Alcotest.test_case "show rib empty" `Quick test_show_rib_empty;
    Alcotest.test_case "show walk" `Quick test_show_walk;
    Alcotest.test_case "generated valley-free" `Slow test_generated_paths_valley_free;
    Alcotest.test_case "generated loop-free" `Quick test_generated_paths_loop_free;
    Alcotest.test_case "received exportable" `Quick test_received_routes_are_exportable;
  ]
