(* Tests for the cloud WAN: backbone cable graph, tier configurations,
   the VP qualification filter and the India asymmetry. *)

module Sm = Netsim_prng.Splitmix
module Generator = Netsim_topo.Generator
module Topology = Netsim_topo.Topology
module Asn = Netsim_topo.Asn
module Params = Netsim_latency.Params
module Rtt = Netsim_latency.Rtt
module Walk = Netsim_bgp.Walk
module Backbone = Netsim_wan.Backbone
module Cloud = Netsim_wan.Cloud
module Tiers = Netsim_wan.Tiers
module Vantage = Netsim_measure.Vantage
module World = Netsim_geo.World
module City = Netsim_geo.City

let metro name = (World.find_exn name).City.id

(* ---- Backbone ---- *)

let bb = lazy (Backbone.default ())

let test_backbone_nodes_nonempty () =
  Alcotest.(check bool) "has nodes" true
    (List.length (Backbone.nodes (Lazy.force bb)) >= 30)

let test_backbone_self_distance () =
  let b = Lazy.force bb in
  Alcotest.(check (float 1e-9)) "zero" 0.
    (Backbone.distance_km b (metro "London") (metro "London"))

let test_backbone_symmetric () =
  let b = Lazy.force bb in
  Alcotest.(check (float 1e-6)) "symmetric"
    (Backbone.distance_km b (metro "London") (metro "Tokyo"))
    (Backbone.distance_km b (metro "Tokyo") (metro "London"))

let test_backbone_triangle_inequality_vs_geodesic () =
  (* Cable paths can never be shorter than the geodesic. *)
  let b = Lazy.force bb in
  let pairs =
    [ ("London", "Tokyo"); ("Mumbai", "Kansas City"); ("Sydney", "Frankfurt") ]
  in
  List.iter
    (fun (x, y) ->
      let geodesic =
        City.distance_km (World.find_exn x) (World.find_exn y)
      in
      let cable = Backbone.distance_km b (metro x) (metro y) in
      Alcotest.(check bool)
        (Printf.sprintf "%s-%s cable >= geodesic" x y)
        true
        (cable >= geodesic -. 1.))
    pairs

let test_backbone_connected () =
  let b = Lazy.force bb in
  let nodes = Backbone.nodes b in
  let kc = metro "Kansas City" in
  List.iter
    (fun n ->
      Alcotest.(check bool) "finite distance to DC" true
        (Backbone.distance_km b n kc < infinity))
    nodes

let test_backbone_india_goes_east () =
  (* The 2019-shaped WAN reaches Kansas City from Mumbai the long way
     (via Asia-Pacific): much longer than the geodesic. *)
  let b = Lazy.force bb in
  let cable = Backbone.distance_km b (metro "Mumbai") (metro "Kansas City") in
  let geodesic =
    City.distance_km (World.find_exn "Mumbai") (World.find_exn "Kansas City")
  in
  Alcotest.(check bool) "substantial detour" true (cable > geodesic *. 1.3)

let test_backbone_europe_direct () =
  (* London -> Kansas City on the WAN is close to the geodesic. *)
  let b = Lazy.force bb in
  let cable = Backbone.distance_km b (metro "London") (metro "Kansas City") in
  let geodesic =
    City.distance_km (World.find_exn "London") (World.find_exn "Kansas City")
  in
  Alcotest.(check bool) "near-geodesic" true (cable < geodesic *. 1.15)

let test_backbone_offnet_metro_attached () =
  (* A metro that is not a backbone node attaches via its nearest
     node. *)
  let b = Lazy.force bb in
  let d = Backbone.distance_km b (metro "Phoenix") (metro "Kansas City") in
  Alcotest.(check bool) "finite and positive" true (d > 0. && d < infinity)

let test_backbone_carry_rtt () =
  let b = Lazy.force bb in
  let ms = Backbone.carry_rtt_ms b Params.default (metro "London") (metro "Kansas City") in
  Alcotest.(check bool) "~75-90ms" true (ms > 60. && ms < 100.)

let test_backbone_custom_segments () =
  let b = Backbone.of_segments [ ("London", "Paris"); ("Paris", "Madrid") ] in
  Alcotest.(check int) "three nodes" 3 (List.length (Backbone.nodes b));
  let via_paris = Backbone.distance_km b (metro "London") (metro "Madrid") in
  let direct =
    City.distance_km (World.find_exn "London") (World.find_exn "Madrid")
  in
  Alcotest.(check bool) "routes via paris" true (via_paris > direct)

(* ---- Cloud + Tiers ---- *)

let base = lazy (Generator.generate Generator.small_params)
let cloud = lazy (Cloud.deploy (Lazy.force base) ~rng:(Sm.create 51) ())
let tiers = lazy (Tiers.make (Lazy.force cloud) ~params:Params.default)

let test_cloud_class_and_dc () =
  let c = Lazy.force cloud in
  let a = Topology.asn (Cloud.topo c) (Cloud.asid c) in
  Alcotest.(check bool) "cloud class" true (a.Asn.klass = Asn.Cloud);
  Alcotest.(check int) "dc metro is kansas city" (metro Cloud.dc_city_name)
    c.Cloud.dc_metro;
  Alcotest.(check bool) "dc among edges" true
    (List.mem c.Cloud.dc_metro c.Cloud.edge_metros)

let test_cloud_global_edges () =
  let c = Lazy.force cloud in
  Alcotest.(check bool) "many edges" true (List.length c.Cloud.edge_metros >= 30)

let vantage =
  lazy
    (Vantage.select (Cloud.topo (Lazy.force cloud)) ~rng:(Sm.create 61) ~n:150)

let test_tier_flows_exist () =
  let t = Lazy.force tiers in
  let vps = Lazy.force vantage in
  let both =
    Array.to_list vps
    |> List.filter (fun vp ->
           Tiers.premium_flow t vp <> None && Tiers.standard_flow t vp <> None)
  in
  Alcotest.(check bool) "most VPs reach both tiers" true
    (List.length both > Array.length vps / 2)

let test_standard_enters_at_dc () =
  let t = Lazy.force tiers in
  let c = Lazy.force cloud in
  Array.iter
    (fun vp ->
      match Tiers.standard_trace t vp with
      | None -> ()
      | Some trace ->
          Alcotest.(check int) "standard entry = DC metro" c.Cloud.dc_metro
            trace.Netsim_measure.Campaign.entry_metro)
    (Lazy.force vantage)

let test_premium_entry_close_or_equal () =
  (* Premium entries are never farther from the VP than the Standard
     entry at the DC... on average.  Check the mean ingress distance
     contrast that drives the paper's 400 km statistic. *)
  let t = Lazy.force tiers in
  let prem = ref [] and std = ref [] in
  Array.iter
    (fun vp ->
      match (Tiers.premium_trace t vp, Tiers.standard_trace t vp) with
      | Some p, Some s ->
          prem := p.Netsim_measure.Campaign.ingress_km :: !prem;
          std := s.Netsim_measure.Campaign.ingress_km :: !std
      | _, _ -> ())
    (Lazy.force vantage);
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  Alcotest.(check bool) "premium ingress much nearer" true
    (mean !prem < mean !std /. 2.)

let test_qualifies_filter () =
  let t = Lazy.force tiers in
  Array.iter
    (fun vp ->
      if Tiers.qualifies t vp then begin
        match (Tiers.premium_flow t vp, Tiers.standard_flow t vp) with
        | Some pf, Some sf ->
            Alcotest.(check int) "premium direct" 1
              (List.length pf.Rtt.walk.Walk.hops);
            Alcotest.(check bool) "standard has intermediary" true
              (List.length sf.Rtt.walk.Walk.hops >= 2)
        | _, _ -> Alcotest.fail "qualifying VP lacks flows"
      end)
    (Lazy.force vantage)

let test_some_vps_qualify () =
  let t = Lazy.force tiers in
  let q =
    Array.to_list (Lazy.force vantage) |> List.filter (Tiers.qualifies t)
  in
  Alcotest.(check bool) "filter keeps some VPs" true (List.length q > 0)

let test_premium_flow_has_wan_extra () =
  let t = Lazy.force tiers in
  Array.iter
    (fun vp ->
      match Tiers.premium_flow t vp with
      | None -> ()
      | Some f ->
          Alcotest.(check bool) "nonnegative WAN carry" true
            (f.Rtt.extra_ms >= 0.))
    (Lazy.force vantage)

let test_india_premium_detour () =
  (* For an Indian qualifying VP the Premium WAN carry must exceed the
     standard tier's geodesic-ish carriage: the root of the Fig. 5
     anomaly. *)
  let t = Lazy.force tiers in
  let c = Lazy.force cloud in
  let indian =
    Array.to_list (Lazy.force vantage)
    |> List.filter (fun vp ->
           Vantage.country vp = "IN" && Tiers.qualifies t vp)
  in
  match indian with
  | [] -> () (* small topology may lack qualifying Indian VPs *)
  | vp :: _ -> (
      match Tiers.premium_flow t vp with
      | None -> Alcotest.fail "qualifying VP without premium flow"
      | Some pf ->
          let geodesic_ms =
            City.rtt_ms World.cities.(vp.Vantage.city)
              World.cities.(c.Cloud.dc_metro)
          in
          Alcotest.(check bool) "WAN carry exceeds geodesic" true
            (pf.Rtt.extra_ms > geodesic_ms))

let suite =
  [
    Alcotest.test_case "backbone nodes" `Quick test_backbone_nodes_nonempty;
    Alcotest.test_case "backbone self distance" `Quick test_backbone_self_distance;
    Alcotest.test_case "backbone symmetric" `Quick test_backbone_symmetric;
    Alcotest.test_case "backbone >= geodesic" `Quick test_backbone_triangle_inequality_vs_geodesic;
    Alcotest.test_case "backbone connected" `Quick test_backbone_connected;
    Alcotest.test_case "backbone india east" `Quick test_backbone_india_goes_east;
    Alcotest.test_case "backbone europe direct" `Quick test_backbone_europe_direct;
    Alcotest.test_case "backbone offnet attach" `Quick test_backbone_offnet_metro_attached;
    Alcotest.test_case "backbone carry rtt" `Quick test_backbone_carry_rtt;
    Alcotest.test_case "backbone custom segments" `Quick test_backbone_custom_segments;
    Alcotest.test_case "cloud class/dc" `Quick test_cloud_class_and_dc;
    Alcotest.test_case "cloud global edges" `Quick test_cloud_global_edges;
    Alcotest.test_case "tier flows exist" `Quick test_tier_flows_exist;
    Alcotest.test_case "standard enters at DC" `Quick test_standard_enters_at_dc;
    Alcotest.test_case "premium ingress nearer" `Quick test_premium_entry_close_or_equal;
    Alcotest.test_case "qualifies filter" `Quick test_qualifies_filter;
    Alcotest.test_case "some VPs qualify" `Quick test_some_vps_qualify;
    Alcotest.test_case "premium WAN extra" `Quick test_premium_flow_has_wan_extra;
    Alcotest.test_case "india premium detour" `Quick test_india_premium_detour;
  ]
