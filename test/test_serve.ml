(* The serve subsystem: protocol totality (malformed queries, unknown
   ids, oversized lines and EOF mid-request become framed protocol
   errors, never exceptions), snapshot codec round-trips and rejection
   of corrupt input, and the load-path equivalence property — a
   snapshot-loaded server answers a request stream byte-identically to
   the seed-built server it was saved from, churn included. *)

module Protocol = Netsim_serve.Protocol
module Snapshot = Netsim_serve.Snapshot
module Server = Netsim_serve.Server
module Topology = Netsim_topo.Topology
module Rib_cache = Netsim_bgp.Rib_cache
module Engine = Netsim_dynamics.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* One shared small server for the query tests (building is the
   expensive part; queries don't mutate routing unless time advances). *)
let server =
  lazy (Server.build { Server.small_config with Server.n_prefixes = 30 })

(* ---- protocol --------------------------------------------------------- *)

let test_parse_ok () =
  let cases =
    [
      ("CATCHMENT 3", Protocol.Catchment "3");
      ("catchment 3", Protocol.Catchment "3");
      ("  EGRESS   94  ", Protocol.Egress 94);
      ("RTT 2 anycast", Protocol.Rtt ("2", "anycast"));
      ("EXPLAIN anycast 39", Protocol.Explain ("anycast", "39"));
      ("explain 0 50", Protocol.Explain ("0", "50"));
      ("STATS", Protocol.Stats);
      ("SNAPSHOT /tmp/x.bin", Protocol.Snapshot_to "/tmp/x.bin");
      ("PROM", Protocol.Prom);
      ("ADVANCE 12.5", Protocol.Advance 12.5);
      ("QUIT", Protocol.Quit);
      ("QUIT\r", Protocol.Quit);
    ]
  in
  List.iter
    (fun (line, want) ->
      match Protocol.parse line with
      | Ok got -> check line true (got = want)
      | Error e -> Alcotest.failf "%s: unexpected parse error %s" line e)
    cases

let test_parse_errors () =
  let cases =
    [
      "";
      "   ";
      "BOGUS";
      "CATCHMENT";
      "CATCHMENT 1 2";
      "EGRESS notanumber";
      "RTT 1";
      "RTT";
      "EXPLAIN";
      "EXPLAIN anycast";
      "EXPLAIN anycast 1 2";
      "ADVANCE nan";
      "ADVANCE -5";
      "ADVANCE";
      "STATS now";
      "QUIT please";
      String.make (Protocol.max_line + 1) 'A';
    ]
  in
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S: expected a parse error" line)
    cases

let test_frame () =
  check_str "ok frame" "OK 5\nhello\n" (Protocol.frame ~ok:true "hello");
  check_str "err frame" "ERR 3\nbad\n" (Protocol.frame ~ok:false "bad");
  check_str "empty body" "OK 0\n\n" (Protocol.frame ~ok:true "")

(* ---- query totality --------------------------------------------------- *)

let framed_err s = String.length s > 4 && String.sub s 0 4 = "ERR "
let framed_ok s = String.length s > 3 && String.sub s 0 3 = "OK "

let contains ~needle hay =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

let test_unknown_ids () =
  let t = Lazy.force server in
  let errs =
    [
      "CATCHMENT 99999";
      "CATCHMENT -1";
      "CATCHMENT notanumber";
      "EGRESS 100000";
      "RTT 99999 anycast";
      "RTT 0 notanumber";
      "EXPLAIN anycast 99999";
      "EXPLAIN anycast notanumber";
      "EXPLAIN 99999 3";
      "SNAPSHOT /nonexistent-dir/deep/x.bin";
    ]
  in
  List.iter
    (fun line ->
      let resp, cont = Server.handle_line t line in
      check (line ^ " keeps serving") true cont;
      check (line ^ " is a framed error") true (framed_err resp))
    errs;
  (* And the server still answers real queries afterwards. *)
  let resp, cont = Server.handle_line t "CATCHMENT 0" in
  check "still alive" true (cont && framed_ok resp)

let test_untracked_origin () =
  let t = Lazy.force server in
  (* AS 0 is a Tier-1 in every generated Internet: a valid AS id, but
     never a tracked origin — must be a clean error, not a crash. *)
  let resp, _ = Server.handle_line t "RTT 0 0" in
  check "untracked origin is a framed error" true (framed_err resp)

let test_explain () =
  let t = Lazy.force server in
  (* A well-formed EXPLAIN answers OK with the full decision chain. *)
  let resp, cont = Server.handle_line t "EXPLAIN anycast 39" in
  check "explain keeps serving" true cont;
  check "explain is framed ok" true (framed_ok resp);
  List.iter
    (fun needle ->
      check ("body mentions " ^ needle) true (contains ~needle resp))
    [
      "explain prefix=anycast"; "selected:"; "phase:"; "candidates:";
      "tie-break:"; "runner-up:"; "counterfactual:";
    ];
  (* A client-prefix destination works too, and Server.explain (the
     function the CLI calls) returns exactly the framed body. *)
  (match Server.explain t "0" "50" with
  | Error e -> Alcotest.failf "explain 0 50: %s" e
  | Ok body ->
      let resp2, _ = Server.handle_line t "EXPLAIN 0 50" in
      check_str "CLI body equals serve body" (Protocol.frame ~ok:true body)
        resp2);
  (* The origin cannot explain a route to itself. *)
  let provider = string_of_int (Server.provider t) in
  let resp3, _ = Server.handle_line t ("EXPLAIN anycast " ^ provider) in
  check "origin itself is a framed error" true (framed_err resp3)

let test_provenance_jsonl () =
  let t = Lazy.force server in
  let out = Server.provenance_jsonl t ~origin:(Server.provider t) in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  (match lines with
  | header :: _ ->
      check "header carries the schema" true
        (contains ~needle:Netsim_obs.Provenance.schema header)
  | [] -> Alcotest.fail "empty provenance dump");
  (* One record per non-origin AS (the small Internet is connected). *)
  let n =
    Topology.as_count (Engine.topology (Server.engine t))
  in
  check_int "one record per decided AS" n (List.length lines)

let test_never_raises () =
  let t = Lazy.force server in
  let junk =
    [
      "\000\001\002";
      "CATCHMENT \xff\xfe";
      String.make Protocol.max_line 'Z';
      "EGRESS 9223372036854775807";
      "ADVANCE 1e308";
      "RTT -1 -1";
    ]
  in
  List.iter
    (fun line ->
      let resp, cont = Server.handle_line t line in
      check "framed" true (framed_ok resp || framed_err resp);
      check "keeps serving" true cont)
    junk

let test_eof_mid_request () =
  (* A client that dies mid-line: the partial line arrives without a
     newline, must be answered as a protocol error, and the loop must
     end cleanly on EOF. *)
  let t = Lazy.force server in
  let in_path = Filename.temp_file "serve_in" ".txt" in
  let out_path = Filename.temp_file "serve_out" ".txt" in
  let oc = open_out in_path in
  output_string oc "STATS\nCATCH";
  close_out oc;
  let ic = open_in in_path and oc = open_out out_path in
  Server.serve_channels t ic oc;
  close_in ic;
  close_out oc;
  let ic = open_in out_path in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  check "first response ok" true (framed_ok out);
  let has_err =
    let re = "\nERR " in
    let n = String.length out and m = String.length re in
    let rec scan i = i + m <= n && (String.sub out i m = re || scan (i + 1)) in
    scan 0
  in
  check "partial line answered as protocol error" true has_err;
  check "response stream newline-terminated" true
    (String.length out > 0 && out.[String.length out - 1] = '\n')

(* ---- snapshot codec --------------------------------------------------- *)

let small_snapshot =
  lazy
    (let cfg = { Server.small_config with Server.n_prefixes = 30; churn = true } in
     Server.snapshot (Server.build cfg))

let test_roundtrip_bytes () =
  let snap = Lazy.force small_snapshot in
  let bytes = Snapshot.to_bytes snap in
  match Snapshot.of_bytes bytes with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok snap2 ->
      check_str "re-encode is byte-identical" bytes (Snapshot.to_bytes snap2);
      check_int "as count survives"
        (Topology.as_count snap.Snapshot.base)
        (Topology.as_count snap2.Snapshot.base);
      check_int "link count survives"
        (Topology.link_count snap.Snapshot.base)
        (Topology.link_count snap2.Snapshot.base);
      check "pending timeline survives" true
        (snap.Snapshot.pending = snap2.Snapshot.pending);
      check "prefixes survive" true
        (snap.Snapshot.prefixes = snap2.Snapshot.prefixes)

let test_roundtrip_file () =
  let snap = Lazy.force small_snapshot in
  let path = Filename.temp_file "snap" ".bin" in
  Snapshot.save snap ~path;
  (match Snapshot.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok snap2 ->
      check_str "file round-trip byte-identical" (Snapshot.to_bytes snap)
        (Snapshot.to_bytes snap2));
  Sys.remove path;
  match Snapshot.load ~path with
  | Error e -> check "missing file is a clear error" true (e <> "")
  | Ok _ -> Alcotest.fail "loading a deleted file succeeded"

let expect_error what = function
  | Error msg -> check (what ^ " mentions snapshot") true (msg <> "")
  | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" what

let test_rejects_corrupt () =
  let bytes = Snapshot.to_bytes (Lazy.force small_snapshot) in
  (* Wrong magic. *)
  (match
     Snapshot.of_bytes ("XXXXXXXX" ^ String.sub bytes 8 (String.length bytes - 8))
   with
  | Error msg -> check "magic named in error" true (contains ~needle:"magic" msg)
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (* Unsupported schema version. *)
  let v99 = Bytes.of_string bytes in
  Bytes.set_int32_le v99 8 99l;
  (match Snapshot.of_bytes (Bytes.to_string v99) with
  | Error msg ->
      check "version named in error" true (contains ~needle:"version" msg)
  | Ok _ -> Alcotest.fail "future schema version accepted");
  (* Trailing garbage. *)
  (match Snapshot.of_bytes (bytes ^ "zz") with
  | Error msg ->
      check "trailing bytes named in error" true
        (contains ~needle:"trailing" msg)
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (* Truncation anywhere must be an Error, never an exception. *)
  let n = String.length bytes in
  let cuts = List.init 16 (fun i -> i) @ List.init (n / 512) (fun i -> i * 512) in
  List.iter
    (fun cut ->
      if cut < n then
        expect_error
          (Printf.sprintf "truncated at %d" cut)
          (Snapshot.of_bytes (String.sub bytes 0 cut)))
    cuts

(* ---- load-path equivalence ------------------------------------------- *)

(* Each server runs its queries against a private RIB-cache shard so
   the two in-process servers cannot warm each other's cache — STATS
   reports per-shard hit/miss counters and must match too. *)
let drive server queries =
  Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () ->
      List.map (fun q -> fst (Server.handle_line server q)) queries)

let equivalence_queries pop =
  [
    "STATS";
    "CATCHMENT 0";
    "CATCHMENT 11";
    Printf.sprintf "EGRESS %d" pop;
    "RTT 2 anycast";
    "EXPLAIN anycast 11";
    "ADVANCE 360";
    "CATCHMENT 11";
    Printf.sprintf "EGRESS %d" pop;
    "RTT 2 anycast";
    "EXPLAIN anycast 11";
    "EXPLAIN 0 11";
    "STATS";
  ]

let prop_loaded_equals_fresh =
  QCheck.Test.make ~name:"snapshot-loaded server answers like seed-built"
    ~count:4 (QCheck.int_range 0 200) (fun seed ->
      let cfg =
        {
          Server.small_config with
          Server.seed;
          n_prefixes = 24;
          track = 2;
          churn = true;
        }
      in
      let fresh = Server.build cfg in
      let snap = Server.snapshot fresh in
      match Server.of_snapshot cfg snap with
      | Error e -> QCheck.Test.fail_reportf "of_snapshot: %s" e
      | Ok loaded ->
          let queries = equivalence_queries (List.hd (Server.pops fresh)) in
          drive fresh queries = drive loaded queries)

let suite =
  [
    Alcotest.test_case "protocol: accepted forms" `Quick test_parse_ok;
    Alcotest.test_case "protocol: malformed input" `Quick test_parse_errors;
    Alcotest.test_case "protocol: response framing" `Quick test_frame;
    Alcotest.test_case "queries: unknown ids are clean errors" `Quick
      test_unknown_ids;
    Alcotest.test_case "queries: untracked origin" `Quick test_untracked_origin;
    Alcotest.test_case "queries: EXPLAIN decision chain" `Quick test_explain;
    Alcotest.test_case "queries: provenance JSONL dump" `Quick
      test_provenance_jsonl;
    Alcotest.test_case "queries: junk never raises" `Quick test_never_raises;
    Alcotest.test_case "loop: EOF mid-request" `Quick test_eof_mid_request;
    Alcotest.test_case "snapshot: byte round-trip" `Quick test_roundtrip_bytes;
    Alcotest.test_case "snapshot: file round-trip" `Quick test_roundtrip_file;
    Alcotest.test_case "snapshot: rejects corrupt input" `Quick
      test_rejects_corrupt;
    QCheck_alcotest.to_alcotest prop_loaded_equals_fresh;
  ]
