(* The serve subsystem: protocol totality (malformed queries, unknown
   ids, oversized lines and EOF mid-request become framed protocol
   errors, never exceptions), snapshot codec round-trips and rejection
   of corrupt input, and the load-path equivalence property — a
   snapshot-loaded server answers a request stream byte-identically to
   the seed-built server it was saved from, churn included. *)

module Protocol = Netsim_serve.Protocol
module Snapshot = Netsim_serve.Snapshot
module Server = Netsim_serve.Server
module Topology = Netsim_topo.Topology
module Rib_cache = Netsim_bgp.Rib_cache
module Engine = Netsim_dynamics.Engine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* One shared small server for the query tests (building is the
   expensive part; queries don't mutate routing unless time advances). *)
let server =
  lazy (Server.build { Server.small_config with Server.n_prefixes = 30 })

(* ---- protocol --------------------------------------------------------- *)

let test_parse_ok () =
  let cases =
    [
      ("CATCHMENT 3", Protocol.Catchment "3");
      ("catchment 3", Protocol.Catchment "3");
      ("  EGRESS   94  ", Protocol.Egress 94);
      ("RTT 2 anycast", Protocol.Rtt ("2", "anycast"));
      ("EXPLAIN anycast 39", Protocol.Explain ("anycast", "39"));
      ("explain 0 50", Protocol.Explain ("0", "50"));
      ("STATS", Protocol.Stats);
      ("SNAPSHOT /tmp/x.bin", Protocol.Snapshot_to "/tmp/x.bin");
      ("PROM", Protocol.Prom);
      ("ADVANCE 12.5", Protocol.Advance 12.5);
      ("QUIT", Protocol.Quit);
      ("QUIT\r", Protocol.Quit);
    ]
  in
  List.iter
    (fun (line, want) ->
      match Protocol.parse line with
      | Ok got -> check line true (got = want)
      | Error e -> Alcotest.failf "%s: unexpected parse error %s" line e)
    cases

let test_parse_errors () =
  let cases =
    [
      "";
      "   ";
      "BOGUS";
      "CATCHMENT";
      "CATCHMENT 1 2";
      "EGRESS notanumber";
      "RTT 1";
      "RTT";
      "EXPLAIN";
      "EXPLAIN anycast";
      "EXPLAIN anycast 1 2";
      "ADVANCE nan";
      "ADVANCE -5";
      "ADVANCE";
      "STATS now";
      "QUIT please";
      String.make (Protocol.max_line + 1) 'A';
    ]
  in
  List.iter
    (fun line ->
      match Protocol.parse line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S: expected a parse error" line)
    cases

let test_frame () =
  check_str "ok frame" "OK 5\nhello\n" (Protocol.frame ~ok:true "hello");
  check_str "err frame" "ERR 3\nbad\n" (Protocol.frame ~ok:false "bad");
  check_str "empty body" "OK 0\n\n" (Protocol.frame ~ok:true "")

(* ---- query totality --------------------------------------------------- *)

let framed_err s = String.length s > 4 && String.sub s 0 4 = "ERR "
let framed_ok s = String.length s > 3 && String.sub s 0 3 = "OK "

let contains ~needle hay =
  let n = String.length hay and m = String.length needle in
  let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
  scan 0

let test_unknown_ids () =
  let t = Lazy.force server in
  let errs =
    [
      "CATCHMENT 99999";
      "CATCHMENT -1";
      "CATCHMENT notanumber";
      "EGRESS 100000";
      "RTT 99999 anycast";
      "RTT 0 notanumber";
      "EXPLAIN anycast 99999";
      "EXPLAIN anycast notanumber";
      "EXPLAIN 99999 3";
      "SNAPSHOT /nonexistent-dir/deep/x.bin";
    ]
  in
  List.iter
    (fun line ->
      let resp, cont = Server.handle_line t line in
      check (line ^ " keeps serving") true cont;
      check (line ^ " is a framed error") true (framed_err resp))
    errs;
  (* And the server still answers real queries afterwards. *)
  let resp, cont = Server.handle_line t "CATCHMENT 0" in
  check "still alive" true (cont && framed_ok resp)

let test_untracked_origin () =
  let t = Lazy.force server in
  (* AS 0 is a Tier-1 in every generated Internet: a valid AS id, but
     never a tracked origin — must be a clean error, not a crash. *)
  let resp, _ = Server.handle_line t "RTT 0 0" in
  check "untracked origin is a framed error" true (framed_err resp)

let test_explain () =
  let t = Lazy.force server in
  (* A well-formed EXPLAIN answers OK with the full decision chain. *)
  let resp, cont = Server.handle_line t "EXPLAIN anycast 39" in
  check "explain keeps serving" true cont;
  check "explain is framed ok" true (framed_ok resp);
  List.iter
    (fun needle ->
      check ("body mentions " ^ needle) true (contains ~needle resp))
    [
      "explain prefix=anycast"; "selected:"; "phase:"; "candidates:";
      "tie-break:"; "runner-up:"; "counterfactual:";
    ];
  (* A client-prefix destination works too, and Server.explain (the
     function the CLI calls) returns exactly the framed body. *)
  (match Server.explain t "0" "50" with
  | Error e -> Alcotest.failf "explain 0 50: %s" e
  | Ok body ->
      let resp2, _ = Server.handle_line t "EXPLAIN 0 50" in
      check_str "CLI body equals serve body" (Protocol.frame ~ok:true body)
        resp2);
  (* The origin cannot explain a route to itself. *)
  let provider = string_of_int (Server.provider t) in
  let resp3, _ = Server.handle_line t ("EXPLAIN anycast " ^ provider) in
  check "origin itself is a framed error" true (framed_err resp3)

let test_provenance_jsonl () =
  let t = Lazy.force server in
  let out = Server.provenance_jsonl t ~origin:(Server.provider t) in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  (match lines with
  | header :: _ ->
      check "header carries the schema" true
        (contains ~needle:Netsim_obs.Provenance.schema header)
  | [] -> Alcotest.fail "empty provenance dump");
  (* One record per non-origin AS (the small Internet is connected). *)
  let n =
    Topology.as_count (Engine.topology (Server.engine t))
  in
  check_int "one record per decided AS" n (List.length lines)

let test_never_raises () =
  let t = Lazy.force server in
  let junk =
    [
      "\000\001\002";
      "CATCHMENT \xff\xfe";
      String.make Protocol.max_line 'Z';
      "EGRESS 9223372036854775807";
      "ADVANCE 1e308";
      "RTT -1 -1";
    ]
  in
  List.iter
    (fun line ->
      let resp, cont = Server.handle_line t line in
      check "framed" true (framed_ok resp || framed_err resp);
      check "keeps serving" true cont)
    junk

let test_eof_mid_request () =
  (* A client that dies mid-line: the partial line arrives without a
     newline, must be answered as a protocol error, and the loop must
     end cleanly on EOF. *)
  let t = Lazy.force server in
  let in_path = Filename.temp_file "serve_in" ".txt" in
  let out_path = Filename.temp_file "serve_out" ".txt" in
  let oc = open_out in_path in
  output_string oc "STATS\nCATCH";
  close_out oc;
  let ic = open_in in_path and oc = open_out out_path in
  Server.serve_channels t ic oc;
  close_in ic;
  close_out oc;
  let ic = open_in out_path in
  let out = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove in_path;
  Sys.remove out_path;
  check "first response ok" true (framed_ok out);
  let has_err =
    let re = "\nERR " in
    let n = String.length out and m = String.length re in
    let rec scan i = i + m <= n && (String.sub out i m = re || scan (i + 1)) in
    scan 0
  in
  check "partial line answered as protocol error" true has_err;
  check "response stream newline-terminated" true
    (String.length out > 0 && out.[String.length out - 1] = '\n')

(* ---- snapshot codec --------------------------------------------------- *)

let small_snapshot =
  lazy
    (let cfg = { Server.small_config with Server.n_prefixes = 30; churn = true } in
     Server.snapshot (Server.build cfg))

let test_roundtrip_bytes () =
  let snap = Lazy.force small_snapshot in
  let bytes = Snapshot.to_bytes snap in
  match Snapshot.of_bytes bytes with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok snap2 ->
      check_str "re-encode is byte-identical" bytes (Snapshot.to_bytes snap2);
      check_int "as count survives"
        (Topology.as_count snap.Snapshot.base)
        (Topology.as_count snap2.Snapshot.base);
      check_int "link count survives"
        (Topology.link_count snap.Snapshot.base)
        (Topology.link_count snap2.Snapshot.base);
      check "pending timeline survives" true
        (snap.Snapshot.pending = snap2.Snapshot.pending);
      check "prefixes survive" true
        (snap.Snapshot.prefixes = snap2.Snapshot.prefixes)

let test_roundtrip_file () =
  let snap = Lazy.force small_snapshot in
  let path = Filename.temp_file "snap" ".bin" in
  Snapshot.save snap ~path;
  (match Snapshot.load ~path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok snap2 ->
      check_str "file round-trip byte-identical" (Snapshot.to_bytes snap)
        (Snapshot.to_bytes snap2));
  Sys.remove path;
  match Snapshot.load ~path with
  | Error e -> check "missing file is a clear error" true (e <> "")
  | Ok _ -> Alcotest.fail "loading a deleted file succeeded"

let expect_error what = function
  | Error msg -> check (what ^ " mentions snapshot") true (msg <> "")
  | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" what

let test_roundtrip_bytes_v2 () =
  let snap = Lazy.force small_snapshot in
  let bytes = Snapshot.to_bytes_v2 snap in
  match Snapshot.of_bytes bytes with
  | Error e -> Alcotest.failf "v2 round-trip failed: %s" e
  | Ok snap2 ->
      check_str "v2 re-encode is byte-identical" bytes
        (Snapshot.to_bytes_v2 snap2);
      check_str "v1 encodings of both agree" (Snapshot.to_bytes snap)
        (Snapshot.to_bytes snap2)

let test_roundtrip_file_v2 () =
  let snap = Lazy.force small_snapshot in
  let path = Filename.temp_file "snap_v2" ".bin" in
  Snapshot.save ~version:Snapshot.schema_version_v2 snap ~path;
  (* The default save is v2. *)
  let path_default = Filename.temp_file "snap_default" ".bin" in
  Snapshot.save snap ~path:path_default;
  let read_all p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  check_str "save defaults to v2" (read_all path) (read_all path_default);
  Sys.remove path_default;
  (match Snapshot.load ~path with
  | Error e -> Alcotest.failf "v2 load failed: %s" e
  | Ok snap2 ->
      check_str "v2 mmap load round-trips byte-identically"
        (Snapshot.to_bytes_v2 snap)
        (Snapshot.to_bytes_v2 snap2));
  Sys.remove path

let test_v1_files_still_load () =
  (* Compatibility: a file written at schema v1 (what every earlier
     build wrote) must keep loading through the heap-decode fallback. *)
  let snap = Lazy.force small_snapshot in
  let path = Filename.temp_file "snap_v1" ".bin" in
  Snapshot.save ~version:Snapshot.schema_version snap ~path;
  (match Snapshot.load ~path with
  | Error e -> Alcotest.failf "v1 load failed: %s" e
  | Ok snap2 ->
      check_str "v1 file load round-trips byte-identically"
        (Snapshot.to_bytes snap) (Snapshot.to_bytes snap2));
  Sys.remove path;
  match Snapshot.save ~version:99 snap ~path with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "save accepted an unknown schema version"

let test_rejects_corrupt () =
  let bytes = Snapshot.to_bytes (Lazy.force small_snapshot) in
  (* Wrong magic. *)
  (match
     Snapshot.of_bytes ("XXXXXXXX" ^ String.sub bytes 8 (String.length bytes - 8))
   with
  | Error msg -> check "magic named in error" true (contains ~needle:"magic" msg)
  | Ok _ -> Alcotest.fail "bad magic accepted");
  (* Unsupported schema version. *)
  let v99 = Bytes.of_string bytes in
  Bytes.set_int32_le v99 8 99l;
  (match Snapshot.of_bytes (Bytes.to_string v99) with
  | Error msg ->
      check "version named in error" true (contains ~needle:"version" msg)
  | Ok _ -> Alcotest.fail "future schema version accepted");
  (* Trailing garbage. *)
  (match Snapshot.of_bytes (bytes ^ "zz") with
  | Error msg ->
      check "trailing bytes named in error" true
        (contains ~needle:"trailing" msg)
  | Ok _ -> Alcotest.fail "trailing garbage accepted");
  (* Truncation anywhere must be an Error, never an exception. *)
  let n = String.length bytes in
  let cuts = List.init 16 (fun i -> i) @ List.init (n / 512) (fun i -> i * 512) in
  List.iter
    (fun cut ->
      if cut < n then
        expect_error
          (Printf.sprintf "truncated at %d" cut)
          (Snapshot.of_bytes (String.sub bytes 0 cut)))
    cuts

(* The same corruption sweep against the v2 arena layout, which has
   its own failure surface: a section table that lies about offsets or
   counts must be caught before any Bigarray mapping happens. *)
let test_rejects_corrupt_v2 () =
  let bytes = Snapshot.to_bytes_v2 (Lazy.force small_snapshot) in
  let n = String.length bytes in
  (* Truncation anywhere. *)
  let cuts = List.init 32 (fun i -> i) @ List.init (n / 512) (fun i -> i * 512) in
  List.iter
    (fun cut ->
      if cut < n then
        expect_error
          (Printf.sprintf "v2 truncated at %d" cut)
          (Snapshot.of_bytes (String.sub bytes 0 cut)))
    cuts;
  (* Trailing garbage. *)
  expect_error "v2 trailing bytes" (Snapshot.of_bytes (bytes ^ "zz"));
  (* A corrupted metadata offset (bytes 12..19 of the header). *)
  let flip off =
    let b = Bytes.of_string bytes in
    Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
    Bytes.to_string b
  in
  expect_error "v2 corrupt meta_off" (Snapshot.of_bytes (flip 12));
  (* A corrupted section-table entry (first section offset / count). *)
  expect_error "v2 corrupt section offset" (Snapshot.of_bytes (flip 24));
  expect_error "v2 corrupt section count" (Snapshot.of_bytes (flip 32));
  (* Corrupt files must also fail cleanly through the mmap load path
     (a distinct decoder surface from of_bytes). *)
  let write_file data =
    let path = Filename.temp_file "snap_corrupt" ".bin" in
    let oc = open_out_bin path in
    output_string oc data;
    close_out oc;
    path
  in
  List.iter
    (fun data ->
      let path = write_file data in
      (match Snapshot.load ~path with
      | Error msg -> check "file load error is clear" true (msg <> "")
      | Ok _ -> Alcotest.failf "corrupt file %s loaded" path);
      Sys.remove path)
    [
      String.sub bytes 0 (n / 2);
      String.sub bytes 0 30;
      flip 12;
      flip 24;
      bytes ^ "zz";
      "";
    ]

(* ---- concurrent executor ---------------------------------------------- *)

let read_only_queries pop =
  [|
    (fun i -> Printf.sprintf "CATCHMENT %d" (i mod 30));
    (fun i -> Printf.sprintf "RTT %d anycast" (i mod 30));
    (fun _ -> Printf.sprintf "EGRESS %d" pop);
    (fun i -> Printf.sprintf "EXPLAIN anycast %d" (11 + (i mod 7)));
    (fun _ -> "BOGUS request");
  |]

let test_read_only () =
  List.iter
    (fun (line, want) ->
      match Protocol.parse line with
      | Ok req ->
          Alcotest.(check bool) (line ^ " classification") want
            (Protocol.read_only req)
      | Error e -> Alcotest.failf "%s: %s" line e)
    [
      ("CATCHMENT 0", true);
      ("EGRESS 94", true);
      ("RTT 0 anycast", true);
      ("EXPLAIN anycast 3", true);
      ("STATS", true);
      ("PROM", true);
      ("SNAPSHOT /tmp/x.bin", false);
      ("ADVANCE 15", false);
      ("QUIT", false);
    ]

let private_server cfg = Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () -> Server.build cfg)

let streams_cfg = { Server.small_config with Server.n_prefixes = 30 }

(* Deterministic interleaving check: three fixed streams served
   concurrently must answer exactly like each stream served alone on a
   fresh server.  (STATS is excluded: its body reports shared RIB-cache
   and clock counters, which other concurrent sessions legitimately
   move.) *)
let test_streams_vs_alone () =
  let mk = read_only_queries 94 in
  let stream k len =
    List.init len (fun i -> mk.((i + k) mod Array.length mk) (i + k))
  in
  let streams = [| stream 0 10; stream 1 7; stream 2 12 |] in
  let concurrent =
    Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () ->
        Server.serve_streams (private_server streams_cfg) streams)
  in
  Array.iteri
    (fun i stream ->
      let alone =
        Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () ->
            let t = private_server streams_cfg in
            List.map (fun q -> fst (Server.handle_line t q)) stream)
      in
      check
        (Printf.sprintf "stream %d: concurrent equals alone" i)
        true
        (concurrent.(i) = alone))
    streams

(* Randomized version of the same property, plus domain-count
   independence: any interleaving of random read-only streams is
   byte-identical at 1 and 4 domains and equal to each stream served
   alone. *)
let prop_streams_interleaving =
  let gen =
    QCheck.Gen.(
      list_size (int_range 2 4)
        (list_size (int_range 1 12) (pair (int_range 0 4) (int_range 0 1000))))
  in
  QCheck.Test.make
    ~name:"concurrent streams answer like streams served alone (domains 1 = 4)"
    ~count:6
    (QCheck.make gen)
    (fun picks ->
      let mk = read_only_queries 94 in
      let streams =
        Array.of_list
          (List.map
             (fun l -> List.map (fun (v, i) -> mk.(v) i) l)
             picks)
      in
      let saved = Netsim_par.Pool.domain_count () in
      Fun.protect
        ~finally:(fun () -> Netsim_par.Pool.set_domain_count saved)
        (fun () ->
          let run domains =
            Netsim_par.Pool.set_domain_count domains;
            Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () ->
                Server.serve_streams (private_server streams_cfg) streams)
          in
          let d1 = run 1 and d4 = run 4 in
          if d1 <> d4 then
            QCheck.Test.fail_report "domains 1 and 4 disagree";
          Array.iteri
            (fun i stream ->
              let alone =
                Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () ->
                    let t = private_server streams_cfg in
                    List.map (fun q -> fst (Server.handle_line t q)) stream)
              in
              if d1.(i) <> alone then
                QCheck.Test.fail_reportf "stream %d differs from served-alone"
                  i)
            streams;
          true))

(* A write barrier mid-stream: reads after an ADVANCE must see the
   post-advance state exactly as a sequential client would. *)
let test_streams_with_barrier () =
  let stream =
    [
      "CATCHMENT 0"; "RTT 2 anycast"; "ADVANCE 360"; "CATCHMENT 0";
      "RTT 2 anycast"; "EXPLAIN anycast 11";
    ]
  in
  let cfg = { streams_cfg with Server.churn = true } in
  let concurrent =
    Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () ->
        Server.serve_streams (private_server cfg)
          [| stream; [ "CATCHMENT 5"; "RTT 7 anycast" ] |])
  in
  let alone =
    Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () ->
        let t = private_server cfg in
        List.map (fun q -> fst (Server.handle_line t q)) stream)
  in
  check "barrier stream: concurrent equals alone" true (concurrent.(0) = alone)

(* ---- TCP listener ----------------------------------------------------- *)

let test_retry_eintr () =
  let attempts = ref 0 in
  let r =
    Server.retry_eintr (fun () ->
        incr attempts;
        if !attempts < 3 then raise (Unix.Unix_error (Unix.EINTR, "accept", ""));
        42)
  in
  check_int "returns after EINTR retries" 42 r;
  check_int "retried exactly twice" 3 !attempts;
  (* Other errors still propagate. *)
  match Server.retry_eintr (fun () -> raise (Unix.Unix_error (Unix.EBADF, "x", ""))) with
  | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
  | _ -> Alcotest.fail "EBADF swallowed"

(* Read one framed response ("OK <n>\n<n bytes>\n") off a channel. *)
let read_framed ic =
  let header = input_line ic in
  match String.split_on_char ' ' header with
  | [ status; len ] ->
      let n = int_of_string len in
      let body = really_input_string ic (n + 1) in
      (status, String.sub body 0 n)
  | _ -> Alcotest.failf "bad frame header %S" header

let test_listen_two_clients () =
  let t = private_server streams_cfg in
  let port = ref 0 in
  let ready = Mutex.create () and cond = Condition.create () in
  let listener =
    Domain.spawn (fun () ->
        Server.listen t ~port:0
          ~port_ready:(fun p ->
            Mutex.lock ready;
            port := p;
            Condition.signal cond;
            Mutex.unlock ready))
  in
  Mutex.lock ready;
  while !port = 0 do
    Condition.wait cond ready
  done;
  let p = !port in
  Mutex.unlock ready;
  let connect () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
    (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  in
  let send oc line =
    output_string oc (line ^ "\n");
    flush oc
  in
  let fd1, ic1, oc1 = connect () in
  let fd2, ic2, oc2 = connect () in
  (* Interleave queries across the two live connections. *)
  send oc1 "CATCHMENT 0";
  send oc2 "RTT 2 anycast";
  let s1, b1 = read_framed ic1 in
  let s2, b2 = read_framed ic2 in
  check_str "client 1 ok" "OK" s1;
  check_str "client 2 ok" "OK" s2;
  check "client 1 got a catchment" true (contains ~needle:"prefix=0" b1);
  check "client 2 got an rtt" true (contains ~needle:"client=2" b2);
  (* Both clients see their own session counters. *)
  send oc1 "STATS";
  let _, stats1 = read_framed ic1 in
  check "client 1 session counts its own queries" true
    (contains ~needle:"queries total=2 catchment=1" stats1);
  send oc2 "BOGUS";
  let s2e, _ = read_framed ic2 in
  check_str "malformed input framed as error" "ERR" s2e;
  (* QUIT from client 2 shuts the daemon down cleanly. *)
  send oc2 "QUIT";
  let s2q, b2q = read_framed ic2 in
  check_str "quit ok" "OK" s2q;
  check_str "quit body" "bye" b2q;
  Domain.join listener;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ fd1; fd2 ];
  ignore (ic1, ic2, oc1, oc2)

(* ---- load-path equivalence ------------------------------------------- *)

(* Each server runs its queries against a private RIB-cache shard so
   the two in-process servers cannot warm each other's cache — STATS
   reports per-shard hit/miss counters and must match too. *)
let drive server queries =
  Rib_cache.capture (Rib_cache.fresh_shard ()) (fun () ->
      List.map (fun q -> fst (Server.handle_line server q)) queries)

let equivalence_queries pop =
  [
    "STATS";
    "CATCHMENT 0";
    "CATCHMENT 11";
    Printf.sprintf "EGRESS %d" pop;
    "RTT 2 anycast";
    "EXPLAIN anycast 11";
    "ADVANCE 360";
    "CATCHMENT 11";
    Printf.sprintf "EGRESS %d" pop;
    "RTT 2 anycast";
    "EXPLAIN anycast 11";
    "EXPLAIN 0 11";
    "STATS";
  ]

let prop_loaded_equals_fresh =
  QCheck.Test.make ~name:"snapshot-loaded server answers like seed-built"
    ~count:4 (QCheck.int_range 0 200) (fun seed ->
      let cfg =
        {
          Server.small_config with
          Server.seed;
          n_prefixes = 24;
          track = 2;
          churn = true;
        }
      in
      let fresh = Server.build cfg in
      let snap = Server.snapshot fresh in
      match Server.of_snapshot cfg snap with
      | Error e -> QCheck.Test.fail_reportf "of_snapshot: %s" e
      | Ok loaded ->
          let queries = equivalence_queries (List.hd (Server.pops fresh)) in
          drive fresh queries = drive loaded queries)

let suite =
  [
    Alcotest.test_case "protocol: accepted forms" `Quick test_parse_ok;
    Alcotest.test_case "protocol: malformed input" `Quick test_parse_errors;
    Alcotest.test_case "protocol: response framing" `Quick test_frame;
    Alcotest.test_case "queries: unknown ids are clean errors" `Quick
      test_unknown_ids;
    Alcotest.test_case "queries: untracked origin" `Quick test_untracked_origin;
    Alcotest.test_case "queries: EXPLAIN decision chain" `Quick test_explain;
    Alcotest.test_case "queries: provenance JSONL dump" `Quick
      test_provenance_jsonl;
    Alcotest.test_case "queries: junk never raises" `Quick test_never_raises;
    Alcotest.test_case "loop: EOF mid-request" `Quick test_eof_mid_request;
    Alcotest.test_case "snapshot: byte round-trip" `Quick test_roundtrip_bytes;
    Alcotest.test_case "snapshot: file round-trip" `Quick test_roundtrip_file;
    Alcotest.test_case "snapshot: v2 byte round-trip" `Quick
      test_roundtrip_bytes_v2;
    Alcotest.test_case "snapshot: v2 mmap file round-trip" `Quick
      test_roundtrip_file_v2;
    Alcotest.test_case "snapshot: v1 files still load" `Quick
      test_v1_files_still_load;
    Alcotest.test_case "snapshot: rejects corrupt input" `Quick
      test_rejects_corrupt;
    Alcotest.test_case "snapshot: rejects corrupt v2 input" `Quick
      test_rejects_corrupt_v2;
    Alcotest.test_case "executor: read-only verb classification" `Quick
      test_read_only;
    Alcotest.test_case "executor: concurrent streams equal served-alone" `Quick
      test_streams_vs_alone;
    Alcotest.test_case "executor: write barrier mid-stream" `Quick
      test_streams_with_barrier;
    QCheck_alcotest.to_alcotest prop_streams_interleaving;
    Alcotest.test_case "listener: EINTR retry" `Quick test_retry_eintr;
    Alcotest.test_case "listener: two concurrent TCP clients" `Quick
      test_listen_two_clients;
    QCheck_alcotest.to_alcotest prop_loaded_equals_fresh;
  ]
