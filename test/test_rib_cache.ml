(* RIB-cache semantics: hits on repeated (topology, config), misses
   after a topology change (generation bump via remove_links /
   reconverge), LRU eviction at the capacity bound, and isolation of
   the disable switch.  The returned states must always be the exact
   cached-or-fresh [Propagate.run] result — callers cannot tell the
   difference. *)

module Topology = Netsim_topo.Topology
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test runs against a private shard with a saved/restored
   capacity, so tests neither see each other's entries nor the
   session shard of the surrounding suite. *)
let isolated ?(capacity = 64) f =
  let saved_cap = Rib_cache.capacity () in
  let saved_enabled = Rib_cache.enabled () in
  Rib_cache.set_capacity capacity;
  Rib_cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Rib_cache.set_capacity saved_cap;
      Rib_cache.set_enabled saved_enabled)
    (fun () -> Rib_cache.capture (Rib_cache.fresh_shard ()) f)

let test_hit_on_repeat () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  let s1 = Rib_cache.run topo config in
  let s2 = Rib_cache.run topo config in
  check_int "one miss" 1 (Rib_cache.misses ());
  check_int "one hit" 1 (Rib_cache.hits ());
  check "cached state is the same value" true (s1 == s2);
  (* A structurally equal but distinct config hits too: the key is
     content-addressed, not physical. *)
  let s3 = Rib_cache.run topo (Announce.default ~origin:Fixture.cp) in
  check_int "content hit" 2 (Rib_cache.hits ());
  check "still the same value" true (s1 == s3)

let test_distinct_configs_miss () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let _ = Rib_cache.run topo (Announce.default ~origin:Fixture.cp) in
  let _ = Rib_cache.run topo (Announce.default ~origin:Fixture.eb) in
  let _ =
    Rib_cache.run topo
      (Announce.only_at_metros ~origin:Fixture.cp [ Fixture.ny ])
  in
  check_int "three distinct keys" 3 (Rib_cache.misses ());
  check_int "no hits" 0 (Rib_cache.hits ())

let test_generation_invalidates () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  let s_before = Rib_cache.run topo config in
  (* Same link set rebuilt from scratch: still a different topology
     value, so it must miss (stamps are identity, not content). *)
  let failed = Topology.remove_links topo [ 0 ] in
  let s_failed = Rib_cache.run failed config in
  check_int "failed topology misses" 2 (Rib_cache.misses ());
  check "failed state differs" false (Propagate.equal s_before s_failed);
  (* The original topology value still hits: removal did not disturb
     its entry. *)
  let s_again = Rib_cache.run topo config in
  check "original still cached" true (s_before == s_again);
  check_int "original hits" 1 (Rib_cache.hits ());
  (* The failed state matches a direct uncached run. *)
  check "failed state correct" true
    (Propagate.equal s_failed (Propagate.run failed config))

let test_lru_eviction () =
  isolated ~capacity:2 @@ fun () ->
  let topo = Fixture.topo () in
  let cfg origin = Announce.default ~origin in
  let _ = Rib_cache.run topo (cfg Fixture.cp) in
  let _ = Rib_cache.run topo (cfg Fixture.eb) in
  check_int "at capacity" 2 (Rib_cache.size ());
  (* Touch cp so eb becomes the LRU victim. *)
  let _ = Rib_cache.run topo (cfg Fixture.cp) in
  let _ = Rib_cache.run topo (cfg Fixture.st) in
  check_int "bounded" 2 (Rib_cache.size ());
  let _ = Rib_cache.run topo (cfg Fixture.cp) in
  check_int "cp survived (recently used)" 2 (Rib_cache.hits ());
  let misses_before = Rib_cache.misses () in
  let _ = Rib_cache.run topo (cfg Fixture.eb) in
  check_int "eb was evicted" (misses_before + 1) (Rib_cache.misses ())

let test_disabled_bypasses () =
  isolated @@ fun () ->
  Rib_cache.set_enabled false;
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  let s1 = Rib_cache.run topo config in
  let s2 = Rib_cache.run topo config in
  check_int "no entries" 0 (Rib_cache.size ());
  check_int "no hits" 0 (Rib_cache.hits ());
  check_int "no misses" 0 (Rib_cache.misses ());
  check "distinct states" true (s1 != s2);
  check "equal results" true (Propagate.equal s1 s2)

let test_absorb_merges () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  (* A task computes into its own shard; after absorb the parent hits
     on the same key — the cross-Pool.map reuse path. *)
  let task = Rib_cache.fresh_shard () in
  let s_task = Rib_cache.capture task (fun () -> Rib_cache.run topo config) in
  check_int "parent untouched during capture" 0 (Rib_cache.size ());
  Rib_cache.absorb task;
  check_int "entry merged" 1 (Rib_cache.size ());
  check_int "miss total merged" 1 (Rib_cache.misses ());
  let s_parent = Rib_cache.run topo config in
  check "parent hits the task's entry" true (s_task == s_parent);
  check_int "hit recorded" 1 (Rib_cache.hits ())

(* ---- batched lookups --------------------------------------------------- *)

(* [Rib_cache.run_batch] promises to be observationally byte-identical
   to a sequential loop of [Rib_cache.run]: same states, same hit/miss
   totals, same recency and eviction order — at any domain count. *)

module Pool = Netsim_par.Pool

let with_domains d f =
  let saved = Pool.domain_count () in
  Pool.set_domain_count d;
  Fun.protect ~finally:(fun () -> Pool.set_domain_count saved) f

let cfg origin = Announce.default ~origin

let test_batch_dedups_misses () =
  let topo = Fixture.topo () in
  let workload =
    [| cfg Fixture.cp; cfg Fixture.eb; cfg Fixture.cp; cfg Fixture.cp;
       cfg Fixture.eb |]
  in
  (* Baseline: the sequential loop's counters and states. *)
  let seq_states, seq_hits, seq_misses =
    isolated @@ fun () ->
    let sts = Array.map (fun c -> Rib_cache.run topo c) workload in
    (sts, Rib_cache.hits (), Rib_cache.misses ())
  in
  isolated @@ fun () ->
  let sts = Rib_cache.run_batch topo workload in
  check_int "two misses for two distinct keys" 2 (Rib_cache.misses ());
  check_int "duplicates hit, not double-miss" 3 (Rib_cache.hits ());
  check_int "misses equal the sequential loop" seq_misses (Rib_cache.misses ());
  check_int "hits equal the sequential loop" seq_hits (Rib_cache.hits ());
  check "duplicate keys share one cached state" true
    (sts.(0) == sts.(2) && sts.(2) == sts.(3) && sts.(1) == sts.(4));
  Array.iteri
    (fun i st ->
      check
        (Printf.sprintf "state %d equals sequential" i)
        true
        (Propagate.equal st seq_states.(i)))
    sts

let test_batch_provenance_upgrade () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let config = cfg Fixture.cp in
  let _ = Rib_cache.run_batch ~provenance:false topo [| config |] in
  check_int "plain entry cached" 1 (Rib_cache.misses ());
  (* A provenance request against a plain entry regenerates — counted
     as a miss, never served stale without an arena. *)
  let s1 = Rib_cache.run_batch ~provenance:true topo [| config |] in
  check_int "upgrade counted as a miss" 2 (Rib_cache.misses ());
  check_int "upgrade is not a hit" 0 (Rib_cache.hits ());
  (* The upgraded entry satisfies further provenance batches. *)
  let s2 = Rib_cache.run_batch ~provenance:true topo [| config |] in
  check_int "upgraded entry hits" 1 (Rib_cache.hits ());
  check "hit returns the upgraded state" true (s1.(0) == s2.(0));
  check "provenance arena matches a fresh run" true
    (Propagate.provenance_equal s2.(0) (Propagate.run ~provenance:true topo config))

let test_batch_generation_invalidates () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let workload = [| cfg Fixture.cp; cfg Fixture.eb; cfg Fixture.st |] in
  let _ = Rib_cache.run_batch topo workload in
  let _ = Rib_cache.run_batch topo workload in
  check_int "warm batch all hits" 3 (Rib_cache.hits ());
  (* One generation bump must invalidate every origin of the batch. *)
  let failed = Topology.remove_links topo [ Fixture.l_t1_peer ] in
  let sts = Rib_cache.run_batch failed workload in
  check_int "all origins miss after the bump" 6 (Rib_cache.misses ());
  check_int "no stale hits" 3 (Rib_cache.hits ());
  Array.iteri
    (fun i st ->
      check
        (Printf.sprintf "post-bump state %d is fresh and correct" i)
        true
        (Propagate.equal st (Propagate.run failed workload.(i))))
    sts;
  (* The original topology value's entries were not disturbed. *)
  let _ = Rib_cache.run_batch topo workload in
  check_int "original batch still hits" 6 (Rib_cache.hits ())

(* Drive a capacity-bounded workload through the pool and read back
   every observable of the shard: counters, size, and the eviction
   order (probed as the hit/miss pattern of a fixed key sequence,
   which is itself LRU-mutating — so it only matches if the full
   recency order matched to begin with). *)
let lru_observables ~domains topo =
  with_domains domains @@ fun () ->
  isolated ~capacity:3 @@ fun () ->
  let workload =
    Array.map cfg
      [| Fixture.cp; Fixture.eb; Fixture.st; Fixture.cp; Fixture.tr;
         Fixture.t1a; Fixture.cp; Fixture.eb |]
  in
  let _ =
    Pool.map_batches ~batch:2
      (fun chunk -> Rib_cache.run_batch topo chunk)
      workload
  in
  let hits = Rib_cache.hits ()
  and misses = Rib_cache.misses ()
  and size = Rib_cache.size () in
  let probe =
    List.map
      (fun o ->
        let h = Rib_cache.hits () in
        ignore (Rib_cache.run topo (cfg o));
        Rib_cache.hits () > h)
      [ Fixture.cp; Fixture.eb; Fixture.st; Fixture.tr; Fixture.t1a;
        Fixture.st ]
  in
  (hits, misses, size, probe)

let test_batch_lru_domain_independent () =
  let topo = Fixture.topo () in
  let h1, m1, s1, p1 = lru_observables ~domains:1 topo in
  let h4, m4, s4, p4 = lru_observables ~domains:4 topo in
  check_int "hits identical at domains 1 and 4" h1 h4;
  check_int "misses identical at domains 1 and 4" m1 m4;
  check_int "shard size identical at domains 1 and 4" s1 s4;
  Alcotest.(check (list bool))
    "eviction order identical at domains 1 and 4" p1 p4

let suite =
  [
    Alcotest.test_case "hit on repeated (topo, config)" `Quick
      test_hit_on_repeat;
    Alcotest.test_case "distinct configs are distinct keys" `Quick
      test_distinct_configs_miss;
    Alcotest.test_case "generation bump invalidates" `Quick
      test_generation_invalidates;
    Alcotest.test_case "LRU eviction at the bound" `Quick test_lru_eviction;
    Alcotest.test_case "disabled cache bypasses" `Quick test_disabled_bypasses;
    Alcotest.test_case "absorb merges task shards" `Quick test_absorb_merges;
    Alcotest.test_case "batch dedups repeated keys like the loop" `Quick
      test_batch_dedups_misses;
    Alcotest.test_case "batch provenance upgrade counts as a miss" `Quick
      test_batch_provenance_upgrade;
    Alcotest.test_case "generation bump invalidates a whole batch" `Quick
      test_batch_generation_invalidates;
    Alcotest.test_case "batch LRU order identical at domains 1 vs 4" `Quick
      test_batch_lru_domain_independent;
  ]
