(* RIB-cache semantics: hits on repeated (topology, config), misses
   after a topology change (generation bump via remove_links /
   reconverge), LRU eviction at the capacity bound, and isolation of
   the disable switch.  The returned states must always be the exact
   cached-or-fresh [Propagate.run] result — callers cannot tell the
   difference. *)

module Topology = Netsim_topo.Topology
module Announce = Netsim_bgp.Announce
module Propagate = Netsim_bgp.Propagate
module Rib_cache = Netsim_bgp.Rib_cache

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Every test runs against a private shard with a saved/restored
   capacity, so tests neither see each other's entries nor the
   session shard of the surrounding suite. *)
let isolated ?(capacity = 64) f =
  let saved_cap = Rib_cache.capacity () in
  let saved_enabled = Rib_cache.enabled () in
  Rib_cache.set_capacity capacity;
  Rib_cache.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Rib_cache.set_capacity saved_cap;
      Rib_cache.set_enabled saved_enabled)
    (fun () -> Rib_cache.capture (Rib_cache.fresh_shard ()) f)

let test_hit_on_repeat () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  let s1 = Rib_cache.run topo config in
  let s2 = Rib_cache.run topo config in
  check_int "one miss" 1 (Rib_cache.misses ());
  check_int "one hit" 1 (Rib_cache.hits ());
  check "cached state is the same value" true (s1 == s2);
  (* A structurally equal but distinct config hits too: the key is
     content-addressed, not physical. *)
  let s3 = Rib_cache.run topo (Announce.default ~origin:Fixture.cp) in
  check_int "content hit" 2 (Rib_cache.hits ());
  check "still the same value" true (s1 == s3)

let test_distinct_configs_miss () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let _ = Rib_cache.run topo (Announce.default ~origin:Fixture.cp) in
  let _ = Rib_cache.run topo (Announce.default ~origin:Fixture.eb) in
  let _ =
    Rib_cache.run topo
      (Announce.only_at_metros ~origin:Fixture.cp [ Fixture.ny ])
  in
  check_int "three distinct keys" 3 (Rib_cache.misses ());
  check_int "no hits" 0 (Rib_cache.hits ())

let test_generation_invalidates () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  let s_before = Rib_cache.run topo config in
  (* Same link set rebuilt from scratch: still a different topology
     value, so it must miss (stamps are identity, not content). *)
  let failed = Topology.remove_links topo [ 0 ] in
  let s_failed = Rib_cache.run failed config in
  check_int "failed topology misses" 2 (Rib_cache.misses ());
  check "failed state differs" false (Propagate.equal s_before s_failed);
  (* The original topology value still hits: removal did not disturb
     its entry. *)
  let s_again = Rib_cache.run topo config in
  check "original still cached" true (s_before == s_again);
  check_int "original hits" 1 (Rib_cache.hits ());
  (* The failed state matches a direct uncached run. *)
  check "failed state correct" true
    (Propagate.equal s_failed (Propagate.run failed config))

let test_lru_eviction () =
  isolated ~capacity:2 @@ fun () ->
  let topo = Fixture.topo () in
  let cfg origin = Announce.default ~origin in
  let _ = Rib_cache.run topo (cfg Fixture.cp) in
  let _ = Rib_cache.run topo (cfg Fixture.eb) in
  check_int "at capacity" 2 (Rib_cache.size ());
  (* Touch cp so eb becomes the LRU victim. *)
  let _ = Rib_cache.run topo (cfg Fixture.cp) in
  let _ = Rib_cache.run topo (cfg Fixture.st) in
  check_int "bounded" 2 (Rib_cache.size ());
  let _ = Rib_cache.run topo (cfg Fixture.cp) in
  check_int "cp survived (recently used)" 2 (Rib_cache.hits ());
  let misses_before = Rib_cache.misses () in
  let _ = Rib_cache.run topo (cfg Fixture.eb) in
  check_int "eb was evicted" (misses_before + 1) (Rib_cache.misses ())

let test_disabled_bypasses () =
  isolated @@ fun () ->
  Rib_cache.set_enabled false;
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  let s1 = Rib_cache.run topo config in
  let s2 = Rib_cache.run topo config in
  check_int "no entries" 0 (Rib_cache.size ());
  check_int "no hits" 0 (Rib_cache.hits ());
  check_int "no misses" 0 (Rib_cache.misses ());
  check "distinct states" true (s1 != s2);
  check "equal results" true (Propagate.equal s1 s2)

let test_absorb_merges () =
  isolated @@ fun () ->
  let topo = Fixture.topo () in
  let config = Announce.default ~origin:Fixture.cp in
  (* A task computes into its own shard; after absorb the parent hits
     on the same key — the cross-Pool.map reuse path. *)
  let task = Rib_cache.fresh_shard () in
  let s_task = Rib_cache.capture task (fun () -> Rib_cache.run topo config) in
  check_int "parent untouched during capture" 0 (Rib_cache.size ());
  Rib_cache.absorb task;
  check_int "entry merged" 1 (Rib_cache.size ());
  check_int "miss total merged" 1 (Rib_cache.misses ());
  let s_parent = Rib_cache.run topo config in
  check "parent hits the task's entry" true (s_task == s_parent);
  check_int "hit recorded" 1 (Rib_cache.hits ())

let suite =
  [
    Alcotest.test_case "hit on repeated (topo, config)" `Quick
      test_hit_on_repeat;
    Alcotest.test_case "distinct configs are distinct keys" `Quick
      test_distinct_configs_miss;
    Alcotest.test_case "generation bump invalidates" `Quick
      test_generation_invalidates;
    Alcotest.test_case "LRU eviction at the bound" `Quick test_lru_eviction;
    Alcotest.test_case "disabled cache bypasses" `Quick test_disabled_bypasses;
    Alcotest.test_case "absorb merges task shards" `Quick test_absorb_merges;
  ]
